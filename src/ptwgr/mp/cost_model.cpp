#include "ptwgr/mp/cost_model.h"

namespace ptwgr::mp {

CostModel CostModel::sparc_center_smp() {
  // SparcCenter 1000: MPI over shared memory.  Published MPICH shared-memory
  // numbers from the era: ~30 µs latency, ~50 MB/s effective bandwidth.
  // SuperSPARC @50 MHz is roughly 40x slower than a modern core on integer
  // code; the scale only matters for absolute times, not speedups.
  CostModel m;
  m.name = "SparcCenter1000-SMP";
  m.latency_s = 30e-6;
  m.per_byte_s = 1.0 / 50e6;
  m.compute_scale = 40.0;
  return m;
}

CostModel CostModel::paragon_dmp() {
  // Intel Paragon NX/MPI: ~100 µs latency, ~70 MB/s sustained bandwidth;
  // i860 XP @50 MHz, comparable scalar speed to the SuperSPARC.
  CostModel m;
  m.name = "Paragon-DMP";
  m.latency_s = 100e-6;
  m.per_byte_s = 1.0 / 70e6;
  m.compute_scale = 40.0;
  return m;
}

}  // namespace ptwgr::mp
