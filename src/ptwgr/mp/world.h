// Shared state behind one mp::run() invocation (internal to ptwgr/mp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "ptwgr/mp/comm_stats.h"
#include "ptwgr/mp/cost_model.h"
#include "ptwgr/mp/fault.h"
#include "ptwgr/mp/mailbox.h"

namespace ptwgr::mp {

/// What a rank is doing right now, as seen by the deadlock watchdog.
enum class RankActivityState : std::uint8_t {
  Running = 0,        ///< executing user code / non-blocking ops
  RecvBlocked,        ///< blocked in recv(source, tag)
  CollectiveBlocked,  ///< blocked in the collective rendezvous
  Finished,           ///< body returned (or the rank died)
};

struct RankActivity {
  RankActivityState state = RankActivityState::Running;
  int wait_source = 0;  // valid when RecvBlocked
  int wait_tag = 0;     // valid when RecvBlocked
};

/// All rank threads of one run share a World: the mailboxes, the collective
/// rendezvous, the fault-tolerance configuration, and the per-rank timing
/// slots filled at rank exit.
struct World {
  World(int num_ranks, CostModel cost_model, FaultToleranceOptions ft_options)
      : size(num_ranks),
        cost(std::move(cost_model)),
        ft(std::move(ft_options)),
        rv_contrib(static_cast<std::size_t>(num_ranks)),
        rv_out(static_cast<std::size_t>(num_ranks)),
        rv_vin(static_cast<std::size_t>(num_ranks), 0.0),
        rv_lamport(static_cast<std::size_t>(num_ranks), 0),
        activity(static_cast<std::size_t>(num_ranks)),
        final_vtime(static_cast<std::size_t>(num_ranks), 0.0),
        final_cpu(static_cast<std::size_t>(num_ranks), 0.0),
        final_comm(static_cast<std::size_t>(num_ranks)) {
    mailboxes.reserve(static_cast<std::size_t>(num_ranks));
    for (int r = 0; r < num_ranks; ++r) {
      mailboxes.push_back(std::make_unique<Mailbox>());
    }
  }

  World(int num_ranks, CostModel cost_model)
      : World(num_ranks, std::move(cost_model), FaultToleranceOptions{}) {}

  const int size;
  const CostModel cost;
  const FaultToleranceOptions ft;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;

  // Collective rendezvous.  SPMD programs run at most one collective at a
  // time, so a single generation-counted slot set suffices (see
  // Communicator::collective for the protocol).
  std::mutex rv_mutex;
  std::condition_variable rv_cv;
  std::uint64_t rv_generation = 0;
  int rv_arrived = 0;
  std::vector<std::vector<std::byte>> rv_contrib;
  std::vector<std::vector<std::byte>> rv_out;
  std::vector<double> rv_vin;
  double rv_vout = 0.0;
  // Lamport entry stamps; the last arriver publishes max + 1 so every
  // participant leaves the rendezvous with the same logical clock.
  std::vector<std::uint64_t> rv_lamport;
  std::uint64_t rv_lamport_out = 0;
  bool rv_aborted = false;

  // Fail-stop isolation: the first rank that died, or -1.  Set by
  // fail_rank(); peers that depend on a dead rank observe it and raise
  // RankFailure instead of blocking forever.
  std::atomic<int> failed_rank{-1};

  // Monotone progress counter: bumped on every message delivery/acceptance
  // and every completed collective.  The watchdog reads it to distinguish a
  // slow world from a stuck one.
  std::atomic<std::uint64_t> progress{0};

  // Per-rank blocking state for the watchdog (guarded by activity_mutex;
  // maintained only when ft.watchdog is set).
  std::mutex activity_mutex;
  std::vector<RankActivity> activity;

  std::vector<double> final_vtime;
  std::vector<double> final_cpu;
  std::vector<CommStats> final_comm;

  /// Unblocks every rank waiting in a mailbox or the rendezvous; they throw
  /// WorldAborted.  Called when any rank exits with an exception.
  void abort_all() {
    {
      const std::lock_guard<std::mutex> lock(rv_mutex);
      rv_aborted = true;
    }
    rv_cv.notify_all();
    for (auto& box : mailboxes) box->abort();
  }

  /// Fail-stop isolation: marks `rank` dead and wakes everyone so blocked
  /// peers can decide whether they depend on it (recv from it, or any
  /// collective — collectives need every rank).  Unlike abort_all, ranks
  /// that do not interact with the dead rank keep running.
  void fail_rank(int rank) {
    int expected = -1;
    failed_rank.compare_exchange_strong(expected, rank);
    set_activity(rank, RankActivityState::Finished);
    {
      // Wake rendezvous waiters so they can observe failed_rank.
      const std::lock_guard<std::mutex> lock(rv_mutex);
    }
    rv_cv.notify_all();
    for (auto& box : mailboxes) box->mark_dead(rank);
  }

  void set_activity(int rank, RankActivityState state, int wait_source = 0,
                    int wait_tag = 0) {
    if (!ft.watchdog) return;
    const std::lock_guard<std::mutex> lock(activity_mutex);
    auto& slot = activity[static_cast<std::size_t>(rank)];
    // A finished (or dead) rank stays finished.
    if (slot.state == RankActivityState::Finished &&
        state != RankActivityState::Finished) {
      return;
    }
    slot = RankActivity{state, wait_source, wait_tag};
  }
};

}  // namespace ptwgr::mp
