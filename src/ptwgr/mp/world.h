// Shared state behind one mp::run() invocation (internal to ptwgr/mp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "ptwgr/mp/comm_stats.h"
#include "ptwgr/mp/cost_model.h"
#include "ptwgr/mp/mailbox.h"

namespace ptwgr::mp {

/// All rank threads of one run share a World: the mailboxes, the collective
/// rendezvous, and the per-rank timing slots filled at rank exit.
struct World {
  explicit World(int num_ranks, CostModel cost_model)
      : size(num_ranks),
        cost(std::move(cost_model)),
        rv_contrib(static_cast<std::size_t>(num_ranks)),
        rv_out(static_cast<std::size_t>(num_ranks)),
        rv_vin(static_cast<std::size_t>(num_ranks), 0.0),
        final_vtime(static_cast<std::size_t>(num_ranks), 0.0),
        final_cpu(static_cast<std::size_t>(num_ranks), 0.0),
        final_comm(static_cast<std::size_t>(num_ranks)) {
    mailboxes.reserve(static_cast<std::size_t>(num_ranks));
    for (int r = 0; r < num_ranks; ++r) {
      mailboxes.push_back(std::make_unique<Mailbox>());
    }
  }

  const int size;
  const CostModel cost;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;

  // Collective rendezvous.  SPMD programs run at most one collective at a
  // time, so a single generation-counted slot set suffices (see
  // Communicator::collective for the protocol).
  std::mutex rv_mutex;
  std::condition_variable rv_cv;
  std::uint64_t rv_generation = 0;
  int rv_arrived = 0;
  std::vector<std::vector<std::byte>> rv_contrib;
  std::vector<std::vector<std::byte>> rv_out;
  std::vector<double> rv_vin;
  double rv_vout = 0.0;
  bool rv_aborted = false;

  std::vector<double> final_vtime;
  std::vector<double> final_cpu;
  std::vector<CommStats> final_comm;

  /// Unblocks every rank waiting in a mailbox or the rendezvous; they throw
  /// WorldAborted.  Called when any rank exits with an exception.
  void abort_all() {
    {
      const std::lock_guard<std::mutex> lock(rv_mutex);
      rv_aborted = true;
    }
    rv_cv.notify_all();
    for (auto& box : mailboxes) box->abort();
  }
};

}  // namespace ptwgr::mp
