#include "ptwgr/mp/communicator.h"

#include <algorithm>

namespace ptwgr::mp {

void Communicator::accrue_compute() {
  const double now = thread_cpu_seconds();
  const double delta = now - last_cpu_;
  last_cpu_ = now;
  if (delta > 0.0) {
    const double scaled = delta * world_->cost.compute_scale;
    vtime_ += scaled;
    stats_.compute_seconds += scaled;
  }
}

void Communicator::send_bytes(int dest, int tag,
                              std::vector<std::byte> payload) {
  PTWGR_EXPECTS(dest >= 0 && dest < size());
  PTWGR_EXPECTS(tag >= 0);
  accrue_compute();
  // The sender occupies the channel for the full transfer (blocking-send
  // semantics); the payload becomes visible to the receiver at that moment.
  const double transfer = world_->cost.message_cost(payload.size());
  vtime_ += transfer;
  stats_.p2p_wait_seconds += transfer;
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();
  Envelope envelope;
  envelope.source = rank_;
  envelope.tag = tag;
  envelope.arrival_vtime = vtime_;
  envelope.payload = std::move(payload);
  world_->mailboxes[static_cast<std::size_t>(dest)]->push(std::move(envelope));
}

Received Communicator::recv(int source, int tag) {
  PTWGR_EXPECTS(source == kAnySource || (source >= 0 && source < size()));
  Envelope envelope =
      world_->mailboxes[static_cast<std::size_t>(rank_)]->pop(source, tag);
  accrue_compute();
  if (envelope.arrival_vtime > vtime_) {
    stats_.p2p_wait_seconds += envelope.arrival_vtime - vtime_;
    vtime_ = envelope.arrival_vtime;
  }
  ++stats_.messages_received;
  stats_.bytes_received += envelope.payload.size();
  return Received{std::move(envelope)};
}

bool Communicator::probe(int source, int tag) {
  return world_->mailboxes[static_cast<std::size_t>(rank_)]->probe(source,
                                                                   tag);
}

void Communicator::barrier() {
  run_collective(CollectiveKind::Barrier, {},
                 [](std::vector<std::vector<std::byte>>&,
                    std::vector<std::vector<std::byte>>&) {});
}

std::vector<std::byte> Communicator::broadcast_bytes(
    int root, std::vector<std::byte> payload) {
  PTWGR_EXPECTS(root >= 0 && root < size());
  return run_collective(
      CollectiveKind::Broadcast, std::move(payload),
      [root](std::vector<std::vector<std::byte>>& contrib,
             std::vector<std::vector<std::byte>>& out) {
        const auto& bytes = contrib[static_cast<std::size_t>(root)];
        for (auto& slot : out) slot = bytes;
      });
}

std::vector<std::byte> Communicator::run_collective(
    CollectiveKind kind, std::vector<std::byte> contribution,
    const std::function<void(std::vector<std::vector<std::byte>>&,
                             std::vector<std::vector<std::byte>>&)>& combine) {
  accrue_compute();
  const auto kind_index = static_cast<std::size_t>(kind);
  ++stats_.collective_calls[kind_index];
  stats_.collective_bytes[kind_index] += contribution.size();
  World& w = *world_;
  if (w.size == 1) {
    // Trivial world: combine immediately, no synchronization cost.
    w.rv_contrib[0] = std::move(contribution);
    combine(w.rv_contrib, w.rv_out);
    return std::move(w.rv_out[0]);
  }

  std::unique_lock<std::mutex> lock(w.rv_mutex);
  if (w.rv_aborted) throw WorldAborted{};
  const std::size_t me = static_cast<std::size_t>(rank_);
  const std::size_t payload_size = contribution.size();
  w.rv_contrib[me] = std::move(contribution);
  w.rv_vin[me] = vtime_;
  const std::uint64_t my_generation = w.rv_generation;

  if (++w.rv_arrived == w.size) {
    // Last arriver: run the combine and advance the shared clock.
    combine(w.rv_contrib, w.rv_out);
    double entry_max = *std::max_element(w.rv_vin.begin(), w.rv_vin.end());
    std::size_t max_bytes = payload_size;
    for (const auto& c : w.rv_contrib) max_bytes = std::max(max_bytes, c.size());
    w.rv_vout = entry_max + w.cost.collective_cost(w.size, max_bytes);
    w.rv_arrived = 0;
    ++w.rv_generation;
    w.rv_cv.notify_all();
  } else {
    w.rv_cv.wait(lock, [&] {
      return w.rv_generation != my_generation || w.rv_aborted;
    });
    if (w.rv_generation == my_generation && w.rv_aborted) throw WorldAborted{};
  }

  // The clock jump — catching up to the slowest participant plus the modeled
  // dissemination rounds — is the rank's collective synchronization time.
  if (w.rv_vout > vtime_) {
    stats_.collective_sync_seconds += w.rv_vout - vtime_;
  }
  vtime_ = w.rv_vout;
  // Refresh the CPU mark: time spent blocked in the rendezvous is not the
  // rank's own compute.
  last_cpu_ = thread_cpu_seconds();
  return std::move(w.rv_out[me]);
}

void Communicator::finalize(double cpu_seconds) {
  accrue_compute();
  const std::size_t me = static_cast<std::size_t>(rank_);
  world_->final_vtime[me] = vtime_;
  world_->final_cpu[me] = cpu_seconds;
  world_->final_comm[me] = stats_;
}

}  // namespace ptwgr::mp
