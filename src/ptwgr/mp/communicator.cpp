#include "ptwgr/mp/communicator.h"

#include <algorithm>
#include <string>

namespace ptwgr::mp {
namespace {

/// Restores a rank's watchdog activity slot to Running on scope exit, so
/// blocked states never leak past the blocking call (including throws).
class ScopedActivity {
 public:
  ScopedActivity(World& world, int rank, RankActivityState state,
                 int wait_source = 0, int wait_tag = 0)
      : world_(&world), rank_(rank) {
    world_->set_activity(rank_, state, wait_source, wait_tag);
  }

  ~ScopedActivity() { world_->set_activity(rank_, RankActivityState::Running); }

  ScopedActivity(const ScopedActivity&) = delete;
  ScopedActivity& operator=(const ScopedActivity&) = delete;

 private:
  World* world_;
  int rank_;
};

/// Deterministically damages a payload copy so the receiver's checksum
/// verification fails (empty payloads get a poisoned byte appended).
std::vector<std::byte> corrupted_copy(const std::vector<std::byte>& payload) {
  std::vector<std::byte> bad = payload;
  if (bad.empty()) {
    bad.push_back(std::byte{0x5a});
  } else {
    bad[bad.size() / 2] ^= std::byte{0xff};
  }
  return bad;
}

}  // namespace

void Communicator::accrue_compute() {
  const double now = thread_cpu_seconds();
  const double delta = now - last_cpu_;
  last_cpu_ = now;
  if (delta > 0.0) {
    const double scaled = delta * world_->cost.compute_scale;
    vtime_ += scaled;
    stats_.compute_seconds += scaled;
  }
}

void Communicator::ledger_fault(std::string label) {
  accrue_compute();
  obs::LedgerEvent event;
  event.kind = obs::LedgerEventKind::Fault;
  event.t0 = vtime_;
  event.t1 = vtime_;
  event.lamport = lamport_;
  event.label = std::move(label);
  ledger_->record(rank_, std::move(event));
}

void Communicator::fault_op_entry() {
  FaultPlan* plan = world_->ft.fault_plan;
  if (plan == nullptr) return;
  if (plan->kill_due_at_op(rank_)) {
    const std::string what = "rank " + std::to_string(rank_) +
                             " killed by fault plan at operation " +
                             std::to_string(plan->ops_of(rank_));
    if (ledger_ != nullptr) ledger_fault(what);
    throw RankFailure(rank_, what);
  }
}

void Communicator::notify_phase(const char* phase) {
  if (ledger_ != nullptr) {
    accrue_compute();
    obs::LedgerEvent event;
    event.kind = obs::LedgerEventKind::PhaseBegin;
    event.t0 = vtime_;
    event.t1 = vtime_;
    event.lamport = lamport_;
    event.label = phase;
    ledger_->record(rank_, std::move(event));
  }
  FaultPlan* plan = world_->ft.fault_plan;
  if (plan == nullptr) return;
  if (plan->kill_due_at_phase(rank_, phase)) {
    const std::string what = "rank " + std::to_string(rank_) +
                             " killed by fault plan at phase '" + phase + "'";
    if (ledger_ != nullptr) ledger_fault(what);
    throw RankFailure(rank_, what);
  }
}

void Communicator::check_world_health() {
  const int failed = world_->failed_rank.load(std::memory_order_acquire);
  if (failed >= 0) {
    throw RankFailure(failed, "rank " + std::to_string(failed) +
                                  " failed; collective cannot complete");
  }
}

void Communicator::send_bytes(int dest, int tag,
                              std::vector<std::byte> payload) {
  PTWGR_EXPECTS(dest >= 0 && dest < size());
  PTWGR_EXPECTS(tag >= 0);
  fault_op_entry();
  accrue_compute();
  FaultPlan* plan = world_->ft.fault_plan;
  const RetryPolicy& retry = world_->ft.retry;
  Mailbox& dest_box = *world_->mailboxes[static_cast<std::size_t>(dest)];
  const std::uint64_t checksum =
      plan != nullptr ? payload_checksum(payload) : 0;
  const std::size_t payload_bytes = payload.size();
  const double send_entry_vtime = vtime_;
  std::uint64_t seq = 0;
  if (ledger_ != nullptr) {
    // One sequence number per *logical* send: retransmissions reuse it, so
    // the receiver's ledger entry matches this send whichever attempt got
    // through — the happens-before edge is fault-stable.
    seq = ++send_seq_;
    ++lamport_;
  }

  // Acknowledged-with-retry transmission: every attempt occupies the channel
  // for the full transfer (blocking-send semantics).  An attempt the fault
  // plan swallows (drop) or damages (corrupt, caught by the receiver's
  // checksum) is detected after the modeled ack round trip and retransmitted
  // under exponential backoff; the charges land in the p2p-wait bucket.
  // Retrying inside send_bytes preserves MPI's per-(source, tag)
  // non-overtaking order: a later message cannot leave before this one is
  // through.
  for (int attempt = 0;; ++attempt) {
    SendFault fault;
    if (plan != nullptr) fault = plan->on_send(rank_);
    if (fault.delay_s > 0.0) {
      vtime_ += fault.delay_s;
      stats_.p2p_wait_seconds += fault.delay_s;
      stats_.injected_delay_seconds += fault.delay_s;
      ++stats_.injected_delays;
    }
    const double transfer = world_->cost.message_cost(payload.size());
    vtime_ += transfer;
    stats_.p2p_wait_seconds += transfer;
    ++stats_.messages_sent;
    stats_.bytes_sent += payload.size();

    if (fault.corrupt) {
      // The damaged copy is delivered so the receiver actually exercises its
      // checksum verification; the intact payload follows as the retry.
      ++stats_.p2p_corruptions;
      Envelope envelope;
      envelope.source = rank_;
      envelope.tag = tag;
      envelope.arrival_vtime = vtime_;
      envelope.payload = corrupted_copy(payload);
      envelope.checksum = checksum;
      envelope.checksummed = true;
      envelope.lamport = lamport_;
      envelope.send_seq = seq;
      dest_box.push(std::move(envelope));
    } else if (fault.drop) {
      ++stats_.p2p_drops;
    } else {
      Envelope envelope;
      envelope.source = rank_;
      envelope.tag = tag;
      envelope.arrival_vtime = vtime_;
      envelope.payload = std::move(payload);
      envelope.checksum = checksum;
      envelope.checksummed = plan != nullptr;
      envelope.lamport = lamport_;
      envelope.send_seq = seq;
      dest_box.push(std::move(envelope));
      world_->progress.fetch_add(1, std::memory_order_relaxed);
      if (ledger_ != nullptr) {
        obs::LedgerEvent event;
        event.kind = obs::LedgerEventKind::Send;
        event.t0 = send_entry_vtime;
        event.t1 = vtime_;  // == the envelope's arrival_vtime
        event.lamport = lamport_;
        event.peer = dest;
        event.tag = tag;
        event.bytes = payload_bytes;
        event.seq = seq;
        ledger_->record(rank_, std::move(event));
      }
      return;
    }

    if (attempt >= retry.max_retries) {
      const std::string what =
          "rank " + std::to_string(rank_) + ": no acknowledgement from rank " +
          std::to_string(dest) + " after " + std::to_string(retry.max_retries) +
          " retries; peer presumed dead";
      if (ledger_ != nullptr) ledger_fault(what);
      throw RankFailure(dest, what);
    }
    const double backoff = retry.backoff(attempt);
    vtime_ += backoff;
    stats_.p2p_wait_seconds += backoff;
    stats_.retry_backoff_seconds += backoff;
    ++stats_.p2p_retries;
    if (ledger_ != nullptr) {
      obs::LedgerEvent event;
      event.kind = obs::LedgerEventKind::Fault;
      event.t0 = vtime_;
      event.t1 = vtime_;
      event.lamport = lamport_;
      event.peer = dest;
      event.tag = tag;
      event.seq = seq;
      event.label = fault.corrupt ? "send retry (corrupt)"
                                  : "send retry (drop)";
      ledger_->record(rank_, std::move(event));
    }
  }
}

Received Communicator::recv(int source, int tag) {
  PTWGR_EXPECTS(source == kAnySource || (source >= 0 && source < size()));
  fault_op_entry();
  Mailbox& box = *world_->mailboxes[static_cast<std::size_t>(rank_)];
  const double timeout = world_->ft.recv_timeout_seconds;
  const ScopedActivity blocked(*world_, rank_, RankActivityState::RecvBlocked,
                               source, tag);
  for (;;) {
    Mailbox::PopResult result = box.pop_bounded(source, tag, timeout);
    if (result.status == Mailbox::PopStatus::SourceDead) {
      accrue_compute();
      const std::string what = "rank " + std::to_string(rank_) +
                               ": recv(source=" + std::to_string(source) +
                               ", tag=" + std::to_string(tag) +
                               ") from failed rank";
      if (ledger_ != nullptr) ledger_fault(what);
      throw RankFailure(source, what);
    }
    if (result.status == Mailbox::PopStatus::TimedOut) {
      accrue_compute();
      // The wait itself is modeled time spent listening for the message.
      vtime_ += timeout;
      stats_.p2p_wait_seconds += timeout;
      ++stats_.recv_timeouts;
      if (ledger_ != nullptr) {
        ledger_fault("recv timeout after " + std::to_string(timeout) +
                     "s (source=" + std::to_string(source) +
                     ", tag=" + std::to_string(tag) + ")");
      }
      throw RecvTimeout(rank_, source, tag, timeout);
    }
    Envelope& envelope = result.envelope;
    if (envelope.checksummed &&
        payload_checksum(envelope.payload) != envelope.checksum) {
      // Corrupted in transit; drop it and wait for the retransmission.
      ++stats_.checksum_failures;
      continue;
    }
    accrue_compute();
    // The ledger's recv interval is [clock at acceptance, clock after the
    // arrival jump]: exactly the modeled wait, free of host-CPU noise, and
    // t1 lands bit-for-bit on the matched send's departure clock whenever
    // the message was the later party.
    const double recv_accept_vtime = vtime_;
    if (envelope.arrival_vtime > vtime_) {
      stats_.p2p_wait_seconds += envelope.arrival_vtime - vtime_;
      vtime_ = envelope.arrival_vtime;
    }
    ++stats_.messages_received;
    stats_.bytes_received += envelope.payload.size();
    world_->progress.fetch_add(1, std::memory_order_relaxed);
    if (ledger_ != nullptr) {
      lamport_ = std::max(lamport_, envelope.lamport) + 1;
      obs::LedgerEvent event;
      event.kind = obs::LedgerEventKind::Recv;
      event.t0 = recv_accept_vtime;
      event.t1 = vtime_;
      event.lamport = lamport_;
      event.peer = envelope.source;
      event.tag = envelope.tag;
      event.bytes = envelope.payload.size();
      event.seq = envelope.send_seq;
      ledger_->record(rank_, std::move(event));
    }
    return Received{std::move(envelope)};
  }
}

bool Communicator::probe(int source, int tag) {
  return world_->mailboxes[static_cast<std::size_t>(rank_)]->probe(source,
                                                                   tag);
}

void Communicator::barrier() {
  run_collective(CollectiveKind::Barrier, {},
                 [](std::vector<std::vector<std::byte>>&,
                    std::vector<std::vector<std::byte>>&) {});
}

std::vector<std::byte> Communicator::broadcast_bytes(
    int root, std::vector<std::byte> payload) {
  PTWGR_EXPECTS(root >= 0 && root < size());
  return run_collective(
      CollectiveKind::Broadcast, std::move(payload),
      [root](std::vector<std::vector<std::byte>>& contrib,
             std::vector<std::vector<std::byte>>& out) {
        const auto& bytes = contrib[static_cast<std::size_t>(root)];
        for (auto& slot : out) slot = bytes;
      });
}

std::vector<std::byte> Communicator::run_collective(
    CollectiveKind kind, std::vector<std::byte> contribution,
    const std::function<void(std::vector<std::vector<std::byte>>&,
                             std::vector<std::vector<std::byte>>&)>& combine) {
  fault_op_entry();
  accrue_compute();
  const auto kind_index = static_cast<std::size_t>(kind);
  ++stats_.collective_calls[kind_index];
  stats_.collective_bytes[kind_index] += contribution.size();
  const std::size_t contribution_bytes = contribution.size();
  const double collective_entry_vtime = vtime_;
  const auto record_collective = [&] {
    if (ledger_ == nullptr) return;
    obs::LedgerEvent event;
    event.kind = obs::LedgerEventKind::Collective;
    event.t0 = collective_entry_vtime;
    event.t1 = vtime_;
    event.lamport = lamport_;
    event.tag = static_cast<int>(kind_index);
    event.bytes = contribution_bytes;
    // SPMD total order: the i-th collective of every rank is the same
    // rendezvous, so the per-rank ordinal names it globally.
    event.seq = ++collective_seq_;
    ledger_->record(rank_, std::move(event));
  };
  World& w = *world_;
  if (w.size == 1) {
    // Trivial world: combine immediately, no synchronization cost.
    w.rv_contrib[0] = std::move(contribution);
    combine(w.rv_contrib, w.rv_out);
    if (ledger_ != nullptr) ++lamport_;
    record_collective();
    return std::move(w.rv_out[0]);
  }

  check_world_health();
  const ScopedActivity blocked(w, rank_,
                               RankActivityState::CollectiveBlocked);
  std::unique_lock<std::mutex> lock(w.rv_mutex);
  if (w.rv_aborted) throw WorldAborted{};
  const std::size_t me = static_cast<std::size_t>(rank_);
  const std::size_t payload_size = contribution.size();
  w.rv_contrib[me] = std::move(contribution);
  w.rv_vin[me] = vtime_;
  w.rv_lamport[me] = lamport_;
  const std::uint64_t my_generation = w.rv_generation;

  if (++w.rv_arrived == w.size) {
    // Last arriver: run the combine and advance the shared clock.
    combine(w.rv_contrib, w.rv_out);
    double entry_max = *std::max_element(w.rv_vin.begin(), w.rv_vin.end());
    std::size_t max_bytes = payload_size;
    for (const auto& c : w.rv_contrib) max_bytes = std::max(max_bytes, c.size());
    w.rv_vout = entry_max + w.cost.collective_cost(w.size, max_bytes);
    w.rv_lamport_out =
        *std::max_element(w.rv_lamport.begin(), w.rv_lamport.end()) + 1;
    w.rv_arrived = 0;
    ++w.rv_generation;
    w.progress.fetch_add(1, std::memory_order_relaxed);
    w.rv_cv.notify_all();
  } else {
    w.rv_cv.wait(lock, [&] {
      return w.rv_generation != my_generation || w.rv_aborted ||
             w.failed_rank.load(std::memory_order_acquire) >= 0;
    });
    if (w.rv_generation == my_generation) {
      if (w.rv_aborted) throw WorldAborted{};
      // A participant died before completing this collective; it can never
      // finish.  (If the generation advanced, the collective completed
      // first and the result is valid.)
      check_world_health();
    }
  }

  // The clock jump — catching up to the slowest participant plus the modeled
  // dissemination rounds — is the rank's collective synchronization time.
  if (w.rv_vout > vtime_) {
    stats_.collective_sync_seconds += w.rv_vout - vtime_;
  }
  vtime_ = w.rv_vout;
  // Refresh the CPU mark: time spent blocked in the rendezvous is not the
  // rank's own compute.
  last_cpu_ = thread_cpu_seconds();
  // Every participant leaves with the same logical clock (max entry + 1);
  // rv_lamport_out is read under rv_mutex, still held here.
  if (ledger_ != nullptr) lamport_ = w.rv_lamport_out;
  record_collective();
  return std::move(w.rv_out[me]);
}

void Communicator::finalize(double cpu_seconds) {
  accrue_compute();
  const std::size_t me = static_cast<std::size_t>(rank_);
  world_->final_vtime[me] = vtime_;
  world_->final_cpu[me] = cpu_seconds;
  world_->final_comm[me] = stats_;
  if (ledger_ != nullptr) ledger_->set_final_vtime(rank_, vtime_);
}

}  // namespace ptwgr::mp
