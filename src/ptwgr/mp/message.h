// Message envelope moved between rank mailboxes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ptwgr::mp {

/// Matches any source rank in recv/probe.
inline constexpr int kAnySource = -1;
/// Matches any non-negative tag in recv/probe.
inline constexpr int kAnyTag = -1;

/// FNV-1a 64-bit hash of a payload; the per-Envelope integrity checksum
/// verified by recv when fault injection is active.
inline std::uint64_t payload_checksum(const std::vector<std::byte>& payload) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const std::byte b : payload) {
    hash ^= static_cast<std::uint64_t>(b);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// One in-flight message: origin, user tag, payload, and the virtual time at
/// which the payload becomes available to the receiver (sender's clock at
/// send plus the modeled transfer cost).  Under fault injection the sender
/// additionally stamps the payload's checksum; a receiver that detects a
/// mismatch (the fault plan corrupted the payload in transit) discards the
/// envelope and waits for the retransmission.
struct Envelope {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
  double arrival_vtime = 0.0;
  std::uint64_t checksum = 0;
  bool checksummed = false;
  // Causal-ledger stamps (obs/ledger.h), populated only while a ledger is
  // active.  `lamport` is the sender's logical clock after the send;
  // `send_seq` is the sender's per-rank send ordinal — retransmissions reuse
  // it, so the receiver's ledger entry matches the logical send, not the
  // physical attempt.
  std::uint64_t lamport = 0;
  std::uint64_t send_seq = 0;
};

}  // namespace ptwgr::mp
