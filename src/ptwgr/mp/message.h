// Message envelope moved between rank mailboxes.
#pragma once

#include <cstddef>
#include <vector>

namespace ptwgr::mp {

/// Matches any source rank in recv/probe.
inline constexpr int kAnySource = -1;
/// Matches any non-negative tag in recv/probe.
inline constexpr int kAnyTag = -1;

/// One in-flight message: origin, user tag, payload, and the virtual time at
/// which the payload becomes available to the receiver (sender's clock at
/// send plus the modeled transfer cost).
struct Envelope {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
  double arrival_vtime = 0.0;
};

}  // namespace ptwgr::mp
