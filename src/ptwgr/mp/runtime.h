// SPMD launcher: runs one function body on N rank threads, MPI style.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "ptwgr/mp/communicator.h"
#include "ptwgr/mp/cost_model.h"
#include "ptwgr/mp/fault.h"

namespace ptwgr::mp {

/// Timing outcome of one run: wall clock of the whole launch, plus per-rank
/// final virtual clocks and measured CPU seconds.
struct RunReport {
  double wall_seconds = 0.0;
  std::vector<double> rank_vtime;
  std::vector<double> rank_cpu_seconds;
  /// Per-rank communication counters and vtime decomposition.
  std::vector<CommStats> rank_comm;

  /// The modeled parallel runtime: the slowest rank's virtual clock.
  double parallel_time() const {
    return rank_vtime.empty()
               ? 0.0
               : *std::max_element(rank_vtime.begin(), rank_vtime.end());
  }

  /// Total CPU work across ranks (for efficiency metrics).
  double total_cpu_seconds() const {
    double total = 0.0;
    for (const double s : rank_cpu_seconds) total += s;
    return total;
  }

  /// Whole-run communication totals (all ranks folded together).
  CommStats comm_totals() const {
    CommStats total;
    for (const CommStats& s : rank_comm) total.accumulate(s);
    return total;
  }
};

/// Runs `body` on `num_ranks` threads, each receiving its own Communicator.
///
/// Rank 0 executes on the calling thread; ranks 1..N-1 on fresh threads.
/// If any rank throws, the world is aborted (blocked ranks unblock with
/// WorldAborted) and the first non-abort exception is rethrown after all
/// ranks have joined.
RunReport run(int num_ranks, const CostModel& cost,
              const std::function<void(Communicator&)>& body);

/// Fault-tolerant launch: as above, plus the fault-injection and hardening
/// machinery in `ft` — an optional deterministic FaultPlan (begin_world is
/// called on it before the ranks start), p2p retry/backoff, recv timeouts,
/// fail-stop isolation of RankFailure (only the failing rank dies; peers
/// observe typed RankFailure when they depend on it), and the
/// all-ranks-blocked deadlock watchdog, which turns a stuck world into a
/// DeadlockDetected error reporting who waits on whom.
RunReport run(int num_ranks, const CostModel& cost,
              const FaultToleranceOptions& ft,
              const std::function<void(Communicator&)>& body);

/// Convenience overload with the ideal (zero-cost) model.
inline RunReport run(int num_ranks,
                     const std::function<void(Communicator&)>& body) {
  return run(num_ranks, CostModel::ideal(), body);
}

}  // namespace ptwgr::mp
