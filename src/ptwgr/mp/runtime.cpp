#include "ptwgr/mp/runtime.h"

#include <exception>
#include <mutex>
#include <thread>

#include "ptwgr/support/log.h"
#include "ptwgr/support/timer.h"

namespace ptwgr::mp {

RunReport run(int num_ranks, const CostModel& cost,
              const std::function<void(Communicator&)>& body) {
  PTWGR_EXPECTS(num_ranks >= 1);
  World world(num_ranks, cost);

  std::mutex failure_mutex;
  std::exception_ptr first_failure;

  const auto rank_main = [&](int rank) {
    const ScopedLogRank log_rank(rank);
    Communicator comm(world, rank);
    const ThreadCpuTimer cpu;
    try {
      body(comm);
      comm.finalize(cpu.seconds());
    } catch (const WorldAborted&) {
      // Another rank failed first; nothing further to report.
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        if (!first_failure) first_failure = std::current_exception();
      }
      world.abort_all();
    }
  };

  const WallTimer wall;
  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(num_ranks - 1));
    for (int r = 1; r < num_ranks; ++r) {
      threads.emplace_back(rank_main, r);
    }
    rank_main(0);
  }  // jthreads join here

  if (first_failure) std::rethrow_exception(first_failure);

  RunReport report;
  report.wall_seconds = wall.seconds();
  report.rank_vtime = world.final_vtime;
  report.rank_cpu_seconds = world.final_cpu;
  report.rank_comm = world.final_comm;
  return report;
}

}  // namespace ptwgr::mp
