#include "ptwgr/mp/runtime.h"

#include <chrono>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>

#include "ptwgr/mp/world.h"
#include "ptwgr/obs/ledger.h"
#include "ptwgr/obs/resource.h"
#include "ptwgr/support/log.h"
#include "ptwgr/support/timer.h"

namespace ptwgr::mp {
namespace {

/// One watchdog sample of the world's blocking picture.
struct ActivitySnapshot {
  std::vector<RankActivity> ranks;
  std::uint64_t progress = 0;
};

ActivitySnapshot snapshot_activity(World& world) {
  ActivitySnapshot snap;
  {
    const std::lock_guard<std::mutex> lock(world.activity_mutex);
    snap.ranks = world.activity;
  }
  snap.progress = world.progress.load(std::memory_order_relaxed);
  return snap;
}

/// True when no rank can make progress on its own: every rank is blocked (or
/// finished), at least one is blocked, and no blocked recv has a matching
/// message already queued.
bool looks_deadlocked(World& world, const ActivitySnapshot& snap) {
  bool any_blocked = false;
  for (int r = 0; r < world.size; ++r) {
    const RankActivity& a = snap.ranks[static_cast<std::size_t>(r)];
    switch (a.state) {
      case RankActivityState::Running:
        return false;  // someone is computing; the world is alive
      case RankActivityState::Finished:
        break;
      case RankActivityState::RecvBlocked:
        if (world.mailboxes[static_cast<std::size_t>(r)]->probe(
                a.wait_source, a.wait_tag)) {
          return false;  // about to wake up
        }
        any_blocked = true;
        break;
      case RankActivityState::CollectiveBlocked:
        any_blocked = true;
        break;
    }
  }
  return any_blocked;
}

std::string render_deadlock_report(const ActivitySnapshot& snap) {
  std::ostringstream os;
  os << "deadlock detected: all ranks blocked with no progress possible —";
  for (std::size_t r = 0; r < snap.ranks.size(); ++r) {
    const RankActivity& a = snap.ranks[r];
    os << " rank " << r << ": ";
    switch (a.state) {
      case RankActivityState::Running:
        os << "running";
        break;
      case RankActivityState::Finished:
        os << "finished";
        break;
      case RankActivityState::RecvBlocked:
        os << "waits on recv(source=";
        if (a.wait_source == kAnySource) {
          os << "any";
        } else {
          os << a.wait_source;
        }
        os << ", tag=";
        if (a.wait_tag == kAnyTag) {
          os << "any";
        } else {
          os << a.wait_tag;
        }
        os << ")";
        break;
      case RankActivityState::CollectiveBlocked:
        os << "waits in collective rendezvous";
        break;
    }
    os << (r + 1 < snap.ranks.size() ? ";" : ".");
  }
  return os.str();
}

}  // namespace

RunReport run(int num_ranks, const CostModel& cost,
              const FaultToleranceOptions& ft,
              const std::function<void(Communicator&)>& body) {
  PTWGR_EXPECTS(num_ranks >= 1);
  if (ft.fault_plan != nullptr) ft.fault_plan->begin_world(num_ranks);
  // Size the causal ledger's per-rank slots before any rank can record.
  // Restarting clears the live slots, so a recovery re-execution records a
  // clean stream (captured postmortems survive inside the collector).
  if (obs::LedgerCollector* ledger = obs::active_ledger()) {
    ledger->begin_run(num_ranks);
  }
  World world(num_ranks, cost, ft);

  std::mutex failure_mutex;
  std::exception_ptr first_failure;
  const auto record_failure = [&](std::exception_ptr failure) {
    const std::lock_guard<std::mutex> lock(failure_mutex);
    if (!first_failure) first_failure = std::move(failure);
  };

  const auto rank_main = [&](int rank) {
    const ScopedLogRank log_rank(rank);
    // Attribute this thread's allocations to the rank (and reset any phase /
    // exclusion state a previous unwound run left on a reused thread).
    const obs::ScopedResourceRank resource_rank(rank);
    Communicator comm(world, rank);
    const ThreadCpuTimer cpu;
    try {
      body(comm);
      comm.finalize(cpu.seconds());
      world.set_activity(rank, RankActivityState::Finished);
    } catch (const WorldAborted&) {
      // Another rank failed first; nothing further to report.
    } catch (const RankFailure& failure) {
      record_failure(std::current_exception());
      if (world.ft.isolate_rank_failures) {
        // Fail-stop: only this rank dies.  Peers that depend on it observe
        // RankFailure through dead-source recvs and collective health
        // checks; independent ranks keep running.
        PTWGR_LOG_WARN << "rank " << rank
                       << " failed (fail-stop): " << failure.what();
        world.fail_rank(rank);
      } else {
        world.abort_all();
      }
    } catch (...) {
      record_failure(std::current_exception());
      world.abort_all();
    }
  };

  const WallTimer wall;
  {
    // The watchdog samples rank activity between grace intervals; two
    // consecutive all-blocked samples with an unchanged progress counter and
    // no deliverable message mean nobody can ever move again.
    std::jthread watchdog;
    if (ft.watchdog) {
      watchdog = std::jthread([&world, &record_failure](std::stop_token stop) {
        const auto interval = std::chrono::duration<double>(
            world.ft.watchdog_interval_seconds);
        // Sleep in short slices so request_stop() is honoured promptly.
        const auto nap = [&stop](std::chrono::duration<double> how_long) {
          const auto end =
              std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  how_long);
          while (!stop.stop_requested() &&
                 std::chrono::steady_clock::now() < end) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
        };
        std::uint64_t last_progress = 0;
        bool armed = false;
        while (!stop.stop_requested()) {
          nap(interval / 4);
          if (stop.stop_requested()) return;
          const ActivitySnapshot snap = snapshot_activity(world);
          if (!looks_deadlocked(world, snap)) {
            armed = false;
            continue;
          }
          if (!armed || snap.progress != last_progress) {
            armed = true;
            last_progress = snap.progress;
            // Grace period: re-check after a full interval of stillness.
            nap(interval);
            continue;
          }
          const std::string report = render_deadlock_report(snap);
          PTWGR_LOG_ERROR << report;
          if (obs::LedgerCollector* ledger = obs::active_ledger()) {
            ledger->note(report);
          }
          record_failure(
              std::make_exception_ptr(DeadlockDetected(report)));
          world.abort_all();
          return;
        }
      });
    }
    {
      std::vector<std::jthread> threads;
      threads.reserve(static_cast<std::size_t>(num_ranks - 1));
      for (int r = 1; r < num_ranks; ++r) {
        threads.emplace_back(rank_main, r);
      }
      rank_main(0);
    }  // rank jthreads join here
    if (watchdog.joinable()) watchdog.request_stop();
  }  // watchdog joins here

  if (first_failure) std::rethrow_exception(first_failure);

  RunReport report;
  report.wall_seconds = wall.seconds();
  report.rank_vtime = world.final_vtime;
  report.rank_cpu_seconds = world.final_cpu;
  report.rank_comm = world.final_comm;
  return report;
}

RunReport run(int num_ranks, const CostModel& cost,
              const std::function<void(Communicator&)>& body) {
  return run(num_ranks, cost, FaultToleranceOptions{}, body);
}

}  // namespace ptwgr::mp
