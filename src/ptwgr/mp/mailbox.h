// Per-rank message queue with MPI-style (source, tag) matching.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "ptwgr/mp/message.h"

namespace ptwgr::mp {

/// Thrown out of blocking operations when the world shuts down because some
/// rank failed; prevents surviving ranks from blocking forever.
class WorldAborted : public std::runtime_error {
 public:
  WorldAborted() : std::runtime_error("mp world aborted by a failed rank") {}
};

/// Unbounded MPSC mailbox.  Any rank may push; only the owning rank pops.
/// Matching is FIFO among messages that satisfy the (source, tag) filter,
/// mirroring MPI's non-overtaking guarantee per (source, tag) pair.
class Mailbox {
 public:
  /// Enqueues a message (called by sender threads).
  void push(Envelope envelope);

  /// Blocks until a message matching (source, tag) is available and removes
  /// it.  source/tag may be kAnySource/kAnyTag.  Throws WorldAborted if
  /// abort() is called while waiting.
  Envelope pop(int source, int tag);

  /// Non-blocking probe: returns true if a matching message is queued.
  bool probe(int source, int tag) const;

  /// Number of queued messages (tests / diagnostics).
  std::size_t size() const;

  /// Wakes all blocked poppers with WorldAborted.
  void abort();

 private:
  std::optional<Envelope> try_take(int source, int tag);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
  bool aborted_ = false;
};

}  // namespace ptwgr::mp
