// Per-rank message queue with MPI-style (source, tag) matching.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <vector>

#include "ptwgr/mp/message.h"
#include "ptwgr/support/arena.h"

namespace ptwgr::mp {

/// Thrown out of blocking operations when the world shuts down because some
/// rank failed; prevents surviving ranks from blocking forever.
class WorldAborted : public std::runtime_error {
 public:
  WorldAborted() : std::runtime_error("mp world aborted by a failed rank") {}
};

/// Unbounded MPSC mailbox.  Any rank may push; only the owning rank pops.
/// Matching is FIFO among messages that satisfy the (source, tag) filter,
/// mirroring MPI's non-overtaking guarantee per (source, tag) pair.
class Mailbox {
 public:
  /// Why a pop returned without a message.
  enum class PopStatus {
    Ok,          ///< envelope holds the matched message
    TimedOut,    ///< deadline expired with no match queued
    SourceDead,  ///< waiting on a specific rank that has failed
  };

  struct PopResult {
    PopStatus status = PopStatus::Ok;
    Envelope envelope;
  };

  Mailbox() = default;
  ~Mailbox();
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues a message (called by sender threads).
  void push(Envelope envelope);

  /// Blocks until a message matching (source, tag) is available and removes
  /// it.  source/tag may be kAnySource/kAnyTag.  Throws WorldAborted if
  /// abort() is called while waiting.
  Envelope pop(int source, int tag);

  /// As pop(), but bounded: gives up after `timeout_seconds` of real time
  /// (negative disables the deadline), and reports SourceDead when waiting
  /// on a specific source that was marked dead and has nothing queued.
  /// Already-queued messages from a dead rank are still delivered — they
  /// were sent before it failed.
  PopResult pop_bounded(int source, int tag, double timeout_seconds);

  /// Non-blocking probe: returns true if a matching message is queued.
  bool probe(int source, int tag) const;

  /// Number of queued messages (tests / diagnostics).
  std::size_t size() const;

  /// Wakes all blocked poppers with WorldAborted.
  void abort();

  /// Marks a source rank as failed and wakes poppers so recvs waiting on it
  /// can report SourceDead.
  void mark_dead(int rank);

 private:
  std::optional<Envelope> try_take(int source, int tag);
  bool is_dead(int rank) const;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
  std::vector<int> dead_ranks_;
  bool aborted_ = false;
  // Queued payload bytes are charged to the "mailbox" arena tag while they
  // sit in the backlog (obs/resource.h).  Charges use payload.size(), not
  // capacity, so the cumulative counters stay deterministic.
  ArenaSlot* arena_ = arena_slot("mailbox");
};

}  // namespace ptwgr::mp
