// Per-rank communication accounting for the virtual-clock runtime.
//
// Every Communicator keeps one CommStats: message/byte counters for both
// sides of the point-to-point traffic, per-collective-kind invocation counts
// and contributed payload bytes, and a decomposition of the rank's virtual
// clock into compute, p2p-wait, and collective-sync buckets.  The final
// stats of each rank are surfaced through mp::RunReport, which is how the
// benchmark tables and the --metrics export see them.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace ptwgr::mp {

enum class CollectiveKind : std::uint8_t {
  Barrier = 0,
  Broadcast,
  Gather,
  Allgather,
  Allreduce,
  AllToAll,
};

inline constexpr std::size_t kNumCollectiveKinds = 6;

inline const char* to_string(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::Barrier: return "barrier";
    case CollectiveKind::Broadcast: return "broadcast";
    case CollectiveKind::Gather: return "gather";
    case CollectiveKind::Allgather: return "allgather";
    case CollectiveKind::Allreduce: return "allreduce";
    case CollectiveKind::AllToAll: return "all_to_all";
  }
  return "?";
}

struct CommStats {
  // Point-to-point traffic, counted on both sides so the send/recv totals
  // can be cross-checked (every payload byte sent must be received).  Under
  // fault injection each transmission *attempt* counts as sent, so the
  // cross-check holds only up to the injected drops/corruptions below.
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;

  // Fault-tolerance accounting (all zero on fault-free runs).
  std::uint64_t p2p_retries = 0;         // retransmissions performed
  std::uint64_t p2p_drops = 0;           // injected drops encountered
  std::uint64_t p2p_corruptions = 0;     // injected corruptions at send
  std::uint64_t checksum_failures = 0;   // corrupt payloads caught on recv
  std::uint64_t injected_delays = 0;     // latency spikes applied
  std::uint64_t recv_timeouts = 0;       // recv deadlines that expired
  // Virtual seconds spent in ack timeouts + exponential backoff (also part
  // of p2p_wait_seconds) and in injected latency spikes.
  double retry_backoff_seconds = 0.0;
  double injected_delay_seconds = 0.0;

  // Collectives, indexed by CollectiveKind.  Bytes are the payload this
  // rank contributed to the operation.
  std::array<std::uint64_t, kNumCollectiveKinds> collective_calls{};
  std::array<std::uint64_t, kNumCollectiveKinds> collective_bytes{};

  // Decomposition of the rank's virtual clock: scaled CPU time between
  // operations (plus explicit add_virtual_time charges), modeled transfer
  // cost and arrival waits of p2p traffic, and clock jumps inside
  // collectives (catching up to the slowest participant plus the modeled
  // dissemination rounds).  The three buckets sum to the rank's vtime.
  double compute_seconds = 0.0;
  double p2p_wait_seconds = 0.0;
  double collective_sync_seconds = 0.0;

  std::uint64_t total_collective_calls() const {
    std::uint64_t total = 0;
    for (const std::uint64_t c : collective_calls) total += c;
    return total;
  }

  std::uint64_t total_collective_bytes() const {
    std::uint64_t total = 0;
    for (const std::uint64_t b : collective_bytes) total += b;
    return total;
  }

  /// Folds another rank's stats into this one (whole-run totals).
  void accumulate(const CommStats& other) {
    messages_sent += other.messages_sent;
    bytes_sent += other.bytes_sent;
    messages_received += other.messages_received;
    bytes_received += other.bytes_received;
    p2p_retries += other.p2p_retries;
    p2p_drops += other.p2p_drops;
    p2p_corruptions += other.p2p_corruptions;
    checksum_failures += other.checksum_failures;
    injected_delays += other.injected_delays;
    recv_timeouts += other.recv_timeouts;
    retry_backoff_seconds += other.retry_backoff_seconds;
    injected_delay_seconds += other.injected_delay_seconds;
    for (std::size_t k = 0; k < kNumCollectiveKinds; ++k) {
      collective_calls[k] += other.collective_calls[k];
      collective_bytes[k] += other.collective_bytes[k];
    }
    compute_seconds += other.compute_seconds;
    p2p_wait_seconds += other.p2p_wait_seconds;
    collective_sync_seconds += other.collective_sync_seconds;
  }
};

}  // namespace ptwgr::mp
