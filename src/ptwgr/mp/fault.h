// Fault injection and fault tolerance for the message-passing runtime.
//
// A FaultPlan is a seeded, fully deterministic description of the failures a
// run must survive: dropped point-to-point messages, latency spikes,
// corrupted payloads (caught by the per-Envelope checksum verified on recv),
// and rank kills triggered at a rank's Nth communication operation or at the
// entry of a named phase span.  Decisions are drawn from per-rank RNG
// streams, so they depend only on (seed, rank, operation index) — never on
// thread scheduling — which is what makes fault runs reproducible and lets
// the recovery replay in route_parallel produce byte-identical metrics.
//
// The same header defines the typed failure vocabulary of the hardened
// runtime (RankFailure, RecvTimeout, DeadlockDetected), the send retry
// policy, and the FaultToleranceOptions bundle accepted by mp::run.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "ptwgr/support/rng.h"

namespace ptwgr::mp {

/// A rank is gone: it was killed by the fault plan, exhausted its send
/// retries against an unresponsive peer, or a peer observed its death.
/// `rank()` names the rank that failed (not necessarily the thrower).
class RankFailure : public std::runtime_error {
 public:
  RankFailure(int rank, const std::string& what)
      : std::runtime_error(what), rank_(rank) {}

  int rank() const { return rank_; }

 private:
  int rank_;
};

/// A blocking recv exceeded the configured timeout with no matching message.
class RecvTimeout : public std::runtime_error {
 public:
  RecvTimeout(int rank, int source, int tag, double seconds)
      : std::runtime_error("rank " + std::to_string(rank) +
                           ": recv(source=" + std::to_string(source) +
                           ", tag=" + std::to_string(tag) +
                           ") timed out after " + std::to_string(seconds) +
                           " s"),
        rank_(rank),
        source_(source),
        tag_(tag) {}

  int rank() const { return rank_; }
  int source() const { return source_; }
  int tag() const { return tag_; }

 private:
  int rank_;
  int source_;
  int tag_;
};

/// The watchdog found every live rank blocked with no possible progress.
/// what() carries the who-waits-on-whom report.
class DeadlockDetected : public std::runtime_error {
 public:
  explicit DeadlockDetected(const std::string& report)
      : std::runtime_error(report) {}
};

/// Thrown by FaultPlan::parse on a malformed plan specification.
class FaultSpecError : public std::runtime_error {
 public:
  explicit FaultSpecError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Exponential-backoff retry policy for acknowledged point-to-point sends.
/// A transmission the fault plan swallows is detected by the sender after
/// `ack_timeout_s` virtual seconds (the modeled acknowledgement round trip)
/// and retransmitted after an exponentially growing backoff; both charges
/// land in the sender's p2p-wait bucket and in retry_backoff_seconds.
struct RetryPolicy {
  /// Retransmissions per message before the peer is presumed dead.
  int max_retries = 3;
  /// Modeled time to conclude an attempt was lost (virtual seconds).
  double ack_timeout_s = 1e-4;
  /// First backoff delay; doubles (×multiplier) per further attempt.
  double backoff_base_s = 1e-4;
  double backoff_multiplier = 2.0;

  /// Virtual seconds charged before retransmission number `retry` (0-based).
  double backoff(int retry) const {
    return ack_timeout_s +
           backoff_base_s * std::pow(backoff_multiplier, retry);
  }
};

/// One scheduled rank kill.  Exactly one trigger is set: `at_op` (the rank's
/// Nth communication operation, 1-based) or `at_phase` (entry into a named
/// phase span).  A kill fires at most once per plan lifetime, so the
/// recovery replay of a killed run completes.
struct KillSpec {
  int rank = -1;
  std::uint64_t at_op = 0;
  std::string at_phase;
};

/// Per-send fault decision (drawn deterministically per attempt).
struct SendFault {
  bool drop = false;
  bool corrupt = false;
  double delay_s = 0.0;
};

/// Deterministic, seeded fault schedule.  Thread-compatible by design: after
/// begin_world(), each rank thread touches only its own stream slot; kill
/// bookkeeping is published by the world teardown (thread join) before the
/// next begin_world() reads it.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 1) : seed_(seed) {}

  /// Parses a plan from the CLI grammar (entries separated by ';'):
  ///   seed=N                 RNG seed (default 1)
  ///   drop=P                 per-attempt p2p drop probability
  ///   corrupt=P              per-attempt payload corruption probability
  ///   delay=P:SECONDS        latency spike: probability and virtual seconds
  ///   kill=rankR@opN         kill rank R at its Nth comm operation
  ///   kill=rankR@phase:NAME  kill rank R on entering phase NAME
  /// Throws FaultSpecError on malformed input.
  static FaultPlan parse(const std::string& spec);

  // Programmatic construction (tests).
  void set_drop_probability(double p) { drop_p_ = p; }
  void set_corrupt_probability(double p) { corrupt_p_ = p; }
  void set_delay(double probability, double seconds) {
    delay_p_ = probability;
    delay_s_ = seconds;
  }
  void add_kill(KillSpec kill);

  /// Re-seeds the per-rank decision streams and operation counters for a new
  /// world of `num_ranks` ranks.  Kill already-fired flags persist, which is
  /// what allows a recovery re-execution to run to completion.  Called by
  /// mp::run; must not race with an active world.
  void begin_world(int num_ranks);

  /// Full reset including fired kills (fresh experiment reusing the plan).
  void reset();

  /// Draws the fault decision for one transmission attempt by `rank`.
  SendFault on_send(int rank);

  /// Counts one communication operation of `rank` and reports whether an
  /// at-op kill fires here (the caller then throws RankFailure).
  bool kill_due_at_op(int rank);

  /// Reports whether an at-phase kill fires as `rank` enters `phase`.
  bool kill_due_at_phase(int rank, const char* phase);

  /// The rank's operation count so far this world (diagnostics).
  std::uint64_t ops_of(int rank) const;

  /// Original spec text when parsed, else a synthesized summary.
  const std::string& spec() const { return spec_; }

  /// Human-readable one-line description.
  std::string summary() const;

  bool has_faults() const {
    return drop_p_ > 0.0 || corrupt_p_ > 0.0 || delay_p_ > 0.0 ||
           !kills_.empty();
  }

 private:
  struct RankStream {
    Rng rng{0};
    std::uint64_t ops = 0;
  };

  std::uint64_t seed_;
  double drop_p_ = 0.0;
  double corrupt_p_ = 0.0;
  double delay_p_ = 0.0;
  double delay_s_ = 0.0;
  std::vector<KillSpec> kills_;
  std::vector<bool> kill_fired_;  // parallel to kills_
  std::vector<RankStream> streams_;
  std::string spec_;
};

/// Fault-tolerance configuration of one mp::run launch.  The default is the
/// pre-existing behaviour: no injection, no checksums, no timeouts, no
/// watchdog, and any rank failure aborts the whole world.
struct FaultToleranceOptions {
  /// Fault schedule to inject; null routes every fast path around the fault
  /// machinery (no checksum computation, no stream draws).  Not owned; must
  /// outlive the run.
  FaultPlan* fault_plan = nullptr;

  /// Retry policy for p2p transmissions the plan interferes with.
  RetryPolicy retry;

  /// recv() timeout in seconds (< 0 disables).  The same value bounds the
  /// real wait and is charged to the rank's virtual clock on expiry.
  double recv_timeout_seconds = -1.0;

  /// Fail-stop isolation: a RankFailure thrown inside a rank body marks only
  /// that rank dead (peers then observe RankFailure when they depend on it)
  /// instead of aborting the world.  Non-RankFailure exceptions always abort
  /// the world.  Inert unless fault machinery actually raises RankFailure.
  bool isolate_rank_failures = true;

  /// All-ranks-blocked watchdog: samples rank activity and aborts the run
  /// with DeadlockDetected (reporting who waits on whom) when no progress is
  /// possible.
  bool watchdog = false;
  double watchdog_interval_seconds = 0.25;
};

}  // namespace ptwgr::mp
