// Communication and compute cost model for the virtual-clock runtime.
//
// The paper evaluated on two machines whose communication characteristics
// drive its speedup results: a Sun SparcCenter 1000 (bus-based SMP, cheap
// synchronization) and an Intel Paragon (mesh DMP, expensive messages).
// Neither machine — nor even multiple cores — is available here, so the
// runtime charges each rank an α–β (latency + per-byte) cost per message and
// ⌈log₂P⌉ rounds per collective, on top of the rank's measured CPU time
// scaled by a relative core speed.  See DESIGN.md §2 for the substitution
// rationale.
#pragma once

#include <cmath>
#include <string>

namespace ptwgr::mp {

/// α–β message cost plus a relative compute-speed factor.
struct CostModel {
  /// Human-readable platform name (appears in benchmark output).
  std::string name = "ideal";
  /// Per-message startup latency α, seconds.
  double latency_s = 0.0;
  /// Per-byte transfer cost β, seconds.
  double per_byte_s = 0.0;
  /// Virtual seconds of compute per measured CPU second (>1 models a slower
  /// historical core; 1.0 reports native time).
  double compute_scale = 1.0;

  /// Cost of one point-to-point message of `bytes` payload.
  double message_cost(std::size_t bytes) const {
    return latency_s + per_byte_s * static_cast<double>(bytes);
  }

  /// Cost of a collective over `ranks` participants moving `bytes` per round
  /// (tree dissemination: ⌈log₂ ranks⌉ rounds).
  double collective_cost(int ranks, std::size_t bytes) const {
    if (ranks <= 1) return 0.0;
    const double rounds = std::ceil(std::log2(static_cast<double>(ranks)));
    return rounds * message_cost(bytes);
  }

  /// Free communication and native compute speed: speedups then reflect pure
  /// work partitioning.  Used by unit tests.
  static CostModel ideal() { return CostModel{}; }

  /// Sun SparcCenter 1000-like SMP: shared-bus transfers, low latency.
  static CostModel sparc_center_smp();

  /// Intel Paragon-like DMP: NX message passing, high per-message latency.
  static CostModel paragon_dmp();
};

}  // namespace ptwgr::mp
