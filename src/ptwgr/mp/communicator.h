// Rank-local handle for message passing — the library's MPI stand-in.
//
// The parallel routing algorithms are written against this interface exactly
// as they would be against MPI: ranks, tagged send/recv, and tree-cost
// collectives.  Each operation additionally advances the rank's *virtual
// clock*: measured thread CPU time (scaled by the platform's compute factor)
// accrues between operations, and each message/collective charges the α–β
// cost from the world's CostModel.  Reported parallel runtime is the maximum
// final virtual clock across ranks (see DESIGN.md §2).
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "ptwgr/mp/comm_stats.h"
#include "ptwgr/mp/world.h"
#include "ptwgr/obs/ledger.h"
#include "ptwgr/obs/resource.h"
#include "ptwgr/support/check.h"
#include "ptwgr/support/serialize.h"
#include "ptwgr/support/timer.h"

namespace ptwgr::mp {

/// A received message plus a typed view over its payload.
struct Received {
  Envelope envelope;

  Reader reader() const { return Reader(envelope.payload); }
};

class Communicator {
 public:
  /// Binds rank `rank` of `world`; must be used only from the rank's thread.
  /// The causal ledger is resolved here — one relaxed atomic load per rank
  /// per run; every operation afterwards pays a cached null-pointer test.
  /// A ledger not sized for this world (begin_run not called, or called for
  /// a different rank count) stays disabled rather than recording garbage.
  Communicator(World& world, int rank)
      : world_(&world),
        rank_(rank),
        last_cpu_(thread_cpu_seconds()),
        ledger_(obs::active_ledger()) {
    PTWGR_EXPECTS(rank >= 0 && rank < world.size);
    if (ledger_ != nullptr && ledger_->num_ranks() != world.size) {
      ledger_ = nullptr;
    }
  }

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  int rank() const { return rank_; }
  int size() const { return world_->size; }
  const CostModel& cost_model() const { return world_->cost; }

  /// Current virtual time (accrues pending compute first).
  double vtime() {
    accrue_compute();
    return vtime_;
  }

  /// Explicitly charges virtual seconds (tests; modeling I/O phases).
  /// Counted into the compute bucket of the vtime decomposition.
  void add_virtual_time(double seconds) {
    vtime_ += seconds;
    stats_.compute_seconds += seconds;
  }

  /// Rewinds the clock to a previously observed value, discarding the CPU
  /// spent since.  Used to exclude measurement-only work (metric gathering)
  /// from the reported routing time.  CPU accrued since the last operation
  /// is dropped before it ever reaches the compute bucket; work that already
  /// hit the clock through comm operations needs mark()/rewind() instead.
  void set_vtime(double vtime) {
    vtime_ = vtime;
    last_cpu_ = thread_cpu_seconds();
  }

  /// Snapshot of the clock and its decomposition, for rewinding measurement
  /// phases out of the reported time (see assemble_metrics).
  struct TimeMark {
    double vtime = 0.0;
    double compute_seconds = 0.0;
    double p2p_wait_seconds = 0.0;
    double collective_sync_seconds = 0.0;
    /// Causal-ledger stream position; rewind() truncates back to it so
    /// measurement-only collectives never enter the happens-before record
    /// (their timestamps would lie beyond the rewound clock).
    std::uint64_t ledger_end = 0;
  };

  TimeMark mark() {
    accrue_compute();
    TimeMark m{vtime_, stats_.compute_seconds, stats_.p2p_wait_seconds,
               stats_.collective_sync_seconds, 0};
    if (ledger_ != nullptr) m.ledger_end = ledger_->end_index(rank_);
    // The mark..rewind span is measurement-only by definition; keep its
    // allocations out of the resource record too (obs/resource.h).
    obs::resource_exclusion_begin();
    return m;
  }

  /// Restores the clock and all three vtime buckets to `m`, discarding the
  /// CPU spent since.  Message/byte counters are NOT rewound: the traffic
  /// happened and stays visible in the comm accounting.  Ledger events
  /// recorded since the mark are dropped (Lamport/sequence counters are
  /// not rewound, keeping sequence numbers unique).
  void rewind(const TimeMark& m) {
    obs::resource_exclusion_end();
    vtime_ = m.vtime;
    stats_.compute_seconds = m.compute_seconds;
    stats_.p2p_wait_seconds = m.p2p_wait_seconds;
    stats_.collective_sync_seconds = m.collective_sync_seconds;
    last_cpu_ = thread_cpu_seconds();
    if (ledger_ != nullptr) ledger_->truncate(rank_, m.ledger_end);
  }

  /// Communication counters and vtime decomposition so far (accrues pending
  /// compute first so the compute bucket is current).
  const CommStats& comm_stats() {
    accrue_compute();
    return stats_;
  }

  // --- point-to-point -------------------------------------------------

  /// Sends a raw payload.  tag must be non-negative (negative tags are
  /// reserved).  Sending to self is allowed.
  void send_bytes(int dest, int tag, std::vector<std::byte> payload);

  void send(int dest, int tag, Writer writer) {
    send_bytes(dest, tag, std::move(writer).take());
  }

  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    Writer w;
    w.put(value);
    send(dest, tag, std::move(w));
  }

  /// Blocks until a matching message arrives; source may be kAnySource, tag
  /// may be kAnyTag.  Under fault tolerance this may instead raise
  /// RecvTimeout (configured recv deadline expired) or RankFailure (waiting
  /// on a rank known to be dead); corrupted envelopes — checksum mismatch —
  /// are counted, discarded, and the wait continues for the retransmission.
  Received recv(int source, int tag);

  template <typename T>
  T recv_value(int source, int tag) {
    const Received r = recv(source, tag);
    Reader reader = r.reader();
    return reader.get<T>();
  }

  template <typename T>
  std::vector<T> recv_vector(int source, int tag) {
    const Received r = recv(source, tag);
    Reader reader = r.reader();
    return reader.get_vector<T>();
  }

  /// Non-blocking check for a matching queued message.
  bool probe(int source, int tag);

  // --- collectives ------------------------------------------------------

  /// Synchronizes all ranks; everyone leaves at the max clock plus ⌈log₂P⌉
  /// latency rounds.
  void barrier();

  /// Root's payload is delivered to every rank.
  std::vector<std::byte> broadcast_bytes(int root,
                                         std::vector<std::byte> payload);

  template <typename T>
  T broadcast_value(int root, const T& value) {
    Writer w;
    if (rank_ == root) w.put(value);
    const auto bytes = broadcast_bytes(root, std::move(w).take());
    Reader reader(bytes);
    return reader.get<T>();
  }

  template <typename T>
  std::vector<T> broadcast_vector(int root, const std::vector<T>& value) {
    Writer w;
    if (rank_ == root) w.put(value);
    const auto bytes = broadcast_bytes(root, std::move(w).take());
    Reader reader(bytes);
    return reader.get_vector<T>();
  }

  /// Element-wise reduction of equal-length vectors, result on all ranks.
  /// op(accumulator&, element) folds contributions in rank order, so
  /// non-commutative folds are still deterministic.
  template <typename T, typename Op>
  std::vector<T> allreduce(const std::vector<T>& values, Op op) {
    Writer w;
    w.put(values);
    auto combined = run_collective(
        CollectiveKind::Allreduce, std::move(w).take(),
        [op](std::vector<std::vector<std::byte>>& contrib,
             std::vector<std::vector<std::byte>>& out) {
          std::vector<T> acc;
          for (std::size_t r = 0; r < contrib.size(); ++r) {
            Reader reader(contrib[r]);
            auto vals = reader.get_vector<T>();
            if (r == 0) {
              acc = std::move(vals);
            } else {
              PTWGR_CHECK_MSG(vals.size() == acc.size(),
                              "allreduce vector length mismatch");
              for (std::size_t i = 0; i < acc.size(); ++i) op(acc[i], vals[i]);
            }
          }
          Writer out_w;
          out_w.put(acc);
          auto bytes = std::move(out_w).take();
          for (auto& slot : out) slot = bytes;
        });
    Reader reader(combined);
    return reader.get_vector<T>();
  }

  /// Scalar reduction on all ranks.
  template <typename T, typename Op>
  T allreduce_value(const T& value, Op op) {
    std::vector<T> one{value};
    return allreduce(one, op).front();
  }

  /// Every rank contributes one value; every rank receives all size() values
  /// indexed by rank.
  template <typename T>
  std::vector<T> allgather(const T& value) {
    Writer w;
    w.put(value);
    auto combined = run_collective(
        CollectiveKind::Allgather, std::move(w).take(),
        [](std::vector<std::vector<std::byte>>& contrib,
           std::vector<std::vector<std::byte>>& out) {
          Writer out_w;
          for (auto& c : contrib) {
            Reader reader(c);
            out_w.put(reader.get<T>());
          }
          auto bytes = std::move(out_w).take();
          for (auto& slot : out) slot = bytes;
        });
    Reader reader(combined);
    std::vector<T> result;
    result.reserve(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) result.push_back(reader.get<T>());
    return result;
  }

  /// Every rank contributes a vector; every rank receives all of them,
  /// indexed by source rank.
  template <typename T>
  std::vector<std::vector<T>> allgather_vectors(const std::vector<T>& values) {
    Writer w;
    w.put(values);
    auto combined = run_collective(
        CollectiveKind::Allgather, std::move(w).take(),
        [](std::vector<std::vector<std::byte>>& contrib,
           std::vector<std::vector<std::byte>>& out) {
          Writer out_w;
          for (auto& c : contrib) {
            Reader reader(c);
            out_w.put(reader.get_vector<T>());
          }
          auto bytes = std::move(out_w).take();
          for (auto& slot : out) slot = bytes;
        });
    Reader reader(combined);
    std::vector<std::vector<T>> result;
    result.reserve(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) result.push_back(reader.get_vector<T>());
    return result;
  }

  /// Root receives every rank's vector (indexed by source rank); non-roots
  /// receive an empty result.
  template <typename T>
  std::vector<std::vector<T>> gather_vectors(int root,
                                             const std::vector<T>& values) {
    Writer w;
    w.put(values);
    auto combined = run_collective(
        CollectiveKind::Gather, std::move(w).take(),
        [root](std::vector<std::vector<std::byte>>& contrib,
               std::vector<std::vector<std::byte>>& out) {
          Writer out_w;
          for (auto& c : contrib) {
            Reader reader(c);
            out_w.put(reader.get_vector<T>());
          }
          out[static_cast<std::size_t>(root)] = std::move(out_w).take();
        });
    std::vector<std::vector<T>> result;
    if (rank_ == root) {
      Reader reader(combined);
      result.reserve(static_cast<std::size_t>(size()));
      for (int r = 0; r < size(); ++r) result.push_back(reader.get_vector<T>());
    }
    return result;
  }

  /// Personalized all-to-all: outgoing[d] goes to rank d; returns the
  /// vector received from each source rank.
  template <typename T>
  std::vector<std::vector<T>> all_to_all(
      const std::vector<std::vector<T>>& outgoing) {
    PTWGR_EXPECTS(outgoing.size() == static_cast<std::size_t>(size()));
    Writer w;
    for (const auto& part : outgoing) w.put(part);
    const int nranks = size();
    auto combined = run_collective(
        CollectiveKind::AllToAll, std::move(w).take(),
        [nranks](std::vector<std::vector<std::byte>>& contrib,
                 std::vector<std::vector<std::byte>>& out) {
          // parts[s][d] = bytes rank s sends to rank d.
          std::vector<std::vector<std::vector<T>>> parts;
          parts.reserve(contrib.size());
          for (auto& c : contrib) {
            Reader reader(c);
            std::vector<std::vector<T>> from_s;
            from_s.reserve(static_cast<std::size_t>(nranks));
            for (int d = 0; d < nranks; ++d) {
              from_s.push_back(reader.get_vector<T>());
            }
            parts.push_back(std::move(from_s));
          }
          for (std::size_t d = 0; d < out.size(); ++d) {
            Writer out_w;
            for (std::size_t s = 0; s < parts.size(); ++s) {
              out_w.put(parts[s][d]);
            }
            out[d] = std::move(out_w).take();
          }
        });
    Reader reader(combined);
    std::vector<std::vector<T>> result;
    result.reserve(static_cast<std::size_t>(size()));
    for (int s = 0; s < size(); ++s) result.push_back(reader.get_vector<T>());
    return result;
  }

  /// Called once by the runtime as the rank body returns; records final
  /// clocks into the world.
  void finalize(double cpu_seconds);

  /// Phase-span hook (RankPhase transitions): triggers at-phase kills from
  /// the active fault plan.  No-op without a plan.
  void notify_phase(const char* phase);

 private:
  /// Folds pending thread-CPU time into the virtual clock.
  void accrue_compute();

  /// Per-operation fault hook: counts the operation and raises RankFailure
  /// for this rank when an at-op kill fires.  No-op without a plan.
  void fault_op_entry();

  /// Raises RankFailure when fail-stop isolation has marked a rank dead
  /// (collectives cannot complete without every rank).
  void check_world_health();

  /// Records a zero-width Fault event at the current clock (retries, kills,
  /// timeouts).  Caller guarantees ledger_ != nullptr.
  void ledger_fault(std::string label);

  /// Generation-counted rendezvous: every rank deposits `contribution`; the
  /// last arriver runs `combine` (filling one output buffer per rank) and
  /// advances everyone's clock to max(entry clocks) + the collective cost.
  /// Returns this rank's output buffer.  `kind` feeds the comm accounting.
  std::vector<std::byte> run_collective(
      CollectiveKind kind, std::vector<std::byte> contribution,
      const std::function<void(std::vector<std::vector<std::byte>>&,
                               std::vector<std::vector<std::byte>>&)>&
          combine);

  World* world_;
  int rank_;
  double vtime_ = 0.0;
  double last_cpu_;
  CommStats stats_;
  // Causal ledger (null when disabled — the per-op cost is this test).
  // The logical clocks advance only while the ledger records, so a
  // ledger-free run's envelopes carry zero stamps.
  obs::LedgerCollector* ledger_;
  std::uint64_t lamport_ = 0;
  std::uint64_t send_seq_ = 0;
  std::uint64_t collective_seq_ = 0;
};

// Reduction functors for allreduce.
struct SumOp {
  template <typename T>
  void operator()(T& acc, const T& x) const {
    acc += x;
  }
};
struct MinOp {
  template <typename T>
  void operator()(T& acc, const T& x) const {
    if (x < acc) acc = x;
  }
};
struct MaxOp {
  template <typename T>
  void operator()(T& acc, const T& x) const {
    if (acc < x) acc = x;
  }
};

}  // namespace ptwgr::mp
