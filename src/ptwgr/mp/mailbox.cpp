#include "ptwgr/mp/mailbox.h"

#include <algorithm>

namespace ptwgr::mp {
namespace {

bool matches(const Envelope& e, int source, int tag) {
  return (source == kAnySource || e.source == source) &&
         (tag == kAnyTag || e.tag == tag);
}

}  // namespace

void Mailbox::push(Envelope envelope) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(envelope));
  }
  cv_.notify_all();
}

std::optional<Envelope> Mailbox::try_take(int source, int tag) {
  const auto it = std::find_if(
      queue_.begin(), queue_.end(),
      [&](const Envelope& e) { return matches(e, source, tag); });
  if (it == queue_.end()) return std::nullopt;
  Envelope out = std::move(*it);
  queue_.erase(it);
  return out;
}

Envelope Mailbox::pop(int source, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (aborted_) throw WorldAborted{};
    if (auto taken = try_take(source, tag)) return std::move(*taken);
    cv_.wait(lock);
  }
}

bool Mailbox::probe(int source, int tag) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return std::any_of(queue_.begin(), queue_.end(), [&](const Envelope& e) {
    return matches(e, source, tag);
  });
}

std::size_t Mailbox::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void Mailbox::abort() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
  }
  cv_.notify_all();
}

}  // namespace ptwgr::mp
