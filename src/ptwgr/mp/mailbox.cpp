#include "ptwgr/mp/mailbox.h"

#include <algorithm>
#include <chrono>

namespace ptwgr::mp {
namespace {

bool matches(const Envelope& e, int source, int tag) {
  return (source == kAnySource || e.source == source) &&
         (tag == kAnyTag || e.tag == tag);
}

}  // namespace

Mailbox::~Mailbox() {
  // Messages still queued at teardown (aborted worlds, dead receivers) were
  // charged on push; keep the arena's live accounting balanced.
  for (const Envelope& e : queue_) {
    arena_discharge(arena_, e.payload.size());
  }
}

void Mailbox::push(Envelope envelope) {
  arena_charge(arena_, envelope.payload.size());
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(envelope));
  }
  cv_.notify_all();
}

std::optional<Envelope> Mailbox::try_take(int source, int tag) {
  const auto it = std::find_if(
      queue_.begin(), queue_.end(),
      [&](const Envelope& e) { return matches(e, source, tag); });
  if (it == queue_.end()) return std::nullopt;
  Envelope out = std::move(*it);
  queue_.erase(it);
  arena_discharge(arena_, out.payload.size());
  return out;
}

bool Mailbox::is_dead(int rank) const {
  return std::find(dead_ranks_.begin(), dead_ranks_.end(), rank) !=
         dead_ranks_.end();
}

Envelope Mailbox::pop(int source, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (aborted_) throw WorldAborted{};
    if (auto taken = try_take(source, tag)) return std::move(*taken);
    cv_.wait(lock);
  }
}

Mailbox::PopResult Mailbox::pop_bounded(int source, int tag,
                                        double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  const bool bounded = timeout_seconds >= 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(bounded ? timeout_seconds : 0.0));
  for (;;) {
    if (aborted_) throw WorldAborted{};
    if (auto taken = try_take(source, tag)) {
      return PopResult{PopStatus::Ok, std::move(*taken)};
    }
    // Queued messages win over death notices (sent-before-failure delivery);
    // only an empty match set from a dead peer is hopeless.
    if (source != kAnySource && is_dead(source)) {
      return PopResult{PopStatus::SourceDead, {}};
    }
    if (bounded) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        if (aborted_) throw WorldAborted{};
        if (auto taken = try_take(source, tag)) {
          return PopResult{PopStatus::Ok, std::move(*taken)};
        }
        if (source != kAnySource && is_dead(source)) {
          return PopResult{PopStatus::SourceDead, {}};
        }
        return PopResult{PopStatus::TimedOut, {}};
      }
    } else {
      cv_.wait(lock);
    }
  }
}

bool Mailbox::probe(int source, int tag) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return std::any_of(queue_.begin(), queue_.end(), [&](const Envelope& e) {
    return matches(e, source, tag);
  });
}

std::size_t Mailbox::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void Mailbox::abort() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
  }
  cv_.notify_all();
}

void Mailbox::mark_dead(int rank) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!is_dead(rank)) dead_ranks_.push_back(rank);
  }
  cv_.notify_all();
}

}  // namespace ptwgr::mp
