#include "ptwgr/mp/fault.h"

#include <cstdlib>
#include <sstream>

#include "ptwgr/support/check.h"

namespace ptwgr::mp {
namespace {

double parse_probability(const std::string& text, const std::string& entry) {
  char* end = nullptr;
  const double p = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || !(p >= 0.0) || p > 1.0) {
    throw FaultSpecError("fault plan: probability '" + text + "' in '" +
                         entry + "' must be in [0, 1]");
  }
  return p;
}

double parse_seconds(const std::string& text, const std::string& entry) {
  char* end = nullptr;
  const double s = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || !(s >= 0.0)) {
    throw FaultSpecError("fault plan: seconds '" + text + "' in '" + entry +
                         "' must be >= 0");
  }
  return s;
}

std::uint64_t parse_count(const std::string& text, const std::string& entry) {
  char* end = nullptr;
  const unsigned long long n = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || text[0] == '-') {
    throw FaultSpecError("fault plan: number '" + text + "' in '" + entry +
                         "' must be a non-negative integer");
  }
  return n;
}

KillSpec parse_kill(const std::string& value, const std::string& entry) {
  // rankR@opN | rankR@phase:NAME
  constexpr const char* kRank = "rank";
  const auto at = value.find('@');
  if (value.compare(0, 4, kRank) != 0 || at == std::string::npos) {
    throw FaultSpecError(
        "fault plan: kill spec '" + entry +
        "' must be kill=rankR@opN or kill=rankR@phase:NAME");
  }
  KillSpec kill;
  const std::string rank_text = value.substr(4, at - 4);
  kill.rank = static_cast<int>(parse_count(rank_text, entry));
  const std::string trigger = value.substr(at + 1);
  if (trigger.compare(0, 2, "op") == 0) {
    kill.at_op = parse_count(trigger.substr(2), entry);
    if (kill.at_op == 0) {
      throw FaultSpecError("fault plan: op index in '" + entry +
                           "' is 1-based and must be >= 1");
    }
  } else if (trigger.compare(0, 6, "phase:") == 0) {
    kill.at_phase = trigger.substr(6);
    if (kill.at_phase.empty()) {
      throw FaultSpecError("fault plan: empty phase name in '" + entry + "'");
    }
  } else {
    throw FaultSpecError("fault plan: kill trigger in '" + entry +
                         "' must be @opN or @phase:NAME");
  }
  return kill;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::stringstream entries(spec);
  std::string entry;
  while (std::getline(entries, entry, ';')) {
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string::npos) {
      throw FaultSpecError("fault plan: entry '" + entry +
                           "' is not KEY=VALUE");
    }
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "seed") {
      plan.seed_ = parse_count(value, entry);
    } else if (key == "drop") {
      plan.drop_p_ = parse_probability(value, entry);
    } else if (key == "corrupt") {
      plan.corrupt_p_ = parse_probability(value, entry);
    } else if (key == "delay") {
      const auto colon = value.find(':');
      if (colon == std::string::npos) {
        throw FaultSpecError("fault plan: '" + entry +
                             "' must be delay=P:SECONDS");
      }
      plan.delay_p_ = parse_probability(value.substr(0, colon), entry);
      plan.delay_s_ = parse_seconds(value.substr(colon + 1), entry);
    } else if (key == "kill") {
      plan.add_kill(parse_kill(value, entry));
    } else {
      throw FaultSpecError("fault plan: unknown key '" + key + "' in '" +
                           entry + "'");
    }
  }
  plan.spec_ = spec;
  return plan;
}

void FaultPlan::add_kill(KillSpec kill) {
  PTWGR_EXPECTS(kill.rank >= 0);
  // Exactly one trigger: at_op or at_phase.
  PTWGR_EXPECTS((kill.at_op > 0) != (!kill.at_phase.empty()));
  kills_.push_back(std::move(kill));
  kill_fired_.push_back(false);
}

void FaultPlan::begin_world(int num_ranks) {
  PTWGR_EXPECTS(num_ranks >= 1);
  streams_.clear();
  streams_.resize(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    // Distinct, scheduling-independent stream per rank.
    streams_[static_cast<std::size_t>(r)].rng.reseed(
        seed_ + std::uint64_t{0x9e3779b97f4a7c15} *
                    static_cast<std::uint64_t>(r + 1));
  }
}

void FaultPlan::reset() {
  streams_.clear();
  kill_fired_.assign(kills_.size(), false);
}

SendFault FaultPlan::on_send(int rank) {
  SendFault fault;
  auto& stream = streams_[static_cast<std::size_t>(rank)];
  // Always draw all three decisions so the stream position depends only on
  // the attempt count, not on which probabilities are non-zero.
  const double u_drop = stream.rng.next_double();
  const double u_corrupt = stream.rng.next_double();
  const double u_delay = stream.rng.next_double();
  fault.drop = u_drop < drop_p_;
  fault.corrupt = !fault.drop && u_corrupt < corrupt_p_;
  if (u_delay < delay_p_) fault.delay_s = delay_s_;
  return fault;
}

bool FaultPlan::kill_due_at_op(int rank) {
  auto& stream = streams_[static_cast<std::size_t>(rank)];
  ++stream.ops;
  for (std::size_t k = 0; k < kills_.size(); ++k) {
    if (kill_fired_[k]) continue;
    const KillSpec& kill = kills_[k];
    if (kill.rank == rank && kill.at_op != 0 && stream.ops >= kill.at_op) {
      kill_fired_[k] = true;
      return true;
    }
  }
  return false;
}

bool FaultPlan::kill_due_at_phase(int rank, const char* phase) {
  for (std::size_t k = 0; k < kills_.size(); ++k) {
    if (kill_fired_[k]) continue;
    const KillSpec& kill = kills_[k];
    if (kill.rank == rank && !kill.at_phase.empty() &&
        kill.at_phase == phase) {
      kill_fired_[k] = true;
      return true;
    }
  }
  return false;
}

std::uint64_t FaultPlan::ops_of(int rank) const {
  return streams_[static_cast<std::size_t>(rank)].ops;
}

std::string FaultPlan::summary() const {
  std::ostringstream os;
  os << "fault plan(seed=" << seed_;
  if (drop_p_ > 0.0) os << ", drop=" << drop_p_;
  if (corrupt_p_ > 0.0) os << ", corrupt=" << corrupt_p_;
  if (delay_p_ > 0.0) os << ", delay=" << delay_p_ << ":" << delay_s_;
  for (const KillSpec& kill : kills_) {
    os << ", kill=rank" << kill.rank;
    if (kill.at_op != 0) {
      os << "@op" << kill.at_op;
    } else {
      os << "@phase:" << kill.at_phase;
    }
  }
  os << ")";
  return os.str();
}

}  // namespace ptwgr::mp
