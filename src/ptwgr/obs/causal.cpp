#include "ptwgr/obs/causal.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <utility>

#include "ptwgr/mp/comm_stats.h"
#include "ptwgr/support/table.h"

namespace ptwgr::obs {
namespace {

constexpr const char* kSetupPhase = "(setup)";

double number_or(const json::Value& obj, const char* key, double fallback) {
  const json::Value* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

std::string string_or(const json::Value& obj, const char* key,
                      const std::string& fallback) {
  const json::Value* v = obj.find(key);
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

[[noreturn]] void malformed(const std::string& what) {
  throw std::runtime_error("ptwgr.ledger: " + what);
}

LedgerEventKind parse_kind(const std::string& k) {
  if (k == "phase") return LedgerEventKind::PhaseBegin;
  if (k == "send") return LedgerEventKind::Send;
  if (k == "recv") return LedgerEventKind::Recv;
  if (k == "coll") return LedgerEventKind::Collective;
  if (k == "fault") return LedgerEventKind::Fault;
  malformed("unknown event kind '" + k + "'");
}

int collective_kind_index(const std::string& op) {
  for (std::size_t k = 0; k < mp::kNumCollectiveKinds; ++k) {
    if (op == mp::to_string(static_cast<mp::CollectiveKind>(k))) {
      return static_cast<int>(k);
    }
  }
  return 0;  // unknown ops degrade to Barrier for display only
}

RankLedger parse_rank_ledger(const json::Value& node, bool* has_times) {
  if (!node.is_object()) malformed("rank ledger is not an object");
  RankLedger rank;
  rank.rank = static_cast<int>(number_or(node, "rank", 0));
  rank.dropped = static_cast<std::uint64_t>(number_or(node, "dropped", 0));
  const json::Value* final_vtime = node.find("final_vtime");
  if (final_vtime == nullptr) *has_times = false;
  rank.final_vtime = final_vtime != nullptr && final_vtime->is_number()
                         ? final_vtime->as_number()
                         : 0.0;
  const json::Value* events = node.find("events");
  if (events == nullptr || !events->is_array()) {
    malformed("rank ledger without an events array");
  }
  for (const json::Value& raw : events->as_array()) {
    if (!raw.is_object()) malformed("event is not an object");
    LedgerEvent event;
    event.kind = parse_kind(string_or(raw, "k", ""));
    if (raw.find("t0") == nullptr) *has_times = false;
    event.t0 = number_or(raw, "t0", 0.0);
    event.t1 = number_or(raw, "t1", 0.0);
    event.lamport = static_cast<std::uint64_t>(number_or(raw, "lc", 0));
    event.peer = static_cast<int>(number_or(raw, "peer", -1));
    event.bytes = static_cast<std::uint64_t>(number_or(raw, "bytes", 0));
    event.seq = static_cast<std::uint64_t>(number_or(raw, "seq", 0));
    event.label = string_or(raw, "label", "");
    if (event.kind == LedgerEventKind::Collective) {
      event.tag = collective_kind_index(string_or(raw, "op", "barrier"));
    } else {
      event.tag = static_cast<int>(number_or(raw, "tag", 0));
    }
    rank.events.push_back(std::move(event));
  }
  return rank;
}

/// Phase timeline of one rank: (begin time, name) pairs in stream order.
struct PhaseTimeline {
  std::vector<std::pair<double, std::string>> begins;

  const std::string& phase_at(double t) const {
    static const std::string setup = kSetupPhase;
    const std::string* best = &setup;
    for (const auto& [begin, name] : begins) {
      if (begin <= t) best = &name;
      else break;
    }
    return *best;
  }
};

AttributionBucket& phase_bucket(RankAttribution& rank,
                                const std::string& phase) {
  for (PhaseAttribution& entry : rank.phases) {
    if (entry.phase == phase) return entry.bucket;
  }
  rank.phases.push_back(PhaseAttribution{phase, {}});
  return rank.phases.back().bucket;
}

std::string format_seconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", seconds);
  return std::string(buf);
}

}  // namespace

const char* to_string(CriticalSegment::Kind kind) {
  switch (kind) {
    case CriticalSegment::Kind::Compute:
      return "compute";
    case CriticalSegment::Kind::Message:
      return "message";
    case CriticalSegment::Kind::Collective:
      return "collective";
  }
  return "?";
}

ParsedLedger parse_ledger(const json::Value& doc) {
  if (!doc.is_object()) malformed("document is not an object");
  if (string_or(doc, "schema", "") != "ptwgr.ledger") {
    malformed("not a ptwgr.ledger document (schema mismatch)");
  }
  ParsedLedger ledger;
  ledger.version = static_cast<int>(number_or(doc, "version", 0));
  if (ledger.version > kLedgerVersion) {
    malformed("ledger version " + std::to_string(ledger.version) +
              " is newer than this analyzer (" +
              std::to_string(kLedgerVersion) + ")");
  }
  ledger.algorithm = string_or(doc, "algorithm", "");
  ledger.circuit = string_or(doc, "circuit", "");
  ledger.seed = static_cast<std::uint64_t>(number_or(doc, "seed", 0));
  ledger.ranks = static_cast<int>(number_or(doc, "ranks", 0));
  ledger.ring_capacity =
      static_cast<std::uint64_t>(number_or(doc, "ring_capacity", 0));
  if (const json::Value* platform = doc.find("platform")) {
    ledger.platform.name = string_or(*platform, "name", "ideal");
    ledger.platform.latency_s = number_or(*platform, "latency_s", 0.0);
    ledger.platform.per_byte_s = number_or(*platform, "per_byte_s", 0.0);
    ledger.platform.compute_scale =
        number_or(*platform, "compute_scale", 1.0);
  }
  const json::Value* ranks = doc.find("rank_ledgers");
  if (ranks == nullptr || !ranks->is_array()) {
    malformed("missing rank_ledgers array");
  }
  for (const json::Value& node : ranks->as_array()) {
    ledger.rank_ledgers.push_back(parse_rank_ledger(node, &ledger.has_times));
  }
  if (const json::Value* notes = doc.find("notes")) {
    for (const json::Value& note : notes->as_array()) {
      ledger.notes.push_back(note.as_string());
    }
  }
  if (const json::Value* postmortems = doc.find("postmortems")) {
    for (const json::Value& node : postmortems->as_array()) {
      PostmortemBundle bundle;
      bundle.reason = string_or(node, "reason", "");
      if (const json::Value* bundle_ranks = node.find("rank_ledgers")) {
        bool unused = true;
        for (const json::Value& rank_node : bundle_ranks->as_array()) {
          bundle.ranks.push_back(parse_rank_ledger(rank_node, &unused));
        }
      }
      ledger.postmortems.push_back(std::move(bundle));
    }
  }
  return ledger;
}

CausalAnalysis analyze(const ParsedLedger& ledger) {
  if (!ledger.has_times) {
    throw std::runtime_error(
        "ptwgr.ledger: canonical (times-stripped) document cannot be "
        "analyzed; re-run with timestamps included");
  }
  CausalAnalysis analysis;
  const std::size_t num_ranks = ledger.rank_ledgers.size();
  if (num_ranks == 0) return analysis;

  // --- makespan and per-rank phase timelines ----------------------------
  std::vector<PhaseTimeline> timelines(num_ranks);
  for (std::size_t r = 0; r < num_ranks; ++r) {
    const RankLedger& rank = ledger.rank_ledgers[r];
    analysis.makespan = std::max(analysis.makespan, rank.final_vtime);
    if (rank.dropped > 0) analysis.truncated = true;
    for (const LedgerEvent& event : rank.events) {
      analysis.makespan = std::max(analysis.makespan, event.t1);
      if (event.kind == LedgerEventKind::PhaseBegin) {
        timelines[r].begins.emplace_back(event.t0, event.label);
      }
    }
  }

  // --- attribution: every rank's timeline tiles [0, makespan] -----------
  for (std::size_t r = 0; r < num_ranks; ++r) {
    const RankLedger& rank = ledger.rank_ledgers[r];
    RankAttribution attribution;
    attribution.rank = rank.rank;
    attribution.final_vtime = rank.final_vtime;
    std::string current_phase = kSetupPhase;
    double prev_end = 0.0;
    const auto add = [&](double compute, double p2p, double coll) {
      AttributionBucket& bucket = phase_bucket(attribution, current_phase);
      bucket.compute += compute;
      bucket.p2p_wait += p2p;
      bucket.collective_sync += coll;
      attribution.total.compute += compute;
      attribution.total.p2p_wait += p2p;
      attribution.total.collective_sync += coll;
    };
    for (const LedgerEvent& event : rank.events) {
      const double gap = event.t0 - prev_end;
      if (gap > 0.0) add(gap, 0.0, 0.0);
      switch (event.kind) {
        case LedgerEventKind::PhaseBegin:
          current_phase = event.label;
          break;
        case LedgerEventKind::Send:
        case LedgerEventKind::Recv:
          add(0.0, event.t1 - event.t0, 0.0);
          break;
        case LedgerEventKind::Collective:
          add(0.0, 0.0, event.t1 - event.t0);
          break;
        case LedgerEventKind::Fault:
          break;  // zero width
      }
      prev_end = std::max(prev_end, event.t1);
    }
    // The tail between the last event and the rank's final clock is compute
    // (routing work after the last communication).
    if (rank.final_vtime > prev_end) {
      add(rank.final_vtime - prev_end, 0.0, 0.0);
    }
    attribution.end_slack = analysis.makespan - rank.final_vtime;
    analysis.total_compute_seconds += attribution.total.compute;
    analysis.total_p2p_wait_seconds += attribution.total.p2p_wait;
    analysis.total_collective_sync_seconds +=
        attribution.total.collective_sync;
    analysis.ranks.push_back(std::move(attribution));
  }

  double max_compute = 0.0;
  for (const RankAttribution& rank : analysis.ranks) {
    max_compute = std::max(max_compute, rank.total.compute);
  }
  const double mean_compute =
      analysis.total_compute_seconds / static_cast<double>(num_ranks);
  analysis.imbalance_ratio =
      mean_compute > 0.0 ? max_compute / mean_compute : 1.0;
  analysis.effective_parallelism =
      analysis.makespan > 0.0
          ? analysis.total_compute_seconds / analysis.makespan
          : 0.0;

  // --- happens-before indices -------------------------------------------
  // Sends by (sender rank, sequence); collectives grouped by ordinal.
  std::map<std::pair<int, std::uint64_t>, const LedgerEvent*> send_of;
  std::map<std::uint64_t, std::vector<std::pair<int, const LedgerEvent*>>>
      collective_of;
  for (std::size_t r = 0; r < num_ranks; ++r) {
    for (const LedgerEvent& event : ledger.rank_ledgers[r].events) {
      if (event.kind == LedgerEventKind::Send) {
        send_of[{static_cast<int>(r), event.seq}] = &event;
      } else if (event.kind == LedgerEventKind::Collective) {
        collective_of[event.seq].emplace_back(static_cast<int>(r), &event);
      }
    }
  }

  // --- backward critical-path walk --------------------------------------
  // Start on the makespan-defining rank and walk the timeline backwards.
  // A gap before the previous event is compute; a send contributes its
  // transfer; a recv that waited hands the path to the matched sender at
  // the departure clock (the sender's own Send event then supplies the
  // transfer tile, so nothing is double-counted); a collective blames the
  // last arriver and charges the dissemination rounds.  The emitted
  // segments tile [0, makespan] exactly — that is invariant 1.
  const double eps = 1e-12 * std::max(1.0, analysis.makespan);
  std::size_t start_rank = 0;
  for (std::size_t r = 1; r < num_ranks; ++r) {
    if (ledger.rank_ledgers[r].final_vtime >
        ledger.rank_ledgers[start_rank].final_vtime) {
      start_rank = r;
    }
  }
  std::vector<std::size_t> cursor(num_ranks);
  for (std::size_t r = 0; r < num_ranks; ++r) {
    cursor[r] = ledger.rank_ledgers[r].events.size();
  }
  std::vector<CriticalSegment> path;  // built backwards
  int rank = static_cast<int>(start_rank);
  double now = analysis.makespan;
  const auto emit = [&](CriticalSegment segment) {
    if (segment.t1 - segment.t0 > 0.0) {
      segment.phase =
          timelines[static_cast<std::size_t>(segment.rank)].phase_at(
              segment.t0 + eps);
      path.push_back(std::move(segment));
    }
  };
  while (now > eps) {
    const std::vector<LedgerEvent>& events =
        ledger.rank_ledgers[static_cast<std::size_t>(rank)].events;
    std::size_t& idx = cursor[static_cast<std::size_t>(rank)];
    // Events that end after the current path position are not on the path.
    while (idx > 0 && events[idx - 1].t1 > now + eps) --idx;
    if (idx == 0) {
      // Start of this rank's record: everything back to t=0 is compute
      // (or, on a truncated ring, unknown — flagged above).
      CriticalSegment segment;
      segment.kind = CriticalSegment::Kind::Compute;
      segment.rank = rank;
      segment.t0 = 0.0;
      segment.t1 = now;
      emit(segment);
      break;
    }
    const LedgerEvent& event = events[idx - 1];
    if (event.t1 < now - eps) {
      CriticalSegment segment;
      segment.kind = CriticalSegment::Kind::Compute;
      segment.rank = rank;
      segment.t0 = event.t1;
      segment.t1 = now;
      emit(segment);
      now = event.t1;
      continue;
    }
    --idx;
    switch (event.kind) {
      case LedgerEventKind::PhaseBegin:
      case LedgerEventKind::Fault:
        break;  // zero width; keep walking at the same clock
      case LedgerEventKind::Send: {
        CriticalSegment segment;
        segment.kind = CriticalSegment::Kind::Message;
        segment.rank = rank;
        segment.t0 = event.t0;
        segment.t1 = event.t1;
        segment.peer = event.peer;
        segment.bytes = event.bytes;
        segment.op = "tag " + std::to_string(event.tag);
        segment.modeled_cost =
            ledger.platform.message_cost(static_cast<std::size_t>(event.bytes));
        emit(segment);
        now = event.t0;
        break;
      }
      case LedgerEventKind::Recv: {
        if (event.t1 - event.t0 <= eps) break;  // message was already there
        const auto sender = send_of.find({event.peer, event.seq});
        if (sender == send_of.end()) {
          // Matched send fell off a ring (or predates a truncation): charge
          // the wait here and keep walking locally.
          analysis.truncated = true;
          CriticalSegment segment;
          segment.kind = CriticalSegment::Kind::Message;
          segment.rank = rank;
          segment.t0 = event.t0;
          segment.t1 = event.t1;
          segment.peer = event.peer;
          segment.bytes = event.bytes;
          segment.op = "tag " + std::to_string(event.tag) + " (unmatched)";
          segment.modeled_cost = ledger.platform.message_cost(
              static_cast<std::size_t>(event.bytes));
          emit(segment);
          now = event.t0;
          break;
        }
        // The receiver waited, so its exit clock IS the sender's departure
        // clock; hand the path over without emitting a tile.
        rank = event.peer;
        now = event.t1;
        break;
      }
      case LedgerEventKind::Collective: {
        const auto group = collective_of.find(event.seq);
        int blamed = rank;
        const LedgerEvent* blamed_event = &event;
        std::uint64_t max_bytes = event.bytes;
        if (group != collective_of.end()) {
          if (group->second.size() < num_ranks) analysis.truncated = true;
          for (const auto& [member_rank, member] : group->second) {
            max_bytes = std::max(max_bytes, member->bytes);
            if (member->t0 > blamed_event->t0 + eps ||
                (std::abs(member->t0 - blamed_event->t0) <= eps &&
                 member_rank < blamed)) {
              blamed = member_rank;
              blamed_event = member;
            }
          }
        }
        CriticalSegment segment;
        segment.kind = CriticalSegment::Kind::Collective;
        segment.rank = blamed;
        segment.t0 = blamed_event->t0;
        segment.t1 = event.t1;
        segment.bytes = max_bytes;
        segment.op = mp::to_string(static_cast<mp::CollectiveKind>(event.tag));
        segment.modeled_cost = ledger.platform.collective_cost(
            static_cast<int>(num_ranks), static_cast<std::size_t>(max_bytes));
        emit(segment);
        rank = blamed;
        now = blamed_event->t0;
        break;
      }
    }
  }
  std::reverse(path.begin(), path.end());
  for (const CriticalSegment& segment : path) {
    analysis.critical_path_seconds += segment.seconds();
    switch (segment.kind) {
      case CriticalSegment::Kind::Compute:
        analysis.critical_compute_seconds += segment.seconds();
        break;
      case CriticalSegment::Kind::Message:
        analysis.critical_message_seconds += segment.seconds();
        break;
      case CriticalSegment::Kind::Collective:
        analysis.critical_collective_seconds += segment.seconds();
        break;
    }
  }
  analysis.critical_path = std::move(path);
  analysis.speedup_bound =
      analysis.critical_compute_seconds > 0.0
          ? analysis.total_compute_seconds / analysis.critical_compute_seconds
          : 0.0;
  return analysis;
}

std::vector<std::string> check_invariants(const CausalAnalysis& analysis,
                                          double tolerance) {
  std::vector<std::string> violations;
  const double tol = tolerance * std::max(1.0, analysis.makespan);
  if (analysis.critical_path_seconds > analysis.makespan + tol) {
    violations.push_back(
        "critical path (" + format_seconds(analysis.critical_path_seconds) +
        "s) exceeds the makespan (" + format_seconds(analysis.makespan) +
        "s)");
  }
  if (!analysis.truncated &&
      std::abs(analysis.critical_path_seconds - analysis.makespan) > tol) {
    violations.push_back(
        "critical path (" + format_seconds(analysis.critical_path_seconds) +
        "s) does not tile the makespan (" +
        format_seconds(analysis.makespan) + "s)");
  }
  if (!analysis.truncated) {
    for (const RankAttribution& rank : analysis.ranks) {
      const double sum = rank.total.total() + rank.end_slack;
      if (std::abs(sum - analysis.makespan) > tol) {
        violations.push_back(
            "rank " + std::to_string(rank.rank) + " attribution (" +
            format_seconds(sum) + "s) does not sum to the makespan (" +
            format_seconds(analysis.makespan) + "s)");
      }
    }
  }
  return violations;
}

namespace {

/// Longest-first view of the critical path, capped at top_k.
std::vector<const CriticalSegment*> top_segments(
    const CausalAnalysis& analysis, std::size_t top_k) {
  std::vector<const CriticalSegment*> sorted;
  sorted.reserve(analysis.critical_path.size());
  for (const CriticalSegment& segment : analysis.critical_path) {
    sorted.push_back(&segment);
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const CriticalSegment* a, const CriticalSegment* b) {
                     return a->seconds() > b->seconds();
                   });
  if (sorted.size() > top_k) sorted.resize(top_k);
  return sorted;
}

std::string segment_detail(const CriticalSegment& segment) {
  switch (segment.kind) {
    case CriticalSegment::Kind::Compute:
      return "";
    case CriticalSegment::Kind::Message:
      return segment.op + " -> rank " + std::to_string(segment.peer) + ", " +
             std::to_string(segment.bytes) + " B";
    case CriticalSegment::Kind::Collective:
      return segment.op + ", " + std::to_string(segment.bytes) + " B";
  }
  return "";
}

}  // namespace

std::string analysis_to_json(const ParsedLedger& ledger,
                             const CausalAnalysis& analysis, std::size_t top_k,
                             double serial_seconds) {
  std::string out =
      "{\"schema\":\"ptwgr.causal_report\",\"version\":" +
      json::number(static_cast<std::int64_t>(kCausalReportVersion));
  out += ",\"algorithm\":" + json::quoted(ledger.algorithm);
  out += ",\"circuit\":" + json::quoted(ledger.circuit);
  out += ",\"seed\":" + json::number(ledger.seed);
  out += ",\"ranks\":" + json::number(static_cast<std::int64_t>(ledger.ranks));
  out += ",\"platform\":" + json::quoted(ledger.platform.name);
  out += ",\"truncated\":";
  out += analysis.truncated ? "true" : "false";
  out += ",\"makespan_seconds\":" + json::number(analysis.makespan);
  out += ",\"critical_path_seconds\":" +
         json::number(analysis.critical_path_seconds);
  out += ",\"critical_breakdown\":{\"compute\":" +
         json::number(analysis.critical_compute_seconds);
  out += ",\"message\":" + json::number(analysis.critical_message_seconds);
  out += ",\"collective\":" +
         json::number(analysis.critical_collective_seconds) + "}";
  out += ",\"total_compute_seconds\":" +
         json::number(analysis.total_compute_seconds);
  out += ",\"total_p2p_wait_seconds\":" +
         json::number(analysis.total_p2p_wait_seconds);
  out += ",\"total_collective_sync_seconds\":" +
         json::number(analysis.total_collective_sync_seconds);
  out += ",\"imbalance_ratio\":" + json::number(analysis.imbalance_ratio);
  out += ",\"effective_parallelism\":" +
         json::number(analysis.effective_parallelism);
  out += ",\"speedup_bound\":" + json::number(analysis.speedup_bound);
  if (serial_seconds > 0.0 && analysis.makespan > 0.0) {
    out += ",\"serial_seconds\":" + json::number(serial_seconds);
    out += ",\"achieved_speedup\":" +
           json::number(serial_seconds / analysis.makespan);
  }
  out += ",\"ranks_attribution\":[";
  for (std::size_t r = 0; r < analysis.ranks.size(); ++r) {
    const RankAttribution& rank = analysis.ranks[r];
    if (r != 0) out += ",";
    out += "\n {\"rank\":" +
           json::number(static_cast<std::int64_t>(rank.rank));
    out += ",\"final_vtime\":" + json::number(rank.final_vtime);
    out += ",\"end_slack\":" + json::number(rank.end_slack);
    out += ",\"compute\":" + json::number(rank.total.compute);
    out += ",\"p2p_wait\":" + json::number(rank.total.p2p_wait);
    out += ",\"collective_sync\":" +
           json::number(rank.total.collective_sync);
    out += ",\"phases\":[";
    for (std::size_t p = 0; p < rank.phases.size(); ++p) {
      const PhaseAttribution& phase = rank.phases[p];
      if (p != 0) out += ",";
      out += "{\"phase\":" + json::quoted(phase.phase);
      out += ",\"compute\":" + json::number(phase.bucket.compute);
      out += ",\"p2p_wait\":" + json::number(phase.bucket.p2p_wait);
      out += ",\"collective_sync\":" +
             json::number(phase.bucket.collective_sync) + "}";
    }
    out += "]}";
  }
  out += "]";
  out += ",\"critical_path\":[";
  const auto top = top_segments(analysis, top_k);
  for (std::size_t i = 0; i < top.size(); ++i) {
    const CriticalSegment& segment = *top[i];
    if (i != 0) out += ",";
    out += "\n {\"kind\":" + json::quoted(to_string(segment.kind));
    out += ",\"rank\":" +
           json::number(static_cast<std::int64_t>(segment.rank));
    out += ",\"phase\":" + json::quoted(segment.phase);
    out += ",\"t0\":" + json::number(segment.t0);
    out += ",\"seconds\":" + json::number(segment.seconds());
    if (segment.kind != CriticalSegment::Kind::Compute) {
      if (segment.peer >= 0) {
        out += ",\"peer\":" +
               json::number(static_cast<std::int64_t>(segment.peer));
      }
      out += ",\"bytes\":" + json::number(segment.bytes);
      out += ",\"op\":" + json::quoted(segment.op);
      out += ",\"modeled_cost\":" + json::number(segment.modeled_cost);
    }
    out += "}";
  }
  out += "]";
  if (!ledger.postmortems.empty()) {
    out += ",\"postmortem_count\":" +
           json::number(static_cast<std::uint64_t>(ledger.postmortems.size()));
  }
  out += "}\n";
  return out;
}

std::string analysis_tables(const ParsedLedger& ledger,
                            const CausalAnalysis& analysis, std::size_t top_k,
                            double serial_seconds) {
  std::string out;
  {
    TextTable table("Causal summary — " + ledger.algorithm + " on " +
                    ledger.circuit + " (" + ledger.platform.name + ", " +
                    std::to_string(ledger.ranks) + " ranks)");
    table.add_row({"metric", "value"});
    table.add_row({"makespan (s)", format_seconds(analysis.makespan)});
    table.add_row({"critical path (s)",
                   format_seconds(analysis.critical_path_seconds)});
    table.add_row({"  compute on path (s)",
                   format_seconds(analysis.critical_compute_seconds)});
    table.add_row({"  messages on path (s)",
                   format_seconds(analysis.critical_message_seconds)});
    table.add_row({"  collectives on path (s)",
                   format_seconds(analysis.critical_collective_seconds)});
    table.add_row({"total compute, all ranks (s)",
                   format_seconds(analysis.total_compute_seconds)});
    table.add_row({"total p2p wait (s)",
                   format_seconds(analysis.total_p2p_wait_seconds)});
    table.add_row({"total collective sync (s)",
                   format_seconds(analysis.total_collective_sync_seconds)});
    table.add_row(
        {"imbalance ratio (max/mean)", format_fixed(analysis.imbalance_ratio, 3)});
    table.add_row({"effective parallelism",
                   format_fixed(analysis.effective_parallelism, 3)});
    table.add_row(
        {"speedup bound (dependence)", format_fixed(analysis.speedup_bound, 3)});
    if (serial_seconds > 0.0 && analysis.makespan > 0.0) {
      table.add_row({"achieved speedup",
                     format_fixed(serial_seconds / analysis.makespan, 3)});
    }
    if (analysis.truncated) {
      table.add_row({"coverage", "TRUNCATED (ring drops)"});
    }
    out += table.to_string();
    out += "\n";
  }
  {
    TextTable table("Per-rank attribution (seconds; rows sum to makespan)");
    table.add_row({"rank", "compute", "p2p wait", "coll sync", "end slack",
                   "final vtime"});
    for (const RankAttribution& rank : analysis.ranks) {
      table.add_row({std::to_string(rank.rank),
                     format_seconds(rank.total.compute),
                     format_seconds(rank.total.p2p_wait),
                     format_seconds(rank.total.collective_sync),
                     format_seconds(rank.end_slack),
                     format_seconds(rank.final_vtime)});
    }
    out += table.to_string();
    out += "\n";
  }
  {
    // Per-phase totals across ranks, in first-appearance order.
    std::vector<std::string> order;
    std::map<std::string, AttributionBucket> totals;
    for (const RankAttribution& rank : analysis.ranks) {
      for (const PhaseAttribution& phase : rank.phases) {
        if (totals.find(phase.phase) == totals.end()) {
          order.push_back(phase.phase);
        }
        AttributionBucket& bucket = totals[phase.phase];
        bucket.compute += phase.bucket.compute;
        bucket.p2p_wait += phase.bucket.p2p_wait;
        bucket.collective_sync += phase.bucket.collective_sync;
      }
    }
    TextTable table("Per-phase totals across ranks (seconds)");
    table.add_row({"phase", "compute", "p2p wait", "coll sync"});
    for (const std::string& phase : order) {
      const AttributionBucket& bucket = totals[phase];
      table.add_row({phase, format_seconds(bucket.compute),
                     format_seconds(bucket.p2p_wait),
                     format_seconds(bucket.collective_sync)});
    }
    out += table.to_string();
    out += "\n";
  }
  {
    TextTable table("Top critical-path segments (longest first)");
    table.add_row({"#", "kind", "rank", "phase", "start (s)", "seconds",
                   "detail"});
    const auto top = top_segments(analysis, top_k);
    for (std::size_t i = 0; i < top.size(); ++i) {
      const CriticalSegment& segment = *top[i];
      table.add_row({std::to_string(i + 1), to_string(segment.kind),
                     std::to_string(segment.rank), segment.phase,
                     format_seconds(segment.t0),
                     format_seconds(segment.seconds()),
                     segment_detail(segment)});
    }
    out += table.to_string();
  }
  return out;
}

std::string postmortem_tables(const ParsedLedger& ledger,
                              std::size_t tail_events) {
  std::string out;
  for (std::size_t p = 0; p < ledger.postmortems.size(); ++p) {
    const PostmortemBundle& bundle = ledger.postmortems[p];
    out += "postmortem " + std::to_string(p + 1) + ": " + bundle.reason + "\n";
    for (const RankLedger& rank : bundle.ranks) {
      out += "  rank " + std::to_string(rank.rank) + " (" +
             std::to_string(rank.events.size()) + " events";
      if (rank.dropped > 0) {
        out += ", " + std::to_string(rank.dropped) + " dropped";
      }
      out += "):\n";
      const std::size_t first =
          rank.events.size() > tail_events ? rank.events.size() - tail_events
                                           : 0;
      for (std::size_t i = first; i < rank.events.size(); ++i) {
        const LedgerEvent& event = rank.events[i];
        out += "    [" + format_seconds(event.t0) + ", " +
               format_seconds(event.t1) + "] " + to_string(event.kind);
        switch (event.kind) {
          case LedgerEventKind::Send:
          case LedgerEventKind::Recv:
            out += " peer=" + std::to_string(event.peer) +
                   " tag=" + std::to_string(event.tag) +
                   " bytes=" + std::to_string(event.bytes) +
                   " seq=" + std::to_string(event.seq);
            break;
          case LedgerEventKind::Collective:
            out += " op=" +
                   std::string(mp::to_string(
                       static_cast<mp::CollectiveKind>(event.tag))) +
                   " bytes=" + std::to_string(event.bytes) +
                   " seq=" + std::to_string(event.seq);
            break;
          case LedgerEventKind::PhaseBegin:
          case LedgerEventKind::Fault:
            out += " " + event.label;
            break;
        }
        out += " lc=" + std::to_string(event.lamport) + "\n";
      }
    }
  }
  for (const std::string& note : ledger.notes) {
    out += "note: " + note + "\n";
  }
  return out;
}

}  // namespace ptwgr::obs
