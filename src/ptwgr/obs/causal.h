// Happens-before analysis over a serialized causal ledger (obs/ledger.h):
// DAG reconstruction, critical-path extraction, and per-rank/per-phase
// compute-vs-wait attribution.
//
// The analyzer is the library behind tools/ptwgr_analyze.  It consumes the
// "ptwgr.ledger" JSON document, replays each rank's event stream, and
// answers the question the paper's speedup tables (Tables 2–5) raise but
// cannot explain: *which* rank, phase, or message chain limits scaling
// under the α–β cost model.
//
// Two invariants tie the analysis to the runtime's clock semantics and are
// checked by tests and CI (check_invariants):
//   1. critical_path_seconds ≤ makespan, with equality on untruncated
//      ledgers — the path tiles [0, makespan] with no overlap;
//   2. per rank, compute + p2p_wait + collective_sync + end_slack equals the
//      makespan (within 1e-9 relative) — attribution loses nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ptwgr/mp/cost_model.h"
#include "ptwgr/obs/ledger.h"
#include "ptwgr/support/json.h"

namespace ptwgr::obs {

inline constexpr int kCausalReportVersion = 1;

/// A deserialized "ptwgr.ledger" document.
struct ParsedLedger {
  int version = 0;
  std::string algorithm;
  std::string circuit;
  std::uint64_t seed = 0;
  int ranks = 0;
  mp::CostModel platform;
  std::uint64_t ring_capacity = 0;
  /// False for canonical (times-stripped) documents; analysis needs times.
  bool has_times = true;
  std::vector<RankLedger> rank_ledgers;
  std::vector<std::string> notes;
  std::vector<PostmortemBundle> postmortems;
};

/// Parses a ledger document; throws std::runtime_error on schema mismatch
/// or malformed structure (json::ParseError propagates from json::parse).
ParsedLedger parse_ledger(const json::Value& doc);

/// vtime decomposition of one scope (a rank, or one phase of a rank).
struct AttributionBucket {
  double compute = 0.0;
  double p2p_wait = 0.0;
  double collective_sync = 0.0;

  double total() const { return compute + p2p_wait + collective_sync; }
};

struct PhaseAttribution {
  std::string phase;
  AttributionBucket bucket;
};

struct RankAttribution {
  int rank = 0;
  double final_vtime = 0.0;
  /// makespan − final_vtime: idle tail while slower ranks finish.
  double end_slack = 0.0;
  AttributionBucket total;
  /// Per-phase split, in first-appearance order ("(setup)" covers events
  /// before the first phase marker).
  std::vector<PhaseAttribution> phases;
};

/// One tile of the critical path, in forward time order.
struct CriticalSegment {
  enum class Kind : std::uint8_t {
    Compute = 0,  ///< the blamed rank was computing
    Message,      ///< a p2p transfer (or an unmatched recv wait)
    Collective,   ///< dissemination rounds after the last arriver's entry
  };

  Kind kind = Kind::Compute;
  int rank = 0;  ///< the blamed rank
  double t0 = 0.0;
  double t1 = 0.0;
  std::string phase;
  int peer = -1;            ///< message destination/source
  std::uint64_t bytes = 0;  ///< message payload / max collective contribution
  std::string op;           ///< collective kind; "tag N" for messages
  /// The α–β charge the CostModel assigns this edge (message_cost or
  /// collective_cost); differs from t1−t0 when retries/injected delays
  /// stretched the transfer.
  double modeled_cost = 0.0;

  double seconds() const { return t1 - t0; }
};

const char* to_string(CriticalSegment::Kind kind);

struct CausalAnalysis {
  double makespan = 0.0;
  double critical_path_seconds = 0.0;
  double critical_compute_seconds = 0.0;
  double critical_message_seconds = 0.0;
  double critical_collective_seconds = 0.0;
  double total_compute_seconds = 0.0;
  double total_p2p_wait_seconds = 0.0;
  double total_collective_sync_seconds = 0.0;
  /// max rank compute / mean rank compute (1.0 = perfectly balanced).
  double imbalance_ratio = 1.0;
  /// total compute / makespan: how many ranks were effectively busy.
  double effective_parallelism = 0.0;
  /// total compute / critical-path compute: the speedup no schedule can
  /// beat while this dependence chain exists (comm-free upper bound).
  double speedup_bound = 0.0;
  /// Ring mode dropped events, or a matched peer was missing: coverage is
  /// partial and the equality invariants are relaxed.
  bool truncated = false;
  std::vector<CriticalSegment> critical_path;  // forward time order
  std::vector<RankAttribution> ranks;
};

/// Replays the ledger: per-rank attribution, then the backward critical-path
/// walk from the makespan-defining rank (DESIGN.md §12).  Requires
/// has_times; throws std::runtime_error on a canonical document.
CausalAnalysis analyze(const ParsedLedger& ledger);

/// Checks the two report invariants; returns human-readable violation
/// messages (empty when everything holds).  `tolerance` is relative to
/// max(1, makespan).  Truncated analyses skip the equality checks.
std::vector<std::string> check_invariants(const CausalAnalysis& analysis,
                                          double tolerance = 1e-9);

/// Versioned JSON report ("schema": "ptwgr.causal_report").  `top_k` bounds
/// the emitted critical-path segments (longest first); `serial_seconds` > 0
/// additionally reports the achieved speedup against that serial time.
std::string analysis_to_json(const ParsedLedger& ledger,
                             const CausalAnalysis& analysis, std::size_t top_k,
                             double serial_seconds = 0.0);

/// Human-readable tables: summary, per-rank attribution, per-phase totals,
/// and the top-k critical-path segments.
std::string analysis_tables(const ParsedLedger& ledger,
                            const CausalAnalysis& analysis, std::size_t top_k,
                            double serial_seconds = 0.0);

/// Renders the postmortem bundles (reason + each rank's event tail).
std::string postmortem_tables(const ParsedLedger& ledger,
                              std::size_t tail_events = 5);

}  // namespace ptwgr::obs
