#include "ptwgr/obs/run_report.h"

#include "ptwgr/support/json.h"

namespace ptwgr::obs {

namespace {

using json::number;
using json::quoted;

void append_field(std::string& out, const char* name, const std::string& value,
                  bool& first) {
  if (!first) out += ",";
  first = false;
  out += quoted(name);
  out += ":";
  out += value;
}

std::string int_array(const std::vector<std::int64_t>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ",";
    out += number(values[i]);
  }
  out += "]";
  return out;
}

std::string summary_json(const DistributionSummary& s) {
  std::string out = "{";
  bool first = true;
  append_field(out, "count", number(s.count), first);
  append_field(out, "total", number(s.total), first);
  append_field(out, "min", number(s.min), first);
  append_field(out, "max", number(s.max), first);
  append_field(out, "mean", number(s.mean), first);
  append_field(out, "p50", number(s.p50), first);
  append_field(out, "p90", number(s.p90), first);
  append_field(out, "p99", number(s.p99), first);
  out += "}";
  return out;
}

std::string heatmap_json(const Heatmap& map) {
  std::string out = "{";
  bool first = true;
  append_field(out, "rows", number(static_cast<std::int64_t>(map.rows)),
               first);
  append_field(out, "cols", number(static_cast<std::int64_t>(map.cols)),
               first);
  append_field(out, "column_width", number(map.column_width), first);
  append_field(out, "max", number(map.max_cell()), first);
  std::string cells = "[";
  for (std::size_t r = 0; r < map.rows; ++r) {
    if (r != 0) cells += ",";
    cells += "[";
    for (std::size_t c = 0; c < map.cols; ++c) {
      if (c != 0) cells += ",";
      cells += number(map.at(r, c));
    }
    cells += "]";
  }
  cells += "]";
  append_field(out, "cells", cells, first);
  out += "}";
  return out;
}

std::string flip_sweep_json(const FlipSweepStats& flips) {
  std::string out = "{";
  bool first = true;
  append_field(out, "decisions", number(flips.decisions), first);
  append_field(out, "flips", number(flips.flips), first);
  append_field(out, "passes",
               number(static_cast<std::int64_t>(flips.passes)), first);
  append_field(out, "acceptance_rate", number(flips.acceptance_rate()),
               first);
  out += "}";
  return out;
}

std::string comm_stats_json(const mp::CommStats& comm) {
  std::string out = "{";
  bool first = true;
  append_field(out, "messages_sent", number(comm.messages_sent), first);
  append_field(out, "bytes_sent", number(comm.bytes_sent), first);
  append_field(out, "messages_received", number(comm.messages_received),
               first);
  append_field(out, "bytes_received", number(comm.bytes_received), first);
  append_field(out, "p2p_retries", number(comm.p2p_retries), first);
  append_field(out, "recv_timeouts", number(comm.recv_timeouts), first);
  std::string collectives = "{";
  bool cfirst = true;
  for (std::size_t k = 0; k < mp::kNumCollectiveKinds; ++k) {
    if (comm.collective_calls[k] == 0) continue;
    std::string entry = "{";
    bool efirst = true;
    append_field(entry, "calls", number(comm.collective_calls[k]), efirst);
    append_field(entry, "bytes", number(comm.collective_bytes[k]), efirst);
    entry += "}";
    append_field(collectives,
                 mp::to_string(static_cast<mp::CollectiveKind>(k)), entry,
                 cfirst);
  }
  collectives += "}";
  append_field(out, "collectives", collectives, first);
  append_field(out, "compute_seconds", number(comm.compute_seconds), first);
  append_field(out, "p2p_wait_seconds", number(comm.p2p_wait_seconds), first);
  append_field(out, "collective_sync_seconds",
               number(comm.collective_sync_seconds), first);
  out += "}";
  return out;
}

std::string metrics_json(const RoutingMetrics& metrics) {
  std::string out = "{";
  bool first = true;
  append_field(out, "tracks", number(metrics.track_count), first);
  append_field(out, "area", number(metrics.area), first);
  append_field(out, "wirelength", number(metrics.total_wirelength), first);
  append_field(out, "feedthroughs",
               number(static_cast<std::int64_t>(metrics.feedthrough_count)),
               first);
  append_field(out, "channel_density", int_array(metrics.channel_density),
               first);
  std::string coarse = "{";
  bool sfirst = true;
  append_field(coarse, "decisions", number(metrics.coarse_decisions), sfirst);
  append_field(coarse, "flips", number(metrics.coarse_flips), sfirst);
  coarse += "}";
  append_field(out, "coarse_sweep", coarse, first);
  std::string sw = "{";
  sfirst = true;
  append_field(sw, "decisions", number(metrics.switch_decisions), sfirst);
  append_field(sw, "flips", number(metrics.switch_flips), sfirst);
  sw += "}";
  append_field(out, "switch_sweep", sw, first);
  out += "}";
  return out;
}

}  // namespace

std::string snapshot_to_json(const PhaseSnapshot& snapshot) {
  std::string out = "{";
  bool first = true;
  append_field(out, "phase", quoted(to_string(snapshot.phase)), first);

  if (snapshot.net_count > 0) {
    std::string trees = "{";
    bool tfirst = true;
    append_field(trees, "nets", number(snapshot.net_count), tfirst);
    append_field(trees, "edges", number(snapshot.tree_edge_count), tfirst);
    append_field(trees, "inter_row_edges",
                 number(snapshot.inter_row_edge_count), tfirst);
    append_field(trees, "total_cost", number(snapshot.tree_cost), tfirst);
    append_field(trees, "per_net_cost",
                 summary_json(snapshot.per_net_tree_cost), tfirst);
    trees += "}";
    append_field(out, "trees", trees, first);
  }

  if (!snapshot.channel_use.empty() || !snapshot.crossing_demand.empty()) {
    std::string maps = "{";
    bool mfirst = true;
    if (!snapshot.channel_use.empty()) {
      append_field(maps, "channel_use", heatmap_json(snapshot.channel_use),
                   mfirst);
    }
    if (!snapshot.crossing_demand.empty()) {
      append_field(maps, "crossing_demand",
                   heatmap_json(snapshot.crossing_demand), mfirst);
    }
    maps += "}";
    append_field(out, "heatmap", maps, first);
  }

  if (!snapshot.feedthroughs_per_row.empty()) {
    std::string ft = "{";
    bool ffirst = true;
    append_field(ft, "total", number(snapshot.feedthrough_total), ffirst);
    append_field(ft, "per_row", int_array(snapshot.feedthroughs_per_row),
                 ffirst);
    ft += "}";
    append_field(out, "feedthroughs", ft, first);
  }

  if (snapshot.wire_count > 0) {
    std::string wires = "{";
    bool wfirst = true;
    append_field(wires, "count", number(snapshot.wire_count), wfirst);
    append_field(wires, "total_wirelength",
                 number(snapshot.total_wirelength), wfirst);
    append_field(wires, "per_net_wirelength",
                 summary_json(snapshot.per_net_wirelength), wfirst);
    wires += "}";
    append_field(out, "wires", wires, first);
  }

  if (!snapshot.channel_density.empty()) {
    std::string density = "{";
    bool dfirst = true;
    append_field(density, "exact",
                 snapshot.density_exact ? "true" : "false", dfirst);
    append_field(density, "track_count", number(snapshot.track_count),
                 dfirst);
    append_field(density, "per_channel", int_array(snapshot.channel_density),
                 dfirst);
    append_field(density, "summary", summary_json(snapshot.density_summary),
                 dfirst);
    density += "}";
    append_field(out, "density", density, first);
  }

  if (snapshot.flip_sweep.decisions > 0 || snapshot.flip_sweep.passes > 0) {
    append_field(out, "flip_sweep", flip_sweep_json(snapshot.flip_sweep),
                 first);
  }

  out += "}";
  return out;
}

void RunReport::fill_snapshots(const QualityCollector& collector) {
  snapshots = collector.finalize();
  has_snapshots = true;
}

void RunReport::clear_volatile() {
  step_timings = StepTimings{};
  modeled_seconds = 0.0;
  wall_seconds = 0.0;
  total_cpu_seconds = 0.0;
  for (RankReport& r : rank_reports) {
    r.vtime_seconds = 0.0;
    r.cpu_seconds = 0.0;
    r.comm.compute_seconds = 0.0;
    r.comm.p2p_wait_seconds = 0.0;
    r.comm.collective_sync_seconds = 0.0;
    r.comm.retry_backoff_seconds = 0.0;
    r.comm.injected_delay_seconds = 0.0;
  }
}

std::string RunReport::to_json() const {
  std::string out = "{\n";
  bool first = true;
  append_field(out, "schema", quoted("ptwgr.run_report"), first);
  out += "\n";
  append_field(out, "version",
               number(static_cast<std::int64_t>(kRunReportVersion)), first);
  out += "\n";

  {
    std::string config = "{";
    bool cfirst = true;
    append_field(config, "algorithm", quoted(algorithm), cfirst);
    append_field(config, "seed", number(seed), cfirst);
    append_field(config, "ranks", number(static_cast<std::int64_t>(ranks)),
                 cfirst);
    append_field(config, "platform", quoted(platform), cfirst);
    std::string rt = "{";
    bool rfirst = true;
    append_field(rt, "column_width", number(router.column_width), rfirst);
    append_field(rt, "feedthrough_width", number(router.feedthrough_width),
                 rfirst);
    append_field(rt, "coarse_passes",
                 number(static_cast<std::int64_t>(router.coarse_passes)),
                 rfirst);
    append_field(rt, "switchable_passes",
                 number(static_cast<std::int64_t>(router.switchable_passes)),
                 rfirst);
    append_field(rt, "steiner_row_cost", number(router.steiner_row_cost),
                 rfirst);
    append_field(rt, "switch_bucket_width",
                 number(router.switch_bucket_width), rfirst);
    rt += "}";
    append_field(config, "router", rt, cfirst);
    config += "}";
    append_field(out, "config", config, first);
    out += "\n";
  }

  {
    std::string c = "{";
    bool cfirst = true;
    append_field(c, "source", quoted(circuit_source), cfirst);
    append_field(c, "rows", number(static_cast<std::int64_t>(circuit.rows)),
                 cfirst);
    append_field(c, "cells", number(static_cast<std::int64_t>(circuit.cells)),
                 cfirst);
    append_field(c, "pins", number(static_cast<std::int64_t>(circuit.pins)),
                 cfirst);
    append_field(c, "nets", number(static_cast<std::int64_t>(circuit.nets)),
                 cfirst);
    append_field(c, "max_pins_on_net",
                 number(static_cast<std::int64_t>(circuit.max_pins_on_net)),
                 cfirst);
    append_field(c, "mean_pins_per_net", number(circuit.mean_pins_per_net),
                 cfirst);
    append_field(c, "core_width", number(circuit.core_width), cfirst);
    c += "}";
    append_field(out, "circuit", c, first);
    out += "\n";
  }

  if (has_snapshots) {
    std::string snaps = "[\n";
    for (std::size_t i = 0; i < snapshots.size(); ++i) {
      if (i != 0) snaps += ",\n";
      snaps += snapshot_to_json(snapshots[i]);
    }
    snaps += "\n]";
    append_field(out, "snapshots", snaps, first);
    out += "\n";
  }

  append_field(out, "metrics", metrics_json(metrics), first);
  out += "\n";

  {
    std::string timing = "{";
    bool tfirst = true;
    if (has_step_timings) {
      std::string steps = "{";
      bool sfirst = true;
      append_field(steps, "steiner", number(step_timings.steiner), sfirst);
      append_field(steps, "coarse", number(step_timings.coarse), sfirst);
      append_field(steps, "feedthrough", number(step_timings.feedthrough),
                   sfirst);
      append_field(steps, "connect", number(step_timings.connect), sfirst);
      append_field(steps, "switchable", number(step_timings.switchable),
                   sfirst);
      append_field(steps, "total", number(step_timings.total()), sfirst);
      steps += "}";
      append_field(timing, "serial_step_seconds", steps, tfirst);
    }
    append_field(timing, "modeled_seconds", number(modeled_seconds), tfirst);
    append_field(timing, "wall_seconds", number(wall_seconds), tfirst);
    append_field(timing, "total_cpu_seconds", number(total_cpu_seconds),
                 tfirst);
    timing += "}";
    append_field(out, "timing", timing, first);
    out += "\n";
  }

  if (!rank_reports.empty()) {
    std::string ranks_json = "[\n";
    for (std::size_t i = 0; i < rank_reports.size(); ++i) {
      const RankReport& r = rank_reports[i];
      if (i != 0) ranks_json += ",\n";
      std::string entry = "{";
      bool efirst = true;
      append_field(entry, "rank", number(static_cast<std::int64_t>(r.rank)),
                   efirst);
      append_field(entry, "vtime_seconds", number(r.vtime_seconds), efirst);
      append_field(entry, "cpu_seconds", number(r.cpu_seconds), efirst);
      append_field(entry, "comm", comm_stats_json(r.comm), efirst);
      entry += "}";
      ranks_json += entry;
    }
    ranks_json += "\n]";
    append_field(out, "ranks", ranks_json, first);
    out += "\n";
  }

  {
    std::string recovery = "{";
    bool rfirst = true;
    append_field(recovery, "attempts",
                 number(static_cast<std::int64_t>(recovery_attempts)),
                 rfirst);
    std::string failed = "[";
    for (std::size_t i = 0; i < failed_ranks.size(); ++i) {
      if (i != 0) failed += ",";
      failed += number(static_cast<std::int64_t>(failed_ranks[i]));
    }
    failed += "]";
    append_field(recovery, "failed_ranks", failed, rfirst);
    recovery += "}";
    append_field(out, "recovery", recovery, first);
    out += "\n";
  }

  out += "}\n";
  return out;
}

}  // namespace ptwgr::obs
