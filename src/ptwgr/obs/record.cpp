#include "ptwgr/obs/record.h"

namespace ptwgr::obs {

std::vector<std::pair<std::size_t, std::int64_t>> feedthrough_rows(
    const Circuit& circuit) {
  std::vector<std::int64_t> counts(circuit.num_rows(), 0);
  for (const Cell& cell : circuit.cells()) {
    if (cell.kind == CellKind::Feedthrough) ++counts[cell.row.index()];
  }
  std::vector<std::pair<std::size_t, std::int64_t>> rows;
  for (std::size_t r = 0; r < counts.size(); ++r) {
    if (counts[r] > 0) rows.emplace_back(r, counts[r]);
  }
  return rows;
}

std::int64_t count_switchable(const std::vector<Wire>& wires) {
  std::int64_t count = 0;
  for (const Wire& w : wires) {
    if (w.switchable) ++count;
  }
  return count;
}

}  // namespace ptwgr::obs
