#include "ptwgr/obs/snapshot.h"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "ptwgr/route/grid.h"
#include "ptwgr/support/check.h"
#include "ptwgr/support/interval.h"

namespace ptwgr::obs {

namespace {

std::atomic<QualityCollector*> g_collector{nullptr};

/// Nearest-rank percentile of a sorted non-empty vector.
std::int64_t percentile(const std::vector<std::int64_t>& sorted, double p) {
  const auto n = sorted.size();
  const auto rank = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(n) - 1.0,
                       p * static_cast<double>(n)));
  return sorted[rank];
}

/// Sorted (by key) snapshot of a hash map's values.
std::vector<std::int64_t> sorted_values(
    const std::unordered_map<std::uint32_t, std::int64_t>& map) {
  std::vector<std::pair<std::uint32_t, std::int64_t>> entries(map.begin(),
                                                              map.end());
  std::sort(entries.begin(), entries.end());
  std::vector<std::int64_t> values;
  values.reserve(entries.size());
  for (const auto& [key, value] : entries) values.push_back(value);
  return values;
}

void merge_heatmap(Heatmap& into, std::size_t rows, std::size_t cols,
                   Coord column_width) {
  if (into.cells.empty()) {
    into.rows = rows;
    into.cols = cols;
    into.column_width = column_width;
    into.cells.assign(rows * cols, 0);
  } else {
    PTWGR_CHECK_MSG(into.rows == rows && into.cols == cols,
                    "heatmap contribution shape mismatch: have "
                        << into.rows << "x" << into.cols << ", got " << rows
                        << "x" << cols);
  }
}

}  // namespace

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::Steiner: return "steiner";
    case Phase::Coarse: return "coarse";
    case Phase::Feedthrough: return "feedthrough";
    case Phase::Connect: return "connect";
    case Phase::Switchable: return "switchable";
  }
  return "?";
}

DistributionSummary summarize(std::vector<std::int64_t> values) {
  DistributionSummary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = static_cast<std::int64_t>(values.size());
  s.min = values.front();
  s.max = values.back();
  for (const std::int64_t v : values) s.total += v;
  s.mean = static_cast<double>(s.total) / static_cast<double>(s.count);
  s.p50 = percentile(values, 0.50);
  s.p90 = percentile(values, 0.90);
  s.p99 = percentile(values, 0.99);
  return s;
}

std::int64_t Heatmap::max_cell() const {
  std::int64_t max = 0;
  for (const std::int64_t c : cells) max = std::max(max, c);
  return max;
}

std::string render_heatmap_ascii(const Heatmap& map, const std::string& label) {
  std::ostringstream os;
  os << label << " (" << map.rows << " rows x " << map.cols
     << " cols, column width " << map.column_width << ")\n";
  if (map.empty()) {
    os << "  (empty)\n";
    return os.str();
  }
  const std::int64_t max = map.max_cell();
  os << "  scale: '.'=0";
  if (max > 0) {
    os << ", '1'..'9' up to " << max << ", '#'=" << max;
  }
  os << "\n";
  // Top row first, matching the usual die orientation.
  for (std::size_t r = map.rows; r-- > 0;) {
    os << "  " << (r < 10 ? " " : "") << r << " |";
    for (std::size_t c = 0; c < map.cols; ++c) {
      const std::int64_t v = map.at(r, c);
      char glyph = '.';
      if (v > 0 && max > 0) {
        if (v == max) {
          glyph = '#';
        } else {
          const auto bucket = static_cast<std::int64_t>(
              1 + (9 * (v - 1)) / std::max<std::int64_t>(max, 1));
          glyph = static_cast<char>(
              '0' + std::min<std::int64_t>(bucket, 9));
        }
      }
      os << glyph;
    }
    os << "|\n";
  }
  return os.str();
}

std::vector<std::int64_t> exact_channel_density(
    std::size_t num_channels, const std::vector<Wire>& wires) {
  // Density counts nets, so each net's wires within a channel are merged
  // into their union before the overlap sweep (as in compute_metrics).
  std::vector<std::vector<std::pair<std::uint32_t, Interval>>> per_channel(
      num_channels);
  for (const Wire& wire : wires) {
    PTWGR_CHECK_MSG(wire.channel < num_channels,
                    "wire channel " << wire.channel << " out of range");
    per_channel[wire.channel].emplace_back(wire.net.value(),
                                           Interval{wire.lo, wire.hi});
  }
  std::vector<std::int64_t> density(num_channels, 0);
  for (std::size_t c = 0; c < num_channels; ++c) {
    auto& entries = per_channel[c];
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<Interval> channel_intervals;
    std::vector<Interval> net_intervals;
    std::size_t i = 0;
    while (i < entries.size()) {
      const std::uint32_t net = entries[i].first;
      net_intervals.clear();
      for (; i < entries.size() && entries[i].first == net; ++i) {
        net_intervals.push_back(entries[i].second);
      }
      for (const Interval& iv : merge_intervals(net_intervals)) {
        channel_intervals.push_back(iv);
      }
    }
    density[c] = max_overlap(std::move(channel_intervals));
  }
  return density;
}

void QualityCollector::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (PhaseAccum& p : phases_) p = PhaseAccum{};
}

void QualityCollector::add_trees(
    const std::vector<std::pair<std::uint32_t, std::int64_t>>& per_net_costs,
    std::int64_t edge_count, std::int64_t inter_row_edge_count) {
  const std::lock_guard<std::mutex> lock(mutex_);
  PhaseAccum& p = accum(Phase::Steiner);
  p.touched = true;
  p.edge_count += edge_count;
  p.inter_row_edge_count += inter_row_edge_count;
  for (const auto& [net, cost] : per_net_costs) p.per_net_cost[net] += cost;
}

void QualityCollector::add_grid(Phase phase, const CoarseGrid& grid,
                                std::size_t row_offset,
                                std::size_t channel_offset,
                                std::size_t global_rows) {
  const std::lock_guard<std::mutex> lock(mutex_);
  PhaseAccum& p = accum(phase);
  p.touched = true;
  const std::size_t cols = grid.num_columns();
  merge_heatmap(p.crossing_demand, global_rows, cols, grid.column_width());
  merge_heatmap(p.channel_use, global_rows + 1, cols, grid.column_width());
  for (std::size_t r = 0; r < grid.num_rows(); ++r) {
    const std::size_t gr = row_offset + r;
    PTWGR_CHECK_MSG(gr < global_rows, "grid row contribution out of range");
    for (std::size_t c = 0; c < cols; ++c) {
      p.crossing_demand.cells[gr * cols + c] += grid.feedthrough_demand(r, c);
    }
  }
  for (std::size_t ch = 0; ch < grid.num_channels(); ++ch) {
    const std::size_t gch = channel_offset + ch;
    PTWGR_CHECK_MSG(gch < global_rows + 1,
                    "grid channel contribution out of range");
    for (std::size_t c = 0; c < cols; ++c) {
      p.channel_use.cells[gch * cols + c] += grid.channel_use(ch, c);
    }
  }
}

void QualityCollector::add_feedthroughs(
    const std::vector<std::pair<std::size_t, std::int64_t>>& per_row,
    std::size_t global_rows) {
  const std::lock_guard<std::mutex> lock(mutex_);
  PhaseAccum& p = accum(Phase::Feedthrough);
  p.touched = true;
  if (p.feedthroughs_per_row.size() < global_rows) {
    p.feedthroughs_per_row.resize(global_rows, 0);
  }
  for (const auto& [row, count] : per_row) {
    PTWGR_CHECK_MSG(row < global_rows, "feedthrough row out of range");
    p.feedthroughs_per_row[row] += count;
  }
}

void QualityCollector::add_wires(Phase phase, const std::vector<Wire>& wires,
                                 std::size_t num_channels) {
  // Compute the (rank-local, exact) density before taking the lock.
  std::vector<std::int64_t> local_density =
      exact_channel_density(num_channels, wires);
  const std::lock_guard<std::mutex> lock(mutex_);
  PhaseAccum& p = accum(phase);
  p.touched = true;
  p.wire_count += static_cast<std::int64_t>(wires.size());
  for (const Wire& wire : wires) {
    p.per_net_wirelength[wire.net.value()] += wire.length();
  }
  if (p.density_sum.size() < num_channels) {
    p.density_sum.resize(num_channels, 0);
  }
  for (std::size_t c = 0; c < num_channels; ++c) {
    p.density_sum[c] += local_density[c];
  }
  ++p.density_contributors;
}

void QualityCollector::add_flips(Phase phase, std::int64_t decisions,
                                 std::int64_t flips, int passes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  PhaseAccum& p = accum(phase);
  p.touched = true;
  p.flips.decisions += decisions;
  p.flips.flips += flips;
  p.flips.passes = std::max(p.flips.passes, passes);
}

void QualityCollector::set_exact_density(
    Phase phase, const std::vector<std::int64_t>& density) {
  const std::lock_guard<std::mutex> lock(mutex_);
  PhaseAccum& p = accum(phase);
  p.touched = true;
  p.exact_density = density;
  p.has_exact_density = true;
}

std::array<PhaseSnapshot, kNumPhases> QualityCollector::finalize() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::array<PhaseSnapshot, kNumPhases> snapshots;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const PhaseAccum& p = phases_[i];
    PhaseSnapshot& s = snapshots[i];
    s.phase = static_cast<Phase>(i);

    // Distinct nets, not contributions: a net spanning several row blocks
    // is recorded once per block but is still one net.
    s.net_count = static_cast<std::int64_t>(p.per_net_cost.size());
    s.tree_edge_count = p.edge_count;
    s.inter_row_edge_count = p.inter_row_edge_count;
    if (!p.per_net_cost.empty()) {
      s.per_net_tree_cost = summarize(sorted_values(p.per_net_cost));
      s.tree_cost = s.per_net_tree_cost.total;
    }

    s.channel_use = p.channel_use;
    s.crossing_demand = p.crossing_demand;

    s.feedthroughs_per_row = p.feedthroughs_per_row;
    for (const std::int64_t n : s.feedthroughs_per_row) {
      s.feedthrough_total += n;
    }

    s.wire_count = p.wire_count;
    if (!p.per_net_wirelength.empty()) {
      s.per_net_wirelength = summarize(sorted_values(p.per_net_wirelength));
      s.total_wirelength = s.per_net_wirelength.total;
    }
    if (p.has_exact_density) {
      s.channel_density = p.exact_density;
      s.density_exact = true;
    } else {
      s.channel_density = p.density_sum;
      s.density_exact = p.density_contributors <= 1;
    }
    if (!s.channel_density.empty()) {
      s.density_summary = summarize(s.channel_density);
      s.track_count = s.density_summary.total;
    }

    s.flip_sweep = p.flips;
  }
  return snapshots;
}

bool QualityCollector::any_recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const PhaseAccum& p : phases_) {
    if (p.touched) return true;
  }
  return false;
}

QualityCollector* active_quality() {
  return g_collector.load(std::memory_order_relaxed);
}

void set_active_quality(QualityCollector* collector) {
  g_collector.store(collector, std::memory_order_release);
}

}  // namespace ptwgr::obs
