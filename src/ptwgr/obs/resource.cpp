#include "ptwgr/obs/resource.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <stdexcept>

#if __has_include(<malloc.h>)
#include <malloc.h>
#define PTWGR_HAVE_MALLOC_USABLE_SIZE 1
#endif

namespace ptwgr::obs {

namespace {

constexpr const char* kUntaggedPhase = "(untagged)";

// --- phase registry --------------------------------------------------------
//
// Append-only, process-wide, constant-initialized: phase ids must be
// resolvable from any thread at any time without allocating (registration
// may run while a caller holds arbitrary locks, but never while holding the
// allocator — resource_set_phase is not called from operator new).

constinit std::atomic<const char*> g_phase_names[kResourceMaxPhases] = {
    kUntaggedPhase};
constinit std::atomic<std::uint32_t> g_phase_count{1};
std::mutex g_phase_mutex;

const char* phase_name(std::uint32_t id) noexcept {
  if (id >= kResourceMaxPhases) return kUntaggedPhase;
  const char* name = g_phase_names[id].load(std::memory_order_relaxed);
  return name != nullptr ? name : kUntaggedPhase;
}

std::uint32_t phase_id(const char* name) noexcept {
  const std::uint32_t n = g_phase_count.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    const char* s = g_phase_names[i].load(std::memory_order_relaxed);
    if (s == name || std::strcmp(s, name) == 0) return i;
  }
  const std::lock_guard<std::mutex> lock(g_phase_mutex);
  const std::uint32_t m = g_phase_count.load(std::memory_order_acquire);
  for (std::uint32_t i = n; i < m; ++i) {
    const char* s = g_phase_names[i].load(std::memory_order_relaxed);
    if (s == name || std::strcmp(s, name) == 0) return i;
  }
  if (m >= kResourceMaxPhases) return 0;  // registry full: fold to untagged
  g_phase_names[m].store(name, std::memory_order_relaxed);
  g_phase_count.store(m + 1, std::memory_order_release);
  return m;
}

// --- thread attribution state ----------------------------------------------
//
// constinit so the first access from an interposed operator (which can
// happen before any ptwgr code runs) needs no dynamic TLS initialization.

struct ThreadState {
  int rank_slot;
  std::uint32_t phase;
  int excluded;
  ResourceCollector* collector;  ///< owner of the cached cell
  ResourceCollector::Cell* cell;
};

constinit thread_local ThreadState t_state{0, 0, 0, nullptr, nullptr};

constinit std::atomic<ResourceCollector*> g_active{nullptr};

double now_seconds() noexcept {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t usable_size(void* ptr) noexcept {
#ifdef PTWGR_HAVE_MALLOC_USABLE_SIZE
  return ::malloc_usable_size(ptr);
#else
  (void)ptr;
  return 0;  // live-byte accounting degrades gracefully
#endif
}

void atomic_max(std::atomic<std::int64_t>& target, std::int64_t value) noexcept {
  std::int64_t cur = target.load(std::memory_order_relaxed);
  while (value > cur && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::uint64_t>& target,
                std::uint64_t value) noexcept {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (value > cur && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

ResourceCollector::ResourceCollector() : start_seconds_(now_seconds()) {}

ResourceCollector::~ResourceCollector() {
  stop_rss_sampler();
  // Defensive: never leave a dangling active collector behind.
  ResourceCollector* self = this;
  g_active.compare_exchange_strong(self, nullptr, std::memory_order_release);
}

ResourceCollector::Cell& ResourceCollector::resolve_cell() noexcept {
  ThreadState& s = t_state;
  if (s.excluded > 0) return excluded_;
  if (s.collector != this || s.cell == nullptr) {
    s.collector = this;
    s.cell = &cells_[s.phase * kResourceRankSlots +
                     static_cast<std::size_t>(s.rank_slot)];
  }
  return *s.cell;
}

void ResourceCollector::on_alloc(void* ptr, std::size_t requested) noexcept {
  Cell& cell = resolve_cell();
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.bytes.fetch_add(requested, std::memory_order_relaxed);
  const auto usable = static_cast<std::int64_t>(usable_size(ptr));
  const std::int64_t live =
      live_.fetch_add(usable, std::memory_order_relaxed) + usable;
  atomic_max(peak_live_, live);
}

void ResourceCollector::on_free(void* ptr) noexcept {
  Cell& cell = resolve_cell();
  const std::size_t usable = usable_size(ptr);
  cell.free_count.fetch_add(1, std::memory_order_relaxed);
  cell.freed_bytes.fetch_add(usable, std::memory_order_relaxed);
  live_.fetch_sub(static_cast<std::int64_t>(usable),
                  std::memory_order_relaxed);
}

void ResourceCollector::begin() {
  const std::size_t n = std::min(arena_slot_count(), kMaxArenaTags);
  for (std::size_t i = 0; i < n; ++i) {
    ArenaSlot* slot = arena_slot_at(i);
    arena_base_count_[i] = slot->count.load(std::memory_order_relaxed);
    arena_base_bytes_[i] = slot->bytes.load(std::memory_order_relaxed);
    slot->peak.store(slot->live.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  }
  start_seconds_ = now_seconds();
}

void ResourceCollector::sample_rss_once() {
  const ScopedResourceExclusion exclude;
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return;
  char line[256];
  unsigned long long rss_kb = 0;
  unsigned long long hwm_kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    unsigned long long kb = 0;
    if (std::sscanf(line, "VmRSS: %llu", &kb) == 1) {
      rss_kb = kb;
    } else if (std::sscanf(line, "VmHWM: %llu", &kb) == 1) {
      hwm_kb = kb;
    }
  }
  std::fclose(f);
  if (rss_kb == 0 && hwm_kb == 0) return;
  rss_samples_.fetch_add(1, std::memory_order_relaxed);
  rss_last_.store(rss_kb * 1024, std::memory_order_relaxed);
  atomic_max(rss_peak_, std::max(rss_kb, hwm_kb) * 1024);
}

void ResourceCollector::start_rss_sampler(double hz) {
  if (hz <= 0.0 || sampler_.joinable()) return;
  const double interval_s = 1.0 / hz;
  sampler_ = std::jthread([this, interval_s](const std::stop_token& stop) {
    const ScopedResourceExclusion exclude;
    while (!stop.stop_requested()) {
      sample_rss_once();
      // Sleep in small slices so stop_rss_sampler() never waits a full
      // period at low sampling rates.
      double remaining = interval_s;
      while (remaining > 0.0 && !stop.stop_requested()) {
        const double slice = std::min(remaining, 0.01);
        std::this_thread::sleep_for(std::chrono::duration<double>(slice));
        remaining -= slice;
      }
    }
  });
}

void ResourceCollector::stop_rss_sampler() {
  if (!sampler_.joinable()) return;
  sampler_.request_stop();
  sampler_.join();
  sampler_ = std::jthread();
  sample_rss_once();
}

ResourceCollector::Snapshot ResourceCollector::snapshot() const {
  const ScopedResourceExclusion exclude;
  Snapshot snap;

  const std::uint32_t num_phases =
      std::min(g_phase_count.load(std::memory_order_acquire),
               static_cast<std::uint32_t>(kResourceMaxPhases));
  for (std::uint32_t p = 0; p < num_phases; ++p) {
    PhaseTotals totals;
    totals.phase = phase_name(p);
    for (std::size_t r = 0; r < kResourceRankSlots; ++r) {
      const Cell& cell = cells_[p * kResourceRankSlots + r];
      const std::uint64_t count = cell.count.load(std::memory_order_relaxed);
      const std::uint64_t bytes = cell.bytes.load(std::memory_order_relaxed);
      const std::uint64_t free_count =
          cell.free_count.load(std::memory_order_relaxed);
      const std::uint64_t freed = cell.freed_bytes.load(std::memory_order_relaxed);
      totals.count += count;
      totals.bytes += bytes;
      snap.total_count += count;
      snap.total_bytes += bytes;
      if (count == 0 && bytes == 0 && free_count == 0 && freed == 0) continue;
      CellRow row;
      row.phase = totals.phase;
      row.rank = r == kResourceMaxRanks ? -1 : static_cast<int>(r);
      row.count = count;
      row.bytes = bytes;
      row.free_count = free_count;
      row.freed_bytes = freed;
      snap.cells.push_back(std::move(row));
    }
    if (totals.count != 0 || totals.bytes != 0) {
      snap.phases.push_back(std::move(totals));
    }
  }
  std::sort(snap.phases.begin(), snap.phases.end(),
            [](const PhaseTotals& a, const PhaseTotals& b) {
              return a.phase < b.phase;
            });
  std::sort(snap.cells.begin(), snap.cells.end(),
            [](const CellRow& a, const CellRow& b) {
              if (a.phase != b.phase) return a.phase < b.phase;
              return a.rank < b.rank;
            });

  const std::size_t num_arenas = std::min(arena_slot_count(), kMaxArenaTags);
  for (std::size_t i = 0; i < num_arenas; ++i) {
    const ArenaSlot* slot = arena_slot_at(i);
    ArenaRow row;
    row.tag = slot->name;
    const std::uint64_t count = slot->count.load(std::memory_order_relaxed);
    const std::uint64_t bytes = slot->bytes.load(std::memory_order_relaxed);
    row.count = count >= arena_base_count_[i] ? count - arena_base_count_[i]
                                              : count;
    row.bytes = bytes >= arena_base_bytes_[i] ? bytes - arena_base_bytes_[i]
                                              : bytes;
    row.live_bytes = slot->live.load(std::memory_order_relaxed);
    row.peak_bytes = slot->peak.load(std::memory_order_relaxed);
    snap.arenas.push_back(std::move(row));
  }
  std::sort(snap.arenas.begin(), snap.arenas.end(),
            [](const ArenaRow& a, const ArenaRow& b) { return a.tag < b.tag; });

  snap.live_bytes = live_.load(std::memory_order_relaxed);
  snap.peak_live_bytes = peak_live_.load(std::memory_order_relaxed);
  snap.excluded_count = excluded_.count.load(std::memory_order_relaxed);
  snap.excluded_bytes = excluded_.bytes.load(std::memory_order_relaxed);
  snap.rss_sample_count = rss_samples_.load(std::memory_order_relaxed);
  snap.peak_rss_bytes = rss_peak_.load(std::memory_order_relaxed);
  snap.final_rss_bytes = rss_last_.load(std::memory_order_relaxed);
  snap.elapsed_seconds = now_seconds() - start_seconds_;
  return snap;
}

ResourceCollector* active_resource() {
  return g_active.load(std::memory_order_relaxed);
}

void set_active_resource(ResourceCollector* collector) {
  if (collector != nullptr) collector->begin();
  g_active.store(collector, std::memory_order_release);
}

void resource_set_phase(const char* name) noexcept {
  ThreadState& s = t_state;
  const std::uint32_t id = phase_id(name != nullptr ? name : kUntaggedPhase);
  if (id != s.phase) {
    s.phase = id;
    s.cell = nullptr;
  }
}

ScopedResourceRank::ScopedResourceRank(int rank) noexcept {
  ThreadState& s = t_state;
  prev_rank_ = s.rank_slot;
  prev_phase_ = s.phase;
  prev_excluded_ = s.excluded;
  s.rank_slot = rank >= 0 && rank < static_cast<int>(kResourceMaxRanks)
                    ? rank
                    : static_cast<int>(kResourceMaxRanks);
  s.phase = 0;
  s.excluded = 0;
  s.cell = nullptr;
}

ScopedResourceRank::~ScopedResourceRank() {
  ThreadState& s = t_state;
  s.rank_slot = prev_rank_;
  s.phase = prev_phase_;
  s.excluded = prev_excluded_;
  s.cell = nullptr;
}

void resource_exclusion_begin() noexcept { ++t_state.excluded; }

void resource_exclusion_end() noexcept {
  if (t_state.excluded > 0) --t_state.excluded;
}

// --- serialization ---------------------------------------------------------

namespace {

void append_kv(std::string& out, const char* key, std::uint64_t value,
               bool& first) {
  if (!first) out += ',';
  first = false;
  json::append_quoted(out, key);
  out += ':';
  out += json::number(value);
}

void append_kv(std::string& out, const char* key, std::int64_t value,
               bool& first) {
  if (!first) out += ',';
  first = false;
  json::append_quoted(out, key);
  out += ':';
  out += json::number(value);
}

}  // namespace

std::string resource_report_to_json(const ResourceCollector& collector,
                                    const ResourceMeta& meta,
                                    bool include_volatile) {
  const ResourceCollector::Snapshot snap = collector.snapshot();
  const ScopedResourceExclusion exclude;

  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"ptwgr.resource_report\",\"version\":";
  out += json::number(static_cast<std::int64_t>(kResourceReportVersion));
  out += ",\"canonical\":";
  out += include_volatile ? "false" : "true";

  out += ",\"meta\":{\"algorithm\":";
  json::append_quoted(out, meta.algorithm);
  out += ",\"circuit_source\":";
  json::append_quoted(out, meta.circuit_source);
  out += ",\"seed\":";
  out += json::number(meta.seed);
  out += ",\"ranks\":";
  out += json::number(static_cast<std::int64_t>(meta.ranks));
  out += '}';

  out += ",\"alloc\":{\"total_count\":";
  out += json::number(snap.total_count);
  out += ",\"total_bytes\":";
  out += json::number(snap.total_bytes);
  out += '}';

  out += ",\"phases\":[";
  bool first_row = true;
  for (const ResourceCollector::PhaseTotals& p : snap.phases) {
    if (!first_row) out += ',';
    first_row = false;
    out += "{\"phase\":";
    json::append_quoted(out, p.phase);
    out += ",\"count\":";
    out += json::number(p.count);
    out += ",\"bytes\":";
    out += json::number(p.bytes);
    out += '}';
  }
  out += ']';

  out += ",\"arenas\":[";
  first_row = true;
  for (const ResourceCollector::ArenaRow& a : snap.arenas) {
    if (!first_row) out += ',';
    first_row = false;
    out += "{\"tag\":";
    json::append_quoted(out, a.tag);
    bool first_field = false;  // tag already emitted
    append_kv(out, "count", a.count, first_field);
    append_kv(out, "bytes", a.bytes, first_field);
    if (include_volatile) {
      append_kv(out, "live_bytes", a.live_bytes, first_field);
      append_kv(out, "peak_bytes", a.peak_bytes, first_field);
    }
    out += '}';
  }
  out += ']';

  if (include_volatile) {
    out += ",\"volatile\":{";
    bool first_field = true;
    append_kv(out, "live_bytes", snap.live_bytes, first_field);
    append_kv(out, "peak_live_bytes", snap.peak_live_bytes, first_field);
    append_kv(out, "excluded_count", snap.excluded_count, first_field);
    append_kv(out, "excluded_bytes", snap.excluded_bytes, first_field);
    out += ",\"rss\":{\"sample_count\":";
    out += json::number(snap.rss_sample_count);
    out += ",\"peak_rss_bytes\":";
    out += json::number(snap.peak_rss_bytes);
    out += ",\"final_rss_bytes\":";
    out += json::number(snap.final_rss_bytes);
    out += '}';
    out += ",\"elapsed_seconds\":";
    out += json::number(snap.elapsed_seconds);
    out += ",\"cells\":[";
    bool first_cell = true;
    for (const ResourceCollector::CellRow& c : snap.cells) {
      if (!first_cell) out += ',';
      first_cell = false;
      out += "{\"phase\":";
      json::append_quoted(out, c.phase);
      out += ",\"rank\":";
      out += json::number(static_cast<std::int64_t>(c.rank));
      bool ff = false;
      append_kv(out, "count", c.count, ff);
      append_kv(out, "bytes", c.bytes, ff);
      append_kv(out, "free_count", c.free_count, ff);
      append_kv(out, "freed_bytes", c.freed_bytes, ff);
      out += '}';
    }
    out += "]}";
  }

  out += "}\n";
  return out;
}

namespace {

std::uint64_t u64_at(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  return v != nullptr && v->is_number()
             ? static_cast<std::uint64_t>(v->as_number())
             : 0;
}

std::int64_t i64_at(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  return v != nullptr && v->is_number()
             ? static_cast<std::int64_t>(v->as_number())
             : 0;
}

std::string str_at(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::string("?");
}

void append_line(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_line(std::string& out, const char* fmt, ...) {
  char buffer[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof buffer, fmt, args);
  va_end(args);
  out += buffer;
  out += '\n';
}

}  // namespace

std::string render_resource_tables(const json::Value& doc) {
  const json::Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "ptwgr.resource_report") {
    throw std::runtime_error("not a ptwgr.resource_report document");
  }

  std::string out;
  const json::Value* meta = doc.find("meta");
  if (meta != nullptr) {
    append_line(out,
                "resource report: algorithm=%s circuit=%s seed=%" PRIu64
                " ranks=%" PRId64,
                str_at(*meta, "algorithm").c_str(),
                str_at(*meta, "circuit_source").c_str(), u64_at(*meta, "seed"),
                i64_at(*meta, "ranks"));
  }
  if (const json::Value* alloc = doc.find("alloc")) {
    append_line(out,
                "allocations: %" PRIu64 " totalling %" PRIu64
                " requested bytes",
                u64_at(*alloc, "total_count"), u64_at(*alloc, "total_bytes"));
  }

  if (const json::Value* phases = doc.find("phases");
      phases != nullptr && phases->is_array() && !phases->as_array().empty()) {
    append_line(out, "%s", "");
    append_line(out, "%-16s %12s %16s", "phase", "allocs", "bytes");
    for (const json::Value& p : phases->as_array()) {
      if (!p.is_object()) continue;
      append_line(out, "%-16s %12" PRIu64 " %16" PRIu64,
                  str_at(p, "phase").c_str(), u64_at(p, "count"),
                  u64_at(p, "bytes"));
    }
  }

  if (const json::Value* arenas = doc.find("arenas");
      arenas != nullptr && arenas->is_array() && !arenas->as_array().empty()) {
    append_line(out, "%s", "");
    append_line(out, "%-16s %12s %16s %16s %16s", "arena", "allocs", "bytes",
                "live", "peak");
    for (const json::Value& a : arenas->as_array()) {
      if (!a.is_object()) continue;
      append_line(out, "%-16s %12" PRIu64 " %16" PRIu64 " %16" PRId64
                       " %16" PRId64,
                  str_at(a, "tag").c_str(), u64_at(a, "count"),
                  u64_at(a, "bytes"), i64_at(a, "live_bytes"),
                  i64_at(a, "peak_bytes"));
    }
  }

  if (const json::Value* vol = doc.find("volatile")) {
    append_line(out, "%s", "");
    append_line(out,
                "live: %" PRId64 " bytes (peak %" PRId64
                "), excluded: %" PRIu64 " allocs / %" PRIu64 " bytes",
                i64_at(*vol, "live_bytes"), i64_at(*vol, "peak_live_bytes"),
                u64_at(*vol, "excluded_count"), u64_at(*vol, "excluded_bytes"));
    if (const json::Value* rss = vol->find("rss");
        rss != nullptr && u64_at(*rss, "sample_count") > 0) {
      append_line(out,
                  "rss: peak %" PRIu64 " bytes, final %" PRIu64
                  " bytes (%" PRIu64 " samples)",
                  u64_at(*rss, "peak_rss_bytes"),
                  u64_at(*rss, "final_rss_bytes"),
                  u64_at(*rss, "sample_count"));
    }
    if (const json::Value* cells = vol->find("cells");
        cells != nullptr && cells->is_array() && !cells->as_array().empty()) {
      append_line(out, "%s", "");
      append_line(out, "%-16s %6s %12s %16s %12s %16s", "phase", "rank",
                  "allocs", "bytes", "frees", "freed");
      for (const json::Value& c : cells->as_array()) {
        if (!c.is_object()) continue;
        append_line(out,
                    "%-16s %6" PRId64 " %12" PRIu64 " %16" PRIu64
                    " %12" PRIu64 " %16" PRIu64,
                    str_at(c, "phase").c_str(), i64_at(c, "rank"),
                    u64_at(c, "count"), u64_at(c, "bytes"),
                    u64_at(c, "free_count"), u64_at(c, "freed_bytes"));
      }
    }
  }
  return out;
}

}  // namespace ptwgr::obs

// --- global allocation interposition ---------------------------------------
//
// Replaces the replaceable global allocation functions ([new.delete]) with
// malloc/posix_memalign-backed versions that notify the active
// ResourceCollector.  With no collector installed the added cost is exactly
// one relaxed atomic load per call (bench_resource measures this).
//
// Sanitizer builds keep working because ASan/TSan intercept at the
// malloc/free layer underneath these definitions.

namespace {

inline void record_alloc(void* ptr, std::size_t requested) noexcept {
  ptwgr::obs::ResourceCollector* c =
      ptwgr::obs::active_resource();
  if (c != nullptr) c->on_alloc(ptr, requested);
}

inline void record_free(void* ptr) noexcept {
  if (ptr == nullptr) return;
  ptwgr::obs::ResourceCollector* c =
      ptwgr::obs::active_resource();
  if (c != nullptr) c->on_free(ptr);
}

void* raw_alloc(std::size_t size) noexcept {
  if (size == 0) size = 1;
  void* ptr = std::malloc(size);
  if (ptr != nullptr) record_alloc(ptr, size);
  return ptr;
}

void* raw_alloc_aligned(std::size_t size, std::size_t align) noexcept {
  if (size == 0) size = 1;
  if (align < sizeof(void*)) align = sizeof(void*);
  void* ptr = nullptr;
  // posix_memalign over aligned_alloc: no size-multiple-of-alignment
  // requirement, and glibc frees it with plain free().
  if (::posix_memalign(&ptr, align, size) != 0) return nullptr;
  record_alloc(ptr, size);
  return ptr;
}

template <typename Alloc>
void* checked_alloc(std::size_t size, Alloc alloc) {
  void* ptr = alloc(size);
  while (ptr == nullptr) {
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
    ptr = alloc(size);
  }
  return ptr;
}

void raw_free(void* ptr) noexcept {
  record_free(ptr);
  std::free(ptr);
}

}  // namespace

void* operator new(std::size_t size) {
  return checked_alloc(size, raw_alloc);
}

void* operator new[](std::size_t size) {
  return checked_alloc(size, raw_alloc);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return checked_alloc(size, raw_alloc);
  } catch (...) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return checked_alloc(size, raw_alloc);
  } catch (...) {
    return nullptr;
  }
}

void* operator new(std::size_t size, std::align_val_t align) {
  return checked_alloc(size, [align](std::size_t n) {
    return raw_alloc_aligned(n, static_cast<std::size_t>(align));
  });
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return checked_alloc(size, [align](std::size_t n) {
    return raw_alloc_aligned(n, static_cast<std::size_t>(align));
  });
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  try {
    return operator new(size, align);
  } catch (...) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  try {
    return operator new[](size, align);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* ptr) noexcept { raw_free(ptr); }
void operator delete[](void* ptr) noexcept { raw_free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { raw_free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { raw_free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  raw_free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  raw_free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept { raw_free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { raw_free(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  raw_free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  raw_free(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  raw_free(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  raw_free(ptr);
}
