#include "ptwgr/obs/ledger.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <utility>

#include "ptwgr/mp/comm_stats.h"
#include "ptwgr/support/check.h"
#include "ptwgr/support/json.h"
#include "ptwgr/support/trace.h"

namespace ptwgr::obs {
namespace {

std::atomic<LedgerCollector*> g_active_ledger{nullptr};

/// Full round-trip precision: the analyzer re-derives the makespan
/// decomposition from these numbers and checks it to 1e-9, which the
/// default %.12g emission would not survive.
std::string exact_number(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return std::string(buf);
}

void append_event_json(std::string& out, const LedgerEvent& event,
                       bool include_times) {
  out += "{\"k\":";
  out += json::quoted(to_string(event.kind));
  if (include_times) {
    out += ",\"t0\":" + exact_number(event.t0);
    out += ",\"t1\":" + exact_number(event.t1);
  }
  out += ",\"lc\":" + json::number(event.lamport);
  switch (event.kind) {
    case LedgerEventKind::Send:
    case LedgerEventKind::Recv:
      out += ",\"peer\":" + json::number(static_cast<std::int64_t>(event.peer));
      out += ",\"tag\":" + json::number(static_cast<std::int64_t>(event.tag));
      out += ",\"bytes\":" + json::number(event.bytes);
      out += ",\"seq\":" + json::number(event.seq);
      break;
    case LedgerEventKind::Collective:
      out += ",\"op\":";
      out += json::quoted(
          mp::to_string(static_cast<mp::CollectiveKind>(event.tag)));
      out += ",\"bytes\":" + json::number(event.bytes);
      out += ",\"seq\":" + json::number(event.seq);
      break;
    case LedgerEventKind::PhaseBegin:
    case LedgerEventKind::Fault:
      out += ",\"label\":";
      json::append_quoted(out, event.label);
      break;
  }
  out += "}";
}

void append_rank_json(std::string& out, const RankLedger& rank,
                      bool include_times) {
  out += "{\"rank\":" + json::number(static_cast<std::int64_t>(rank.rank));
  out += ",\"dropped\":" + json::number(rank.dropped);
  if (include_times) {
    out += ",\"final_vtime\":" + exact_number(rank.final_vtime);
  }
  out += ",\"events\":[";
  for (std::size_t i = 0; i < rank.events.size(); ++i) {
    if (i != 0) out += ",";
    out += "\n  ";
    append_event_json(out, rank.events[i], include_times);
  }
  out += "]}";
}

}  // namespace

const char* to_string(LedgerEventKind kind) {
  switch (kind) {
    case LedgerEventKind::PhaseBegin:
      return "phase";
    case LedgerEventKind::Send:
      return "send";
    case LedgerEventKind::Recv:
      return "recv";
    case LedgerEventKind::Collective:
      return "coll";
    case LedgerEventKind::Fault:
      return "fault";
  }
  return "?";
}

LedgerCollector* active_ledger() {
  return g_active_ledger.load(std::memory_order_relaxed);
}

void set_active_ledger(LedgerCollector* collector) {
  g_active_ledger.store(collector, std::memory_order_relaxed);
}

void LedgerCollector::begin_run(int num_ranks) {
  PTWGR_EXPECTS(num_ranks >= 1);
  slots_.clear();
  slots_.resize(static_cast<std::size_t>(num_ranks));
  if (capacity_ > 0) {
    for (Slot& slot : slots_) slot.ring.resize(capacity_);
  }
}

void LedgerCollector::record(int rank, LedgerEvent event) {
  Slot& slot = slots_[static_cast<std::size_t>(rank)];
  if (capacity_ == 0) {
    // truncate() keeps ring.size() == end in unbounded mode, so the vector
    // and the logical stream always coincide.
    slot.ring.push_back(std::move(event));
    ++slot.end;
    return;
  }
  slot.ring[static_cast<std::size_t>(slot.end % capacity_)] =
      std::move(event);
  ++slot.end;
  if (slot.end - slot.begin > capacity_) slot.begin = slot.end - capacity_;
}

void LedgerCollector::truncate(int rank, std::uint64_t end) {
  Slot& slot = slots_[static_cast<std::size_t>(rank)];
  PTWGR_EXPECTS(end <= slot.end);
  slot.end = end;
  if (slot.begin > slot.end) slot.begin = slot.end;
  if (capacity_ == 0) slot.ring.resize(static_cast<std::size_t>(end));
}

std::vector<LedgerEvent> LedgerCollector::events(int rank) const {
  const Slot& slot = slots_[static_cast<std::size_t>(rank)];
  std::vector<LedgerEvent> out;
  out.reserve(static_cast<std::size_t>(slot.end - slot.begin));
  if (capacity_ == 0) {
    out = slot.ring;
  } else {
    for (std::uint64_t i = slot.begin; i < slot.end; ++i) {
      out.push_back(slot.ring[static_cast<std::size_t>(i % capacity_)]);
    }
  }
  return out;
}

std::vector<RankLedger> LedgerCollector::snapshot() const {
  std::vector<RankLedger> out;
  out.reserve(slots_.size());
  for (std::size_t r = 0; r < slots_.size(); ++r) {
    RankLedger ledger;
    ledger.rank = static_cast<int>(r);
    ledger.dropped = dropped(static_cast<int>(r));
    ledger.final_vtime = slots_[r].final_vtime;
    ledger.events = events(static_cast<int>(r));
    out.push_back(std::move(ledger));
  }
  return out;
}

void LedgerCollector::capture_postmortem(std::string reason) {
  PostmortemBundle bundle;
  bundle.reason = std::move(reason);
  bundle.ranks = snapshot();
  const std::lock_guard<std::mutex> lock(aux_mutex_);
  postmortems_.push_back(std::move(bundle));
}

void LedgerCollector::note(std::string text) {
  const std::lock_guard<std::mutex> lock(aux_mutex_);
  notes_.push_back(std::move(text));
}

std::string ledger_to_json(const LedgerCollector& ledger,
                           const LedgerMeta& meta, bool include_times) {
  std::string out = "{\"schema\":\"ptwgr.ledger\",\"version\":" +
                    json::number(static_cast<std::int64_t>(kLedgerVersion));
  out += ",\"algorithm\":" + json::quoted(meta.algorithm);
  out += ",\"circuit\":" + json::quoted(meta.circuit_source);
  out += ",\"seed\":" + json::number(meta.seed);
  out += ",\"ranks\":" + json::number(static_cast<std::int64_t>(meta.ranks));
  out += ",\"platform\":{\"name\":" + json::quoted(meta.platform);
  out += ",\"latency_s\":" + json::number(meta.latency_s);
  out += ",\"per_byte_s\":" + json::number(meta.per_byte_s);
  out += ",\"compute_scale\":" + json::number(meta.compute_scale) + "}";
  out += ",\"ring_capacity\":" +
         json::number(static_cast<std::uint64_t>(ledger.ring_capacity()));
  out += ",\"rank_ledgers\":[";
  for (int r = 0; r < ledger.num_ranks(); ++r) {
    if (r != 0) out += ",";
    out += "\n ";
    RankLedger rank;
    rank.rank = r;
    rank.dropped = ledger.dropped(r);
    rank.final_vtime = ledger.final_vtime(r);
    rank.events = ledger.events(r);
    append_rank_json(out, rank, include_times);
  }
  out += "]";
  if (!ledger.notes().empty()) {
    out += ",\"notes\":[";
    for (std::size_t i = 0; i < ledger.notes().size(); ++i) {
      if (i != 0) out += ",";
      out += json::quoted(ledger.notes()[i]);
    }
    out += "]";
  }
  if (!ledger.postmortems().empty()) {
    out += ",\"postmortems\":[";
    for (std::size_t p = 0; p < ledger.postmortems().size(); ++p) {
      const PostmortemBundle& bundle = ledger.postmortems()[p];
      if (p != 0) out += ",";
      out += "\n {\"reason\":" + json::quoted(bundle.reason);
      out += ",\"rank_ledgers\":[";
      for (std::size_t r = 0; r < bundle.ranks.size(); ++r) {
        if (r != 0) out += ",";
        out += "\n  ";
        append_rank_json(out, bundle.ranks[r], include_times);
      }
      out += "]}";
    }
    out += "]";
  }
  out += "}\n";
  return out;
}

void export_message_flows(const LedgerCollector& ledger,
                          TraceCollector& trace) {
  // A flow needs both endpoints: index the receives by (sender, seq), then
  // walk the sends.  Ring mode may have dropped either side; unmatched
  // events simply draw no arrow.
  std::map<std::pair<int, std::uint64_t>, const LedgerEvent*> recv_of;
  std::vector<std::vector<LedgerEvent>> events;
  events.reserve(static_cast<std::size_t>(ledger.num_ranks()));
  for (int r = 0; r < ledger.num_ranks(); ++r) {
    events.push_back(ledger.events(r));
    for (const LedgerEvent& e : events.back()) {
      if (e.kind == LedgerEventKind::Recv) {
        recv_of[{e.peer, e.seq}] = &e;
      }
    }
  }
  std::uint64_t next_id = 1;
  for (int r = 0; r < ledger.num_ranks(); ++r) {
    for (const LedgerEvent& e : events[static_cast<std::size_t>(r)]) {
      if (e.kind != LedgerEventKind::Send) continue;
      const auto it = recv_of.find({r, e.seq});
      if (it == recv_of.end()) continue;
      TraceFlow flow;
      flow.id = next_id++;
      flow.name = "msg tag " + std::to_string(e.tag) + " (" +
                  std::to_string(e.bytes) + " B)";
      flow.src_rank = r;
      flow.src_seconds = e.t0;
      flow.dst_rank = e.peer;  // the send's destination recorded the recv
      flow.dst_seconds = it->second->t1;
      trace.record_flow(std::move(flow));
    }
  }
}

}  // namespace ptwgr::obs
