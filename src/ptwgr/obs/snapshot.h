// Per-phase routing-quality snapshots (the solution-side companion of the
// runtime tracing in support/trace.h).
//
// After each of the five TWGR steps the router — serial or any parallel
// algorithm — records what the solution looks like at that point: wirelength
// totals and per-net distribution, per-channel density, the coarse-grid
// congestion heatmap (per-cell occupancy of the channel-usage and
// row-crossing demand maps), the per-row feedthrough distribution, and the
// acceptance statistics of the random-order flip sweeps of steps 2 and 5.
//
// Collection follows the trace-collector pattern: a process-wide
// QualityCollector is installed with set_active_quality(); when none is
// installed every instrumentation site is a single atomic load.  Parallel
// ranks record *contributions* — additive pieces in global coordinates
// (rank-local rows/channels/nets translated before recording) — and the
// collector merges them by summation, so the merged snapshot is independent
// of rank arrival order and a fixed seed yields a byte-identical report.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ptwgr/circuit/types.h"
#include "ptwgr/route/wire.h"

namespace ptwgr {
class CoarseGrid;
}

namespace ptwgr::obs {

/// The five TWGR steps, in pipeline order.
enum class Phase : std::uint8_t {
  Steiner = 0,
  Coarse = 1,
  Feedthrough = 2,
  Connect = 3,
  Switchable = 4,
};

inline constexpr std::size_t kNumPhases = 5;
const char* to_string(Phase phase);

/// Acceptance statistics of one random-order improvement sweep (coarse
/// L-orientation flips, switchable channel flips).
struct FlipSweepStats {
  std::int64_t decisions = 0;  ///< orientation/channel choices examined
  std::int64_t flips = 0;      ///< decisions that changed the solution
  int passes = 0;

  /// flips / decisions (0 when nothing was examined).
  double acceptance_rate() const {
    return decisions == 0
               ? 0.0
               : static_cast<double>(flips) / static_cast<double>(decisions);
  }
};

/// Summary of an integer distribution: extremes, mean, and percentiles
/// (nearest-rank on the sorted values).
struct DistributionSummary {
  std::int64_t count = 0;
  std::int64_t total = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  double mean = 0.0;
  std::int64_t p50 = 0;
  std::int64_t p90 = 0;
  std::int64_t p99 = 0;
};

/// Summarizes `values` (consumed: sorted in place).
DistributionSummary summarize(std::vector<std::int64_t> values);

/// A dense row-major occupancy grid (one of the two coarse-grid demand
/// maps, or any per-(row, column) integer field).
struct Heatmap {
  std::size_t rows = 0;
  std::size_t cols = 0;
  Coord column_width = 0;
  std::vector<std::int64_t> cells;  ///< rows × cols, row-major

  bool empty() const { return cells.empty(); }
  std::int64_t at(std::size_t row, std::size_t col) const {
    return cells[row * cols + col];
  }
  std::int64_t max_cell() const;
};

/// Renders a heatmap as ASCII art for terminal use: one line per row (top
/// row first), one character per column scaled to the map's maximum
/// ('.' = 0, '1'..'9' linear buckets, '#' = the hottest cells), with a
/// legend line.  `label` names the map in the header.
std::string render_heatmap_ascii(const Heatmap& map, const std::string& label);

/// The solution state after one TWGR step.  Sections that the step cannot
/// yet populate stay empty (e.g. there are no wires before step 4); the JSON
/// serialization omits empty sections.
struct PhaseSnapshot {
  Phase phase = Phase::Steiner;

  // Steiner (step 1): tree construction totals.  tree_cost is the
  // rectilinear tree length with row crossings priced at the router's
  // steiner_row_cost (the metric the trees minimize).
  std::int64_t net_count = 0;
  std::int64_t tree_edge_count = 0;
  std::int64_t inter_row_edge_count = 0;
  std::int64_t tree_cost = 0;
  DistributionSummary per_net_tree_cost;

  // Coarse / feedthrough (steps 2–3): congestion heatmaps.  channel_use is
  // the per-(channel, column) coarse channel occupancy; crossing_demand the
  // per-(row, column) feedthrough demand.
  Heatmap channel_use;
  Heatmap crossing_demand;

  // Feedthrough (step 3): materialized feedthrough cells per row.
  std::vector<std::int64_t> feedthroughs_per_row;
  std::int64_t feedthrough_total = 0;

  // Connect / switchable (steps 4–5): wire-level quality.
  std::int64_t wire_count = 0;
  std::int64_t total_wirelength = 0;
  DistributionSummary per_net_wirelength;
  /// Exact per-channel density when one contributor recorded the phase (the
  /// serial router, or an overriding exact record); otherwise the sum of the
  /// ranks' local densities — an upper bound, since ranks sharing a channel
  /// each count their own wires' overlap.
  std::vector<std::int64_t> channel_density;
  bool density_exact = false;
  DistributionSummary density_summary;
  std::int64_t track_count = 0;

  // Flip sweeps (steps 2 and 5).
  FlipSweepStats flip_sweep;
};

/// Exact per-channel max-overlap density of a wire set (the metric sweep of
/// compute_metrics, shared here so snapshots price wires identically).
std::vector<std::int64_t> exact_channel_density(std::size_t num_channels,
                                                const std::vector<Wire>& wires);

/// Thread-safe accumulator of per-phase contributions.  One collector spans
/// one routing run; ranks record concurrently, finalize() merges.
class QualityCollector {
 public:
  /// Discards all recorded contributions (route_parallel calls this before
  /// each recovery re-execution so the replay does not double-accumulate).
  void reset();

  // --- contribution recording (all additive, thread-safe) ----------------

  /// Step 1: a batch of Steiner trees.  `per_net_costs` holds one entry per
  /// tree: (global net id, tree length at the router's row cost).
  void add_trees(const std::vector<std::pair<std::uint32_t, std::int64_t>>&
                     per_net_costs,
                 std::int64_t edge_count, std::int64_t inter_row_edge_count);

  /// Steps 2–3: one rank's coarse-grid demand maps, translated to global
  /// coordinates.  Local grid row r maps to global row `row_offset + r`,
  /// local channel c to `channel_offset + c`; columns align because every
  /// rank builds its grid over the global core width.  Contributions sum
  /// cell-wise.  `global_rows` sizes the merged maps on first use.
  void add_grid(Phase phase, const CoarseGrid& grid, std::size_t row_offset,
                std::size_t channel_offset, std::size_t global_rows);

  /// Step 3: materialized feedthrough counts per global row.
  void add_feedthroughs(
      const std::vector<std::pair<std::size_t, std::int64_t>>& per_row,
      std::size_t global_rows);

  /// Steps 4–5: one rank's wires in the global channel frame with global
  /// net ids.  Accumulates wire count, wirelength totals, the per-net
  /// wirelength map, and this contribution's exact local channel densities
  /// (summed across contributors; flagged exact only for a single one).
  void add_wires(Phase phase, const std::vector<Wire>& wires,
                 std::size_t num_channels);

  /// Steps 2 and 5: one rank's flip-sweep statistics.
  void add_flips(Phase phase, std::int64_t decisions, std::int64_t flips,
                 int passes);

  /// Overrides a phase's channel density with exact values computed from
  /// the globally gathered wires (rank 0 after assemble_metrics).
  void set_exact_density(Phase phase,
                         const std::vector<std::int64_t>& density);

  // --- finalization -------------------------------------------------------

  /// Merges all contributions into the five ordered snapshots.  Call after
  /// the run (not concurrently with recording).
  std::array<PhaseSnapshot, kNumPhases> finalize() const;

  /// True when any contribution was recorded.
  bool any_recorded() const;

 private:
  struct PhaseAccum {
    std::int64_t edge_count = 0;
    std::int64_t inter_row_edge_count = 0;
    std::unordered_map<std::uint32_t, std::int64_t> per_net_cost;

    Heatmap channel_use;
    Heatmap crossing_demand;

    std::vector<std::int64_t> feedthroughs_per_row;

    std::int64_t wire_count = 0;
    std::unordered_map<std::uint32_t, std::int64_t> per_net_wirelength;
    std::vector<std::int64_t> density_sum;
    std::size_t density_contributors = 0;
    std::vector<std::int64_t> exact_density;
    bool has_exact_density = false;

    FlipSweepStats flips;
    bool touched = false;
  };

  PhaseAccum& accum(Phase phase) {
    return phases_[static_cast<std::size_t>(phase)];
  }

  mutable std::mutex mutex_;
  std::array<PhaseAccum, kNumPhases> phases_;
};

/// The process-wide collector, or nullptr when quality snapshots are off.
QualityCollector* active_quality();

/// Installs (or, with nullptr, removes) the process-wide collector.
void set_active_quality(QualityCollector* collector);

}  // namespace ptwgr::obs
