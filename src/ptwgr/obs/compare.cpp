#include "ptwgr/obs/compare.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "ptwgr/support/table.h"

namespace ptwgr::obs {

namespace {

const char* to_string(DeltaStatus status) {
  switch (status) {
    case DeltaStatus::Unchanged: return "ok";
    case DeltaStatus::Improved: return "IMPROVED";
    case DeltaStatus::Changed: return "changed";
    case DeltaStatus::Regressed: return "REGRESSED";
    case DeltaStatus::Added: return "added";
    case DeltaStatus::Removed: return "REMOVED";
  }
  return "?";
}

bool gates(CompareDirection direction) {
  return direction == CompareDirection::LowerIsBetter ||
         direction == CompareDirection::HigherIsBetter;
}

/// Numeric leaves of a document as dotted path → value (bools as 0/1;
/// strings and nulls are not comparable and are skipped).
void flatten(const json::Value& value, const std::string& prefix,
             std::map<std::string, double>& out) {
  switch (value.kind()) {
    case json::Value::Kind::Number:
      out.emplace(prefix, value.as_number());
      break;
    case json::Value::Kind::Bool:
      out.emplace(prefix, value.as_bool() ? 1.0 : 0.0);
      break;
    case json::Value::Kind::Array: {
      const auto& elements = value.as_array();
      for (std::size_t i = 0; i < elements.size(); ++i) {
        flatten(elements[i], prefix + "." + std::to_string(i), out);
      }
      break;
    }
    case json::Value::Kind::Object:
      for (const auto& [key, child] : value.as_object()) {
        flatten(child, prefix.empty() ? key : prefix + "." + key, out);
      }
      break;
    case json::Value::Kind::Null:
    case json::Value::Kind::String: break;
  }
}

std::size_t match_rule(const std::vector<CompareRule>& rules,
                       const std::string& path) {
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (glob_match(rules[i].pattern, path)) return i;
  }
  return std::string::npos;
}

std::string format_value(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative glob with single-star backtracking.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::vector<CompareRule> default_rules(double tolerance) {
  const double loose = std::max(tolerance, 0.05);
  return {
      // Machine-dependent or bulky payloads: not comparable across runs.
      {"timing.*", CompareDirection::Ignore, 0.0},
      {"*seconds*", CompareDirection::Ignore, 0.0},
      {"*.heatmap.*", CompareDirection::Ignore, 0.0},
      {"ranks.*", CompareDirection::Ignore, 0.0},
      {"*.per_row.*", CompareDirection::Ignore, 0.0},
      {"*.per_channel.*", CompareDirection::Ignore, 0.0},
      {"*channel_density*", CompareDirection::Ignore, 0.0},
      // Derived ratios and modeled speedups move with the machine: report,
      // never gate.
      {"*acceptance_rate", CompareDirection::Info, 0.0},
      {"*speedup*", CompareDirection::Info, 0.0},
      // Routing quality: deterministic in the seed, gated at the tolerance.
      {"*metrics.tracks", CompareDirection::LowerIsBetter, tolerance},
      {"*metrics.area", CompareDirection::LowerIsBetter, tolerance},
      {"*metrics.wirelength", CompareDirection::LowerIsBetter, tolerance},
      {"*metrics.feedthroughs", CompareDirection::LowerIsBetter, tolerance},
      {"snapshots.*.density.track_count", CompareDirection::LowerIsBetter,
       tolerance},
      {"snapshots.*.trees.total_cost", CompareDirection::LowerIsBetter,
       tolerance},
      {"snapshots.*.wires.total_wirelength",
       CompareDirection::LowerIsBetter, tolerance},
      {"snapshots.*.density.summary.max", CompareDirection::LowerIsBetter,
       loose},
      // Resource telemetry (obs/resource.h → BENCH_*.json).  Peak RSS moves
      // with the machine's page cache and allocator behaviour, so it gates
      // loosely; allocation bytes are deterministic modulo library versions
      // and gate tighter; raw counts are informational.
      {"*peak_rss_bytes", CompareDirection::LowerIsBetter,
       std::max(tolerance, 0.35)},
      {"*alloc_bytes", CompareDirection::LowerIsBetter,
       std::max(tolerance, 0.25)},
      {"*alloc_count", CompareDirection::Info, 0.0},
  };
}

bool CompareResult::has_regression() const {
  for (const MetricDelta& d : deltas) {
    if (d.status == DeltaStatus::Regressed) return true;
    if (d.status == DeltaStatus::Removed && gates(d.direction)) return true;
  }
  return false;
}

bool CompareResult::has_missing() const {
  if (!unmatched_required.empty()) return true;
  for (const MetricDelta& d : deltas) {
    if (d.status == DeltaStatus::Removed) return true;
  }
  return false;
}

std::size_t CompareResult::count(DeltaStatus status) const {
  return static_cast<std::size_t>(
      std::count_if(deltas.begin(), deltas.end(),
                    [status](const MetricDelta& d) {
                      return d.status == status;
                    }));
}

CompareResult compare(const json::Value& baseline,
                      const json::Value& candidate,
                      const std::vector<CompareRule>& rules) {
  const json::Value* base_schema = baseline.find("schema");
  const json::Value* cand_schema = candidate.find("schema");
  if (base_schema != nullptr && cand_schema != nullptr &&
      base_schema->is_string() && cand_schema->is_string() &&
      base_schema->as_string() != cand_schema->as_string()) {
    throw std::runtime_error("documents are not comparable: schema \"" +
                             base_schema->as_string() + "\" vs \"" +
                             cand_schema->as_string() + "\"");
  }

  std::map<std::string, double> base_leaves;
  std::map<std::string, double> cand_leaves;
  flatten(baseline, "", base_leaves);
  flatten(candidate, "", cand_leaves);

  CompareResult result;
  std::vector<bool> rule_matched(rules.size(), false);
  // Both maps iterate in path order; walk their union.
  auto bi = base_leaves.begin();
  auto ci = cand_leaves.begin();
  while (bi != base_leaves.end() || ci != cand_leaves.end()) {
    MetricDelta delta;
    const bool in_base = bi != base_leaves.end();
    const bool in_cand = ci != cand_leaves.end();
    const bool both =
        in_base && in_cand && bi->first == ci->first;
    if (both || (in_base && (!in_cand || bi->first < ci->first))) {
      delta.path = bi->first;
      delta.baseline = bi->second;
    } else {
      delta.path = ci->first;
    }

    const std::size_t rule_index = match_rule(rules, delta.path);
    const CompareRule* rule =
        rule_index != std::string::npos ? &rules[rule_index] : nullptr;
    if (rule != nullptr) rule_matched[rule_index] = true;
    const CompareDirection direction =
        rule != nullptr ? rule->direction : CompareDirection::Info;
    const double tolerance = rule != nullptr ? rule->tolerance : 0.0;
    delta.direction = direction;

    if (both) {
      delta.candidate = ci->second;
      const double base_mag = std::fabs(delta.baseline);
      delta.rel_change =
          base_mag > 0.0
              ? (delta.candidate - delta.baseline) / base_mag
              : (delta.candidate == 0.0 ? 0.0
                                        : (delta.candidate > 0.0 ? 1.0
                                                                 : -1.0));
      if (delta.baseline == delta.candidate) {
        delta.status = DeltaStatus::Unchanged;
      } else if (direction == CompareDirection::LowerIsBetter &&
                 delta.rel_change > tolerance) {
        delta.status = DeltaStatus::Regressed;
      } else if (direction == CompareDirection::HigherIsBetter &&
                 delta.rel_change < -tolerance) {
        delta.status = DeltaStatus::Regressed;
      } else if (direction == CompareDirection::LowerIsBetter &&
                 delta.rel_change < -tolerance) {
        delta.status = DeltaStatus::Improved;
      } else if (direction == CompareDirection::HigherIsBetter &&
                 delta.rel_change > tolerance) {
        delta.status = DeltaStatus::Improved;
      } else {
        delta.status = DeltaStatus::Changed;
      }
      ++bi;
      ++ci;
    } else if (in_base && (!in_cand || bi->first < ci->first)) {
      delta.status = DeltaStatus::Removed;
      ++bi;
    } else {
      delta.candidate = ci->second;
      delta.status = DeltaStatus::Added;
      ++ci;
    }

    if (direction != CompareDirection::Ignore) {
      result.deltas.push_back(std::move(delta));
    }
  }
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].required && !rule_matched[i]) {
      result.unmatched_required.push_back(rules[i].pattern);
    }
  }
  return result;
}

std::string render_compare_table(const CompareResult& result,
                                 bool changes_only) {
  TextTable table("metric comparison");
  table.add_row({"metric", "baseline", "candidate", "change", "status"});
  // Regressions surface first, then improvements, then the rest.
  const auto severity = [](const MetricDelta& d) {
    if (d.status == DeltaStatus::Regressed) return 0;
    if (d.status == DeltaStatus::Removed && gates(d.direction)) return 0;
    if (d.status == DeltaStatus::Improved) return 1;
    return 2;
  };
  std::vector<const MetricDelta*> ordered;
  ordered.reserve(result.deltas.size());
  for (const MetricDelta& d : result.deltas) {
    if (changes_only && d.status == DeltaStatus::Unchanged) continue;
    ordered.push_back(&d);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&severity](const MetricDelta* a, const MetricDelta* b) {
                     return severity(*a) < severity(*b);
                   });
  for (const MetricDelta* d : ordered) {
    const bool has_both = d->status != DeltaStatus::Added &&
                          d->status != DeltaStatus::Removed;
    std::string change = "-";
    if (has_both && d->status != DeltaStatus::Unchanged) {
      change = format_fixed(d->rel_change * 100.0, 2) + "%";
      if (d->rel_change > 0.0) change = "+" + change;
    }
    table.add_row(
        {d->path,
         d->status == DeltaStatus::Added ? "-" : format_value(d->baseline),
         d->status == DeltaStatus::Removed ? "-"
                                           : format_value(d->candidate),
         change, to_string(d->status)});
  }
  std::string out = table.to_string();
  out += "\n";
  out += std::to_string(result.deltas.size()) + " compared: " +
         std::to_string(result.count(DeltaStatus::Regressed)) +
         " regressed, " + std::to_string(result.count(DeltaStatus::Improved)) +
         " improved, " + std::to_string(result.count(DeltaStatus::Changed) +
                                        result.count(DeltaStatus::Added) +
                                        result.count(DeltaStatus::Removed)) +
         " changed, " + std::to_string(result.count(DeltaStatus::Unchanged)) +
         " unchanged\n";
  for (const std::string& pattern : result.unmatched_required) {
    out += "MISSING: required rule '" + pattern +
           "' matched no metric in either document\n";
  }
  return out;
}

}  // namespace ptwgr::obs
