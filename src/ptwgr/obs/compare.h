// Metric-level comparison of two JSON documents (run reports or bench
// files): the engine behind ptwgr_compare and the CI regression gate.
//
// Both documents are flattened to (dotted path → number) leaves; every leaf
// is matched against an ordered rule list (first match wins).  A rule names
// a glob pattern, a direction — which way the metric is allowed to move —
// and a relative tolerance.  Unmatched leaves are informational: reported
// when they change, but never a regression.  The default rules gate the
// routing-quality metrics and ignore machine-dependent timings and the bulky
// per-cell heatmap payloads.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ptwgr/support/json.h"

namespace ptwgr::obs {

enum class CompareDirection : std::uint8_t {
  LowerIsBetter,   ///< growth beyond tolerance is a regression
  HigherIsBetter,  ///< shrinkage beyond tolerance is a regression
  Info,            ///< report changes, never gate
  Ignore,          ///< drop entirely (not even reported)
};

struct CompareRule {
  std::string pattern;  ///< glob over the dotted path ('*' spans segments)
  CompareDirection direction = CompareDirection::Info;
  double tolerance = 0.0;  ///< relative, against the baseline value
  /// A required rule that matches no leaf in either document is a reported
  /// failure (CompareResult::unmatched_required) instead of silently doing
  /// nothing — a typo'd --rule pattern must not pass the gate.  Only rules
  /// the user spells out are required; the built-in defaults intentionally
  /// match nothing on documents without the corresponding sections.
  bool required = false;
};

/// Glob match with '*' (any run, including dots) and '?' (one char).
bool glob_match(std::string_view pattern, std::string_view text);

/// The built-in rule list: quality metrics gate at `tolerance`, timings /
/// per-cell payloads are ignored, everything else is informational.
std::vector<CompareRule> default_rules(double tolerance);

enum class DeltaStatus : std::uint8_t {
  Unchanged,
  Improved,   ///< moved the good way beyond tolerance
  Changed,    ///< informational move (or within tolerance)
  Regressed,  ///< moved the bad way beyond tolerance
  Added,      ///< only in the candidate (informational)
  Removed,    ///< only in the baseline (a regression when the rule gates it)
};

struct MetricDelta {
  std::string path;
  double baseline = 0.0;
  double candidate = 0.0;
  /// (candidate - baseline) / |baseline| (0 when both are 0).
  double rel_change = 0.0;
  DeltaStatus status = DeltaStatus::Unchanged;
  CompareDirection direction = CompareDirection::Info;
};

struct CompareResult {
  std::vector<MetricDelta> deltas;  ///< path-sorted, ignored leaves dropped
  /// Patterns of required rules that matched no leaf in either document.
  std::vector<std::string> unmatched_required;

  bool has_regression() const;
  /// Anything silently skippable went missing: a baseline key absent from
  /// the candidate (status Removed, whatever its direction) or a required
  /// rule that matched nothing.  ptwgr_compare fails on this unless
  /// --allow-missing is given.
  bool has_missing() const;
  std::size_t count(DeltaStatus status) const;
};

/// Flattens both documents and applies `rules`.  Throws std::runtime_error
/// when the documents are not comparable (different "schema" markers).
CompareResult compare(const json::Value& baseline,
                      const json::Value& candidate,
                      const std::vector<CompareRule>& rules);

/// Regression table.  With `changes_only`, unchanged leaves are elided.
std::string render_compare_table(const CompareResult& result,
                                 bool changes_only);

}  // namespace ptwgr::obs
