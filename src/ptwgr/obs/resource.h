// Resource observability: per-phase / per-rank memory and allocation
// accounting plus periodic RSS sampling (DESIGN.md §13).
//
// A ResourceCollector is installed with set_active_resource() and fed by a
// global operator new/delete interposition layer (defined in resource.cpp):
// every allocation in the process is charged to a (phase, rank) cell chosen
// from thread-local attribution state.  The contract is the same as the
// trace/quality/ledger sinks — with no collector installed, the interposed
// operators cost exactly one relaxed atomic load on top of malloc/free, and
// nothing else (no TLS access, no clock, no lock).
//
// Determinism: the report has a *canonical* subset — cumulative allocation
// counts and requested bytes per phase (summed across ranks) plus the
// tagged-arena table (support/arena.h) — that is byte-identical across
// same-seed runs; a warm-up run first absorbs one-time lazy library
// initialization.  Live/peak bytes (usable sizes), per-(phase,rank) detail
// rows, RSS, and wall-clock are machine- and schedule-dependent and are
// stripped from the canonical form (resource_report_to_json with
// include_volatile = false), mirroring ledger_to_json(include_times=false).
// Measurement-only windows — the Communicator's mark()/rewind() spans, the
// RSS sampler thread, report assembly itself — run under a thread-local
// exclusion so their allocations never enter the canonical record.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "ptwgr/support/arena.h"
#include "ptwgr/support/json.h"

namespace ptwgr::obs {

inline constexpr int kResourceReportVersion = 1;

/// Ceiling on distinct phase labels (process-wide append-only registry;
/// slot 0 is the implicit "(untagged)" phase).
inline constexpr std::size_t kResourceMaxPhases = 32;

/// Rank attribution slots: ranks 0..kResourceMaxRanks-1 map directly;
/// anything outside lands in one shared overflow slot.
inline constexpr std::size_t kResourceMaxRanks = 32;
inline constexpr std::size_t kResourceRankSlots = kResourceMaxRanks + 1;

class ResourceCollector {
 public:
  /// One (phase, rank) attribution cell.  count/bytes use *requested* sizes
  /// (deterministic); free accounting uses usable sizes (whatever the
  /// allocator actually handed out) so live bytes stay symmetric even for
  /// blocks allocated before install.
  struct Cell {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::uint64_t> free_count{0};
    std::atomic<std::uint64_t> freed_bytes{0};
  };

  ResourceCollector();
  ~ResourceCollector();
  ResourceCollector(const ResourceCollector&) = delete;
  ResourceCollector& operator=(const ResourceCollector&) = delete;

  // --- hot path (called from the interposed operator new/delete) ---------

  void on_alloc(void* ptr, std::size_t requested) noexcept;
  void on_free(void* ptr) noexcept;

  // --- RSS sampling -------------------------------------------------------

  /// Starts a background thread reading /proc/self/status every 1/hz
  /// seconds (its own allocations run excluded).  No-op if unavailable.
  void start_rss_sampler(double hz);
  /// Stops the sampler after one final sample.
  void stop_rss_sampler();

  // --- snapshot (post-run, or any time from a quiesced thread) -----------

  struct PhaseTotals {
    std::string phase;
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
  };
  struct CellRow {
    std::string phase;
    int rank = 0;
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
    std::uint64_t free_count = 0;
    std::uint64_t freed_bytes = 0;
  };
  struct ArenaRow {
    std::string tag;
    std::uint64_t count = 0;  ///< delta since install
    std::uint64_t bytes = 0;  ///< delta since install
    std::int64_t live_bytes = 0;
    std::int64_t peak_bytes = 0;
  };
  struct Snapshot {
    // Canonical (deterministic in the seed).
    std::uint64_t total_count = 0;
    std::uint64_t total_bytes = 0;
    std::vector<PhaseTotals> phases;  ///< name-sorted, ranks summed
    std::vector<ArenaRow> arenas;     ///< tag-sorted
    // Volatile (machine/schedule dependent).
    std::int64_t live_bytes = 0;       ///< usable-size delta since install
    std::int64_t peak_live_bytes = 0;  ///< max of live_bytes
    std::uint64_t excluded_count = 0;
    std::uint64_t excluded_bytes = 0;
    std::vector<CellRow> cells;  ///< (phase, rank)-sorted, zero rows dropped
    std::uint64_t rss_sample_count = 0;
    std::uint64_t peak_rss_bytes = 0;
    std::uint64_t final_rss_bytes = 0;
    double elapsed_seconds = 0.0;
  };
  Snapshot snapshot() const;

 private:
  friend void set_active_resource(ResourceCollector* collector);

  Cell& resolve_cell() noexcept;
  /// Captures arena baselines and the start time; called at install.
  void begin();
  void sample_rss_once();

  Cell cells_[kResourceMaxPhases * kResourceRankSlots];
  Cell excluded_;
  std::atomic<std::int64_t> live_{0};
  std::atomic<std::int64_t> peak_live_{0};
  std::uint64_t arena_base_count_[kMaxArenaTags] = {};
  std::uint64_t arena_base_bytes_[kMaxArenaTags] = {};
  std::atomic<std::uint64_t> rss_samples_{0};
  std::atomic<std::uint64_t> rss_peak_{0};
  std::atomic<std::uint64_t> rss_last_{0};
  double start_seconds_ = 0.0;
  std::jthread sampler_;
};

/// The process-wide collector, or nullptr when disabled (one relaxed load).
ResourceCollector* active_resource();

/// Installs (or, with nullptr, removes) the process-wide collector; install
/// captures the arena baselines.  Install before launching the measured
/// work; remove before destroying the collector.
void set_active_resource(ResourceCollector* collector);

// --- thread attribution state ---------------------------------------------

/// Sets the calling thread's phase label for subsequent allocations.  `name`
/// must outlive the process (string literals in practice; equal strings
/// share a slot).  One relaxed load when no collector is installed.
void resource_set_phase(const char* name) noexcept;

/// Scoped rank attribution for a rank thread (mp::runtime installs one per
/// rank body).  Also resets the phase and exclusion depth so state leaked
/// by an unwound previous run cannot bleed into this one.
class ScopedResourceRank {
 public:
  explicit ScopedResourceRank(int rank) noexcept;
  ~ScopedResourceRank();
  ScopedResourceRank(const ScopedResourceRank&) = delete;
  ScopedResourceRank& operator=(const ScopedResourceRank&) = delete;

 private:
  int prev_rank_;
  std::uint32_t prev_phase_;
  int prev_excluded_;
};

/// Marks the calling thread's allocations as measurement-only until the
/// matching end; charged to a single excluded cell outside the canonical
/// record.  Depth-counted, so nesting is fine.
void resource_exclusion_begin() noexcept;
void resource_exclusion_end() noexcept;

class ScopedResourceExclusion {
 public:
  ScopedResourceExclusion() noexcept { resource_exclusion_begin(); }
  ~ScopedResourceExclusion() { resource_exclusion_end(); }
  ScopedResourceExclusion(const ScopedResourceExclusion&) = delete;
  ScopedResourceExclusion& operator=(const ScopedResourceExclusion&) = delete;
};

// --- serialization --------------------------------------------------------

/// Run description embedded in the serialized report.
struct ResourceMeta {
  std::string algorithm;
  std::string circuit_source;
  std::uint64_t seed = 0;
  int ranks = 0;
};

/// Serializes a snapshot as a versioned JSON document
/// ("schema": "ptwgr.resource_report").  With include_volatile = false the
/// document is canonical: only the run meta, phase-level allocation totals,
/// and the arena table remain — same seed ⇒ byte-identical output.
std::string resource_report_to_json(const ResourceCollector& collector,
                                    const ResourceMeta& meta,
                                    bool include_volatile = true);

/// Renders the human tables (totals, per-phase allocations, arenas, RSS)
/// from a parsed ptwgr.resource_report document.  Throws std::runtime_error
/// on a schema mismatch.
std::string render_resource_tables(const json::Value& doc);

}  // namespace ptwgr::obs
