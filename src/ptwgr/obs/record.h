// Small helpers shared by the instrumentation sites in the serial router and
// the parallel rank bodies: cheap local accumulation of the data the
// QualityCollector contributions need.  Everything here is only ever invoked
// when a collector is active, so none of it costs anything on plain runs.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ptwgr/circuit/circuit.h"
#include "ptwgr/route/steiner.h"
#include "ptwgr/route/wire.h"

namespace ptwgr::obs {

/// Accumulates one rank's Steiner-tree batch for
/// QualityCollector::add_trees.  Trees carry global net ids in every
/// algorithm (each net's tree is built by exactly one owner), so no
/// translation is needed.
struct TreeBatch {
  std::vector<std::pair<std::uint32_t, std::int64_t>> per_net_costs;
  std::int64_t edges = 0;
  std::int64_t inter_row_edges = 0;

  void add(const SteinerTree& tree, std::int64_t row_cost) {
    per_net_costs.emplace_back(tree.net.value(), tree.length(row_cost));
    edges += static_cast<std::int64_t>(tree.edges.size());
    inter_row_edges += static_cast<std::int64_t>(tree.num_inter_row_edges());
  }
};

/// Per-row feedthrough cell counts of `circuit`, as (local row, count) pairs
/// for rows holding at least one feedthrough.  Callers translate local rows
/// to global ones and filter to owned rows as their algorithm requires.
std::vector<std::pair<std::size_t, std::int64_t>> feedthrough_rows(
    const Circuit& circuit);

/// Number of switchable wires (the per-pass decision count of step 5).
std::int64_t count_switchable(const std::vector<Wire>& wires);

}  // namespace ptwgr::obs
