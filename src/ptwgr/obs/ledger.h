// Causal event ledger: append-only per-rank streams of communication and
// phase events, stamped with the virtual clock AND a Lamport logical clock.
//
// The mp::Communicator emits one event per send, recv, collective, phase
// boundary, and fault; matched send→recv pairs (sender rank, send sequence
// number) plus the per-generation collective rounds make the streams a
// happens-before DAG that obs/causal.h can replay for critical-path and
// load-imbalance attribution (DESIGN.md §12).
//
// Contract carried over from the tracer (PR 1): recording is off unless a
// collector is installed with set_active_ledger(), and a disabled ledger
// costs exactly one relaxed atomic load — the Communicator caches the
// pointer at construction and every operation afterwards pays a single
// null-pointer test.
//
// Threading: begin_run() presizes one slot per rank; each rank thread then
// appends only to its own slot, so recording is lock-free and unsynchronized.
// Out-of-band notes (watchdog) and postmortem capture go through a mutex.
// Reading a slot is safe only once its rank thread has quiesced (after
// mp::run returns, or inside the rank's own thread).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ptwgr {
class TraceCollector;
}  // namespace ptwgr

namespace ptwgr::obs {

enum class LedgerEventKind : std::uint8_t {
  PhaseBegin = 0,  ///< rank entered a named phase (t0 == t1)
  Send,            ///< blocking send; [t0, t1] covers the modeled transfer
  Recv,            ///< blocking recv; [t0, t1] is the arrival wait (may be 0)
  Collective,      ///< rendezvous; [t0, t1] is entry → shared exit clock
  Fault,           ///< injected fault, retry, kill, or timeout (t0 == t1)
};

const char* to_string(LedgerEventKind kind);

/// One ledger entry on a rank's virtual-clock timeline.
struct LedgerEvent {
  LedgerEventKind kind = LedgerEventKind::PhaseBegin;
  double t0 = 0.0;  ///< virtual time at operation entry
  double t1 = 0.0;  ///< virtual time at operation exit
  /// Lamport logical clock after the event (send/recv/collective increment
  /// it; recv additionally takes max with the sender's stamp first).
  std::uint64_t lamport = 0;
  int peer = -1;  ///< send: destination; recv: source; else -1
  int tag = 0;    ///< p2p tag; collective: CollectiveKind index
  std::uint64_t bytes = 0;
  /// Send: the sender's per-rank send sequence number (stamped into the
  /// envelope; retransmissions reuse it).  Recv: the matched sender's
  /// sequence number.  Collective: the rank's collective ordinal — SPMD
  /// programs enter collectives in a total order, so ordinal i names the
  /// same rendezvous on every rank.
  std::uint64_t seq = 0;
  std::string label;  ///< phase name / fault description; empty otherwise
};

/// One rank's retained stream plus its ring-drop accounting.
struct RankLedger {
  int rank = 0;
  /// Events dropped from the front in ring (flight-recorder) mode.
  std::uint64_t dropped = 0;
  double final_vtime = 0.0;
  std::vector<LedgerEvent> events;  // chronological
};

/// Tail snapshot taken when a run died (fault kill, deadlock, timeout):
/// every rank's retained events at the moment of capture.
struct PostmortemBundle {
  std::string reason;
  std::vector<RankLedger> ranks;
};

/// Process-global event sink, installed with set_active_ledger().  A
/// ring_capacity of 0 retains everything; N > 0 turns the ledger into a
/// bounded flight recorder keeping each rank's most recent N events.
class LedgerCollector {
 public:
  explicit LedgerCollector(std::size_t ring_capacity = 0)
      : capacity_(ring_capacity) {}

  LedgerCollector(const LedgerCollector&) = delete;
  LedgerCollector& operator=(const LedgerCollector&) = delete;

  /// Starts (or restarts) recording for a world of `num_ranks` ranks.
  /// Clears the live slots; postmortem bundles and notes survive, so a
  /// recovery re-execution does not erase the captured failure.
  void begin_run(int num_ranks);

  int num_ranks() const { return static_cast<int>(slots_.size()); }
  std::size_t ring_capacity() const { return capacity_; }

  // --- rank-thread interface (lock-free; own slot only) -----------------

  void record(int rank, LedgerEvent event);

  /// Logical end index of a rank's stream (monotone append count).
  std::uint64_t end_index(int rank) const {
    return slots_[static_cast<std::size_t>(rank)].end;
  }

  /// Discards every event appended at or after logical index `end`; the
  /// Communicator's mark()/rewind() uses this so measurement-only
  /// collectives (assemble_metrics) never reach the causal record.
  void truncate(int rank, std::uint64_t end);

  void set_final_vtime(int rank, double vtime) {
    slots_[static_cast<std::size_t>(rank)].final_vtime = vtime;
  }

  // --- coordinator interface (post-run, or mutex-guarded) ---------------

  std::uint64_t dropped(int rank) const {
    const Slot& slot = slots_[static_cast<std::size_t>(rank)];
    return slot.begin;
  }

  double final_vtime(int rank) const {
    return slots_[static_cast<std::size_t>(rank)].final_vtime;
  }

  /// Chronological copy of a rank's retained events.
  std::vector<LedgerEvent> events(int rank) const;

  /// Snapshot of every rank's retained stream.
  std::vector<RankLedger> snapshot() const;

  /// Flight-recorder dump: snapshots the live slots under `reason`.  Called
  /// by the recovery loop / CLI when a run unwinds with a fault.  Safe from
  /// the coordinating thread once the rank threads have stopped.
  void capture_postmortem(std::string reason);

  /// Out-of-band annotation (deadlock watchdog report); thread-safe.
  void note(std::string text);

  const std::vector<PostmortemBundle>& postmortems() const {
    return postmortems_;
  }
  const std::vector<std::string>& notes() const { return notes_; }

 private:
  struct Slot {
    std::vector<LedgerEvent> ring;  // capacity_ == 0: plain append vector
    std::uint64_t begin = 0;        // logical index of oldest retained event
    std::uint64_t end = 0;          // logical append count
    double final_vtime = 0.0;
  };

  std::size_t capacity_;
  std::vector<Slot> slots_;
  std::mutex aux_mutex_;  // guards notes_ and postmortems_ mutation
  std::vector<std::string> notes_;
  std::vector<PostmortemBundle> postmortems_;
};

/// The process-wide ledger, or nullptr when disabled (one relaxed load).
LedgerCollector* active_ledger();

/// Installs (or, with nullptr, removes) the process-wide ledger.  Install
/// before mp::run / route_serial; remove before destroying the collector.
void set_active_ledger(LedgerCollector* collector);

// --- serialization --------------------------------------------------------

inline constexpr int kLedgerVersion = 1;

/// Run description embedded in the serialized ledger.
struct LedgerMeta {
  std::string algorithm;
  std::string circuit_source;
  std::uint64_t seed = 0;
  int ranks = 0;
  std::string platform;       // cost-model name
  double latency_s = 0.0;     // α
  double per_byte_s = 0.0;    // β
  double compute_scale = 1.0;
};

/// Serializes the collector (live slots + postmortems + notes) as a
/// versioned JSON document ("schema": "ptwgr.ledger").  Virtual times are
/// printed with full round-trip precision so the analyzer's attribution
/// invariants survive parse.  With include_times = false the document is
/// *canonical*: t0/t1/final_vtime are omitted, leaving only the
/// machine-independent causal structure — same seed ⇒ byte-identical output
/// (the determinism tests compare this form).
std::string ledger_to_json(const LedgerCollector& ledger,
                           const LedgerMeta& meta, bool include_times = true);

/// Feeds matched send→recv pairs from the ledger into a trace collector as
/// flow endpoints, so the Chrome-trace export draws message-causality arrows
/// between the rank tracks.
void export_message_flows(const LedgerCollector& ledger,
                          TraceCollector& trace);

}  // namespace ptwgr::obs
