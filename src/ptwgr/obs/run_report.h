// The versioned JSON run report: one self-describing document per routing
// run — configuration and seed, circuit characteristics, the five per-phase
// quality snapshots, final routing metrics, timings, and (for parallel runs)
// the per-rank virtual-time and communication accounting.
//
// The schema is versioned ("schema": "ptwgr.run_report", "version": N) so
// downstream tooling — ptwgr_compare, the CI regression gate, notebooks —
// can evolve with it.  DESIGN.md §10 documents every section.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ptwgr/circuit/circuit_stats.h"
#include "ptwgr/mp/comm_stats.h"
#include "ptwgr/obs/snapshot.h"
#include "ptwgr/route/router.h"

namespace ptwgr::obs {

/// Bump when the JSON layout changes incompatibly.
inline constexpr int kRunReportVersion = 1;

/// One rank's timing and communication accounting (parallel runs).
struct RankReport {
  int rank = 0;
  double vtime_seconds = 0.0;
  double cpu_seconds = 0.0;
  mp::CommStats comm;
};

struct RunReport {
  // --- configuration ------------------------------------------------------
  std::string algorithm = "serial";  ///< serial | row-wise | net-wise | hybrid
  std::uint64_t seed = 1;
  int ranks = 1;
  std::string platform = "n/a";  ///< ideal | smp | dmp | n/a (serial)
  RouterOptions router;

  // --- circuit ------------------------------------------------------------
  std::string circuit_source;  ///< file path, suite spec, or generator spec
  CircuitStats circuit;

  // --- solution -----------------------------------------------------------
  bool has_snapshots = false;
  std::array<PhaseSnapshot, kNumPhases> snapshots{};
  RoutingMetrics metrics;

  // --- timing (volatile: machine-dependent, see clear_volatile) ----------
  StepTimings step_timings;       ///< serial runs
  bool has_step_timings = false;
  double modeled_seconds = 0.0;   ///< parallel: slowest rank's virtual clock
  double wall_seconds = 0.0;
  double total_cpu_seconds = 0.0;
  std::vector<RankReport> rank_reports;

  // --- fault recovery -----------------------------------------------------
  int recovery_attempts = 0;
  std::vector<int> failed_ranks;

  /// Copies the collector's merged snapshots in.
  void fill_snapshots(const QualityCollector& collector);

  /// Zeroes every machine-dependent field (wall/CPU/virtual seconds, per-rank
  /// vtime decompositions) so two same-seed reports compare byte-identical.
  /// Deterministic counters (message/byte counts, quality, snapshots) stay.
  void clear_volatile();

  /// The whole report as one JSON document.
  std::string to_json() const;
};

/// JSON for one snapshot (shared by to_json; exposed for tests).
std::string snapshot_to_json(const PhaseSnapshot& snapshot);

}  // namespace ptwgr::obs
