#include "ptwgr/parallel/rowwise.h"

#include <algorithm>

#include "ptwgr/obs/record.h"
#include "ptwgr/obs/snapshot.h"
#include "ptwgr/parallel/fake_pins.h"
#include "ptwgr/parallel/subcircuit.h"
#include "ptwgr/route/coarse.h"
#include "ptwgr/route/connect.h"
#include "ptwgr/route/feedthrough.h"
#include "ptwgr/support/log.h"

namespace ptwgr {
namespace {

void sort_fake_pins(std::vector<FakePinRecord>& records) {
  std::sort(records.begin(), records.end(),
            [](const FakePinRecord& p, const FakePinRecord& q) {
              if (p.net != q.net) return p.net < q.net;
              if (p.row != q.row) return p.row < q.row;
              return p.x < q.x;
            });
}

}  // namespace

ParallelRunOutput route_rowwise(mp::Communicator& comm, const Circuit& global,
                                const ParallelOptions& options) {
  const int rank = comm.rank();
  const int size = comm.size();
  PTWGR_EXPECTS(static_cast<std::size_t>(size) <= global.num_rows());
  const RouterOptions& router = options.router;
  Rng rng(router.seed + std::uint64_t{0x9e3779b97f4a7c15} *
                            static_cast<std::uint64_t>(rank));

  // --- partitioning (deterministic; every rank computes the same) --------
  RankPhase phase("partition", comm);
  const RowPartition rows = partition_rows(global, size);
  const NetPartition nets =
      partition_nets(global, size, options.net_partition, &rows);

  // --- parallel Steiner construction + fake-pin/segment exchange (§4) ----
  // Each rank builds the whole-net trees it owns, then ships (a) the fake
  // pins planted where trees cross block boundaries and (b) the broken tree
  // segments to the blocks that own them — "those broken segments will
  // become the net segments of the processor which owns its two end points."
  phase.next("steiner");
  // Quality snapshots: contributions are recorded in global coordinates and
  // summed by the collector; mark()/rewind() keeps the recording work off
  // the modeled clock.
  obs::QualityCollector* quality = obs::active_quality();
  SteinerOptions steiner_options;
  steiner_options.row_cost = router.steiner_row_cost;
  std::vector<std::vector<FakePinRecord>> fake_out(
      static_cast<std::size_t>(size));
  std::vector<std::vector<TreePieceRecord>> piece_out(
      static_cast<std::size_t>(size));
  obs::TreeBatch tree_batch;
  for (const NetId net :
       nets.nets_of[static_cast<std::size_t>(rank)]) {
    const SteinerTree tree = build_steiner_tree(global, net, steiner_options);
    if (quality != nullptr) {
      tree_batch.add(tree, router.steiner_row_cost);
    }
    auto fakes = split_by_block(compute_fake_pins(tree, rows), rows);
    auto pieces = split_tree_segments(tree, rows);
    for (std::size_t b = 0; b < fakes.size(); ++b) {
      fake_out[b].insert(fake_out[b].end(), fakes[b].begin(), fakes[b].end());
      piece_out[b].insert(piece_out[b].end(), pieces[b].begin(),
                          pieces[b].end());
    }
  }
  if (quality != nullptr) {
    const auto m = comm.mark();
    quality->add_trees(tree_batch.per_net_costs, tree_batch.edges,
                       tree_batch.inter_row_edges);
    comm.rewind(m);
  }
  phase.next("fake-pin exchange");
  const auto fake_in = comm.all_to_all(fake_out);
  const auto piece_in = comm.all_to_all(piece_out);
  std::vector<FakePinRecord> my_fakes;
  for (const auto& part : fake_in) {
    my_fakes.insert(my_fakes.end(), part.begin(), part.end());
  }
  sort_fake_pins(my_fakes);  // arrival order must not influence routing

  // --- local TWGR pipeline on the sub-circuit ----------------------------
  phase.next("coarse");
  SubCircuit sub = extract_subcircuit(global, rows, rank, my_fakes);
  const Coord global_core_width = global.core_width();
  auto segments = local_segments_from_pieces(piece_in, sub);

  CoarseGrid grid(sub.circuit.num_rows(), global_core_width,
                  router.column_width);
  CoarseOptions coarse_options;
  coarse_options.passes = router.coarse_passes;
  coarse_options.cross_check = router.cross_check;
  CoarseRouter coarse(grid, coarse_options);
  coarse.place_initial(segments);
  Rng coarse_rng = rng.split();
  const std::size_t coarse_flips = coarse.improve(segments, coarse_rng);
  SweepCounts sweeps;
  sweeps.coarse_decisions = static_cast<std::int64_t>(
      segments.size() * static_cast<std::size_t>(router.coarse_passes));
  sweeps.coarse_flips = static_cast<std::int64_t>(coarse_flips);
  if (quality != nullptr) {
    // Block rows/channels translate by the block offset (halo slots carry
    // zero demand); columns already align on the global core width.
    const auto m = comm.mark();
    quality->add_grid(obs::Phase::Coarse, grid, sub.global_row(0),
                      sub.global_channel(0), global.num_rows());
    quality->add_flips(obs::Phase::Coarse, sweeps.coarse_decisions,
                       sweeps.coarse_flips, router.coarse_passes);
    comm.rewind(m);
  }

  phase.next("feedthrough");
  FeedthroughPools pools =
      insert_feedthroughs(sub.circuit, grid, router.feedthrough_width);
  assign_feedthroughs(sub.circuit, pools, grid, segments,
                      router.feedthrough_width);
  if (quality != nullptr) {
    const auto m = comm.mark();
    auto per_row = obs::feedthrough_rows(sub.circuit);
    for (auto& [row, count] : per_row) {
      row = sub.global_row(static_cast<std::uint32_t>(row));
    }
    quality->add_feedthroughs(per_row, global.num_rows());
    comm.rewind(m);
  }

  phase.next("connect");
  std::vector<Wire> wires = connect_all_nets(sub.circuit);

  // Map wires (and the rows switchable wires hug) into the global frame.
  // Wires touching halo fake pins land in the shared boundary channels —
  // both neighbours load those channels independently, which is the
  // boundary interaction the paper's Fig. 3 illustrates.
  for (Wire& wire : wires) {
    wire.channel = sub.global_channel(wire.channel);
    wire.row = sub.global_row(wire.row);
  }
  // Global-net view of the block's wires for snapshot recording.
  const auto global_wires = [&sub](const std::vector<Wire>& local) {
    std::vector<Wire> out = local;
    for (Wire& wire : out) wire.net = sub.global_net[wire.net.index()];
    return out;
  };
  if (quality != nullptr) {
    const auto m = comm.mark();
    quality->add_wires(obs::Phase::Connect, global_wires(wires),
                       global.num_rows() + 1);
    comm.rewind(m);
  }

  // --- switchable step with boundary-channel synchronization -------------
  phase.next("switchable");
  Rng switch_rng = rng.split();
  const SweepCounts switch_sweeps = optimize_switchable_rowblock(
      comm, wires, rows, global.num_rows() + 1, global_core_width, router,
      switch_rng);
  sweeps.switch_decisions = switch_sweeps.switch_decisions;
  sweeps.switch_flips = switch_sweeps.switch_flips;
  if (quality != nullptr) {
    const auto m = comm.mark();
    quality->add_wires(obs::Phase::Switchable, global_wires(wires),
                       global.num_rows() + 1);
    quality->add_flips(obs::Phase::Switchable, sweeps.switch_decisions,
                       sweeps.switch_flips, router.switchable_passes);
    comm.rewind(m);
  }

  // --- gather and report --------------------------------------------------
  // The span must close while the clock still shows routing time:
  // assemble_metrics rewinds the vtime it spends on measurement.
  phase.end();
  std::vector<WireRecord> records;
  records.reserve(wires.size());
  for (const Wire& wire : wires) {
    Wire global_wire = wire;
    global_wire.net = sub.global_net[wire.net.index()];
    records.push_back(to_record(global_wire));
  }
  return assemble_metrics(comm, records, global.num_rows() + 1,
                          sub.circuit.core_width(),
                          total_rows_height(global),
                          sub.circuit.num_feedthrough_cells(), sweeps,
                          options.keep_wires);
}

}  // namespace ptwgr
