#include "ptwgr/parallel/subcircuit.h"

#include <unordered_map>

#include "ptwgr/support/check.h"

namespace ptwgr {
namespace {

/// Halo rows carry no cells; their height is irrelevant to global metrics
/// (area uses the global circuit's row heights).
constexpr Coord kHaloRowHeight = 16;

}  // namespace

SubCircuit extract_subcircuit(const Circuit& global, const RowPartition& rows,
                              int block,
                              const std::vector<FakePinRecord>& fake_pins) {
  PTWGR_EXPECTS(block >= 0 && block < rows.num_blocks());
  const std::size_t row_lo = rows.first_row(block);
  const std::size_t row_hi = rows.end_row(block);

  SubCircuit sub;
  sub.first_row = row_lo;
  sub.has_bottom_halo = block > 0;
  sub.has_top_halo = block + 1 < rows.num_blocks();

  // Local net table, created on demand.
  std::unordered_map<std::uint32_t, NetId> local_net_of;
  const auto local_net = [&](NetId global_net_id) {
    const auto [it, inserted] =
        local_net_of.try_emplace(global_net_id.value(), NetId{});
    if (inserted) {
      it->second = sub.circuit.add_net();
      sub.global_net.push_back(global_net_id);
    }
    return it->second;
  };

  if (sub.has_bottom_halo) sub.circuit.add_row(kHaloRowHeight);

  // Real rows and cells, preserving global placements.
  for (std::size_t r = row_lo; r < row_hi; ++r) {
    const RowId global_row{static_cast<std::uint32_t>(r)};
    const RowId local_row =
        sub.circuit.add_row(global.row(global_row).height);
    for (const CellId gcell_id : global.row(global_row).cells) {
      const Cell& gcell = global.cell(gcell_id);
      const CellId local_cell =
          sub.circuit.append_cell(local_row, gcell.width, gcell.kind);
      sub.circuit.set_cell_position(local_cell, gcell.x);
      for (const PinId gpin_id : gcell.pins) {
        const Pin& gpin = global.pin(gpin_id);
        sub.circuit.add_cell_pin(local_cell, local_net(gpin.net), gpin.offset,
                                 gpin.side);
      }
    }
  }

  if (sub.has_top_halo) sub.circuit.add_row(kHaloRowHeight);

  // Fake pins land on the halo rows via the uniform global→local mapping.
  const std::size_t num_local_rows = sub.circuit.num_rows();
  for (const FakePinRecord& record : fake_pins) {
    PTWGR_CHECK_MSG(record.block == block,
                    "fake pin for block " << record.block << " given to "
                                          << block);
    const auto local =
        static_cast<std::int64_t>(record.row) -
        static_cast<std::int64_t>(row_lo) + sub.halo_offset();
    PTWGR_CHECK_MSG(local >= 0 &&
                        static_cast<std::size_t>(local) < num_local_rows,
                    "fake pin row " << record.row << " outside block halo");
    sub.circuit.add_fake_pin(local_net(NetId{record.net}),
                             RowId{static_cast<std::uint32_t>(local)},
                             record.x);
  }

  sub.circuit.validate();
  return sub;
}

}  // namespace ptwgr
