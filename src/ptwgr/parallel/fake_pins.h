// Fake-pin planning for row-partitioned parallel routing (paper §4, Fig. 2).
//
// When a net's Steiner tree crosses a block boundary, both adjacent blocks
// receive a fake pin at the crossing x: the boundary-side stand-ins that let
// each block route its sub-net independently while agreeing on where the
// inter-block vertical wire runs.  A block a net passes straight through
// receives two fake pins (entry and exit rows), so its sub-net routes the
// pass-through crossing — feedthroughs included — like any other segment.
#pragma once

#include <vector>

#include "ptwgr/parallel/records.h"
#include "ptwgr/partition/row_partition.h"
#include "ptwgr/route/steiner.h"

namespace ptwgr {

/// Fake pins implied by one tree: for every edge and every block boundary it
/// crosses, one record on each side of the boundary.  Records are deduplicated
/// per (net, row, x).
std::vector<FakePinRecord> compute_fake_pins(const SteinerTree& tree,
                                             const RowPartition& rows);

/// Routes records to their owning blocks: result[b] holds the records whose
/// row lies in block b.
std::vector<std::vector<FakePinRecord>> split_by_block(
    std::vector<FakePinRecord> records, const RowPartition& rows);

/// The broken tree pieces of paper §4: every inter-row tree edge, split at
/// each block boundary it crosses, becomes per-block segments — "those
/// broken segments will become the net segments of the processor which owns
/// its two end points."  Rows are global; a piece's boundary-side endpoint
/// row lies just outside the block (the halo row its fake pin sits on), so
/// the piece crosses exactly the block's own rows.
struct TreePieceRecord {
  std::uint32_t net = 0;
  Coord ax = 0;
  std::uint32_t arow = 0;  ///< lower row (global)
  Coord bx = 0;
  std::uint32_t brow = 0;  ///< upper row (global); arow < brow

  friend bool operator==(const TreePieceRecord&, const TreePieceRecord&) =
      default;
};

/// Splits a tree's inter-row edges into per-block pieces (index = block).
/// Same-row edges carry no coarse-routing work and are omitted — step 4
/// reconnects them from the pins.
std::vector<std::vector<TreePieceRecord>> split_tree_segments(
    const SteinerTree& tree, const RowPartition& rows);

}  // namespace ptwgr
