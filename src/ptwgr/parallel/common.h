// Shared machinery of the three parallel algorithms: options, result types,
// replica synchronizers, and rank-0 metric assembly.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ptwgr/mp/communicator.h"
#include "ptwgr/mp/fault.h"
#include "ptwgr/obs/resource.h"
#include "ptwgr/parallel/fake_pins.h"
#include "ptwgr/parallel/records.h"
#include "ptwgr/parallel/subcircuit.h"
#include "ptwgr/partition/net_partition.h"
#include "ptwgr/route/coarse.h"
#include "ptwgr/route/grid.h"
#include "ptwgr/route/metrics.h"
#include "ptwgr/route/router.h"
#include "ptwgr/route/switchable.h"
#include "ptwgr/support/log.h"
#include "ptwgr/support/trace.h"

namespace ptwgr {

enum class ParallelAlgorithm : std::uint8_t {
  RowWise = 0,
  NetWise = 1,
  Hybrid = 2,
};

std::string to_string(ParallelAlgorithm algorithm);

/// Invalid parallel-run configuration: rank count out of range for the
/// circuit, inconsistent fault options, and similar caller errors.
class ParallelConfigError : public std::runtime_error {
 public:
  explicit ParallelConfigError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Fault-injection and fault-tolerance knobs of a parallel run.  The default
/// is a fault-free run with the hardening disabled — identical behaviour and
/// cost to the pre-fault-tolerance router.
struct FaultOptions {
  /// Deterministic fault schedule; null disables injection.  Shared so the
  /// caller can inspect the plan after the run (kills fire at most once per
  /// plan lifetime).
  std::shared_ptr<mp::FaultPlan> plan;
  /// Acknowledged-send retry/backoff policy used while `plan` interferes.
  mp::RetryPolicy retry;
  /// recv() timeout in seconds (< 0 disables).
  double recv_timeout_seconds = -1.0;
  /// All-ranks-blocked deadlock watchdog.
  bool watchdog = false;
  double watchdog_interval_seconds = 0.25;
  /// How many times route_parallel may re-execute the routing run after a
  /// rank failure before giving up and rethrowing.  Because the algorithms
  /// are deterministic in (seed, num_ranks) and kills are one-shot, a
  /// re-execution reproduces the fault-free result byte for byte.
  int max_recovery_attempts = 2;
};

struct ParallelOptions {
  /// Base serial-router parameters (seed, grid, passes...).
  RouterOptions router;
  /// Net partitioning scheme (Steiner construction in all algorithms; net
  /// ownership in net-wise and hybrid).
  NetPartitionOptions net_partition;
  /// Net-wise: coarse-routing decisions between grid-replica syncs.
  /// The paper keeps this sparse — frequent sync preserves quality but
  /// "communication is more costly than computation" (§5); the sync ablation
  /// bench sweeps it.
  std::size_t coarse_sync_period = 8192;
  /// Net-wise: switchable decisions between channel-density syncs.
  std::size_t switch_sync_period = 8192;
  /// Keep the globally gathered wires in the run output (rank 0): the text
  /// routing report and channel profiles need the actual solution, not just
  /// its metrics.  Off by default — gathered wires can be large.
  bool keep_wires = false;
  /// Fault injection / tolerance (defaults to a plain fault-free run).
  FaultOptions fault;
};

/// One rank's flip-sweep acceptance counts (coarse step 2, switchable step
/// 5); allreduce-summed into RoutingMetrics by assemble_metrics.
struct SweepCounts {
  std::int64_t coarse_decisions = 0;
  std::int64_t coarse_flips = 0;
  std::int64_t switch_decisions = 0;
  std::int64_t switch_flips = 0;
};

/// Everything a parallel run reports.  Metrics are computed on rank 0 from
/// the gathered wires and broadcast, so every rank (and the caller) sees
/// identical values.
struct ParallelRunOutput {
  RoutingMetrics metrics;
  std::size_t feedthrough_count = 0;
  /// The globally gathered solution (rank 0 only, and only when
  /// ParallelOptions::keep_wires is set).
  std::vector<WireRecord> wires;
};

// --- phase tracing --------------------------------------------------------

/// Chained phase spans on the rank's virtual-clock timeline: construct with
/// the first phase name, call next() at each transition, and the destructor
/// (or end()) closes the last span.  Exported traces therefore show the
/// modeled parallel schedule per rank.  Span recording is a no-op when no
/// trace collector is active — no clock read, no allocation.  Transitions
/// also log at Debug (rank-tagged via the runtime's ScopedLogRank).
///
/// Phase entry is also the fault plan's kill-at-phase hook: entering a phase
/// notifies the communicator, which throws RankFailure when the plan
/// schedules this rank's death at that phase name.
class RankPhase {
 public:
  RankPhase(const char* name, mp::Communicator& comm)
      : comm_(&comm), collector_(active_trace()), name_(name) {
    comm_->notify_phase(name);
    obs::resource_set_phase(name);
    PTWGR_LOG_DEBUG << "phase: " << name;
    if (collector_ != nullptr) start_ = comm_->vtime();
  }

  void next(const char* name) {
    comm_->notify_phase(name);
    obs::resource_set_phase(name);
    PTWGR_LOG_DEBUG << "phase: " << name;
    if (collector_ == nullptr) {
      name_ = name;
      return;
    }
    const double now = comm_->vtime();
    if (name_ != nullptr) {
      collector_->record(name_, comm_->rank(), start_, now, "parallel");
    }
    name_ = name;
    start_ = now;
  }

  void end() {
    if (collector_ == nullptr || name_ == nullptr) return;
    collector_->record(name_, comm_->rank(), start_, comm_->vtime(),
                       "parallel");
    name_ = nullptr;
  }

  ~RankPhase() { end(); }

  RankPhase(const RankPhase&) = delete;
  RankPhase& operator=(const RankPhase&) = delete;

 private:
  mp::Communicator* comm_;
  TraceCollector* collector_;
  const char* name_;
  double start_ = 0.0;
};

// --- replica synchronization --------------------------------------------

/// Keeps a rank's CoarseGrid replica reconciled with its peers: sync()
/// allreduce-sums everyone's deltas since the previous sync and applies the
/// peers' contributions locally (demand maps are additive, so the replicas
/// converge to the union of all commits).
class GridSynchronizer {
 public:
  explicit GridSynchronizer(CoarseGrid& grid)
      : grid_(&grid), last_(grid.export_state()) {}

  void sync(mp::Communicator& comm);

 private:
  CoarseGrid* grid_;
  std::vector<std::int32_t> last_;
};

/// One round of switchable-density reconciliation: exchanges the pending
/// per-bucket deltas of every rank's SwitchableOptimizer replica.
void sync_switch_densities(mp::Communicator& comm,
                           SwitchableOptimizer& optimizer);

/// Collective round planning for periodic syncs: ranks perform different
/// event counts, but collectives must be entered by everyone.  Returns the
/// global number of sync rounds (= max over ranks of events / period).
std::size_t plan_sync_rounds(mp::Communicator& comm, std::size_t my_events,
                             std::size_t period);

/// Converts tree pieces received from the net owners into the block's local
/// coarse segments: global net ids map to the sub-circuit's local nets and
/// global rows to local rows (halo endpoints included).  Pieces are sorted
/// deterministically so arrival order cannot influence routing.
std::vector<CoarseSegment> local_segments_from_pieces(
    const std::vector<std::vector<TreePieceRecord>>& piece_in,
    const SubCircuit& sub);

/// Row-block switchable optimization (paper §4, used by the row-wise and
/// hybrid algorithms): registers `wires` (global channel frame) into a
/// global-channel density replica, exchanges the registration deltas of the
/// two shared boundary channels with the neighbouring ranks only, then
/// optimizes in place.  Everything else stays rank-local.  Returns this
/// rank's switchable decision/flip counts (coarse fields stay zero).
SweepCounts optimize_switchable_rowblock(mp::Communicator& comm,
                                         std::vector<Wire>& wires,
                                         const RowPartition& rows,
                                         std::size_t num_channels,
                                         Coord core_width,
                                         const RouterOptions& router,
                                         Rng& rng);

// --- metric assembly -----------------------------------------------------

/// Exact metrics from gathered wire records (rank 0 of every algorithm).
RoutingMetrics metrics_from_records(std::size_t num_channels,
                                    Coord core_width, Coord rows_height,
                                    std::size_t feedthrough_count,
                                    const std::vector<WireRecord>& wires);

/// Gathers every rank's wires at rank 0, combines them with the
/// allreduce-derived geometry (max row width, total feedthroughs), computes
/// metrics on rank 0 and broadcasts them.  `core_width` and
/// `feedthrough_count` are this rank's local values; `rows_height` and
/// `num_channels` are global constants.  `sweeps` carries this rank's
/// flip-sweep counts; their global sums land in the returned metrics.  With
/// `keep_wires`, rank 0's output additionally keeps the gathered solution.
/// When a quality collector is active, rank 0 overrides the switchable
/// snapshot's channel density with the exact gathered values.
ParallelRunOutput assemble_metrics(mp::Communicator& comm,
                                   const std::vector<WireRecord>& my_wires,
                                   std::size_t num_channels,
                                   Coord local_core_width, Coord rows_height,
                                   std::size_t local_feedthroughs,
                                   const SweepCounts& sweeps,
                                   bool keep_wires = false);

/// Sum of all row heights of a circuit (area term shared by all ranks).
Coord total_rows_height(const Circuit& circuit);

}  // namespace ptwgr
