#include "ptwgr/parallel/parallel_router.h"

#include <string>

#include "ptwgr/obs/ledger.h"
#include "ptwgr/obs/snapshot.h"
#include "ptwgr/parallel/hybrid.h"
#include "ptwgr/parallel/netwise.h"
#include "ptwgr/parallel/rowwise.h"

namespace ptwgr {

ParallelRoutingResult route_parallel(const Circuit& circuit,
                                     ParallelAlgorithm algorithm,
                                     int num_ranks,
                                     const ParallelOptions& options,
                                     const mp::CostModel& cost) {
  if (num_ranks < 1) {
    throw ParallelConfigError("route_parallel: num_ranks must be >= 1, got " +
                              std::to_string(num_ranks));
  }
  if (static_cast<std::size_t>(num_ranks) > circuit.num_rows()) {
    throw ParallelConfigError(
        "route_parallel: num_ranks (" + std::to_string(num_ranks) +
        ") exceeds the circuit's row count (" +
        std::to_string(circuit.num_rows()) +
        "); the row-block partition needs at least one row per rank");
  }

  mp::FaultToleranceOptions ft;
  ft.fault_plan = options.fault.plan.get();
  ft.retry = options.fault.retry;
  ft.recv_timeout_seconds = options.fault.recv_timeout_seconds;
  ft.watchdog = options.fault.watchdog;
  ft.watchdog_interval_seconds = options.fault.watchdog_interval_seconds;

  ParallelRoutingResult result;
  // Every rank computes identical output (assemble_metrics broadcasts);
  // rank 0 stores it.
  const auto body = [&](mp::Communicator& comm) {
    ParallelRunOutput output;
    switch (algorithm) {
      case ParallelAlgorithm::RowWise:
        output = route_rowwise(comm, circuit, options);
        break;
      case ParallelAlgorithm::NetWise:
        output = route_netwise(comm, circuit, options);
        break;
      case ParallelAlgorithm::Hybrid:
        output = route_hybrid(comm, circuit, options);
        break;
    }
    if (comm.rank() == 0) {
      result.metrics = std::move(output.metrics);
      result.feedthrough_count = output.feedthrough_count;
      result.wires = std::move(output.wires);
    }
  };

  // Self-healing: a rank killed by the fault plan (or presumed dead after
  // send-retry exhaustion / recv timeout) unwinds the world with a typed
  // error, and the whole deterministic sub-problem is re-executed.  Kills
  // fire at most once per plan lifetime, so the replay completes, and the
  // algorithms depend only on (seed, num_ranks) — the recovered metrics are
  // byte-identical to a fault-free run's.
  for (int attempt = 0;; ++attempt) {
    try {
      // Each attempt records a complete set of quality contributions; a
      // replayed run must not double-accumulate the aborted attempt's.
      if (obs::QualityCollector* quality = obs::active_quality()) {
        quality->reset();
      }
      result.report = mp::run(num_ranks, cost, ft, body);
      result.recovery.recovered = result.recovery.attempts > 0;
      return result;
    } catch (const mp::RankFailure& failure) {
      // Flight-recorder dump: every rank's event tail at the moment the
      // world unwound, before the re-execution overwrites the live slots.
      if (obs::LedgerCollector* ledger = obs::active_ledger()) {
        ledger->capture_postmortem(failure.what());
      }
      result.recovery.failed_ranks.push_back(failure.rank());
      if (attempt >= options.fault.max_recovery_attempts) throw;
      ++result.recovery.attempts;
      PTWGR_LOG_WARN << "route_parallel: rank " << failure.rank()
                     << " failed (" << failure.what()
                     << "); re-executing, recovery attempt "
                     << result.recovery.attempts;
    } catch (const mp::RecvTimeout& timeout) {
      if (obs::LedgerCollector* ledger = obs::active_ledger()) {
        ledger->capture_postmortem(timeout.what());
      }
      if (timeout.source() >= 0) {
        result.recovery.failed_ranks.push_back(timeout.source());
      }
      if (attempt >= options.fault.max_recovery_attempts) throw;
      ++result.recovery.attempts;
      PTWGR_LOG_WARN << "route_parallel: " << timeout.what()
                     << "; re-executing, recovery attempt "
                     << result.recovery.attempts;
    }
  }
}

}  // namespace ptwgr
