#include "ptwgr/parallel/parallel_router.h"

#include "ptwgr/parallel/hybrid.h"
#include "ptwgr/parallel/netwise.h"
#include "ptwgr/parallel/rowwise.h"

namespace ptwgr {

ParallelRoutingResult route_parallel(const Circuit& circuit,
                                     ParallelAlgorithm algorithm,
                                     int num_ranks,
                                     const ParallelOptions& options,
                                     const mp::CostModel& cost) {
  PTWGR_EXPECTS(num_ranks >= 1);
  PTWGR_EXPECTS(static_cast<std::size_t>(num_ranks) <= circuit.num_rows());

  ParallelRoutingResult result;
  // Every rank computes identical output (assemble_metrics broadcasts);
  // rank 0 stores it.
  const auto body = [&](mp::Communicator& comm) {
    ParallelRunOutput output;
    switch (algorithm) {
      case ParallelAlgorithm::RowWise:
        output = route_rowwise(comm, circuit, options);
        break;
      case ParallelAlgorithm::NetWise:
        output = route_netwise(comm, circuit, options);
        break;
      case ParallelAlgorithm::Hybrid:
        output = route_hybrid(comm, circuit, options);
        break;
    }
    if (comm.rank() == 0) {
      result.metrics = std::move(output.metrics);
      result.feedthrough_count = output.feedthrough_count;
    }
  };
  result.report = mp::run(num_ranks, cost, body);
  return result;
}

}  // namespace ptwgr
