// Net-wise pin partition parallel global routing (paper §5).
//
// Whole nets are distributed by a weighting heuristic; every rank keeps a
// full circuit replica and a replica of the coarse demand grid and the
// channel-density profiles.  Because all ranks share all channels, replicas
// drift between the periodic allreduce syncs — the paper's "blindness" —
// which costs routing quality; and the syncs themselves move entire grid
// snapshots, which costs runtime.  Feedthrough assignment follows the
// paper's exchange: segments travel to the owners of the rows they cross,
// assigned terminals travel back to the nets' owners, who connect their
// whole nets.
#pragma once

#include "ptwgr/mp/communicator.h"
#include "ptwgr/parallel/common.h"

namespace ptwgr {

/// The per-rank body.  Requires comm.size() <= global.num_rows().
ParallelRunOutput route_netwise(mp::Communicator& comm, const Circuit& global,
                                const ParallelOptions& options);

}  // namespace ptwgr
