#include "ptwgr/parallel/common.h"

#include <algorithm>
#include <unordered_map>

#include "ptwgr/obs/record.h"
#include "ptwgr/obs/snapshot.h"
#include "ptwgr/support/interval.h"

namespace ptwgr {

std::string to_string(ParallelAlgorithm algorithm) {
  switch (algorithm) {
    case ParallelAlgorithm::RowWise: return "row-wise";
    case ParallelAlgorithm::NetWise: return "net-wise";
    case ParallelAlgorithm::Hybrid: return "hybrid";
  }
  return "?";
}

void GridSynchronizer::sync(mp::Communicator& comm) {
  auto current = grid_->export_state();
  std::vector<std::int32_t> delta(current.size());
  for (std::size_t i = 0; i < current.size(); ++i) {
    delta[i] = current[i] - last_[i];
  }
  const auto total = comm.allreduce(delta, mp::SumOp{});
  for (std::size_t i = 0; i < current.size(); ++i) {
    current[i] += total[i] - delta[i];
  }
  grid_->import_state(current);
  last_ = std::move(current);
}

void sync_switch_densities(mp::Communicator& comm,
                           SwitchableOptimizer& optimizer) {
  auto mine = optimizer.take_pending_deltas();
  auto total = comm.allreduce(mine, mp::SumOp{});
  for (std::size_t i = 0; i < total.size(); ++i) total[i] -= mine[i];
  optimizer.apply_external_deltas(total);
}

std::size_t plan_sync_rounds(mp::Communicator& comm, std::size_t my_events,
                             std::size_t period) {
  PTWGR_EXPECTS(period > 0);
  const auto my_rounds =
      static_cast<std::int64_t>(my_events / period);
  return static_cast<std::size_t>(
      comm.allreduce_value(my_rounds, mp::MaxOp{}));
}

namespace {

/// Message tags for the row-block boundary-density exchange.
constexpr int kTagBoundaryUp = 101;    // to rank + 1
constexpr int kTagBoundaryDown = 102;  // to rank - 1

}  // namespace

std::vector<CoarseSegment> local_segments_from_pieces(
    const std::vector<std::vector<TreePieceRecord>>& piece_in,
    const SubCircuit& sub) {
  std::vector<TreePieceRecord> pieces;
  for (const auto& part : piece_in) {
    pieces.insert(pieces.end(), part.begin(), part.end());
  }
  std::sort(pieces.begin(), pieces.end(),
            [](const TreePieceRecord& p, const TreePieceRecord& q) {
              if (p.net != q.net) return p.net < q.net;
              if (p.arow != q.arow) return p.arow < q.arow;
              if (p.ax != q.ax) return p.ax < q.ax;
              if (p.brow != q.brow) return p.brow < q.brow;
              return p.bx < q.bx;
            });

  std::unordered_map<std::uint32_t, NetId> local_net;
  for (std::size_t n = 0; n < sub.global_net.size(); ++n) {
    local_net.emplace(sub.global_net[n].value(),
                      NetId{static_cast<std::uint32_t>(n)});
  }

  const auto local_row = [&sub](std::uint32_t global_row) {
    const auto local = static_cast<std::int64_t>(global_row) -
                       static_cast<std::int64_t>(sub.first_row) +
                       sub.halo_offset();
    PTWGR_CHECK_MSG(
        local >= 0 &&
            static_cast<std::size_t>(local) < sub.circuit.num_rows(),
        "tree piece row " << global_row << " outside block");
    return static_cast<std::uint32_t>(local);
  };

  std::vector<CoarseSegment> segments;
  segments.reserve(pieces.size());
  for (const TreePieceRecord& piece : pieces) {
    const auto it = local_net.find(piece.net);
    PTWGR_CHECK_MSG(it != local_net.end(),
                    "tree piece for net " << piece.net
                                          << " without local terminals");
    CoarseSegment seg;
    seg.net = it->second;
    seg.a = RoutePoint{piece.ax, local_row(piece.arow)};
    seg.b = RoutePoint{piece.bx, local_row(piece.brow)};
    PTWGR_CHECK(seg.a.row < seg.b.row);
    segments.push_back(seg);
  }
  return segments;
}

SweepCounts optimize_switchable_rowblock(mp::Communicator& comm,
                                         std::vector<Wire>& wires,
                                         const RowPartition& rows,
                                         std::size_t num_channels,
                                         Coord core_width,
                                         const RouterOptions& router,
                                         Rng& rng) {
  const int rank = comm.rank();
  const int size = comm.size();
  SwitchableOptimizer optimizer(num_channels, core_width,
                                router.switch_bucket_width);
  optimizer.register_wires(wires);

  // Exchange the two shared boundary channels' registration deltas with the
  // neighbouring ranks (paper §4: "the track information in the shared
  // channel is synchronized between two adjacent processors").
  const auto deltas = optimizer.take_pending_deltas();
  const std::size_t buckets = deltas.size() / num_channels;
  const auto channel_slice = [&](std::uint32_t channel) {
    return std::vector<std::int32_t>(
        deltas.begin() + static_cast<std::ptrdiff_t>(channel * buckets),
        deltas.begin() + static_cast<std::ptrdiff_t>((channel + 1) * buckets));
  };
  const auto bottom_channel =
      static_cast<std::uint32_t>(rows.first_row(rank));
  const auto top_channel = static_cast<std::uint32_t>(rows.end_row(rank));
  if (rank < size - 1) {
    comm.send_value(rank + 1, kTagBoundaryUp, channel_slice(top_channel));
  }
  if (rank > 0) {
    comm.send_value(rank - 1, kTagBoundaryDown, channel_slice(bottom_channel));
  }
  std::vector<std::int32_t> external(deltas.size(), 0);
  if (rank > 0) {
    const auto from_below =
        comm.recv_vector<std::int32_t>(rank - 1, kTagBoundaryUp);
    PTWGR_CHECK(from_below.size() == buckets);
    std::copy(from_below.begin(), from_below.end(),
              external.begin() +
                  static_cast<std::ptrdiff_t>(bottom_channel * buckets));
  }
  if (rank < size - 1) {
    const auto from_above =
        comm.recv_vector<std::int32_t>(rank + 1, kTagBoundaryDown);
    PTWGR_CHECK(from_above.size() == buckets);
    std::copy(from_above.begin(), from_above.end(),
              external.begin() +
                  static_cast<std::ptrdiff_t>(top_channel * buckets));
  }
  optimizer.apply_external_deltas(external);

  SwitchableOptions switch_options;
  switch_options.passes = router.switchable_passes;
  switch_options.bucket_width = router.switch_bucket_width;
  switch_options.cross_check = router.cross_check;
  const std::size_t flips = optimizer.optimize(wires, rng, switch_options);

  SweepCounts sweeps;
  sweeps.switch_decisions =
      obs::count_switchable(wires) * router.switchable_passes;
  sweeps.switch_flips = static_cast<std::int64_t>(flips);
  return sweeps;
}

RoutingMetrics metrics_from_records(std::size_t num_channels,
                                    Coord core_width, Coord rows_height,
                                    std::size_t feedthrough_count,
                                    const std::vector<WireRecord>& wires) {
  RoutingMetrics metrics;
  // As in compute_metrics: density counts nets, so merge each net's wires
  // within a channel before the sweep.
  std::vector<std::vector<std::pair<std::uint32_t, Interval>>> per_channel(
      num_channels);
  for (const WireRecord& wire : wires) {
    PTWGR_CHECK_MSG(wire.channel < num_channels,
                    "wire channel " << wire.channel << " out of range");
    per_channel[wire.channel].emplace_back(wire.net,
                                           Interval{wire.lo, wire.hi});
    metrics.total_wirelength += wire.hi - wire.lo;
  }
  metrics.channel_density.resize(num_channels, 0);
  for (std::size_t c = 0; c < num_channels; ++c) {
    auto& entries = per_channel[c];
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<Interval> channel_intervals;
    std::vector<Interval> net_intervals;
    std::size_t i = 0;
    while (i < entries.size()) {
      const std::uint32_t net = entries[i].first;
      net_intervals.clear();
      for (; i < entries.size() && entries[i].first == net; ++i) {
        net_intervals.push_back(entries[i].second);
      }
      for (const Interval& iv : merge_intervals(net_intervals)) {
        channel_intervals.push_back(iv);
      }
    }
    metrics.channel_density[c] = max_overlap(std::move(channel_intervals));
    metrics.track_count += metrics.channel_density[c];
  }
  metrics.feedthrough_count = feedthrough_count;
  metrics.area =
      core_width * (rows_height + kTrackPitch * metrics.track_count);
  return metrics;
}

ParallelRunOutput assemble_metrics(mp::Communicator& comm,
                                   const std::vector<WireRecord>& my_wires,
                                   std::size_t num_channels,
                                   Coord local_core_width, Coord rows_height,
                                   std::size_t local_feedthroughs,
                                   const SweepCounts& sweeps,
                                   bool keep_wires) {
  // Everything below is evaluation, not routing: the reported parallel time
  // ends here, so the clock — including its compute/wait/sync decomposition
  // — is rewound on exit.  Message counters keep counting (the gather
  // traffic is real; only the timing is measurement-free).
  const mp::Communicator::TimeMark routing_end = comm.mark();
  // Geometry reductions every rank participates in.
  const Coord core_width =
      comm.allreduce_value<std::int64_t>(local_core_width, mp::MaxOp{});
  const auto feedthroughs = static_cast<std::size_t>(
      comm.allreduce_value<std::int64_t>(
          static_cast<std::int64_t>(local_feedthroughs), mp::SumOp{}));

  // Flip-sweep counts sum across ranks (deterministic integers, so every
  // rank sees identical totals without a broadcast).
  const auto sweep_totals = comm.allreduce(
      std::vector<std::int64_t>{sweeps.coarse_decisions, sweeps.coarse_flips,
                                sweeps.switch_decisions,
                                sweeps.switch_flips},
      mp::SumOp{});

  // Wires converge on rank 0.
  const auto gathered = comm.gather_vectors(0, my_wires);

  ParallelRunOutput output;
  output.feedthrough_count = feedthroughs;

  // Rank 0 computes; the result is broadcast field by field so every rank
  // returns identical metrics.
  std::vector<std::int64_t> packed;
  if (comm.rank() == 0) {
    std::vector<WireRecord> all;
    for (const auto& part : gathered) {
      all.insert(all.end(), part.begin(), part.end());
    }
    const RoutingMetrics metrics = metrics_from_records(
        num_channels, core_width, rows_height, feedthroughs, all);
    // The final snapshot's density upper bound is replaced with the exact
    // values just computed from the full gathered solution.
    if (obs::QualityCollector* quality = obs::active_quality()) {
      quality->set_exact_density(obs::Phase::Switchable,
                                 metrics.channel_density);
    }
    if (keep_wires) output.wires = std::move(all);
    packed.reserve(3 + metrics.channel_density.size());
    packed.push_back(metrics.track_count);
    packed.push_back(metrics.area);
    packed.push_back(metrics.total_wirelength);
    packed.insert(packed.end(), metrics.channel_density.begin(),
                  metrics.channel_density.end());
  }
  packed = comm.broadcast_vector(0, packed);
  PTWGR_CHECK(packed.size() == 3 + num_channels);
  output.metrics.track_count = packed[0];
  output.metrics.area = packed[1];
  output.metrics.total_wirelength = packed[2];
  output.metrics.feedthrough_count = feedthroughs;
  output.metrics.channel_density.assign(packed.begin() + 3, packed.end());
  output.metrics.coarse_decisions = sweep_totals[0];
  output.metrics.coarse_flips = sweep_totals[1];
  output.metrics.switch_decisions = sweep_totals[2];
  output.metrics.switch_flips = sweep_totals[3];
  comm.rewind(routing_end);
  return output;
}

Coord total_rows_height(const Circuit& circuit) {
  Coord total = 0;
  for (const Row& row : circuit.rows()) total += row.height;
  return total;
}

}  // namespace ptwgr
