// Hybrid pin partition parallel global routing (paper §6).
//
// Row-wise through coarse routing and feedthrough assignment — each rank
// routes its block's sub-circuit (fake pins included) independently — but
// net *connection* is done per whole net by a single owner rank: blocks ship
// their real terminals (pins and assigned feedthroughs, never fake pins) to
// the net owners, who build one MST per net.  This removes the
// independent-subnet track waste of Fig. 3, recovering most of the serial
// quality, at the cost of the terminal exchange and a globally synchronized
// switchable step — hence slightly lower speedups than row-wise.
#pragma once

#include "ptwgr/mp/communicator.h"
#include "ptwgr/parallel/common.h"

namespace ptwgr {

/// The per-rank body.  Requires comm.size() <= global.num_rows().
ParallelRunOutput route_hybrid(mp::Communicator& comm, const Circuit& global,
                               const ParallelOptions& options);

}  // namespace ptwgr
