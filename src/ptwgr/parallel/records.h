// Trivially copyable records exchanged between ranks by the parallel
// algorithms.  All coordinates are in the *global* frame (global row and
// channel indices, absolute x).
#pragma once

#include <cstdint>

#include "ptwgr/circuit/types.h"
#include "ptwgr/route/connect.h"

namespace ptwgr {

/// A fake pin to be planted on a block's *halo row* (paper §4, Fig. 2).
///
/// `row` is the global row just across the block's boundary (the first row
/// of the neighbouring block), so that a sub-segment ending on the fake pin
/// crosses every in-block row the original wire crosses — feedthrough
/// demand stays exact.  `block` is the destination block.
struct FakePinRecord {
  std::uint32_t net = 0;
  std::int32_t block = 0;
  std::uint32_t row = 0;
  Coord x = 0;

  friend bool operator==(const FakePinRecord&, const FakePinRecord&) = default;
};

/// A committed coarse segment, shipped to the owners of the rows it crosses
/// for feedthrough assignment (net-wise algorithm).
struct SegmentRecord {
  std::uint32_t net = 0;
  Coord ax = 0;
  std::uint32_t arow = 0;
  Coord bx = 0;
  std::uint32_t brow = 0;
  std::uint8_t vertical_at_a = 1;

  friend bool operator==(const SegmentRecord&, const SegmentRecord&) = default;
};

/// A net terminal (pin or assigned feedthrough), shipped to the net's owner
/// for whole-net connection (hybrid and net-wise algorithms).
struct TerminalRecord {
  std::uint32_t net = 0;
  std::uint32_t row = 0;
  Coord x = 0;
  std::uint8_t access = static_cast<std::uint8_t>(TerminalAccess::Either);

  friend bool operator==(const TerminalRecord&, const TerminalRecord&) =
      default;
};

/// A routed wire in global channel coordinates — gathered at rank 0 for
/// metric computation, and exchanged between net owners and row owners by
/// the hybrid algorithm (which optimizes switchable wires row-block-locally).
struct WireRecord {
  std::uint32_t net = 0;
  std::uint32_t channel = 0;
  Coord lo = 0;
  Coord hi = 0;
  std::uint32_t row = 0;
  std::uint8_t switchable = 0;

  friend bool operator==(const WireRecord&, const WireRecord&) = default;
};

inline WireRecord to_record(const Wire& wire) {
  return WireRecord{wire.net.value(),
                    wire.channel,
                    wire.lo,
                    wire.hi,
                    wire.row,
                    static_cast<std::uint8_t>(wire.switchable ? 1 : 0)};
}

inline Wire from_record(const WireRecord& record) {
  Wire wire;
  wire.net = NetId{record.net};
  wire.channel = record.channel;
  wire.lo = record.lo;
  wire.hi = record.hi;
  wire.row = record.row;
  wire.switchable = record.switchable != 0;
  return wire;
}

}  // namespace ptwgr
