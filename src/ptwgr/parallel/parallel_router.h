// Entry point for parallel global routing: picks an algorithm, launches the
// SPMD rank bodies on the message-passing runtime, and reports quality plus
// the modeled parallel runtime.
#pragma once

#include "ptwgr/mp/runtime.h"
#include "ptwgr/parallel/common.h"

namespace ptwgr {

struct ParallelRoutingResult {
  RoutingMetrics metrics;
  std::size_t feedthrough_count = 0;
  /// Raw per-rank timing from the runtime.
  mp::RunReport report;

  /// The modeled parallel runtime (slowest rank's virtual clock) — the
  /// number the paper's speedup tables divide the serial time by.
  double modeled_seconds() const { return report.parallel_time(); }

  /// Whole-run communication totals (all ranks folded together): traffic
  /// volume per algorithm, for the benchmark tables and --metrics export.
  mp::CommStats comm_totals() const { return report.comm_totals(); }
};

/// Routes `circuit` with `algorithm` on `num_ranks` ranks under `cost`
/// (platform communication model).  Deterministic in options.router.seed for
/// fixed num_ranks.  Requires 1 <= num_ranks <= circuit.num_rows().
ParallelRoutingResult route_parallel(
    const Circuit& circuit, ParallelAlgorithm algorithm, int num_ranks,
    const ParallelOptions& options = {},
    const mp::CostModel& cost = mp::CostModel::ideal());

}  // namespace ptwgr
