// Entry point for parallel global routing: picks an algorithm, launches the
// SPMD rank bodies on the message-passing runtime, and reports quality plus
// the modeled parallel runtime.
#pragma once

#include "ptwgr/mp/runtime.h"
#include "ptwgr/parallel/common.h"

namespace ptwgr {

/// What the self-healing layer had to do to finish the run.
struct RecoveryReport {
  /// Re-executions performed after a rank failure (0 = clean first run).
  int attempts = 0;
  /// Ranks whose failure triggered a re-execution, in order of occurrence.
  std::vector<int> failed_ranks;
  /// True when at least one failure occurred and the run still completed.
  bool recovered = false;
};

struct ParallelRoutingResult {
  RoutingMetrics metrics;
  std::size_t feedthrough_count = 0;
  /// The globally gathered solution (only when ParallelOptions::keep_wires
  /// is set): what the text routing report and channel profiles render.
  std::vector<WireRecord> wires;
  /// Raw per-rank timing from the runtime.
  mp::RunReport report;
  /// Rank-failure recovery events (all zero on a fault-free run).
  RecoveryReport recovery;

  /// The modeled parallel runtime (slowest rank's virtual clock) — the
  /// number the paper's speedup tables divide the serial time by.
  double modeled_seconds() const { return report.parallel_time(); }

  /// Whole-run communication totals (all ranks folded together): traffic
  /// volume per algorithm, for the benchmark tables and --metrics export.
  mp::CommStats comm_totals() const { return report.comm_totals(); }
};

/// Routes `circuit` with `algorithm` on `num_ranks` ranks under `cost`
/// (platform communication model).  Deterministic in options.router.seed for
/// fixed num_ranks.  Throws ParallelConfigError unless
/// 1 <= num_ranks <= circuit.num_rows().
///
/// When options.fault carries a plan that kills a rank mid-algorithm, the
/// survivors detect the death (dead-source recvs, collective health checks,
/// send-retry exhaustion), the run unwinds with mp::RankFailure, and the
/// routing is re-executed (up to fault.max_recovery_attempts times).  Kills
/// fire once per plan lifetime and the algorithms are deterministic, so the
/// recovered run's RoutingMetrics are byte-identical to a fault-free run;
/// the recovery events are reported in `recovery`.
ParallelRoutingResult route_parallel(
    const Circuit& circuit, ParallelAlgorithm algorithm, int num_ranks,
    const ParallelOptions& options = {},
    const mp::CostModel& cost = mp::CostModel::ideal());

}  // namespace ptwgr
