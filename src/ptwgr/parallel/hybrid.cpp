#include "ptwgr/parallel/hybrid.h"

#include <algorithm>

#include "ptwgr/obs/record.h"
#include "ptwgr/obs/snapshot.h"
#include "ptwgr/parallel/fake_pins.h"
#include "ptwgr/parallel/subcircuit.h"
#include "ptwgr/route/coarse.h"
#include "ptwgr/route/connect.h"
#include "ptwgr/route/feedthrough.h"
#include "ptwgr/support/log.h"

namespace ptwgr {
namespace {

TerminalAccess access_from_side(PinSide side) {
  switch (side) {
    case PinSide::Top: return TerminalAccess::AboveOnly;
    case PinSide::Bottom: return TerminalAccess::BelowOnly;
    case PinSide::Both: return TerminalAccess::Either;
  }
  return TerminalAccess::Either;
}

}  // namespace

ParallelRunOutput route_hybrid(mp::Communicator& comm, const Circuit& global,
                               const ParallelOptions& options) {
  const int rank = comm.rank();
  const int size = comm.size();
  PTWGR_EXPECTS(static_cast<std::size_t>(size) <= global.num_rows());
  const RouterOptions& router = options.router;
  Rng rng(router.seed + std::uint64_t{0x9e3779b97f4a7c15} *
                            static_cast<std::uint64_t>(rank));

  RankPhase phase("partition", comm);
  const RowPartition rows = partition_rows(global, size);
  const NetPartition nets =
      partition_nets(global, size, options.net_partition, &rows);

  // --- parallel Steiner construction + fake-pin/segment exchange ----------
  // Identical to row-wise: whole-net trees built by their owners, fake pins
  // and broken tree segments shipped to the block owners.
  phase.next("steiner");
  // Quality snapshots: global-coordinate contributions, recording excluded
  // from the modeled clock via mark()/rewind() (see rowwise.cpp).
  obs::QualityCollector* quality = obs::active_quality();
  SteinerOptions steiner_options;
  steiner_options.row_cost = router.steiner_row_cost;
  std::vector<std::vector<FakePinRecord>> fake_out(
      static_cast<std::size_t>(size));
  std::vector<std::vector<TreePieceRecord>> piece_out(
      static_cast<std::size_t>(size));
  obs::TreeBatch tree_batch;
  for (const NetId net : nets.nets_of[static_cast<std::size_t>(rank)]) {
    const SteinerTree tree = build_steiner_tree(global, net, steiner_options);
    if (quality != nullptr) {
      tree_batch.add(tree, router.steiner_row_cost);
    }
    auto fakes = split_by_block(compute_fake_pins(tree, rows), rows);
    auto pieces = split_tree_segments(tree, rows);
    for (std::size_t b = 0; b < fakes.size(); ++b) {
      fake_out[b].insert(fake_out[b].end(), fakes[b].begin(), fakes[b].end());
      piece_out[b].insert(piece_out[b].end(), pieces[b].begin(),
                          pieces[b].end());
    }
  }
  if (quality != nullptr) {
    const auto m = comm.mark();
    quality->add_trees(tree_batch.per_net_costs, tree_batch.edges,
                       tree_batch.inter_row_edges);
    comm.rewind(m);
  }
  phase.next("fake-pin exchange");
  const auto fake_in = comm.all_to_all(fake_out);
  const auto piece_in = comm.all_to_all(piece_out);
  std::vector<FakePinRecord> my_fakes;
  for (const auto& part : fake_in) {
    my_fakes.insert(my_fakes.end(), part.begin(), part.end());
  }
  std::sort(my_fakes.begin(), my_fakes.end(),
            [](const FakePinRecord& p, const FakePinRecord& q) {
              if (p.net != q.net) return p.net < q.net;
              if (p.row != q.row) return p.row < q.row;
              return p.x < q.x;
            });

  // --- local coarse routing + feedthroughs on the sub-circuit -------------
  phase.next("coarse");
  SubCircuit sub = extract_subcircuit(global, rows, rank, my_fakes);
  const Coord global_core_width = global.core_width();
  auto segments = local_segments_from_pieces(piece_in, sub);
  CoarseGrid grid(sub.circuit.num_rows(), global_core_width,
                  router.column_width);
  CoarseOptions coarse_options;
  coarse_options.passes = router.coarse_passes;
  coarse_options.cross_check = router.cross_check;
  CoarseRouter coarse(grid, coarse_options);
  coarse.place_initial(segments);
  Rng coarse_rng = rng.split();
  const std::size_t coarse_flips = coarse.improve(segments, coarse_rng);
  SweepCounts sweeps;
  sweeps.coarse_decisions = static_cast<std::int64_t>(
      segments.size() * static_cast<std::size_t>(router.coarse_passes));
  sweeps.coarse_flips = static_cast<std::int64_t>(coarse_flips);
  if (quality != nullptr) {
    const auto m = comm.mark();
    quality->add_grid(obs::Phase::Coarse, grid, sub.global_row(0),
                      sub.global_channel(0), global.num_rows());
    quality->add_flips(obs::Phase::Coarse, sweeps.coarse_decisions,
                       sweeps.coarse_flips, router.coarse_passes);
    comm.rewind(m);
  }

  phase.next("feedthrough");
  FeedthroughPools pools =
      insert_feedthroughs(sub.circuit, grid, router.feedthrough_width);
  assign_feedthroughs(sub.circuit, pools, grid, segments,
                      router.feedthrough_width);
  if (quality != nullptr) {
    const auto m = comm.mark();
    auto per_row = obs::feedthrough_rows(sub.circuit);
    for (auto& [row, count] : per_row) {
      row = sub.global_row(static_cast<std::uint32_t>(row));
    }
    quality->add_feedthroughs(per_row, global.num_rows());
    comm.rewind(m);
  }

  // --- whole-net connection by net owners (the hybrid's difference) -------
  phase.next("connect");
  // Ship every real terminal (cell pins and feedthrough pins; never fake
  // pins) to the net's owner in global coordinates.
  std::vector<std::vector<TerminalRecord>> term_out(
      static_cast<std::size_t>(size));
  for (std::size_t p = 0; p < sub.circuit.num_pins(); ++p) {
    const PinId pid{static_cast<std::uint32_t>(p)};
    const Pin& pin = sub.circuit.pin(pid);
    if (pin.is_fake()) continue;
    const NetId global_net = sub.global_net[pin.net.index()];
    const int owner = nets.owner[global_net.index()];
    term_out[static_cast<std::size_t>(owner)].push_back(TerminalRecord{
        global_net.value(),
        sub.global_row(
            static_cast<std::uint32_t>(sub.circuit.pin_row(pid).index())),
        sub.circuit.pin_x(pid),
        static_cast<std::uint8_t>(access_from_side(pin.side))});
  }
  const auto term_in = comm.all_to_all(term_out);
  std::vector<TerminalRecord> my_terminals;
  for (const auto& part : term_in) {
    my_terminals.insert(my_terminals.end(), part.begin(), part.end());
  }
  std::sort(my_terminals.begin(), my_terminals.end(),
            [](const TerminalRecord& p, const TerminalRecord& q) {
              if (p.net != q.net) return p.net < q.net;
              if (p.row != q.row) return p.row < q.row;
              return p.x < q.x;
            });

  std::vector<Wire> wires;
  ConnectOptions connect_options;
  {
    std::vector<Terminal> terminals;
    std::size_t i = 0;
    while (i < my_terminals.size()) {
      const std::uint32_t net = my_terminals[i].net;
      terminals.clear();
      for (; i < my_terminals.size() && my_terminals[i].net == net; ++i) {
        terminals.push_back(
            Terminal{my_terminals[i].x, my_terminals[i].row,
                     static_cast<TerminalAccess>(my_terminals[i].access)});
      }
      connect_terminals(NetId{net}, terminals, connect_options, wires);
    }
  }
  if (quality != nullptr) {
    // Owner-connected wires already carry global nets and channels.
    const auto m = comm.mark();
    quality->add_wires(obs::Phase::Connect, wires, global.num_rows() + 1);
    comm.rewind(m);
  }

  // --- switchable optimization, row-block local ----------------------------
  phase.next("switchable");
  // As in row-wise (the hybrid differs only in the connection step): wires
  // return to the owners of the rows they hug, each block optimizes its own
  // switchable segments and exchanges only boundary-channel densities with
  // its neighbours.
  std::vector<std::vector<WireRecord>> wire_out(
      static_cast<std::size_t>(size));
  for (const Wire& wire : wires) {
    const std::size_t owner_row =
        std::min<std::size_t>(wire.row, global.num_rows() - 1);
    wire_out[static_cast<std::size_t>(rows.owner_of_row(owner_row))]
        .push_back(to_record(wire));
  }
  const auto wire_in = comm.all_to_all(wire_out);
  std::vector<WireRecord> my_wire_records;
  for (const auto& part : wire_in) {
    my_wire_records.insert(my_wire_records.end(), part.begin(), part.end());
  }
  std::sort(my_wire_records.begin(), my_wire_records.end(),
            [](const WireRecord& p, const WireRecord& q) {
              if (p.net != q.net) return p.net < q.net;
              if (p.channel != q.channel) return p.channel < q.channel;
              if (p.lo != q.lo) return p.lo < q.lo;
              return p.hi < q.hi;
            });
  std::vector<Wire> my_wires;
  my_wires.reserve(my_wire_records.size());
  for (const WireRecord& record : my_wire_records) {
    my_wires.push_back(from_record(record));
  }

  Rng switch_rng = rng.split();
  const SweepCounts switch_sweeps = optimize_switchable_rowblock(
      comm, my_wires, rows, global.num_rows() + 1, global_core_width, router,
      switch_rng);
  sweeps.switch_decisions = switch_sweeps.switch_decisions;
  sweeps.switch_flips = switch_sweeps.switch_flips;
  if (quality != nullptr) {
    const auto m = comm.mark();
    quality->add_wires(obs::Phase::Switchable, my_wires,
                       global.num_rows() + 1);
    quality->add_flips(obs::Phase::Switchable, sweeps.switch_decisions,
                       sweeps.switch_flips, router.switchable_passes);
    comm.rewind(m);
  }

  // --- gather and report ---------------------------------------------------
  // Close the span before assemble_metrics rewinds its measurement time.
  phase.end();
  std::vector<WireRecord> records;
  records.reserve(my_wires.size());
  for (const Wire& wire : my_wires) records.push_back(to_record(wire));
  return assemble_metrics(comm, records, global.num_rows() + 1,
                          sub.circuit.core_width(),
                          total_rows_height(global),
                          sub.circuit.num_feedthrough_cells(), sweeps,
                          options.keep_wires);
}

}  // namespace ptwgr
