#include "ptwgr/parallel/fake_pins.h"

#include <algorithm>

namespace ptwgr {
namespace {

bool record_less(const FakePinRecord& p, const FakePinRecord& q) {
  if (p.net != q.net) return p.net < q.net;
  if (p.block != q.block) return p.block < q.block;
  if (p.row != q.row) return p.row < q.row;
  return p.x < q.x;
}

}  // namespace

std::vector<FakePinRecord> compute_fake_pins(const SteinerTree& tree,
                                             const RowPartition& rows) {
  std::vector<FakePinRecord> records;
  for (const TreeEdge& e : tree.edges) {
    RoutePoint a = tree.nodes[e.a].at;
    RoutePoint b = tree.nodes[e.b].at;
    if (a.row == b.row) continue;
    if (a.row > b.row) std::swap(a, b);
    const int owner_a = rows.owner_of_row(a.row);
    const int owner_b = rows.owner_of_row(b.row);
    // The vertical leg is anchored at the lower endpoint's x — the same
    // deterministic choice every rank makes, so both sides of each boundary
    // agree on the crossing point without communicating.
    const Coord x = a.x;
    for (int block = owner_a; block < owner_b; ++block) {
      // Block `block`'s fake pin sits on its top halo — the first row of
      // block+1; block+1's sits on its bottom halo — the last row of
      // `block`.  Each block's sub-segment therefore crosses (and charges
      // feedthroughs in) exactly its own rows.
      const auto first_row_of_next =
          static_cast<std::uint32_t>(rows.end_row(block));
      const auto last_row_of_block =
          static_cast<std::uint32_t>(rows.end_row(block) - 1);
      records.push_back(
          FakePinRecord{tree.net.value(), block, first_row_of_next, x});
      records.push_back(
          FakePinRecord{tree.net.value(), block + 1, last_row_of_block, x});
    }
  }
  // Deduplicate (several edges of one net can cross a boundary at one x).
  std::sort(records.begin(), records.end(), record_less);
  records.erase(std::unique(records.begin(), records.end()), records.end());
  return records;
}

std::vector<std::vector<TreePieceRecord>> split_tree_segments(
    const SteinerTree& tree, const RowPartition& rows) {
  std::vector<std::vector<TreePieceRecord>> out(
      static_cast<std::size_t>(rows.num_blocks()));
  for (const TreeEdge& e : tree.edges) {
    RoutePoint a = tree.nodes[e.a].at;
    RoutePoint b = tree.nodes[e.b].at;
    if (a.row == b.row) continue;
    if (a.row > b.row) std::swap(a, b);
    const int owner_a = rows.owner_of_row(a.row);
    const int owner_b = rows.owner_of_row(b.row);

    if (owner_a == owner_b) {
      out[static_cast<std::size_t>(owner_a)].push_back(
          TreePieceRecord{tree.net.value(), a.x, a.row, b.x, b.row});
      continue;
    }

    // Crossing pieces, anchored at the lower endpoint's x (the same
    // convention compute_fake_pins uses).  The first block's piece ends on
    // its top halo (the neighbour's first row), intermediate blocks get
    // pure pass-through pieces between their two halos, and the last block
    // carries the horizontal offset to b.
    const Coord x = a.x;
    for (int block = owner_a; block <= owner_b; ++block) {
      TreePieceRecord piece;
      piece.net = tree.net.value();
      if (block == owner_a) {
        piece.ax = a.x;
        piece.arow = a.row;
      } else {
        piece.ax = x;
        piece.arow = static_cast<std::uint32_t>(rows.first_row(block) - 1);
      }
      if (block == owner_b) {
        piece.bx = b.x;
        piece.brow = b.row;
      } else {
        piece.bx = x;
        piece.brow = static_cast<std::uint32_t>(rows.end_row(block));
      }
      out[static_cast<std::size_t>(block)].push_back(piece);
    }
  }
  return out;
}

std::vector<std::vector<FakePinRecord>> split_by_block(
    std::vector<FakePinRecord> records, const RowPartition& rows) {
  std::vector<std::vector<FakePinRecord>> out(
      static_cast<std::size_t>(rows.num_blocks()));
  for (const FakePinRecord& record : records) {
    out[static_cast<std::size_t>(record.block)].push_back(record);
  }
  return out;
}

}  // namespace ptwgr
