// Row-block sub-circuit extraction (paper §4).
//
// Each rank of the row-wise and hybrid algorithms works on a sub-circuit:
// the block's rows and cells (with their global placements preserved), the
// restriction of every net to the block (pins in the block plus fake pins),
// re-indexed to a self-contained Circuit with local row ids.
//
// Fake pins live on *halo rows*: cell-less rows appended just below and
// above the block (absent for the outermost blocks).  A halo row stands for
// the first row of the neighbouring block, so a sub-segment ending on a
// halo fake pin crosses — and charges feedthrough demand in — every real
// row the original wire crosses, and the wire connecting a halo terminal to
// the block's top/bottom row lands in the shared boundary channel, exactly
// where the paper's Fig. 3 boundary-track interactions happen.
#pragma once

#include <vector>

#include "ptwgr/parallel/records.h"
#include "ptwgr/partition/row_partition.h"

namespace ptwgr {

struct SubCircuit {
  Circuit circuit;
  /// Global row index of the first *real* local row.
  std::size_t first_row = 0;
  /// Halo rows present below / above the real rows.
  bool has_bottom_halo = false;
  bool has_top_halo = false;
  /// Local net id → global net id.
  std::vector<NetId> global_net;

  /// Local index shift caused by the bottom halo.
  std::uint32_t halo_offset() const { return has_bottom_halo ? 1u : 0u; }
  /// Number of real (non-halo) rows.
  std::size_t num_real_rows() const {
    return circuit.num_rows() - (has_bottom_halo ? 1 : 0) -
           (has_top_halo ? 1 : 0);
  }

  /// Global row of a local row (halo rows map to the neighbouring blocks'
  /// adjacent rows, which is exactly what they stand for).
  std::uint32_t global_row(std::uint32_t local_row) const {
    return static_cast<std::uint32_t>(first_row) + local_row - halo_offset();
  }
  /// Global channel of a local channel (same shift).
  std::uint32_t global_channel(std::uint32_t local_channel) const {
    return static_cast<std::uint32_t>(first_row) + local_channel -
           halo_offset();
  }
};

/// Extracts block `block`'s sub-circuit from the global circuit.
/// `fake_pins` must contain exactly this block's records (rows just outside
/// the block, see FakePinRecord); they land on the halo rows.
SubCircuit extract_subcircuit(const Circuit& global, const RowPartition& rows,
                              int block,
                              const std::vector<FakePinRecord>& fake_pins);

}  // namespace ptwgr
