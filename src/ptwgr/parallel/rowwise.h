// Row-wise pin partition parallel global routing (paper §4).
//
// Rows → contiguous blocks, one per rank.  Nets are split at block
// boundaries with fake pins planted where their (parallel-built) Steiner
// trees cross; each rank then runs the complete TWGR pipeline on its
// self-contained sub-circuit.  Cross-rank traffic is minimal — fake-pin
// exchange up front, one boundary-channel density exchange with each
// neighbour before the switchable step, and the final metric gather — which
// is what buys this algorithm the best speedups.  Quality pays: sub-nets are
// connected independently (Fig. 3's extra boundary tracks) and each rank is
// blind to all but its neighbours' channel load.
#pragma once

#include "ptwgr/mp/communicator.h"
#include "ptwgr/parallel/common.h"

namespace ptwgr {

/// The per-rank body.  `global` is the input circuit (read-only; identical
/// on every rank).  Requires comm.size() <= global.num_rows().
ParallelRunOutput route_rowwise(mp::Communicator& comm, const Circuit& global,
                                const ParallelOptions& options);

}  // namespace ptwgr
