#include "ptwgr/parallel/netwise.h"

#include <algorithm>

#include "ptwgr/obs/record.h"
#include "ptwgr/obs/snapshot.h"
#include "ptwgr/route/coarse.h"
#include "ptwgr/route/connect.h"
#include "ptwgr/route/feedthrough.h"
#include "ptwgr/support/log.h"

namespace ptwgr {
namespace {

CoarseSegment segment_from_record(const SegmentRecord& r) {
  CoarseSegment seg;
  seg.net = NetId{r.net};
  seg.a = {r.ax, r.arow};
  seg.b = {r.bx, r.brow};
  seg.vertical_at_a = r.vertical_at_a != 0;
  return seg;
}

SegmentRecord to_segment_record(const CoarseSegment& seg) {
  return SegmentRecord{seg.net.value(), seg.a.x,     seg.a.row,
                       seg.b.x,         seg.b.row,
                       static_cast<std::uint8_t>(seg.vertical_at_a ? 1 : 0)};
}

TerminalAccess access_from_side(PinSide side) {
  switch (side) {
    case PinSide::Top: return TerminalAccess::AboveOnly;
    case PinSide::Bottom: return TerminalAccess::BelowOnly;
    case PinSide::Both: return TerminalAccess::Either;
  }
  return TerminalAccess::Either;
}

}  // namespace

ParallelRunOutput route_netwise(mp::Communicator& comm, const Circuit& global,
                                const ParallelOptions& options) {
  const int rank = comm.rank();
  const int size = comm.size();
  PTWGR_EXPECTS(static_cast<std::size_t>(size) <= global.num_rows());
  const RouterOptions& router = options.router;
  Rng rng(router.seed + std::uint64_t{0x9e3779b97f4a7c15} *
                            static_cast<std::uint64_t>(rank));

  RankPhase phase("partition", comm);
  const RowPartition rows = partition_rows(global, size);
  const NetPartition nets =
      partition_nets(global, size, options.net_partition, &rows);
  const auto& my_nets = nets.nets_of[static_cast<std::size_t>(rank)];

  // Every rank routes against its own full replica of the circuit.
  Circuit replica = global;
  const std::size_t original_pin_count = replica.num_pins();

  // --- step 1: Steiner trees for owned nets -------------------------------
  phase.next("steiner");
  // Quality snapshots: global-coordinate contributions, recording excluded
  // from the modeled clock via mark()/rewind() (see rowwise.cpp).
  obs::QualityCollector* quality = obs::active_quality();
  SteinerOptions steiner_options;
  steiner_options.row_cost = router.steiner_row_cost;
  const auto trees = build_steiner_trees(replica, my_nets, steiner_options);
  auto segments = extract_coarse_segments(trees);
  if (quality != nullptr) {
    const auto m = comm.mark();
    obs::TreeBatch batch;
    for (const SteinerTree& tree : trees) {
      batch.add(tree, router.steiner_row_cost);
    }
    quality->add_trees(batch.per_net_costs, batch.edges,
                       batch.inter_row_edges);
    comm.rewind(m);
  }

  // --- step 2: coarse routing on grid replicas with periodic sync ---------
  phase.next("coarse");
  CoarseGrid grid(replica, router.column_width);
  CoarseOptions coarse_options;
  coarse_options.passes = router.coarse_passes;
  coarse_options.cross_check = router.cross_check;
  CoarseRouter coarse(grid, coarse_options);
  // The synchronizer's baseline must predate the initial placement so that
  // those commitments travel with the first sync.
  GridSynchronizer grid_sync(grid);
  coarse.place_initial(segments);
  // No up-front exchange: each rank starts out seeing only its own demand —
  // the paper's blindness — and learns about peers through the periodic
  // syncs below.  The final sync restores full consistency either way.

  const std::size_t my_decisions =
      segments.size() * static_cast<std::size_t>(router.coarse_passes);
  const std::size_t rounds =
      plan_sync_rounds(comm, my_decisions, options.coarse_sync_period);
  std::size_t rounds_done = 0;
  Rng coarse_rng = rng.split();
  const std::size_t coarse_flips =
      coarse.improve(segments, coarse_rng, [&](std::size_t decisions) {
        if (decisions % options.coarse_sync_period == 0) {
          grid_sync.sync(comm);
          ++rounds_done;
        }
      });
  for (; rounds_done < rounds; ++rounds_done) grid_sync.sync(comm);
  grid_sync.sync(comm);  // final reconciliation: replicas now identical
  SweepCounts sweeps;
  sweeps.coarse_decisions = static_cast<std::int64_t>(my_decisions);
  sweeps.coarse_flips = static_cast<std::int64_t>(coarse_flips);
  if (quality != nullptr) {
    const auto m = comm.mark();
    // Replicas are identical after the final sync, so only rank 0
    // contributes the grid heatmap; flip counts are per-rank work.
    if (rank == 0) {
      quality->add_grid(obs::Phase::Coarse, grid, 0, 0, replica.num_rows());
    }
    quality->add_flips(obs::Phase::Coarse, sweeps.coarse_decisions,
                       sweeps.coarse_flips, router.coarse_passes);
    comm.rewind(m);
  }

  phase.next("feedthrough");
  // --- step 3: feedthrough insertion + owner-side assignment --------------
  // Grids are identical, so every rank inserts the full feedthrough set into
  // its replica deterministically — replicas stay position-consistent
  // without shipping cell shifts.
  FeedthroughPools pools =
      insert_feedthroughs(replica, grid, router.feedthrough_width);

  // Segments travel to the owners of the rows they cross (paper §5: each
  // processor "needs to collect those segments from the other processors").
  std::vector<std::vector<SegmentRecord>> seg_out(
      static_cast<std::size_t>(size));
  for (const CoarseSegment& seg : segments) {
    int prev_owner = -1;
    for (std::uint32_t r = seg.a.row + 1; r < seg.b.row; ++r) {
      const int owner = rows.owner_of_row(r);
      if (owner != prev_owner) {
        seg_out[static_cast<std::size_t>(owner)].push_back(
            to_segment_record(seg));
        prev_owner = owner;
      }
    }
  }
  const auto seg_in = comm.all_to_all(seg_out);
  std::vector<CoarseSegment> to_assign;
  for (const auto& part : seg_in) {
    for (const SegmentRecord& r : part) to_assign.push_back(segment_from_record(r));
  }
  std::sort(to_assign.begin(), to_assign.end(),
            [](const CoarseSegment& p, const CoarseSegment& q) {
              if (p.net != q.net) return p.net < q.net;
              if (p.a.row != q.a.row) return p.a.row < q.a.row;
              if (p.a.x != q.a.x) return p.a.x < q.a.x;
              if (p.b.row != q.b.row) return p.b.row < q.b.row;
              return p.b.x < q.b.x;
            });
  const auto my_row = [&rows, rank](std::size_t row) {
    return rows.owner_of_row(row) == rank;
  };
  const auto terminals = assign_feedthroughs(
      replica, pools, grid, to_assign, router.feedthrough_width, my_row);
  if (quality != nullptr) {
    // Every replica inserted every feedthrough; contribute only own rows so
    // the per-row sums count each cell once.
    const auto m = comm.mark();
    auto per_row = obs::feedthrough_rows(replica);
    per_row.erase(std::remove_if(per_row.begin(), per_row.end(),
                                 [&](const auto& entry) {
                                   return !my_row(entry.first);
                                 }),
                  per_row.end());
    quality->add_feedthroughs(per_row, replica.num_rows());
    comm.rewind(m);
  }

  // Assigned terminals travel back to the nets' owners.
  std::vector<std::vector<TerminalRecord>> term_out(
      static_cast<std::size_t>(size));
  for (const FeedthroughTerminal& t : terminals) {
    term_out[static_cast<std::size_t>(nets.owner[t.net.index()])].push_back(
        TerminalRecord{t.net.value(), t.row, t.x,
                       static_cast<std::uint8_t>(TerminalAccess::Either)});
  }
  const auto term_in = comm.all_to_all(term_out);

  // --- step 4: whole-net connection by the net owner ----------------------
  phase.next("connect");
  std::vector<std::vector<Terminal>> terminals_of(replica.num_nets());
  for (const NetId net : my_nets) {
    for (const PinId pid : replica.net(net).pins) {
      if (pid.index() >= original_pin_count) continue;  // via records instead
      terminals_of[net.index()].push_back(Terminal{
          replica.pin_x(pid),
          static_cast<std::uint32_t>(replica.pin_row(pid).index()),
          access_from_side(replica.pin(pid).side)});
    }
  }
  std::vector<TerminalRecord> ft_records;
  for (const auto& part : term_in) {
    ft_records.insert(ft_records.end(), part.begin(), part.end());
  }
  std::sort(ft_records.begin(), ft_records.end(),
            [](const TerminalRecord& p, const TerminalRecord& q) {
              if (p.net != q.net) return p.net < q.net;
              if (p.row != q.row) return p.row < q.row;
              return p.x < q.x;
            });
  for (const TerminalRecord& r : ft_records) {
    terminals_of[r.net].push_back(
        Terminal{r.x, r.row, static_cast<TerminalAccess>(r.access)});
  }

  std::vector<Wire> wires;
  ConnectOptions connect_options;
  for (const NetId net : my_nets) {
    connect_terminals(net, terminals_of[net.index()], connect_options, wires);
  }
  if (quality != nullptr) {
    const auto m = comm.mark();
    quality->add_wires(obs::Phase::Connect, wires, replica.num_channels());
    comm.rewind(m);
  }

  // --- step 5: switchable optimization with periodic density sync ---------
  phase.next("switchable");
  SwitchableOptimizer optimizer(replica.num_channels(), replica.core_width(),
                                router.switch_bucket_width);
  optimizer.register_wires(wires);
  // One registration exchange: every rank starts from the same *global*
  // snapshot.  This is what makes the blindness costly — between the sparse
  // periodic syncs all ranks act on identical stale densities and move
  // segments toward the same channels simultaneously (paper §5's
  // interference), overshooting in proportion to the rank count.
  sync_switch_densities(comm, optimizer);

  std::size_t switchable_count = 0;
  for (const Wire& w : wires) {
    if (w.switchable) ++switchable_count;
  }
  const std::size_t switch_decisions =
      switchable_count * static_cast<std::size_t>(router.switchable_passes);
  const std::size_t switch_rounds =
      plan_sync_rounds(comm, switch_decisions, options.switch_sync_period);
  std::size_t switch_done = 0;
  SwitchableOptions switch_options;
  switch_options.passes = router.switchable_passes;
  switch_options.bucket_width = router.switch_bucket_width;
  switch_options.cross_check = router.cross_check;
  Rng switch_rng = rng.split();
  const std::size_t switch_flips =
      optimizer.optimize(wires, switch_rng, switch_options,
                         [&](std::size_t decisions) {
                           if (decisions % options.switch_sync_period == 0) {
                             sync_switch_densities(comm, optimizer);
                             ++switch_done;
                           }
                         });
  for (; switch_done < switch_rounds; ++switch_done) {
    sync_switch_densities(comm, optimizer);
  }
  sweeps.switch_decisions = static_cast<std::int64_t>(switch_decisions);
  sweeps.switch_flips = static_cast<std::int64_t>(switch_flips);
  if (quality != nullptr) {
    const auto m = comm.mark();
    quality->add_wires(obs::Phase::Switchable, wires,
                       replica.num_channels());
    quality->add_flips(obs::Phase::Switchable, sweeps.switch_decisions,
                       sweeps.switch_flips, router.switchable_passes);
    comm.rewind(m);
  }

  // --- gather and report ---------------------------------------------------
  // Close the span before assemble_metrics rewinds its measurement time.
  phase.end();
  std::vector<WireRecord> records;
  records.reserve(wires.size());
  for (const Wire& wire : wires) records.push_back(to_record(wire));

  // Every replica inserted every feedthrough; count only the own rows to
  // avoid multiple counting in the global sum.
  std::size_t my_fts = 0;
  for (const Cell& cell : replica.cells()) {
    if (cell.kind == CellKind::Feedthrough && my_row(cell.row.index())) {
      ++my_fts;
    }
  }
  return assemble_metrics(comm, records, replica.num_channels(),
                          replica.core_width(), total_rows_height(replica),
                          my_fts, sweeps, options.keep_wires);
}

}  // namespace ptwgr
