// Contiguous row partitioning (paper §3).
//
// Rows — and with them cells and row-resident pins — are split into
// contiguous blocks, one per processor, because TWGR's computation is local
// to rows and their adjacent channels.  Blocks are balanced by per-row pin
// count, the best static proxy for routing work.
#pragma once

#include <cstddef>
#include <vector>

#include "ptwgr/circuit/circuit.h"

namespace ptwgr {

class RowPartition {
 public:
  /// Block b owns global rows [start(b), start(b+1)).
  RowPartition(std::vector<std::size_t> starts);

  int num_blocks() const { return static_cast<int>(starts_.size()) - 1; }
  std::size_t num_rows() const { return starts_.back(); }

  std::size_t first_row(int block) const;
  /// One past the last row of the block.
  std::size_t end_row(int block) const;
  std::size_t rows_in(int block) const {
    return end_row(block) - first_row(block);
  }

  int owner_of_row(std::size_t row) const;

  /// True if [row_a, row_b] crosses at least one block boundary.
  bool spans_blocks(std::size_t row_a, std::size_t row_b) const {
    return owner_of_row(row_a) != owner_of_row(row_b);
  }

 private:
  std::vector<std::size_t> starts_;  // num_blocks + 1 entries, ascending
};

/// Splits the circuit's rows into `num_blocks` contiguous blocks with
/// near-equal pin counts.  Every block receives at least one row; requires
/// num_blocks <= num_rows.
RowPartition partition_rows(const Circuit& circuit, int num_blocks);

}  // namespace ptwgr
