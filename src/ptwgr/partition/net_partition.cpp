#include "ptwgr/partition/net_partition.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ptwgr/support/check.h"

namespace ptwgr {

std::string to_string(NetPartitionScheme scheme) {
  switch (scheme) {
    case NetPartitionScheme::Center: return "center";
    case NetPartitionScheme::Locus: return "locus";
    case NetPartitionScheme::Density: return "density";
    case NetPartitionScheme::PinNumberWeight: return "pin-number-weight";
  }
  return "?";
}

namespace {

double net_weight(const Circuit& circuit, NetId net,
                  const NetPartitionOptions& options,
                  const RowPartition* rows) {
  const auto& pins = circuit.net(net).pins;
  switch (options.scheme) {
    case NetPartitionScheme::Center: {
      double row_sum = 0.0;
      for (const PinId pid : pins) {
        row_sum += static_cast<double>(circuit.pin_row(pid).index());
      }
      return pins.empty() ? 0.0 : row_sum / static_cast<double>(pins.size());
    }
    case NetPartitionScheme::Locus: {
      Coord min_x = std::numeric_limits<Coord>::max();
      std::uint32_t min_row = std::numeric_limits<std::uint32_t>::max();
      for (const PinId pid : pins) {
        min_x = std::min(min_x, circuit.pin_x(pid));
        min_row = std::min(min_row,
                           static_cast<std::uint32_t>(
                               circuit.pin_row(pid).index()));
      }
      if (pins.empty()) return 0.0;
      // y-major order, x breaks ties within a row band.
      const double span = static_cast<double>(circuit.core_width() + 1);
      return static_cast<double>(min_row) * span + static_cast<double>(min_x);
    }
    case NetPartitionScheme::Density: {
      PTWGR_CHECK_MSG(rows != nullptr,
                      "density net partition requires a row partition");
      std::vector<std::size_t> per_block(
          static_cast<std::size_t>(rows->num_blocks()), 0);
      for (const PinId pid : pins) {
        ++per_block[static_cast<std::size_t>(
            rows->owner_of_row(circuit.pin_row(pid).index()))];
      }
      std::size_t best = 0;
      for (std::size_t b = 1; b < per_block.size(); ++b) {
        if (per_block[b] > per_block[best]) best = b;
      }
      return static_cast<double>(best);
    }
    case NetPartitionScheme::PinNumberWeight: {
      return -std::pow(static_cast<double>(pins.size()),
                       options.pin_weight_exponent);
    }
  }
  return 0.0;
}

/// Load a net contributes toward its rank's quota.  The pin-number-weight
/// scheme uses kᵅ (the Steiner-tree construction cost estimate); the others
/// use the plain pin count, matching the paper's "until the number of pins
/// exceeds the average pin number".
double net_load(const Circuit& circuit, NetId net,
                const NetPartitionOptions& options) {
  const auto k = static_cast<double>(circuit.net(net).pins.size());
  if (options.scheme == NetPartitionScheme::PinNumberWeight) {
    return std::pow(k, options.pin_weight_exponent);
  }
  return k;
}

}  // namespace

NetPartition partition_nets(const Circuit& circuit, int num_ranks,
                            const NetPartitionOptions& options,
                            const RowPartition* rows) {
  PTWGR_EXPECTS(num_ranks >= 1);
  const std::size_t num_nets = circuit.num_nets();

  NetPartition out;
  out.owner.assign(num_nets, 0);
  out.nets_of.assign(static_cast<std::size_t>(num_ranks), {});
  out.pin_load.assign(static_cast<std::size_t>(num_ranks), 0.0);

  // Sort nets by weight (stable on net id for determinism).
  std::vector<std::uint32_t> order(num_nets);
  std::vector<double> weight(num_nets);
  for (std::uint32_t n = 0; n < num_nets; ++n) {
    order[n] = n;
    weight[n] = net_weight(circuit, NetId{n}, options, rows);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return weight[a] < weight[b];
                   });

  const auto assign = [&](NetId net, int rank) {
    out.owner[net.index()] = rank;
    out.nets_of[static_cast<std::size_t>(rank)].push_back(net);
    out.pin_load[static_cast<std::size_t>(rank)] +=
        static_cast<double>(circuit.net(net).pins.size());
  };

  // Giant nets first, round-robin (pin-number-weight scheme only).
  std::vector<bool> placed(num_nets, false);
  double load_total = 0.0;
  if (options.scheme == NetPartitionScheme::PinNumberWeight) {
    int next_rank = 0;
    for (const std::uint32_t n : order) {  // order is largest-first here
      const NetId net{n};
      if (circuit.net(net).pins.size() < options.giant_net_threshold) break;
      assign(net, next_rank);
      placed[n] = true;
      next_rank = (next_rank + 1) % num_ranks;
    }
  }
  for (std::uint32_t n = 0; n < num_nets; ++n) {
    if (!placed[n]) load_total += net_load(circuit, NetId{n}, options);
  }

  // Quota fill in weight order.
  int rank = 0;
  double filled = 0.0;
  const double quota = load_total / static_cast<double>(num_ranks);
  for (const std::uint32_t n : order) {
    if (placed[n]) continue;
    const NetId net{n};
    if (rank < num_ranks - 1 &&
        filled + net_load(circuit, net, options) / 2.0 >
            quota * static_cast<double>(rank + 1)) {
      ++rank;
    }
    assign(net, rank);
    filled += net_load(circuit, net, options);
  }
  return out;
}

}  // namespace ptwgr
