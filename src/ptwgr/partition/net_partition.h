// Net partitioning heuristics (paper §5).
//
// All four schemes share the paper's generic structure: give each net a
// weight, sort the weight array, then assign nets in that order to one
// processor until its load quota fills, move to the next.
//
//   * center — weight is the y (row) coordinate of the net's pin centroid;
//     vertically close nets share channels, so clustering them per rank
//     maximizes runtime locality.
//   * locus  — (after Rose's LocusRoute) weight orders nets by their
//     bounding box's lower-left corner, y-major with x breaking ties.
//   * density — a net weighs the index of the row block holding most of its
//     pins, clustering nets with the rows that own them.
//   * pin-number-weight — weight −kᵅ (k = pin count, α > 0): large nets
//     schedule first and count as kᵅ toward the quota, so a giant clock net
//     reserves real capacity; nets above the giant threshold are dealt
//     round-robin so they never pile onto one rank (the paper's AVQ-LARGE
//     fix, §5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ptwgr/circuit/circuit.h"
#include "ptwgr/partition/row_partition.h"

namespace ptwgr {

enum class NetPartitionScheme : std::uint8_t {
  Center = 0,
  Locus = 1,
  Density = 2,
  PinNumberWeight = 3,
};

/// Scheme name as used in benchmark output.
std::string to_string(NetPartitionScheme scheme);

struct NetPartitionOptions {
  NetPartitionScheme scheme = NetPartitionScheme::PinNumberWeight;
  /// α in the pin-number-weight scheme's kᵅ load estimate.
  double pin_weight_exponent = 1.6;
  /// Nets with at least this many pins are dealt round-robin
  /// (pin-number-weight scheme only).
  std::size_t giant_net_threshold = 100;
};

struct NetPartition {
  /// Owning rank per net.
  std::vector<int> owner;
  /// Nets per rank, in assignment order.
  std::vector<std::vector<NetId>> nets_of;

  /// Pins per rank (load balance diagnostics).
  std::vector<double> pin_load;
};

/// Partitions every net of `circuit` across `num_ranks` ranks.  The Density
/// scheme requires `rows`; other schemes ignore it.  Deterministic.
NetPartition partition_nets(const Circuit& circuit, int num_ranks,
                            const NetPartitionOptions& options,
                            const RowPartition* rows = nullptr);

}  // namespace ptwgr
