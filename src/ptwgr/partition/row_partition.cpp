#include "ptwgr/partition/row_partition.h"

#include <algorithm>

#include "ptwgr/support/check.h"

namespace ptwgr {

RowPartition::RowPartition(std::vector<std::size_t> starts)
    : starts_(std::move(starts)) {
  PTWGR_EXPECTS(starts_.size() >= 2);
  PTWGR_EXPECTS(starts_.front() == 0);
  for (std::size_t i = 1; i < starts_.size(); ++i) {
    PTWGR_EXPECTS(starts_[i - 1] < starts_[i]);
  }
}

std::size_t RowPartition::first_row(int block) const {
  PTWGR_EXPECTS(block >= 0 && block < num_blocks());
  return starts_[static_cast<std::size_t>(block)];
}

std::size_t RowPartition::end_row(int block) const {
  PTWGR_EXPECTS(block >= 0 && block < num_blocks());
  return starts_[static_cast<std::size_t>(block) + 1];
}

int RowPartition::owner_of_row(std::size_t row) const {
  PTWGR_EXPECTS(row < num_rows());
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), row);
  return static_cast<int>(it - starts_.begin()) - 1;
}

RowPartition partition_rows(const Circuit& circuit, int num_blocks) {
  const std::size_t num_rows = circuit.num_rows();
  PTWGR_EXPECTS(num_blocks >= 1);
  PTWGR_EXPECTS(static_cast<std::size_t>(num_blocks) <= num_rows);

  // Per-row pin counts (cell pins; fake pins are transient).
  std::vector<std::size_t> row_load(num_rows, 1);  // +1 keeps empty rows sane
  for (std::size_t p = 0; p < circuit.num_pins(); ++p) {
    const PinId pid{static_cast<std::uint32_t>(p)};
    ++row_load[circuit.pin_row(pid).index()];
  }
  std::size_t total = 0;
  for (const std::size_t l : row_load) total += l;

  // Greedy sweep: close block b once its cumulative load reaches the b-th
  // quantile, leaving enough rows for the remaining blocks.
  std::vector<std::size_t> starts{0};
  std::size_t cumulative = 0;
  std::size_t row = 0;
  for (int b = 0; b < num_blocks - 1; ++b) {
    const std::size_t target =
        (total * static_cast<std::size_t>(b + 1)) /
        static_cast<std::size_t>(num_blocks);
    const std::size_t rows_remaining_for_others =
        static_cast<std::size_t>(num_blocks - 1 - b);
    const std::size_t max_end = num_rows - rows_remaining_for_others;
    // Block must take at least one row.
    do {
      cumulative += row_load[row];
      ++row;
    } while (row < max_end && cumulative < target);
    starts.push_back(row);
  }
  starts.push_back(num_rows);
  return RowPartition(std::move(starts));
}

}  // namespace ptwgr
