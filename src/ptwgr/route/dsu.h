// Disjoint-set union (union-find) with path halving and union by size.
// Used by Kruskal-style tree construction and by connectivity checks in the
// routing verifier.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "ptwgr/support/check.h"

namespace ptwgr {

class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n)
      : parent_(n), size_(n, 1), num_sets_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t find(std::size_t x) {
    PTWGR_EXPECTS(x < parent_.size());
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of a and b; returns false if already joined.
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --num_sets_;
    return true;
  }

  bool connected(std::size_t a, std::size_t b) { return find(a) == find(b); }
  std::size_t num_sets() const { return num_sets_; }
  std::size_t set_size(std::size_t x) { return size_[find(x)]; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t num_sets_;
};

}  // namespace ptwgr
