// Coarse global routing (TWGR step 2).
//
// Every inter-row Steiner segment is routed as a one-bend L.  The vertical
// leg may sit at either endpoint's x; the choice determines (a) which grid
// columns the crossed rows need feedthroughs in and (b) which channel the
// horizontal leg loads.  Following the paper, segments are first placed with
// a default orientation and then improved in *random order* — a segment is
// picked, its two orientations are costed against the live demand maps, and
// the cheaper one is committed.  Randomization removes the order dependence
// the paper calls out; the improvement sweeps make the final demand maps
// insensitive to the initial orientation.
#pragma once

#include <functional>
#include <vector>

#include "ptwgr/route/grid.h"
#include "ptwgr/route/steiner.h"
#include "ptwgr/support/rng.h"

namespace ptwgr {

/// One inter-row segment with its current L orientation.  Normalized so that
/// a.row < b.row.
struct CoarseSegment {
  NetId net;
  RoutePoint a;
  RoutePoint b;
  /// true: vertical leg at a.x, horizontal leg along row b (channel b.row);
  /// false: vertical leg at b.x, horizontal leg along row a (channel a.row+1).
  bool vertical_at_a = true;
};

/// Pulls the inter-row edges out of a set of Steiner trees, normalized.
std::vector<CoarseSegment> extract_coarse_segments(
    const std::vector<SteinerTree>& trees);

struct CoarseOptions {
  /// Random-order improvement sweeps after initial placement.
  int passes = 2;
  /// Weight of feedthrough congestion (existing demand at the crossing).
  double ft_congestion_weight = 4.0;
  /// Weight of channel congestion along the horizontal leg.
  double chan_congestion_weight = 1.0;
  /// Weight of the peak channel usage along the horizontal leg.
  double chan_peak_weight = 2.0;
  /// Debug: re-derive every flip decision with the naive remove → evaluate →
  /// re-add scan and PTWGR_CHECK that it matches the incremental one.
  bool cross_check = false;
};

/// Stateful coarse router bound to a demand grid.  The grid may be shared
/// with other work (the parallel algorithms route disjoint segment sets
/// against replicated grids and synchronize externally).
class CoarseRouter {
 public:
  CoarseRouter(CoarseGrid& grid, CoarseOptions options);

  /// Commits each segment with its current orientation (demand +1).
  void place_initial(const std::vector<CoarseSegment>& segments);

  /// Random-order improvement sweeps over `segments`, flipping orientations
  /// in place.  `on_progress`, when set, fires after every segment decision
  /// with the number of decisions made so far — the hook the net-wise
  /// algorithm uses to synchronize grid replicas periodically.
  /// Returns the number of flips applied.
  std::size_t improve(
      std::vector<CoarseSegment>& segments, Rng& rng,
      const std::function<void(std::size_t)>& on_progress = {});

  /// Cost of placing `seg` with the given orientation against current demand
  /// (the segment itself must not be committed).  Exposed for tests.
  double placement_cost(const CoarseSegment& seg, bool vertical_at_a) const;

  /// Adds (+1) or removes (-1) a segment's demand contributions.
  void commit(const CoarseSegment& seg, bool vertical_at_a,
              std::int32_t direction);

  const CoarseGrid& grid() const { return *grid_; }

 private:
  struct Footprint {
    std::size_t vertical_col;
    std::size_t channel;
    std::size_t col_lo, col_hi;  // horizontal leg span
  };
  Footprint footprint(const CoarseSegment& seg, bool vertical_at_a) const;

  /// Shared cost form: both the incremental and the naive evaluation reduce
  /// to these three integer aggregates, multiplied by the weights in the same
  /// order — so the two paths produce bit-identical doubles.
  double cost_of(std::int64_t ft_sum, std::int64_t use_sum,
                 std::int64_t use_max) const;

  /// Would flipping `seg`'s orientation reduce its placement cost?  Pure
  /// delta evaluation: queries only the columns where the two footprints
  /// differ and subtracts the segment's own uniform +1 contribution
  /// arithmetically instead of removing it from the grid (DESIGN.md §11).
  bool flip_reduces_cost(const CoarseSegment& seg) const;

  /// The pre-incremental decision procedure (remove → cost both → re-add),
  /// kept as the cross_check reference.  Mutates the grid transiently but is
  /// net-zero on it.
  bool naive_flip_reduces_cost(const CoarseSegment& seg);

  CoarseGrid* grid_;
  CoarseOptions options_;
};

}  // namespace ptwgr
