#include "ptwgr/route/coarse.h"

#include <algorithm>

namespace ptwgr {

std::vector<CoarseSegment> extract_coarse_segments(
    const std::vector<SteinerTree>& trees) {
  std::vector<CoarseSegment> segments;
  for (const SteinerTree& tree : trees) {
    for (const TreeEdge& e : tree.edges) {
      const RoutePoint& pa = tree.nodes[e.a].at;
      const RoutePoint& pb = tree.nodes[e.b].at;
      if (pa.row == pb.row) continue;
      CoarseSegment seg;
      seg.net = tree.net;
      if (pa.row < pb.row) {
        seg.a = pa;
        seg.b = pb;
      } else {
        seg.a = pb;
        seg.b = pa;
      }
      segments.push_back(seg);
    }
  }
  return segments;
}

CoarseRouter::CoarseRouter(CoarseGrid& grid, CoarseOptions options)
    : grid_(&grid), options_(options) {}

CoarseRouter::Footprint CoarseRouter::footprint(const CoarseSegment& seg,
                                                bool vertical_at_a) const {
  PTWGR_EXPECTS(seg.a.row < seg.b.row);
  Footprint fp;
  const Coord xv = vertical_at_a ? seg.a.x : seg.b.x;
  fp.vertical_col = grid_->column_of(xv);
  // Vertical at a ⇒ horizontal leg runs along row b, reached from below:
  // channel index b.row.  Vertical at b ⇒ horizontal leg along row a,
  // leaving upward: channel index a.row + 1.
  fp.channel = vertical_at_a ? seg.b.row : seg.a.row + 1;
  const std::size_t ca = grid_->column_of(seg.a.x);
  const std::size_t cb = grid_->column_of(seg.b.x);
  fp.col_lo = std::min(ca, cb);
  fp.col_hi = std::max(ca, cb);
  return fp;
}

double CoarseRouter::cost_of(std::int64_t ft_sum, std::int64_t use_sum,
                             std::int64_t use_max) const {
  return options_.ft_congestion_weight * static_cast<double>(ft_sum) +
         options_.chan_congestion_weight * static_cast<double>(use_sum) +
         options_.chan_peak_weight * static_cast<double>(use_max);
}

double CoarseRouter::placement_cost(const CoarseSegment& seg,
                                    bool vertical_at_a) const {
  const Footprint fp = footprint(seg, vertical_at_a);
  // Feedthrough congestion in every row the vertical leg crosses.  The
  // *count* of feedthroughs is orientation-independent (same rows crossed
  // either way); what the choice controls is where the demand piles up.
  const std::int64_t ft =
      grid_->feedthrough_span_sum(seg.a.row + 1, seg.b.row, fp.vertical_col);
  // Channel congestion along the horizontal leg.
  const std::int64_t use_sum =
      grid_->channel_use_sum(fp.channel, fp.col_lo, fp.col_hi);
  const std::int64_t use_max =
      grid_->max_channel_use(fp.channel, fp.col_lo, fp.col_hi);
  return cost_of(ft, use_sum, use_max);
}

void CoarseRouter::commit(const CoarseSegment& seg, bool vertical_at_a,
                          std::int32_t direction) {
  PTWGR_EXPECTS(direction == 1 || direction == -1);
  const Footprint fp = footprint(seg, vertical_at_a);
  for (std::uint32_t r = seg.a.row + 1; r < seg.b.row; ++r) {
    grid_->add_feedthrough_demand(r, fp.vertical_col, direction);
  }
  if (fp.col_lo <= fp.col_hi) {
    grid_->add_channel_use(fp.channel, fp.col_lo, fp.col_hi, direction);
  }
}

void CoarseRouter::place_initial(const std::vector<CoarseSegment>& segments) {
  for (const CoarseSegment& seg : segments) {
    commit(seg, seg.vertical_at_a, +1);
  }
}

bool CoarseRouter::flip_reduces_cost(const CoarseSegment& seg) const {
  const Footprint cur = footprint(seg, seg.vertical_at_a);
  const Footprint alt = footprint(seg, !seg.vertical_at_a);
  const auto rows_crossed =
      static_cast<std::int64_t>(seg.b.row - seg.a.row) - 1;
  const auto span_cols = static_cast<std::int64_t>(cur.col_hi - cur.col_lo) + 1;

  // Removed-state aggregates, derived arithmetically: the committed segment
  // contributes exactly +1 to every slot of its own footprint, so its removal
  // lowers the span max by 1, the span sum by the span length, and the
  // feedthrough sum by the number of rows crossed.  Slots outside the current
  // footprint are unaffected.
  const std::int64_t keep_ft =
      grid_->feedthrough_span_sum(seg.a.row + 1, seg.b.row, cur.vertical_col) -
      rows_crossed;
  const std::int64_t keep_sum =
      grid_->channel_use_sum(cur.channel, cur.col_lo, cur.col_hi) - span_cols;
  const std::int64_t keep_max =
      grid_->max_channel_use(cur.channel, cur.col_lo, cur.col_hi) - 1;

  std::int64_t flip_ft =
      grid_->feedthrough_span_sum(seg.a.row + 1, seg.b.row, alt.vertical_col);
  if (alt.vertical_col == cur.vertical_col) flip_ft -= rows_crossed;
  std::int64_t flip_sum;
  std::int64_t flip_max;
  if (alt.channel == cur.channel) {
    // Adjacent rows: both orientations load the same channel over the same
    // span, so the channel terms cancel either way.
    flip_sum = keep_sum;
    flip_max = keep_max;
  } else {
    flip_sum = grid_->channel_use_sum(alt.channel, alt.col_lo, alt.col_hi);
    flip_max = grid_->max_channel_use(alt.channel, alt.col_lo, alt.col_hi);
  }

  return cost_of(flip_ft, flip_sum, flip_max) <
         cost_of(keep_ft, keep_sum, keep_max);
}

bool CoarseRouter::naive_flip_reduces_cost(const CoarseSegment& seg) {
  commit(seg, seg.vertical_at_a, -1);
  const double keep = placement_cost(seg, seg.vertical_at_a);
  const double flip = placement_cost(seg, !seg.vertical_at_a);
  commit(seg, seg.vertical_at_a, +1);
  return flip < keep;
}

std::size_t CoarseRouter::improve(
    std::vector<CoarseSegment>& segments, Rng& rng,
    const std::function<void(std::size_t)>& on_progress) {
  std::size_t flips = 0;
  std::size_t decisions = 0;

  std::vector<std::size_t> order(segments.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int pass = 0; pass < options_.passes; ++pass) {
    // Random segment visitation order — the paper's mechanism for removing
    // processing-order dependence.
    rng.shuffle(order);
    for (const std::size_t idx : order) {
      CoarseSegment& seg = segments[idx];
      const bool flip = flip_reduces_cost(seg);
      if (options_.cross_check) {
        PTWGR_CHECK(naive_flip_reduces_cost(seg) == flip);
      }
      if (flip) {
        commit(seg, seg.vertical_at_a, -1);
        seg.vertical_at_a = !seg.vertical_at_a;
        commit(seg, seg.vertical_at_a, +1);
        ++flips;
      }
      ++decisions;
      if (on_progress) on_progress(decisions);
    }
  }
  return flips;
}

}  // namespace ptwgr
