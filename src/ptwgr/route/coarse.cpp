#include "ptwgr/route/coarse.h"

#include <algorithm>

namespace ptwgr {

std::vector<CoarseSegment> extract_coarse_segments(
    const std::vector<SteinerTree>& trees) {
  std::vector<CoarseSegment> segments;
  for (const SteinerTree& tree : trees) {
    for (const TreeEdge& e : tree.edges) {
      const RoutePoint& pa = tree.nodes[e.a].at;
      const RoutePoint& pb = tree.nodes[e.b].at;
      if (pa.row == pb.row) continue;
      CoarseSegment seg;
      seg.net = tree.net;
      if (pa.row < pb.row) {
        seg.a = pa;
        seg.b = pb;
      } else {
        seg.a = pb;
        seg.b = pa;
      }
      segments.push_back(seg);
    }
  }
  return segments;
}

CoarseRouter::CoarseRouter(CoarseGrid& grid, CoarseOptions options)
    : grid_(&grid), options_(options) {}

CoarseRouter::Footprint CoarseRouter::footprint(const CoarseSegment& seg,
                                                bool vertical_at_a) const {
  PTWGR_EXPECTS(seg.a.row < seg.b.row);
  Footprint fp;
  const Coord xv = vertical_at_a ? seg.a.x : seg.b.x;
  fp.vertical_col = grid_->column_of(xv);
  // Vertical at a ⇒ horizontal leg runs along row b, reached from below:
  // channel index b.row.  Vertical at b ⇒ horizontal leg along row a,
  // leaving upward: channel index a.row + 1.
  fp.channel = vertical_at_a ? seg.b.row : seg.a.row + 1;
  const std::size_t ca = grid_->column_of(seg.a.x);
  const std::size_t cb = grid_->column_of(seg.b.x);
  fp.col_lo = std::min(ca, cb);
  fp.col_hi = std::max(ca, cb);
  return fp;
}

double CoarseRouter::placement_cost(const CoarseSegment& seg,
                                    bool vertical_at_a) const {
  const Footprint fp = footprint(seg, vertical_at_a);
  double cost = 0.0;
  // Feedthrough congestion in every row the vertical leg crosses.  The
  // *count* of feedthroughs is orientation-independent (same rows crossed
  // either way); what the choice controls is where the demand piles up.
  for (std::uint32_t r = seg.a.row + 1; r < seg.b.row; ++r) {
    cost += options_.ft_congestion_weight *
            static_cast<double>(grid_->feedthrough_demand(r, fp.vertical_col));
  }
  // Channel congestion along the horizontal leg.
  cost += options_.chan_congestion_weight *
          static_cast<double>(
              grid_->channel_use_sum(fp.channel, fp.col_lo, fp.col_hi));
  cost += options_.chan_peak_weight *
          static_cast<double>(
              grid_->max_channel_use(fp.channel, fp.col_lo, fp.col_hi));
  return cost;
}

void CoarseRouter::commit(const CoarseSegment& seg, bool vertical_at_a,
                          std::int32_t direction) {
  PTWGR_EXPECTS(direction == 1 || direction == -1);
  const Footprint fp = footprint(seg, vertical_at_a);
  for (std::uint32_t r = seg.a.row + 1; r < seg.b.row; ++r) {
    grid_->add_feedthrough_demand(r, fp.vertical_col, direction);
  }
  if (fp.col_lo <= fp.col_hi) {
    grid_->add_channel_use(fp.channel, fp.col_lo, fp.col_hi, direction);
  }
}

void CoarseRouter::place_initial(const std::vector<CoarseSegment>& segments) {
  for (const CoarseSegment& seg : segments) {
    commit(seg, seg.vertical_at_a, +1);
  }
}

std::size_t CoarseRouter::improve(
    std::vector<CoarseSegment>& segments, Rng& rng,
    const std::function<void(std::size_t)>& on_progress) {
  std::size_t flips = 0;
  std::size_t decisions = 0;

  std::vector<std::size_t> order(segments.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int pass = 0; pass < options_.passes; ++pass) {
    // Random segment visitation order — the paper's mechanism for removing
    // processing-order dependence.
    rng.shuffle(order);
    for (const std::size_t idx : order) {
      CoarseSegment& seg = segments[idx];
      commit(seg, seg.vertical_at_a, -1);
      const double keep = placement_cost(seg, seg.vertical_at_a);
      const double flip = placement_cost(seg, !seg.vertical_at_a);
      if (flip < keep) {
        seg.vertical_at_a = !seg.vertical_at_a;
        ++flips;
      }
      commit(seg, seg.vertical_at_a, +1);
      ++decisions;
      if (on_progress) on_progress(decisions);
    }
  }
  return flips;
}

}  // namespace ptwgr
