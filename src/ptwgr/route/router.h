// The serial TimberWolfSC-style global router (TWGR): the five-step pipeline
// of paper §2, and the baseline every parallel algorithm is measured against.
//
//   1. approximate Steiner trees (steiner.h)
//   2. coarse global routing — L orientation per inter-row segment (coarse.h)
//   3. feedthrough insertion + assignment (feedthrough.h)
//   4. net connection via MST over pins + feedthroughs (connect.h)
//   5. switchable-segment channel optimization (switchable.h)
#pragma once

#include <cstdint>

#include "ptwgr/circuit/circuit.h"
#include "ptwgr/route/metrics.h"
#include "ptwgr/route/wire.h"

namespace ptwgr {

struct RouterOptions {
  std::uint64_t seed = 1;
  /// Coarse grid column width (layout units).
  Coord column_width = 32;
  /// Width of an inserted feedthrough cell.
  Coord feedthrough_width = 3;
  /// Random-order improvement sweeps in the coarse step.
  int coarse_passes = 2;
  /// Random-order flip passes in the switchable step.
  int switchable_passes = 2;
  /// Vertical cost per row in the Steiner metric.  Row crossings cost
  /// feedthroughs, so the tree metric prices them well above a horizontal
  /// unit; bench/ablation_steiner sweeps this.
  std::int64_t steiner_row_cost = 128;
  /// Density-profile bucket width for the switchable step.  Small buckets
  /// keep the bucketed density estimate faithful to the exact interval
  /// density the metrics report.
  Coord switch_bucket_width = 4;
  /// Debug: run the coarse and switchable flip sweeps with naive
  /// remove → evaluate → re-add decisions in parallel with the incremental
  /// ones and PTWGR_CHECK they agree (slow; test/bench use only).
  bool cross_check = false;
};

/// Per-step wall-clock seconds (paper-style runtime breakdowns).
struct StepTimings {
  double steiner = 0.0;
  double coarse = 0.0;
  double feedthrough = 0.0;
  double connect = 0.0;
  double switchable = 0.0;

  double total() const {
    return steiner + coarse + feedthrough + connect + switchable;
  }
};

struct RoutingResult {
  Circuit circuit;  ///< input circuit with feedthrough cells inserted
  std::vector<Wire> wires;
  RoutingMetrics metrics;
  StepTimings timings;
};

/// Routes `circuit` (taken by value: feedthrough insertion mutates it).
/// Deterministic in options.seed.
RoutingResult route_serial(Circuit circuit, const RouterOptions& options = {});

}  // namespace ptwgr
