// Net connection (TWGR step 4).
//
// With feedthroughs assigned, every net's terminals — regular pins, fake
// pins, and feedthrough pins — are connected by an MST over the complete
// graph with a vertical cost high enough that edges prefer same-row and
// adjacent-row hops (the feedthrough pins guarantee adjacent-row coverage
// wherever the net crosses rows).  Each MST edge becomes one or more
// horizontal channel wires; same-row edges whose endpoints both allow both
// channels become *switchable* wires for step 5.
#pragma once

#include <vector>

#include "ptwgr/circuit/circuit.h"
#include "ptwgr/route/wire.h"

namespace ptwgr {

struct ConnectOptions {
  /// Vertical cost per row in the connection MST metric.  Must exceed any
  /// horizontal distance so minimal-row-hop trees win; the default is far
  /// above any realistic core width.
  std::int64_t row_cost = 1 << 20;
};

/// Which channel(s) a terminal can be reached from.  Pins with Top/Bottom
/// sides are single-channel; electrically equivalent pins, fake pins, and
/// feedthrough pins reach both channels of their row.
enum class TerminalAccess : std::uint8_t { AboveOnly, BelowOnly, Either };

/// A net terminal in the global coordinate frame.  Trivially copyable so the
/// parallel algorithms can ship terminal lists between ranks.
struct Terminal {
  Coord x = 0;
  std::uint32_t row = 0;
  TerminalAccess access = TerminalAccess::Either;
};

/// Deterministic initial channel for a switchable wire hugging `row`.  The
/// connection step has no congestion knowledge, so the choice is an
/// arbitrary-but-stable hash of (net, row) — exactly the state TWGR step 5
/// starts from.  Every replica must compute the same answer or the parallel
/// algorithms' density profiles desynchronize.
inline std::uint32_t initial_switchable_channel(NetId net, std::uint32_t row) {
  return ((net.value() + row) & 1u) ? row + 1 : row;
}

/// Connects a terminal list with an MST and appends the resulting channel
/// wires.  This is the core of step 4; the Circuit overloads below derive
/// the terminals from pins.
void connect_terminals(NetId net, const std::vector<Terminal>& terminals,
                       const ConnectOptions& options, std::vector<Wire>& wires);

/// Connects one net; appends its wires to `wires`.
void connect_net(const Circuit& circuit, NetId net,
                 const ConnectOptions& options, std::vector<Wire>& wires);

/// Connects a subset of nets (the parallel algorithms connect only owned
/// nets / sub-nets).
std::vector<Wire> connect_nets(const Circuit& circuit,
                               const std::vector<NetId>& nets,
                               const ConnectOptions& options = {});

/// Connects every net.
std::vector<Wire> connect_all_nets(const Circuit& circuit,
                                   const ConnectOptions& options = {});

}  // namespace ptwgr
