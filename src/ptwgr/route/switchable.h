// Switchable net segment optimization (TWGR step 5).
//
// A switchable wire may ride the channel above or below its row.  Following
// the paper, the optimizer visits switchable wires in *random order* and
// flips a wire to the opposite channel when that lowers the local channel
// density, iterating for a fixed number of passes.  Density is tracked in
// per-channel bucketed profiles; the profiles expose delta export/import so
// the net-wise parallel algorithm can periodically reconcile replicas
// (paper §5: without it, "all processors could assign the same switchable
// net segments to the same channel").
#pragma once

#include <functional>
#include <vector>

#include "ptwgr/route/wire.h"
#include "ptwgr/support/interval.h"
#include "ptwgr/support/rng.h"

namespace ptwgr {

struct SwitchableOptions {
  int passes = 2;
  Coord bucket_width = 4;
  /// Debug: re-derive every flip decision with the naive remove → full-scan →
  /// re-add evaluation and PTWGR_CHECK that it matches the incremental one.
  bool cross_check = false;
};

class SwitchableOptimizer {
 public:
  /// Profiles cover x ∈ [0, core_width) for `num_channels` channels.
  SwitchableOptimizer(std::size_t num_channels, Coord core_width,
                      Coord bucket_width);

  /// Registers wires at their current channels (call once before optimize).
  void register_wires(const std::vector<Wire>& wires);

  /// Random-order flip passes over the switchable wires in `wires`,
  /// updating their channel in place.  `on_progress` fires after each
  /// decision with the running decision count (net-wise sync hook).
  /// Returns the number of flips.
  std::size_t optimize(std::vector<Wire>& wires, Rng& rng,
                       const SwitchableOptions& options,
                       const std::function<void(std::size_t)>& on_progress =
                           {});

  /// Peak density currently tracked for a channel.
  std::int64_t channel_peak(std::size_t channel) const;

  // --- replica synchronization -------------------------------------------
  /// Flat (channel-major) per-bucket deltas accumulated since the last call;
  /// resets the accumulator.
  std::vector<std::int32_t> take_pending_deltas();
  /// Applies another replica's deltas (does not re-enter the accumulator).
  void apply_external_deltas(const std::vector<std::int32_t>& deltas);
  std::size_t delta_state_size() const {
    return profiles_.size() * buckets_per_channel_;
  }

 private:
  void apply(const Wire& wire, std::int64_t direction);
  /// Peak density over the wire's span in `channel`.
  std::int64_t local_peak(std::size_t channel, const Wire& wire) const;
  /// Pre-incremental decision reference for cross_check: removes the wire,
  /// recomputes every aggregate by scanning raw bucket counts, re-adds it.
  /// Net-zero on the profiles and the pending-delta accumulator.
  bool naive_flip_improves(const Wire& wire, std::uint32_t other);

  std::vector<DensityProfile> profiles_;
  std::vector<std::int32_t> pending_;
  std::size_t buckets_per_channel_;
};

}  // namespace ptwgr
