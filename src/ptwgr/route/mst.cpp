#include "ptwgr/route/mst.h"

#include <limits>

#include "ptwgr/support/check.h"

namespace ptwgr {

std::vector<TreeEdge> minimum_spanning_tree(
    const std::vector<RoutePoint>& points, std::int64_t row_cost) {
  const std::size_t n = points.size();
  std::vector<TreeEdge> edges;
  if (n <= 1) return edges;
  edges.reserve(n - 1);

  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> best(n, kInf);
  std::vector<std::uint32_t> best_from(n, 0);
  std::vector<bool> in_tree(n, false);

  // Grow from point 0.
  in_tree[0] = true;
  for (std::size_t j = 1; j < n; ++j) {
    best[j] = route_distance(points[0], points[j], row_cost);
    best_from[j] = 0;
  }

  for (std::size_t step = 1; step < n; ++step) {
    // Cheapest frontier point; ties break on lower index, so the tree is
    // deterministic for a fixed point order.
    std::size_t pick = n;
    std::int64_t pick_cost = kInf;
    for (std::size_t j = 0; j < n; ++j) {
      if (!in_tree[j] && best[j] < pick_cost) {
        pick = j;
        pick_cost = best[j];
      }
    }
    PTWGR_CHECK(pick < n);
    in_tree[pick] = true;
    edges.push_back(TreeEdge{best_from[pick], static_cast<std::uint32_t>(pick)});

    for (std::size_t j = 0; j < n; ++j) {
      if (in_tree[j]) continue;
      const std::int64_t d = route_distance(points[pick], points[j], row_cost);
      if (d < best[j]) {
        best[j] = d;
        best_from[j] = static_cast<std::uint32_t>(pick);
      }
    }
  }
  return edges;
}

std::int64_t tree_length(const std::vector<RoutePoint>& points,
                         const std::vector<TreeEdge>& edges,
                         std::int64_t row_cost) {
  std::int64_t total = 0;
  for (const TreeEdge& e : edges) {
    total += route_distance(points[e.a], points[e.b], row_cost);
  }
  return total;
}

}  // namespace ptwgr
