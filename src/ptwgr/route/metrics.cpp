#include "ptwgr/route/metrics.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "ptwgr/route/dsu.h"
#include "ptwgr/support/interval.h"

namespace ptwgr {

RoutingMetrics compute_metrics(const Circuit& circuit,
                               const std::vector<Wire>& wires) {
  RoutingMetrics metrics;
  const std::size_t num_channels = circuit.num_channels();

  // Density counts *nets* per x, so each net's wires within a channel are
  // merged into their union before the overlap sweep.
  std::vector<std::vector<std::pair<std::uint32_t, Interval>>> per_channel(
      num_channels);
  for (const Wire& wire : wires) {
    PTWGR_CHECK_MSG(wire.channel < num_channels, "wire channel out of range");
    per_channel[wire.channel].emplace_back(wire.net.value(),
                                           Interval{wire.lo, wire.hi});
    metrics.total_wirelength += wire.length();
  }

  metrics.channel_density.resize(num_channels, 0);
  for (std::size_t c = 0; c < num_channels; ++c) {
    auto& entries = per_channel[c];
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<Interval> channel_intervals;
    std::vector<Interval> net_intervals;
    std::size_t i = 0;
    while (i < entries.size()) {
      const std::uint32_t net = entries[i].first;
      net_intervals.clear();
      for (; i < entries.size() && entries[i].first == net; ++i) {
        net_intervals.push_back(entries[i].second);
      }
      for (const Interval& iv : merge_intervals(net_intervals)) {
        channel_intervals.push_back(iv);
      }
    }
    metrics.channel_density[c] = max_overlap(std::move(channel_intervals));
    metrics.track_count += metrics.channel_density[c];
  }

  metrics.feedthrough_count = circuit.num_feedthrough_cells();

  Coord rows_height = 0;
  for (const Row& row : circuit.rows()) rows_height += row.height;
  metrics.area = circuit.core_width() *
                 (rows_height + kTrackPitch * metrics.track_count);
  return metrics;
}

std::string RoutingMetrics::to_string() const {
  std::ostringstream os;
  os << "tracks=" << track_count << " area=" << area
     << " feedthroughs=" << feedthrough_count
     << " wirelength=" << total_wirelength;
  if (coarse_decisions > 0 || switch_decisions > 0) {
    os << " coarse_flips=" << coarse_flips << "/" << coarse_decisions
       << " switch_flips=" << switch_flips << "/" << switch_decisions;
  }
  return os.str();
}

std::vector<std::string> verify_routing(const Circuit& circuit,
                                        const std::vector<Wire>& wires) {
  std::vector<std::string> violations;
  const std::size_t num_channels = circuit.num_channels();

  // Group wires by net.
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> wires_by_net;
  for (std::size_t w = 0; w < wires.size(); ++w) {
    const Wire& wire = wires[w];
    if (wire.channel >= num_channels) {
      violations.push_back("wire " + std::to_string(w) +
                           ": channel out of range");
      continue;
    }
    if (wire.lo > wire.hi) {
      violations.push_back("wire " + std::to_string(w) + ": inverted span");
      continue;
    }
    wires_by_net[wire.net.value()].push_back(w);
  }

  // Per net: pins + wires must form one connected component.  A pin in row r
  // touches channels r and r+1; a wire touches a pin when the pin's x lies
  // within the wire's span (small slack for feedthrough-shift rounding).
  constexpr Coord kSlack = 2;
  for (std::size_t n = 0; n < circuit.num_nets(); ++n) {
    const auto& net_pins = circuit.net(NetId{static_cast<std::uint32_t>(n)})
                               .pins;
    if (net_pins.size() < 2) continue;

    const auto wit = wires_by_net.find(static_cast<std::uint32_t>(n));
    const std::vector<std::size_t> empty;
    const auto& net_wires = (wit != wires_by_net.end()) ? wit->second : empty;

    // Nodes: [0, P) pins, [P, P+W) wires.
    const std::size_t P = net_pins.size();
    const std::size_t W = net_wires.size();
    DisjointSets dsu(P + W);

    // Pins sharing (x, row) are trivially connected; pins on the same cell
    // too.  Sort by (row, x) and merge coincident ones.
    for (std::size_t i = 0; i < P; ++i) {
      for (std::size_t j = i + 1; j < P; ++j) {
        if (circuit.pin_row(net_pins[i]) == circuit.pin_row(net_pins[j]) &&
            circuit.pin_x(net_pins[i]) == circuit.pin_x(net_pins[j])) {
          dsu.unite(i, j);
        }
      }
    }

    for (std::size_t wi = 0; wi < W; ++wi) {
      const Wire& wire = wires[net_wires[wi]];
      for (std::size_t pi = 0; pi < P; ++pi) {
        const auto prow =
            static_cast<std::uint32_t>(circuit.pin_row(net_pins[pi]).index());
        if (wire.channel != prow && wire.channel != prow + 1) continue;
        const Coord px = circuit.pin_x(net_pins[pi]);
        if (px >= wire.lo - kSlack && px <= wire.hi + kSlack) {
          dsu.unite(pi, P + wi);
        }
      }
      // Same-channel overlapping wires of the net are connected.
      for (std::size_t wj = 0; wj < wi; ++wj) {
        const Wire& other = wires[net_wires[wj]];
        if (other.channel != wire.channel) continue;
        if (other.hi + kSlack >= wire.lo && wire.hi + kSlack >= other.lo) {
          dsu.unite(P + wi, P + wj);
        }
      }
    }

    bool connected = true;
    for (std::size_t pi = 1; pi < P; ++pi) {
      if (!dsu.connected(0, pi)) {
        connected = false;
        break;
      }
    }
    if (!connected) {
      violations.push_back("net " + std::to_string(n) +
                           ": pins not connected by routing");
    }
  }
  return violations;
}

}  // namespace ptwgr
