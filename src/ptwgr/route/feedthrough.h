// Feedthrough materialization and assignment (TWGR step 3).
//
// After coarse routing, the grid records how many wires must cross each row
// at each column.  This module (a) inserts that many feedthrough cells into
// the rows — the operation that physically widens them — and (b) binds every
// row-crossing of every committed coarse segment to a concrete feedthrough,
// adding a Both-sided pin to the crossing net so step 4 can connect through
// it.
//
// Both operations take a row filter because the parallel algorithms perform
// them per row block: in every algorithm the rows (hence cells) are owned
// row-wise, and only the row's owner may mutate it (paper §4).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "ptwgr/route/coarse.h"

namespace ptwgr {

/// Accepts every row (the serial router's filter).
inline bool all_rows(std::size_t) { return true; }

/// Created feedthrough cells, pooled per (row, column) for assignment.
class FeedthroughPools {
 public:
  void add(std::size_t row, std::size_t col, CellId cell);

  /// Takes one available feedthrough at (row, col); returns an invalid id if
  /// the pool is exhausted (callers then insert an emergency feedthrough).
  CellId take(std::size_t row, std::size_t col);

  std::size_t total_available() const { return available_; }

 private:
  static std::uint64_t key(std::size_t row, std::size_t col) {
    return (static_cast<std::uint64_t>(row) << 32) |
           static_cast<std::uint64_t>(col);
  }
  std::unordered_map<std::uint64_t, std::vector<CellId>> pools_;
  std::size_t available_ = 0;
};

/// One assigned crossing: the net now owns a pin on a feedthrough cell.
struct FeedthroughTerminal {
  NetId net;
  std::uint32_t row;
  Coord x;      ///< pin position after insertion shifts
  PinId pin;    ///< the created pin (valid only in the mutated circuit)
};

/// Inserts feedthrough cells for every (row, col) demand recorded in `grid`,
/// restricted to rows where `row_filter` returns true.  Rows are processed
/// left-to-right so insertion shifts accumulate consistently.
FeedthroughPools insert_feedthroughs(
    Circuit& circuit, const CoarseGrid& grid, Coord feedthrough_width,
    const std::function<bool(std::size_t)>& row_filter = all_rows);

/// Binds each segment's row crossings (rows passing `row_filter`) to pooled
/// feedthroughs, creating net pins.  Segments are visited in the given
/// order; within a (row, col) pool, assignment is first-come.  If a pool is
/// exhausted (possible when parallel replicas desynchronize), an emergency
/// feedthrough is inserted so routing always completes.
std::vector<FeedthroughTerminal> assign_feedthroughs(
    Circuit& circuit, FeedthroughPools& pools, const CoarseGrid& grid,
    const std::vector<CoarseSegment>& segments, Coord feedthrough_width,
    const std::function<bool(std::size_t)>& row_filter = all_rows);

}  // namespace ptwgr
