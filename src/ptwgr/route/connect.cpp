#include "ptwgr/route/connect.h"

#include <algorithm>

#include "ptwgr/route/mst.h"
#include "ptwgr/support/check.h"

namespace ptwgr {
namespace {

TerminalAccess access_of(const Pin& pin) {
  if (pin.is_fake()) return TerminalAccess::Either;
  switch (pin.side) {
    case PinSide::Top: return TerminalAccess::AboveOnly;
    case PinSide::Bottom: return TerminalAccess::BelowOnly;
    case PinSide::Both: return TerminalAccess::Either;
  }
  return TerminalAccess::Either;
}

}  // namespace

void connect_terminals(NetId net, const std::vector<Terminal>& terminals,
                       const ConnectOptions& options,
                       std::vector<Wire>& wires) {
  if (terminals.size() < 2) return;

  std::vector<RoutePoint> points;
  points.reserve(terminals.size());
  for (const Terminal& t : terminals) {
    points.push_back(RoutePoint{t.x, t.row});
  }

  const auto edges = minimum_spanning_tree(points, options.row_cost);
  for (const TreeEdge& e : edges) {
    const Terminal& ta = terminals[e.a];
    const Terminal& tb = terminals[e.b];
    const Coord lo = std::min(ta.x, tb.x);
    const Coord hi = std::max(ta.x, tb.x);

    if (ta.row == tb.row) {
      if (lo == hi) continue;  // stacked terminals: no wire needed
      Wire wire;
      wire.net = net;
      wire.lo = lo;
      wire.hi = hi;
      wire.row = ta.row;
      if (ta.access == TerminalAccess::Either &&
          tb.access == TerminalAccess::Either) {
        // Both terminals reachable from either channel: this is the
        // switchable net segment of paper §2.
        wire.switchable = true;
        wire.channel = initial_switchable_channel(net, ta.row);
      } else if (ta.access != TerminalAccess::BelowOnly &&
                 tb.access != TerminalAccess::BelowOnly) {
        wire.channel = ta.row + 1;  // above
      } else if (ta.access != TerminalAccess::AboveOnly &&
                 tb.access != TerminalAccess::AboveOnly) {
        wire.channel = ta.row;  // below
      } else {
        // Conflicting fixed sides (Top vs Bottom): the detailed router would
        // jog around the cell; at this abstraction treat it as switchable so
        // step 5 picks the lighter channel.
        wire.switchable = true;
        wire.channel = initial_switchable_channel(net, ta.row);
      }
      wires.push_back(wire);
      continue;
    }

    const std::uint32_t row_lo = std::min(ta.row, tb.row);
    const std::uint32_t row_hi = std::max(ta.row, tb.row);
    // Horizontal leg in the channel directly below the upper row.
    {
      Wire wire;
      wire.net = net;
      wire.channel = row_hi;
      wire.lo = lo;
      wire.hi = hi;
      wire.row = row_hi;
      wires.push_back(wire);
    }
    // Rows between adjacent terminals should not happen once feedthroughs
    // are assigned; when they do (relaxed parallel sync), the vertical run
    // crosses the intermediate channels as zero-length stubs.
    const Coord x_stub = (ta.row == row_lo) ? ta.x : tb.x;
    for (std::uint32_t c = row_lo + 1; c < row_hi; ++c) {
      Wire stub;
      stub.net = net;
      stub.channel = c;
      stub.lo = x_stub;
      stub.hi = x_stub;
      stub.row = c;
      wires.push_back(stub);
    }
  }
}

void connect_net(const Circuit& circuit, NetId net,
                 const ConnectOptions& options, std::vector<Wire>& wires) {
  const auto& pins = circuit.net(net).pins;
  if (pins.size() < 2) return;

  std::vector<Terminal> terminals;
  terminals.reserve(pins.size());
  for (const PinId pid : pins) {
    terminals.push_back(Terminal{
        circuit.pin_x(pid),
        static_cast<std::uint32_t>(circuit.pin_row(pid).index()),
        access_of(circuit.pin(pid))});
  }
  connect_terminals(net, terminals, options, wires);
}

std::vector<Wire> connect_nets(const Circuit& circuit,
                               const std::vector<NetId>& nets,
                               const ConnectOptions& options) {
  std::vector<Wire> wires;
  for (const NetId net : nets) {
    connect_net(circuit, net, options, wires);
  }
  return wires;
}

std::vector<Wire> connect_all_nets(const Circuit& circuit,
                                   const ConnectOptions& options) {
  std::vector<NetId> nets;
  nets.reserve(circuit.num_nets());
  for (std::size_t n = 0; n < circuit.num_nets(); ++n) {
    nets.push_back(NetId{static_cast<std::uint32_t>(n)});
  }
  return connect_nets(circuit, nets, options);
}

}  // namespace ptwgr
