#include "ptwgr/route/router.h"

#include "ptwgr/obs/ledger.h"
#include "ptwgr/obs/record.h"
#include "ptwgr/obs/resource.h"
#include "ptwgr/obs/snapshot.h"
#include "ptwgr/route/coarse.h"
#include "ptwgr/route/connect.h"
#include "ptwgr/route/feedthrough.h"
#include "ptwgr/route/grid.h"
#include "ptwgr/route/steiner.h"
#include "ptwgr/route/switchable.h"
#include "ptwgr/support/log.h"
#include "ptwgr/support/rng.h"
#include "ptwgr/support/timer.h"
#include "ptwgr/support/trace.h"

namespace ptwgr {

RoutingResult route_serial(Circuit circuit, const RouterOptions& options) {
  PTWGR_EXPECTS(circuit.num_rows() >= 1);
  Rng rng(options.seed);
  RoutingResult result;
  WallTimer timer;

  // Trace spans for the five steps on a cumulative wall-clock timeline
  // (track: rank 0).  One atomic load per step when tracing is off.  The
  // causal ledger gets a phase-begin event per step on the same timeline —
  // a serial run is a one-rank world whose critical path is its own clock.
  obs::LedgerCollector* ledger = obs::active_ledger();
  if (ledger != nullptr) ledger->begin_run(1);
  double trace_at = 0.0;
  std::uint64_t step_index = 0;
  const auto trace_step = [&trace_at, &step_index,
                           ledger](const char* name, double step_seconds) {
    if (TraceCollector* tracer = active_trace()) {
      tracer->record(name, 0, trace_at, trace_at + step_seconds, "serial");
    }
    if (ledger != nullptr) {
      obs::LedgerEvent event;
      event.kind = obs::LedgerEventKind::PhaseBegin;
      event.t0 = trace_at;
      event.t1 = trace_at;
      event.lamport = step_index;
      event.label = name;
      ledger->record(0, std::move(event));
    }
    ++step_index;
    trace_at += step_seconds;
  };

  // Step 1: approximate Steiner trees.
  obs::resource_set_phase("steiner");
  SteinerOptions steiner_options;
  steiner_options.row_cost = options.steiner_row_cost;
  const auto trees = build_all_steiner_trees(circuit, steiner_options);
  result.timings.steiner = timer.seconds();
  trace_step("steiner", result.timings.steiner);
  // Quality snapshots (one atomic load per step when off).  Recording sits
  // between the step's timer read and the next reset, so the step timings
  // never include it.
  obs::QualityCollector* quality = obs::active_quality();
  if (quality != nullptr) {
    obs::TreeBatch batch;
    for (const SteinerTree& tree : trees) {
      batch.add(tree, options.steiner_row_cost);
    }
    quality->add_trees(batch.per_net_costs, batch.edges,
                       batch.inter_row_edges);
  }
  timer.reset();

  // Step 2: coarse global routing over the demand grid.
  obs::resource_set_phase("coarse");
  CoarseGrid grid(circuit, options.column_width);
  auto segments = extract_coarse_segments(trees);
  CoarseOptions coarse_options;
  coarse_options.passes = options.coarse_passes;
  coarse_options.cross_check = options.cross_check;
  CoarseRouter coarse(grid, coarse_options);
  coarse.place_initial(segments);
  Rng coarse_rng = rng.split();
  const std::size_t flips = coarse.improve(segments, coarse_rng);
  PTWGR_LOG_DEBUG << "coarse routing: " << segments.size() << " segments, "
                  << flips << " flips";
  result.metrics.coarse_decisions = static_cast<std::int64_t>(
      segments.size() * static_cast<std::size_t>(options.coarse_passes));
  result.metrics.coarse_flips = static_cast<std::int64_t>(flips);
  result.timings.coarse = timer.seconds();
  trace_step("coarse", result.timings.coarse);
  if (quality != nullptr) {
    quality->add_grid(obs::Phase::Coarse, grid, 0, 0, circuit.num_rows());
    quality->add_flips(obs::Phase::Coarse, result.metrics.coarse_decisions,
                       result.metrics.coarse_flips, options.coarse_passes);
  }
  timer.reset();

  // Step 3: feedthrough insertion and assignment.
  obs::resource_set_phase("feedthrough");
  FeedthroughPools pools =
      insert_feedthroughs(circuit, grid, options.feedthrough_width);
  const auto terminals = assign_feedthroughs(
      circuit, pools, grid, segments, options.feedthrough_width);
  PTWGR_LOG_DEBUG << "feedthroughs: " << circuit.num_feedthrough_cells()
                  << " cells, " << terminals.size() << " crossings bound";
  result.timings.feedthrough = timer.seconds();
  trace_step("feedthrough", result.timings.feedthrough);
  if (quality != nullptr) {
    quality->add_feedthroughs(obs::feedthrough_rows(circuit),
                              circuit.num_rows());
  }
  timer.reset();

  // Step 4: connect each net through its pins and feedthroughs.
  obs::resource_set_phase("connect");
  result.wires = connect_all_nets(circuit);
  result.timings.connect = timer.seconds();
  trace_step("connect", result.timings.connect);
  if (quality != nullptr) {
    quality->add_wires(obs::Phase::Connect, result.wires,
                       circuit.num_channels());
  }
  timer.reset();

  // Step 5: switchable net segment optimization.
  obs::resource_set_phase("switchable");
  SwitchableOptimizer optimizer(circuit.num_channels(), circuit.core_width(),
                                options.switch_bucket_width);
  optimizer.register_wires(result.wires);
  SwitchableOptions switch_options;
  switch_options.passes = options.switchable_passes;
  switch_options.bucket_width = options.switch_bucket_width;
  switch_options.cross_check = options.cross_check;
  Rng switch_rng = rng.split();
  const std::size_t switch_flips =
      optimizer.optimize(result.wires, switch_rng, switch_options);
  PTWGR_LOG_DEBUG << "switchable optimization: " << switch_flips << " flips";
  result.timings.switchable = timer.seconds();
  trace_step("switchable", result.timings.switchable);

  // compute_metrics replaces the whole struct; carry the sweep stats across.
  const std::int64_t coarse_decisions = result.metrics.coarse_decisions;
  const std::int64_t coarse_flips = result.metrics.coarse_flips;
  const std::int64_t switch_decisions =
      obs::count_switchable(result.wires) * options.switchable_passes;
  result.metrics = compute_metrics(circuit, result.wires);
  result.metrics.coarse_decisions = coarse_decisions;
  result.metrics.coarse_flips = coarse_flips;
  result.metrics.switch_decisions = switch_decisions;
  result.metrics.switch_flips = static_cast<std::int64_t>(switch_flips);
  if (quality != nullptr) {
    quality->add_wires(obs::Phase::Switchable, result.wires,
                       circuit.num_channels());
    quality->add_flips(obs::Phase::Switchable, switch_decisions,
                       result.metrics.switch_flips,
                       options.switchable_passes);
  }
  if (ledger != nullptr) ledger->set_final_vtime(0, trace_at);
  obs::resource_set_phase(nullptr);  // back to "(untagged)"
  result.circuit = std::move(circuit);
  return result;
}

}  // namespace ptwgr
