#include "ptwgr/route/steiner.h"

#include <algorithm>
#include <unordered_map>

#include "ptwgr/support/check.h"

namespace ptwgr {

std::size_t SteinerTree::num_inter_row_edges() const {
  return static_cast<std::size_t>(
      std::count_if(edges.begin(), edges.end(), [this](const TreeEdge& e) {
        return nodes[e.a].at.row != nodes[e.b].at.row;
      }));
}

std::int64_t SteinerTree::length(std::int64_t row_cost) const {
  std::int64_t total = 0;
  for (const TreeEdge& e : edges) {
    total += route_distance(nodes[e.a].at, nodes[e.b].at, row_cost);
  }
  return total;
}

namespace {

/// Corner-merging refinement: for each node, when two tree neighbors lie in
/// the same quadrant, reroute both through a shared Steiner corner if that
/// shortens the tree.  One deterministic pass; returns true if changed.
bool refine_once(SteinerTree& tree, std::int64_t row_cost) {
  const std::size_t n = tree.nodes.size();
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (const TreeEdge& e : tree.edges) {
    adj[e.a].push_back(e.b);
    adj[e.b].push_back(e.a);
  }

  bool changed = false;
  for (std::uint32_t u = 0; u < n; ++u) {
    bool retry = true;
    while (retry) {
      retry = false;
      // Re-fetch each iteration: applying a merge grows `adj`, which can
      // reallocate and invalidate references into it.
      const std::vector<std::uint32_t> nbrs = adj[u];
      const RoutePoint pu = tree.nodes[u].at;
      for (std::size_t i = 0; i < nbrs.size() && !retry; ++i) {
        for (std::size_t j = i + 1; j < nbrs.size() && !retry; ++j) {
          const std::uint32_t v = nbrs[i];
          const std::uint32_t w = nbrs[j];
          const RoutePoint pv = tree.nodes[v].at;
          const RoutePoint pw = tree.nodes[w].at;
          // Same quadrant: the sign of (dx, drow) agrees and is nonzero in
          // at least one axis for both.
          const auto sgn = [](std::int64_t d) {
            return d > 0 ? 1 : (d < 0 ? -1 : 0);
          };
          const int sxv = sgn(pv.x - pu.x);
          const int sxw = sgn(pw.x - pu.x);
          const int srv = sgn(static_cast<std::int64_t>(pv.row) -
                              static_cast<std::int64_t>(pu.row));
          const int srw = sgn(static_cast<std::int64_t>(pw.row) -
                              static_cast<std::int64_t>(pu.row));
          if (sxv != sxw || srv != srw) continue;
          if (sxv == 0 && srv == 0) continue;

          // Shared corner: the overlap of the two bounding boxes nearest u.
          RoutePoint s;
          s.x = (sxv >= 0) ? std::min(pv.x, pw.x) : std::max(pv.x, pw.x);
          s.row = (srv >= 0) ? std::min(pv.row, pw.row)
                             : std::max(pv.row, pw.row);
          if (s == pu || s == pv || s == pw) continue;

          const std::int64_t before = route_distance(pu, pv, row_cost) +
                                      route_distance(pu, pw, row_cost);
          const std::int64_t after = route_distance(pu, s, row_cost) +
                                     route_distance(s, pv, row_cost) +
                                     route_distance(s, pw, row_cost);
          if (after >= before) continue;

          // Apply: new Steiner node; u-v and u-w become u-s, s-v, s-w.
          const auto sid = static_cast<std::uint32_t>(tree.nodes.size());
          tree.nodes.push_back(SteinerNode{s, PinId{}});
          adj.emplace_back();
          adj[sid] = {u, v, w};
          std::erase(adj[u], v);
          std::erase(adj[u], w);
          adj[u].push_back(sid);
          std::replace(adj[v].begin(), adj[v].end(), u, sid);
          std::replace(adj[w].begin(), adj[w].end(), u, sid);
          changed = true;
          retry = true;  // nbrs changed; restart this node's pair scan
        }
      }
    }
  }

  if (changed) {
    tree.edges.clear();
    for (std::uint32_t u = 0; u < adj.size(); ++u) {
      for (const std::uint32_t v : adj[u]) {
        if (u < v) tree.edges.push_back(TreeEdge{u, v});
      }
    }
  }
  return changed;
}

}  // namespace

SteinerTree build_steiner_tree(const Circuit& circuit, NetId net,
                               const SteinerOptions& options) {
  PTWGR_EXPECTS(net.index() < circuit.num_nets());
  SteinerTree tree;
  tree.net = net;

  // One node per distinct pin position (stacked pins collapse).
  std::unordered_map<std::uint64_t, std::uint32_t> seen;
  for (const PinId pid : circuit.net(net).pins) {
    const RoutePoint at{circuit.pin_x(pid),
                        static_cast<std::uint32_t>(
                            circuit.pin_row(pid).index())};
    const std::uint64_t key =
        (static_cast<std::uint64_t>(at.row) << 40) ^
        static_cast<std::uint64_t>(at.x + (1LL << 38));
    if (seen.emplace(key, static_cast<std::uint32_t>(tree.nodes.size()))
            .second) {
      tree.nodes.push_back(SteinerNode{at, pid});
    }
  }
  if (tree.nodes.size() < 2) return tree;

  std::vector<RoutePoint> points;
  points.reserve(tree.nodes.size());
  for (const SteinerNode& node : tree.nodes) points.push_back(node.at);
  tree.edges = minimum_spanning_tree(points, options.row_cost);

  if (options.refine) {
    // Corner merging converges quickly; two passes capture almost all gain.
    for (int pass = 0; pass < 2; ++pass) {
      if (!refine_once(tree, options.row_cost)) break;
    }
  }
  return tree;
}

std::vector<SteinerTree> build_steiner_trees(const Circuit& circuit,
                                             const std::vector<NetId>& nets,
                                             const SteinerOptions& options) {
  std::vector<SteinerTree> trees;
  trees.reserve(nets.size());
  for (const NetId net : nets) {
    trees.push_back(build_steiner_tree(circuit, net, options));
  }
  return trees;
}

std::vector<SteinerTree> build_all_steiner_trees(
    const Circuit& circuit, const SteinerOptions& options) {
  std::vector<NetId> nets;
  nets.reserve(circuit.num_nets());
  for (std::size_t n = 0; n < circuit.num_nets(); ++n) {
    nets.push_back(NetId{static_cast<std::uint32_t>(n)});
  }
  return build_steiner_trees(circuit, nets, options);
}

}  // namespace ptwgr
