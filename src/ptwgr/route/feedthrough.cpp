#include "ptwgr/route/feedthrough.h"

#include <algorithm>

namespace ptwgr {

void FeedthroughPools::add(std::size_t row, std::size_t col, CellId cell) {
  pools_[key(row, col)].push_back(cell);
  ++available_;
}

CellId FeedthroughPools::take(std::size_t row, std::size_t col) {
  const auto it = pools_.find(key(row, col));
  if (it == pools_.end() || it->second.empty()) return CellId{};
  const CellId cell = it->second.back();
  it->second.pop_back();
  --available_;
  return cell;
}

FeedthroughPools insert_feedthroughs(
    Circuit& circuit, const CoarseGrid& grid, Coord feedthrough_width,
    const std::function<bool(std::size_t)>& row_filter) {
  PTWGR_EXPECTS(feedthrough_width > 0);
  FeedthroughPools pools;
  for (std::size_t row = 0; row < grid.num_rows(); ++row) {
    if (!row_filter(row)) continue;
    for (std::size_t col = 0; col < grid.num_columns(); ++col) {
      const std::int32_t demand = grid.feedthrough_demand(row, col);
      for (std::int32_t k = 0; k < demand; ++k) {
        const CellId cell = circuit.insert_feedthrough(
            RowId{static_cast<std::uint32_t>(row)}, grid.column_center(col),
            feedthrough_width);
        pools.add(row, col, cell);
      }
    }
  }
  return pools;
}

std::vector<FeedthroughTerminal> assign_feedthroughs(
    Circuit& circuit, FeedthroughPools& pools, const CoarseGrid& grid,
    const std::vector<CoarseSegment>& segments, Coord feedthrough_width,
    const std::function<bool(std::size_t)>& row_filter) {
  std::vector<FeedthroughTerminal> terminals;
  for (const CoarseSegment& seg : segments) {
    const Coord xv = seg.vertical_at_a ? seg.a.x : seg.b.x;
    const std::size_t col = grid.column_of(xv);
    for (std::uint32_t row = seg.a.row + 1; row < seg.b.row; ++row) {
      if (!row_filter(row)) continue;
      CellId cell = pools.take(row, col);
      if (!cell.valid()) {
        // Pool exhausted — replicas desynchronized under relaxed parallel
        // synchronization.  Insert an emergency feedthrough; quality pays,
        // correctness does not.
        cell = circuit.insert_feedthrough(RowId{row}, grid.column_center(col),
                                          feedthrough_width);
      }
      const PinId pin = circuit.add_cell_pin(
          cell, seg.net, feedthrough_width / 2, PinSide::Both);
      terminals.push_back(FeedthroughTerminal{
          seg.net, row, circuit.pin_x(pin), pin});
    }
  }
  return terminals;
}

}  // namespace ptwgr
