// Approximate Steiner trees (TWGR step 1).
//
// Each net gets a tree whose nodes are its pin positions plus optional
// Steiner points, grown from the net's MST and locally improved by corner
// merging: when two tree edges leave a node toward the same quadrant, a
// Steiner point at the shared corner removes duplicated wire.  The tree's
// edges are the *segments* all later steps operate on: an edge spanning
// different rows is an inter-row segment (L-shaped, coarse-routed in step 2);
// a same-row edge is an intra-row segment (switchable when its pins allow
// both channels).
#pragma once

#include <cstdint>
#include <vector>

#include "ptwgr/circuit/circuit.h"
#include "ptwgr/route/mst.h"

namespace ptwgr {

/// Tree node: a position, plus the pin it represents (invalid for Steiner
/// points introduced by the refinement).
struct SteinerNode {
  RoutePoint at;
  PinId pin;  ///< invalid for pure Steiner points
};

struct SteinerTree {
  NetId net;
  std::vector<SteinerNode> nodes;
  std::vector<TreeEdge> edges;

  /// Number of edges spanning more than zero rows.
  std::size_t num_inter_row_edges() const;
  /// Total rectilinear length (row step = `row_cost`).
  std::int64_t length(std::int64_t row_cost) const;
};

struct SteinerOptions {
  /// Vertical cost per row used by the MST metric.  Rows are expensive to
  /// cross (feedthroughs), so this is large relative to a horizontal unit.
  std::int64_t row_cost = 48;
  /// Enable the corner-merging refinement pass.
  bool refine = true;
};

/// Builds the tree for one net.  Nets with fewer than two distinct pin
/// positions produce a tree with no edges.
SteinerTree build_steiner_tree(const Circuit& circuit, NetId net,
                               const SteinerOptions& options = {});

/// Builds trees for a subset of nets (in the given order).
std::vector<SteinerTree> build_steiner_trees(
    const Circuit& circuit, const std::vector<NetId>& nets,
    const SteinerOptions& options = {});

/// Builds trees for every net in the circuit.
std::vector<SteinerTree> build_all_steiner_trees(
    const Circuit& circuit, const SteinerOptions& options = {});

}  // namespace ptwgr
