#include "ptwgr/route/switchable.h"

#include <algorithm>

#include "ptwgr/support/check.h"

namespace ptwgr {
namespace {

Interval wire_span(const Wire& wire) { return Interval{wire.lo, wire.hi}; }

}  // namespace

SwitchableOptimizer::SwitchableOptimizer(std::size_t num_channels,
                                         Coord core_width,
                                         Coord bucket_width) {
  PTWGR_EXPECTS(num_channels >= 1);
  PTWGR_EXPECTS(bucket_width > 0);
  buckets_per_channel_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             (std::max<Coord>(core_width, 1) + bucket_width - 1) /
             bucket_width));
  profiles_.reserve(num_channels);
  for (std::size_t c = 0; c < num_channels; ++c) {
    profiles_.emplace_back(0, bucket_width, buckets_per_channel_);
  }
  pending_.assign(num_channels * buckets_per_channel_, 0);
}

void SwitchableOptimizer::apply(const Wire& wire, std::int64_t direction) {
  PTWGR_EXPECTS(wire.channel < profiles_.size());
  DensityProfile& profile = profiles_[wire.channel];
  const Interval span = wire_span(wire);
  if (direction > 0) {
    profile.add(span);
  } else {
    profile.remove(span);
  }
  // Mirror into the pending-delta accumulator for replica sync.  Must widen
  // intervals exactly the way the profile itself does, so route through the
  // profile's bucket_range instead of redoing the arithmetic here.
  const auto [first, last] = profile.bucket_range(span);
  for (std::size_t b = first; b <= last; ++b) {
    pending_[wire.channel * buckets_per_channel_ + b] +=
        static_cast<std::int32_t>(direction);
  }
}

void SwitchableOptimizer::register_wires(const std::vector<Wire>& wires) {
  for (const Wire& wire : wires) apply(wire, +1);
}

std::int64_t SwitchableOptimizer::local_peak(std::size_t channel,
                                             const Wire& wire) const {
  PTWGR_EXPECTS(channel < profiles_.size());
  return profiles_[channel].max_density_over(wire_span(wire));
}

bool SwitchableOptimizer::naive_flip_improves(const Wire& wire,
                                              std::uint32_t other) {
  // Deliberately avoids the incremental queries: full bucket scans against
  // raw counts, with the wire physically removed.
  const auto scan_max = [this](std::size_t channel) {
    std::int64_t best = 0;
    for (std::size_t b = 0; b < buckets_per_channel_; ++b) {
      best = std::max(best, profiles_[channel].bucket_count(b));
    }
    return best;
  };
  const auto scan_local = [this](std::size_t channel, Interval span) {
    const auto [first, last] = profiles_[channel].bucket_range(span);
    std::int64_t best = 0;
    for (std::size_t b = first; b <= last; ++b) {
      best = std::max(best, profiles_[channel].bucket_count(b));
    }
    return best;
  };
  const Interval span = wire_span(wire);
  apply(wire, -1);
  const std::int64_t cur_max = scan_max(wire.channel);
  const std::int64_t other_max = scan_max(other);
  const std::int64_t cur_local = scan_local(wire.channel, span);
  const std::int64_t other_local = scan_local(other, span);
  apply(wire, +1);
  const std::int64_t keep_total = std::max(cur_max, cur_local + 1) + other_max;
  const std::int64_t move_total = cur_max + std::max(other_max, other_local + 1);
  return move_total < keep_total ||
         (move_total == keep_total && other_local < cur_local);
}

std::size_t SwitchableOptimizer::optimize(
    std::vector<Wire>& wires, Rng& rng, const SwitchableOptions& options,
    const std::function<void(std::size_t)>& on_progress) {
  // Indices of switchable wires only.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < wires.size(); ++i) {
    if (wires[i].switchable) order.push_back(i);
  }

  std::size_t flips = 0;
  std::size_t decisions = 0;
  for (int pass = 0; pass < options.passes; ++pass) {
    rng.shuffle(order);  // the paper's random segment pick
    for (const std::size_t idx : order) {
      Wire& wire = wires[idx];
      const std::uint32_t below = wire.row;
      const std::uint32_t above = wire.row + 1;
      const std::uint32_t other = (wire.channel == below) ? above : below;
      PTWGR_EXPECTS(other < profiles_.size());

      // Evaluate the *track* change of the flip: tracks are per-channel
      // global maxima, so compare the resulting channel peaks, not just the
      // crowding under the wire (paper §2: "evaluating the channel track
      // change when the segment is flipped").  Removed-state aggregates are
      // derived without mutating the profiles: the wire adds exactly +1 to
      // every bucket of its own span, so removal lowers its local peak by
      // one and nothing outside the span moves (DESIGN.md §11).
      const Interval span = wire_span(wire);
      const std::int64_t cur_local =
          profiles_[wire.channel].max_density_over(span) - 1;
      const std::int64_t cur_max = std::max(
          profiles_[wire.channel].max_density_excluding(span), cur_local);
      const std::int64_t other_max = profiles_[other].max_density();
      const std::int64_t other_local = local_peak(other, wire);
      const std::int64_t keep_total =
          std::max(cur_max, cur_local + 1) + other_max;
      const std::int64_t move_total =
          cur_max + std::max(other_max, other_local + 1);
      // Primary: fewer tracks.  Secondary (equal tracks): strictly less
      // local crowding on the destination side, which leaves room for later
      // segments.  The wire's own +1 lands on whichever side it ends up, so
      // the crowding comparison is other_local vs cur_local directly.
      const bool flip =
          move_total < keep_total ||
          (move_total == keep_total && other_local < cur_local);
      if (options.cross_check) {
        PTWGR_CHECK(naive_flip_improves(wire, other) == flip);
      }
      if (flip) {
        apply(wire, -1);
        wire.channel = other;
        apply(wire, +1);
        ++flips;
      }
      ++decisions;
      if (on_progress) on_progress(decisions);
    }
  }
  return flips;
}

std::int64_t SwitchableOptimizer::channel_peak(std::size_t channel) const {
  PTWGR_EXPECTS(channel < profiles_.size());
  return profiles_[channel].max_density();
}

std::vector<std::int32_t> SwitchableOptimizer::take_pending_deltas() {
  std::vector<std::int32_t> out(delta_state_size(), 0);
  out.swap(pending_);
  return out;
}

void SwitchableOptimizer::apply_external_deltas(
    const std::vector<std::int32_t>& deltas) {
  PTWGR_EXPECTS(deltas.size() == delta_state_size());
  for (std::size_t c = 0; c < profiles_.size(); ++c) {
    for (std::size_t b = 0; b < buckets_per_channel_; ++b) {
      const std::int32_t d = deltas[c * buckets_per_channel_ + b];
      if (d != 0) profiles_[c].add_at_bucket(b, d);
    }
  }
}

}  // namespace ptwgr
