// Minimum spanning trees over routing points.
//
// TWGR uses MSTs twice: the approximate Steiner tree of each net is grown
// from the net's MST (step 1), and the final connection step builds an MST
// over each net's pins + assigned feedthroughs (step 4).  Distances are
// rectilinear with a configurable per-row vertical cost, which biases the
// connection MST toward same-row / adjacent-row edges.
#pragma once

#include <cstdint>
#include <vector>

#include "ptwgr/circuit/types.h"

namespace ptwgr {

/// A routing point: horizontal position and row index.
struct RoutePoint {
  Coord x = 0;
  std::uint32_t row = 0;

  friend bool operator==(const RoutePoint&, const RoutePoint&) = default;
};

/// Rectilinear distance with vertical edges weighted `row_cost` per row.
inline std::int64_t route_distance(const RoutePoint& a, const RoutePoint& b,
                                   std::int64_t row_cost) {
  const std::int64_t dx = a.x >= b.x ? a.x - b.x : b.x - a.x;
  const std::int64_t dr =
      a.row >= b.row ? a.row - b.row : b.row - a.row;
  return dx + row_cost * dr;
}

/// Undirected tree edge between point indices.
struct TreeEdge {
  std::uint32_t a = 0;
  std::uint32_t b = 0;

  friend bool operator==(const TreeEdge&, const TreeEdge&) = default;
};

/// Prim's algorithm over the complete graph of `points` (O(n²), which is the
/// right trade for net sizes: almost all nets have < 10 pins and the giant
/// clock nets still fit comfortably).  Returns n-1 edges; empty for n <= 1.
std::vector<TreeEdge> minimum_spanning_tree(
    const std::vector<RoutePoint>& points, std::int64_t row_cost);

/// Total edge length of a tree under route_distance.
std::int64_t tree_length(const std::vector<RoutePoint>& points,
                         const std::vector<TreeEdge>& edges,
                         std::int64_t row_cost);

}  // namespace ptwgr
