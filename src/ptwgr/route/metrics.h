// Routing quality metrics (the numbers the paper's tables report).
//
// * Track count — Σ over channels of the channel density (the exact maximum
//   interval overlap of the channel's wires).  Tables 2–4 report this,
//   scaled against the serial run.
// * Area — widest row × (Σ row heights + track pitch × track count): grows
//   with both feedthrough insertion (row widening) and channel density.
// * Feedthroughs — count of inserted feedthrough cells.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ptwgr/circuit/circuit.h"
#include "ptwgr/route/wire.h"

namespace ptwgr {

struct RoutingMetrics {
  std::int64_t track_count = 0;
  std::int64_t area = 0;
  std::int64_t total_wirelength = 0;
  std::size_t feedthrough_count = 0;
  std::vector<std::int64_t> channel_density;

  // Acceptance statistics of the two random-order improvement sweeps:
  // orientation decisions examined / flipped in the coarse step (step 2) and
  // segment assignments examined / flipped in the switchable step (step 5).
  // Summed over ranks for parallel runs.
  std::int64_t coarse_decisions = 0;
  std::int64_t coarse_flips = 0;
  std::int64_t switch_decisions = 0;
  std::int64_t switch_flips = 0;

  std::string to_string() const;
};

/// Height of one routing track in layout units (channel height = density ×
/// pitch when computing area).
inline constexpr Coord kTrackPitch = 2;

/// Computes exact metrics from the routed circuit and its wires.
RoutingMetrics compute_metrics(const Circuit& circuit,
                               const std::vector<Wire>& wires);

/// Structural sanity check of a routing: every wire's channel exists, spans
/// are ordered, and — per net — the wires plus same-row adjacency form a
/// connected set over the net's terminals.  Returns a human-readable list of
/// violations (empty = valid).  Used by tests and the examples.
std::vector<std::string> verify_routing(const Circuit& circuit,
                                        const std::vector<Wire>& wires);

}  // namespace ptwgr
