#include "ptwgr/route/grid.h"

#include <algorithm>

namespace ptwgr {

CoarseGrid::CoarseGrid(std::size_t num_rows, Coord width, Coord column_width)
    : num_rows_(num_rows),
      column_width_(column_width),
      ft_demand_(ArenaAllocator<std::int32_t>(arena_slot("coarse_grid"))) {
  PTWGR_EXPECTS(num_rows >= 1);
  PTWGR_EXPECTS(column_width > 0);
  PTWGR_EXPECTS(width >= 0);
  num_columns_ = std::max<std::size_t>(
      1, static_cast<std::size_t>((width + column_width - 1) / column_width));
  ft_demand_.assign(num_rows_ * num_columns_, 0);
  chan_use_.reserve(num_rows_ + 1);
  ArenaSlot* const arena = arena_slot("coarse_grid");
  for (std::size_t ch = 0; ch <= num_rows_; ++ch) {
    chan_use_.emplace_back(num_columns_, arena);
  }
}

CoarseGrid::CoarseGrid(const Circuit& circuit, Coord column_width)
    : CoarseGrid(circuit.num_rows(), circuit.core_width(), column_width) {}

std::size_t CoarseGrid::column_of(Coord x) const {
  if (x < 0) return 0;
  const auto col = static_cast<std::size_t>(x / column_width_);
  return std::min(col, num_columns_ - 1);
}

Coord CoarseGrid::column_center(std::size_t col) const {
  PTWGR_EXPECTS(col < num_columns_);
  return static_cast<Coord>(col) * column_width_ + column_width_ / 2;
}

void CoarseGrid::add_feedthrough_demand(std::size_t row, std::size_t col,
                                        std::int32_t delta) {
  PTWGR_EXPECTS(row < num_rows_ && col < num_columns_);
  std::int32_t& slot = ft_demand_[row * num_columns_ + col];
  slot += delta;
  PTWGR_ENSURES(slot >= 0);
}

std::int32_t CoarseGrid::feedthrough_demand(std::size_t row,
                                            std::size_t col) const {
  PTWGR_EXPECTS(row < num_rows_ && col < num_columns_);
  return ft_demand_[row * num_columns_ + col];
}

std::int64_t CoarseGrid::row_feedthrough_total(std::size_t row) const {
  PTWGR_EXPECTS(row < num_rows_);
  std::int64_t total = 0;
  for (std::size_t c = 0; c < num_columns_; ++c) {
    total += ft_demand_[row * num_columns_ + c];
  }
  return total;
}

std::int64_t CoarseGrid::feedthrough_span_sum(std::size_t row_begin,
                                              std::size_t row_end,
                                              std::size_t col) const {
  PTWGR_EXPECTS(row_begin <= row_end && row_end <= num_rows_);
  PTWGR_EXPECTS(col < num_columns_);
  std::int64_t total = 0;
  for (std::size_t r = row_begin; r < row_end; ++r) {
    total += ft_demand_[r * num_columns_ + col];
  }
  return total;
}

void CoarseGrid::add_channel_use(std::size_t channel, std::size_t col_lo,
                                 std::size_t col_hi, std::int32_t delta) {
  PTWGR_EXPECTS(channel < num_channels());
  PTWGR_EXPECTS(col_lo <= col_hi && col_hi < num_columns_);
  chan_use_[channel].range_add(col_lo, col_hi, delta);
}

std::int32_t CoarseGrid::channel_use(std::size_t channel,
                                     std::size_t col) const {
  PTWGR_EXPECTS(channel < num_channels() && col < num_columns_);
  return static_cast<std::int32_t>(chan_use_[channel].value_at(col));
}

std::int32_t CoarseGrid::max_channel_use(std::size_t channel,
                                         std::size_t col_lo,
                                         std::size_t col_hi) const {
  PTWGR_EXPECTS(channel < num_channels());
  PTWGR_EXPECTS(col_lo <= col_hi && col_hi < num_columns_);
  // Usage counts are non-negative, matching the old scan's 0 floor.
  return static_cast<std::int32_t>(
      std::max<std::int64_t>(0, chan_use_[channel].range_max(col_lo, col_hi)));
}

std::int64_t CoarseGrid::channel_use_sum(std::size_t channel,
                                         std::size_t col_lo,
                                         std::size_t col_hi) const {
  PTWGR_EXPECTS(channel < num_channels());
  PTWGR_EXPECTS(col_lo <= col_hi && col_hi < num_columns_);
  return chan_use_[channel].range_sum(col_lo, col_hi);
}

std::vector<std::int32_t> CoarseGrid::export_state() const {
  std::vector<std::int32_t> state;
  state.reserve(state_size());
  state.insert(state.end(), ft_demand_.begin(), ft_demand_.end());
  for (const LazySegmentTree& tree : chan_use_) {
    for (std::int64_t v : tree.values()) {
      state.push_back(static_cast<std::int32_t>(v));
    }
  }
  return state;
}

void CoarseGrid::import_state(const std::vector<std::int32_t>& state) {
  PTWGR_EXPECTS(state.size() == state_size());
  std::copy_n(state.begin(), ft_demand_.size(), ft_demand_.begin());
  std::size_t offset = ft_demand_.size();
  std::vector<std::int64_t> row(num_columns_);
  for (LazySegmentTree& tree : chan_use_) {
    for (std::size_t c = 0; c < num_columns_; ++c) {
      row[c] = state[offset + c];
    }
    tree.assign(row);
    offset += num_columns_;
  }
}

}  // namespace ptwgr
