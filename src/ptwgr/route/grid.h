// Coarse global routing grid (TWGR step 2 substrate).
//
// The core is cut into equal-width columns.  The grid tracks two demand maps:
//   * feedthrough demand per (row, column) — how many wires must cross each
//     row near each column, which is what step 3 materializes as feedthrough
//     cells;
//   * channel usage per (channel, column) — the coarse channel-density
//     estimate the L-orientation choice optimizes against.
// Feedthrough demand is a flat integer array (point updates and queries
// dominate); each channel's usage row is a lazy segment tree so the flip
// sweep's span queries — range-add, range-max, range-sum — run in O(log W)
// instead of O(W) (DESIGN.md §11).  Both maps are exposed as one flat vector
// for serialization so the net-wise parallel algorithm can synchronize
// replicas with an allreduce (paper §5: "we need to synchronize the
// information of each grid point periodically"); the snapshot layout is
// unchanged by the tree backing.
#pragma once

#include <cstdint>
#include <vector>

#include "ptwgr/circuit/circuit.h"
#include "ptwgr/support/check.h"
#include "ptwgr/support/segment_tree.h"

namespace ptwgr {

class CoarseGrid {
 public:
  /// Covers [0, width) with ⌈width / column_width⌉ columns (min 1).
  CoarseGrid(std::size_t num_rows, Coord width, Coord column_width);

  /// Convenience: sized from a circuit's rows and core width.
  CoarseGrid(const Circuit& circuit, Coord column_width);

  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_channels() const { return num_rows_ + 1; }
  std::size_t num_columns() const { return num_columns_; }
  Coord column_width() const { return column_width_; }

  /// Column containing x (clamped to the grid).
  std::size_t column_of(Coord x) const;
  /// Center x of a column.
  Coord column_center(std::size_t col) const;

  // --- feedthrough demand ------------------------------------------------
  void add_feedthrough_demand(std::size_t row, std::size_t col,
                              std::int32_t delta);
  std::int32_t feedthrough_demand(std::size_t row, std::size_t col) const;
  /// Total feedthrough demand in one row (the row-width growth driver).
  std::int64_t row_feedthrough_total(std::size_t row) const;
  /// Demand at `col` summed over rows [row_begin, row_end) — the vertical-leg
  /// congestion term of the coarse placement cost.
  std::int64_t feedthrough_span_sum(std::size_t row_begin,
                                    std::size_t row_end,
                                    std::size_t col) const;

  // --- channel usage -----------------------------------------------------
  /// Adds `delta` to every column in [col_lo, col_hi] of a channel.
  /// O(log W).
  void add_channel_use(std::size_t channel, std::size_t col_lo,
                       std::size_t col_hi, std::int32_t delta);
  std::int32_t channel_use(std::size_t channel, std::size_t col) const;
  /// Max usage over a column span of a channel.  O(log W).
  std::int32_t max_channel_use(std::size_t channel, std::size_t col_lo,
                               std::size_t col_hi) const;
  /// Sum of usage over a column span of a channel.  O(log W).
  std::int64_t channel_use_sum(std::size_t channel, std::size_t col_lo,
                               std::size_t col_hi) const;

  // --- replica synchronization (net-wise parallel algorithm) -------------
  /// Snapshot of both maps as one flat vector (feedthrough demand first,
  /// then channel usage channel-major — same schema as the flat-array
  /// implementation).
  std::vector<std::int32_t> export_state() const;
  /// Replaces both maps from a snapshot produced by export_state().
  void import_state(const std::vector<std::int32_t>& state);
  /// Element count of an export_state() snapshot.
  std::size_t state_size() const {
    return ft_demand_.size() + num_channels() * num_columns_;
  }

 private:
  std::size_t num_rows_;
  std::size_t num_columns_;
  Coord column_width_;
  // Both maps are charged to the "coarse_grid" arena tag (obs/resource.h).
  std::vector<std::int32_t, ArenaAllocator<std::int32_t>> ft_demand_;
  std::vector<LazySegmentTree> chan_use_;  // one tree per channel
};

}  // namespace ptwgr
