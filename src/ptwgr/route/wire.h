// The routed wire: the unit of channel occupancy.
#pragma once

#include <cstdint>

#include "ptwgr/circuit/types.h"

namespace ptwgr {

/// A horizontal wire in a channel.  Channel c runs below row c (channel R is
/// above the top row of an R-row core).  Zero-length wires (lo == hi) are
/// vertical stubs crossing the channel and still occupy a track locally.
struct Wire {
  NetId net;
  std::uint32_t channel = 0;
  Coord lo = 0;
  Coord hi = 0;
  /// A switchable net segment (paper §2): both endpoints have electrically
  /// equivalent pins, so the wire may ride the channel above or below `row`.
  bool switchable = false;
  /// The row a switchable wire hugs; its legal channels are `row` (below)
  /// and `row + 1` (above).  Unused for fixed wires.
  std::uint32_t row = 0;

  Coord length() const { return hi - lo; }
};

}  // namespace ptwgr
