// Lee/Moore-style maze routing baseline.
//
// The paper's introduction positions TWGR against the graph-search global
// routers of its day (Lee '61, Moore '59, Nair et al. — its refs [6], [9],
// [11]), whose parallelizations it criticizes as order-dependent or
// two-pin-only.  This module implements that baseline honestly: a grid BFS
// router with congestion-aware costs that routes nets *sequentially* —
// multi-pin nets by iteratively connecting the nearest pin to the grown
// tree — so the order dependence and quality gap are measurable
// (bench/baseline_maze compares it against TWGR on the suite).
//
// Grid model: nodes are (channel, column) cells; horizontal moves occupy a
// channel cell (a track demand), vertical moves cross a row (a feedthrough
// demand), exactly the resources TWGR's metrics count.
#pragma once

#include <cstdint>
#include <vector>

#include "ptwgr/circuit/circuit.h"
#include "ptwgr/route/metrics.h"

namespace ptwgr {

struct MazeOptions {
  /// Grid column width (layout units), as in the TWGR coarse grid.
  Coord column_width = 32;
  /// Cost of entering a horizontal cell already used by u other nets:
  /// 1 + congestion_weight·u — congestion awareness is what made maze
  /// routers competitive at all.
  double congestion_weight = 2.0;
  /// Cost of a vertical move.  One row crossing inserts a feedthrough cell
  /// — a real widening of the row by several track pitches — so it is
  /// priced at many horizontal units.
  double via_cost = 24.0;
  /// Net visitation order: by id (deterministic).  Reversing exposes the
  /// order dependence the paper criticizes.
  bool reverse_net_order = false;
};

struct MazeResult {
  /// Comparable to RoutingMetrics: Σ per-channel max horizontal occupancy.
  std::int64_t track_count = 0;
  /// Total row crossings (feedthrough demand).
  std::int64_t feedthrough_count = 0;
  /// Total grid cells traversed (wirelength proxy in column units).
  std::int64_t path_cells = 0;
  /// Per-channel max occupancy.
  std::vector<std::int64_t> channel_density;
  /// Row crossings per row (each becomes a row-widening feedthrough cell).
  std::vector<std::int64_t> row_crossings;

  /// Area under the same model as RoutingMetrics: the widest row after
  /// feedthrough widening × (row heights + track pitch × tracks).
  std::int64_t estimate_area(const Circuit& circuit,
                             Coord feedthrough_width = 3) const;
};

/// Routes every net of `circuit` with sequential congestion-aware BFS.
MazeResult route_maze_baseline(const Circuit& circuit,
                               const MazeOptions& options = {});

}  // namespace ptwgr
