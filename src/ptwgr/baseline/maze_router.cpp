#include "ptwgr/baseline/maze_router.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_set>

#include "ptwgr/support/check.h"

namespace ptwgr {
namespace {

/// Flat grid of (channel, column) cells.
struct Grid {
  std::size_t channels;
  std::size_t columns;

  std::size_t cell(std::size_t channel, std::size_t column) const {
    return channel * columns + column;
  }
  std::size_t channel_of(std::size_t cell_id) const {
    return cell_id / columns;
  }
  std::size_t column_of(std::size_t cell_id) const {
    return cell_id % columns;
  }
  std::size_t size() const { return channels * columns; }
};

struct SearchState {
  double cost;
  std::size_t cell;
  friend bool operator>(const SearchState& a, const SearchState& b) {
    return a.cost > b.cost;
  }
};

}  // namespace

MazeResult route_maze_baseline(const Circuit& circuit,
                               const MazeOptions& options) {
  PTWGR_EXPECTS(options.column_width > 0);
  PTWGR_EXPECTS(circuit.num_rows() >= 1);

  Grid grid;
  grid.channels = circuit.num_channels();
  grid.columns = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             (circuit.core_width() + options.column_width - 1) /
             options.column_width));

  // Horizontal occupancy (distinct nets per cell) and row-crossing counts.
  std::vector<std::int32_t> occupancy(grid.size(), 0);
  std::vector<std::int32_t> crossings(circuit.num_rows() * grid.columns, 0);

  const auto column_of_x = [&](Coord x) {
    if (x < 0) return std::size_t{0};
    return std::min<std::size_t>(
        static_cast<std::size_t>(x / options.column_width),
        grid.columns - 1);
  };

  // The grid cells a pin can enter from (its row's adjacent channels,
  // restricted by the pin side).
  const auto pin_cells = [&](PinId pid) {
    std::vector<std::size_t> cells;
    const auto row =
        static_cast<std::size_t>(circuit.pin_row(pid).index());
    const std::size_t col = column_of_x(circuit.pin_x(pid));
    const PinSide side = circuit.pin(pid).side;
    const bool fake = circuit.pin(pid).is_fake();
    if (fake || side != PinSide::Top) cells.push_back(grid.cell(row, col));
    if (fake || side != PinSide::Bottom) {
      cells.push_back(grid.cell(row + 1, col));
    }
    return cells;
  };

  // Net order: sequential, by id — the order dependence the paper's intro
  // holds against this family of routers.
  std::vector<NetId> order;
  order.reserve(circuit.num_nets());
  for (std::size_t n = 0; n < circuit.num_nets(); ++n) {
    order.push_back(NetId{static_cast<std::uint32_t>(n)});
  }
  if (options.reverse_net_order) std::reverse(order.begin(), order.end());

  MazeResult result;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(grid.size());
  std::vector<std::uint32_t> parent(grid.size());
  constexpr std::uint32_t kNoParent =
      std::numeric_limits<std::uint32_t>::max();

  for (const NetId net : order) {
    const auto& pins = circuit.net(net).pins;
    if (pins.size() < 2) continue;

    // Tree cells grown so far, plus the per-net set of occupied horizontal
    // cells (a net pays for a cell once).
    std::unordered_set<std::size_t> tree;
    std::unordered_set<std::size_t> net_cells;
    for (const std::size_t cell : pin_cells(pins.front())) tree.insert(cell);

    for (std::size_t next = 1; next < pins.size(); ++next) {
      // Multi-target set: any entry cell of the next pin.
      std::unordered_set<std::size_t> targets;
      for (const std::size_t cell : pin_cells(pins[next])) {
        targets.insert(cell);
      }
      // Already connected (e.g. stacked pins)?
      bool connected = false;
      for (const std::size_t t : targets) {
        if (tree.count(t) != 0) {
          connected = true;
          break;
        }
      }
      if (connected) continue;

      // Multi-source Dijkstra from the tree.
      std::fill(dist.begin(), dist.end(), kInf);
      std::fill(parent.begin(), parent.end(), kNoParent);
      std::priority_queue<SearchState, std::vector<SearchState>,
                          std::greater<>>
          frontier;
      for (const std::size_t cell : tree) {
        dist[cell] = 0.0;
        frontier.push(SearchState{0.0, cell});
      }

      const auto enter_cost = [&](std::size_t from, std::size_t to) {
        const std::size_t cf = grid.channel_of(from);
        const std::size_t ct = grid.channel_of(to);
        if (cf == ct) {
          // Horizontal: congestion-aware track demand.
          return 1.0 + options.congestion_weight *
                           static_cast<double>(occupancy[to]);
        }
        // Vertical: crossing the row between the two channels.
        const std::size_t row = std::min(cf, ct);
        const std::size_t col = grid.column_of(to);
        return options.via_cost +
               options.congestion_weight *
                   static_cast<double>(crossings[row * grid.columns + col]);
      };

      std::size_t reached = grid.size();
      while (!frontier.empty()) {
        const SearchState top = frontier.top();
        frontier.pop();
        if (top.cost > dist[top.cell]) continue;
        if (targets.count(top.cell) != 0) {
          reached = top.cell;
          break;
        }
        const std::size_t c = grid.channel_of(top.cell);
        const std::size_t k = grid.column_of(top.cell);
        const auto relax = [&](std::size_t to) {
          const double cost = top.cost + enter_cost(top.cell, to);
          if (cost < dist[to]) {
            dist[to] = cost;
            parent[to] = static_cast<std::uint32_t>(top.cell);
            frontier.push(SearchState{cost, to});
          }
        };
        if (k > 0) relax(grid.cell(c, k - 1));
        if (k + 1 < grid.columns) relax(grid.cell(c, k + 1));
        if (c > 0) relax(grid.cell(c - 1, k));
        if (c + 1 < grid.channels) relax(grid.cell(c + 1, k));
      }
      PTWGR_CHECK_MSG(reached < grid.size(),
                      "maze router failed to reach a pin of net "
                          << net.value());

      // Walk the path back to the tree, committing resources.
      std::size_t cell = reached;
      while (cell < grid.size() && tree.count(cell) == 0) {
        tree.insert(cell);
        if (net_cells.insert(cell).second) {
          ++occupancy[cell];
          ++result.path_cells;
        }
        const std::uint32_t prev = parent[cell];
        if (prev != kNoParent) {
          const std::size_t cc = grid.channel_of(cell);
          const std::size_t pc = grid.channel_of(prev);
          if (cc != pc) {
            const std::size_t row = std::min(cc, pc);
            ++crossings[row * grid.columns + grid.column_of(cell)];
            ++result.feedthrough_count;
          }
          cell = prev;
        } else {
          break;
        }
      }
    }
  }

  result.channel_density.assign(grid.channels, 0);
  for (std::size_t c = 0; c < grid.channels; ++c) {
    for (std::size_t k = 0; k < grid.columns; ++k) {
      result.channel_density[c] = std::max<std::int64_t>(
          result.channel_density[c], occupancy[grid.cell(c, k)]);
    }
  }
  for (const auto d : result.channel_density) result.track_count += d;
  result.row_crossings.assign(circuit.num_rows(), 0);
  for (std::size_t row = 0; row < circuit.num_rows(); ++row) {
    for (std::size_t k = 0; k < grid.columns; ++k) {
      result.row_crossings[row] += crossings[row * grid.columns + k];
    }
  }
  return result;
}

std::int64_t MazeResult::estimate_area(const Circuit& circuit,
                                       Coord feedthrough_width) const {
  PTWGR_EXPECTS(row_crossings.size() == circuit.num_rows());
  Coord widest = 0;
  for (std::size_t row = 0; row < circuit.num_rows(); ++row) {
    widest = std::max(
        widest,
        circuit.row_width(RowId{static_cast<std::uint32_t>(row)}) +
            static_cast<Coord>(row_crossings[row]) * feedthrough_width);
  }
  Coord rows_height = 0;
  for (const Row& row : circuit.rows()) rows_height += row.height;
  return widest * (rows_height + kTrackPitch * track_count);
}

}  // namespace ptwgr
