// Left-edge channel routing (the detailed-routing stage downstream of TWGR).
//
// The global router's quality metric — channel density — is meaningful
// because a channel router must realize every channel in at least that many
// tracks.  The classic left-edge algorithm (Hashimoto & Stevens) assigns
// net intervals to tracks greedily by left endpoint and, absent vertical
// constraints, provably uses *exactly* the channel density.  This module
// provides that assignment, both as a real detailed-routing substrate and
// as a cross-check: for every routed channel, LEA's track count must equal
// the density the metrics report.
#pragma once

#include <cstdint>
#include <vector>

#include "ptwgr/circuit/circuit.h"
#include "ptwgr/route/wire.h"
#include "ptwgr/support/interval.h"

namespace ptwgr {

/// One net's merged span placed on a track.
struct PlacedInterval {
  std::uint32_t net = 0;
  Interval span;
  std::size_t track = 0;
};

/// Track assignment for one channel.
struct ChannelTracks {
  std::size_t num_tracks = 0;
  std::vector<PlacedInterval> placed;

  /// True if no two intervals on one track overlap (post-condition check).
  bool valid() const;
};

/// Assigns (net, interval) pairs to tracks with the left-edge algorithm.
/// Intervals of the same net are merged first (a net shares one track
/// wherever its spans meet), exactly as the density metric counts them.
ChannelTracks assign_tracks_left_edge(
    std::vector<std::pair<std::uint32_t, Interval>> intervals);

/// Full-routing track assignment: one ChannelTracks per channel.
struct DetailedRouting {
  std::vector<ChannelTracks> channels;

  std::int64_t total_tracks() const;
};

DetailedRouting assign_all_tracks(const Circuit& circuit,
                                  const std::vector<Wire>& wires);

}  // namespace ptwgr
