#include "ptwgr/detail/left_edge.h"

#include <algorithm>

#include "ptwgr/support/check.h"

namespace ptwgr {

bool ChannelTracks::valid() const {
  // Group by track and check pairwise disjointness (intervals per track are
  // few; the quadratic check is fine for validation purposes).
  std::vector<std::vector<const PlacedInterval*>> by_track(num_tracks);
  for (const PlacedInterval& p : placed) {
    if (p.track >= num_tracks) return false;
    by_track[p.track].push_back(&p);
  }
  for (const auto& track : by_track) {
    for (std::size_t i = 0; i < track.size(); ++i) {
      for (std::size_t j = i + 1; j < track.size(); ++j) {
        const Interval& a = track[i]->span;
        const Interval& b = track[j]->span;
        if (a.lo < b.hi && b.lo < a.hi) return false;
      }
    }
  }
  return true;
}

ChannelTracks assign_tracks_left_edge(
    std::vector<std::pair<std::uint32_t, Interval>> intervals) {
  ChannelTracks result;
  if (intervals.empty()) return result;

  // Merge per net first: one net occupies a single track across touching
  // spans, mirroring the density metric's per-net union.
  std::sort(intervals.begin(), intervals.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<std::uint32_t, Interval>> merged;
  std::vector<Interval> net_spans;
  std::size_t i = 0;
  while (i < intervals.size()) {
    const std::uint32_t net = intervals[i].first;
    net_spans.clear();
    for (; i < intervals.size() && intervals[i].first == net; ++i) {
      net_spans.push_back(intervals[i].second);
    }
    for (const Interval& span : merge_intervals(net_spans)) {
      merged.emplace_back(net, span);
    }
  }

  // Left-edge: sort by left endpoint; place each interval on the first track
  // whose rightmost end is at or before the interval's start.
  std::sort(merged.begin(), merged.end(), [](const auto& a, const auto& b) {
    if (a.second.lo != b.second.lo) return a.second.lo < b.second.lo;
    return a.second.hi < b.second.hi;
  });

  std::vector<std::int64_t> track_end;  // rightmost occupied x per track
  result.placed.reserve(merged.size());
  for (const auto& [net, span] : merged) {
    std::size_t track = track_end.size();
    for (std::size_t t = 0; t < track_end.size(); ++t) {
      if (track_end[t] <= span.lo) {
        track = t;
        break;
      }
    }
    if (track == track_end.size()) {
      track_end.push_back(span.hi);
    } else {
      track_end[track] = span.hi;
    }
    result.placed.push_back(PlacedInterval{net, span, track});
  }
  result.num_tracks = track_end.size();
  PTWGR_ENSURES(result.valid());
  return result;
}

std::int64_t DetailedRouting::total_tracks() const {
  std::int64_t total = 0;
  for (const ChannelTracks& channel : channels) {
    total += static_cast<std::int64_t>(channel.num_tracks);
  }
  return total;
}

DetailedRouting assign_all_tracks(const Circuit& circuit,
                                  const std::vector<Wire>& wires) {
  const std::size_t num_channels = circuit.num_channels();
  std::vector<std::vector<std::pair<std::uint32_t, Interval>>> per_channel(
      num_channels);
  for (const Wire& wire : wires) {
    PTWGR_CHECK_MSG(wire.channel < num_channels, "wire channel out of range");
    per_channel[wire.channel].emplace_back(wire.net.value(),
                                           Interval{wire.lo, wire.hi});
  }
  DetailedRouting routing;
  routing.channels.reserve(num_channels);
  for (auto& entries : per_channel) {
    routing.channels.push_back(assign_tracks_left_edge(std::move(entries)));
  }
  return routing;
}

}  // namespace ptwgr
