// Circuit statistics, as reported in the paper's Table 1 and used by the
// pin-number-weight partition discussion (§5).
#pragma once

#include <cstddef>
#include <string>

#include "ptwgr/circuit/circuit.h"

namespace ptwgr {

struct CircuitStats {
  std::size_t rows = 0;
  std::size_t cells = 0;
  std::size_t pins = 0;
  std::size_t nets = 0;
  std::size_t max_pins_on_net = 0;
  double mean_pins_per_net = 0.0;
  /// Fraction of nets with at most 5 pins (the paper notes 99% for
  /// avq.large despite its >3000-pin clock net).
  double fraction_nets_small = 0.0;
  Coord core_width = 0;

  /// One-line rendering for table rows.
  std::string to_string() const;
};

CircuitStats compute_stats(const Circuit& circuit);

}  // namespace ptwgr
