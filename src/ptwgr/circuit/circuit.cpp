#include "ptwgr/circuit/circuit.h"

#include <algorithm>

namespace ptwgr {

Coord Circuit::core_width() const {
  Coord width = 0;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    width = std::max(width, row_width(RowId{static_cast<std::uint32_t>(r)}));
  }
  return width;
}

Coord Circuit::row_width(RowId id) const {
  const Row& r = rows_.at(id.index());
  if (r.cells.empty()) return 0;
  const Cell& last = cells_.at(r.cells.back().index());
  return last.x + last.width;
}

std::size_t Circuit::num_feedthrough_cells() const {
  return static_cast<std::size_t>(
      std::count_if(cells_.begin(), cells_.end(), [](const Cell& c) {
        return c.kind == CellKind::Feedthrough;
      }));
}

RowId Circuit::add_row(Coord height) {
  PTWGR_EXPECTS(height > 0);
  rows_.push_back(Row{height, {}});
  return RowId{static_cast<std::uint32_t>(rows_.size() - 1)};
}

CellId Circuit::append_cell(RowId row, Coord width, CellKind kind) {
  PTWGR_EXPECTS(row.index() < rows_.size());
  PTWGR_EXPECTS(width > 0);
  Cell cell;
  cell.row = row;
  cell.width = width;
  cell.kind = kind;
  cells_.push_back(std::move(cell));
  const CellId id{static_cast<std::uint32_t>(cells_.size() - 1)};
  rows_[row.index()].cells.push_back(id);
  return id;
}

NetId Circuit::add_net() {
  nets_.emplace_back();
  return NetId{static_cast<std::uint32_t>(nets_.size() - 1)};
}

PinId Circuit::add_cell_pin(CellId cell, NetId net, Coord offset,
                            PinSide side) {
  PTWGR_EXPECTS(cell.index() < cells_.size());
  PTWGR_EXPECTS(net.index() < nets_.size());
  Cell& c = cells_[cell.index()];
  PTWGR_EXPECTS(offset >= 0 && offset <= c.width);
  Pin pin;
  pin.cell = cell;
  pin.net = net;
  pin.offset = offset;
  pin.side = side;
  pins_.push_back(pin);
  const PinId id{static_cast<std::uint32_t>(pins_.size() - 1)};
  c.pins.push_back(id);
  nets_[net.index()].pins.push_back(id);
  return id;
}

PinId Circuit::add_fake_pin(NetId net, RowId row, Coord x) {
  PTWGR_EXPECTS(net.index() < nets_.size());
  PTWGR_EXPECTS(row.index() < rows_.size());
  Pin pin;
  pin.net = net;
  // Fake pins are reachable from both channels of their row: they stand in
  // for a wire crossing the row boundary, not for physical cell geometry.
  pin.side = PinSide::Both;
  pin.fake_row = row;
  pin.fake_x = x;
  pins_.push_back(pin);
  const PinId id{static_cast<std::uint32_t>(pins_.size() - 1)};
  nets_[net.index()].pins.push_back(id);
  return id;
}

CellId Circuit::insert_feedthrough(RowId row, Coord x, Coord width) {
  PTWGR_EXPECTS(row.index() < rows_.size());
  PTWGR_EXPECTS(width > 0);
  Row& r = rows_[row.index()];
  // Find the insertion point: the first cell whose left edge is >= x.
  const auto it = std::lower_bound(
      r.cells.begin(), r.cells.end(), x, [&](CellId cid, Coord target) {
        return cells_[cid.index()].x < target;
      });
  const std::size_t pos = static_cast<std::size_t>(it - r.cells.begin());
  // The feedthrough lands immediately after the previous cell's right edge
  // (or at x if there is slack).
  Coord left = x;
  if (pos > 0) {
    const Cell& prev = cells_[r.cells[pos - 1].index()];
    left = std::max(left, prev.x + prev.width);
  }

  Cell ft;
  ft.row = row;
  ft.x = left;
  ft.width = width;
  ft.kind = CellKind::Feedthrough;
  cells_.push_back(std::move(ft));
  const CellId id{static_cast<std::uint32_t>(cells_.size() - 1)};
  r.cells.insert(r.cells.begin() + static_cast<std::ptrdiff_t>(pos), id);

  // Shift subsequent cells rightward just enough to stay non-overlapping;
  // existing slack in the row absorbs part of the insertion.
  Coord min_left = left + width;
  for (std::size_t i = pos + 1; i < r.cells.size(); ++i) {
    Cell& c = cells_[r.cells[i].index()];
    if (c.x < min_left) c.x = min_left;
    min_left = c.x + c.width;
  }
  return id;
}

void Circuit::pack_row(RowId row, Coord spacing) {
  Row& r = rows_.at(row.index());
  Coord x = 0;
  for (const CellId cid : r.cells) {
    Cell& c = cells_[cid.index()];
    c.x = x;
    x += c.width + spacing;
  }
}

void Circuit::pack(Coord spacing) {
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    pack_row(RowId{static_cast<std::uint32_t>(r)}, spacing);
  }
}

void Circuit::validate() const {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const Cell& c = cells_[i];
    PTWGR_CHECK_MSG(c.row.index() < rows_.size(), "cell " << i << " row");
    PTWGR_CHECK_MSG(c.width > 0, "cell " << i << " width");
    for (const PinId pid : c.pins) {
      PTWGR_CHECK_MSG(pid.index() < pins_.size(), "cell " << i << " pin id");
      PTWGR_CHECK_MSG(pins_[pid.index()].cell.index() == i,
                      "pin/cell back-reference");
    }
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const Row& row = rows_[r];
    Coord prev_right = std::numeric_limits<Coord>::min();
    for (const CellId cid : row.cells) {
      PTWGR_CHECK_MSG(cid.index() < cells_.size(), "row " << r << " cell id");
      const Cell& c = cells_[cid.index()];
      PTWGR_CHECK_MSG(c.row.index() == r, "cell/row back-reference");
      PTWGR_CHECK_MSG(c.x >= prev_right || prev_right ==
                          std::numeric_limits<Coord>::min(),
                      "row " << r << " cells overlap or are unsorted");
      prev_right = c.x + c.width;
    }
  }
  for (std::size_t p = 0; p < pins_.size(); ++p) {
    const Pin& pin = pins_[p];
    PTWGR_CHECK_MSG(pin.net.index() < nets_.size(), "pin " << p << " net");
    if (pin.is_fake()) {
      PTWGR_CHECK_MSG(pin.fake_row.index() < rows_.size(),
                      "fake pin " << p << " row");
    } else {
      const Cell& c = cells_.at(pin.cell.index());
      PTWGR_CHECK_MSG(pin.offset >= 0 && pin.offset <= c.width,
                      "pin " << p << " offset outside cell");
    }
    const auto& net_pins = nets_[pin.net.index()].pins;
    PTWGR_CHECK_MSG(
        std::find(net_pins.begin(), net_pins.end(),
                  PinId{static_cast<std::uint32_t>(p)}) != net_pins.end(),
        "pin/net back-reference");
  }
  for (std::size_t n = 0; n < nets_.size(); ++n) {
    for (const PinId pid : nets_[n].pins) {
      PTWGR_CHECK_MSG(pid.index() < pins_.size(), "net " << n << " pin id");
      PTWGR_CHECK_MSG(pins_[pid.index()].net.index() == n,
                      "net/pin back-reference");
    }
  }
}

}  // namespace ptwgr
