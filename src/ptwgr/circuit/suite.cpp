#include "ptwgr/circuit/suite.h"

#include <algorithm>
#include <cmath>

#include "ptwgr/support/check.h"

namespace ptwgr {
namespace {

/// Published characteristics of the MCNC circuits (Table 1 reconstruction;
/// the paper's OCR dropped the digits, so these come from the MCNC benchmark
/// documentation and other TimberWolf-era papers using the same set).
struct McncSpec {
  const char* name;
  std::size_t rows;
  std::size_t cells;
  std::size_t nets;
  std::size_t pins;
  /// Estimated serial peak footprint in MB.  Reconstructed so that exactly
  /// the circuits the paper could not run serially on the 32 MB/node
  /// Paragon (industry3, avq.large — Table 5 footnote) exceed that limit.
  std::size_t serial_memory_mb;
  std::vector<std::size_t> giant_nets;  // explicit huge nets (clock lines)
};

const std::vector<McncSpec>& specs() {
  static const std::vector<McncSpec> kSpecs = {
      {"primary2", 28, 3014, 3029, 11219, 6, {}},
      {"biomed", 46, 6514, 5742, 21040, 11, {}},
      {"industry2", 72, 12637, 13419, 48404, 25, {}},
      {"industry3", 54, 15406, 21924, 65791, 36, {}},
      {"avq.small", 80, 21918, 22124, 76231, 31, {1100}},
      {"avq.large", 86, 25178, 25384, 82751, 42, {3200, 900}},
  };
  return kSpecs;
}

SuiteEntry make_entry(const McncSpec& spec, double scale) {
  PTWGR_EXPECTS(scale > 0.0 && scale <= 1.0);
  const auto scaled = [scale](std::size_t v) {
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(
               static_cast<double>(v) * scale)));
  };
  SuiteEntry entry;
  entry.name = spec.name;
  GeneratorConfig& cfg = entry.config;
  // Rows shrink with sqrt(scale) so scaled circuits keep a 2-D aspect.
  cfg.num_rows = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::llround(
             static_cast<double>(spec.rows) * std::sqrt(scale))));
  cfg.num_cells = std::max(cfg.num_rows, scaled(spec.cells));
  std::size_t giant_pin_total = 0;
  for (const std::size_t g : spec.giant_nets) {
    const std::size_t gp = std::max<std::size_t>(2, scaled(g));
    cfg.giant_net_pins.push_back(gp);
    giant_pin_total += gp;
  }
  cfg.num_nets = std::max<std::size_t>(1, scaled(spec.nets));
  const std::size_t ordinary_pins =
      std::max<std::size_t>(2 * cfg.num_nets, scaled(spec.pins) -
          std::min(scaled(spec.pins), giant_pin_total));
  cfg.mean_pins_per_net =
      std::max(2.0, static_cast<double>(ordinary_pins) /
                        static_cast<double>(cfg.num_nets));
  // Deterministic but distinct seeds per circuit.
  cfg.seed = std::hash<std::string>{}(entry.name) | 1ULL;

  entry.estimated_memory_bytes = scaled(spec.serial_memory_mb * 1024 * 1024);
  return entry;
}

}  // namespace

std::vector<SuiteEntry> benchmark_suite(double scale) {
  std::vector<SuiteEntry> suite;
  suite.reserve(specs().size());
  for (const McncSpec& spec : specs()) {
    suite.push_back(make_entry(spec, scale));
  }
  return suite;
}

SuiteEntry suite_entry(const std::string& name, double scale) {
  for (const McncSpec& spec : specs()) {
    if (name == spec.name) return make_entry(spec, scale);
  }
  PTWGR_CHECK_MSG(false, "unknown suite circuit '" << name << "'");
  // Unreachable; silences the compiler.
  return SuiteEntry{};
}

Circuit build_suite_circuit(const SuiteEntry& entry) {
  return generate_circuit(entry.config);
}

Circuit small_test_circuit(std::uint64_t seed, std::size_t rows,
                           std::size_t cells_per_row) {
  GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.num_rows = rows;
  cfg.num_cells = rows * cells_per_row;
  cfg.num_nets = cfg.num_cells + cfg.num_cells / 10;
  cfg.mean_pins_per_net = 3.2;
  return generate_circuit(cfg);
}

}  // namespace ptwgr
