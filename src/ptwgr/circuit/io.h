// Plain-text circuit serialization.
//
// A line-oriented format for persisting generated circuits and for feeding
// hand-written netlists into the router:
//
//   PTWGR-CIRCUIT 1
//   ROWS <n>
//   ROW <height>                         (n times)
//   CELLS <n>
//   CELL <row-index> <width>             (n times)
//   NETS <n>
//   NET <pin-count>                      (n times, followed by its pins)
//   PIN <cell-index> <offset> <T|B|E>    (E = equivalent / both sides)
//
// Fake pins are a transient routing artifact and are deliberately not part
// of the interchange format.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "ptwgr/circuit/circuit.h"

namespace ptwgr {

/// Thrown on malformed circuit files.
class CircuitIoError : public std::runtime_error {
 public:
  explicit CircuitIoError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Writes `circuit` in the format above.  Feedthrough cells and fake pins
/// are skipped: the format captures the *input* netlist, not routing state.
void write_circuit(std::ostream& out, const Circuit& circuit);
void write_circuit_file(const std::string& path, const Circuit& circuit);

/// Parses a circuit; throws CircuitIoError on malformed input.
Circuit read_circuit(std::istream& in);
Circuit read_circuit_file(const std::string& path);

}  // namespace ptwgr
