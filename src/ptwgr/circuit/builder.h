// Validating construction front-end for Circuit.
//
// Keeps netlist construction (tests, the generator, the file reader) honest:
// ids are checked as they are used, rows are packed at build time, and the
// finished circuit passes Circuit::validate().
#pragma once

#include "ptwgr/circuit/circuit.h"

namespace ptwgr {

class CircuitBuilder {
 public:
  /// Default row height in layout units.
  static constexpr Coord kDefaultRowHeight = 16;

  RowId add_row(Coord height = kDefaultRowHeight) {
    return circuit_.add_row(height);
  }

  CellId add_cell(RowId row, Coord width) {
    return circuit_.append_cell(row, width, CellKind::Standard);
  }

  NetId add_net() { return circuit_.add_net(); }

  PinId add_pin(CellId cell, NetId net, Coord offset, PinSide side) {
    return circuit_.add_cell_pin(cell, net, offset, side);
  }

  /// Packs every row with `spacing` between cells, validates, and releases
  /// the circuit.  The builder is spent afterwards.
  Circuit build(Coord spacing = 0) && {
    circuit_.pack(spacing);
    circuit_.validate();
    return std::move(circuit_);
  }

 private:
  Circuit circuit_;
};

}  // namespace ptwgr
