// Strong identifier and enum types for the standard-cell circuit model.
//
// A circuit is rows of cells; cells carry pins; nets are pin lists (paper
// §4).  All cross-references are index-based ids — stable, compact, and
// trivially serializable across ranks — with a tag parameter so a RowId can
// never be passed where a NetId is expected.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace ptwgr {

/// Layout coordinates (abstract units; one unit ≈ one routing-pitch).
using Coord = std::int64_t;

namespace detail {
struct RowTag;
struct CellTag;
struct PinTag;
struct NetTag;
}  // namespace detail

/// Tagged index wrapper.  Default-constructed ids are invalid.
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t value) : value_(value) {}

  constexpr bool valid() const { return value_ != kInvalid; }
  constexpr std::uint32_t value() const { return value_; }
  constexpr std::size_t index() const {
    return static_cast<std::size_t>(value_);
  }

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  static constexpr std::uint32_t kInvalid =
      std::numeric_limits<std::uint32_t>::max();
  std::uint32_t value_ = kInvalid;
};

using RowId = Id<detail::RowTag>;
using CellId = Id<detail::CellTag>;
using PinId = Id<detail::PinTag>;
using NetId = Id<detail::NetTag>;

/// Which side(s) of the cell a pin is accessible from.  `Both` marks an
/// electrically equivalent pin pair (paper §2): wires ending on such pins
/// may use the channel above or below the row, making segments switchable.
enum class PinSide : std::uint8_t { Top = 0, Bottom = 1, Both = 2 };

/// Feedthrough cells are inserted by the router (step 3); standard cells come
/// from the netlist.
enum class CellKind : std::uint8_t { Standard = 0, Feedthrough = 1 };

}  // namespace ptwgr

namespace std {
template <typename Tag>
struct hash<ptwgr::Id<Tag>> {
  size_t operator()(ptwgr::Id<Tag> id) const noexcept {
    return std::hash<uint32_t>{}(id.value());
  }
};
}  // namespace std
