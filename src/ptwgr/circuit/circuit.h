// The standard-cell circuit model: rows of cells, pins, nets.
//
// This is the substrate every routing step operates on.  The structure is
// mutable in exactly the ways TWGR needs: the feedthrough-assignment step
// inserts feedthrough cells into rows (shifting cells rightwards and adding
// pins to nets), and the parallel algorithms add *fake pins* — pins that sit
// at a partition-boundary coordinate without being attached to any cell
// (paper §4, Fig. 2).
#pragma once

#include <cstdint>
#include <vector>

#include "ptwgr/circuit/types.h"
#include "ptwgr/support/check.h"

namespace ptwgr {

/// A pin either sits on a cell (offset from the cell's left edge) or is a
/// fake/boundary pin with an absolute position.
struct Pin {
  CellId cell;      ///< invalid for fake pins
  NetId net;
  Coord offset = 0; ///< from cell left edge (cell pins only)
  PinSide side = PinSide::Top;
  // Fake-pin fields (used when cell is invalid):
  RowId fake_row;
  Coord fake_x = 0;

  bool is_fake() const { return !cell.valid(); }
};

struct Cell {
  RowId row;
  Coord x = 0;      ///< left edge, set by placement packing
  Coord width = 0;
  CellKind kind = CellKind::Standard;
  std::vector<PinId> pins;
};

struct Row {
  Coord height = 0;
  std::vector<CellId> cells;  ///< left-to-right order
};

struct Net {
  std::vector<PinId> pins;
};

/// Standard-cell circuit.  R rows imply R+1 channels: channel c runs below
/// row c, channel R above the top row.
class Circuit {
 public:
  // --- sizes ------------------------------------------------------------
  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cells() const { return cells_.size(); }
  std::size_t num_pins() const { return pins_.size(); }
  std::size_t num_nets() const { return nets_.size(); }
  std::size_t num_channels() const { return rows_.size() + 1; }

  // --- element access ----------------------------------------------------
  const Row& row(RowId id) const { return rows_.at(id.index()); }
  const Cell& cell(CellId id) const { return cells_.at(id.index()); }
  const Pin& pin(PinId id) const { return pins_.at(id.index()); }
  const Net& net(NetId id) const { return nets_.at(id.index()); }

  const std::vector<Row>& rows() const { return rows_; }
  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<Pin>& pins() const { return pins_; }
  const std::vector<Net>& nets() const { return nets_; }

  // --- derived geometry ---------------------------------------------------
  /// Absolute x of a pin (cell.x + offset, or the fake position).
  Coord pin_x(PinId id) const {
    const Pin& p = pins_.at(id.index());
    if (p.is_fake()) return p.fake_x;
    return cells_.at(p.cell.index()).x + p.offset;
  }

  /// Row a pin belongs to.
  RowId pin_row(PinId id) const {
    const Pin& p = pins_.at(id.index());
    if (p.is_fake()) return p.fake_row;
    return cells_.at(p.cell.index()).row;
  }

  /// Right edge of the widest row (the routable core width).
  Coord core_width() const;

  /// Right edge of one row (x + width of its last cell; 0 if empty).
  Coord row_width(RowId id) const;

  /// Number of feedthrough cells across all rows.
  std::size_t num_feedthrough_cells() const;

  // --- construction (used by CircuitBuilder and the router) --------------
  RowId add_row(Coord height);
  /// Appends a cell at the right end of a row (x assigned by pack_row or
  /// explicitly later).
  CellId append_cell(RowId row, Coord width, CellKind kind);
  NetId add_net();
  PinId add_cell_pin(CellId cell, NetId net, Coord offset, PinSide side);
  /// Fake/boundary pin: belongs to a net and a row but no cell (paper Fig 2).
  PinId add_fake_pin(NetId net, RowId row, Coord x);

  /// Inserts a feedthrough cell of `width` into `row` so that its left edge
  /// lands at or after `x`, shifting all cells to its right.  Returns the new
  /// cell; the caller then adds its (Both-sided) pin.  This is the operation
  /// that widens rows — the area cost the coarse-routing step minimizes.
  CellId insert_feedthrough(RowId row, Coord x, Coord width);

  /// Sets a cell's absolute position directly (sub-circuit extraction copies
  /// global placements).  The caller is responsible for keeping the row
  /// ordered; validate() checks.
  void set_cell_position(CellId cell, Coord x) {
    cells_.at(cell.index()).x = x;
  }

  /// Re-packs a row left-to-right: x(i+1) = x(i) + width(i) + spacing.
  void pack_row(RowId row, Coord spacing = 0);
  /// Packs every row.
  void pack(Coord spacing = 0);

  /// Structural validation; throws CheckError on dangling ids, pins outside
  /// cells, unsorted rows, etc.
  void validate() const;

 private:
  std::vector<Row> rows_;
  std::vector<Cell> cells_;
  std::vector<Pin> pins_;
  std::vector<Net> nets_;
};

}  // namespace ptwgr
