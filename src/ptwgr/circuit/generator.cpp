#include "ptwgr/circuit/generator.h"

#include <algorithm>
#include <cmath>

#include "ptwgr/circuit/builder.h"
#include "ptwgr/support/rng.h"

namespace ptwgr {
namespace {

/// Approximate standard normal via the sum of three uniforms (Irwin–Hall
/// shifted); cheap, deterministic, and plenty for placement jitter.
double next_gaussian(Rng& rng) {
  return (rng.next_double() + rng.next_double() + rng.next_double() - 1.5) *
         2.0;
}

/// Pins per ordinary net: 2 + geometric tail tuned to the requested mean.
std::size_t draw_net_degree(Rng& rng, double mean) {
  const double tail_mean = std::max(0.05, mean - 2.0);
  // Geometric on {0,1,2,...} with mean tail_mean: p = 1/(1+mean).
  const double p = 1.0 / (1.0 + tail_mean);
  std::size_t extra = 0;
  while (!rng.next_bool(p) && extra < 64) ++extra;
  return 2 + extra;
}

PinSide draw_side(Rng& rng, double equivalent_fraction) {
  if (rng.next_bool(equivalent_fraction)) return PinSide::Both;
  return rng.next_bool(0.5) ? PinSide::Top : PinSide::Bottom;
}

}  // namespace

Circuit generate_circuit(const GeneratorConfig& config) {
  PTWGR_EXPECTS(config.num_rows >= 1);
  PTWGR_EXPECTS(config.num_cells >= config.num_rows);
  PTWGR_EXPECTS(config.num_nets >= 1);
  PTWGR_EXPECTS(config.mean_pins_per_net >= 2.0);
  PTWGR_EXPECTS(config.min_cell_width > 0);
  PTWGR_EXPECTS(config.max_cell_width >= config.min_cell_width);

  Rng rng(config.seed);
  CircuitBuilder builder;

  // Rows, then cells dealt round-robin so rows have near-equal cell counts —
  // standard-cell placers balance row widths the same way.
  std::vector<RowId> rows;
  rows.reserve(config.num_rows);
  for (std::size_t r = 0; r < config.num_rows; ++r) {
    rows.push_back(builder.add_row());
  }
  std::vector<std::vector<CellId>> cells_by_row(config.num_rows);
  for (std::size_t i = 0; i < config.num_cells; ++i) {
    const std::size_t r = i % config.num_rows;
    const Coord width = static_cast<Coord>(rng.next_int(
        config.min_cell_width, config.max_cell_width));
    cells_by_row[r].push_back(builder.add_cell(rows[r], width));
  }

  const auto cells_in_row = [&](std::size_t r) -> const std::vector<CellId>& {
    return cells_by_row[r];
  };

  // Picks a cell near fractional position `frac` (0..1) within row r.
  const auto pick_cell = [&](std::size_t r, double frac) {
    const auto& row_cells = cells_in_row(r);
    const auto n = static_cast<double>(row_cells.size());
    auto idx = static_cast<std::ptrdiff_t>(std::llround(frac * (n - 1.0)));
    idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                     static_cast<std::ptrdiff_t>(n) - 1);
    return row_cells[static_cast<std::size_t>(idx)];
  };

  const auto add_net_pin = [&](NetId net, std::size_t r, double frac) {
    const CellId cell = pick_cell(r, frac);
    // Offset is re-derived from the final packed width at pin-add time; the
    // builder validates 0 <= offset <= width.
    const Coord width = config.min_cell_width;  // safe lower bound
    const Coord offset = static_cast<Coord>(rng.next_int(0, width));
    builder.add_pin(cell, net, offset,
                    draw_side(rng, config.equivalent_pin_fraction));
  };

  // Ordinary nets: cluster center + gaussian spread.
  const auto nrows = static_cast<double>(config.num_rows);
  for (std::size_t n = 0; n < config.num_nets; ++n) {
    const NetId net = builder.add_net();
    const double center_row = rng.next_double() * (nrows - 1.0);
    const double center_x = rng.next_double();
    const std::size_t degree =
        draw_net_degree(rng, config.mean_pins_per_net);
    for (std::size_t k = 0; k < degree; ++k) {
      double row_f = center_row + next_gaussian(rng) * config.row_spread;
      row_f = std::clamp(row_f, 0.0, nrows - 1.0);
      const auto r = static_cast<std::size_t>(std::llround(row_f));
      double frac = center_x + next_gaussian(rng) * config.x_spread;
      frac = std::clamp(frac, 0.0, 1.0);
      add_net_pin(net, r, frac);
    }
  }

  // Giant nets (clock lines): pins spread uniformly over the whole core.
  for (const std::size_t degree : config.giant_net_pins) {
    PTWGR_EXPECTS(degree >= 2);
    const NetId net = builder.add_net();
    for (std::size_t k = 0; k < degree; ++k) {
      const std::size_t r = rng.next_index(config.num_rows);
      add_net_pin(net, r, rng.next_double());
    }
  }

  return std::move(builder).build();
}

}  // namespace ptwgr
