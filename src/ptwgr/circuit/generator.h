// Synthetic standard-cell circuit generator.
//
// The MCNC layout-synthesis benchmarks the paper evaluates are not
// redistributable and are not present in this environment, so the benchmark
// suite generates circuits matched to each benchmark's published
// characteristics (rows/cells/nets/pins) and to the structural properties the
// routing algorithms are sensitive to:
//   * pins-per-net distribution — mostly 2–4 pin nets with a heavy tail, and
//     optional giant nets (avq.large's >3000-pin clock line, paper §5);
//   * locality — a net's pins cluster around a (row, x) center, so nets have
//     bounded vertical span, which is what makes contiguous row partitioning
//     effective (paper §3);
//   * electrically equivalent pins — a configurable fraction of pins is
//     accessible from both cell sides, creating switchable segments (§2).
#pragma once

#include <cstdint>
#include <vector>

#include "ptwgr/circuit/circuit.h"

namespace ptwgr {

struct GeneratorConfig {
  std::uint64_t seed = 1;
  std::size_t num_rows = 8;
  std::size_t num_cells = 400;
  std::size_t num_nets = 420;
  /// Mean pins per net for ordinary nets (min is 2; geometric tail above).
  double mean_pins_per_net = 3.5;
  /// Std-dev of a net's pin row around its cluster center, in rows.
  double row_spread = 1.5;
  /// Std-dev of a net's pin x around its cluster center, as a fraction of
  /// the core width.
  double x_spread = 0.08;
  /// Probability that a pin is accessible from both cell sides.  Row-based
  /// standard cells of the TimberWolf era exposed most signal pins on both
  /// sides, which is what makes the switchable-segment step (and its
  /// parallel blindness problem, paper §5) matter.
  double equivalent_pin_fraction = 0.65;
  /// Cell widths are drawn uniformly from [min, max].
  Coord min_cell_width = 4;
  Coord max_cell_width = 12;
  /// Extra nets with an explicit pin count (clock lines etc.); their pins
  /// are spread across the whole core.
  std::vector<std::size_t> giant_net_pins;
};

/// Generates a packed, validated circuit.  Deterministic in `config.seed`.
Circuit generate_circuit(const GeneratorConfig& config);

}  // namespace ptwgr
