#include "ptwgr/circuit/io.h"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "ptwgr/circuit/builder.h"

namespace ptwgr {
namespace {

constexpr const char* kMagic = "PTWGR-CIRCUIT";
constexpr int kVersion = 1;

char side_code(PinSide side) {
  switch (side) {
    case PinSide::Top: return 'T';
    case PinSide::Bottom: return 'B';
    case PinSide::Both: return 'E';
  }
  return '?';
}

PinSide parse_side(const std::string& token) {
  if (token == "T") return PinSide::Top;
  if (token == "B") return PinSide::Bottom;
  if (token == "E") return PinSide::Both;
  throw CircuitIoError("bad pin side '" + token + "'");
}

/// Reads one non-empty, non-comment line; throws at EOF.
std::string next_line(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return line;
  }
  throw CircuitIoError("unexpected end of file");
}

template <typename T>
T parse_field(std::istringstream& is, const char* what) {
  T value{};
  if (!(is >> value)) {
    throw CircuitIoError(std::string("expected ") + what);
  }
  return value;
}

void expect_keyword(std::istringstream& is, const std::string& keyword) {
  std::string token;
  if (!(is >> token) || token != keyword) {
    throw CircuitIoError("expected keyword '" + keyword + "', got '" + token +
                         "'");
  }
}

}  // namespace

void write_circuit(std::ostream& out, const Circuit& circuit) {
  out << kMagic << ' ' << kVersion << '\n';

  out << "ROWS " << circuit.num_rows() << '\n';
  for (const Row& row : circuit.rows()) {
    out << "ROW " << row.height << '\n';
  }

  // Persist only standard cells; remap ids densely in output order.
  std::unordered_map<std::uint32_t, std::size_t> cell_remap;
  std::size_t num_standard = 0;
  for (const Cell& cell : circuit.cells()) {
    if (cell.kind == CellKind::Standard) ++num_standard;
  }
  out << "CELLS " << num_standard << '\n';
  for (std::size_t i = 0; i < circuit.num_cells(); ++i) {
    const Cell& cell = circuit.cells()[i];
    if (cell.kind != CellKind::Standard) continue;
    cell_remap.emplace(static_cast<std::uint32_t>(i), cell_remap.size());
    out << "CELL " << cell.row.value() << ' ' << cell.width << '\n';
  }

  out << "NETS " << circuit.num_nets() << '\n';
  for (const Net& net : circuit.nets()) {
    // Count persistable pins first (skip fakes and feedthrough pins).
    std::vector<const Pin*> pins;
    for (const PinId pid : net.pins) {
      const Pin& pin = circuit.pin(pid);
      if (pin.is_fake()) continue;
      if (circuit.cell(pin.cell).kind != CellKind::Standard) continue;
      pins.push_back(&pin);
    }
    out << "NET " << pins.size() << '\n';
    for (const Pin* pin : pins) {
      out << "PIN " << cell_remap.at(pin->cell.value()) << ' ' << pin->offset
          << ' ' << side_code(pin->side) << '\n';
    }
  }
}

void write_circuit_file(const std::string& path, const Circuit& circuit) {
  std::ofstream out(path);
  if (!out) throw CircuitIoError("cannot open '" + path + "' for writing");
  write_circuit(out, circuit);
  if (!out) throw CircuitIoError("write to '" + path + "' failed");
}

namespace {

Circuit read_circuit_impl(std::istream& in) {
  CircuitBuilder builder;

  std::istringstream rows_header(next_line(in));
  expect_keyword(rows_header, "ROWS");
  const auto num_rows = parse_field<std::size_t>(rows_header, "row count");
  std::vector<RowId> rows;
  rows.reserve(num_rows);
  for (std::size_t r = 0; r < num_rows; ++r) {
    std::istringstream line(next_line(in));
    expect_keyword(line, "ROW");
    rows.push_back(builder.add_row(parse_field<Coord>(line, "row height")));
  }

  std::istringstream cells_header(next_line(in));
  expect_keyword(cells_header, "CELLS");
  const auto num_cells = parse_field<std::size_t>(cells_header, "cell count");
  std::vector<CellId> cells;
  cells.reserve(num_cells);
  for (std::size_t c = 0; c < num_cells; ++c) {
    std::istringstream line(next_line(in));
    expect_keyword(line, "CELL");
    const auto row_index = parse_field<std::size_t>(line, "cell row");
    if (row_index >= rows.size()) {
      throw CircuitIoError("cell row index out of range");
    }
    cells.push_back(builder.add_cell(rows[row_index],
                                     parse_field<Coord>(line, "cell width")));
  }

  std::istringstream nets_header(next_line(in));
  expect_keyword(nets_header, "NETS");
  const auto num_nets = parse_field<std::size_t>(nets_header, "net count");
  for (std::size_t n = 0; n < num_nets; ++n) {
    std::istringstream net_line(next_line(in));
    expect_keyword(net_line, "NET");
    const auto num_pins = parse_field<std::size_t>(net_line, "pin count");
    const NetId net = builder.add_net();
    for (std::size_t p = 0; p < num_pins; ++p) {
      std::istringstream line(next_line(in));
      expect_keyword(line, "PIN");
      const auto cell_index = parse_field<std::size_t>(line, "pin cell");
      if (cell_index >= cells.size()) {
        throw CircuitIoError("pin cell index out of range");
      }
      const auto offset = parse_field<Coord>(line, "pin offset");
      std::string side;
      if (!(line >> side)) throw CircuitIoError("expected pin side");
      builder.add_pin(cells[cell_index], net, offset, parse_side(side));
    }
  }

  return std::move(builder).build();
}

}  // namespace

Circuit read_circuit(std::istream& in) {
  {
    std::istringstream header(next_line(in));
    expect_keyword(header, kMagic);
    const int version = parse_field<int>(header, "format version");
    if (version != kVersion) {
      throw CircuitIoError("unsupported circuit format version " +
                           std::to_string(version));
    }
  }
  try {
    return read_circuit_impl(in);
  } catch (const CheckError& e) {
    // Builder-level validation failures (bad offsets, dangling references)
    // surface as I/O errors: the input file is at fault, not the program.
    throw CircuitIoError(std::string("invalid circuit: ") + e.what());
  }
}

Circuit read_circuit_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw CircuitIoError("cannot open '" + path + "'");
  return read_circuit(in);
}

}  // namespace ptwgr
