#include "ptwgr/circuit/io.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "ptwgr/circuit/builder.h"

namespace ptwgr {
namespace {

constexpr const char* kMagic = "PTWGR-CIRCUIT";
constexpr int kVersion = 1;

/// Sanity cap for header counts: a corrupted or malicious count field must
/// produce a diagnostic, not a multi-gigabyte allocation.
constexpr long long kMaxCount = 100'000'000;

char side_code(PinSide side) {
  switch (side) {
    case PinSide::Top: return 'T';
    case PinSide::Bottom: return 'B';
    case PinSide::Both: return 'E';
  }
  return '?';
}

[[noreturn]] void fail_at(std::size_t line, const std::string& message) {
  throw CircuitIoError("line " + std::to_string(line) + ": " + message);
}

PinSide parse_side(const std::string& token, std::size_t line) {
  if (token == "T") return PinSide::Top;
  if (token == "B") return PinSide::Bottom;
  if (token == "E") return PinSide::Both;
  fail_at(line, "bad pin side '" + token + "' (expected T, B, or E)");
}

/// Line-numbered reader over the circuit stream: skips blanks and comments,
/// and reports the position of every diagnostic.
class LineReader {
 public:
  explicit LineReader(std::istream& in) : in_(&in) {}

  /// Reads the next non-empty, non-comment line; throws at EOF naming the
  /// record that was being read.
  std::string next(const char* what) {
    std::string line;
    while (std::getline(*in_, line)) {
      ++line_no_;
      const auto first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos) continue;
      if (line[first] == '#') continue;
      return line;
    }
    fail_at(line_no_,
            std::string("unexpected end of file while reading ") + what);
  }

  std::size_t line_number() const { return line_no_; }

 private:
  std::istream* in_;
  std::size_t line_no_ = 0;
};

/// Strict integer field parse: rejects floats, NaN/inf spellings, trailing
/// garbage, and out-of-range magnitudes (all of which `is >> value` would
/// silently accept, truncate, or wrap).
long long parse_integer(std::istringstream& is, const char* what,
                        std::size_t line) {
  std::string token;
  if (!(is >> token)) fail_at(line, std::string("expected ") + what);
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0' || errno == ERANGE) {
    fail_at(line, std::string("expected ") + what +
                      " (an integer), got '" + token + "'");
  }
  return value;
}

/// Count field: non-negative and bounded by the sanity cap, so negative
/// counts cannot wrap to huge sizes and corrupt headers cannot drive huge
/// reserves.
std::size_t parse_count(std::istringstream& is, const char* what,
                        std::size_t line) {
  const long long value = parse_integer(is, what, line);
  if (value < 0) {
    fail_at(line, std::string(what) + " must be non-negative, got " +
                      std::to_string(value));
  }
  if (value > kMaxCount) {
    fail_at(line, std::string(what) + " " + std::to_string(value) +
                      " exceeds the format limit of " +
                      std::to_string(kMaxCount));
  }
  return static_cast<std::size_t>(value);
}

/// Geometry field that must be strictly positive (row heights, cell widths).
Coord parse_positive_coord(std::istringstream& is, const char* what,
                           std::size_t line) {
  const long long value = parse_integer(is, what, line);
  if (value <= 0) {
    fail_at(line, std::string(what) + " must be positive, got " +
                      std::to_string(value));
  }
  return static_cast<Coord>(value);
}

/// Geometry field that must be non-negative (pin offsets).
Coord parse_nonnegative_coord(std::istringstream& is, const char* what,
                              std::size_t line) {
  const long long value = parse_integer(is, what, line);
  if (value < 0) {
    fail_at(line, std::string(what) + " must be non-negative, got " +
                      std::to_string(value));
  }
  return static_cast<Coord>(value);
}

void expect_keyword(std::istringstream& is, const std::string& keyword,
                    std::size_t line) {
  std::string token;
  if (!(is >> token) || token != keyword) {
    fail_at(line,
            "expected keyword '" + keyword + "', got '" + token + "'");
  }
}

}  // namespace

void write_circuit(std::ostream& out, const Circuit& circuit) {
  out << kMagic << ' ' << kVersion << '\n';

  out << "ROWS " << circuit.num_rows() << '\n';
  for (const Row& row : circuit.rows()) {
    out << "ROW " << row.height << '\n';
  }

  // Persist only standard cells; remap ids densely in output order.
  std::unordered_map<std::uint32_t, std::size_t> cell_remap;
  std::size_t num_standard = 0;
  for (const Cell& cell : circuit.cells()) {
    if (cell.kind == CellKind::Standard) ++num_standard;
  }
  out << "CELLS " << num_standard << '\n';
  for (std::size_t i = 0; i < circuit.num_cells(); ++i) {
    const Cell& cell = circuit.cells()[i];
    if (cell.kind != CellKind::Standard) continue;
    cell_remap.emplace(static_cast<std::uint32_t>(i), cell_remap.size());
    out << "CELL " << cell.row.value() << ' ' << cell.width << '\n';
  }

  out << "NETS " << circuit.num_nets() << '\n';
  for (const Net& net : circuit.nets()) {
    // Count persistable pins first (skip fakes and feedthrough pins).
    std::vector<const Pin*> pins;
    for (const PinId pid : net.pins) {
      const Pin& pin = circuit.pin(pid);
      if (pin.is_fake()) continue;
      if (circuit.cell(pin.cell).kind != CellKind::Standard) continue;
      pins.push_back(&pin);
    }
    out << "NET " << pins.size() << '\n';
    for (const Pin* pin : pins) {
      out << "PIN " << cell_remap.at(pin->cell.value()) << ' ' << pin->offset
          << ' ' << side_code(pin->side) << '\n';
    }
  }
}

void write_circuit_file(const std::string& path, const Circuit& circuit) {
  std::ofstream out(path);
  if (!out) throw CircuitIoError("cannot open '" + path + "' for writing");
  write_circuit(out, circuit);
  if (!out) throw CircuitIoError("write to '" + path + "' failed");
}

namespace {

Circuit read_circuit_impl(LineReader& reader) {
  CircuitBuilder builder;

  std::istringstream rows_header(reader.next("ROWS header"));
  expect_keyword(rows_header, "ROWS", reader.line_number());
  const auto num_rows =
      parse_count(rows_header, "row count", reader.line_number());
  std::vector<RowId> rows;
  rows.reserve(num_rows);
  for (std::size_t r = 0; r < num_rows; ++r) {
    std::istringstream line(reader.next("ROW record"));
    expect_keyword(line, "ROW", reader.line_number());
    rows.push_back(builder.add_row(
        parse_positive_coord(line, "row height", reader.line_number())));
  }

  std::istringstream cells_header(reader.next("CELLS header"));
  expect_keyword(cells_header, "CELLS", reader.line_number());
  const auto num_cells =
      parse_count(cells_header, "cell count", reader.line_number());
  std::vector<CellId> cells;
  cells.reserve(num_cells);
  for (std::size_t c = 0; c < num_cells; ++c) {
    std::istringstream line(reader.next("CELL record"));
    expect_keyword(line, "CELL", reader.line_number());
    const auto row_index =
        parse_count(line, "cell row index", reader.line_number());
    if (row_index >= rows.size()) {
      fail_at(reader.line_number(),
              "cell row index " + std::to_string(row_index) +
                  " out of range (circuit has " +
                  std::to_string(rows.size()) + " rows)");
    }
    cells.push_back(builder.add_cell(
        rows[row_index],
        parse_positive_coord(line, "cell width", reader.line_number())));
  }

  std::istringstream nets_header(reader.next("NETS header"));
  expect_keyword(nets_header, "NETS", reader.line_number());
  const auto num_nets =
      parse_count(nets_header, "net count", reader.line_number());
  for (std::size_t n = 0; n < num_nets; ++n) {
    std::istringstream net_line(reader.next("NET record"));
    expect_keyword(net_line, "NET", reader.line_number());
    const auto num_pins =
        parse_count(net_line, "pin count", reader.line_number());
    const NetId net = builder.add_net();
    for (std::size_t p = 0; p < num_pins; ++p) {
      std::istringstream line(reader.next("PIN record"));
      expect_keyword(line, "PIN", reader.line_number());
      const auto cell_index =
          parse_count(line, "pin cell index", reader.line_number());
      if (cell_index >= cells.size()) {
        fail_at(reader.line_number(),
                "pin cell index " + std::to_string(cell_index) +
                    " out of range (circuit has " +
                    std::to_string(cells.size()) + " cells)");
      }
      const auto offset =
          parse_nonnegative_coord(line, "pin offset", reader.line_number());
      std::string side;
      if (!(line >> side)) {
        fail_at(reader.line_number(), "expected pin side");
      }
      builder.add_pin(cells[cell_index], net, offset,
                      parse_side(side, reader.line_number()));
    }
  }

  return std::move(builder).build();
}

}  // namespace

Circuit read_circuit(std::istream& in) {
  LineReader reader(in);
  {
    std::istringstream header(reader.next("file header"));
    expect_keyword(header, kMagic, reader.line_number());
    const auto version = parse_integer(header, "format version",
                                       reader.line_number());
    if (version != kVersion) {
      fail_at(reader.line_number(), "unsupported circuit format version " +
                                        std::to_string(version));
    }
  }
  try {
    return read_circuit_impl(reader);
  } catch (const CheckError& e) {
    // Builder-level validation failures (bad offsets, dangling references)
    // surface as I/O errors: the input file is at fault, not the program.
    fail_at(reader.line_number(),
            std::string("invalid circuit: ") + e.what());
  }
}

Circuit read_circuit_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw CircuitIoError("cannot open '" + path + "'");
  try {
    return read_circuit(in);
  } catch (const CircuitIoError& e) {
    // Prefix the path so multi-file drivers report which input is bad.
    throw CircuitIoError(path + ": " + e.what());
  }
}

}  // namespace ptwgr
