// The six-circuit benchmark suite (paper Table 1).
//
// Each entry mirrors one MCNC layout-synthesis circuit's published
// characteristics.  The circuits themselves are regenerated synthetically
// (see generator.h); a `scale` < 1 shrinks every count proportionally so the
// full experiment matrix stays tractable on small machines while keeping the
// same structure.
#pragma once

#include <string>
#include <vector>

#include "ptwgr/circuit/circuit.h"
#include "ptwgr/circuit/generator.h"

namespace ptwgr {

/// One suite entry: the name the paper uses plus the generator parameters
/// reconstructed from Table 1 and the paper's prose (e.g. avq.large's
/// >3000-pin clock net, §5).
struct SuiteEntry {
  std::string name;
  GeneratorConfig config;
  /// Estimated serial peak memory footprint in bytes, used to reproduce the
  /// paper's Paragon per-node memory-limit timeouts (Table 5 footnote).
  std::size_t estimated_memory_bytes = 0;
};

/// All six circuits at `scale` (0 < scale <= 1).  scale=1 reproduces the
/// Table 1 magnitudes; smaller scales shrink cells/nets proportionally.
std::vector<SuiteEntry> benchmark_suite(double scale = 1.0);

/// A single suite entry by paper name ("primary2", "biomed", "industry2",
/// "industry3", "avq.small", "avq.large").  Throws CheckError if unknown.
SuiteEntry suite_entry(const std::string& name, double scale = 1.0);

/// Generates the circuit for an entry.
Circuit build_suite_circuit(const SuiteEntry& entry);

/// A small fixed test circuit used across unit tests and the quickstart
/// example: `rows` rows, ~`cells_per_row` cells each, local nets.
Circuit small_test_circuit(std::uint64_t seed = 7, std::size_t rows = 6,
                           std::size_t cells_per_row = 40);

}  // namespace ptwgr
