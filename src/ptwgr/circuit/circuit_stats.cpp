#include "ptwgr/circuit/circuit_stats.h"

#include <algorithm>
#include <sstream>

namespace ptwgr {

CircuitStats compute_stats(const Circuit& circuit) {
  CircuitStats stats;
  stats.rows = circuit.num_rows();
  stats.cells = circuit.num_cells();
  stats.pins = circuit.num_pins();
  stats.nets = circuit.num_nets();
  stats.core_width = circuit.core_width();

  std::size_t small_nets = 0;
  for (const Net& net : circuit.nets()) {
    stats.max_pins_on_net = std::max(stats.max_pins_on_net, net.pins.size());
    if (net.pins.size() <= 5) ++small_nets;
  }
  if (stats.nets > 0) {
    stats.mean_pins_per_net =
        static_cast<double>(stats.pins) / static_cast<double>(stats.nets);
    stats.fraction_nets_small =
        static_cast<double>(small_nets) / static_cast<double>(stats.nets);
  }
  return stats;
}

std::string CircuitStats::to_string() const {
  std::ostringstream os;
  os << rows << " rows, " << cells << " cells, " << pins << " pins, " << nets
     << " nets (max net degree " << max_pins_on_net << ")";
  return os.str();
}

}  // namespace ptwgr
