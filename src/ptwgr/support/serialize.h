// Binary serialization for message payloads.
//
// The message-passing runtime (ptwgr/mp) moves raw byte buffers between
// ranks, exactly as MPI does; Writer/Reader provide the typed pack/unpack
// layer on top.  Supported: trivially copyable scalars and structs,
// std::string, std::vector and std::pair of supported types.  All encoding is
// native-endian — ranks are threads in one process, so there is no
// cross-architecture concern, but sizes are encoded explicitly so that
// framing errors surface as SerializeError rather than memory corruption.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace ptwgr {

/// Thrown on malformed or truncated payloads.
class SerializeError : public std::runtime_error {
 public:
  explicit SerializeError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Appends typed values to a growing byte buffer.
class Writer {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& value) {
    const auto* bytes = reinterpret_cast<const std::byte*>(&value);
    buffer_.insert(buffer_.end(), bytes, bytes + sizeof(T));
  }

  void put(const std::string& s) {
    put_size(s.size());
    const auto* bytes = reinterpret_cast<const std::byte*>(s.data());
    buffer_.insert(buffer_.end(), bytes, bytes + s.size());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const std::vector<T>& v) {
    put_size(v.size());
    const auto* bytes = reinterpret_cast<const std::byte*>(v.data());
    buffer_.insert(buffer_.end(), bytes, bytes + v.size() * sizeof(T));
  }

  /// Element-wise encoding for vectors of non-trivially-copyable types.
  template <typename T>
    requires(!std::is_trivially_copyable_v<T>)
  void put(const std::vector<T>& v) {
    put_size(v.size());
    for (const T& item : v) put(item);
  }

  template <typename A, typename B>
  void put(const std::pair<A, B>& p) {
    put(p.first);
    put(p.second);
  }

  std::size_t size() const { return buffer_.size(); }
  std::vector<std::byte> take() && { return std::move(buffer_); }
  const std::vector<std::byte>& bytes() const { return buffer_; }

 private:
  void put_size(std::size_t n) { put(static_cast<std::uint64_t>(n)); }

  std::vector<std::byte> buffer_;
};

/// Reads typed values back out of a byte buffer, validating bounds.
class Reader {
 public:
  explicit Reader(const std::vector<std::byte>& buffer)
      : data_(buffer.data()), size_(buffer.size()) {}
  Reader(const std::byte* data, std::size_t size)
      : data_(data), size_(size) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    T value;
    std::memcpy(&value, advance(sizeof(T)), sizeof(T));
    return value;
  }

  std::string get_string() {
    const std::size_t n = get_size();
    const std::byte* p = advance(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_vector() {
    const std::size_t n = get_size();
    std::vector<T> v(n);
    if (n > 0) std::memcpy(v.data(), advance(n * sizeof(T)), n * sizeof(T));
    return v;
  }

  /// Element-wise decode; the element type supplies a static
  /// `T deserialize(Reader&)` or is read via `reader.get<T>()` by the caller.
  template <typename T, typename Fn>
  std::vector<T> get_vector_with(Fn&& decode_one) {
    const std::size_t n = get_size();
    std::vector<T> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) v.push_back(decode_one(*this));
    return v;
  }

  std::size_t remaining() const { return size_ - offset_; }
  bool exhausted() const { return offset_ == size_; }

 private:
  std::size_t get_size() {
    const auto n = get<std::uint64_t>();
    if (n > remaining()) {
      throw SerializeError("encoded size exceeds remaining payload");
    }
    return static_cast<std::size_t>(n);
  }

  const std::byte* advance(std::size_t n) {
    if (n > remaining()) {
      throw SerializeError("payload truncated: need " + std::to_string(n) +
                           " bytes, have " + std::to_string(remaining()));
    }
    const std::byte* p = data_ + offset_;
    offset_ += n;
    return p;
  }

  const std::byte* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

}  // namespace ptwgr
