#include "ptwgr/support/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace ptwgr {
namespace {

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{[] {
    const char* env = std::getenv("PTWGR_LOG");
    return env == nullptr ? LogLevel::Warn : parse_log_level(env);
  }()};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

/// Seconds since the first log line (monotonic clock).
double log_uptime_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

thread_local int t_log_rank = -1;

}  // namespace

LogLevel parse_log_level(const char* name) {
  if (name == nullptr) return LogLevel::Warn;
  if (std::strcmp(name, "debug") == 0) return LogLevel::Debug;
  if (std::strcmp(name, "info") == 0) return LogLevel::Info;
  if (std::strcmp(name, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(name, "error") == 0) return LogLevel::Error;
  if (std::strcmp(name, "off") == 0) return LogLevel::Off;
  return LogLevel::Warn;
}

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

void set_thread_log_rank(int rank) { t_log_rank = rank; }

int thread_log_rank() { return t_log_rank; }

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  const double uptime = log_uptime_seconds();
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock(mutex);
  if (t_log_rank >= 0) {
    std::fprintf(stderr, "[ptwgr %s +%.6fs r%d] %s\n", level_name(level),
                 uptime, t_log_rank, message.c_str());
  } else {
    std::fprintf(stderr, "[ptwgr %s +%.6fs] %s\n", level_name(level), uptime,
                 message.c_str());
  }
}

}  // namespace ptwgr
