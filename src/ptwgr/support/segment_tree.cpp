#include "ptwgr/support/segment_tree.h"

#include <algorithm>

namespace ptwgr {

LazySegmentTree::LazySegmentTree(std::size_t size, ArenaSlot* arena)
    : size_(size),
      max_(ArenaAllocator<std::int64_t>(arena)),
      sum_(ArenaAllocator<std::int64_t>(arena)),
      tag_(ArenaAllocator<std::int64_t>(arena)) {
  PTWGR_EXPECTS(size >= 1);
  max_.assign(4 * size_, 0);
  sum_.assign(4 * size_, 0);
  tag_.assign(4 * size_, 0);
}

void LazySegmentTree::assign(const std::vector<std::int64_t>& values) {
  PTWGR_EXPECTS(values.size() == size_);
  std::fill(tag_.begin(), tag_.end(), 0);
  build(kRoot, 0, size_ - 1, values);
}

void LazySegmentTree::build(std::size_t node, std::size_t lo, std::size_t hi,
                            const std::vector<std::int64_t>& values) {
  if (lo == hi) {
    max_[node] = sum_[node] = values[lo];
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  build(2 * node, lo, mid, values);
  build(2 * node + 1, mid + 1, hi, values);
  max_[node] = std::max(max_[2 * node], max_[2 * node + 1]);
  sum_[node] = sum_[2 * node] + sum_[2 * node + 1];
}

void LazySegmentTree::range_add(std::size_t lo, std::size_t hi,
                                std::int64_t delta) {
  PTWGR_EXPECTS(lo <= hi && hi < size_);
  add(kRoot, 0, size_ - 1, lo, hi, delta);
}

void LazySegmentTree::add(std::size_t node, std::size_t lo, std::size_t hi,
                          std::size_t ql, std::size_t qr,
                          std::int64_t delta) {
  if (qr < lo || hi < ql) return;
  if (ql <= lo && hi <= qr) {
    max_[node] += delta;
    sum_[node] += delta * static_cast<std::int64_t>(hi - lo + 1);
    tag_[node] += delta;
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  add(2 * node, lo, mid, ql, qr, delta);
  add(2 * node + 1, mid + 1, hi, ql, qr, delta);
  // Children exclude this node's tag; re-apply it when pulling up.
  max_[node] = std::max(max_[2 * node], max_[2 * node + 1]) + tag_[node];
  const std::size_t overlap_lo = std::max(lo, ql);
  const std::size_t overlap_hi = std::min(hi, qr);
  sum_[node] += delta * static_cast<std::int64_t>(overlap_hi - overlap_lo + 1);
}

std::int64_t LazySegmentTree::range_max(std::size_t lo, std::size_t hi) const {
  PTWGR_EXPECTS(lo <= hi && hi < size_);
  return query_max(kRoot, 0, size_ - 1, lo, hi, 0);
}

std::int64_t LazySegmentTree::query_max(std::size_t node, std::size_t lo,
                                        std::size_t hi, std::size_t ql,
                                        std::size_t qr,
                                        std::int64_t pending) const {
  if (ql <= lo && hi <= qr) return max_[node] + pending;
  const std::size_t mid = lo + (hi - lo) / 2;
  const std::int64_t below = pending + tag_[node];
  if (qr <= mid) return query_max(2 * node, lo, mid, ql, qr, below);
  if (ql > mid) return query_max(2 * node + 1, mid + 1, hi, ql, qr, below);
  return std::max(query_max(2 * node, lo, mid, ql, qr, below),
                  query_max(2 * node + 1, mid + 1, hi, ql, qr, below));
}

std::int64_t LazySegmentTree::range_sum(std::size_t lo, std::size_t hi) const {
  PTWGR_EXPECTS(lo <= hi && hi < size_);
  return query_sum(kRoot, 0, size_ - 1, lo, hi, 0);
}

std::int64_t LazySegmentTree::query_sum(std::size_t node, std::size_t lo,
                                        std::size_t hi, std::size_t ql,
                                        std::size_t qr,
                                        std::int64_t pending) const {
  if (ql <= lo && hi <= qr) {
    return sum_[node] + pending * static_cast<std::int64_t>(hi - lo + 1);
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  const std::int64_t below = pending + tag_[node];
  if (qr <= mid) return query_sum(2 * node, lo, mid, ql, qr, below);
  if (ql > mid) return query_sum(2 * node + 1, mid + 1, hi, ql, qr, below);
  return query_sum(2 * node, lo, mid, ql, qr, below) +
         query_sum(2 * node + 1, mid + 1, hi, ql, qr, below);
}

std::vector<std::int64_t> LazySegmentTree::values() const {
  std::vector<std::int64_t> out(size_, 0);
  flatten(kRoot, 0, size_ - 1, 0, out);
  return out;
}

void LazySegmentTree::flatten(std::size_t node, std::size_t lo, std::size_t hi,
                              std::int64_t pending,
                              std::vector<std::int64_t>& out) const {
  if (lo == hi) {
    out[lo] = max_[node] + pending;
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  flatten(2 * node, lo, mid, pending + tag_[node], out);
  flatten(2 * node + 1, mid + 1, hi, pending + tag_[node], out);
}

}  // namespace ptwgr
