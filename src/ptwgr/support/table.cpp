#include "ptwgr/support/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ptwgr {

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  if (!title_.empty()) os << title_ << '\n';
  if (rows_.empty()) return os.str();

  std::size_t ncols = 0;
  for (const auto& row : rows_) ncols = std::max(ncols, row.size());
  std::vector<std::size_t> widths(ncols, 0);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string cell = c < row.size() ? row[c] : std::string{};
      if (c == 0) {
        os << cell << std::string(widths[c] - cell.size(), ' ');
      } else {
        os << "  " << std::string(widths[c] - cell.size(), ' ') << cell;
      }
    }
    os << '\n';
  };

  emit_row(rows_.front());
  std::size_t total = 0;
  for (std::size_t c = 0; c < ncols; ++c) total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (std::size_t r = 1; r < rows_.size(); ++r) emit_row(rows_[r]);
  return os.str();
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_grouped(long long value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  std::size_t counter = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (counter != 0 && counter % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++counter;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace ptwgr
