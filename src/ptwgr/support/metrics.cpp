#include "ptwgr/support/metrics.h"

#include "ptwgr/support/json.h"

namespace ptwgr {

MetricsRegistry::Entry& MetricsRegistry::entry_for(std::string_view name) {
  for (Entry& e : entries_) {
    if (e.name == name) return e;
  }
  entries_.push_back(Entry{std::string(name), Kind::Int, 0, 0.0, {}});
  return entries_.back();
}

const MetricsRegistry::Entry* MetricsRegistry::find(
    std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

void MetricsRegistry::set(std::string_view name, std::int64_t value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry_for(name);
  e.kind = Kind::Int;
  e.int_value = value;
}

void MetricsRegistry::set(std::string_view name, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry_for(name);
  e.kind = Kind::Double;
  e.double_value = value;
}

void MetricsRegistry::set(std::string_view name, std::string_view value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry_for(name);
  e.kind = Kind::String;
  e.string_value = std::string(value);
}

std::optional<double> MetricsRegistry::get_number(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Entry* e = find(name);
  if (e == nullptr) return std::nullopt;
  switch (e->kind) {
    case Kind::Int: return static_cast<double>(e->int_value);
    case Kind::Double: return e->double_value;
    case Kind::String: return std::nullopt;
  }
  return std::nullopt;
}

std::optional<std::string> MetricsRegistry::get_string(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Entry* e = find(name);
  if (e == nullptr || e->kind != Kind::String) return std::nullopt;
  return e->string_value;
}

std::string MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n";
  bool first = true;
  for (const Entry& e : entries_) {
    if (!first) out += ",\n";
    first = false;
    out += "  ";
    json::append_quoted(out, e.name);
    out += ": ";
    switch (e.kind) {
      case Kind::Int: out += json::number(e.int_value); break;
      case Kind::Double: out += json::number(e.double_value); break;
      case Kind::String: json::append_quoted(out, e.string_value); break;
    }
  }
  out += "\n}\n";
  return out;
}

}  // namespace ptwgr
