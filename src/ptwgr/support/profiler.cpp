#include "ptwgr/support/profiler.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <unordered_map>

#include <sys/time.h>

#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define PTWGR_HAVE_BACKTRACE 1
#endif
#if __has_include(<dlfcn.h>)
#include <dlfcn.h>
#include <cxxabi.h>
#define PTWGR_HAVE_DLADDR 1
#endif

namespace ptwgr {

namespace {

// Frames contributed by the signal machinery itself: the handler's
// backtrace() call and the kernel trampoline.  Dropped at fold time.
constexpr std::uint32_t kHandlerFrames = 2;

// All state the signal handler may touch.  The storage behind the raw
// pointers is owned by SamplingProfiler::State and outlives any in-flight
// handler invocation (stop() keeps it alive).
struct HandlerState {
  void** frames = nullptr;
  std::uint16_t* depths = nullptr;
  std::uint32_t max_samples = 0;
  std::uint32_t max_depth = 0;
  std::atomic<std::uint32_t> cursor{0};
  std::atomic<std::uint64_t> dropped{0};
};

constinit std::atomic<HandlerState*> g_handler{nullptr};

extern "C" void ptwgr_sigprof_handler(int /*signo*/, siginfo_t* /*info*/,
                                      void* /*ucontext*/) {
  const int saved_errno = errno;
  HandlerState* st = g_handler.load(std::memory_order_acquire);
  if (st != nullptr) {
    const std::uint32_t idx =
        st->cursor.fetch_add(1, std::memory_order_relaxed);
    if (idx < st->max_samples) {
#ifdef PTWGR_HAVE_BACKTRACE
      void** slot =
          st->frames + static_cast<std::size_t>(idx) * st->max_depth;
      const int depth = ::backtrace(slot, static_cast<int>(st->max_depth));
      st->depths[idx] = static_cast<std::uint16_t>(depth > 0 ? depth : 0);
#else
      st->depths[idx] = 0;
#endif
    } else {
      st->dropped.fetch_add(1, std::memory_order_relaxed);
    }
  }
  errno = saved_errno;
}

std::string symbolize(void* pc) {
#ifdef PTWGR_HAVE_DLADDR
  Dl_info info;
  std::memset(&info, 0, sizeof info);
  if (::dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int status = -1;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string name =
        status == 0 && demangled != nullptr ? demangled : info.dli_sname;
    std::free(demangled);
    // Folded format reserves ';' as the frame separator.
    std::replace(name.begin(), name.end(), ';', ':');
    return name;
  }
  if (info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    const std::uintptr_t offset =
        reinterpret_cast<std::uintptr_t>(pc) -
        reinterpret_cast<std::uintptr_t>(info.dli_fbase);
    char buffer[320];
    std::snprintf(buffer, sizeof buffer, "%s+0x%" PRIxPTR,
                  base != nullptr ? base + 1 : info.dli_fname, offset);
    return buffer;
  }
#endif
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "0x%" PRIxPTR,
                reinterpret_cast<std::uintptr_t>(pc));
  return buffer;
}

}  // namespace

struct SamplingProfiler::State {
  // calloc-backed so the kernel's fresh zero pages satisfy the
  // zero-initialization the fold relies on (unwritten slot ⇒ depth 0)
  // without faulting the whole multi-MiB buffer in at start() — an eager
  // vector::assign costs ~20ms for the default 32 MiB, which would dwarf
  // short profiled runs.
  struct FreeDeleter {
    void operator()(void* p) const { std::free(p); }
  };
  std::unique_ptr<void*[], FreeDeleter> frame_storage;
  std::unique_ptr<std::uint16_t[], FreeDeleter> depth_storage;
  HandlerState handler;
  struct sigaction old_action {};
};

SamplingProfiler::SamplingProfiler() : options_(Options()) {}

SamplingProfiler::SamplingProfiler(const Options& options)
    : options_(options) {}

SamplingProfiler::~SamplingProfiler() { stop(); }

bool SamplingProfiler::start() {
  if (running_ || options_.hz <= 0.0) return false;
#ifndef PTWGR_HAVE_BACKTRACE
  return false;
#else
  const std::uint32_t depth = std::clamp(options_.max_depth, 4u, 128u);
  const std::uint32_t max_samples = std::max(options_.max_samples, 1u);

  auto state = std::make_unique<State>();
  state->frame_storage.reset(static_cast<void**>(std::calloc(
      static_cast<std::size_t>(max_samples) * depth, sizeof(void*))));
  state->depth_storage.reset(static_cast<std::uint16_t*>(
      std::calloc(max_samples, sizeof(std::uint16_t))));
  if (state->frame_storage == nullptr || state->depth_storage == nullptr) {
    return false;
  }
  state->handler.frames = state->frame_storage.get();
  state->handler.depths = state->depth_storage.get();
  state->handler.max_samples = max_samples;
  state->handler.max_depth = depth;

  // Warm up the unwinder: the first backtrace() call may load libgcc via
  // dlopen/malloc, which must not happen inside the signal handler.
  void* warm[4];
  ::backtrace(warm, 4);

  HandlerState* expected = nullptr;
  if (!g_handler.compare_exchange_strong(expected, &state->handler,
                                         std::memory_order_acq_rel)) {
    return false;  // another profiler is already sampling
  }
  state_ = std::move(state);

  struct sigaction action {};
  action.sa_sigaction = ptwgr_sigprof_handler;
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (::sigaction(SIGPROF, &action, &state_->old_action) != 0) {
    g_handler.store(nullptr, std::memory_order_release);
    return false;
  }

  const double interval = 1.0 / options_.hz;
  const auto whole = static_cast<time_t>(interval);
  auto usec = static_cast<suseconds_t>(
      (interval - static_cast<double>(whole)) * 1e6);
  if (whole == 0 && usec == 0) usec = 1;
  itimerval timer{};
  timer.it_interval.tv_sec = whole;
  timer.it_interval.tv_usec = usec;
  timer.it_value = timer.it_interval;
  if (::setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    ::sigaction(SIGPROF, &state_->old_action, nullptr);
    g_handler.store(nullptr, std::memory_order_release);
    return false;
  }
  running_ = true;
  return true;
#endif
}

void SamplingProfiler::stop() {
  if (!running_) return;
  itimerval zero{};
  ::setitimer(ITIMER_PROF, &zero, nullptr);
  ::sigaction(SIGPROF, &state_->old_action, nullptr);
  g_handler.store(nullptr, std::memory_order_release);
  // An in-flight delivery on another thread may still be unwinding into the
  // buffers; give it a beat before anyone can destroy them.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  running_ = false;
}

std::uint64_t SamplingProfiler::sample_count() const {
  if (state_ == nullptr) return 0;
  return std::min(state_->handler.cursor.load(std::memory_order_relaxed),
                  state_->handler.max_samples);
}

std::uint64_t SamplingProfiler::dropped_samples() const {
  if (state_ == nullptr) return 0;
  return state_->handler.dropped.load(std::memory_order_relaxed);
}

std::string SamplingProfiler::folded() const {
  if (state_ == nullptr) return {};
  const auto count = static_cast<std::uint32_t>(sample_count());
  const std::uint32_t max_depth = state_->handler.max_depth;

  std::unordered_map<void*, std::string> cache;
  const auto name_of = [&cache](void* pc) -> const std::string& {
    const auto it = cache.find(pc);
    if (it != cache.end()) return it->second;
    return cache.emplace(pc, symbolize(pc)).first->second;
  };

  std::map<std::string, std::uint64_t> stacks;  // sorted ⇒ deterministic file
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t depth = state_->depth_storage[i];
    if (depth <= kHandlerFrames) continue;
    void* const* frames =
        state_->frame_storage.get() +
        static_cast<std::size_t>(i) * max_depth;
    std::string line;
    for (std::uint32_t j = depth; j-- > kHandlerFrames;) {
      void* pc = frames[j];
      // Non-leaf entries are return addresses: step back into the call so
      // the symbol is the caller, not the instruction after it.  The leaf
      // (j == kHandlerFrames) is the interrupted pc itself.
      if (j != kHandlerFrames) {
        pc = reinterpret_cast<void*>(reinterpret_cast<std::uintptr_t>(pc) -
                                     1);
      }
      if (!line.empty()) line += ';';
      line += name_of(pc);
    }
    ++stacks[line];
  }

  std::string out;
  for (const auto& [stack, n] : stacks) {
    out += stack;
    out += ' ';
    out += std::to_string(n);
    out += '\n';
  }
  return out;
}

// --- folded-stack analysis --------------------------------------------------

FoldedSummary summarize_folded(std::string_view folded) {
  std::map<std::string, HotFrame> frames;
  FoldedSummary summary;

  std::size_t pos = 0;
  while (pos < folded.size()) {
    std::size_t eol = folded.find('\n', pos);
    if (eol == std::string_view::npos) eol = folded.size();
    const std::string_view line = folded.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;

    const std::size_t space = line.rfind(' ');
    if (space == std::string_view::npos) continue;
    std::uint64_t count = 0;
    bool numeric = space + 1 < line.size();
    for (std::size_t i = space + 1; i < line.size(); ++i) {
      const char c = line[i];
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      count = count * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (!numeric) continue;
    summary.total_samples += count;

    const std::string_view stack = line.substr(0, space);
    std::set<std::string_view> seen;  // recursion: count a frame once/stack
    std::string_view leaf;
    std::size_t start = 0;
    while (start <= stack.size()) {
      std::size_t sep = stack.find(';', start);
      if (sep == std::string_view::npos) sep = stack.size();
      const std::string_view frame = stack.substr(start, sep - start);
      if (!frame.empty()) {
        leaf = frame;
        seen.insert(frame);
      }
      start = sep + 1;
    }
    for (const std::string_view frame : seen) {
      HotFrame& hot = frames[std::string(frame)];
      hot.total += count;
    }
    if (!leaf.empty()) frames[std::string(leaf)].self += count;
  }

  summary.frames.reserve(frames.size());
  for (auto& [name, frame] : frames) {
    frame.name = name;
    summary.frames.push_back(std::move(frame));
  }
  std::sort(summary.frames.begin(), summary.frames.end(),
            [](const HotFrame& a, const HotFrame& b) {
              if (a.self != b.self) return a.self > b.self;
              return a.name < b.name;
            });
  return summary;
}

std::string render_hot_frames(const FoldedSummary& summary,
                              std::size_t top_k) {
  std::string out;
  char buffer[512];
  std::snprintf(buffer, sizeof buffer, "hot frames (%" PRIu64 " samples):\n",
                summary.total_samples);
  out += buffer;
  std::snprintf(buffer, sizeof buffer, "%7s %7s %9s  %s\n", "self%", "total%",
                "samples", "frame");
  out += buffer;
  const double denom =
      summary.total_samples > 0
          ? static_cast<double>(summary.total_samples)
          : 1.0;
  std::size_t shown = 0;
  for (const HotFrame& frame : summary.frames) {
    if (shown++ >= top_k) break;
    std::snprintf(buffer, sizeof buffer,
                  "%6.2f%% %6.2f%% %9" PRIu64 "  %s\n",
                  100.0 * static_cast<double>(frame.self) / denom,
                  100.0 * static_cast<double>(frame.total) / denom,
                  frame.self, frame.name.c_str());
    out += buffer;
  }
  return out;
}

}  // namespace ptwgr
