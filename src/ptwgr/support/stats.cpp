#include "ptwgr/support/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "ptwgr/support/check.h"

namespace ptwgr {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const {
  return mean_ == 0.0 ? 0.0 : stddev() / mean_;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

Histogram::Histogram(std::vector<std::uint64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  PTWGR_EXPECTS(!bounds_.empty());
  PTWGR_EXPECTS(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    PTWGR_EXPECTS(bounds_[i - 1] < bounds_[i]);
  }
}

void Histogram::add(std::uint64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  ++counts_[idx];
  ++total_;
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  const std::uint64_t peak =
      *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i < bounds_.size()) {
      os << "<= " << bounds_[i];
    } else {
      os << " > " << bounds_.back();
    }
    os << "\t" << counts_[i] << "\t";
    if (peak > 0) {
      const auto width = static_cast<std::size_t>(
          40.0 * static_cast<double>(counts_[i]) / static_cast<double>(peak));
      os << std::string(width, '#');
    }
    os << '\n';
  }
  return os.str();
}

double load_imbalance(const std::vector<double>& per_worker) {
  if (per_worker.empty()) return 0.0;
  double sum = 0.0;
  double peak = 0.0;
  for (const double w : per_worker) {
    sum += w;
    peak = std::max(peak, w);
  }
  if (sum <= 0.0) return 0.0;
  const double mean = sum / static_cast<double>(per_worker.size());
  return peak / mean;
}

}  // namespace ptwgr
