#include "ptwgr/support/arena.h"

#include <cstring>
#include <mutex>

namespace ptwgr {

namespace {

// Static storage with constant initialization: slots must be chargeable
// from any point of static construction/destruction.
ArenaSlot g_slots[kMaxArenaTags];
std::atomic<std::size_t> g_slot_count{0};
std::mutex g_register_mutex;

}  // namespace

ArenaSlot* arena_slot(const char* tag) {
  const std::size_t n = g_slot_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    if (g_slots[i].name == tag || std::strcmp(g_slots[i].name, tag) == 0) {
      return &g_slots[i];
    }
  }
  const std::lock_guard<std::mutex> lock(g_register_mutex);
  const std::size_t m = g_slot_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < m; ++i) {
    if (g_slots[i].name == tag || std::strcmp(g_slots[i].name, tag) == 0) {
      return &g_slots[i];
    }
  }
  if (m >= kMaxArenaTags) return nullptr;
  g_slots[m].name = tag;
  g_slot_count.store(m + 1, std::memory_order_release);
  return &g_slots[m];
}

std::size_t arena_slot_count() {
  return g_slot_count.load(std::memory_order_acquire);
}

ArenaSlot* arena_slot_at(std::size_t index) {
  return index < arena_slot_count() ? &g_slots[index] : nullptr;
}

}  // namespace ptwgr
