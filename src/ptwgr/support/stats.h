// Streaming statistics and simple histograms, used by the circuit generator
// (pins-per-net distributions), partition quality reporting (load balance),
// and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ptwgr {

/// Welford-style running statistics: count, mean, variance, min, max.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

  /// Coefficient of variation (stddev / mean); 0 when the mean is 0.
  double cv() const;

  /// Merges another accumulator into this one (parallel reduction friendly).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram over non-negative integer values.  The final bucket
/// is open-ended ("overflow"), which suits pins-per-net distributions where a
/// handful of clock nets dwarf everything else.
class Histogram {
 public:
  /// upper_bounds must be strictly increasing; value v lands in the first
  /// bucket with v <= bound, or the overflow bucket.
  explicit Histogram(std::vector<std::uint64_t> upper_bounds);

  void add(std::uint64_t value);

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket_value(std::size_t i) const { return counts_.at(i); }
  std::uint64_t total() const { return total_; }

  /// Multi-line human-readable rendering with per-bucket bars.
  std::string to_string() const;

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 buckets
  std::uint64_t total_ = 0;
};

/// Load-imbalance ratio of a per-worker work vector:
/// max(work) / mean(work).  1.0 is perfectly balanced; returns 0 for empty
/// input or all-zero work.
double load_imbalance(const std::vector<double>& per_worker);

}  // namespace ptwgr
