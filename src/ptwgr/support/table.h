// Plain-text table rendering for the benchmark harnesses, mirroring the
// paper's tables (Table 1–5) and figures (speedup series printed as rows).
#pragma once

#include <string>
#include <vector>

namespace ptwgr {

/// Column-aligned ASCII table.  Cells are strings; numeric formatting is the
/// caller's job (helpers below).  The first added row is the header.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  void add_row(std::vector<std::string> cells);

  /// Renders with a header separator and right-aligned cells (left-aligned
  /// first column, which holds row labels in all paper tables).
  std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision decimal rendering ("3.142" for format_fixed(3.14159, 3)).
std::string format_fixed(double value, int decimals);

/// Thousands-separated integer rendering ("1,234,567"), as the paper prints
/// track and area counts.
std::string format_grouped(long long value);

}  // namespace ptwgr
