#include "ptwgr/support/trace.h"

#include <algorithm>
#include <atomic>

#include "ptwgr/support/json.h"

namespace ptwgr {
namespace {

std::atomic<TraceCollector*> g_active_trace{nullptr};

}  // namespace

TraceCollector* active_trace() {
  return g_active_trace.load(std::memory_order_relaxed);
}

void set_active_trace(TraceCollector* collector) {
  g_active_trace.store(collector, std::memory_order_relaxed);
}

void TraceCollector::record(const char* name, int rank, double start_seconds,
                            double end_seconds, const char* cat) {
  const std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(TraceSpan{std::string(name), std::string(cat), rank,
                             start_seconds, end_seconds});
}

void TraceCollector::record_flow(TraceFlow flow) {
  const std::lock_guard<std::mutex> lock(mutex_);
  flows_.push_back(std::move(flow));
}

std::size_t TraceCollector::span_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::size_t TraceCollector::flow_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return flows_.size();
}

std::vector<TraceSpan> TraceCollector::spans() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::string TraceCollector::to_chrome_json() const {
  std::vector<TraceSpan> sorted = spans();
  std::vector<TraceFlow> flows;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    flows = flows_;
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              if (a.rank != b.rank) return a.rank < b.rank;
              return a.start_seconds < b.start_seconds;
            });

  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    if (!first) out += ",\n";
    first = false;
    out += event;
  };

  emit("{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
       "\"args\":{\"name\":\"ptwgr\"}}");
  int last_rank = -1;
  for (const TraceSpan& span : sorted) {
    if (span.rank != last_rank) {
      last_rank = span.rank;
      const std::string tid = std::to_string(span.rank);
      emit("{\"ph\":\"M\",\"pid\":0,\"tid\":" + tid +
           ",\"name\":\"thread_name\",\"args\":{\"name\":" +
           json::quoted("rank " + tid) + "}}");
      emit("{\"ph\":\"M\",\"pid\":0,\"tid\":" + tid +
           ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" + tid +
           "}}");
    }
    const double dur = std::max(0.0, span.end_seconds - span.start_seconds);
    emit("{\"ph\":\"X\",\"pid\":0,\"tid\":" + std::to_string(span.rank) +
         ",\"cat\":" + json::quoted(span.cat) +
         ",\"name\":" + json::quoted(span.name) +
         ",\"ts\":" + json::number(span.start_seconds * 1e6) +
         ",\"dur\":" + json::number(dur * 1e6) + "}");
  }
  for (const TraceFlow& flow : flows) {
    const std::string id = std::to_string(flow.id);
    emit("{\"ph\":\"s\",\"id\":" + id + ",\"pid\":0,\"tid\":" +
         std::to_string(flow.src_rank) + ",\"cat\":\"msg\",\"name\":" +
         json::quoted(flow.name) +
         ",\"ts\":" + json::number(flow.src_seconds * 1e6) + "}");
    // bp:"e" binds the finish step to the enclosing slice, which is how
    // Perfetto draws the arrow onto the receiver's phase span.
    emit("{\"ph\":\"f\",\"bp\":\"e\",\"id\":" + id + ",\"pid\":0,\"tid\":" +
         std::to_string(flow.dst_rank) + ",\"cat\":\"msg\",\"name\":" +
         json::quoted(flow.name) +
         ",\"ts\":" + json::number(flow.dst_seconds * 1e6) + "}");
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

}  // namespace ptwgr
