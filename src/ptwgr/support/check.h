// Checked-assertion support.
//
// The library validates preconditions and invariants with PTWGR_CHECK, which
// throws ptwgr::CheckError instead of aborting.  Routing inputs are frequently
// user-supplied (netlists, options), so recoverable exceptions are the right
// failure mode per the C++ Core Guidelines (I.5, E.2): the caller decides
// whether a malformed circuit kills the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ptwgr {

/// Thrown when a PTWGR_CHECK / PTWGR_EXPECTS / PTWGR_ENSURES condition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& message) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace ptwgr

/// General invariant check; active in all build types.
#define PTWGR_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::ptwgr::detail::check_failed("check", #cond, __FILE__, __LINE__,    \
                                    std::string{});                        \
  } while (false)

/// Invariant check with a streamed context message:
///   PTWGR_CHECK_MSG(i < n, "pin " << i << " out of range");
#define PTWGR_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream ptwgr_check_os_;                                  \
      ptwgr_check_os_ << msg;                                              \
      ::ptwgr::detail::check_failed("check", #cond, __FILE__, __LINE__,    \
                                    ptwgr_check_os_.str());                \
    }                                                                      \
  } while (false)

/// Function precondition (documents intent; same behaviour as PTWGR_CHECK).
#define PTWGR_EXPECTS(cond)                                                \
  do {                                                                     \
    if (!(cond))                                                           \
      ::ptwgr::detail::check_failed("precondition", #cond, __FILE__,       \
                                    __LINE__, std::string{});              \
  } while (false)

/// Function postcondition.
#define PTWGR_ENSURES(cond)                                                \
  do {                                                                     \
    if (!(cond))                                                           \
      ::ptwgr::detail::check_failed("postcondition", #cond, __FILE__,      \
                                    __LINE__, std::string{});              \
  } while (false)
