#include "ptwgr/support/interval.h"

#include <algorithm>

namespace ptwgr {

std::int64_t max_overlap(std::vector<Interval> intervals) {
  if (intervals.empty()) return 0;
  // Event sweep: +1 at lo, -1 at hi; degenerate intervals widened by one.
  std::vector<std::pair<std::int64_t, std::int64_t>> events;
  events.reserve(intervals.size() * 2);
  for (Interval& iv : intervals) {
    PTWGR_EXPECTS(iv.lo <= iv.hi);
    const std::int64_t hi = (iv.lo == iv.hi) ? iv.hi + 1 : iv.hi;
    events.emplace_back(iv.lo, +1);
    events.emplace_back(hi, -1);
  }
  // Sort by position; ends (-1) before starts (+1) at equal positions, since
  // the intervals are half-open.
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  std::int64_t depth = 0;
  std::int64_t best = 0;
  for (const auto& [pos, delta] : events) {
    depth += delta;
    best = std::max(best, depth);
  }
  return best;
}

std::vector<Interval> merge_intervals(std::vector<Interval> intervals) {
  if (intervals.empty()) return intervals;
  for (Interval& iv : intervals) {
    PTWGR_EXPECTS(iv.lo <= iv.hi);
    if (iv.lo == iv.hi) iv.hi = iv.lo + 1;
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              if (a.lo != b.lo) return a.lo < b.lo;
              return a.hi < b.hi;
            });
  std::vector<Interval> merged;
  merged.push_back(intervals.front());
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].lo <= merged.back().hi) {
      merged.back().hi = std::max(merged.back().hi, intervals[i].hi);
    } else {
      merged.push_back(intervals[i]);
    }
  }
  return merged;
}

DensityProfile::DensityProfile(std::int64_t origin, std::int64_t bucket_width,
                               std::size_t num_buckets)
    : origin_(origin),
      bucket_width_(bucket_width),
      tree_(num_buckets, arena_slot("density_profile")) {
  PTWGR_EXPECTS(bucket_width > 0);
  PTWGR_EXPECTS(num_buckets > 0);
}

std::size_t DensityProfile::bucket_of(std::int64_t x) const {
  std::int64_t rel = x - origin_;
  if (rel < 0) rel = 0;
  auto idx = static_cast<std::size_t>(rel / bucket_width_);
  if (idx >= tree_.size()) idx = tree_.size() - 1;
  return idx;
}

std::pair<std::size_t, std::size_t> DensityProfile::bucket_range(
    Interval iv) const {
  PTWGR_EXPECTS(iv.lo <= iv.hi);
  // Half-open: the bucket containing hi is included only if hi is strictly
  // inside it; degenerate intervals are widened to one unit and occupy the
  // single bucket containing lo.
  return {bucket_of(iv.lo), bucket_of(iv.lo == iv.hi ? iv.hi : iv.hi - 1)};
}

void DensityProfile::apply(Interval iv, std::int64_t delta) {
  const auto [first, last] = bucket_range(iv);
  tree_.range_add(first, last, delta);
}

void DensityProfile::add_at_bucket(std::size_t bucket, std::int64_t delta) {
  PTWGR_EXPECTS(bucket < tree_.size());
  tree_.range_add(bucket, bucket, delta);
}

std::int64_t DensityProfile::bucket_count(std::size_t i) const {
  PTWGR_EXPECTS(i < tree_.size());
  return tree_.value_at(i);
}

std::int64_t DensityProfile::max_density_over(Interval iv) const {
  const auto [first, last] = bucket_range(iv);
  return std::max<std::int64_t>(0, tree_.range_max(first, last));
}

std::int64_t DensityProfile::max_density_excluding(Interval iv) const {
  const auto [first, last] = bucket_range(iv);
  std::int64_t best = 0;
  if (first > 0) best = std::max(best, tree_.range_max(0, first - 1));
  if (last + 1 < tree_.size()) {
    best = std::max(best, tree_.range_max(last + 1, tree_.size() - 1));
  }
  return best;
}

}  // namespace ptwgr
