#include "ptwgr/support/interval.h"

#include <algorithm>

namespace ptwgr {

std::int64_t max_overlap(std::vector<Interval> intervals) {
  if (intervals.empty()) return 0;
  // Event sweep: +1 at lo, -1 at hi; degenerate intervals widened by one.
  std::vector<std::pair<std::int64_t, std::int64_t>> events;
  events.reserve(intervals.size() * 2);
  for (Interval& iv : intervals) {
    PTWGR_EXPECTS(iv.lo <= iv.hi);
    const std::int64_t hi = (iv.lo == iv.hi) ? iv.hi + 1 : iv.hi;
    events.emplace_back(iv.lo, +1);
    events.emplace_back(hi, -1);
  }
  // Sort by position; ends (-1) before starts (+1) at equal positions, since
  // the intervals are half-open.
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  std::int64_t depth = 0;
  std::int64_t best = 0;
  for (const auto& [pos, delta] : events) {
    depth += delta;
    best = std::max(best, depth);
  }
  return best;
}

std::vector<Interval> merge_intervals(std::vector<Interval> intervals) {
  if (intervals.empty()) return intervals;
  for (Interval& iv : intervals) {
    PTWGR_EXPECTS(iv.lo <= iv.hi);
    if (iv.lo == iv.hi) iv.hi = iv.lo + 1;
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              if (a.lo != b.lo) return a.lo < b.lo;
              return a.hi < b.hi;
            });
  std::vector<Interval> merged;
  merged.push_back(intervals.front());
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].lo <= merged.back().hi) {
      merged.back().hi = std::max(merged.back().hi, intervals[i].hi);
    } else {
      merged.push_back(intervals[i]);
    }
  }
  return merged;
}

DensityProfile::DensityProfile(std::int64_t origin, std::int64_t bucket_width,
                               std::size_t num_buckets)
    : origin_(origin), bucket_width_(bucket_width), counts_(num_buckets, 0) {
  PTWGR_EXPECTS(bucket_width > 0);
  PTWGR_EXPECTS(num_buckets > 0);
}

std::size_t DensityProfile::bucket_of(std::int64_t x) const {
  std::int64_t rel = x - origin_;
  if (rel < 0) rel = 0;
  auto idx = static_cast<std::size_t>(rel / bucket_width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  return idx;
}

void DensityProfile::apply(Interval iv, std::int64_t delta) {
  PTWGR_EXPECTS(iv.lo <= iv.hi);
  const std::size_t first = bucket_of(iv.lo);
  // Half-open: the bucket containing hi is included only if hi is strictly
  // inside it; degenerate intervals still occupy one bucket.
  const std::size_t last = bucket_of(iv.lo == iv.hi ? iv.hi : iv.hi - 1);
  for (std::size_t b = first; b <= last; ++b) {
    counts_[b] += delta;
    total_ += delta;
    if (delta > 0) {
      if (!dirty_ && counts_[b] > cached_max_) cached_max_ = counts_[b];
    } else if (counts_[b] + 1 == cached_max_) {
      // Might have lowered the max; recompute lazily.
      dirty_ = true;
    }
  }
}

void DensityProfile::add_at_bucket(std::size_t bucket, std::int64_t delta) {
  PTWGR_EXPECTS(bucket < counts_.size());
  counts_[bucket] += delta;
  total_ += delta;
  if (delta > 0) {
    if (!dirty_ && counts_[bucket] > cached_max_) cached_max_ = counts_[bucket];
  } else if (delta < 0 && counts_[bucket] - delta == cached_max_) {
    dirty_ = true;
  }
}

std::int64_t DensityProfile::max_density() const {
  if (dirty_) {
    cached_max_ = *std::max_element(counts_.begin(), counts_.end());
    dirty_ = false;
  }
  return cached_max_;
}

std::int64_t DensityProfile::max_density_over(Interval iv) const {
  const std::size_t first = bucket_of(iv.lo);
  const std::size_t last = bucket_of(iv.lo == iv.hi ? iv.hi : iv.hi - 1);
  std::int64_t best = 0;
  for (std::size_t b = first; b <= last; ++b) {
    best = std::max(best, counts_[b]);
  }
  return best;
}

}  // namespace ptwgr
