// Minimal JSON emission helpers shared by the trace and metrics exporters.
//
// Writing only — the repo has no JSON dependency, and the exporters just
// need escaping and stable number formatting for Chrome trace-event files
// and the --metrics dump.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ptwgr::json {

/// Appends `s` to `out` as a quoted, escaped JSON string literal.
void append_quoted(std::string& out, std::string_view s);

inline std::string quoted(std::string_view s) {
  std::string out;
  append_quoted(out, s);
  return out;
}

/// Formats a double as a JSON number ("null" for NaN/Inf, which JSON cannot
/// represent).
std::string number(double value);

inline std::string number(std::int64_t value) { return std::to_string(value); }
inline std::string number(std::uint64_t value) { return std::to_string(value); }

}  // namespace ptwgr::json
