// Minimal JSON support shared by the trace/metrics/run-report exporters and
// the ptwgr_compare reader.
//
// The repo has no JSON dependency: emission is escaping plus stable number
// formatting, and reading is a small recursive-descent parser into a Value
// tree — enough for run reports, bench files, and the --metrics dumps the
// tooling produces itself (it accepts any standard JSON document).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ptwgr::json {

/// Appends `s` to `out` as a quoted, escaped JSON string literal.
void append_quoted(std::string& out, std::string_view s);

inline std::string quoted(std::string_view s) {
  std::string out;
  append_quoted(out, s);
  return out;
}

/// Formats a double as a JSON number ("null" for NaN/Inf, which JSON cannot
/// represent).
std::string number(double value);

inline std::string number(std::int64_t value) { return std::to_string(value); }
inline std::string number(std::uint64_t value) { return std::to_string(value); }

// --- reading ---------------------------------------------------------------

/// Malformed JSON input, with a byte offset into the document.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// One parsed JSON value.  Objects keep their members sorted by key (the
/// comparison tooling needs deterministic iteration, not source order).
class Value {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;

  Value() = default;
  static Value make_null() { return Value(); }
  static Value make_bool(bool b);
  static Value make_number(double n);
  static Value make_string(std::string s);
  static Value make_array(Array a);
  static Value make_object(Object o);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  /// Typed accessors; throw std::logic_error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  /// Dotted-path lookup ("metrics.tracks"); nullptr when any hop is absent.
  /// Path segments never contain dots in the documents this repo emits.
  const Value* find_path(std::string_view dotted) const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // Indirect so Value stays movable/copyable with incomplete containers.
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// Throws ParseError on malformed input.
Value parse(std::string_view text);

/// Reads and parses a JSON file.  Throws std::runtime_error when the file
/// cannot be read, ParseError when it cannot be parsed.
Value parse_file(const std::string& path);

}  // namespace ptwgr::json
