// Insertion-ordered metrics registry with JSON export.
//
// A flat name → value map (dotted names like "comm.rank0.bytes_sent" give it
// structure) that the CLI and benchmark harnesses fill after a run and dump
// with --metrics=FILE.  Values are integers, doubles, or strings; set()
// overwrites an existing name in place, so emission order stays stable.
// Synchronized with an internal mutex so parallel ranks may register
// concurrently; insertion order is then the (deterministically gated, but
// schedule-dependent) arrival order, so ranks writing concurrently should
// use rank-qualified names and sort on the reader side if order matters.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ptwgr {

class MetricsRegistry {
 public:
  void set(std::string_view name, std::int64_t value);
  void set(std::string_view name, double value);
  void set(std::string_view name, std::string_view value);

  // Disambiguating conveniences for common integer types.
  void set(std::string_view name, std::uint64_t value) {
    set(name, static_cast<std::int64_t>(value));
  }
  void set(std::string_view name, int value) {
    set(name, static_cast<std::int64_t>(value));
  }
  void set(std::string_view name, const char* value) {
    set(name, std::string_view(value));
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }
  bool empty() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.empty();
  }

  /// Numeric lookup (ints widen to double); nullopt when absent or a string.
  std::optional<double> get_number(std::string_view name) const;
  std::optional<std::string> get_string(std::string_view name) const;

  /// One JSON object, keys in insertion order.
  std::string to_json() const;

 private:
  enum class Kind : std::uint8_t { Int, Double, String };

  struct Entry {
    std::string name;
    Kind kind = Kind::Int;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
  };

  /// Both require mutex_ to be held by the caller.
  Entry& entry_for(std::string_view name);
  const Entry* find(std::string_view name) const;

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

}  // namespace ptwgr
