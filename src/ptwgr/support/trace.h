// Scoped-span tracing over arbitrary clocks, with Chrome trace-event export.
//
// The router and the parallel algorithms open a span per phase; parallel
// spans are stamped on each rank's *virtual* clock, so the exported trace
// shows the modeled parallel schedule, not the host's thread interleaving
// (DESIGN.md §observability).  Tracing is off unless a collector is
// installed with set_active_trace(): a disabled span is one relaxed atomic
// load — no clock read, no allocation, no lock — so instrumentation can stay
// in release builds and hot paths.
//
// The exported JSON (one "X" complete event per span, one thread track per
// rank) loads directly in Perfetto / chrome://tracing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ptwgr {

/// One closed span: a named interval on a rank's timeline, in seconds.
/// `cat` is the Chrome-trace category ("serial" pipeline steps, "parallel"
/// rank phases), so Perfetto can filter per subsystem.
struct TraceSpan {
  std::string name;
  std::string cat = "phase";
  int rank = 0;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
};

/// One message-causality arrow: a matched send→recv pair exported from the
/// causal ledger (obs::export_message_flows) as an "s"/"f" flow-event pair
/// binding the sender's and receiver's rank tracks.
struct TraceFlow {
  std::uint64_t id = 0;
  std::string name;
  int src_rank = 0;
  double src_seconds = 0.0;
  int dst_rank = 0;
  double dst_seconds = 0.0;
};

/// Thread-safe span sink.  Ranks record concurrently during a parallel run;
/// export happens after the run from one thread.
class TraceCollector {
 public:
  void record(const char* name, int rank, double start_seconds,
              double end_seconds, const char* cat = "phase");

  void record_flow(TraceFlow flow);

  std::size_t span_count() const;
  std::size_t flow_count() const;

  /// Snapshot of all recorded spans (copy; safe while ranks still record).
  std::vector<TraceSpan> spans() const;

  /// Chrome trace-event JSON: "X" events with ts/dur in microseconds,
  /// pid 0, tid = rank, thread_name/"rank N" metadata per track, per-span
  /// "cat" categories, and "s"/"f" flow pairs for recorded message flows.
  std::string to_chrome_json() const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceSpan> spans_;
  std::vector<TraceFlow> flows_;
};

/// The process-wide collector, or nullptr when tracing is disabled.
TraceCollector* active_trace();

/// Installs (or, with nullptr, removes) the process-wide collector.  Install
/// before launching the traced work; remove before destroying the collector.
void set_active_trace(TraceCollector* collector);

/// RAII span over a caller-supplied clock.  The clock is consulted only when
/// a collector is active, so instrumented code pays nothing when tracing is
/// off.  `name` must outlive the span (string literals in practice).
class ScopedSpan {
 public:
  using ClockFn = double (*)(void*);

  ScopedSpan(const char* name, int rank, ClockFn clock, void* clock_ctx)
      : collector_(active_trace()) {
    if (collector_ == nullptr) return;
    name_ = name;
    rank_ = rank;
    clock_ = clock;
    clock_ctx_ = clock_ctx;
    start_ = clock_(clock_ctx_);
  }

  ~ScopedSpan() {
    if (collector_ != nullptr) {
      collector_->record(name_, rank_, start_, clock_(clock_ctx_));
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceCollector* collector_;
  const char* name_ = nullptr;
  int rank_ = 0;
  ClockFn clock_ = nullptr;
  void* clock_ctx_ = nullptr;
  double start_ = 0.0;
};

}  // namespace ptwgr
