// Lazy-propagation segment tree over a fixed-size int64 array.
//
// The flip-sweep hot paths (coarse L-orientation improvement, switchable
// channel optimization) repeatedly ask "what is the max / sum of this demand
// row over a span?" and "add delta to every slot of a span".  Flat arrays
// answer those in O(span); this tree answers both in O(log n) and keeps the
// global max/sum at the root for O(1) whole-row queries — the enabling
// mechanism for the incremental congestion-delta evaluation of DESIGN.md §11.
//
// Only range-add updates exist (demand maps are additive), so queries never
// need to push lazy tags down: a node's aggregates always include its own
// pending tag, and a traversal just accumulates the ancestors' tags.  That
// keeps queries const and allocation-free.
#pragma once

#include <cstdint>
#include <vector>

#include "ptwgr/support/arena.h"
#include "ptwgr/support/check.h"

namespace ptwgr {

class LazySegmentTree {
 public:
  /// Tree over `size` zero-initialized elements (size >= 1).  The node
  /// arrays are charged to `arena` when one is given (obs/resource.h reports
  /// the per-tag footprint); nullptr keeps the tree untagged.
  explicit LazySegmentTree(std::size_t size, ArenaSlot* arena = nullptr);

  std::size_t size() const { return size_; }

  /// Adds `delta` to every element of the inclusive range [lo, hi].
  void range_add(std::size_t lo, std::size_t hi, std::int64_t delta);

  /// Max over the inclusive range [lo, hi].
  std::int64_t range_max(std::size_t lo, std::size_t hi) const;

  /// Sum over the inclusive range [lo, hi].
  std::int64_t range_sum(std::size_t lo, std::size_t hi) const;

  /// Single element value.
  std::int64_t value_at(std::size_t i) const { return range_max(i, i); }

  /// Max over all elements — O(1), read off the root.
  std::int64_t global_max() const { return max_[kRoot]; }

  /// Sum over all elements — O(1), read off the root.
  std::int64_t global_sum() const { return sum_[kRoot]; }

  /// Replaces the contents with `values` (must match size()); clears all
  /// pending tags.  O(n).
  void assign(const std::vector<std::int64_t>& values);

  /// Flattens the tree back to plain element values.  O(n).
  std::vector<std::int64_t> values() const;

 private:
  static constexpr std::size_t kRoot = 1;

  void build(std::size_t node, std::size_t lo, std::size_t hi,
             const std::vector<std::int64_t>& values);
  void add(std::size_t node, std::size_t lo, std::size_t hi, std::size_t ql,
           std::size_t qr, std::int64_t delta);
  std::int64_t query_max(std::size_t node, std::size_t lo, std::size_t hi,
                         std::size_t ql, std::size_t qr,
                         std::int64_t pending) const;
  std::int64_t query_sum(std::size_t node, std::size_t lo, std::size_t hi,
                         std::size_t ql, std::size_t qr,
                         std::int64_t pending) const;
  void flatten(std::size_t node, std::size_t lo, std::size_t hi,
               std::int64_t pending, std::vector<std::int64_t>& out) const;

  std::size_t size_;
  // 1-based heap layout, 4n nodes.  max_/sum_ are exact for the node's range
  // (including the node's own tag_); tag_ is the addition still pending for
  // the node's descendants.
  using NodeArray = std::vector<std::int64_t, ArenaAllocator<std::int64_t>>;
  NodeArray max_;
  NodeArray sum_;
  NodeArray tag_;
};

}  // namespace ptwgr
