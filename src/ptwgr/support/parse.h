// Strict numeric parsing for CLI flags.
//
// atoi/atoll/atof silently map garbage ("4x", "banana", "") to 0, so a typo
// in a flag becomes a structurally valid but wrong run.  parse_number
// accepts a value only when the entire string is a number of the requested
// type, letting callers reject bad input with a diagnostic instead.
#pragma once

#include <charconv>
#include <optional>
#include <string_view>
#include <system_error>

namespace ptwgr {

/// Parses ALL of `text` as a value of arithmetic type T.  Returns nullopt on
/// empty input, leading/trailing garbage, or overflow.
template <typename T>
std::optional<T> parse_number(std::string_view text) {
  T value{};
  const char* const begin = text.data();
  const char* const end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

}  // namespace ptwgr
