// Signal-based sampling CPU profiler with folded-stack (flamegraph) export.
//
// A SamplingProfiler arms ITIMER_PROF at a configurable rate; each SIGPROF
// delivery captures a raw backtrace into a preallocated flat buffer.  The
// handler is async-signal-disciplined: it saves/restores errno, touches only
// the preallocated buffer through an atomic cursor, and never allocates,
// locks, or formats.  backtrace(3) is warmed up once before the handler is
// installed so libgcc's unwinder is already loaded when the first signal
// lands.  Symbolization (dladdr + demangling) is lazy — it runs only after
// stop(), on the calling thread.
//
// The profiler is strictly measurement-only: it observes the interrupted
// program counter and changes no program state, so enabling it can never
// perturb routing determinism (it can only add the <5%-budget sampling
// overhead; see DESIGN.md §13).
//
// Output is the folded-stack format consumed by standard flamegraph tooling
// ("frame;frame;frame count" per line, root first), with lines sorted so the
// file itself is deterministic given the same samples.  ptwgr_analyze
// renders a top-N hot-frame table from the same format.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ptwgr {

class SamplingProfiler {
 public:
  struct Options {
    double hz = 97.0;  ///< odd rate avoids lockstep with 10ms-periodic work
    std::uint32_t max_samples = 1u << 16;
    std::uint32_t max_depth = 64;  ///< clamped to [4, 128]
  };

  SamplingProfiler();
  explicit SamplingProfiler(const Options& options);
  ~SamplingProfiler();
  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  /// Arms the timer and installs the SIGPROF handler.  Returns false when
  /// another profiler is already active in the process or the timer cannot
  /// be armed; at most one profiler samples at a time.
  bool start();

  /// Disarms the timer and restores the previous SIGPROF disposition.
  /// Captured samples stay available until the profiler is destroyed.
  void stop();

  bool running() const { return running_; }

  /// Samples captured so far (callable while running).
  std::uint64_t sample_count() const;
  /// Samples lost to buffer exhaustion.
  std::uint64_t dropped_samples() const;

  /// Folded-stack export: "root;caller;leaf count\n" per distinct stack,
  /// lines sorted.  Symbolizes lazily; call after stop().
  std::string folded() const;

 private:
  struct State;
  Options options_;
  std::unique_ptr<State> state_;
  bool running_ = false;
};

// --- folded-stack analysis (ptwgr_analyze) ---------------------------------

struct HotFrame {
  std::string name;
  std::uint64_t self = 0;   ///< samples with this frame as the leaf
  std::uint64_t total = 0;  ///< samples with this frame anywhere on stack
};

struct FoldedSummary {
  std::uint64_t total_samples = 0;
  std::vector<HotFrame> frames;  ///< sorted by self desc, then name
};

/// Parses folded-stack text (tolerates blank lines; a line without a
/// trailing integer count is skipped).
FoldedSummary summarize_folded(std::string_view folded);

/// Renders a top-K hot-frame table (self%, total%, frame).
std::string render_hot_frames(const FoldedSummary& summary, std::size_t top_k);

}  // namespace ptwgr
