#include "ptwgr/support/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace ptwgr::json {

void append_quoted(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

// --- Value -----------------------------------------------------------------

Value Value::make_bool(bool b) {
  Value v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

Value Value::make_number(double n) {
  Value v;
  v.kind_ = Kind::Number;
  v.number_ = n;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

Value Value::make_array(Array a) {
  Value v;
  v.kind_ = Kind::Array;
  v.array_ = std::make_shared<Array>(std::move(a));
  return v;
}

Value Value::make_object(Object o) {
  Value v;
  v.kind_ = Kind::Object;
  v.object_ = std::make_shared<Object>(std::move(o));
  return v;
}

namespace {
[[noreturn]] void kind_error(const char* wanted) {
  throw std::logic_error(std::string("json::Value is not a ") + wanted);
}
}  // namespace

bool Value::as_bool() const {
  if (!is_bool()) kind_error("bool");
  return bool_;
}

double Value::as_number() const {
  if (!is_number()) kind_error("number");
  return number_;
}

const std::string& Value::as_string() const {
  if (!is_string()) kind_error("string");
  return string_;
}

const Value::Array& Value::as_array() const {
  if (!is_array()) kind_error("array");
  return *array_;
}

const Value::Object& Value::as_object() const {
  if (!is_object()) kind_error("object");
  return *object_;
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto it = object_->find(std::string(key));
  return it == object_->end() ? nullptr : &it->second;
}

const Value* Value::find_path(std::string_view dotted) const {
  const Value* at = this;
  std::size_t start = 0;
  while (at != nullptr && start <= dotted.size()) {
    const std::size_t dot = dotted.find('.', start);
    const std::string_view segment =
        dotted.substr(start, dot == std::string_view::npos ? dotted.size() - start
                                                           : dot - start);
    at = at->find(segment);
    if (dot == std::string_view::npos) return at;
    start = dot + 1;
  }
  return at;
}

// --- parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(what, pos_);
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.compare(pos_, literal.size(), literal) != 0) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return Value::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return Value::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return Value::make_null();
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return Value::make_object(std::move(members));
  }

  Value parse_array() {
    expect('[');
    Value::Array elements;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value::make_array(std::move(elements));
    }
    while (true) {
      elements.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return Value::make_array(std::move(elements));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              --pos_;
              fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are beyond what
          // our own emitters produce; pass them through as-is).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          --pos_;
          fail("invalid escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      pos_ = start;
      fail("invalid number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("invalid number");
    }
    return Value::make_number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read JSON file " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

}  // namespace ptwgr::json
