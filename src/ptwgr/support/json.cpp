#include "ptwgr/support/json.h"

#include <cmath>
#include <cstdio>

namespace ptwgr::json {

void append_quoted(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

}  // namespace ptwgr::json
