// Deterministic pseudo-random number generation.
//
// TWGR's coarse-routing and switchable-segment steps visit work items in a
// random order, and the paper stresses that randomization removes order
// dependence.  Reproducible experiments therefore need a seedable,
// platform-independent generator: xoshiro256** seeded via SplitMix64, which
// is both faster and better distributed than std::mt19937 and — unlike
// std::uniform_int_distribution — produces identical streams on every
// implementation.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "ptwgr/support/check.h"

namespace ptwgr {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded with SplitMix64.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes state from a 64-bit seed via SplitMix64 expansion.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    PTWGR_EXPECTS(bound > 0);
    // Lemire's nearly-divisionless method with rejection for exactness.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    PTWGR_EXPECTS(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // span == 0 means the full 64-bit range.
    const std::uint64_t offset = (span == 0) ? (*this)() : next_below(span);
    return lo + static_cast<std::int64_t>(offset);
  }

  /// Uniform size_t index in [0, n). n must be positive.
  std::size_t next_index(std::size_t n) {
    return static_cast<std::size_t>(next_below(static_cast<std::uint64_t>(n)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  bool next_bool(double p = 0.5) { return next_double() < p; }

  /// Fisher–Yates shuffle (deterministic given the generator state).
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = next_index(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; used to give each rank / each
  /// router step its own stream so parallel runs stay deterministic.
  Rng split();

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace ptwgr
