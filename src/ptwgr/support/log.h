// Minimal leveled logging to stderr.
//
// The router and the parallel algorithms log phase transitions at Info and
// per-step details at Debug.  The level is process-global and defaults to
// Warn so that tests and benchmarks stay quiet; set PTWGR_LOG=debug|info|
// warn|error in the environment or call set_log_level().
#pragma once

#include <sstream>
#include <string>

namespace ptwgr {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Current process-wide level (reads PTWGR_LOG on first use).
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emits one line to stderr if `level` is enabled.  Thread-safe.
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace ptwgr

#define PTWGR_LOG(level)                                \
  if (::ptwgr::log_level() <= ::ptwgr::LogLevel::level) \
  ::ptwgr::detail::LogStream(::ptwgr::LogLevel::level)

#define PTWGR_LOG_DEBUG PTWGR_LOG(Debug)
#define PTWGR_LOG_INFO PTWGR_LOG(Info)
#define PTWGR_LOG_WARN PTWGR_LOG(Warn)
#define PTWGR_LOG_ERROR PTWGR_LOG(Error)
