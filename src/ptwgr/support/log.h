// Minimal leveled logging to stderr.
//
// The router and the parallel algorithms log phase transitions at Info and
// per-step details at Debug.  The level is process-global and defaults to
// Warn so that tests and benchmarks stay quiet; set PTWGR_LOG=debug|info|
// warn|error in the environment or call set_log_level().
#pragma once

#include <sstream>
#include <string>

namespace ptwgr {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Current process-wide level (reads PTWGR_LOG on first use).
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parses "debug|info|warn|error|off" (as in PTWGR_LOG and --log-level);
/// anything else falls back to Warn.
LogLevel parse_log_level(const char* name);

/// Associates the calling thread with an mp rank: log lines emitted from it
/// carry an "rN" marker.  -1 (the default) clears the association.  The mp
/// runtime sets this for every rank thread via ScopedLogRank.
void set_thread_log_rank(int rank);
int thread_log_rank();

class ScopedLogRank {
 public:
  explicit ScopedLogRank(int rank) : previous_(thread_log_rank()) {
    set_thread_log_rank(rank);
  }
  ~ScopedLogRank() { set_thread_log_rank(previous_); }
  ScopedLogRank(const ScopedLogRank&) = delete;
  ScopedLogRank& operator=(const ScopedLogRank&) = delete;

 private:
  int previous_;
};

/// Emits one line to stderr if `level` is enabled, prefixed with the level,
/// a monotonic timestamp (seconds since the first log line), and the
/// calling thread's rank when one is set.  Thread-safe; each line is
/// written atomically.
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace ptwgr

#define PTWGR_LOG(level)                                \
  if (::ptwgr::log_level() <= ::ptwgr::LogLevel::level) \
  ::ptwgr::detail::LogStream(::ptwgr::LogLevel::level)

#define PTWGR_LOG_DEBUG PTWGR_LOG(Debug)
#define PTWGR_LOG_INFO PTWGR_LOG(Info)
#define PTWGR_LOG_WARN PTWGR_LOG(Warn)
#define PTWGR_LOG_ERROR PTWGR_LOG(Error)
