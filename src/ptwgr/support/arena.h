// Tagged allocation arenas: named byte/count accounting for the hot
// routing structures (coarse grid, segment trees, mailboxes).
//
// A tag is a process-wide slot holding cumulative allocation count/bytes
// plus live/peak bytes.  Charges are unconditional relaxed atomics — a few
// nanoseconds on paths that are already building vectors or taking a mutex —
// so the live accounting stays exact across ResourceCollector
// install/uninstall (the collector snapshots slot baselines at install and
// reports deltas; see obs/resource.h).  Cumulative count/bytes are driven by
// each thread's own deterministic work, which makes them part of the
// resource report's *canonical* (same seed ⇒ byte-identical) form.
//
// Two adapter styles:
//   * ArenaAllocator<T> — a std-allocator that charges a slot per
//     allocate/deallocate; backs the segment-tree node arrays and the
//     coarse grid's demand map.
//   * explicit arena_charge()/arena_discharge() — for structures whose
//     footprint is not container storage (mailbox payload backlogs).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace ptwgr {

/// Ceiling on distinct tags; registration past it returns nullptr and the
/// charges become no-ops (never an error on a hot path).
inline constexpr std::size_t kMaxArenaTags = 32;

/// One tag's accounting.  `name` is written once under the registration
/// mutex and read-only afterwards.
struct ArenaSlot {
  const char* name = nullptr;
  std::atomic<std::uint64_t> count{0};  ///< cumulative allocations
  std::atomic<std::uint64_t> bytes{0};  ///< cumulative bytes charged
  std::atomic<std::int64_t> live{0};    ///< currently charged bytes
  std::atomic<std::int64_t> peak{0};    ///< max of live (reset at install)
};

/// The process-wide slot for `tag`, registering it on first use.  `tag`
/// must outlive the process (a string literal); equal strings share a slot.
/// Returns nullptr when the registry is full.
ArenaSlot* arena_slot(const char* tag);

/// Registry iteration (snapshotting); slots are append-only.
std::size_t arena_slot_count();
ArenaSlot* arena_slot_at(std::size_t index);

inline void arena_charge(ArenaSlot* slot, std::size_t bytes,
                         std::uint64_t count = 1) noexcept {
  if (slot == nullptr) return;
  const auto delta = static_cast<std::int64_t>(bytes);
  slot->count.fetch_add(count, std::memory_order_relaxed);
  slot->bytes.fetch_add(static_cast<std::uint64_t>(bytes),
                        std::memory_order_relaxed);
  const std::int64_t live =
      slot->live.fetch_add(delta, std::memory_order_relaxed) + delta;
  std::int64_t peak = slot->peak.load(std::memory_order_relaxed);
  while (live > peak && !slot->peak.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

inline void arena_discharge(ArenaSlot* slot, std::size_t bytes) noexcept {
  if (slot == nullptr) return;
  slot->live.fetch_sub(static_cast<std::int64_t>(bytes),
                       std::memory_order_relaxed);
}

/// Std-allocator adapter charging a slot per allocate/deallocate.  A
/// default-constructed (slot-less) allocator charges nothing, so tagged and
/// untagged containers share one type.  Stateful: containers propagate the
/// slot on copy/move/swap, and deallocate always sees the same (slot, n) as
/// the matching allocate, keeping charges symmetric.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(ArenaSlot* slot) noexcept : slot_(slot) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : slot_(other.slot()) {}

  T* allocate(std::size_t n) {
    arena_charge(slot_, n * sizeof(T));
    return std::allocator<T>().allocate(n);
  }

  void deallocate(T* p, std::size_t n) noexcept {
    arena_discharge(slot_, n * sizeof(T));
    std::allocator<T>().deallocate(p, n);
  }

  ArenaSlot* slot() const noexcept { return slot_; }

  friend bool operator==(const ArenaAllocator& a,
                         const ArenaAllocator& b) noexcept {
    return a.slot_ == b.slot_;
  }

 private:
  ArenaSlot* slot_ = nullptr;
};

}  // namespace ptwgr
