#include "ptwgr/support/rng.h"

namespace ptwgr {

Rng Rng::split() {
  // Draw a fresh seed from this stream; the SplitMix64 expansion in reseed()
  // decorrelates the child state from the parent state.
  return Rng{(*this)()};
}

}  // namespace ptwgr
