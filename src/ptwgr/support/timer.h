// Wall-clock and per-thread CPU timers.
//
// The virtual-clock timing model in ptwgr/mp needs each rank's *own* compute
// time, independent of how the OS schedules the rank threads onto cores
// (this reproduction may run on a single-core host, where wall clock measures
// nothing useful about per-rank work).  CLOCK_THREAD_CPUTIME_ID provides
// exactly that.
#pragma once

#include <chrono>
#include <ctime>

namespace ptwgr {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// CPU time consumed by the calling thread, in seconds.
/// Falls back to process CPU time on platforms without per-thread clocks.
inline double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

/// Stopwatch over the calling thread's CPU time.  Must be read from the same
/// thread that constructed it.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(thread_cpu_seconds()) {}

  void reset() { start_ = thread_cpu_seconds(); }

  /// Thread CPU seconds since construction or the last reset().
  double seconds() const { return thread_cpu_seconds() - start_; }

 private:
  double start_;
};

}  // namespace ptwgr
