// Interval overlap machinery.
//
// Channel density — the quality metric the paper reports as "tracks" — is the
// maximum number of net wires crossing any x position of a channel.  Final
// metrics use an exact endpoint sweep over wire intervals; the optimization
// inner loops use a bucketed DensityProfile that supports cheap incremental
// add/remove of intervals.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ptwgr/support/check.h"
#include "ptwgr/support/segment_tree.h"

namespace ptwgr {

/// Half-open horizontal interval [lo, hi).  Degenerate intervals (lo == hi)
/// represent vertical stubs and contribute one unit of width when densified.
struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// Exact maximum overlap of a set of intervals (the channel density):
/// max over x of |{i : lo_i <= x < hi_i}|.  Degenerate intervals are widened
/// to one unit.  O(n log n).
std::int64_t max_overlap(std::vector<Interval> intervals);

/// Merges overlapping or touching intervals into their union.  Degenerate
/// intervals are widened to one unit first.  Channel density counts *nets*,
/// not wire segments: all wires one net runs through a channel merge into a
/// single track wherever they meet, so per-net interval union precedes the
/// overlap sweep.
std::vector<Interval> merge_intervals(std::vector<Interval> intervals);

/// Bucketed density counter over a fixed coordinate range.
///
/// The range [origin, origin + num_buckets * bucket_width) is divided into
/// equal buckets; each interval increments every bucket it touches.  Backed
/// by a lazy segment tree (DESIGN.md §11): interval add/remove is a single
/// range-add in O(log n), the channel max is read off the root in O(1), and
/// span peaks are range-max queries in O(log n) — no full-bucket rescans
/// after removals.  This is the structure TWGR-style delta evaluation needs:
/// asking "what would the channel peaks be if this wire moved?" without
/// mutating anything.
class DensityProfile {
 public:
  DensityProfile(std::int64_t origin, std::int64_t bucket_width,
                 std::size_t num_buckets);

  void add(Interval iv) { apply(iv, +1); }
  void remove(Interval iv) { apply(iv, -1); }

  /// Maximum bucket count — O(1).
  std::int64_t max_density() const { return tree_.global_max(); }

  /// Maximum bucket count within the buckets an interval touches (>= 0).
  std::int64_t max_density_over(Interval iv) const;

  /// Maximum bucket count over the buckets an interval does NOT touch
  /// (>= 0; 0 when the interval spans the whole profile).  Combined with
  /// max_density_over this yields a wire's removed-state channel peak
  /// without remove/re-add.
  std::int64_t max_density_excluding(Interval iv) const;

  /// Direct bucket adjustment — used to merge deltas produced by another
  /// replica of the same profile (net-wise parallel synchronization).
  void add_at_bucket(std::size_t bucket, std::int64_t delta);

  /// Bucket index covering coordinate x (clamped).
  std::size_t bucket_of(std::int64_t x) const;

  /// Inclusive bucket index range an interval touches.  The single source of
  /// truth for interval→bucket widening: a degenerate interval (lo == hi, a
  /// vertical stub) occupies exactly the bucket containing lo, and a
  /// half-open interval excludes the bucket that hi starts.  Anything that
  /// mirrors profile updates (e.g. the switchable pending-delta accumulator)
  /// must use this, not its own arithmetic on the raw span.
  std::pair<std::size_t, std::size_t> bucket_range(Interval iv) const;

  /// Sum of all bucket counts (proxy for total wirelength in the channel).
  std::int64_t total() const { return tree_.global_sum(); }

  std::size_t num_buckets() const { return tree_.size(); }
  std::int64_t bucket_count(std::size_t i) const;

 private:
  void apply(Interval iv, std::int64_t delta);

  std::int64_t origin_;
  std::int64_t bucket_width_;
  LazySegmentTree tree_;
};

}  // namespace ptwgr
