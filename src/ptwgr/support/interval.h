// Interval overlap machinery.
//
// Channel density — the quality metric the paper reports as "tracks" — is the
// maximum number of net wires crossing any x position of a channel.  Final
// metrics use an exact endpoint sweep over wire intervals; the optimization
// inner loops use a bucketed DensityProfile that supports cheap incremental
// add/remove of intervals.
#pragma once

#include <cstdint>
#include <vector>

#include "ptwgr/support/check.h"

namespace ptwgr {

/// Half-open horizontal interval [lo, hi).  Degenerate intervals (lo == hi)
/// represent vertical stubs and contribute one unit of width when densified.
struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// Exact maximum overlap of a set of intervals (the channel density):
/// max over x of |{i : lo_i <= x < hi_i}|.  Degenerate intervals are widened
/// to one unit.  O(n log n).
std::int64_t max_overlap(std::vector<Interval> intervals);

/// Merges overlapping or touching intervals into their union.  Degenerate
/// intervals are widened to one unit first.  Channel density counts *nets*,
/// not wire segments: all wires one net runs through a channel merge into a
/// single track wherever they meet, so per-net interval union precedes the
/// overlap sweep.
std::vector<Interval> merge_intervals(std::vector<Interval> intervals);

/// Bucketed density counter over a fixed coordinate range.
///
/// The range [origin, origin + num_buckets * bucket_width) is divided into
/// equal buckets; each interval increments every bucket it touches.  Density
/// queries return the max bucket count.  This is the structure TWGR-style
/// delta evaluation needs: adding/removing a candidate wire and asking "did
/// the channel max change?" in O(buckets touched).
class DensityProfile {
 public:
  DensityProfile(std::int64_t origin, std::int64_t bucket_width,
                 std::size_t num_buckets);

  void add(Interval iv) { apply(iv, +1); }
  void remove(Interval iv) { apply(iv, -1); }

  /// Maximum bucket count (cached; recomputed lazily after removals).
  std::int64_t max_density() const;

  /// Maximum bucket count within the buckets an interval touches.
  std::int64_t max_density_over(Interval iv) const;

  /// Direct bucket adjustment — used to merge deltas produced by another
  /// replica of the same profile (net-wise parallel synchronization).
  void add_at_bucket(std::size_t bucket, std::int64_t delta);

  /// Bucket index covering coordinate x (clamped).
  std::size_t bucket_of(std::int64_t x) const;

  /// Sum of all bucket counts (proxy for total wirelength in the channel).
  std::int64_t total() const { return total_; }

  std::size_t num_buckets() const { return counts_.size(); }
  std::int64_t bucket_count(std::size_t i) const { return counts_.at(i); }

 private:
  void apply(Interval iv, std::int64_t delta);

  std::int64_t origin_;
  std::int64_t bucket_width_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
  // Cached max: exact when dirty_ is false; recomputed on demand otherwise.
  mutable std::int64_t cached_max_ = 0;
  mutable bool dirty_ = false;
};

}  // namespace ptwgr
