#include "ptwgr/support/serialize.h"

// Header-only today; this translation unit pins the vtable-free types into
// the library and keeps a home for future out-of-line helpers.
