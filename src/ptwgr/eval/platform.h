// Platform models for the Table 5 reproduction.
//
// The paper evaluates on a Sun SparcCenter 1000 SMP (8 processors) and an
// Intel Paragon DMP (32 MB per node; serial runs of industry3 and avq.large
// did not finish — the Table 5 footnote).  A platform couples a
// communication/compute cost model with the node memory limit that produces
// those serial "timeouts".
#pragma once

#include <cstddef>
#include <string>

#include "ptwgr/mp/cost_model.h"

namespace ptwgr {

struct Platform {
  std::string name;
  mp::CostModel cost;
  /// Per-node memory in bytes; 0 = unlimited.
  std::size_t node_memory_bytes = 0;
  /// Largest processor count the machine offers.
  int max_processors = 8;

  /// Whether a serial run with the given estimated footprint completes on
  /// one node (the paper's Paragon serial timeouts were memory-thrashing).
  bool serial_fits(std::size_t estimated_bytes) const {
    return node_memory_bytes == 0 || estimated_bytes <= node_memory_bytes;
  }

  static Platform sparc_center();
  static Platform paragon();
  /// Zero-communication-cost reference platform (unit compute scale).
  static Platform ideal();
};

}  // namespace ptwgr
