#include "ptwgr/eval/channel_report.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "ptwgr/support/interval.h"
#include "ptwgr/support/table.h"

namespace ptwgr {

std::string render_channel_profile(const Circuit& circuit,
                                   const std::vector<Wire>& wires,
                                   std::size_t columns) {
  PTWGR_EXPECTS(columns >= 1);
  const std::size_t num_channels = circuit.num_channels();
  const Coord width = std::max<Coord>(circuit.core_width(), 1);
  const RoutingMetrics metrics = compute_metrics(circuit, wires);

  // Per (channel, slice): count distinct nets covering the slice midpoint.
  // A coarse view — the exact densities come from the metrics sweep.
  std::vector<std::vector<std::pair<std::uint32_t, Interval>>> per_channel(
      num_channels);
  for (const Wire& wire : wires) {
    per_channel[wire.channel].emplace_back(wire.net.value(),
                                           Interval{wire.lo, wire.hi});
  }

  std::ostringstream os;
  os << "channel profile (" << columns << " slices, digit = nets in slice,"
     << " capped at 9)\n";
  for (std::size_t c = num_channels; c-- > 0;) {
    os << "ch " << (c < 10 ? " " : "") << c << " |";
    auto& entries = per_channel[c];
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first < b.first;
                return a.second.lo < b.second.lo;
              });
    for (std::size_t s = 0; s < columns; ++s) {
      const Coord x = static_cast<Coord>(
          (static_cast<double>(s) + 0.5) * static_cast<double>(width) /
          static_cast<double>(columns));
      std::size_t depth = 0;
      std::uint32_t last_net_counted = 0;
      bool counted_any = false;
      for (const auto& [net, iv] : entries) {
        const Coord hi = iv.lo == iv.hi ? iv.hi + 1 : iv.hi;
        if (x >= iv.lo && x < hi) {
          if (!counted_any || net != last_net_counted) {
            ++depth;
            last_net_counted = net;
            counted_any = true;
          }
        }
      }
      os << (depth == 0 ? '.'
                        : static_cast<char>('0' + std::min<std::size_t>(
                                                      depth, 9)));
    }
    os << "| density " << metrics.channel_density[c] << '\n';
  }
  os << "tracks total: " << metrics.track_count << '\n';
  return os.str();
}

void write_routing_report(std::ostream& out, const Circuit& circuit,
                          const std::vector<Wire>& wires,
                          const RoutingMetrics* metrics_override) {
  const RoutingMetrics metrics = metrics_override != nullptr
                                     ? *metrics_override
                                     : compute_metrics(circuit, wires);
  out << "# ptwgr routing report\n";
  out << "circuit: " << circuit.num_rows() << " rows, " << circuit.num_cells()
      << " cells, " << circuit.num_nets() << " nets, " << circuit.num_pins()
      << " pins\n";
  out << "metrics: " << metrics.to_string() << "\n\n";
  out << render_channel_profile(circuit, wires) << '\n';

  std::vector<Wire> sorted = wires;
  std::sort(sorted.begin(), sorted.end(), [](const Wire& a, const Wire& b) {
    if (a.channel != b.channel) return a.channel < b.channel;
    if (a.lo != b.lo) return a.lo < b.lo;
    return a.net.value() < b.net.value();
  });
  out << "wires (channel lo hi net switchable):\n";
  for (const Wire& wire : sorted) {
    out << wire.channel << ' ' << wire.lo << ' ' << wire.hi << ' '
        << wire.net.value() << ' ' << (wire.switchable ? 1 : 0) << '\n';
  }
}

}  // namespace ptwgr
