// Human-readable routing reports: per-channel density profiles rendered as
// ASCII, and a full wire-list dump.  Used by the CLI tool and the examples
// to make routing results inspectable without a layout viewer.
#pragma once

#include <iosfwd>
#include <string>

#include "ptwgr/route/metrics.h"

namespace ptwgr {

/// One line per channel: index, exact density, and a bar profile of the
/// channel's occupancy across `columns` equal x-slices (each character is
/// the per-net density in that slice, capped at 9, '.' for zero).
std::string render_channel_profile(const Circuit& circuit,
                                   const std::vector<Wire>& wires,
                                   std::size_t columns = 64);

/// Writes a complete text report: metrics summary, channel profile, and the
/// wire list sorted by (channel, lo).  `metrics` overrides the summary line
/// when given — parallel runs pass their assembled metrics, because the
/// global circuit does not materialize the feedthrough cells the recompute
/// would need.
void write_routing_report(std::ostream& out, const Circuit& circuit,
                          const std::vector<Wire>& wires,
                          const RoutingMetrics* metrics = nullptr);

}  // namespace ptwgr
