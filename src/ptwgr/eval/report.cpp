#include "ptwgr/eval/report.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "ptwgr/circuit/circuit_stats.h"
#include "ptwgr/support/table.h"

namespace ptwgr {
namespace {

const RunPoint* point_at(const CircuitExperiment& run, int procs) {
  for (const RunPoint& p : run.points) {
    if (p.procs == procs) return &p;
  }
  return nullptr;
}

std::vector<int> proc_columns(const std::vector<CircuitExperiment>& runs) {
  std::vector<int> procs;
  for (const CircuitExperiment& run : runs) {
    for (const RunPoint& p : run.points) {
      if (std::find(procs.begin(), procs.end(), p.procs) == procs.end()) {
        procs.push_back(p.procs);
      }
    }
  }
  std::sort(procs.begin(), procs.end());
  return procs;
}

}  // namespace

std::string render_table1(double scale) {
  TextTable table("Table 1: Characteristics of test circuits (regenerated"
                  " synthetically; scale=" + format_fixed(scale, 2) + ")");
  table.add_row({"circuit", "rows", "pins", "cells", "nets", "max net"});
  for (const SuiteEntry& entry : benchmark_suite(scale)) {
    const Circuit circuit = build_suite_circuit(entry);
    const CircuitStats stats = compute_stats(circuit);
    table.add_row({entry.name, std::to_string(stats.rows),
                   format_grouped(static_cast<long long>(stats.pins)),
                   format_grouped(static_cast<long long>(stats.cells)),
                   format_grouped(static_cast<long long>(stats.nets)),
                   format_grouped(static_cast<long long>(
                       stats.max_pins_on_net))});
  }
  return table.to_string();
}

std::string render_scaled_tracks_table(
    const std::string& title, const std::vector<CircuitExperiment>& runs) {
  const auto procs = proc_columns(runs);
  TextTable table(title);
  std::vector<std::string> header{"circuit"};
  for (const int p : procs) header.push_back(std::to_string(p) + " procs");
  table.add_row(header);
  for (const CircuitExperiment& run : runs) {
    std::vector<std::string> row{run.circuit};
    for (const int p : procs) {
      const RunPoint* point = point_at(run, p);
      row.push_back(point ? format_fixed(point->scaled_tracks, 3) : "-");
    }
    table.add_row(row);
  }
  std::vector<std::string> mean_row{"(mean)"};
  for (const int p : procs) {
    mean_row.push_back(format_fixed(mean_scaled_tracks_at(runs, p), 3));
  }
  table.add_row(mean_row);
  return table.to_string();
}

std::string render_scaled_area_table(
    const std::string& title, const std::vector<CircuitExperiment>& runs) {
  const auto procs = proc_columns(runs);
  TextTable table(title);
  std::vector<std::string> header{"circuit"};
  for (const int p : procs) header.push_back(std::to_string(p) + " procs");
  table.add_row(header);
  for (const CircuitExperiment& run : runs) {
    std::vector<std::string> row{run.circuit};
    for (const int p : procs) {
      const RunPoint* point = point_at(run, p);
      row.push_back(point ? format_fixed(point->scaled_area, 3) : "-");
    }
    table.add_row(row);
  }
  return table.to_string();
}

std::string render_comm_volume_table(
    const std::string& title, const std::vector<CircuitExperiment>& runs) {
  const auto procs = proc_columns(runs);
  const auto human_bytes = [](std::uint64_t bytes) {
    if (bytes >= 10ull * 1024 * 1024) {
      return format_fixed(static_cast<double>(bytes) / (1024.0 * 1024.0), 1) +
             " MiB";
    }
    if (bytes >= 10ull * 1024) {
      return format_fixed(static_cast<double>(bytes) / 1024.0, 1) + " KiB";
    }
    return std::to_string(bytes) + " B";
  };
  TextTable table(title);
  std::vector<std::string> header{"circuit"};
  for (const int p : procs) header.push_back(std::to_string(p) + " procs");
  table.add_row(header);
  for (const CircuitExperiment& run : runs) {
    std::vector<std::string> row{run.circuit};
    for (const int p : procs) {
      const RunPoint* point = point_at(run, p);
      row.push_back(point ? human_bytes(point->comm_bytes) + " / " +
                                format_grouped(static_cast<long long>(
                                    point->comm_messages)) + " msg"
                          : "-");
    }
    table.add_row(row);
  }
  return table.to_string();
}

std::string render_speedup_figure(const std::string& title,
                                  const std::vector<CircuitExperiment>& runs) {
  std::ostringstream os;
  os << title << '\n';
  const auto procs = proc_columns(runs);
  for (const CircuitExperiment& run : runs) {
    os << run.circuit << '\n';
    for (const int p : procs) {
      const RunPoint* point = point_at(run, p);
      if (point == nullptr) continue;
      const auto bar = static_cast<std::size_t>(
          std::max(0.0, point->speedup) * 6.0);
      os << "  " << p << (p >= 10 ? "" : " ") << " procs |"
         << std::string(std::min<std::size_t>(bar, 120), '#') << ' '
         << format_fixed(point->speedup, 2)
         << (point->speedup_extrapolated ? "*" : "") << '\n';
    }
  }
  os << "(bar: 6 chars per 1x speedup; * = serial baseline extrapolated)\n";
  return os.str();
}

std::string render_table5_platform(
    const Platform& platform, const std::vector<CircuitExperiment>& runs) {
  const auto procs = proc_columns(runs);
  std::ostringstream os;
  os << "Platform: " << platform.name << '\n';

  TextTable table;
  std::vector<std::string> header{"results"};
  for (const CircuitExperiment& run : runs) header.push_back(run.circuit);
  table.add_row(header);

  const auto add_metric_row =
      [&](const std::string& label,
          const std::function<std::string(const CircuitExperiment&)>& cell) {
        std::vector<std::string> row{label};
        for (const CircuitExperiment& run : runs) row.push_back(cell(run));
        table.add_row(row);
      };

  add_metric_row("serial: tracks", [](const CircuitExperiment& run) {
    return format_grouped(run.serial_tracks);
  });
  add_metric_row("serial: area", [](const CircuitExperiment& run) {
    return format_grouped(run.serial_area);
  });
  add_metric_row("serial: time (s)", [](const CircuitExperiment& run) {
    return run.serial_modeled_seconds
               ? format_fixed(*run.serial_modeled_seconds, 1)
               : std::string("timeout");
  });
  for (const int p : procs) {
    const std::string prefix = std::to_string(p) + " procs: ";
    add_metric_row(prefix + "time (s)", [p](const CircuitExperiment& run) {
      const RunPoint* point = point_at(run, p);
      return point ? format_fixed(point->modeled_seconds, 1)
                   : std::string("-");
    });
    add_metric_row(prefix + "speedup", [p](const CircuitExperiment& run) {
      const RunPoint* point = point_at(run, p);
      if (point == nullptr) return std::string("-");
      return format_fixed(point->speedup, 2) +
             (point->speedup_extrapolated ? "*" : "");
    });
    add_metric_row(prefix + "tracks (scaled)",
                   [p](const CircuitExperiment& run) {
                     const RunPoint* point = point_at(run, p);
                     return point ? format_fixed(point->scaled_tracks, 3)
                                  : std::string("-");
                   });
    add_metric_row(prefix + "area (scaled)",
                   [p](const CircuitExperiment& run) {
                     const RunPoint* point = point_at(run, p);
                     return point ? format_fixed(point->scaled_area, 3)
                                  : std::string("-");
                   });
  }
  os << table.to_string();
  if (platform.node_memory_bytes != 0) {
    os << "('timeout': serial footprint exceeds "
       << platform.node_memory_bytes / (1024 * 1024)
       << " MB/node; * = speedup extrapolated as in the paper)\n";
  }
  return os.str();
}

double mean_speedup_at(const std::vector<CircuitExperiment>& runs,
                       int procs) {
  double total = 0.0;
  std::size_t n = 0;
  for (const CircuitExperiment& run : runs) {
    if (const RunPoint* point = point_at(run, procs)) {
      total += point->speedup;
      ++n;
    }
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

double mean_scaled_tracks_at(const std::vector<CircuitExperiment>& runs,
                             int procs) {
  double total = 0.0;
  std::size_t n = 0;
  for (const CircuitExperiment& run : runs) {
    if (const RunPoint* point = point_at(run, procs)) {
      total += point->scaled_tracks;
      ++n;
    }
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

}  // namespace ptwgr
