// Experiment runner: the machinery behind every paper table and figure.
//
// For one circuit and one algorithm it measures the serial baseline and the
// parallel runs across a processor sweep, deriving the paper's reported
// quantities: scaled tracks, scaled area, modeled runtimes, and speedups.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ptwgr/circuit/suite.h"
#include "ptwgr/eval/platform.h"
#include "ptwgr/parallel/parallel_router.h"
#include "ptwgr/route/router.h"

namespace ptwgr {

struct ExperimentConfig {
  /// Suite scale factor (1.0 = Table 1 magnitudes).
  double scale = 1.0;
  std::vector<int> proc_counts = {1, 2, 4, 8};
  ParallelOptions options;
  Platform platform = Platform::sparc_center();
};

/// One parallel measurement point.
struct RunPoint {
  int procs = 0;
  std::int64_t tracks = 0;
  std::int64_t area = 0;
  /// Modeled parallel runtime on the platform (slowest rank's virtual time).
  double modeled_seconds = 0.0;
  /// tracks / serial tracks.
  double scaled_tracks = 0.0;
  /// area / serial area.
  double scaled_area = 0.0;
  /// serial modeled time / parallel modeled time.  When the serial run does
  /// not fit the platform (Paragon memory timeouts), this is extrapolated
  /// from the smallest parallel run, as the paper does, and flagged.
  double speedup = 0.0;
  bool speedup_extrapolated = false;
  /// Communication volume across all ranks: p2p messages + collective
  /// invocations, and p2p payload bytes + collective contribution bytes.
  std::uint64_t comm_messages = 0;
  std::uint64_t comm_bytes = 0;
  /// The run's full quality metrics (wirelength, per-channel densities,
  /// flip-sweep counters) — what the machine-readable bench files export.
  RoutingMetrics metrics;
};

/// Full result for one (circuit, algorithm, platform) experiment.
struct CircuitExperiment {
  std::string circuit;
  std::int64_t serial_tracks = 0;
  std::int64_t serial_area = 0;
  std::size_t serial_feedthroughs = 0;
  /// Modeled serial runtime (measured CPU seconds × platform compute
  /// scale); unset when the circuit does not fit one node.
  std::optional<double> serial_modeled_seconds;
  /// Full serial quality metrics and per-step CPU timings.
  RoutingMetrics serial_metrics;
  StepTimings serial_timings;
  std::vector<RunPoint> points;
};

/// Runs serial + the processor sweep for one suite entry.
CircuitExperiment run_experiment(const SuiteEntry& entry,
                                 ParallelAlgorithm algorithm,
                                 const ExperimentConfig& config);

/// Runs the whole six-circuit suite.
std::vector<CircuitExperiment> run_suite_experiment(
    ParallelAlgorithm algorithm, const ExperimentConfig& config);

}  // namespace ptwgr
