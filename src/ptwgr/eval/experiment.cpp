#include "ptwgr/eval/experiment.h"

#include "ptwgr/route/router.h"
#include "ptwgr/support/log.h"
#include "ptwgr/support/timer.h"

namespace ptwgr {

CircuitExperiment run_experiment(const SuiteEntry& entry,
                                 ParallelAlgorithm algorithm,
                                 const ExperimentConfig& config) {
  CircuitExperiment result;
  result.circuit = entry.name;

  // Serial baseline: quality always (for the scaled columns) and modeled
  // time when the circuit fits one node of the platform.
  {
    const Circuit circuit = build_suite_circuit(entry);
    const RoutingResult serial = route_serial(circuit, config.options.router);
    result.serial_tracks = serial.metrics.track_count;
    result.serial_area = serial.metrics.area;
    result.serial_feedthroughs = serial.metrics.feedthrough_count;
    result.serial_metrics = serial.metrics;
    result.serial_timings = serial.timings;
    if (config.platform.serial_fits(entry.estimated_memory_bytes)) {
      // The five routing steps only — metric computation is evaluation and
      // is likewise excluded from the parallel clocks.
      result.serial_modeled_seconds =
          serial.timings.total() * config.platform.cost.compute_scale;
    }
  }

  for (const int procs : config.proc_counts) {
    if (procs > config.platform.max_processors) continue;
    const Circuit circuit = build_suite_circuit(entry);
    if (static_cast<std::size_t>(procs) > circuit.num_rows()) continue;
    const ParallelRoutingResult run = route_parallel(
        circuit, algorithm, procs, config.options, config.platform.cost);

    RunPoint point;
    point.procs = procs;
    point.tracks = run.metrics.track_count;
    point.area = run.metrics.area;
    point.modeled_seconds = run.modeled_seconds();
    point.scaled_tracks = static_cast<double>(point.tracks) /
                          static_cast<double>(result.serial_tracks);
    point.scaled_area = static_cast<double>(point.area) /
                        static_cast<double>(result.serial_area);
    const mp::CommStats comm = run.comm_totals();
    point.comm_messages = comm.messages_sent + comm.total_collective_calls();
    point.comm_bytes = comm.bytes_sent + comm.total_collective_bytes();
    point.metrics = run.metrics;
    result.points.push_back(point);
  }

  // Speedups.  Without a serial time (Paragon memory limit) the paper
  // extrapolates assuming speedup proportional to processors from the
  // smallest parallel configuration; reproduce that, flagged.
  for (RunPoint& point : result.points) {
    if (result.serial_modeled_seconds) {
      point.speedup = *result.serial_modeled_seconds / point.modeled_seconds;
    } else if (!result.points.empty()) {
      // Estimate the unrunnable serial time as p_base × T(p_base) — the
      // paper's "speedup is proportional to the number of processors"
      // assumption applied to the smallest parallel configuration.
      const RunPoint& base = result.points.front();
      point.speedup = static_cast<double>(base.procs) * base.modeled_seconds /
                      point.modeled_seconds;
      point.speedup_extrapolated = true;
    }
  }
  return result;
}

std::vector<CircuitExperiment> run_suite_experiment(
    ParallelAlgorithm algorithm, const ExperimentConfig& config) {
  std::vector<CircuitExperiment> results;
  for (const SuiteEntry& entry : benchmark_suite(config.scale)) {
    PTWGR_LOG_INFO << "experiment: " << entry.name << " / "
                   << to_string(algorithm) << " on "
                   << config.platform.name;
    results.push_back(run_experiment(entry, algorithm, config));
  }
  return results;
}

}  // namespace ptwgr
