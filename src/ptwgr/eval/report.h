// Paper-style renderings of experiment results: the scaled-track tables
// (Tables 2–4), the speedup figures (Figures 4–6, printed as per-circuit
// series with bars), Table 1, and the two-platform Table 5.
#pragma once

#include <string>
#include <vector>

#include "ptwgr/eval/experiment.h"

namespace ptwgr {

/// Table 1: circuit characteristics of the (re)generated suite.
std::string render_table1(double scale);

/// Tables 2/3/4: scaled track counts per circuit × processor count.
std::string render_scaled_tracks_table(
    const std::string& title, const std::vector<CircuitExperiment>& runs);

/// Companion rows for the same tables: scaled area (the paper quotes these
/// in prose: "the scaled area results ... are not much worse (1-2%)").
std::string render_scaled_area_table(
    const std::string& title, const std::vector<CircuitExperiment>& runs);

/// Figures 4/5/6: speedups per circuit × processor count, with ASCII bars.
std::string render_speedup_figure(const std::string& title,
                                  const std::vector<CircuitExperiment>& runs);

/// Communication volume per circuit × processor count: total messages
/// (p2p sends + collective invocations) and payload bytes moved.  Companion
/// to the speedup figures — the paper's scaling argument is a
/// communication-cost argument ("communication is more costly than
/// computation"), and this table shows the traffic behind each speedup.
std::string render_comm_volume_table(const std::string& title,
                                     const std::vector<CircuitExperiment>& runs);

/// Table 5: absolute tracks/area/time plus scaled metrics and speedups on
/// one platform (call once per platform).
std::string render_table5_platform(const Platform& platform,
                                   const std::vector<CircuitExperiment>& runs);

/// Mean of a column across circuits (e.g. average speedup at 8 procs).
double mean_speedup_at(const std::vector<CircuitExperiment>& runs, int procs);
double mean_scaled_tracks_at(const std::vector<CircuitExperiment>& runs,
                             int procs);

}  // namespace ptwgr
