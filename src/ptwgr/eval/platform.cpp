#include "ptwgr/eval/platform.h"

namespace ptwgr {

Platform Platform::sparc_center() {
  Platform p;
  p.name = "Sun SparcCenter 1000 SMP";
  p.cost = mp::CostModel::sparc_center_smp();
  p.node_memory_bytes = 0;  // shared memory: the full machine's
  p.max_processors = 8;
  return p;
}

Platform Platform::paragon() {
  Platform p;
  p.name = "Intel Paragon DMP";
  p.cost = mp::CostModel::paragon_dmp();
  p.node_memory_bytes = 32ull * 1024 * 1024;  // "each node ... 32 MB"
  p.max_processors = 16;
  return p;
}

Platform Platform::ideal() {
  Platform p;
  p.name = "ideal";
  p.cost = mp::CostModel::ideal();
  p.node_memory_bytes = 0;
  p.max_processors = 64;
  return p;
}

}  // namespace ptwgr
