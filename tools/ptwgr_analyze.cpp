// ptwgr_analyze — causal analysis of a routing run's event ledger.
//
// Reads the "ptwgr.ledger" JSON document that ptwgr_route --ledger= writes,
// reconstructs the happens-before DAG, and reports where the makespan went:
// per-rank/per-phase compute-vs-wait attribution, the critical path with its
// longest segments and blamed ranks, and load-imbalance/speedup-bound
// metrics under the run's α–β cost model.  Postmortem bundles captured by
// the flight recorder are rendered after the analysis.
//
// It also renders the other observability artifacts ptwgr_route produces:
// resource reports (--resource-report=) and folded profiler stacks
// (--profile-folded=).  With --resource/--folded the ledger positional is
// optional, so each artifact can be inspected on its own.
//
// Usage:
//   ptwgr_analyze [LEDGER.json] [options]
// Options:
//   --json=PATH        write the versioned causal report as JSON
//   --top=K            critical-path segments to show (default 10); also
//                      bounds the hot frames shown for --folded
//   --serial-seconds=S also report the achieved speedup against a measured
//                      serial time
//   --resource=PATH    render the allocation/arena/RSS tables of a
//                      ptwgr.resource_report JSON document
//   --folded=PATH      render the top hot frames of a folded-stack profile
//
// Exits 0 on success, 1 when an input cannot be read/analyzed or an
// analysis invariant is violated, 2 on usage errors.
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "ptwgr/obs/causal.h"
#include "ptwgr/obs/resource.h"
#include "ptwgr/support/json.h"
#include "ptwgr/support/parse.h"
#include "ptwgr/support/profiler.h"

namespace {

using namespace ptwgr;

struct CliOptions {
  std::string ledger_path;
  std::optional<std::string> json_path;
  std::size_t top_k = 10;
  double serial_seconds = 0.0;
  std::optional<std::string> resource_path;
  std::optional<std::string> folded_path;
};

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "ptwgr_analyze: %s\n", message.c_str());
  std::fprintf(stderr,
               "usage: ptwgr_analyze [LEDGER.json] [--json=PATH] [--top=K] "
               "[--serial-seconds=S]\n"
               "  [--resource=RESOURCE.json] [--folded=FOLDED.txt]\n");
  std::exit(2);
}

template <typename T>
T parse_or_die(const std::string& text, const char* flag) {
  const std::optional<T> parsed = parse_number<T>(text);
  if (!parsed) {
    usage_error("invalid numeric value '" + text + "' for " + flag);
  }
  return *parsed;
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* prefix) -> std::optional<std::string> {
      const std::size_t n = std::char_traits<char>::length(prefix);
      if (arg.compare(0, n, prefix) == 0) return arg.substr(n);
      return std::nullopt;
    };
    std::optional<std::string> v;
    if ((v = value_of("--json="))) {
      options.json_path = *v;
    } else if ((v = value_of("--top="))) {
      options.top_k = parse_or_die<std::size_t>(*v, "--top");
    } else if ((v = value_of("--serial-seconds="))) {
      options.serial_seconds = parse_or_die<double>(*v, "--serial-seconds");
    } else if ((v = value_of("--resource="))) {
      options.resource_path = *v;
    } else if ((v = value_of("--folded="))) {
      options.folded_path = *v;
    } else if (arg == "--help" || arg == "-h") {
      usage_error("help");
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unknown argument '" + arg + "'");
    } else if (options.ledger_path.empty()) {
      options.ledger_path = arg;
    } else {
      usage_error("more than one ledger file given");
    }
  }
  if (options.ledger_path.empty() && !options.resource_path &&
      !options.folded_path) {
    usage_error("ledger file required (or --resource / --folded)");
  }
  return options;
}

/// Reads a whole file or dies with exit code 1.
std::string slurp_or_die(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "ptwgr_analyze: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions options = parse_args(argc, argv);
  try {
    if (options.resource_path) {
      const json::Value doc = json::parse_file(*options.resource_path);
      std::printf("%s", obs::render_resource_tables(doc).c_str());
    }
    if (options.folded_path) {
      const FoldedSummary summary =
          summarize_folded(slurp_or_die(*options.folded_path));
      std::printf("%s", render_hot_frames(summary, options.top_k).c_str());
    }
    if (options.ledger_path.empty()) return 0;

    const json::Value doc = json::parse_file(options.ledger_path);
    const obs::ParsedLedger ledger = obs::parse_ledger(doc);

    bool have_analysis = false;
    obs::CausalAnalysis analysis;
    bool live_events = false;
    for (const obs::RankLedger& rank : ledger.rank_ledgers) {
      if (!rank.events.empty() || rank.final_vtime > 0.0) live_events = true;
    }
    if (live_events && ledger.has_times) {
      analysis = obs::analyze(ledger);
      have_analysis = true;
      std::printf("%s", obs::analysis_tables(ledger, analysis, options.top_k,
                                             options.serial_seconds)
                            .c_str());
    } else if (live_events) {
      std::printf(
          "ledger is canonical (times stripped); skipping timing analysis\n");
    } else {
      std::printf("ledger has no live events (postmortem-only bundle)\n");
    }

    if (!ledger.postmortems.empty() || !ledger.notes.empty()) {
      std::printf("\n%s", obs::postmortem_tables(ledger).c_str());
    }

    if (options.json_path && have_analysis) {
      std::ofstream out(*options.json_path);
      if (!out) {
        std::fprintf(stderr, "ptwgr_analyze: cannot open %s\n",
                     options.json_path->c_str());
        return 1;
      }
      out << obs::analysis_to_json(ledger, analysis, options.top_k,
                                   options.serial_seconds);
      std::printf("causal report written to %s\n",
                  options.json_path->c_str());
    }

    if (have_analysis) {
      const auto violations = obs::check_invariants(analysis);
      for (const std::string& violation : violations) {
        std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", violation.c_str());
      }
      if (!violations.empty()) return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ptwgr_analyze: %s\n", e.what());
    return 1;
  }
}
