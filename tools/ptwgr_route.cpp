// ptwgr_route — command-line global router.
//
// Routes a circuit (from a PTWGR circuit file, a suite name, or a generator
// spec) with the serial TWGR pipeline or one of the three parallel
// algorithms, and writes a text routing report.
//
// Usage:
//   ptwgr_route --circuit=FILE            route a circuit file
//   ptwgr_route --suite=biomed[:SCALE]    route a regenerated MCNC circuit
//   ptwgr_route --generate=ROWSxCELLS     route a fresh synthetic circuit
// Options:
//   --algorithm=serial|row-wise|net-wise|hybrid   (default serial)
//   --ranks=N                                      (default 4)
//   --platform=ideal|smp|dmp                       (default ideal)
//   --seed=N                                       (default 1)
//   --report=PATH      write the full text routing report
//   --profile          print the channel-density profile
//   --run-report=PATH  write the versioned JSON run report (per-phase
//                      quality snapshots, congestion heatmaps, metrics)
//   --heatmap          print the coarse congestion heatmaps as ASCII
//   --trace=PATH       write a Chrome trace of the routing phases
//   --metrics=PATH     write run metrics (counters, timings) as JSON
//   --ledger=PATH      write the causal event ledger (analyze with
//                      ptwgr_analyze; with --trace also draws send→recv
//                      flow arrows in the Chrome trace)
//   --ledger-ring=N    flight-recorder mode: keep only each rank's most
//                      recent N events (default 0 = keep everything)
//   --resource-report=PATH  write the versioned resource report (per-phase
//                      allocation accounting, tagged arenas, peak RSS) as
//                      JSON; render with ptwgr_analyze --resource=PATH
//   --resource-canonical    strip the machine-dependent fields (RSS,
//                      wall-clock, live bytes) so same-seed runs produce
//                      byte-identical reports
//   --profile-sample=HZ     sample the call stack HZ times per CPU second
//                      (SIGPROF) and print the hottest frames
//   --profile-folded=PATH   write the folded stacks (flamegraph.pl input);
//                      implies --profile-sample=97 unless given
//   --log-level=LEVEL  debug|info|warn|error|off (default warn)
// Fault tolerance (parallel algorithms only):
//   --fault-plan=SPEC  inject deterministic faults; SPEC entries are
//                      ';'-separated: seed=N, drop=P, corrupt=P,
//                      delay=P:SECONDS, kill=rankR@opN, kill=rankR@phase:NAME
//   --recv-timeout=S   recv() timeout in virtual seconds (default: none)
//   --max-retries=N    p2p send retransmissions before a peer is presumed
//                      dead (default 3)
//   --watchdog         enable the all-ranks-blocked deadlock watchdog
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "ptwgr/circuit/circuit_stats.h"
#include "ptwgr/circuit/generator.h"
#include "ptwgr/circuit/io.h"
#include "ptwgr/circuit/suite.h"
#include "ptwgr/eval/channel_report.h"
#include "ptwgr/eval/platform.h"
#include "ptwgr/obs/ledger.h"
#include "ptwgr/obs/resource.h"
#include "ptwgr/obs/run_report.h"
#include "ptwgr/obs/snapshot.h"
#include "ptwgr/parallel/parallel_router.h"
#include "ptwgr/parallel/records.h"
#include "ptwgr/route/router.h"
#include "ptwgr/support/log.h"
#include "ptwgr/support/metrics.h"
#include "ptwgr/support/parse.h"
#include "ptwgr/support/profiler.h"
#include "ptwgr/support/trace.h"

namespace {

using namespace ptwgr;

struct CliOptions {
  std::optional<std::string> circuit_file;
  std::optional<std::string> suite_name;
  double suite_scale = 1.0;
  std::optional<std::pair<std::size_t, std::size_t>> generate;  // rows×cells
  std::string algorithm = "serial";
  int ranks = 4;
  std::string platform = "ideal";
  std::uint64_t seed = 1;
  std::optional<std::string> report_path;
  bool profile = false;
  std::optional<std::string> run_report_path;
  bool heatmap = false;
  std::optional<std::string> trace_path;
  std::optional<std::string> metrics_path;
  std::optional<std::string> ledger_path;
  std::size_t ledger_ring = 0;
  std::optional<std::string> resource_report_path;
  bool resource_canonical = false;
  double profile_hz = 0.0;  // 0 = profiler off
  std::optional<std::string> profile_folded_path;
  std::optional<std::string> fault_plan;
  double recv_timeout = -1.0;
  int max_retries = 3;
  bool watchdog = false;
};

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "ptwgr_route: %s\n", message.c_str());
  std::fprintf(stderr,
               "usage: ptwgr_route (--circuit=FILE | --suite=NAME[:SCALE] | "
               "--generate=ROWSxCELLS)\n"
               "  [--algorithm=serial|row-wise|net-wise|hybrid] [--ranks=N]\n"
               "  [--platform=ideal|smp|dmp] [--seed=N] [--report=PATH] "
               "[--profile]\n"
               "  [--run-report=PATH] [--heatmap]\n"
               "  [--trace=PATH] [--metrics=PATH] "
               "[--ledger=PATH] [--ledger-ring=N]\n"
               "  [--resource-report=PATH] [--resource-canonical]\n"
               "  [--profile-sample=HZ] [--profile-folded=PATH]\n"
               "  [--log-level=debug|info|warn|error|off]\n"
               "  [--fault-plan=SPEC] [--recv-timeout=S] [--max-retries=N] "
               "[--watchdog]\n");
  std::exit(2);
}

/// Parses a numeric flag value or exits with a diagnostic naming the flag.
/// atoi/atoll/atof would silently turn garbage into 0 here.
template <typename T>
T parse_or_die(const std::string& text, const char* flag) {
  const std::optional<T> parsed = parse_number<T>(text);
  if (!parsed) {
    usage_error("invalid numeric value '" + text + "' for " + flag);
  }
  return *parsed;
}

CliOptions parse(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* prefix) -> std::optional<std::string> {
      const std::size_t n = std::strlen(prefix);
      if (arg.compare(0, n, prefix) == 0) return arg.substr(n);
      return std::nullopt;
    };
    std::optional<std::string> v;
    if ((v = value_of("--circuit="))) {
      options.circuit_file = *v;
    } else if ((v = value_of("--suite="))) {
      const auto colon = v->find(':');
      options.suite_name = v->substr(0, colon);
      if (colon != std::string::npos) {
        options.suite_scale =
            parse_or_die<double>(v->substr(colon + 1), "--suite scale");
      }
    } else if ((v = value_of("--generate="))) {
      const auto x = v->find('x');
      if (x == std::string::npos) usage_error("--generate needs ROWSxCELLS");
      options.generate = {
          parse_or_die<std::size_t>(v->substr(0, x), "--generate rows"),
          parse_or_die<std::size_t>(v->substr(x + 1), "--generate cells")};
    } else if ((v = value_of("--algorithm="))) {
      options.algorithm = *v;
    } else if ((v = value_of("--ranks="))) {
      options.ranks = parse_or_die<int>(*v, "--ranks");
    } else if ((v = value_of("--platform="))) {
      options.platform = *v;
    } else if ((v = value_of("--seed="))) {
      options.seed = parse_or_die<std::uint64_t>(*v, "--seed");
    } else if ((v = value_of("--report="))) {
      options.report_path = *v;
    } else if ((v = value_of("--run-report="))) {
      options.run_report_path = *v;
    } else if (arg == "--heatmap") {
      options.heatmap = true;
    } else if ((v = value_of("--trace="))) {
      options.trace_path = *v;
    } else if ((v = value_of("--metrics="))) {
      options.metrics_path = *v;
    } else if ((v = value_of("--ledger="))) {
      options.ledger_path = *v;
    } else if ((v = value_of("--ledger-ring="))) {
      options.ledger_ring = parse_or_die<std::size_t>(*v, "--ledger-ring");
    } else if ((v = value_of("--resource-report="))) {
      options.resource_report_path = *v;
    } else if (arg == "--resource-canonical") {
      options.resource_canonical = true;
    } else if ((v = value_of("--profile-sample="))) {
      options.profile_hz = parse_or_die<double>(*v, "--profile-sample");
      if (options.profile_hz <= 0.0) {
        usage_error("--profile-sample needs a positive frequency");
      }
    } else if ((v = value_of("--profile-folded="))) {
      options.profile_folded_path = *v;
    } else if ((v = value_of("--fault-plan="))) {
      options.fault_plan = *v;
    } else if ((v = value_of("--recv-timeout="))) {
      options.recv_timeout = parse_or_die<double>(*v, "--recv-timeout");
    } else if ((v = value_of("--max-retries="))) {
      options.max_retries = parse_or_die<int>(*v, "--max-retries");
    } else if (arg == "--watchdog") {
      options.watchdog = true;
    } else if ((v = value_of("--log-level="))) {
      set_log_level(parse_log_level(v->c_str()));
    } else if (arg == "--profile") {
      options.profile = true;
    } else if (arg == "--help" || arg == "-h") {
      usage_error("help");
    } else {
      usage_error("unknown argument '" + arg + "'");
    }
  }
  const int sources = (options.circuit_file ? 1 : 0) +
                      (options.suite_name ? 1 : 0) +
                      (options.generate ? 1 : 0);
  if (sources != 1) {
    usage_error("exactly one of --circuit / --suite / --generate required");
  }
  if (options.profile_folded_path && options.profile_hz <= 0.0) {
    options.profile_hz = 97.0;
  }
  return options;
}

Circuit load_circuit(const CliOptions& options) {
  if (options.circuit_file) return read_circuit_file(*options.circuit_file);
  if (options.suite_name) {
    return build_suite_circuit(
        suite_entry(*options.suite_name, options.suite_scale));
  }
  GeneratorConfig config;
  config.seed = options.seed;
  config.num_rows = options.generate->first;
  config.num_cells = options.generate->second;
  config.num_nets = config.num_cells + config.num_cells / 10;
  return generate_circuit(config);
}

mp::CostModel platform_of(const std::string& name) {
  if (name == "ideal") return mp::CostModel::ideal();
  if (name == "smp") return mp::CostModel::sparc_center_smp();
  if (name == "dmp") return mp::CostModel::paragon_dmp();
  usage_error("unknown platform '" + name + "'");
}

/// Installs the trace collector for the routing call when --trace was given
/// and serializes the Chrome trace JSON on destruction.
class ScopedCliTrace {
 public:
  explicit ScopedCliTrace(const CliOptions& options)
      : path_(options.trace_path) {
    if (path_) set_active_trace(&collector_);
  }

  ~ScopedCliTrace() {
    if (!path_) return;
    set_active_trace(nullptr);
    std::ofstream out(*path_);
    if (out) {
      out << collector_.to_chrome_json();
      std::printf("trace written to %s (%zu spans)\n", path_->c_str(),
                  collector_.span_count());
    } else {
      std::fprintf(stderr, "cannot open trace file %s\n", path_->c_str());
    }
  }

  ScopedCliTrace(const ScopedCliTrace&) = delete;
  ScopedCliTrace& operator=(const ScopedCliTrace&) = delete;

 private:
  std::optional<std::string> path_;
  TraceCollector collector_;
};

/// Installs the causal event ledger when --ledger was given and serializes
/// it on destruction.  If the run unwinds with an exception the destructor
/// captures a flight-recorder postmortem first (the recovery loop captures
/// typed failures itself; this covers everything that escapes it), and when
/// a trace collector is also active the matched send→recv pairs are exported
/// into it as Chrome-trace flow arrows — so this must be declared *after*
/// ScopedCliTrace (destroyed before the trace is written).
class ScopedCliLedger {
 public:
  explicit ScopedCliLedger(const CliOptions& options)
      : path_(options.ledger_path),
        collector_(options.ledger_ring),
        exceptions_at_entry_(std::uncaught_exceptions()) {
    if (path_) obs::set_active_ledger(&collector_);
  }

  ~ScopedCliLedger() {
    if (!path_) return;
    if (std::uncaught_exceptions() > exceptions_at_entry_ &&
        collector_.postmortems().empty()) {
      collector_.capture_postmortem("run aborted by exception");
    }
    if (TraceCollector* tracer = active_trace()) {
      obs::export_message_flows(collector_, *tracer);
    }
    obs::set_active_ledger(nullptr);
    std::ofstream out(*path_);
    if (out) {
      out << obs::ledger_to_json(collector_, meta_);
      std::printf("ledger written to %s\n", path_->c_str());
    } else {
      std::fprintf(stderr, "cannot open ledger file %s\n", path_->c_str());
    }
  }

  void set_meta(obs::LedgerMeta meta) { meta_ = std::move(meta); }

  ScopedCliLedger(const ScopedCliLedger&) = delete;
  ScopedCliLedger& operator=(const ScopedCliLedger&) = delete;

 private:
  std::optional<std::string> path_;
  obs::LedgerCollector collector_;
  int exceptions_at_entry_;
  obs::LedgerMeta meta_;
};

/// Installs the quality collector for the routing call when --run-report or
/// --heatmap was given; the collected snapshots are read back afterwards.
class ScopedCliQuality {
 public:
  explicit ScopedCliQuality(const CliOptions& options)
      : enabled_(options.run_report_path.has_value() || options.heatmap) {
    if (enabled_) obs::set_active_quality(&collector_);
  }

  ~ScopedCliQuality() {
    if (enabled_) obs::set_active_quality(nullptr);
  }

  bool enabled() const { return enabled_; }
  const obs::QualityCollector& collector() const { return collector_; }

  ScopedCliQuality(const ScopedCliQuality&) = delete;
  ScopedCliQuality& operator=(const ScopedCliQuality&) = delete;

 private:
  bool enabled_ = false;
  obs::QualityCollector collector_;
};

/// Installs the resource collector when --resource-report was given and
/// writes the serialized report on destruction.  Installed before the run so
/// every routing allocation is attributed; the RSS sampler runs alongside.
class ScopedCliResource {
 public:
  explicit ScopedCliResource(const CliOptions& options)
      : path_(options.resource_report_path),
        canonical_(options.resource_canonical) {
    if (!path_) return;
    collector_ = std::make_unique<obs::ResourceCollector>();
    obs::set_active_resource(collector_.get());
    collector_->start_rss_sampler(20.0);
  }

  ~ScopedCliResource() {
    if (!path_) return;
    collector_->stop_rss_sampler();
    obs::set_active_resource(nullptr);
    std::ofstream out(*path_);
    if (out) {
      out << obs::resource_report_to_json(*collector_, meta_,
                                          /*include_volatile=*/!canonical_);
      std::printf("resource report written to %s\n", path_->c_str());
    } else {
      std::fprintf(stderr, "cannot open resource-report file %s\n",
                   path_->c_str());
    }
  }

  void set_meta(obs::ResourceMeta meta) { meta_ = std::move(meta); }

  ScopedCliResource(const ScopedCliResource&) = delete;
  ScopedCliResource& operator=(const ScopedCliResource&) = delete;

 private:
  std::optional<std::string> path_;
  bool canonical_ = false;
  std::unique_ptr<obs::ResourceCollector> collector_;
  obs::ResourceMeta meta_;
};

/// Starts the sampling CPU profiler when --profile-sample was given; on
/// destruction prints the hottest frames and optionally writes the folded
/// stacks for flamegraph.pl.
class ScopedCliProfiler {
 public:
  explicit ScopedCliProfiler(const CliOptions& options)
      : folded_path_(options.profile_folded_path) {
    if (options.profile_hz <= 0.0) return;
    SamplingProfiler::Options prof;
    prof.hz = options.profile_hz;
    profiler_ = std::make_unique<SamplingProfiler>(prof);
    if (!profiler_->start()) {
      std::fprintf(stderr, "profiler failed to start; continuing without\n");
      profiler_.reset();
    }
  }

  ~ScopedCliProfiler() {
    if (!profiler_) return;
    profiler_->stop();
    const std::string folded = profiler_->folded();
    if (folded_path_) {
      std::ofstream out(*folded_path_);
      if (out) {
        out << folded;
        std::printf("folded stacks written to %s (%llu samples, %llu "
                    "dropped)\n",
                    folded_path_->c_str(),
                    static_cast<unsigned long long>(
                        profiler_->sample_count()),
                    static_cast<unsigned long long>(
                        profiler_->dropped_samples()));
      } else {
        std::fprintf(stderr, "cannot open folded-stack file %s\n",
                     folded_path_->c_str());
      }
    }
    std::printf("%s", render_hot_frames(summarize_folded(folded), 10)
                          .c_str());
  }

  ScopedCliProfiler(const ScopedCliProfiler&) = delete;
  ScopedCliProfiler& operator=(const ScopedCliProfiler&) = delete;

 private:
  std::optional<std::string> folded_path_;
  std::unique_ptr<SamplingProfiler> profiler_;
};

/// The circuit spec as given on the command line, for the run report.
std::string describe_source(const CliOptions& options) {
  if (options.circuit_file) return *options.circuit_file;
  if (options.suite_name) {
    std::string spec = "suite:" + *options.suite_name;
    if (options.suite_scale != 1.0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), ":%g", options.suite_scale);
      spec += buf;
    }
    return spec;
  }
  return "generate:" + std::to_string(options.generate->first) + "x" +
         std::to_string(options.generate->second);
}

/// Run-report skeleton shared by the serial and parallel branches.
obs::RunReport make_run_report(const CliOptions& options,
                               const Circuit& circuit,
                               const RouterOptions& router) {
  obs::RunReport run;
  run.algorithm = options.algorithm;
  run.seed = options.seed;
  run.router = router;
  run.circuit_source = describe_source(options);
  run.circuit = compute_stats(circuit);
  return run;
}

/// Finalizes the snapshots into `run` and serializes it.  Returns false on
/// I/O failure.
bool write_run_report(const CliOptions& options, obs::RunReport& run,
                      const ScopedCliQuality& quality) {
  if (!options.run_report_path) return true;
  run.fill_snapshots(quality.collector());
  std::ofstream out(*options.run_report_path);
  if (!out) {
    std::fprintf(stderr, "cannot open run-report file %s\n",
                 options.run_report_path->c_str());
    return false;
  }
  out << run.to_json();
  std::printf("run report written to %s\n",
              options.run_report_path->c_str());
  return true;
}

/// Prints the step-2 congestion heatmaps (channel use + row-crossing
/// demand) collected during the run.
void print_heatmaps(const ScopedCliQuality& quality) {
  const auto snapshots = quality.collector().finalize();
  const obs::PhaseSnapshot& coarse =
      snapshots[static_cast<std::size_t>(obs::Phase::Coarse)];
  if (!coarse.channel_use.empty()) {
    std::printf("%s", obs::render_heatmap_ascii(coarse.channel_use,
                                                "coarse channel use")
                          .c_str());
  }
  if (!coarse.crossing_demand.empty()) {
    std::printf("%s", obs::render_heatmap_ascii(coarse.crossing_demand,
                                                "row crossing demand")
                          .c_str());
  }
}

void fill_run_metrics(MetricsRegistry& metrics, const CliOptions& options,
                      const Circuit& circuit) {
  const CircuitStats stats = compute_stats(circuit);
  metrics.set("run.algorithm", options.algorithm);
  metrics.set("run.seed", options.seed);
  metrics.set("circuit.rows", static_cast<std::int64_t>(stats.rows));
  metrics.set("circuit.cells", static_cast<std::int64_t>(stats.cells));
  metrics.set("circuit.nets", static_cast<std::int64_t>(stats.nets));
  metrics.set("circuit.pins", static_cast<std::int64_t>(stats.pins));
}

void fill_quality_metrics(MetricsRegistry& metrics,
                          const RoutingMetrics& quality) {
  metrics.set("routing.tracks", quality.track_count);
  metrics.set("routing.area", quality.area);
  metrics.set("routing.wirelength", quality.total_wirelength);
  metrics.set("routing.feedthroughs",
              static_cast<std::int64_t>(quality.feedthrough_count));
  metrics.set("routing.coarse_decisions", quality.coarse_decisions);
  metrics.set("routing.coarse_flips", quality.coarse_flips);
  metrics.set("routing.switch_decisions", quality.switch_decisions);
  metrics.set("routing.switch_flips", quality.switch_flips);
}

void fill_comm_metrics(MetricsRegistry& metrics, const std::string& prefix,
                       const mp::CommStats& comm) {
  metrics.set(prefix + ".messages_sent", comm.messages_sent);
  metrics.set(prefix + ".bytes_sent", comm.bytes_sent);
  metrics.set(prefix + ".messages_received", comm.messages_received);
  metrics.set(prefix + ".bytes_received", comm.bytes_received);
  for (std::size_t k = 0; k < mp::kNumCollectiveKinds; ++k) {
    if (comm.collective_calls[k] == 0) continue;
    const std::string kind =
        mp::to_string(static_cast<mp::CollectiveKind>(k));
    metrics.set(prefix + ".collective." + kind + ".calls",
                comm.collective_calls[k]);
    metrics.set(prefix + ".collective." + kind + ".bytes",
                comm.collective_bytes[k]);
  }
  metrics.set(prefix + ".compute_seconds", comm.compute_seconds);
  metrics.set(prefix + ".p2p_wait_seconds", comm.p2p_wait_seconds);
  metrics.set(prefix + ".collective_sync_seconds",
              comm.collective_sync_seconds);
  metrics.set(prefix + ".p2p_retries", comm.p2p_retries);
  metrics.set(prefix + ".p2p_drops", comm.p2p_drops);
  metrics.set(prefix + ".p2p_corruptions", comm.p2p_corruptions);
  metrics.set(prefix + ".checksum_failures", comm.checksum_failures);
  metrics.set(prefix + ".injected_delays", comm.injected_delays);
  metrics.set(prefix + ".injected_delay_seconds",
              comm.injected_delay_seconds);
  metrics.set(prefix + ".retry_backoff_seconds", comm.retry_backoff_seconds);
  metrics.set(prefix + ".recv_timeouts", comm.recv_timeouts);
}

void write_metrics_file(const CliOptions& options,
                        const MetricsRegistry& metrics) {
  if (!options.metrics_path) return;
  std::ofstream out(*options.metrics_path);
  if (out) {
    out << metrics.to_json();
    std::printf("metrics written to %s\n", options.metrics_path->c_str());
  } else {
    std::fprintf(stderr, "cannot open metrics file %s\n",
                 options.metrics_path->c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions options = parse(argc, argv);
  try {
    const Circuit circuit = load_circuit(options);
    std::printf("circuit: %s\n", compute_stats(circuit).to_string().c_str());

    RouterOptions router;
    router.seed = options.seed;

    const ScopedCliTrace trace(options);
    ScopedCliLedger ledger(options);
    {
      const mp::CostModel cost = platform_of(options.platform);
      obs::LedgerMeta meta;
      meta.algorithm = options.algorithm;
      meta.circuit_source = describe_source(options);
      meta.seed = options.seed;
      meta.ranks = options.algorithm == "serial" ? 1 : options.ranks;
      meta.platform = cost.name;
      meta.latency_s = cost.latency_s;
      meta.per_byte_s = cost.per_byte_s;
      meta.compute_scale = cost.compute_scale;
      ledger.set_meta(std::move(meta));
    }
    const ScopedCliQuality quality(options);
    ScopedCliResource resource(options);
    {
      obs::ResourceMeta meta;
      meta.algorithm = options.algorithm;
      meta.circuit_source = describe_source(options);
      meta.seed = options.seed;
      meta.ranks = options.algorithm == "serial" ? 1 : options.ranks;
      resource.set_meta(std::move(meta));
    }
    const ScopedCliProfiler profiler(options);
    MetricsRegistry metrics;
    fill_run_metrics(metrics, options, circuit);

    if (options.algorithm == "serial") {
      const RoutingResult result = route_serial(circuit, router);
      std::printf("routed (serial): %s\n",
                  result.metrics.to_string().c_str());
      fill_quality_metrics(metrics, result.metrics);
      metrics.set("serial.steiner_seconds", result.timings.steiner);
      metrics.set("serial.coarse_seconds", result.timings.coarse);
      metrics.set("serial.feedthrough_seconds", result.timings.feedthrough);
      metrics.set("serial.connect_seconds", result.timings.connect);
      metrics.set("serial.switchable_seconds", result.timings.switchable);
      metrics.set("serial.total_seconds", result.timings.total());
      write_metrics_file(options, metrics);
      std::printf(
          "step times (s): steiner %.3f, coarse %.3f, feedthrough %.3f, "
          "connect %.3f, switchable %.3f\n",
          result.timings.steiner, result.timings.coarse,
          result.timings.feedthrough, result.timings.connect,
          result.timings.switchable);
      if (options.heatmap) print_heatmaps(quality);
      if (options.run_report_path) {
        obs::RunReport run = make_run_report(options, circuit, router);
        run.metrics = result.metrics;
        run.step_timings = result.timings;
        run.has_step_timings = true;
        if (!write_run_report(options, run, quality)) return 1;
      }
      if (options.profile) {
        std::printf("%s",
                    render_channel_profile(result.circuit, result.wires)
                        .c_str());
      }
      if (options.report_path) {
        std::ofstream out(*options.report_path);
        if (!out) {
          std::fprintf(stderr, "cannot open %s\n",
                       options.report_path->c_str());
          return 1;
        }
        write_routing_report(out, result.circuit, result.wires);
        std::printf("report written to %s\n", options.report_path->c_str());
      }
      const auto violations = verify_routing(result.circuit, result.wires);
      if (!violations.empty()) {
        std::fprintf(stderr, "%zu verification violations (first: %s)\n",
                     violations.size(), violations.front().c_str());
        return 1;
      }
      return 0;
    }

    ParallelAlgorithm algorithm;
    if (options.algorithm == "row-wise") {
      algorithm = ParallelAlgorithm::RowWise;
    } else if (options.algorithm == "net-wise") {
      algorithm = ParallelAlgorithm::NetWise;
    } else if (options.algorithm == "hybrid") {
      algorithm = ParallelAlgorithm::Hybrid;
    } else {
      usage_error("unknown algorithm '" + options.algorithm + "'");
    }
    ParallelOptions parallel;
    parallel.router = router;
    parallel.keep_wires =
        options.report_path.has_value() || options.profile;
    parallel.fault.retry.max_retries = options.max_retries;
    parallel.fault.recv_timeout_seconds = options.recv_timeout;
    parallel.fault.watchdog = options.watchdog;
    if (options.fault_plan) {
      parallel.fault.plan = std::make_shared<mp::FaultPlan>(
          mp::FaultPlan::parse(*options.fault_plan));
      std::printf("fault plan: %s\n",
                  parallel.fault.plan->summary().c_str());
    }
    const ParallelRoutingResult result =
        route_parallel(circuit, algorithm, options.ranks, parallel,
                       platform_of(options.platform));
    std::printf("routed (%s, %d ranks, %s): %s\n", options.algorithm.c_str(),
                options.ranks, options.platform.c_str(),
                result.metrics.to_string().c_str());
    if (result.recovery.attempts > 0) {
      std::string failed;
      for (const int r : result.recovery.failed_ranks) {
        if (!failed.empty()) failed += ",";
        failed += std::to_string(r);
      }
      std::printf("recovered from %d rank failure(s) (ranks %s) in %d "
                  "re-execution(s)\n",
                  static_cast<int>(result.recovery.failed_ranks.size()),
                  failed.c_str(), result.recovery.attempts);
    }
    std::printf("modeled parallel time: %.3f s\n", result.modeled_seconds());
    if (options.heatmap) print_heatmaps(quality);
    if (options.run_report_path) {
      obs::RunReport run = make_run_report(options, circuit, router);
      run.ranks = options.ranks;
      run.platform = options.platform;
      run.metrics = result.metrics;
      run.modeled_seconds = result.modeled_seconds();
      run.wall_seconds = result.report.wall_seconds;
      run.total_cpu_seconds = result.report.total_cpu_seconds();
      for (std::size_t r = 0; r < result.report.rank_comm.size(); ++r) {
        obs::RankReport rank;
        rank.rank = static_cast<int>(r);
        rank.vtime_seconds = result.report.rank_vtime[r];
        rank.cpu_seconds = result.report.rank_cpu_seconds[r];
        rank.comm = result.report.rank_comm[r];
        run.rank_reports.push_back(rank);
      }
      run.recovery_attempts = result.recovery.attempts;
      run.failed_ranks = result.recovery.failed_ranks;
      if (!write_run_report(options, run, quality)) return 1;
    }
    if (options.profile || options.report_path) {
      std::vector<Wire> wires;
      wires.reserve(result.wires.size());
      for (const WireRecord& record : result.wires) {
        wires.push_back(from_record(record));
      }
      if (options.profile) {
        std::printf("%s", render_channel_profile(circuit, wires).c_str());
      }
      if (options.report_path) {
        std::ofstream out(*options.report_path);
        if (!out) {
          std::fprintf(stderr, "cannot open %s\n",
                       options.report_path->c_str());
          return 1;
        }
        write_routing_report(out, circuit, wires, &result.metrics);
        std::printf("report written to %s\n", options.report_path->c_str());
      }
    }
    fill_quality_metrics(metrics, result.metrics);
    metrics.set("run.ranks", static_cast<std::int64_t>(options.ranks));
    metrics.set("run.platform", options.platform);
    metrics.set("parallel.modeled_seconds", result.modeled_seconds());
    metrics.set("parallel.wall_seconds", result.report.wall_seconds);
    metrics.set("parallel.total_cpu_seconds",
                result.report.total_cpu_seconds());
    if (options.fault_plan) {
      metrics.set("fault.plan", *options.fault_plan);
    }
    metrics.set("fault.recovery_attempts",
                static_cast<std::int64_t>(result.recovery.attempts));
    metrics.set("fault.recovered",
                static_cast<std::int64_t>(result.recovery.recovered ? 1 : 0));
    {
      std::string failed;
      for (const int r : result.recovery.failed_ranks) {
        if (!failed.empty()) failed += ",";
        failed += std::to_string(r);
      }
      metrics.set("fault.failed_ranks", failed);
    }
    for (std::size_t r = 0; r < result.report.rank_comm.size(); ++r) {
      const std::string prefix = "rank." + std::to_string(r);
      metrics.set(prefix + ".vtime_seconds", result.report.rank_vtime[r]);
      metrics.set(prefix + ".cpu_seconds", result.report.rank_cpu_seconds[r]);
      fill_comm_metrics(metrics, prefix, result.report.rank_comm[r]);
    }
    fill_comm_metrics(metrics, "total", result.comm_totals());
    write_metrics_file(options, metrics);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ptwgr_route: %s\n", e.what());
    return 1;
  }
}
