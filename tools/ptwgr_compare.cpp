// ptwgr_compare: diff two run reports or bench JSON files metric by metric
// and gate on regressions.
//
//   ptwgr_compare baseline.json candidate.json
//   ptwgr_compare --tolerance=0.05 --all BENCH_base.json BENCH_new.json
//   ptwgr_compare --rule='metrics.tracks:lower:0' base.json cand.json
//
// Exit codes: 0 = no regression, 1 = at least one gated metric regressed,
// 2 = usage or I/O error.  This is what CI runs against the checked-in
// baseline (see .github/workflows/ci.yml and DESIGN.md §10).
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ptwgr/obs/compare.h"
#include "ptwgr/support/json.h"

namespace {

using ptwgr::obs::CompareDirection;
using ptwgr::obs::CompareRule;

constexpr int kExitOk = 0;
constexpr int kExitRegression = 1;
constexpr int kExitUsage = 2;

void print_usage() {
  std::fprintf(
      stderr,
      "usage: ptwgr_compare [options] BASELINE.json CANDIDATE.json\n"
      "\n"
      "Compares every numeric metric of two ptwgr JSON documents (run\n"
      "reports from --run-report, bench files from bench_report) and exits\n"
      "nonzero when a gated quality metric regressed.\n"
      "\n"
      "options:\n"
      "  --tolerance=X   relative tolerance of the default quality gates\n"
      "                  (default 0.02 = 2%%)\n"
      "  --rule=P:DIR[:TOL]\n"
      "                  prepend a custom rule: glob path pattern P,\n"
      "                  DIR in {lower,higher,info,ignore}, relative\n"
      "                  tolerance TOL (default 0).  First match wins, so\n"
      "                  custom rules override the defaults.\n"
      "  --all           print unchanged metrics too\n"
      "  --quiet         print nothing, just set the exit code\n"
      "  --allow-missing tolerate baseline metrics absent from the\n"
      "                  candidate and --rule patterns that match nothing\n"
      "                  (both are failures by default)\n"
      "\n"
      "exit codes: 0 no regression, 1 regression or missing metrics,\n"
      "2 usage/IO error\n");
}

std::optional<CompareDirection> parse_direction(std::string_view name) {
  if (name == "lower") return CompareDirection::LowerIsBetter;
  if (name == "higher") return CompareDirection::HigherIsBetter;
  if (name == "info") return CompareDirection::Info;
  if (name == "ignore") return CompareDirection::Ignore;
  return std::nullopt;
}

std::optional<CompareRule> parse_rule(std::string_view spec) {
  const std::size_t first = spec.find(':');
  if (first == std::string_view::npos || first == 0) return std::nullopt;
  CompareRule rule;
  rule.pattern = std::string(spec.substr(0, first));
  std::string_view rest = spec.substr(first + 1);
  const std::size_t second = rest.find(':');
  const std::string_view dir_name =
      second == std::string_view::npos ? rest : rest.substr(0, second);
  const auto direction = parse_direction(dir_name);
  if (!direction.has_value()) return std::nullopt;
  rule.direction = *direction;
  if (second != std::string_view::npos) {
    const std::string tol(rest.substr(second + 1));
    char* end = nullptr;
    rule.tolerance = std::strtod(tol.c_str(), &end);
    if (end == nullptr || *end != '\0' || rule.tolerance < 0.0) {
      return std::nullopt;
    }
  }
  return rule;
}

}  // namespace

int main(int argc, char** argv) {
  double tolerance = 0.02;
  bool show_all = false;
  bool quiet = false;
  bool allow_missing = false;
  std::vector<CompareRule> custom_rules;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return kExitOk;
    }
    if (arg == "--all") {
      show_all = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--allow-missing") {
      allow_missing = true;
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      const std::string value(arg.substr(12));
      char* end = nullptr;
      tolerance = std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0' || tolerance < 0.0) {
        std::fprintf(stderr, "ptwgr_compare: bad --tolerance value '%s'\n",
                     value.c_str());
        return kExitUsage;
      }
    } else if (arg.rfind("--rule=", 0) == 0) {
      auto rule = parse_rule(arg.substr(7));
      if (!rule.has_value()) {
        std::fprintf(stderr,
                     "ptwgr_compare: bad --rule spec '%s' (want "
                     "PATTERN:DIR[:TOL], DIR in lower|higher|info|ignore)\n",
                     std::string(arg.substr(7)).c_str());
        return kExitUsage;
      }
      // A user-spelled pattern that matches nothing is a failure (likely a
      // typo), unlike the built-in defaults.
      rule->required = true;
      custom_rules.push_back(*rule);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ptwgr_compare: unknown option '%s'\n",
                   std::string(arg).c_str());
      print_usage();
      return kExitUsage;
    } else {
      files.emplace_back(arg);
    }
  }

  if (files.size() != 2) {
    std::fprintf(stderr,
                 "ptwgr_compare: expected exactly two files, got %zu\n",
                 files.size());
    print_usage();
    return kExitUsage;
  }

  try {
    const ptwgr::json::Value baseline = ptwgr::json::parse_file(files[0]);
    const ptwgr::json::Value candidate = ptwgr::json::parse_file(files[1]);

    std::vector<CompareRule> rules = std::move(custom_rules);
    for (CompareRule& rule : ptwgr::obs::default_rules(tolerance)) {
      rules.push_back(std::move(rule));
    }

    const auto result = ptwgr::obs::compare(baseline, candidate, rules);
    if (!quiet) {
      std::fputs(
          ptwgr::obs::render_compare_table(result, !show_all).c_str(),
          stdout);
    }
    if (result.has_regression()) {
      if (!quiet) {
        std::fprintf(stdout, "REGRESSION: %s is worse than %s\n",
                     files[1].c_str(), files[0].c_str());
      }
      return kExitRegression;
    }
    if (result.has_missing() && !allow_missing) {
      if (!quiet) {
        for (const auto& delta : result.deltas) {
          if (delta.status == ptwgr::obs::DeltaStatus::Removed) {
            std::fprintf(stdout,
                         "MISSING: baseline metric '%s' is absent from %s\n",
                         delta.path.c_str(), files[1].c_str());
          }
        }
        for (const std::string& pattern : result.unmatched_required) {
          std::fprintf(stdout,
                       "MISSING: --rule pattern '%s' matched no metric in "
                       "either document\n",
                       pattern.c_str());
        }
        std::fprintf(stdout,
                     "MISSING: metrics went missing (pass --allow-missing "
                     "to tolerate)\n");
      }
      return kExitRegression;
    }
    return kExitOk;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "ptwgr_compare: %s\n", error.what());
    return kExitUsage;
  }
}
