#include "ptwgr/route/switchable.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "ptwgr/circuit/suite.h"
#include "ptwgr/route/connect.h"
#include "ptwgr/route/metrics.h"

namespace ptwgr {
namespace {

Wire make_wire(std::uint32_t row, Coord lo, Coord hi, bool switchable,
               std::uint32_t channel) {
  Wire w;
  w.net = NetId{0};
  w.row = row;
  w.lo = lo;
  w.hi = hi;
  w.switchable = switchable;
  w.channel = channel;
  return w;
}

TEST(Switchable, FlipsOutOfCongestedChannel) {
  // Channel 0 is crowded with fixed wires; one switchable wire sits there.
  std::vector<Wire> wires;
  for (int i = 0; i < 5; ++i) {
    wires.push_back(make_wire(0, 0, 100, false, 0));
  }
  wires.push_back(make_wire(0, 20, 80, true, 0));

  SwitchableOptimizer opt(2, 100, 16);
  opt.register_wires(wires);
  Rng rng(1);
  const std::size_t flips = opt.optimize(wires, rng, {});
  EXPECT_EQ(flips, 1u);
  EXPECT_EQ(wires.back().channel, 1u);
}

TEST(Switchable, StaysWhenCurrentChannelBetter) {
  std::vector<Wire> wires;
  for (int i = 0; i < 5; ++i) {
    wires.push_back(make_wire(0, 0, 100, false, 1));  // crowd the top
  }
  wires.push_back(make_wire(0, 20, 80, true, 0));
  SwitchableOptimizer opt(2, 100, 16);
  opt.register_wires(wires);
  Rng rng(2);
  EXPECT_EQ(opt.optimize(wires, rng, {}), 0u);
  EXPECT_EQ(wires.back().channel, 0u);
}

TEST(Switchable, FixedWiresNeverMove) {
  std::vector<Wire> wires{make_wire(0, 0, 50, false, 1)};
  for (int i = 0; i < 10; ++i) {
    wires.push_back(make_wire(0, 0, 50, false, 1));
  }
  SwitchableOptimizer opt(2, 100, 16);
  opt.register_wires(wires);
  Rng rng(3);
  EXPECT_EQ(opt.optimize(wires, rng, {}), 0u);
  for (const Wire& w : wires) EXPECT_EQ(w.channel, 1u);
}

TEST(Switchable, SpreadsLoadBetweenChannels) {
  // 20 identical switchable wires all start below; balance ends ~10/10.
  std::vector<Wire> wires;
  for (int i = 0; i < 20; ++i) {
    wires.push_back(make_wire(0, 0, 100, true, 0));
  }
  SwitchableOptimizer opt(2, 100, 16);
  opt.register_wires(wires);
  Rng rng(4);
  SwitchableOptions options;
  options.passes = 4;
  opt.optimize(wires, rng, options);
  int below = 0;
  for (const Wire& w : wires) {
    if (w.channel == 0) ++below;
  }
  EXPECT_NEAR(below, 10, 1);
  EXPECT_LE(opt.channel_peak(0), 11);
  EXPECT_LE(opt.channel_peak(1), 11);
}

TEST(Switchable, TrackCountNeverWorsensOnRealRouting) {
  Circuit c = small_test_circuit(5, 6, 30);
  auto wires = connect_all_nets(c);
  const RoutingMetrics before = compute_metrics(c, wires);

  SwitchableOptimizer opt(c.num_channels(), c.core_width(), 16);
  opt.register_wires(wires);
  Rng rng(5);
  SwitchableOptions options;
  options.passes = 3;
  opt.optimize(wires, rng, options);

  const RoutingMetrics after = compute_metrics(c, wires);
  EXPECT_LE(after.track_count, before.track_count);
}

TEST(Switchable, ProgressHookCountsDecisions) {
  std::vector<Wire> wires;
  for (int i = 0; i < 7; ++i) {
    wires.push_back(make_wire(0, 0, 10, true, 0));
  }
  wires.push_back(make_wire(0, 0, 10, false, 0));
  SwitchableOptimizer opt(2, 100, 16);
  opt.register_wires(wires);
  Rng rng(6);
  SwitchableOptions options;
  options.passes = 2;
  std::size_t calls = 0;
  opt.optimize(wires, rng, options, [&](std::size_t n) {
    ++calls;
    EXPECT_EQ(n, calls);
  });
  EXPECT_EQ(calls, 14u);  // 7 switchable × 2 passes; fixed wire excluded
}

TEST(Switchable, EqualTrackFlipTakenWhenItReducesLocalCrowding) {
  // Two stacked wires in channel 0, channel 1 empty.  Moving the switchable
  // one changes no channel peak total (2 either way) but strictly reduces
  // the crowding under the wire from 2 to 1.  The old secondary condition
  // (`other_local + 1 < cur_local`) was off by one and refused this flip;
  // the crowding comparison must be other_local < cur_local because the
  // wire's own +1 lands on whichever side it ends up.
  std::vector<Wire> wires{make_wire(0, 0, 64, false, 0),
                          make_wire(0, 0, 64, true, 0)};
  SwitchableOptimizer opt(2, 64, 16);
  opt.register_wires(wires);
  Rng rng(9);
  SwitchableOptions options;
  options.passes = 1;
  EXPECT_EQ(opt.optimize(wires, rng, options), 1u);
  EXPECT_EQ(wires[1].channel, 1u);
  EXPECT_EQ(opt.channel_peak(0), 1);
  EXPECT_EQ(opt.channel_peak(1), 1);
}

TEST(Switchable, EqualCrowdingDoesNotOscillate) {
  // Perfectly symmetric situation: equal tracks and equal local crowding on
  // both sides must keep the wire where it is, or repeated passes would flip
  // it forever (and desynchronize parallel replicas).
  std::vector<Wire> wires{make_wire(0, 0, 64, false, 0),
                          make_wire(0, 0, 64, false, 1),
                          make_wire(0, 0, 64, true, 0)};
  SwitchableOptimizer opt(2, 64, 16);
  opt.register_wires(wires);
  Rng rng(10);
  SwitchableOptions options;
  options.passes = 4;
  EXPECT_EQ(opt.optimize(wires, rng, options), 0u);
  EXPECT_EQ(wires[2].channel, 0u);
}

TEST(Switchable, PendingMirrorMatchesProfileAtBucketBoundaries) {
  // The pending-delta accumulator must widen wire spans into buckets exactly
  // the way DensityProfile does, including degenerate spans sitting on a
  // bucket boundary and spans whose hi is the top edge of the profile.
  SwitchableOptimizer opt(1, 64, 16);  // 4 buckets
  std::vector<Wire> wires{
      make_wire(0, 16, 32, true, 0),  // exactly bucket 1
      make_wire(0, 32, 32, true, 0),  // degenerate on a boundary: bucket 2
      make_wire(0, 0, 64, true, 0),   // hi on the top edge: buckets 0..3
  };
  opt.register_wires(wires);
  DensityProfile reference(0, 16, 4);
  reference.add({16, 32});
  reference.add({32, 32});
  reference.add({0, 64});
  const auto deltas = opt.take_pending_deltas();
  ASSERT_EQ(deltas.size(), 4u);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(deltas[b], reference.bucket_count(b)) << "bucket " << b;
  }
}

TEST(Switchable, CrossCheckAgreesOnRealRouting) {
  // cross_check re-derives every flip decision with the naive remove →
  // full-scan → re-add evaluation and throws on any disagreement with the
  // incremental one; identical outputs prove the runs took identical paths.
  Circuit c = small_test_circuit(17, 6, 30);
  const auto run = [&c](bool cross_check) {
    auto wires = connect_all_nets(c);
    SwitchableOptimizer opt(c.num_channels(), c.core_width(), 4);
    opt.register_wires(wires);
    Rng rng(11);
    SwitchableOptions options;
    options.passes = 3;
    options.cross_check = cross_check;
    const std::size_t flips = opt.optimize(wires, rng, options);
    return std::pair<std::size_t, std::vector<Wire>>{flips, std::move(wires)};
  };
  const auto [plain_flips, plain_wires] = run(false);
  const auto [checked_flips, checked_wires] = run(true);
  EXPECT_EQ(plain_flips, checked_flips);
  ASSERT_EQ(plain_wires.size(), checked_wires.size());
  for (std::size_t i = 0; i < plain_wires.size(); ++i) {
    EXPECT_EQ(plain_wires[i].channel, checked_wires[i].channel) << i;
  }
}

TEST(Switchable, PendingDeltasReflectOperations) {
  SwitchableOptimizer opt(2, 64, 16);  // 4 buckets per channel
  std::vector<Wire> wires{make_wire(0, 0, 64, true, 0)};
  opt.register_wires(wires);
  auto deltas = opt.take_pending_deltas();
  ASSERT_EQ(deltas.size(), 8u);
  // Channel 0 buckets all +1; channel 1 untouched.
  for (std::size_t b = 0; b < 4; ++b) EXPECT_EQ(deltas[b], 1);
  for (std::size_t b = 4; b < 8; ++b) EXPECT_EQ(deltas[b], 0);
  // Accumulator reset after take.
  for (const auto d : opt.take_pending_deltas()) EXPECT_EQ(d, 0);
}

TEST(Switchable, ExternalDeltasInfluenceDecisions) {
  // Another replica saturated channel 1; after applying its deltas our
  // switchable wire must stay in channel 0.
  SwitchableOptimizer opt(2, 64, 16);
  std::vector<Wire> wires{make_wire(0, 0, 64, true, 0)};
  opt.register_wires(wires);
  std::vector<std::int32_t> external(8, 0);
  for (std::size_t b = 4; b < 8; ++b) external[b] = 50;
  opt.apply_external_deltas(external);
  EXPECT_EQ(opt.channel_peak(1), 50);
  Rng rng(7);
  EXPECT_EQ(opt.optimize(wires, rng, {}), 0u);
  EXPECT_EQ(wires[0].channel, 0u);
}

TEST(Switchable, ReplicaSyncRevealsPeerCongestion) {
  // Replica a has loaded channel 0 with fixed wires; replica b owns one
  // switchable wire in the same channel.  Without a's deltas, b sees an
  // empty channel 0 and stays; after the sync it evacuates.  This is the
  // blindness the paper blames for the net-wise algorithm's quality loss.
  SwitchableOptimizer a(2, 64, 16);
  std::vector<Wire> wires_a;
  for (int i = 0; i < 3; ++i) wires_a.push_back(make_wire(0, 0, 64, false, 0));
  a.register_wires(wires_a);

  const auto make_b = [] {
    auto opt = std::make_unique<SwitchableOptimizer>(2, 64, 16);
    return opt;
  };

  // Unsynced replica: stays put.
  {
    auto b = make_b();
    std::vector<Wire> wb{make_wire(0, 0, 64, true, 0)};
    b->register_wires(wb);
    Rng rng(8);
    b->optimize(wb, rng, {});
    EXPECT_EQ(wb[0].channel, 0u);
  }

  // Synced replica: sees a's three wires and moves up.
  {
    auto b = make_b();
    std::vector<Wire> wb{make_wire(0, 0, 64, true, 0)};
    b->register_wires(wb);
    b->apply_external_deltas(a.take_pending_deltas());
    EXPECT_EQ(b->channel_peak(0), 4);
    Rng rng(8);
    b->optimize(wb, rng, {});
    EXPECT_EQ(wb[0].channel, 1u);
  }
}

}  // namespace
}  // namespace ptwgr
