// Incremental-vs-naive equivalence of the flip-sweep evaluations.
//
// The coarse and switchable sweeps decide flips from O(log n) delta
// evaluation (DESIGN.md §11); with cross_check enabled every decision is
// re-derived with the pre-incremental remove → evaluate → re-add scan and
// PTWGR_CHECKed against the incremental one, so a checked run that completes
// proves decision-by-decision agreement.  These tests run the full pipeline
// both ways on the smoke circuit and require byte-identical outputs: same
// flips, same wires, same grid state.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "ptwgr/circuit/suite.h"
#include "ptwgr/parallel/parallel_router.h"
#include "ptwgr/route/coarse.h"
#include "ptwgr/route/router.h"
#include "ptwgr/route/steiner.h"

namespace ptwgr {
namespace {

Circuit smoke_circuit() { return small_test_circuit(99, 6, 30); }

void expect_same_wires(const std::vector<Wire>& a, const std::vector<Wire>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].net.value(), b[i].net.value()) << i;
    EXPECT_EQ(a[i].channel, b[i].channel) << i;
    EXPECT_EQ(a[i].lo, b[i].lo) << i;
    EXPECT_EQ(a[i].hi, b[i].hi) << i;
    EXPECT_EQ(a[i].switchable, b[i].switchable) << i;
    EXPECT_EQ(a[i].row, b[i].row) << i;
  }
}

TEST(CrossCheck, SerialPipelineMatchesNaiveEvaluation) {
  RouterOptions options;
  options.seed = 12345;
  const RoutingResult plain = route_serial(smoke_circuit(), options);
  options.cross_check = true;
  const RoutingResult checked = route_serial(smoke_circuit(), options);
  EXPECT_EQ(checked.metrics.coarse_flips, plain.metrics.coarse_flips);
  EXPECT_EQ(checked.metrics.switch_flips, plain.metrics.switch_flips);
  EXPECT_EQ(checked.metrics.track_count, plain.metrics.track_count);
  EXPECT_EQ(checked.metrics.area, plain.metrics.area);
  EXPECT_EQ(checked.metrics.total_wirelength, plain.metrics.total_wirelength);
  expect_same_wires(checked.wires, plain.wires);
}

TEST(CrossCheck, CoarseImproveLeavesIdenticalGridState) {
  const Circuit c = smoke_circuit();
  const SteinerOptions steiner_options;
  const auto trees = build_all_steiner_trees(c, steiner_options);
  const auto run = [&](bool cross_check) {
    CoarseGrid grid(c, 32);
    auto segments = extract_coarse_segments(trees);
    CoarseOptions options;
    options.cross_check = cross_check;
    CoarseRouter router(grid, options);
    router.place_initial(segments);
    Rng rng(7);
    const std::size_t flips = router.improve(segments, rng);
    return std::pair<std::size_t, std::vector<std::int32_t>>{
        flips, grid.export_state()};
  };
  const auto [plain_flips, plain_state] = run(false);
  const auto [checked_flips, checked_state] = run(true);
  EXPECT_EQ(plain_flips, checked_flips);
  EXPECT_EQ(plain_state, checked_state);
}

TEST(CrossCheck, ParallelAlgorithmsRunCleanUnderCrossCheck) {
  // The parallel paths replay the same sweeps against replicated state (and
  // the net-wise one merges external deltas mid-sweep); the incremental
  // decisions must stay consistent with the naive reference there too.
  for (const auto algorithm :
       {ParallelAlgorithm::RowWise, ParallelAlgorithm::NetWise,
        ParallelAlgorithm::Hybrid}) {
    ParallelOptions options;
    options.router.seed = 12345;
    const auto plain =
        route_parallel(smoke_circuit(), algorithm, 4, options);
    options.router.cross_check = true;
    const auto checked =
        route_parallel(smoke_circuit(), algorithm, 4, options);
    EXPECT_EQ(checked.metrics.track_count, plain.metrics.track_count)
        << to_string(algorithm);
    EXPECT_EQ(checked.feedthrough_count, plain.feedthrough_count)
        << to_string(algorithm);
  }
}

}  // namespace
}  // namespace ptwgr
