#include "ptwgr/support/interval.h"

#include <gtest/gtest.h>

#include "ptwgr/support/rng.h"

namespace ptwgr {
namespace {

TEST(MaxOverlap, EmptyIsZero) { EXPECT_EQ(max_overlap({}), 0); }

TEST(MaxOverlap, SingleInterval) {
  EXPECT_EQ(max_overlap({{0, 10}}), 1);
}

TEST(MaxOverlap, DisjointIntervals) {
  EXPECT_EQ(max_overlap({{0, 5}, {5, 10}, {10, 15}}), 1);
}

TEST(MaxOverlap, NestedIntervals) {
  EXPECT_EQ(max_overlap({{0, 100}, {10, 20}, {12, 18}}), 3);
}

TEST(MaxOverlap, HalfOpenTouchingDoesNotOverlap) {
  // [0,5) and [5,10) share no point.
  EXPECT_EQ(max_overlap({{0, 5}, {5, 10}}), 1);
}

TEST(MaxOverlap, DegenerateIntervalCountsOne) {
  EXPECT_EQ(max_overlap({{5, 5}}), 1);
  EXPECT_EQ(max_overlap({{5, 5}, {5, 5}}), 2);
  EXPECT_EQ(max_overlap({{0, 10}, {5, 5}}), 2);
}

TEST(MaxOverlap, StaircasePattern) {
  std::vector<Interval> ivs;
  for (int i = 0; i < 10; ++i) {
    ivs.push_back({i, i + 5});
  }
  EXPECT_EQ(max_overlap(std::move(ivs)), 5);
}

TEST(MaxOverlap, NegativeCoordinates) {
  EXPECT_EQ(max_overlap({{-10, -2}, {-5, 3}, {-4, 0}}), 3);
}

/// Brute-force reference: sample density at every half-unit.
std::int64_t brute_force_overlap(const std::vector<Interval>& ivs) {
  std::int64_t best = 0;
  for (const Interval& probe : ivs) {
    for (const std::int64_t x : {probe.lo, probe.hi}) {
      std::int64_t depth = 0;
      for (const Interval& iv : ivs) {
        const std::int64_t hi = iv.lo == iv.hi ? iv.hi + 1 : iv.hi;
        if (x >= iv.lo && x < hi) ++depth;
      }
      best = std::max(best, depth);
    }
  }
  return best;
}

class MaxOverlapRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(MaxOverlapRandomSweep, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<Interval> ivs;
  for (int i = 0; i < 60; ++i) {
    const std::int64_t lo = rng.next_int(-50, 50);
    const std::int64_t len = rng.next_int(0, 30);
    ivs.push_back({lo, lo + len});
  }
  EXPECT_EQ(max_overlap(ivs), brute_force_overlap(ivs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxOverlapRandomSweep,
                         ::testing::Range(1, 13));

TEST(DensityProfile, AddRemoveRoundTrip) {
  DensityProfile p(0, 10, 10);
  p.add({0, 50});
  p.add({20, 80});
  EXPECT_EQ(p.max_density(), 2);
  p.remove({0, 50});
  EXPECT_EQ(p.max_density(), 1);
  p.remove({20, 80});
  EXPECT_EQ(p.max_density(), 0);
  EXPECT_EQ(p.total(), 0);
}

TEST(DensityProfile, MaxOverSpan) {
  DensityProfile p(0, 10, 10);
  p.add({0, 30});
  p.add({0, 30});
  p.add({50, 90});
  EXPECT_EQ(p.max_density_over({0, 30}), 2);
  EXPECT_EQ(p.max_density_over({50, 90}), 1);
  EXPECT_EQ(p.max_density_over({35, 45}), 0);
}

TEST(DensityProfile, ClampsOutOfRangeCoordinates) {
  DensityProfile p(0, 10, 5);
  p.add({-100, 500});  // covers everything
  EXPECT_EQ(p.max_density(), 1);
  p.add({200, 300});  // clamps into the last bucket
  EXPECT_EQ(p.max_density(), 2);
}

TEST(DensityProfile, DegenerateIntervalOccupiesOneBucket) {
  DensityProfile p(0, 10, 10);
  p.add({25, 25});
  EXPECT_EQ(p.max_density_over({20, 30}), 1);
  EXPECT_EQ(p.max_density_over({0, 10}), 0);
}

TEST(DensityProfile, HalfOpenUpperBoundaryExcluded) {
  DensityProfile p(0, 10, 10);
  p.add({0, 10});  // exactly bucket 0
  EXPECT_EQ(p.bucket_count(0), 1);
  EXPECT_EQ(p.bucket_count(1), 0);
}

TEST(DensityProfile, BucketRangeWidensDegenerateAndExcludesUpperBoundary) {
  DensityProfile p(0, 10, 10);
  // Half-open interval: the bucket hi starts is excluded.
  EXPECT_EQ(p.bucket_range({0, 10}), (std::pair<std::size_t, std::size_t>{0, 0}));
  EXPECT_EQ(p.bucket_range({0, 11}), (std::pair<std::size_t, std::size_t>{0, 1}));
  EXPECT_EQ(p.bucket_range({25, 45}), (std::pair<std::size_t, std::size_t>{2, 4}));
  // Degenerate interval on a bucket boundary lands in the bucket it starts.
  EXPECT_EQ(p.bucket_range({30, 30}), (std::pair<std::size_t, std::size_t>{3, 3}));
  EXPECT_EQ(p.bucket_range({35, 35}), (std::pair<std::size_t, std::size_t>{3, 3}));
  // Out-of-range coordinates clamp like bucket_of.
  EXPECT_EQ(p.bucket_range({-50, 500}),
            (std::pair<std::size_t, std::size_t>{0, 9}));
}

TEST(DensityProfile, MaxDensityExcluding) {
  DensityProfile p(0, 10, 10);
  p.add({0, 30});    // buckets 0-2
  p.add({0, 30});
  p.add({50, 90});   // buckets 5-8
  EXPECT_EQ(p.max_density_excluding({0, 30}), 1);   // sees only the tail wire
  EXPECT_EQ(p.max_density_excluding({50, 90}), 2);  // sees only the doubles
  EXPECT_EQ(p.max_density_excluding({0, 100}), 0);  // excludes everything
  EXPECT_EQ(p.max_density_excluding({35, 45}), 2);  // hole excludes nothing live
}

TEST(DensityProfile, ExcludingPlusOverReconstructsRemovedPeak) {
  // The identity the switchable optimizer's incremental evaluation rests on:
  // for a wire occupying exactly its bucket_range, the removed-state channel
  // peak is max(max_density_excluding(span), max_density_over(span) - 1).
  Rng rng(424242);
  DensityProfile p(0, 7, 23);
  std::vector<Interval> live;
  for (int step = 0; step < 200; ++step) {
    const std::int64_t lo = rng.next_int(0, 150);
    const Interval iv{lo, lo + rng.next_int(0, 40)};
    p.add(iv);
    live.push_back(iv);
    const Interval probe = live[rng.next_index(live.size())];
    const std::int64_t incremental =
        std::max(p.max_density_excluding(probe), p.max_density_over(probe) - 1);
    p.remove(probe);
    ASSERT_EQ(incremental, p.max_density());
    p.add(probe);
  }
}

TEST(DensityProfile, AddAtBucketTracksMax) {
  DensityProfile p(0, 10, 4);
  p.add_at_bucket(2, 3);
  EXPECT_EQ(p.max_density(), 3);
  p.add_at_bucket(2, -2);
  EXPECT_EQ(p.max_density(), 1);
}

TEST(DensityProfile, LazyMaxAfterManyRemovals) {
  DensityProfile p(0, 10, 10);
  for (int i = 0; i < 5; ++i) p.add({0, 100});
  p.add({40, 60});
  EXPECT_EQ(p.max_density(), 6);
  for (int i = 0; i < 5; ++i) p.remove({0, 100});
  EXPECT_EQ(p.max_density(), 1);
}

class DensityProfileRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(DensityProfileRandomSweep, MaxMatchesDirectScan) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 101);
  DensityProfile p(0, 7, 23);
  std::vector<Interval> live;
  for (int step = 0; step < 300; ++step) {
    if (!live.empty() && rng.next_bool(0.4)) {
      const std::size_t idx = rng.next_index(live.size());
      p.remove(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      const std::int64_t lo = rng.next_int(0, 150);
      const Interval iv{lo, lo + rng.next_int(0, 40)};
      p.add(iv);
      live.push_back(iv);
    }
    std::int64_t direct = 0;
    for (std::size_t b = 0; b < p.num_buckets(); ++b) {
      direct = std::max(direct, p.bucket_count(b));
    }
    ASSERT_EQ(p.max_density(), direct);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DensityProfileRandomSweep,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace ptwgr
