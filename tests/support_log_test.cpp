#include "ptwgr/support/log.h"

#include <gtest/gtest.h>

#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace ptwgr {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrip) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
}

TEST(Log, OrderingOfLevels) {
  EXPECT_LT(LogLevel::Debug, LogLevel::Info);
  EXPECT_LT(LogLevel::Info, LogLevel::Warn);
  EXPECT_LT(LogLevel::Warn, LogLevel::Error);
  EXPECT_LT(LogLevel::Error, LogLevel::Off);
}

TEST(Log, MacrosCompileAndRespectLevel) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Off);
  // Nothing observable to assert without capturing stderr; this exercises
  // the streaming path and the level gate for sanitizer/valgrind runs.
  PTWGR_LOG_DEBUG << "debug " << 1;
  PTWGR_LOG_INFO << "info " << 2.5;
  PTWGR_LOG_WARN << "warn " << "three";
  PTWGR_LOG_ERROR << "error";
  log_line(LogLevel::Debug, "suppressed direct call");
  SUCCEED();
}

TEST(Log, ParseLogLevel) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level(nullptr), LogLevel::Warn);
}

TEST(Log, ThreadRankDefaultsUnsetAndScopeRestores) {
  EXPECT_EQ(thread_log_rank(), -1);
  {
    const ScopedLogRank outer(2);
    EXPECT_EQ(thread_log_rank(), 2);
    {
      const ScopedLogRank inner(5);
      EXPECT_EQ(thread_log_rank(), 5);
    }
    EXPECT_EQ(thread_log_rank(), 2);
  }
  EXPECT_EQ(thread_log_rank(), -1);
}

TEST(Log, ThreadRankIsPerThread) {
  const ScopedLogRank mine(1);
  int seen = -2;
  std::thread other([&] { seen = thread_log_rank(); });
  other.join();
  EXPECT_EQ(seen, -1);  // a fresh thread starts without a rank
  EXPECT_EQ(thread_log_rank(), 1);
}

TEST(Log, LineCarriesLevelTimestampAndRank) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Info);
  ::testing::internal::CaptureStderr();
  {
    const ScopedLogRank rank(3);
    log_line(LogLevel::Info, "with rank");
  }
  log_line(LogLevel::Info, "without rank");
  const std::string captured = ::testing::internal::GetCapturedStderr();
  const std::regex with_rank(
      R"(\[ptwgr INFO \+\d+\.\d{6}s r3\] with rank)");
  const std::regex without_rank(
      R"(\[ptwgr INFO \+\d+\.\d{6}s\] without rank)");
  EXPECT_TRUE(std::regex_search(captured, with_rank)) << captured;
  EXPECT_TRUE(std::regex_search(captured, without_rank)) << captured;
}

TEST(Log, ConcurrentRankThreadsEmitWholeLines) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Info);
  constexpr int kThreads = 8;
  constexpr int kLines = 50;
  ::testing::internal::CaptureStderr();
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t] {
        const ScopedLogRank rank(t);
        for (int i = 0; i < kLines; ++i) {
          PTWGR_LOG_INFO << "from " << t << " line " << i;
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  const std::string captured = ::testing::internal::GetCapturedStderr();
  // Every line must be intact: correct prefix, and the rank marker must
  // match the rank embedded in the message (a torn line would break both).
  const std::regex line_re(
      R"(\[ptwgr INFO \+\d+\.\d{6}s r(\d+)\] from (\d+) line \d+)");
  std::istringstream lines(captured);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::smatch match;
    ASSERT_TRUE(std::regex_match(line, match, line_re)) << line;
    EXPECT_EQ(match[1], match[2]) << line;
    ++count;
  }
  EXPECT_EQ(count, kThreads * kLines);
}

}  // namespace
}  // namespace ptwgr
