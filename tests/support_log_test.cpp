#include "ptwgr/support/log.h"

#include <gtest/gtest.h>

namespace ptwgr {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrip) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
}

TEST(Log, OrderingOfLevels) {
  EXPECT_LT(LogLevel::Debug, LogLevel::Info);
  EXPECT_LT(LogLevel::Info, LogLevel::Warn);
  EXPECT_LT(LogLevel::Warn, LogLevel::Error);
  EXPECT_LT(LogLevel::Error, LogLevel::Off);
}

TEST(Log, MacrosCompileAndRespectLevel) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Off);
  // Nothing observable to assert without capturing stderr; this exercises
  // the streaming path and the level gate for sanitizer/valgrind runs.
  PTWGR_LOG_DEBUG << "debug " << 1;
  PTWGR_LOG_INFO << "info " << 2.5;
  PTWGR_LOG_WARN << "warn " << "three";
  PTWGR_LOG_ERROR << "error";
  log_line(LogLevel::Debug, "suppressed direct call");
  SUCCEED();
}

}  // namespace
}  // namespace ptwgr
