#include <gtest/gtest.h>

#include <numeric>

#include "ptwgr/circuit/suite.h"
#include "ptwgr/partition/net_partition.h"
#include "ptwgr/partition/row_partition.h"
#include "ptwgr/support/stats.h"

namespace ptwgr {
namespace {

TEST(RowPartition, BasicAccessors) {
  const RowPartition p({0, 3, 5, 9});
  EXPECT_EQ(p.num_blocks(), 3);
  EXPECT_EQ(p.num_rows(), 9u);
  EXPECT_EQ(p.first_row(0), 0u);
  EXPECT_EQ(p.end_row(0), 3u);
  EXPECT_EQ(p.rows_in(2), 4u);
  EXPECT_EQ(p.owner_of_row(0), 0);
  EXPECT_EQ(p.owner_of_row(2), 0);
  EXPECT_EQ(p.owner_of_row(3), 1);
  EXPECT_EQ(p.owner_of_row(8), 2);
  EXPECT_TRUE(p.spans_blocks(2, 3));
  EXPECT_FALSE(p.spans_blocks(3, 4));
}

TEST(RowPartition, RejectsMalformedStarts) {
  EXPECT_THROW(RowPartition({0}), CheckError);
  EXPECT_THROW(RowPartition({1, 5}), CheckError);
  EXPECT_THROW(RowPartition({0, 5, 5}), CheckError);
  EXPECT_THROW(RowPartition({0, 5, 3}), CheckError);
}

TEST(RowPartition, PartitionCoversAllRowsContiguously) {
  const Circuit c = small_test_circuit(1, 12, 20);
  for (int blocks : {1, 2, 3, 4, 6, 12}) {
    const RowPartition p = partition_rows(c, blocks);
    EXPECT_EQ(p.num_blocks(), blocks);
    EXPECT_EQ(p.num_rows(), 12u);
    std::size_t covered = 0;
    for (int b = 0; b < blocks; ++b) {
      EXPECT_EQ(p.first_row(b), covered);
      EXPECT_GE(p.rows_in(b), 1u);
      covered = p.end_row(b);
    }
    EXPECT_EQ(covered, 12u);
  }
}

TEST(RowPartition, BalancesPinLoad) {
  const Circuit c = small_test_circuit(2, 16, 30);
  const RowPartition p = partition_rows(c, 4);
  std::vector<double> load(4, 0.0);
  for (std::size_t pin = 0; pin < c.num_pins(); ++pin) {
    const PinId pid{static_cast<std::uint32_t>(pin)};
    load[static_cast<std::size_t>(
        p.owner_of_row(c.pin_row(pid).index()))] += 1.0;
  }
  EXPECT_LT(load_imbalance(load), 1.35);
}

TEST(RowPartition, MoreBlocksThanRowsRejected) {
  const Circuit c = small_test_circuit(3, 4, 10);
  EXPECT_THROW(partition_rows(c, 5), CheckError);
}

class NetPartitionSchemeSweep
    : public ::testing::TestWithParam<NetPartitionScheme> {};

TEST_P(NetPartitionSchemeSweep, EveryNetAssignedExactlyOnce) {
  const Circuit c = small_test_circuit(4, 8, 25);
  const RowPartition rows = partition_rows(c, 4);
  NetPartitionOptions options;
  options.scheme = GetParam();
  const NetPartition p = partition_nets(c, 4, options, &rows);

  ASSERT_EQ(p.owner.size(), c.num_nets());
  std::vector<std::size_t> counted(4, 0);
  for (const int o : p.owner) {
    ASSERT_GE(o, 0);
    ASSERT_LT(o, 4);
    ++counted[static_cast<std::size_t>(o)];
  }
  std::size_t total = 0;
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(p.nets_of[static_cast<std::size_t>(r)].size(),
              counted[static_cast<std::size_t>(r)]);
    total += counted[static_cast<std::size_t>(r)];
  }
  EXPECT_EQ(total, c.num_nets());
}

TEST_P(NetPartitionSchemeSweep, PinLoadReasonablyBalanced) {
  const Circuit c = small_test_circuit(5, 8, 40);
  const RowPartition rows = partition_rows(c, 4);
  NetPartitionOptions options;
  options.scheme = GetParam();
  const NetPartition p = partition_nets(c, 4, options, &rows);
  // Density clusters by geography and may be skewed; the others balance.
  const double limit =
      GetParam() == NetPartitionScheme::Density ? 3.0 : 1.4;
  EXPECT_LT(load_imbalance(p.pin_load), limit) << to_string(GetParam());
}

TEST_P(NetPartitionSchemeSweep, DeterministicAssignment) {
  const Circuit c = small_test_circuit(6, 6, 25);
  const RowPartition rows = partition_rows(c, 3);
  NetPartitionOptions options;
  options.scheme = GetParam();
  const NetPartition a = partition_nets(c, 3, options, &rows);
  const NetPartition b = partition_nets(c, 3, options, &rows);
  EXPECT_EQ(a.owner, b.owner);
}

INSTANTIATE_TEST_SUITE_P(Schemes, NetPartitionSchemeSweep,
                         ::testing::Values(NetPartitionScheme::Center,
                                           NetPartitionScheme::Locus,
                                           NetPartitionScheme::Density,
                                           NetPartitionScheme::PinNumberWeight));

TEST(NetPartition, SingleRankOwnsEverything) {
  const Circuit c = small_test_circuit(7, 4, 15);
  const NetPartition p = partition_nets(c, 1, {});
  for (const int o : p.owner) EXPECT_EQ(o, 0);
}

TEST(NetPartition, CenterSchemeClustersVertically) {
  // Nets assigned to lower ranks must have lower average centers.
  const Circuit c = small_test_circuit(8, 10, 30);
  NetPartitionOptions options;
  options.scheme = NetPartitionScheme::Center;
  const NetPartition p = partition_nets(c, 2, options);
  const auto mean_center = [&](int rank) {
    double sum = 0.0;
    std::size_t n = 0;
    for (const NetId net : p.nets_of[static_cast<std::size_t>(rank)]) {
      for (const PinId pid : c.net(net).pins) {
        sum += static_cast<double>(c.pin_row(pid).index());
        ++n;
      }
    }
    return sum / static_cast<double>(n);
  };
  EXPECT_LT(mean_center(0), mean_center(1));
}

TEST(NetPartition, GiantNetsSpreadRoundRobin) {
  GeneratorConfig cfg;
  cfg.seed = 10;
  cfg.num_rows = 8;
  cfg.num_cells = 400;
  cfg.num_nets = 500;
  cfg.giant_net_pins = {300, 280, 260, 240};
  const Circuit c = generate_circuit(cfg);

  NetPartitionOptions options;
  options.scheme = NetPartitionScheme::PinNumberWeight;
  options.giant_net_threshold = 100;
  const NetPartition p = partition_nets(c, 4, options);

  // The four giant nets are nets 500..503; each must land on its own rank.
  std::vector<int> giant_owner;
  for (std::uint32_t n = 500; n < 504; ++n) {
    giant_owner.push_back(p.owner[n]);
  }
  std::sort(giant_owner.begin(), giant_owner.end());
  EXPECT_EQ(giant_owner, (std::vector<int>{0, 1, 2, 3}));
}

TEST(NetPartition, PinWeightExponentImprovesBalanceWithGiants) {
  // Four whole-core clock nets: their centroids coincide, so the Center
  // scheme piles them onto one rank, while pin-number-weight deals them
  // round-robin (the paper's AVQ-LARGE fix).
  GeneratorConfig cfg;
  cfg.seed = 11;
  cfg.num_rows = 8;
  cfg.num_cells = 400;
  cfg.num_nets = 600;
  cfg.giant_net_pins = {200, 200, 200, 200};
  const Circuit c = generate_circuit(cfg);

  // Steiner cost scales superlinearly with pin count, so balance is judged
  // on k^2 work, not raw pins.
  const auto work_imbalance = [&](const NetPartition& p) {
    std::vector<double> work(4, 0.0);
    for (std::size_t n = 0; n < c.num_nets(); ++n) {
      const auto k = static_cast<double>(c.net(NetId{
          static_cast<std::uint32_t>(n)}).pins.size());
      work[static_cast<std::size_t>(p.owner[n])] += k * k;
    }
    return load_imbalance(work);
  };

  NetPartitionOptions weighted;
  weighted.scheme = NetPartitionScheme::PinNumberWeight;
  weighted.pin_weight_exponent = 2.0;
  NetPartitionOptions unweighted;
  unweighted.scheme = NetPartitionScheme::Center;

  EXPECT_LT(work_imbalance(partition_nets(c, 4, weighted)),
            work_imbalance(partition_nets(c, 4, unweighted)));
}

TEST(NetPartition, DensityRequiresRowPartition) {
  const Circuit c = small_test_circuit(12, 4, 10);
  NetPartitionOptions options;
  options.scheme = NetPartitionScheme::Density;
  EXPECT_THROW(partition_nets(c, 2, options, nullptr), CheckError);
}

}  // namespace
}  // namespace ptwgr
