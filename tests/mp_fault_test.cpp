// Fault-injection runtime tests: FaultPlan grammar, deterministic drop /
// corrupt / delay injection with acknowledged retries, kill triggers, typed
// failure errors (RankFailure, RecvTimeout), and the deadlock watchdog.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "ptwgr/mp/fault.h"
#include "ptwgr/mp/runtime.h"

namespace ptwgr::mp {
namespace {

FaultToleranceOptions with_plan(FaultPlan& plan) {
  FaultToleranceOptions ft;
  ft.fault_plan = &plan;
  return ft;
}

// --- plan grammar --------------------------------------------------------

TEST(FaultPlanParse, FullGrammar) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=9;drop=0.25;corrupt=0.1;delay=0.5:0.001;kill=rank1@op3;"
      "kill=rank0@phase:steiner");
  EXPECT_TRUE(plan.has_faults());
  const std::string summary = plan.summary();
  EXPECT_NE(summary.find("seed=9"), std::string::npos) << summary;
  EXPECT_NE(summary.find("drop=0.25"), std::string::npos) << summary;
  EXPECT_NE(summary.find("corrupt=0.1"), std::string::npos) << summary;
  EXPECT_NE(summary.find("kill=rank1@op3"), std::string::npos) << summary;
  EXPECT_NE(summary.find("kill=rank0@phase:steiner"), std::string::npos)
      << summary;
}

TEST(FaultPlanParse, EmptySpecHasNoFaults) {
  EXPECT_FALSE(FaultPlan::parse("").has_faults());
  EXPECT_FALSE(FaultPlan::parse("seed=5").has_faults());
}

TEST(FaultPlanParse, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("drop=1.5"), FaultSpecError);
  EXPECT_THROW(FaultPlan::parse("drop=-0.1"), FaultSpecError);
  EXPECT_THROW(FaultPlan::parse("drop=abc"), FaultSpecError);
  EXPECT_THROW(FaultPlan::parse("bogus=1"), FaultSpecError);
  EXPECT_THROW(FaultPlan::parse("drop"), FaultSpecError);
  EXPECT_THROW(FaultPlan::parse("delay=0.5"), FaultSpecError);
  EXPECT_THROW(FaultPlan::parse("delay=0.5:-1"), FaultSpecError);
  EXPECT_THROW(FaultPlan::parse("kill=1@op3"), FaultSpecError);
  EXPECT_THROW(FaultPlan::parse("kill=rank1"), FaultSpecError);
  EXPECT_THROW(FaultPlan::parse("kill=rank1@opX"), FaultSpecError);
  EXPECT_THROW(FaultPlan::parse("kill=rank1@op0"), FaultSpecError);
  EXPECT_THROW(FaultPlan::parse("kill=rank1@phase:"), FaultSpecError);
  EXPECT_THROW(FaultPlan::parse("kill=rank1@banana"), FaultSpecError);
}

// --- injection under retry ----------------------------------------------

TEST(MpFault, DroppedMessagesAreRetriedAndDeliveredInOrder) {
  constexpr int kMessages = 100;
  FaultPlan plan = FaultPlan::parse("seed=3;drop=0.1");
  const RunReport report =
      run(2, CostModel::ideal(), with_plan(plan), [](Communicator& comm) {
        if (comm.rank() == 0) {
          for (std::int32_t i = 0; i < kMessages; ++i) {
            comm.send_value(1, 5, i);
          }
        } else {
          for (std::int32_t i = 0; i < kMessages; ++i) {
            EXPECT_EQ(comm.recv_value<std::int32_t>(0, 5), i);
          }
        }
      });
  const CommStats totals = report.comm_totals();
  EXPECT_GT(totals.p2p_drops, 0u);
  EXPECT_GE(totals.p2p_retries, totals.p2p_drops);
  EXPECT_GT(totals.retry_backoff_seconds, 0.0);
  // Every message got through exactly once despite the drops.
  EXPECT_EQ(totals.messages_received, static_cast<std::uint64_t>(kMessages));
}

TEST(MpFault, CorruptionIsCaughtByChecksumAndRetransmitted) {
  constexpr int kMessages = 60;
  FaultPlan plan = FaultPlan::parse("seed=4;corrupt=0.2");
  const RunReport report =
      run(2, CostModel::ideal(), with_plan(plan), [](Communicator& comm) {
        if (comm.rank() == 0) {
          for (std::int32_t i = 0; i < kMessages; ++i) {
            std::vector<std::int64_t> payload(17, i);
            comm.send_value(1, 2, payload);
          }
        } else {
          for (std::int32_t i = 0; i < kMessages; ++i) {
            const auto payload = comm.recv_vector<std::int64_t>(0, 2);
            // Payload integrity: the damaged copies were discarded.
            ASSERT_EQ(payload.size(), 17u);
            for (const std::int64_t v : payload) EXPECT_EQ(v, i);
          }
        }
      });
  const CommStats totals = report.comm_totals();
  EXPECT_GT(totals.p2p_corruptions, 0u);
  // Every damaged envelope was detected on the receive side, exactly once.
  EXPECT_EQ(totals.checksum_failures, totals.p2p_corruptions);
  EXPECT_EQ(totals.messages_received, static_cast<std::uint64_t>(kMessages));
}

TEST(MpFault, InjectedDelaysChargeVirtualTime) {
  FaultPlan plan = FaultPlan::parse("delay=1.0:0.25");
  const RunReport report =
      run(2, CostModel::ideal(), with_plan(plan), [](Communicator& comm) {
        if (comm.rank() == 0) {
          for (std::int32_t i = 0; i < 4; ++i) comm.send_value(1, 1, i);
        } else {
          for (std::int32_t i = 0; i < 4; ++i) {
            comm.recv_value<std::int32_t>(0, 1);
          }
        }
      });
  const CommStats totals = report.comm_totals();
  EXPECT_EQ(totals.injected_delays, 4u);
  EXPECT_NEAR(totals.injected_delay_seconds, 1.0, 1e-12);
  // The latency spikes delayed the sender's virtual clock...
  EXPECT_GE(report.rank_vtime[0], 1.0);
  // ...and the receiver inherits them through arrival times.
  EXPECT_GE(report.rank_vtime[1], 1.0);
}

TEST(MpFault, InjectionCountersAreDeterministicAcrossRuns) {
  const auto traffic = [](Communicator& comm) {
    for (std::int32_t i = 0; i < 40; ++i) {
      if (comm.rank() == 0) {
        comm.send_value(1, 9, i);
      } else if (comm.rank() == 1) {
        comm.recv_value<std::int32_t>(0, 9);
      }
    }
    comm.barrier();
  };
  const auto counters_of = [&] {
    FaultPlan plan = FaultPlan::parse("seed=12;drop=0.1;corrupt=0.1");
    FaultToleranceOptions ft = with_plan(plan);
    // Generous retry budget: the combined ~19% per-attempt failure rate
    // must never exhaust it, so both runs complete and we can compare.
    ft.retry.max_retries = 12;
    const RunReport report = run(3, CostModel::ideal(), ft, traffic);
    return report.comm_totals();
  };
  const CommStats a = counters_of();
  const CommStats b = counters_of();
  EXPECT_EQ(a.p2p_drops, b.p2p_drops);
  EXPECT_EQ(a.p2p_retries, b.p2p_retries);
  EXPECT_EQ(a.p2p_corruptions, b.p2p_corruptions);
  EXPECT_EQ(a.checksum_failures, b.checksum_failures);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_GT(a.p2p_drops + a.p2p_corruptions, 0u);
}

// --- kills and typed failures -------------------------------------------

TEST(MpFault, KillAtOpRaisesRankFailureNamingTheRank) {
  FaultPlan plan = FaultPlan::parse("kill=rank1@op2");
  try {
    run(2, CostModel::ideal(), with_plan(plan), [](Communicator& comm) {
      for (int i = 0; i < 5; ++i) comm.barrier();
    });
    FAIL() << "expected RankFailure";
  } catch (const RankFailure& failure) {
    EXPECT_EQ(failure.rank(), 1);
    EXPECT_NE(std::string(failure.what()).find("fault plan"),
              std::string::npos);
  }
}

TEST(MpFault, KillAtPhaseRaisesRankFailure) {
  FaultPlan plan = FaultPlan::parse("kill=rank1@phase:switchable");
  try {
    run(3, CostModel::ideal(), with_plan(plan), [](Communicator& comm) {
      comm.notify_phase("steiner");
      comm.barrier();
      comm.notify_phase("switchable");
      comm.barrier();
    });
    FAIL() << "expected RankFailure";
  } catch (const RankFailure& failure) {
    EXPECT_EQ(failure.rank(), 1);
    EXPECT_NE(std::string(failure.what()).find("switchable"),
              std::string::npos);
  }
}

TEST(MpFault, KillsFireOncePerPlanLifetime) {
  // The recovery primitive: the same plan that killed a run lets the
  // re-execution complete, because begin_world preserves fired kills.
  FaultPlan plan = FaultPlan::parse("kill=rank0@op1");
  const auto body = [](Communicator& comm) { comm.barrier(); };
  EXPECT_THROW(run(2, CostModel::ideal(), with_plan(plan), body),
               RankFailure);
  EXPECT_NO_THROW(run(2, CostModel::ideal(), with_plan(plan), body));
}

TEST(MpFault, RetryExhaustionPresumesPeerDead) {
  FaultPlan plan = FaultPlan::parse("drop=1.0");
  FaultToleranceOptions ft = with_plan(plan);
  ft.retry.max_retries = 2;
  try {
    run(2, CostModel::ideal(), ft, [](Communicator& comm) {
      if (comm.rank() == 0) {
        comm.send_value(1, 0, std::int32_t{42});
      } else {
        comm.recv_value<std::int32_t>(0, 0);
      }
    });
    FAIL() << "expected RankFailure";
  } catch (const RankFailure& failure) {
    EXPECT_NE(std::string(failure.what()).find("presumed dead"),
              std::string::npos);
  }
}

TEST(MpFault, RecvFromDeadRankRaisesRankFailure) {
  // Rank 0 dies at its first operation; rank 1 is blocked receiving from it
  // and must observe the death instead of hanging.
  FaultPlan plan = FaultPlan::parse("kill=rank0@op1");
  try {
    run(2, CostModel::ideal(), with_plan(plan), [](Communicator& comm) {
      if (comm.rank() == 0) {
        comm.send_value(1, 7, std::int32_t{1});  // dies here
      } else {
        comm.recv_value<std::int32_t>(0, 7);
      }
    });
    FAIL() << "expected RankFailure";
  } catch (const RankFailure& failure) {
    EXPECT_EQ(failure.rank(), 0);
  }
}

TEST(MpFault, QueuedMessagesFromDeadRankAreStillDelivered) {
  // Sent-before-failure delivery: rank 0 sends, then dies; the message must
  // reach rank 1 anyway.
  FaultPlan plan = FaultPlan::parse("kill=rank0@op2");
  std::int32_t received = 0;
  try {
    run(2, CostModel::ideal(), with_plan(plan), [&](Communicator& comm) {
      if (comm.rank() == 0) {
        comm.send_value(1, 7, std::int32_t{41});  // op 1: delivered
        comm.barrier();                           // op 2: dies
      } else {
        received = comm.recv_value<std::int32_t>(0, 7);
        comm.barrier();
      }
    });
    FAIL() << "expected RankFailure";
  } catch (const RankFailure& failure) {
    EXPECT_EQ(failure.rank(), 0);
  }
  EXPECT_EQ(received, 41);
}

TEST(MpFault, RecvTimeoutRaisesTypedError) {
  FaultToleranceOptions ft;
  ft.recv_timeout_seconds = 0.02;
  try {
    run(2, CostModel::ideal(), ft, [](Communicator& comm) {
      if (comm.rank() == 1) {
        comm.recv(0, 13);  // rank 0 never sends
      }
    });
    FAIL() << "expected RecvTimeout";
  } catch (const RecvTimeout& timeout) {
    EXPECT_EQ(timeout.rank(), 1);
    EXPECT_EQ(timeout.source(), 0);
    EXPECT_EQ(timeout.tag(), 13);
  }
}

// --- watchdog ------------------------------------------------------------

TEST(MpFault, WatchdogTurnsDeadlockIntoDiagnosticError) {
  FaultToleranceOptions ft;
  ft.watchdog = true;
  ft.watchdog_interval_seconds = 0.02;
  try {
    run(2, CostModel::ideal(), ft, [](Communicator& comm) {
      // Crafted wait cycle: each rank receives from the other, nobody sends.
      comm.recv(1 - comm.rank(), 7);
    });
    FAIL() << "expected DeadlockDetected";
  } catch (const DeadlockDetected& deadlock) {
    const std::string report = deadlock.what();
    EXPECT_NE(report.find("deadlock detected"), std::string::npos) << report;
    // The report names who waits on whom.
    EXPECT_NE(report.find("rank 0: waits on recv(source=1, tag=7)"),
              std::string::npos)
        << report;
    EXPECT_NE(report.find("rank 1: waits on recv(source=0, tag=7)"),
              std::string::npos)
        << report;
  }
}

TEST(MpFault, WatchdogDetectsRankExitLeavingCollectiveIncomplete) {
  FaultToleranceOptions ft;
  ft.watchdog = true;
  ft.watchdog_interval_seconds = 0.02;
  ft.isolate_rank_failures = false;
  EXPECT_THROW(run(3, CostModel::ideal(), ft,
                   [](Communicator& comm) {
                     // Rank 2 returns without joining the barrier: the other
                     // two block in a rendezvous that can never complete.
                     if (comm.rank() == 2) return;
                     comm.barrier();
                   }),
               DeadlockDetected);
}

TEST(MpFault, WatchdogPassesHealthyTraffic) {
  FaultToleranceOptions ft;
  ft.watchdog = true;
  ft.watchdog_interval_seconds = 0.02;
  const RunReport report =
      run(4, CostModel::ideal(), ft, [](Communicator& comm) {
        for (int i = 0; i < 25; ++i) {
          comm.barrier();
          comm.send_value((comm.rank() + 1) % comm.size(), 3, i);
          comm.recv_value<int>((comm.rank() + comm.size() - 1) % comm.size(),
                               3);
        }
      });
  EXPECT_EQ(report.rank_vtime.size(), 4u);
}

// --- zero-overhead guarantee --------------------------------------------

TEST(MpFault, NoPlanMeansNoChecksumsAndNoFaultCounters) {
  const RunReport report = run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 1, std::int32_t{7});
    } else {
      const Received r = comm.recv(0, 1);
      EXPECT_FALSE(r.envelope.checksummed);
    }
  });
  const CommStats totals = report.comm_totals();
  EXPECT_EQ(totals.p2p_drops, 0u);
  EXPECT_EQ(totals.p2p_retries, 0u);
  EXPECT_EQ(totals.checksum_failures, 0u);
  EXPECT_EQ(totals.injected_delays, 0u);
}

}  // namespace
}  // namespace ptwgr::mp
