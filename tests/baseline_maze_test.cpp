#include "ptwgr/baseline/maze_router.h"

#include <gtest/gtest.h>

#include "ptwgr/circuit/builder.h"
#include "ptwgr/circuit/suite.h"

namespace ptwgr {
namespace {

TEST(MazeRouter, RoutesSimpleTwoPinNet) {
  CircuitBuilder b;
  const RowId r0 = b.add_row();
  const RowId r1 = b.add_row();
  const CellId c0 = b.add_cell(r0, 100);
  const CellId c1 = b.add_cell(r1, 100);
  const NetId n = b.add_net();
  b.add_pin(c0, n, 10, PinSide::Both);
  b.add_pin(c1, n, 90, PinSide::Both);
  const Circuit circuit = std::move(b).build();

  const MazeResult result = route_maze_baseline(circuit);
  EXPECT_GT(result.track_count, 0);
  EXPECT_GT(result.path_cells, 0);
  EXPECT_EQ(result.channel_density.size(), 3u);
  EXPECT_EQ(result.row_crossings.size(), 2u);
}

TEST(MazeRouter, SameRowNetNeedsNoCrossings) {
  CircuitBuilder b;
  const RowId row = b.add_row();
  const CellId c0 = b.add_cell(row, 100);
  const CellId c1 = b.add_cell(row, 100);
  const NetId n = b.add_net();
  b.add_pin(c0, n, 0, PinSide::Bottom);
  b.add_pin(c1, n, 90, PinSide::Bottom);
  const Circuit circuit = std::move(b).build();

  const MazeResult result = route_maze_baseline(circuit);
  EXPECT_EQ(result.feedthrough_count, 0);
  EXPECT_GE(result.track_count, 1);
}

TEST(MazeRouter, CrossRowNetPaysCrossings) {
  CircuitBuilder b;
  const RowId r0 = b.add_row();
  b.add_row();
  const RowId r2 = b.add_row();
  const CellId c0 = b.add_cell(r0, 50);
  const CellId c2 = b.add_cell(r2, 50);
  const NetId n = b.add_net();
  b.add_pin(c0, n, 10, PinSide::Both);
  b.add_pin(c2, n, 10, PinSide::Both);
  const Circuit circuit = std::move(b).build();

  const MazeResult result = route_maze_baseline(circuit);
  // At minimum the middle row must be crossed once; the outer rows' pins
  // choose adjacent channels.
  EXPECT_GE(result.feedthrough_count, 1);
  EXPECT_GE(result.row_crossings[1], 1);
}

TEST(MazeRouter, StackedPinsCostNothing) {
  CircuitBuilder b;
  const RowId row = b.add_row();
  const CellId cell = b.add_cell(row, 50);
  const NetId n = b.add_net();
  b.add_pin(cell, n, 10, PinSide::Both);
  b.add_pin(cell, n, 10, PinSide::Both);
  const Circuit circuit = std::move(b).build();
  const MazeResult result = route_maze_baseline(circuit);
  EXPECT_EQ(result.path_cells, 0);
  EXPECT_EQ(result.track_count, 0);
}

TEST(MazeRouter, DeterministicAndOrderDependent) {
  const Circuit circuit = small_test_circuit(17, 5, 25);
  const MazeResult a = route_maze_baseline(circuit);
  const MazeResult b = route_maze_baseline(circuit);
  EXPECT_EQ(a.track_count, b.track_count);
  EXPECT_EQ(a.feedthrough_count, b.feedthrough_count);

  MazeOptions reversed;
  reversed.reverse_net_order = true;
  const MazeResult r = route_maze_baseline(circuit, reversed);
  // The whole point of the baseline: results move with the net order.
  EXPECT_TRUE(r.track_count != a.track_count ||
              r.path_cells != a.path_cells ||
              r.feedthrough_count != a.feedthrough_count);
}

TEST(MazeRouter, CongestionAwarenessSpreadsLoad) {
  // Many parallel same-row nets between the same two columns: with
  // congestion weight they spread over both adjacent channels.
  CircuitBuilder b;
  const RowId row = b.add_row();
  const CellId c0 = b.add_cell(row, 200);
  const CellId c1 = b.add_cell(row, 200);
  for (int i = 0; i < 12; ++i) {
    const NetId n = b.add_net();
    b.add_pin(c0, n, 10, PinSide::Both);
    b.add_pin(c1, n, 190, PinSide::Both);
  }
  const Circuit circuit = std::move(b).build();
  const MazeResult result = route_maze_baseline(circuit);
  // Both channels of the row used, neither carrying everything.
  EXPECT_GT(result.channel_density[0], 0);
  EXPECT_GT(result.channel_density[1], 0);
  EXPECT_LT(result.channel_density[0], 12);
  EXPECT_LT(result.channel_density[1], 12);
}

TEST(MazeRouter, HandlesSuiteCircuitAtTinyScale) {
  const Circuit circuit =
      build_suite_circuit(suite_entry("primary2", 0.05));
  const MazeResult result = route_maze_baseline(circuit);
  EXPECT_GT(result.track_count, 0);
  EXPECT_GT(result.feedthrough_count, 0);
}

TEST(MazeRouter, ViaCostControlsCrossingAppetite) {
  const Circuit circuit = small_test_circuit(18, 6, 25);
  MazeOptions cheap;
  cheap.via_cost = 1.0;
  MazeOptions expensive;
  expensive.via_cost = 200.0;
  const MazeResult with_cheap = route_maze_baseline(circuit, cheap);
  const MazeResult with_expensive = route_maze_baseline(circuit, expensive);
  EXPECT_LE(with_expensive.feedthrough_count, with_cheap.feedthrough_count);
}

}  // namespace
}  // namespace ptwgr
