// Cross-module integration tests: full pipelines from generation through
// routing, detailed track assignment, persistence, and reporting — the
// paths a downstream user strings together.
#include <gtest/gtest.h>

#include <sstream>

#include "ptwgr/circuit/io.h"
#include "ptwgr/circuit/suite.h"
#include "ptwgr/detail/left_edge.h"
#include "ptwgr/eval/channel_report.h"
#include "ptwgr/parallel/parallel_router.h"
#include "ptwgr/route/router.h"

namespace ptwgr {
namespace {

TEST(IntegrationPipeline, GenerateSaveLoadRouteVerifyReport) {
  // The circuit_io example's flow, end to end, with assertions.
  GeneratorConfig config;
  config.seed = 321;
  config.num_rows = 8;
  config.num_cells = 400;
  config.num_nets = 420;
  const Circuit original = generate_circuit(config);

  std::stringstream file;
  write_circuit(file, original);
  const Circuit restored = read_circuit(file);

  RouterOptions options;
  options.seed = 5;
  const RoutingResult a = route_serial(original, options);
  const RoutingResult b = route_serial(restored, options);
  EXPECT_EQ(a.metrics.track_count, b.metrics.track_count);
  EXPECT_EQ(a.metrics.area, b.metrics.area);

  EXPECT_TRUE(verify_routing(a.circuit, a.wires).empty());

  // Detailed routing realizes the reported tracks.
  const DetailedRouting detailed = assign_all_tracks(a.circuit, a.wires);
  EXPECT_EQ(detailed.total_tracks(), a.metrics.track_count);

  // Report renders without error and carries the right totals.
  std::ostringstream report;
  write_routing_report(report, a.circuit, a.wires);
  EXPECT_NE(report.str().find("tracks total: " +
                              std::to_string(a.metrics.track_count)),
            std::string::npos);
}

struct AlgoScaleCase {
  ParallelAlgorithm algorithm;
  const char* circuit;
};

class SuiteSweep : public ::testing::TestWithParam<AlgoScaleCase> {};

TEST_P(SuiteSweep, ParallelRoutesDetailedTracksMatchMetrics) {
  const auto [algorithm, name] = GetParam();
  const SuiteEntry entry = suite_entry(name, 0.08);
  const auto result =
      route_parallel(build_suite_circuit(entry), algorithm, 4);
  EXPECT_GT(result.metrics.track_count, 0);
  // Per-channel densities are consistent with the track total.
  std::int64_t sum = 0;
  for (const auto d : result.metrics.channel_density) sum += d;
  EXPECT_EQ(sum, result.metrics.track_count);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SuiteSweep,
    ::testing::Values(
        AlgoScaleCase{ParallelAlgorithm::RowWise, "primary2"},
        AlgoScaleCase{ParallelAlgorithm::RowWise, "industry3"},
        AlgoScaleCase{ParallelAlgorithm::NetWise, "biomed"},
        AlgoScaleCase{ParallelAlgorithm::NetWise, "avq.small"},
        AlgoScaleCase{ParallelAlgorithm::Hybrid, "industry2"},
        AlgoScaleCase{ParallelAlgorithm::Hybrid, "avq.large"}),
    [](const ::testing::TestParamInfo<AlgoScaleCase>& param_info) {
      std::string name = to_string(param_info.param.algorithm) + "_" +
                         param_info.param.circuit;
      for (auto& ch : name) {
        if (ch == '-' || ch == '.') ch = '_';
      }
      return name;
    });

TEST(IntegrationPipeline, SerialAndParallelAgreeOnFeedthroughTotals) {
  // Across the whole tiny suite: the halo model keeps feedthrough counts
  // within a hair of serial for every circuit and algorithm.
  for (const SuiteEntry& entry : benchmark_suite(0.06)) {
    const RoutingResult serial = route_serial(build_suite_circuit(entry));
    for (const auto algorithm :
         {ParallelAlgorithm::RowWise, ParallelAlgorithm::Hybrid}) {
      const auto result =
          route_parallel(build_suite_circuit(entry), algorithm, 3);
      const double ratio =
          static_cast<double>(result.feedthrough_count) /
          static_cast<double>(serial.metrics.feedthrough_count);
      EXPECT_GT(ratio, 0.95) << entry.name << " " << to_string(algorithm);
      EXPECT_LT(ratio, 1.05) << entry.name << " " << to_string(algorithm);
    }
  }
}

TEST(IntegrationPipeline, RouterOptionsFlowThroughParallelFacade) {
  // A coarser grid must change routing on both serial and parallel paths
  // identically-directionally (same knob actually reaches the ranks).
  const SuiteEntry entry = suite_entry("primary2", 0.1);
  ParallelOptions narrow;
  narrow.router.column_width = 8;
  ParallelOptions wide;
  wide.router.column_width = 128;
  const auto a = route_parallel(build_suite_circuit(entry),
                                ParallelAlgorithm::Hybrid, 2, narrow);
  const auto b = route_parallel(build_suite_circuit(entry),
                                ParallelAlgorithm::Hybrid, 2, wide);
  // Different grids → different feedthrough columns → different results.
  EXPECT_TRUE(a.metrics.track_count != b.metrics.track_count ||
              a.metrics.total_wirelength != b.metrics.total_wirelength);
}

}  // namespace
}  // namespace ptwgr
