// Tests of the virtual-clock timing model.  Compute accrual is disabled
// (compute_scale = 0) so clocks advance only through explicit charges and
// modeled communication costs, making expectations exact.
#include <gtest/gtest.h>

#include "ptwgr/mp/runtime.h"

namespace ptwgr::mp {
namespace {

CostModel comm_only(double latency, double per_byte) {
  CostModel m;
  m.latency_s = latency;
  m.per_byte_s = per_byte;
  m.compute_scale = 0.0;
  return m;
}

TEST(MpVtime, MessageChargesAlphaBeta) {
  const CostModel m = comm_only(0.5, 0.001);
  const RunReport report = run(2, m, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 0, std::int64_t{1});  // 8-byte payload
      // Sender pays α + 8β = 0.508.
      EXPECT_NEAR(comm.vtime(), 0.508, 1e-9);
    } else {
      comm.recv(0, 0);
      // Receiver clock jumps to the arrival stamp.
      EXPECT_NEAR(comm.vtime(), 0.508, 1e-9);
    }
  });
  EXPECT_NEAR(report.parallel_time(), 0.508, 1e-9);
}

TEST(MpVtime, RecvWaitsForLateSender) {
  const CostModel m = comm_only(1.0, 0.0);
  run(2, m, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.add_virtual_time(10.0);  // sender is busy for 10 virtual seconds
      comm.send_value(1, 0, std::int32_t{1});
    } else {
      comm.recv(0, 0);
      EXPECT_NEAR(comm.vtime(), 11.0, 1e-9);
    }
  });
}

TEST(MpVtime, RecvDoesNotRewindFastReceiver) {
  const CostModel m = comm_only(1.0, 0.0);
  run(2, m, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 0, std::int32_t{1});  // arrives at t=1
    } else {
      comm.add_virtual_time(50.0);  // receiver is already far ahead
      comm.recv(0, 0);
      EXPECT_NEAR(comm.vtime(), 50.0, 1e-9);
    }
  });
}

TEST(MpVtime, BarrierSynchronizesToSlowest) {
  const CostModel m = comm_only(0.25, 0.0);
  const RunReport report = run(4, m, [](Communicator& comm) {
    comm.add_virtual_time(static_cast<double>(comm.rank()) * 2.0);
    comm.barrier();
    // max entry clock = 6; ⌈log₂4⌉ = 2 rounds of latency.
    EXPECT_NEAR(comm.vtime(), 6.0 + 2 * 0.25, 1e-9);
  });
  EXPECT_NEAR(report.parallel_time(), 6.5, 1e-9);
}

TEST(MpVtime, CollectiveCostScalesWithPayload) {
  const CostModel m = comm_only(0.0, 0.01);
  run(2, m, [](Communicator& comm) {
    std::vector<std::int8_t> payload(100, 1);  // 100 bytes + 8-byte header
    comm.broadcast_vector(0, payload);
    // 1 round × 108 bytes × 0.01 = 1.08.
    EXPECT_NEAR(comm.vtime(), 1.08, 1e-9);
  });
}

TEST(MpVtime, IdealModelCostsNothing) {
  const RunReport report = run(4, CostModel::ideal(), [](Communicator& comm) {
    comm.barrier();
    comm.allreduce_value(comm.rank(), SumOp{});
    if (comm.rank() == 0) comm.send_value(1, 0, std::int32_t{1});
    if (comm.rank() == 1) comm.recv(0, 0);
  });
  // Only measured CPU time accrues; that is tiny but nonzero.  The modeled
  // communication contribution must be zero, so vtimes stay far below a
  // millisecond even on a slow machine.
  for (const double v : report.rank_vtime) EXPECT_LT(v, 0.5);
}

TEST(MpVtime, ComputeScaleMultipliesCpuTime) {
  CostModel slow;
  slow.compute_scale = 1000.0;
  CostModel fast;
  fast.compute_scale = 0.0;
  const auto burn = [](Communicator& comm) {
    volatile double sink = 0.0;
    for (int i = 0; i < 2000000; ++i) sink = sink + 1.0;
    comm.barrier();
  };
  const double t_slow = run(1, slow, burn).parallel_time();
  const double t_fast = run(1, fast, burn).parallel_time();
  EXPECT_GT(t_slow, t_fast * 10.0);
  EXPECT_DOUBLE_EQ(t_fast, 0.0);
}

TEST(MpVtime, VtimeMonotonicAcrossOperations) {
  const CostModel m = comm_only(0.1, 0.001);
  run(4, m, [](Communicator& comm) {
    double last = comm.vtime();
    for (int i = 0; i < 5; ++i) {
      comm.barrier();
      const double now = comm.vtime();
      EXPECT_GE(now, last);
      last = now;
      comm.allgather(comm.rank());
      EXPECT_GE(comm.vtime(), last);
      last = comm.vtime();
    }
  });
}

TEST(MpVtime, PlatformModelsAreOrdered) {
  // The Paragon's per-message latency exceeds the SparcCenter's; a
  // latency-bound workload must therefore model slower on the Paragon.
  const auto latency_bound = [](Communicator& comm) {
    for (int i = 0; i < 100; ++i) comm.barrier();
  };
  const double t_smp =
      run(8, CostModel::sparc_center_smp(), latency_bound).parallel_time();
  const double t_dmp =
      run(8, CostModel::paragon_dmp(), latency_bound).parallel_time();
  EXPECT_GT(t_dmp, t_smp);
}

TEST(MpVtime, DecompositionSendAndRecvChargeP2pWait) {
  const CostModel m = comm_only(0.5, 0.001);
  const RunReport report = run(2, m, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 0, std::int64_t{1});  // transfer = α + 8β = 0.508
    } else {
      comm.recv(0, 0);  // clock jumps from 0 to the arrival stamp
    }
  });
  for (const CommStats& s : report.rank_comm) {
    EXPECT_NEAR(s.p2p_wait_seconds, 0.508, 1e-9);
    EXPECT_DOUBLE_EQ(s.compute_seconds, 0.0);
    EXPECT_DOUBLE_EQ(s.collective_sync_seconds, 0.0);
  }
}

TEST(MpVtime, DecompositionCollectiveJumpChargesSyncBucket) {
  const CostModel m = comm_only(0.25, 0.0);
  const RunReport report = run(4, m, [](Communicator& comm) {
    comm.add_virtual_time(static_cast<double>(comm.rank()) * 2.0);
    comm.barrier();  // everyone leaves at 6 + 2 rounds × 0.25 = 6.5
  });
  for (std::size_t r = 0; r < 4; ++r) {
    const CommStats& s = report.rank_comm[r];
    EXPECT_NEAR(s.compute_seconds, static_cast<double>(r) * 2.0, 1e-9);
    EXPECT_NEAR(s.collective_sync_seconds,
                6.5 - static_cast<double>(r) * 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(s.p2p_wait_seconds, 0.0);
  }
}

TEST(MpVtime, DecompositionBucketsSumToVtime) {
  const CostModel m = comm_only(0.1, 0.002);
  const RunReport report = run(4, m, [](Communicator& comm) {
    comm.add_virtual_time(0.5 * (comm.rank() + 1));
    if (comm.rank() == 0) {
      comm.send_value(1, 0, std::vector<std::int32_t>(64, 1));
    } else if (comm.rank() == 1) {
      comm.recv(0, 0);
    }
    comm.barrier();
    comm.allreduce_value(std::int64_t{comm.rank()}, SumOp{});
    comm.allgather(comm.rank());
  });
  for (std::size_t r = 0; r < 4; ++r) {
    const CommStats& s = report.rank_comm[r];
    EXPECT_NEAR(s.compute_seconds + s.p2p_wait_seconds +
                    s.collective_sync_seconds,
                report.rank_vtime[r], 1e-9);
  }
}

TEST(MpVtime, MarkRewindExcludesMeasurementFromEveryBucket) {
  const CostModel m = comm_only(1.0, 0.0);
  const RunReport report = run(2, m, [](Communicator& comm) {
    comm.barrier();  // routing "work": vtime 1.0, all of it collective sync
    const Communicator::TimeMark end_of_routing = comm.mark();

    // Measurement phase: compute plus another collective.
    comm.add_virtual_time(5.0);
    comm.allreduce_value(std::int64_t{1}, SumOp{});
    EXPECT_GT(comm.vtime(), 6.0);

    comm.rewind(end_of_routing);
    const CommStats& s = comm.comm_stats();
    EXPECT_NEAR(comm.vtime(), 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(s.compute_seconds, 0.0);
    EXPECT_NEAR(s.collective_sync_seconds, 1.0, 1e-9);
    // The traffic stays counted even though its time was rewound.
    EXPECT_EQ(s.collective_calls[static_cast<std::size_t>(
                  CollectiveKind::Allreduce)],
              1u);
  });
  EXPECT_NEAR(report.parallel_time(), 1.0, 1e-9);
}

TEST(MpVtime, SetVtimeDropsUnaccruedCpuFromComputeBucket) {
  CostModel m;
  m.compute_scale = 1000.0;
  run(1, m, [](Communicator& comm) {
    const double t0 = comm.vtime();
    const double c0 = comm.comm_stats().compute_seconds;
    // Burn real CPU: at 1000× scale this would add seconds of virtual
    // compute if it were accrued.
    volatile double sink = 0.0;
    for (int i = 0; i < 20000000; ++i) sink = sink + 1.0;
    comm.set_vtime(t0);
    EXPECT_NEAR(comm.comm_stats().compute_seconds, c0, 0.5);
    EXPECT_NEAR(comm.vtime(), t0, 0.5);
  });
}

TEST(MpVtime, ReportShapes) {
  const RunReport report = run(3, [](Communicator&) {});
  EXPECT_EQ(report.rank_vtime.size(), 3u);
  EXPECT_EQ(report.rank_cpu_seconds.size(), 3u);
  EXPECT_GE(report.wall_seconds, 0.0);
  EXPECT_GE(report.total_cpu_seconds(), 0.0);
}

}  // namespace
}  // namespace ptwgr::mp
