// Self-healing parallel routing: a rank killed mid-algorithm by the fault
// plan must not lose the run — survivors detect the death, the sub-problem
// is re-executed, and the final RoutingMetrics are byte-identical to a
// fault-free run.  Also covers the typed rank-count configuration errors.
#include <gtest/gtest.h>

#include <memory>

#include "ptwgr/circuit/generator.h"
#include "ptwgr/parallel/parallel_router.h"

namespace ptwgr {
namespace {

Circuit test_circuit() {
  GeneratorConfig cfg;
  cfg.seed = 11;
  cfg.num_rows = 12;
  cfg.num_cells = 240;
  cfg.num_nets = 260;
  return generate_circuit(cfg);
}

bool metrics_identical(const RoutingMetrics& a, const RoutingMetrics& b) {
  return a.track_count == b.track_count && a.area == b.area &&
         a.total_wirelength == b.total_wirelength &&
         a.feedthrough_count == b.feedthrough_count &&
         a.channel_density == b.channel_density;
}

class ParallelRecovery
    : public ::testing::TestWithParam<ParallelAlgorithm> {};

TEST_P(ParallelRecovery, KillMidAlgorithmRecoversWithIdenticalMetrics) {
  const Circuit circuit = test_circuit();
  constexpr int kRanks = 4;

  ParallelOptions options;
  options.router.seed = 7;
  const ParallelRoutingResult baseline =
      route_parallel(circuit, GetParam(), kRanks, options);
  EXPECT_EQ(baseline.recovery.attempts, 0);
  EXPECT_FALSE(baseline.recovery.recovered);

  // Seeded plan: sporadic message drops all along, and rank 2 dies at its
  // third communication operation.
  ParallelOptions faulted = options;
  faulted.fault.plan = std::make_shared<mp::FaultPlan>(
      mp::FaultPlan::parse("seed=5;drop=0.02;kill=rank2@op3"));
  const ParallelRoutingResult result =
      route_parallel(circuit, GetParam(), kRanks, faulted);

  EXPECT_EQ(result.recovery.attempts, 1);
  EXPECT_TRUE(result.recovery.recovered);
  ASSERT_FALSE(result.recovery.failed_ranks.empty());
  EXPECT_EQ(result.recovery.failed_ranks.front(), 2);
  EXPECT_TRUE(metrics_identical(baseline.metrics, result.metrics))
      << "faulted: " << result.metrics.to_string()
      << " baseline: " << baseline.metrics.to_string();
  EXPECT_EQ(result.feedthrough_count, baseline.feedthrough_count);
}

TEST_P(ParallelRecovery, KillAtPhaseRecoversWithIdenticalMetrics) {
  const Circuit circuit = test_circuit();
  constexpr int kRanks = 3;

  ParallelOptions options;
  options.router.seed = 7;
  const ParallelRoutingResult baseline =
      route_parallel(circuit, GetParam(), kRanks, options);

  // All three algorithms enter a "coarse" phase span.
  ParallelOptions faulted = options;
  faulted.fault.plan = std::make_shared<mp::FaultPlan>(
      mp::FaultPlan::parse("kill=rank1@phase:coarse"));
  const ParallelRoutingResult result =
      route_parallel(circuit, GetParam(), kRanks, faulted);

  EXPECT_EQ(result.recovery.attempts, 1);
  ASSERT_FALSE(result.recovery.failed_ranks.empty());
  EXPECT_EQ(result.recovery.failed_ranks.front(), 1);
  EXPECT_TRUE(metrics_identical(baseline.metrics, result.metrics));
}

TEST_P(ParallelRecovery, WatchdogEnabledRunMatchesBaseline) {
  const Circuit circuit = test_circuit();
  constexpr int kRanks = 4;

  ParallelOptions options;
  options.router.seed = 7;
  const ParallelRoutingResult baseline =
      route_parallel(circuit, GetParam(), kRanks, options);

  ParallelOptions watched = options;
  watched.fault.watchdog = true;
  watched.fault.watchdog_interval_seconds = 0.05;
  const ParallelRoutingResult result =
      route_parallel(circuit, GetParam(), kRanks, watched);

  EXPECT_EQ(result.recovery.attempts, 0);
  EXPECT_TRUE(metrics_identical(baseline.metrics, result.metrics));
}

TEST_P(ParallelRecovery, RetriesSurviveSporadicDropsWithoutRecovery) {
  const Circuit circuit = test_circuit();
  constexpr int kRanks = 4;

  ParallelOptions options;
  options.router.seed = 7;
  const ParallelRoutingResult baseline =
      route_parallel(circuit, GetParam(), kRanks, options);

  // Drops but no kill: the retry layer absorbs everything, no re-execution.
  ParallelOptions faulted = options;
  faulted.fault.plan =
      std::make_shared<mp::FaultPlan>(mp::FaultPlan::parse("seed=2;drop=0.05"));
  const ParallelRoutingResult result =
      route_parallel(circuit, GetParam(), kRanks, faulted);

  EXPECT_EQ(result.recovery.attempts, 0);
  EXPECT_TRUE(metrics_identical(baseline.metrics, result.metrics));
}

TEST_P(ParallelRecovery, GivesUpWhenRecoveryIsDisabled) {
  const Circuit circuit = test_circuit();
  ParallelOptions options;
  options.router.seed = 7;
  options.fault.plan = std::make_shared<mp::FaultPlan>(
      mp::FaultPlan::parse("kill=rank1@op1"));
  options.fault.max_recovery_attempts = 0;
  EXPECT_THROW(route_parallel(circuit, GetParam(), 4, options),
               mp::RankFailure);
}

std::string algorithm_name(
    const ::testing::TestParamInfo<ParallelAlgorithm>& param_info) {
  switch (param_info.param) {
    case ParallelAlgorithm::RowWise: return "RowWise";
    case ParallelAlgorithm::NetWise: return "NetWise";
    case ParallelAlgorithm::Hybrid: return "Hybrid";
  }
  return "Unknown";
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ParallelRecovery,
                         ::testing::Values(ParallelAlgorithm::RowWise,
                                           ParallelAlgorithm::NetWise,
                                           ParallelAlgorithm::Hybrid),
                         algorithm_name);

TEST(ParallelRecoveryLimits, RetryExhaustionDefeatsReExecution) {
  // Total message loss: every send exhausts its retries, every re-execution
  // fails identically, and the typed error surfaces after the re-execution
  // budget is spent.  Row-wise is the p2p-heavy algorithm, so the first
  // neighbour exchange already hits the dead link.
  const Circuit circuit = test_circuit();
  ParallelOptions options;
  options.router.seed = 7;
  options.fault.plan =
      std::make_shared<mp::FaultPlan>(mp::FaultPlan::parse("drop=1.0"));
  options.fault.max_recovery_attempts = 1;
  EXPECT_THROW(route_parallel(circuit, ParallelAlgorithm::RowWise, 4, options),
               mp::RankFailure);
}

// --- configuration errors ------------------------------------------------

TEST(ParallelConfig, RejectsNonPositiveRankCount) {
  const Circuit circuit = test_circuit();
  EXPECT_THROW(route_parallel(circuit, ParallelAlgorithm::RowWise, 0),
               ParallelConfigError);
  EXPECT_THROW(route_parallel(circuit, ParallelAlgorithm::Hybrid, -3),
               ParallelConfigError);
}

TEST(ParallelConfig, RejectsMoreRanksThanRowsWithDiagnostic) {
  const Circuit circuit = test_circuit();  // 12 rows
  try {
    route_parallel(circuit, ParallelAlgorithm::NetWise, 13);
    FAIL() << "expected ParallelConfigError";
  } catch (const ParallelConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("13"), std::string::npos) << msg;
    EXPECT_NE(msg.find("row count"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace ptwgr
