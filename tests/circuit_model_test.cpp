#include "ptwgr/circuit/circuit.h"

#include <gtest/gtest.h>

#include "ptwgr/circuit/builder.h"

namespace ptwgr {
namespace {

TEST(Circuit, EmptyCircuitCounts) {
  Circuit c;
  EXPECT_EQ(c.num_rows(), 0u);
  EXPECT_EQ(c.num_cells(), 0u);
  EXPECT_EQ(c.num_pins(), 0u);
  EXPECT_EQ(c.num_nets(), 0u);
  EXPECT_EQ(c.core_width(), 0);
}

TEST(Circuit, ChannelsAreRowsPlusOne) {
  Circuit c;
  c.add_row(16);
  c.add_row(16);
  c.add_row(16);
  EXPECT_EQ(c.num_channels(), 4u);
}

TEST(Circuit, PackAssignsContiguousPositions) {
  Circuit c;
  const RowId row = c.add_row(16);
  const CellId a = c.append_cell(row, 10, CellKind::Standard);
  const CellId b = c.append_cell(row, 5, CellKind::Standard);
  const CellId d = c.append_cell(row, 7, CellKind::Standard);
  c.pack_row(row, 2);
  EXPECT_EQ(c.cell(a).x, 0);
  EXPECT_EQ(c.cell(b).x, 12);
  EXPECT_EQ(c.cell(d).x, 19);
  EXPECT_EQ(c.row_width(row), 26);
}

TEST(Circuit, PinPositionsDeriveFromCell) {
  Circuit c;
  const RowId row = c.add_row(16);
  const CellId cell = c.append_cell(row, 10, CellKind::Standard);
  const NetId net = c.add_net();
  const PinId pin = c.add_cell_pin(cell, net, 4, PinSide::Top);
  c.pack_row(row);
  EXPECT_EQ(c.pin_x(pin), 4);
  EXPECT_EQ(c.pin_row(pin), row);
  EXPECT_FALSE(c.pin(pin).is_fake());
}

TEST(Circuit, FakePinHasAbsolutePosition) {
  Circuit c;
  const RowId row = c.add_row(16);
  c.append_cell(row, 10, CellKind::Standard);
  const NetId net = c.add_net();
  const PinId fake = c.add_fake_pin(net, row, 123);
  EXPECT_TRUE(c.pin(fake).is_fake());
  EXPECT_EQ(c.pin_x(fake), 123);
  EXPECT_EQ(c.pin_row(fake), row);
  EXPECT_EQ(c.pin(fake).side, PinSide::Both);
  // Fake pins belong to the net.
  EXPECT_EQ(c.net(net).pins.size(), 1u);
}

TEST(Circuit, InsertFeedthroughShiftsRightNeighbors) {
  Circuit c;
  const RowId row = c.add_row(16);
  const CellId a = c.append_cell(row, 10, CellKind::Standard);
  const CellId b = c.append_cell(row, 10, CellKind::Standard);
  c.pack_row(row);
  ASSERT_EQ(c.cell(b).x, 10);

  const CellId ft = c.insert_feedthrough(row, 10, 4);
  EXPECT_EQ(c.cell(ft).kind, CellKind::Feedthrough);
  EXPECT_EQ(c.cell(ft).x, 10);
  EXPECT_EQ(c.cell(a).x, 0);    // untouched
  EXPECT_EQ(c.cell(b).x, 14);   // shifted
  EXPECT_EQ(c.num_feedthrough_cells(), 1u);
  c.validate();
}

TEST(Circuit, InsertFeedthroughAbsorbsSlack) {
  Circuit c;
  const RowId row = c.add_row(16);
  const CellId a = c.append_cell(row, 10, CellKind::Standard);
  const CellId b = c.append_cell(row, 10, CellKind::Standard);
  c.pack_row(row, 6);  // gap of 6 between cells
  ASSERT_EQ(c.cell(b).x, 16);

  // Width-4 feedthrough fits in the gap: b should not move.
  c.insert_feedthrough(row, 10, 4);
  EXPECT_EQ(c.cell(a).x, 0);
  EXPECT_EQ(c.cell(b).x, 16);
  c.validate();
}

TEST(Circuit, InsertFeedthroughCascadesShifts) {
  Circuit c;
  const RowId row = c.add_row(16);
  c.append_cell(row, 10, CellKind::Standard);
  const CellId b = c.append_cell(row, 10, CellKind::Standard);
  const CellId d = c.append_cell(row, 10, CellKind::Standard);
  c.pack_row(row);

  c.insert_feedthrough(row, 5, 4);  // lands after cell a (x=10)
  // a's right edge is 10, so the ft sits at 10; b and d shift by 4.
  EXPECT_EQ(c.cell(b).x, 14);
  EXPECT_EQ(c.cell(d).x, 24);
  c.validate();
}

TEST(Circuit, InsertFeedthroughAtRowEnd) {
  Circuit c;
  const RowId row = c.add_row(16);
  c.append_cell(row, 10, CellKind::Standard);
  c.pack_row(row);
  const CellId ft = c.insert_feedthrough(row, 100, 4);
  EXPECT_EQ(c.cell(ft).x, 100);
  EXPECT_EQ(c.row_width(row), 104);
  c.validate();
}

TEST(Circuit, FeedthroughPinParticipatesInNet) {
  Circuit c;
  const RowId row = c.add_row(16);
  c.append_cell(row, 10, CellKind::Standard);
  c.pack_row(row);
  const NetId net = c.add_net();
  const CellId ft = c.insert_feedthrough(row, 20, 4);
  const PinId pin = c.add_cell_pin(ft, net, 2, PinSide::Both);
  EXPECT_EQ(c.pin_x(pin), 22);
  EXPECT_EQ(c.net(net).pins.size(), 1u);
  c.validate();
}

TEST(Circuit, ValidateCatchesPinOffsetOutsideCell) {
  Circuit c;
  const RowId row = c.add_row(16);
  const CellId cell = c.append_cell(row, 10, CellKind::Standard);
  const NetId net = c.add_net();
  EXPECT_THROW(c.add_cell_pin(cell, net, 11, PinSide::Top), CheckError);
}

TEST(Circuit, CoreWidthIsWidestRow) {
  Circuit c;
  const RowId r0 = c.add_row(16);
  const RowId r1 = c.add_row(16);
  c.append_cell(r0, 10, CellKind::Standard);
  c.append_cell(r1, 10, CellKind::Standard);
  c.append_cell(r1, 25, CellKind::Standard);
  c.pack();
  EXPECT_EQ(c.core_width(), 35);
}

TEST(CircuitBuilder, BuildsValidatedCircuit) {
  CircuitBuilder b;
  const RowId r0 = b.add_row();
  const RowId r1 = b.add_row();
  const CellId c0 = b.add_cell(r0, 8);
  const CellId c1 = b.add_cell(r1, 8);
  const NetId n = b.add_net();
  b.add_pin(c0, n, 2, PinSide::Top);
  b.add_pin(c1, n, 4, PinSide::Bottom);
  const Circuit circuit = std::move(b).build();
  EXPECT_EQ(circuit.num_rows(), 2u);
  EXPECT_EQ(circuit.num_pins(), 2u);
  EXPECT_EQ(circuit.net(n).pins.size(), 2u);
}

TEST(CircuitBuilder, RejectsBadInputs) {
  CircuitBuilder b;
  EXPECT_THROW(b.add_row(0), CheckError);
  const RowId r = b.add_row();
  EXPECT_THROW(b.add_cell(r, 0), CheckError);
  EXPECT_THROW(b.add_cell(RowId{42}, 5), CheckError);
}

TEST(Circuit, AddRowRejectsNonPositiveHeight) {
  Circuit c;
  EXPECT_THROW(c.add_row(0), CheckError);
  EXPECT_THROW(c.add_row(-5), CheckError);
}

}  // namespace
}  // namespace ptwgr
