#include "ptwgr/route/grid.h"

#include <gtest/gtest.h>

namespace ptwgr {
namespace {

TEST(CoarseGrid, ColumnGeometry) {
  CoarseGrid grid(4, 100, 32);
  EXPECT_EQ(grid.num_rows(), 4u);
  EXPECT_EQ(grid.num_channels(), 5u);
  EXPECT_EQ(grid.num_columns(), 4u);  // ceil(100/32)
  EXPECT_EQ(grid.column_of(0), 0u);
  EXPECT_EQ(grid.column_of(31), 0u);
  EXPECT_EQ(grid.column_of(32), 1u);
  EXPECT_EQ(grid.column_of(99), 3u);
  // Clamping.
  EXPECT_EQ(grid.column_of(-5), 0u);
  EXPECT_EQ(grid.column_of(100000), 3u);
  EXPECT_EQ(grid.column_center(0), 16);
  EXPECT_EQ(grid.column_center(1), 48);
}

TEST(CoarseGrid, ZeroWidthCoreStillHasOneColumn) {
  CoarseGrid grid(1, 0, 32);
  EXPECT_EQ(grid.num_columns(), 1u);
  EXPECT_EQ(grid.column_of(0), 0u);
}

TEST(CoarseGrid, FeedthroughDemandAccumulates) {
  CoarseGrid grid(3, 100, 10);
  grid.add_feedthrough_demand(1, 4, 1);
  grid.add_feedthrough_demand(1, 4, 1);
  grid.add_feedthrough_demand(1, 7, 1);
  EXPECT_EQ(grid.feedthrough_demand(1, 4), 2);
  EXPECT_EQ(grid.feedthrough_demand(1, 7), 1);
  EXPECT_EQ(grid.feedthrough_demand(0, 4), 0);
  EXPECT_EQ(grid.row_feedthrough_total(1), 3);
  grid.add_feedthrough_demand(1, 4, -2);
  EXPECT_EQ(grid.feedthrough_demand(1, 4), 0);
}

TEST(CoarseGrid, NegativeDemandRejected) {
  CoarseGrid grid(2, 50, 10);
  EXPECT_THROW(grid.add_feedthrough_demand(0, 0, -1), CheckError);
}

TEST(CoarseGrid, ChannelUseRangeOps) {
  CoarseGrid grid(2, 100, 10);
  grid.add_channel_use(1, 2, 6, 1);
  grid.add_channel_use(1, 4, 8, 1);
  EXPECT_EQ(grid.channel_use(1, 3), 1);
  EXPECT_EQ(grid.channel_use(1, 5), 2);
  EXPECT_EQ(grid.max_channel_use(1, 0, 9), 2);
  EXPECT_EQ(grid.max_channel_use(1, 0, 1), 0);
  EXPECT_EQ(grid.channel_use_sum(1, 2, 8), 5 + 5);
  // Other channels untouched.
  EXPECT_EQ(grid.max_channel_use(0, 0, 9), 0);
  EXPECT_EQ(grid.max_channel_use(2, 0, 9), 0);
}

TEST(CoarseGrid, FeedthroughSpanSum) {
  CoarseGrid grid(4, 100, 10);
  grid.add_feedthrough_demand(0, 3, 5);
  grid.add_feedthrough_demand(1, 3, 1);
  grid.add_feedthrough_demand(2, 3, 2);
  grid.add_feedthrough_demand(2, 4, 7);  // other column, must not count
  EXPECT_EQ(grid.feedthrough_span_sum(1, 3, 3), 3);  // rows 1..2
  EXPECT_EQ(grid.feedthrough_span_sum(0, 4, 3), 8);
  EXPECT_EQ(grid.feedthrough_span_sum(2, 2, 3), 0);  // empty row range
  EXPECT_THROW(grid.feedthrough_span_sum(3, 2, 3), CheckError);
  EXPECT_THROW(grid.feedthrough_span_sum(0, 5, 3), CheckError);
}

TEST(CoarseGrid, ExportAfterRangeOpsMatchesPointQueries) {
  // The snapshot must flatten the per-channel trees exactly, pending lazy
  // tags included, in the channel-major layout the delta sync assumes.
  CoarseGrid grid(2, 100, 10);
  grid.add_channel_use(0, 0, 9, 3);
  grid.add_channel_use(0, 4, 4, -3);
  grid.add_channel_use(2, 1, 7, 2);
  grid.add_feedthrough_demand(1, 6, 9);
  const auto state = grid.export_state();
  ASSERT_EQ(state.size(), grid.state_size());
  const std::size_t cols = grid.num_columns();
  const std::size_t ft = grid.num_rows() * cols;
  for (std::size_t r = 0; r < grid.num_rows(); ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      EXPECT_EQ(state[r * cols + c], grid.feedthrough_demand(r, c));
    }
  }
  for (std::size_t ch = 0; ch < grid.num_channels(); ++ch) {
    for (std::size_t c = 0; c < cols; ++c) {
      EXPECT_EQ(state[ft + ch * cols + c], grid.channel_use(ch, c));
    }
  }
}

TEST(CoarseGrid, TopChannelExists) {
  CoarseGrid grid(2, 50, 10);
  grid.add_channel_use(2, 0, 0, 1);  // channel above row 1
  EXPECT_EQ(grid.channel_use(2, 0), 1);
  EXPECT_THROW(grid.add_channel_use(3, 0, 0, 1), CheckError);
}

TEST(CoarseGrid, ExportImportRoundTrip) {
  CoarseGrid a(3, 100, 10);
  a.add_feedthrough_demand(0, 1, 2);
  a.add_channel_use(3, 2, 5, 4);
  const auto state = a.export_state();
  EXPECT_EQ(state.size(), a.state_size());

  CoarseGrid b(3, 100, 10);
  b.import_state(state);
  EXPECT_EQ(b.feedthrough_demand(0, 1), 2);
  EXPECT_EQ(b.channel_use(3, 3), 4);
  EXPECT_EQ(b.channel_use(3, 6), 0);
}

TEST(CoarseGrid, ImportRejectsWrongSize) {
  CoarseGrid grid(2, 50, 10);
  EXPECT_THROW(grid.import_state({1, 2, 3}), CheckError);
}

TEST(CoarseGrid, StateAdditivityForReplicaSync) {
  // The net-wise algorithm relies on demand maps being additive: replica
  // states summed elementwise equal the state of a grid that saw all ops.
  CoarseGrid a(2, 60, 10);
  CoarseGrid b(2, 60, 10);
  CoarseGrid all(2, 60, 10);
  a.add_feedthrough_demand(0, 2, 1);
  all.add_feedthrough_demand(0, 2, 1);
  b.add_channel_use(1, 1, 4, 2);
  all.add_channel_use(1, 1, 4, 2);

  const auto sa = a.export_state();
  const auto sb = b.export_state();
  std::vector<std::int32_t> sum(sa.size());
  for (std::size_t i = 0; i < sa.size(); ++i) sum[i] = sa[i] + sb[i];
  EXPECT_EQ(sum, all.export_state());
}

}  // namespace
}  // namespace ptwgr
