#include "ptwgr/route/feedthrough.h"

#include <gtest/gtest.h>

#include "ptwgr/circuit/suite.h"

namespace ptwgr {
namespace {

TEST(FeedthroughPools, TakeReturnsInsertedCells) {
  FeedthroughPools pools;
  pools.add(1, 2, CellId{10});
  pools.add(1, 2, CellId{11});
  pools.add(3, 0, CellId{12});
  EXPECT_EQ(pools.total_available(), 3u);

  const CellId first = pools.take(1, 2);
  EXPECT_TRUE(first.valid());
  const CellId second = pools.take(1, 2);
  EXPECT_TRUE(second.valid());
  EXPECT_NE(first, second);
  EXPECT_FALSE(pools.take(1, 2).valid());  // exhausted
  EXPECT_FALSE(pools.take(9, 9).valid());  // never stocked
  EXPECT_EQ(pools.total_available(), 1u);
}

struct RoutedFixture {
  Circuit circuit;
  CoarseGrid grid;
  std::vector<CoarseSegment> segments;

  explicit RoutedFixture(std::uint64_t seed)
      : circuit(small_test_circuit(seed, 5, 25)), grid(circuit, 32) {
    const auto trees = build_all_steiner_trees(circuit);
    segments = extract_coarse_segments(trees);
    CoarseRouter router(grid, {});
    router.place_initial(segments);
    Rng rng(seed);
    router.improve(segments, rng);
  }
};

TEST(Feedthrough, InsertMatchesDemand) {
  RoutedFixture f(1);
  std::int64_t total_demand = 0;
  for (std::size_t r = 0; r < f.grid.num_rows(); ++r) {
    total_demand += f.grid.row_feedthrough_total(r);
  }
  const FeedthroughPools pools =
      insert_feedthroughs(f.circuit, f.grid, 3);
  EXPECT_EQ(pools.total_available(), static_cast<std::size_t>(total_demand));
  EXPECT_EQ(f.circuit.num_feedthrough_cells(),
            static_cast<std::size_t>(total_demand));
  f.circuit.validate();
}

TEST(Feedthrough, InsertWidensRows) {
  RoutedFixture f(2);
  std::vector<Coord> before;
  for (std::size_t r = 0; r < f.circuit.num_rows(); ++r) {
    before.push_back(f.circuit.row_width(RowId{static_cast<std::uint32_t>(r)}));
  }
  insert_feedthroughs(f.circuit, f.grid, 3);
  for (std::size_t r = 0; r < f.circuit.num_rows(); ++r) {
    const Coord after =
        f.circuit.row_width(RowId{static_cast<std::uint32_t>(r)});
    EXPECT_GE(after, before[r]);
    if (f.grid.row_feedthrough_total(r) > 0) {
      EXPECT_GT(after, before[r]) << "row " << r;
    }
  }
}

TEST(Feedthrough, AssignBindsEveryCrossing) {
  RoutedFixture f(3);
  std::size_t expected_crossings = 0;
  for (const CoarseSegment& seg : f.segments) {
    expected_crossings += seg.b.row - seg.a.row - 1;
  }
  FeedthroughPools pools = insert_feedthroughs(f.circuit, f.grid, 3);
  const auto terminals = assign_feedthroughs(f.circuit, pools, f.grid,
                                             f.segments, 3);
  EXPECT_EQ(terminals.size(), expected_crossings);
  // Demand and crossings match exactly, so every pooled cell is consumed.
  EXPECT_EQ(pools.total_available(), 0u);
  f.circuit.validate();
}

TEST(Feedthrough, AssignedPinsBelongToTheCrossingNet) {
  RoutedFixture f(4);
  FeedthroughPools pools = insert_feedthroughs(f.circuit, f.grid, 3);
  const auto terminals =
      assign_feedthroughs(f.circuit, pools, f.grid, f.segments, 3);
  for (const FeedthroughTerminal& t : terminals) {
    const Pin& pin = f.circuit.pin(t.pin);
    EXPECT_EQ(pin.net, t.net);
    EXPECT_EQ(pin.side, PinSide::Both);
    EXPECT_EQ(f.circuit.pin_row(t.pin).index(), t.row);
    EXPECT_EQ(f.circuit.cell(pin.cell).kind, CellKind::Feedthrough);
  }
}

TEST(Feedthrough, NetGainsNodesInEveryCrossedRow) {
  RoutedFixture f(5);
  FeedthroughPools pools = insert_feedthroughs(f.circuit, f.grid, 3);
  assign_feedthroughs(f.circuit, pools, f.grid, f.segments, 3);
  // After assignment each net must have a terminal in every row between its
  // segment endpoints — that is the property step 4 relies on.
  for (const CoarseSegment& seg : f.segments) {
    std::vector<bool> has_row(f.circuit.num_rows(), false);
    for (const PinId pid : f.circuit.net(seg.net).pins) {
      has_row[f.circuit.pin_row(pid).index()] = true;
    }
    for (std::uint32_t r = seg.a.row; r <= seg.b.row; ++r) {
      EXPECT_TRUE(has_row[r]) << "net " << seg.net.value() << " row " << r;
    }
  }
}

TEST(Feedthrough, EmergencyInsertionWhenPoolEmpty) {
  RoutedFixture f(6);
  // Deliberately skip insertion: every crossing triggers the emergency path.
  FeedthroughPools empty_pools;
  const std::size_t cells_before = f.circuit.num_cells();
  const auto terminals =
      assign_feedthroughs(f.circuit, empty_pools, f.grid, f.segments, 3);
  EXPECT_EQ(f.circuit.num_cells(), cells_before + terminals.size());
  f.circuit.validate();
}

TEST(Feedthrough, RowFilterRestrictsMutation) {
  RoutedFixture f(7);
  const auto only_row_2 = [](std::size_t row) { return row == 2; };
  FeedthroughPools pools =
      insert_feedthroughs(f.circuit, f.grid, 3, only_row_2);
  EXPECT_EQ(pools.total_available(),
            static_cast<std::size_t>(f.grid.row_feedthrough_total(2)));
  const auto terminals = assign_feedthroughs(f.circuit, pools, f.grid,
                                             f.segments, 3, only_row_2);
  for (const FeedthroughTerminal& t : terminals) {
    EXPECT_EQ(t.row, 2u);
  }
  for (const Cell& cell : f.circuit.cells()) {
    if (cell.kind == CellKind::Feedthrough) {
      EXPECT_EQ(cell.row.index(), 2u);
    }
  }
}

}  // namespace
}  // namespace ptwgr
