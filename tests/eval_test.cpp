// Tests of the evaluation harness: platform models, the experiment runner's
// derived quantities (scaled metrics, speedups, timeout extrapolation), and
// the paper-style report renderers.
#include <gtest/gtest.h>

#include "ptwgr/eval/report.h"

namespace ptwgr {
namespace {

TEST(Platform, ModelsHaveExpectedAttributes) {
  const Platform smp = Platform::sparc_center();
  EXPECT_EQ(smp.node_memory_bytes, 0u);
  EXPECT_EQ(smp.max_processors, 8);
  EXPECT_GT(smp.cost.latency_s, 0.0);

  const Platform dmp = Platform::paragon();
  EXPECT_EQ(dmp.node_memory_bytes, 32ull * 1024 * 1024);
  EXPECT_GT(dmp.max_processors, 8);
  EXPECT_GT(dmp.cost.latency_s, smp.cost.latency_s);

  EXPECT_DOUBLE_EQ(Platform::ideal().cost.latency_s, 0.0);
}

TEST(Platform, SerialFitsRespectsMemoryLimit) {
  const Platform dmp = Platform::paragon();
  EXPECT_TRUE(dmp.serial_fits(16ull << 20));
  EXPECT_FALSE(dmp.serial_fits(40ull << 20));
  // Unlimited platforms always fit.
  EXPECT_TRUE(Platform::sparc_center().serial_fits(1ull << 40));
}

TEST(Platform, ParagonTimesOutOnExactlyTheTwoPaperCircuits) {
  const Platform dmp = Platform::paragon();
  std::vector<std::string> timeouts;
  for (const SuiteEntry& entry : benchmark_suite(1.0)) {
    if (!dmp.serial_fits(entry.estimated_memory_bytes)) {
      timeouts.push_back(entry.name);
    }
  }
  EXPECT_EQ(timeouts, (std::vector<std::string>{"industry3", "avq.large"}));
}

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.scale = 0.05;
  config.proc_counts = {1, 2};
  return config;
}

TEST(Experiment, ProducesPointsWithDerivedQuantities) {
  const SuiteEntry entry = suite_entry("primary2", 0.05);
  const CircuitExperiment result =
      run_experiment(entry, ParallelAlgorithm::Hybrid, tiny_config());
  EXPECT_EQ(result.circuit, "primary2");
  EXPECT_GT(result.serial_tracks, 0);
  ASSERT_TRUE(result.serial_modeled_seconds.has_value());
  ASSERT_EQ(result.points.size(), 2u);
  for (const RunPoint& point : result.points) {
    EXPECT_GT(point.tracks, 0);
    EXPECT_GT(point.scaled_tracks, 0.5);
    EXPECT_LT(point.scaled_tracks, 2.0);
    EXPECT_GT(point.speedup, 0.0);
    EXPECT_FALSE(point.speedup_extrapolated);
  }
}

TEST(Experiment, SkipsProcCountsAbovePlatformLimit) {
  ExperimentConfig config = tiny_config();
  config.proc_counts = {1, 2, 64};
  config.platform.max_processors = 2;
  const CircuitExperiment result = run_experiment(
      suite_entry("primary2", 0.05), ParallelAlgorithm::RowWise, config);
  EXPECT_EQ(result.points.size(), 2u);
}

TEST(Experiment, ExtrapolatesSpeedupWhenSerialDoesNotFit) {
  ExperimentConfig config = tiny_config();
  config.platform.node_memory_bytes = 1;  // nothing fits
  const CircuitExperiment result = run_experiment(
      suite_entry("primary2", 0.05), ParallelAlgorithm::Hybrid, config);
  EXPECT_FALSE(result.serial_modeled_seconds.has_value());
  for (const RunPoint& point : result.points) {
    EXPECT_TRUE(point.speedup_extrapolated);
    EXPECT_GT(point.speedup, 0.0);
  }
}

TEST(Experiment, SuiteRunCoversAllSixCircuits) {
  ExperimentConfig config = tiny_config();
  config.proc_counts = {2};
  const auto runs = run_suite_experiment(ParallelAlgorithm::RowWise, config);
  ASSERT_EQ(runs.size(), 6u);
  EXPECT_EQ(runs.front().circuit, "primary2");
  EXPECT_EQ(runs.back().circuit, "avq.large");
}

TEST(Report, Table1ListsEveryCircuit) {
  const std::string table = render_table1(0.02);
  for (const char* name : {"primary2", "biomed", "industry2", "industry3",
                           "avq.small", "avq.large"}) {
    EXPECT_NE(table.find(name), std::string::npos) << name;
  }
}

class ReportFixture : public ::testing::Test {
 protected:
  static std::vector<CircuitExperiment> sample_runs() {
    CircuitExperiment a;
    a.circuit = "alpha";
    a.serial_tracks = 100;
    a.serial_area = 1000;
    a.serial_modeled_seconds = 8.0;
    a.points = {{2, 104, 1040, 4.4, 1.04, 1.04, 1.82, false, 0, 0, {}},
                {4, 110, 1100, 2.5, 1.10, 1.10, 3.20, false, 0, 0, {}}};
    CircuitExperiment b;
    b.circuit = "beta";
    b.serial_tracks = 200;
    b.serial_area = 2000;
    // No serial time: extrapolated points.
    b.points = {{2, 202, 2020, 9.0, 1.01, 1.01, 2.00, true, 0, 0, {}},
                {4, 206, 2060, 5.0, 1.03, 1.03, 3.60, true, 0, 0, {}}};
    return {a, b};
  }
};

TEST_F(ReportFixture, ScaledTracksTableHasRowsAndMeans) {
  const std::string table =
      render_scaled_tracks_table("Table X", sample_runs());
  EXPECT_NE(table.find("Table X"), std::string::npos);
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("1.040"), std::string::npos);
  EXPECT_NE(table.find("(mean)"), std::string::npos);
  // mean at 4 procs = (1.10 + 1.03) / 2.
  EXPECT_NE(table.find("1.065"), std::string::npos);
}

TEST_F(ReportFixture, SpeedupFigureMarksExtrapolation) {
  const std::string fig = render_speedup_figure("Fig X", sample_runs());
  EXPECT_NE(fig.find("beta"), std::string::npos);
  EXPECT_NE(fig.find("3.60*"), std::string::npos);
  EXPECT_NE(fig.find("3.20"), std::string::npos);
  EXPECT_EQ(fig.find("3.20*"), std::string::npos);
}

TEST_F(ReportFixture, Table5ShowsTimeoutForMissingSerial) {
  const std::string table =
      render_table5_platform(Platform::paragon(), sample_runs());
  EXPECT_NE(table.find("timeout"), std::string::npos);
  EXPECT_NE(table.find("Paragon"), std::string::npos);
  EXPECT_NE(table.find("32 MB/node"), std::string::npos);
}

TEST_F(ReportFixture, MeanHelpers) {
  const auto runs = sample_runs();
  EXPECT_NEAR(mean_speedup_at(runs, 4), (3.2 + 3.6) / 2, 1e-12);
  EXPECT_NEAR(mean_scaled_tracks_at(runs, 2), (1.04 + 1.01) / 2, 1e-12);
  EXPECT_DOUBLE_EQ(mean_speedup_at(runs, 16), 0.0);
}

}  // namespace
}  // namespace ptwgr
