// Reproduction-shape tests: the relative properties the paper's conclusions
// rest on, checked at reduced scale so they run in CI time.  These are the
// claims EXPERIMENTS.md quantifies at full scale.
#include <gtest/gtest.h>

#include "ptwgr/circuit/suite.h"
#include "ptwgr/parallel/parallel_router.h"
#include "ptwgr/route/router.h"

namespace ptwgr {
namespace {

struct Measured {
  double scaled_tracks;
  double rank_cpu_max;
};

Measured measure(const SuiteEntry& entry, ParallelAlgorithm algorithm,
                 int procs, std::int64_t serial_tracks) {
  const auto result =
      route_parallel(build_suite_circuit(entry), algorithm, procs);
  double max_cpu = 0.0;
  for (const double c : result.report.rank_cpu_seconds) {
    max_cpu = std::max(max_cpu, c);
  }
  return {static_cast<double>(result.metrics.track_count) /
              static_cast<double>(serial_tracks),
          max_cpu};
}

class ShapeFixture : public ::testing::Test {
 protected:
  static constexpr double kScale = 0.25;

  void SetUp() override {
    entry_ = suite_entry("biomed", kScale);
    serial_ = route_serial(build_suite_circuit(entry_)).metrics.track_count;
  }

  SuiteEntry entry_;
  std::int64_t serial_ = 0;
};

TEST_F(ShapeFixture, HybridQualityBeatsRowWise) {
  // Paper: hybrid is the best-quality algorithm; row-wise pays the Fig. 3
  // boundary cost.
  const auto hybrid = measure(entry_, ParallelAlgorithm::Hybrid, 8, serial_);
  const auto rowwise = measure(entry_, ParallelAlgorithm::RowWise, 8, serial_);
  EXPECT_LT(hybrid.scaled_tracks, rowwise.scaled_tracks);
}

TEST_F(ShapeFixture, RowWiseDegradationGrowsWithProcessors) {
  const auto r2 = measure(entry_, ParallelAlgorithm::RowWise, 2, serial_);
  const auto r8 = measure(entry_, ParallelAlgorithm::RowWise, 8, serial_);
  EXPECT_GT(r8.scaled_tracks, r2.scaled_tracks);
}

TEST_F(ShapeFixture, AllAlgorithmsStayWithinPaperBands) {
  for (const auto algorithm :
       {ParallelAlgorithm::RowWise, ParallelAlgorithm::NetWise,
        ParallelAlgorithm::Hybrid}) {
    for (const int procs : {2, 8}) {
      const auto m = measure(entry_, algorithm, procs, serial_);
      EXPECT_GT(m.scaled_tracks, 0.95)
          << to_string(algorithm) << " @" << procs;
      EXPECT_LT(m.scaled_tracks, 1.30)
          << to_string(algorithm) << " @" << procs;
    }
  }
}

TEST_F(ShapeFixture, RowWiseWorkPartitionsBest) {
  // Total CPU across ranks — a noise-robust proxy for parallel efficiency —
  // must be smallest for row-wise (everything local) and largest for
  // net-wise, whose feedthrough insertion is replicated on every rank.
  const auto total_cpu = [this](ParallelAlgorithm algorithm) {
    const auto result =
        route_parallel(build_suite_circuit(entry_), algorithm, 8);
    return result.report.total_cpu_seconds();
  };
  EXPECT_LT(total_cpu(ParallelAlgorithm::RowWise),
            total_cpu(ParallelAlgorithm::NetWise));
}

TEST_F(ShapeFixture, NetWiseQualityDegradesWithSparserSync) {
  ParallelOptions frequent;
  frequent.coarse_sync_period = 32;
  frequent.switch_sync_period = 32;
  ParallelOptions never;
  never.coarse_sync_period = std::size_t{1} << 30;
  never.switch_sync_period = std::size_t{1} << 30;

  const auto with_sync =
      route_parallel(build_suite_circuit(entry_), ParallelAlgorithm::NetWise,
                     8, frequent);
  const auto blind =
      route_parallel(build_suite_circuit(entry_), ParallelAlgorithm::NetWise,
                     8, never);
  // Blindness must not *help*; typically it hurts by a small margin.
  EXPECT_GE(blind.metrics.track_count + 2, with_sync.metrics.track_count);
  EXPECT_LE(with_sync.metrics.track_count,
            static_cast<std::int64_t>(
                static_cast<double>(blind.metrics.track_count) * 1.01));
}

TEST_F(ShapeFixture, FeedthroughCountsMatchSerialClosely) {
  // The halo-row fake-pin model keeps crossing accounting exact: parallel
  // feedthrough counts stay within a fraction of a percent of serial.
  const auto serial_result = route_serial(build_suite_circuit(entry_));
  for (const auto algorithm :
       {ParallelAlgorithm::RowWise, ParallelAlgorithm::NetWise,
        ParallelAlgorithm::Hybrid}) {
    const auto result =
        route_parallel(build_suite_circuit(entry_), algorithm, 8);
    const double ratio =
        static_cast<double>(result.feedthrough_count) /
        static_cast<double>(serial_result.metrics.feedthrough_count);
    EXPECT_GT(ratio, 0.97) << to_string(algorithm);
    EXPECT_LT(ratio, 1.03) << to_string(algorithm);
  }
}

TEST(Shapes, GiantClockNetLimitsSpeedupOfItsOwner) {
  // avq.large's 3200-pin net is indivisible: the rank that owns it does
  // Θ(k²) Steiner work alone.  Its per-rank CPU imbalance must exceed a
  // no-giants circuit's.
  const auto giant =
      route_parallel(build_suite_circuit(suite_entry("avq.large", 0.15)),
                     ParallelAlgorithm::RowWise, 8);
  const auto plain =
      route_parallel(build_suite_circuit(suite_entry("biomed", 0.15)),
                     ParallelAlgorithm::RowWise, 8);
  const auto imbalance = [](const mp::RunReport& report) {
    double max = 0.0;
    double sum = 0.0;
    for (const double c : report.rank_cpu_seconds) {
      max = std::max(max, c);
      sum += c;
    }
    return max * static_cast<double>(report.rank_cpu_seconds.size()) / sum;
  };
  EXPECT_GT(imbalance(giant.report), imbalance(plain.report));
}

TEST(Shapes, QualityIsPlatformIndependent) {
  const SuiteEntry entry = suite_entry("primary2", 0.2);
  const auto ideal = route_parallel(build_suite_circuit(entry),
                                    ParallelAlgorithm::Hybrid, 4, {},
                                    mp::CostModel::ideal());
  const auto smp = route_parallel(build_suite_circuit(entry),
                                  ParallelAlgorithm::Hybrid, 4, {},
                                  mp::CostModel::sparc_center_smp());
  const auto dmp = route_parallel(build_suite_circuit(entry),
                                  ParallelAlgorithm::Hybrid, 4, {},
                                  mp::CostModel::paragon_dmp());
  EXPECT_EQ(ideal.metrics.track_count, smp.metrics.track_count);
  EXPECT_EQ(smp.metrics.track_count, dmp.metrics.track_count);
  EXPECT_EQ(ideal.metrics.channel_density, dmp.metrics.channel_density);
}

}  // namespace
}  // namespace ptwgr
