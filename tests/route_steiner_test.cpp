#include "ptwgr/route/steiner.h"

#include <gtest/gtest.h>

#include "ptwgr/circuit/builder.h"
#include "ptwgr/circuit/suite.h"
#include "ptwgr/route/dsu.h"

namespace ptwgr {
namespace {

/// Two rows, pins placed explicitly; offsets are x since cells are width-1
/// packed... build with one wide cell per pin position instead.
struct Fixture {
  Circuit circuit;
  NetId net;

  explicit Fixture(const std::vector<RoutePoint>& pin_positions) {
    CircuitBuilder b;
    std::uint32_t max_row = 0;
    for (const auto& p : pin_positions) max_row = std::max(max_row, p.row);
    std::vector<RowId> rows;
    for (std::uint32_t r = 0; r <= max_row; ++r) rows.push_back(b.add_row());
    net = b.add_net();
    // One cell per pin: width 1 placed via per-row packing order.  To get an
    // exact x we use a dedicated row trick: add filler cells.  Simpler: use
    // fake pins, which carry absolute coordinates.
    circuit = std::move(b).build();
    for (const auto& p : pin_positions) {
      circuit.add_fake_pin(net, RowId{p.row}, p.x);
    }
  }
};

bool tree_is_connected(const SteinerTree& tree) {
  if (tree.nodes.empty()) return true;
  DisjointSets dsu(tree.nodes.size());
  for (const TreeEdge& e : tree.edges) dsu.unite(e.a, e.b);
  return dsu.num_sets() == 1;
}

TEST(Steiner, EmptyNetYieldsEmptyTree) {
  CircuitBuilder b;
  b.add_row();
  const NetId net = b.add_net();
  const Circuit c = std::move(b).build();
  const SteinerTree tree = build_steiner_tree(c, net);
  EXPECT_TRUE(tree.edges.empty());
}

TEST(Steiner, TwoPinNetSingleEdge) {
  Fixture f({{0, 0}, {50, 1}});
  const SteinerTree tree = build_steiner_tree(f.circuit, f.net);
  ASSERT_EQ(tree.nodes.size(), 2u);
  EXPECT_EQ(tree.edges.size(), 1u);
  EXPECT_EQ(tree.num_inter_row_edges(), 1u);
}

TEST(Steiner, StackedPinsCollapse) {
  Fixture f({{5, 0}, {5, 0}, {5, 0}, {9, 0}});
  const SteinerTree tree = build_steiner_tree(f.circuit, f.net);
  EXPECT_EQ(tree.nodes.size(), 2u);
  EXPECT_EQ(tree.edges.size(), 1u);
}

TEST(Steiner, TreeIsSpanning) {
  Fixture f({{0, 0}, {30, 0}, {15, 1}, {40, 2}, {5, 2}, {22, 1}});
  const SteinerTree tree = build_steiner_tree(f.circuit, f.net);
  EXPECT_TRUE(tree_is_connected(tree));
  EXPECT_EQ(tree.edges.size(), tree.nodes.size() - 1);
}

TEST(Steiner, RefinementNeverLengthens) {
  SteinerOptions refined;
  refined.refine = true;
  SteinerOptions raw;
  raw.refine = false;
  Fixture f({{0, 0}, {100, 2}, {90, 2}, {95, 1}, {10, 1}, {50, 0}});
  const auto t_ref = build_steiner_tree(f.circuit, f.net, refined);
  const auto t_raw = build_steiner_tree(f.circuit, f.net, raw);
  EXPECT_LE(t_ref.length(refined.row_cost), t_raw.length(raw.row_cost));
  EXPECT_TRUE(tree_is_connected(t_ref));
}

TEST(Steiner, RefinementMergesSharedCorner) {
  // u=(0,0) with both MST neighbors up-right: v=(100,1), w=(1,3).
  // MST: (u,w)=31, (u,v)=110 → 141.  Corner s=(1,1) gives
  // d(u,s)=11, d(s,v)=99, d(s,w)=20 → 130.
  Fixture f({{0, 0}, {100, 1}, {1, 3}});
  SteinerOptions opt;
  opt.row_cost = 10;
  const auto tree = build_steiner_tree(f.circuit, f.net, opt);
  EXPECT_LE(tree.length(opt.row_cost), 130);
  EXPECT_TRUE(tree_is_connected(tree));
}

TEST(Steiner, SteinerNodesCarryInvalidPin) {
  Fixture f({{0, 0}, {100, 1}, {1, 3}});
  SteinerOptions opt;
  opt.row_cost = 10;
  const auto tree = build_steiner_tree(f.circuit, f.net, opt);
  bool has_steiner_point = false;
  for (const SteinerNode& node : tree.nodes) {
    if (!node.pin.valid()) has_steiner_point = true;
  }
  EXPECT_TRUE(has_steiner_point);
}

TEST(Steiner, BuildAllCoversEveryNet) {
  const Circuit c = small_test_circuit(3, 4, 20);
  const auto trees = build_all_steiner_trees(c);
  ASSERT_EQ(trees.size(), c.num_nets());
  for (std::size_t n = 0; n < trees.size(); ++n) {
    EXPECT_EQ(trees[n].net.index(), n);
    EXPECT_TRUE(tree_is_connected(trees[n]));
  }
}

TEST(Steiner, SubsetBuildsOnlyRequested) {
  const Circuit c = small_test_circuit(4, 3, 15);
  const std::vector<NetId> subset{NetId{0}, NetId{5}, NetId{2}};
  const auto trees = build_steiner_trees(c, subset);
  ASSERT_EQ(trees.size(), 3u);
  EXPECT_EQ(trees[0].net, NetId{0});
  EXPECT_EQ(trees[1].net, NetId{5});
  EXPECT_EQ(trees[2].net, NetId{2});
}

class SteinerPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SteinerPropertySweep, ConnectedAndNoLongerThanMst) {
  const Circuit c = small_test_circuit(GetParam(), 5, 25);
  SteinerOptions refined;
  SteinerOptions raw;
  raw.refine = false;
  for (std::size_t n = 0; n < c.num_nets(); ++n) {
    const NetId net{static_cast<std::uint32_t>(n)};
    const auto t = build_steiner_tree(c, net, refined);
    const auto m = build_steiner_tree(c, net, raw);
    ASSERT_TRUE(tree_is_connected(t)) << "net " << n;
    ASSERT_LE(t.length(refined.row_cost), m.length(raw.row_cost))
        << "net " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SteinerPropertySweep,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace ptwgr
