#include "ptwgr/route/router.h"

#include <gtest/gtest.h>

#include "ptwgr/circuit/suite.h"

namespace ptwgr {
namespace {

TEST(Router, EndToEndOnSmallCircuit) {
  const RoutingResult result = route_serial(small_test_circuit(1, 5, 25));
  EXPECT_GT(result.metrics.track_count, 0);
  EXPECT_GT(result.metrics.area, 0);
  EXPECT_GT(result.metrics.total_wirelength, 0);
  EXPECT_FALSE(result.wires.empty());
  EXPECT_EQ(result.metrics.channel_density.size(),
            result.circuit.num_channels());
  result.circuit.validate();
}

TEST(Router, RoutingIsStructurallyValid) {
  const RoutingResult result = route_serial(small_test_circuit(2, 6, 30));
  const auto violations = verify_routing(result.circuit, result.wires);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations; first: "
      << (violations.empty() ? "" : violations.front());
}

TEST(Router, DeterministicForSeed) {
  RouterOptions options;
  options.seed = 99;
  const RoutingResult a = route_serial(small_test_circuit(3, 5, 25), options);
  const RoutingResult b = route_serial(small_test_circuit(3, 5, 25), options);
  EXPECT_EQ(a.metrics.track_count, b.metrics.track_count);
  EXPECT_EQ(a.metrics.area, b.metrics.area);
  EXPECT_EQ(a.metrics.feedthrough_count, b.metrics.feedthrough_count);
  ASSERT_EQ(a.wires.size(), b.wires.size());
  for (std::size_t i = 0; i < a.wires.size(); ++i) {
    EXPECT_EQ(a.wires[i].channel, b.wires[i].channel);
    EXPECT_EQ(a.wires[i].lo, b.wires[i].lo);
  }
}

TEST(Router, SeedChangesRandomizedDecisions) {
  RouterOptions a_options;
  a_options.seed = 1;
  RouterOptions b_options;
  b_options.seed = 2;
  const RoutingResult a = route_serial(small_test_circuit(4, 6, 30), a_options);
  const RoutingResult b = route_serial(small_test_circuit(4, 6, 30), b_options);
  // Same circuit, different random orders: results should be close but are
  // allowed to differ; quality stays within a few percent.
  const double ratio = static_cast<double>(a.metrics.track_count) /
                       static_cast<double>(b.metrics.track_count);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

TEST(Router, FeedthroughsInsertedForMultiRowNets) {
  const RoutingResult result = route_serial(small_test_circuit(5, 6, 30));
  EXPECT_GT(result.metrics.feedthrough_count, 0u);
  EXPECT_GT(result.circuit.num_pins(),
            small_test_circuit(5, 6, 30).num_pins());
}

TEST(Router, SingleRowCircuitNeedsNoFeedthroughs) {
  GeneratorConfig cfg;
  cfg.seed = 6;
  cfg.num_rows = 1;
  cfg.num_cells = 60;
  cfg.num_nets = 70;
  cfg.row_spread = 0.0;
  const RoutingResult result = route_serial(generate_circuit(cfg));
  EXPECT_EQ(result.metrics.feedthrough_count, 0u);
  EXPECT_GT(result.metrics.track_count, 0);
  // Only two channels exist.
  EXPECT_EQ(result.metrics.channel_density.size(), 2u);
}

TEST(Router, TimingsPopulated) {
  const RoutingResult result = route_serial(small_test_circuit(7, 5, 25));
  EXPECT_GE(result.timings.steiner, 0.0);
  EXPECT_GT(result.timings.total(), 0.0);
}

TEST(Router, MorePassesDoNotWorsenQualityMuch) {
  RouterOptions quick;
  quick.seed = 11;
  quick.coarse_passes = 1;
  quick.switchable_passes = 1;
  RouterOptions thorough;
  thorough.seed = 11;
  thorough.coarse_passes = 4;
  thorough.switchable_passes = 4;
  const auto circuit = [] { return small_test_circuit(8, 6, 35); };
  const RoutingResult q = route_serial(circuit(), quick);
  const RoutingResult t = route_serial(circuit(), thorough);
  EXPECT_LE(static_cast<double>(t.metrics.track_count),
            static_cast<double>(q.metrics.track_count) * 1.05);
}

TEST(Router, SwitchableOptimizationImprovesTracks) {
  RouterOptions without;
  without.seed = 12;
  without.switchable_passes = 0;
  RouterOptions with;
  with.seed = 12;
  with.switchable_passes = 3;
  const auto circuit = [] { return small_test_circuit(9, 6, 35); };
  const RoutingResult a = route_serial(circuit(), without);
  const RoutingResult b = route_serial(circuit(), with);
  EXPECT_LT(b.metrics.track_count, a.metrics.track_count);
}

class RouterPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouterPropertySweep, AlwaysValidAndConnected) {
  RouterOptions options;
  options.seed = GetParam();
  const RoutingResult result =
      route_serial(small_test_circuit(GetParam(), 4, 20), options);
  result.circuit.validate();
  const auto violations = verify_routing(result.circuit, result.wires);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());
  // Channel densities must be consistent with the track count.
  std::int64_t sum = 0;
  for (const auto d : result.metrics.channel_density) sum += d;
  EXPECT_EQ(sum, result.metrics.track_count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterPropertySweep,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(Router, HandlesSuiteCircuitAtTinyScale) {
  const auto entry = suite_entry("primary2", 0.05);
  const RoutingResult result = route_serial(build_suite_circuit(entry));
  EXPECT_GT(result.metrics.track_count, 0);
  const auto violations = verify_routing(result.circuit, result.wires);
  EXPECT_TRUE(violations.empty());
}

}  // namespace
}  // namespace ptwgr
