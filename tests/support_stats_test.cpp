#include "ptwgr/support/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ptwgr/support/check.h"

namespace ptwgr {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);

  RunningStats target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 1.5);
}

TEST(RunningStats, CvZeroWhenMeanZero) {
  RunningStats s;
  s.add(-1.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(Histogram, BucketsByUpperBound) {
  Histogram h({2, 5, 10});
  h.add(0);
  h.add(2);   // <= 2
  h.add(3);   // <= 5
  h.add(10);  // <= 10
  h.add(11);  // overflow
  EXPECT_EQ(h.bucket_value(0), 2u);
  EXPECT_EQ(h.bucket_value(1), 1u);
  EXPECT_EQ(h.bucket_value(2), 1u);
  EXPECT_EQ(h.bucket_value(3), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({5, 2}), CheckError);
  EXPECT_THROW(Histogram({2, 2}), CheckError);
  EXPECT_THROW(Histogram({}), CheckError);
}

TEST(Histogram, RendersBars) {
  Histogram h({1, 2});
  h.add(0);
  h.add(0);
  h.add(2);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("<= 1"), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(LoadImbalance, PerfectBalanceIsOne) {
  EXPECT_DOUBLE_EQ(load_imbalance({5.0, 5.0, 5.0, 5.0}), 1.0);
}

TEST(LoadImbalance, SkewDetected) {
  EXPECT_DOUBLE_EQ(load_imbalance({9.0, 1.0, 1.0, 1.0}), 3.0);
}

TEST(LoadImbalance, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(load_imbalance({}), 0.0);
  EXPECT_DOUBLE_EQ(load_imbalance({0.0, 0.0}), 0.0);
}

}  // namespace
}  // namespace ptwgr
