#include "ptwgr/circuit/circuit_stats.h"

#include <gtest/gtest.h>

#include "ptwgr/circuit/builder.h"

namespace ptwgr {
namespace {

TEST(CircuitStats, CountsBasicQuantities) {
  CircuitBuilder b;
  const RowId r0 = b.add_row();
  const RowId r1 = b.add_row();
  const CellId c0 = b.add_cell(r0, 10);
  const CellId c1 = b.add_cell(r1, 20);
  const NetId n0 = b.add_net();
  const NetId n1 = b.add_net();
  b.add_pin(c0, n0, 0, PinSide::Top);
  b.add_pin(c1, n0, 0, PinSide::Top);
  b.add_pin(c0, n1, 1, PinSide::Both);
  b.add_pin(c1, n1, 2, PinSide::Both);
  b.add_pin(c1, n1, 3, PinSide::Both);
  const Circuit circuit = std::move(b).build();

  const CircuitStats stats = compute_stats(circuit);
  EXPECT_EQ(stats.rows, 2u);
  EXPECT_EQ(stats.cells, 2u);
  EXPECT_EQ(stats.pins, 5u);
  EXPECT_EQ(stats.nets, 2u);
  EXPECT_EQ(stats.max_pins_on_net, 3u);
  EXPECT_DOUBLE_EQ(stats.mean_pins_per_net, 2.5);
  EXPECT_DOUBLE_EQ(stats.fraction_nets_small, 1.0);
  EXPECT_EQ(stats.core_width, 20);
}

TEST(CircuitStats, SmallNetFractionWithGiant) {
  CircuitBuilder b;
  const RowId row = b.add_row();
  const CellId cell = b.add_cell(row, 100);
  const NetId small = b.add_net();
  b.add_pin(cell, small, 0, PinSide::Top);
  b.add_pin(cell, small, 1, PinSide::Top);
  const NetId giant = b.add_net();
  for (Coord i = 0; i < 10; ++i) b.add_pin(cell, giant, i, PinSide::Top);
  const Circuit circuit = std::move(b).build();

  const CircuitStats stats = compute_stats(circuit);
  EXPECT_EQ(stats.max_pins_on_net, 10u);
  EXPECT_DOUBLE_EQ(stats.fraction_nets_small, 0.5);
}

TEST(CircuitStats, EmptyCircuit) {
  const CircuitStats stats = compute_stats(Circuit{});
  EXPECT_EQ(stats.rows, 0u);
  EXPECT_EQ(stats.nets, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_pins_per_net, 0.0);
}

TEST(CircuitStats, ToStringMentionsCounts) {
  CircuitBuilder b;
  const RowId row = b.add_row();
  b.add_cell(row, 8);
  const Circuit circuit = std::move(b).build();
  const std::string s = compute_stats(circuit).to_string();
  EXPECT_NE(s.find("1 rows"), std::string::npos);
  EXPECT_NE(s.find("1 cells"), std::string::npos);
}

}  // namespace
}  // namespace ptwgr
