// Stress and robustness tests of the message-passing runtime: message
// storms, mixed p2p/collective traffic, and repeated world lifecycles.
#include <gtest/gtest.h>

#include <numeric>

#include "ptwgr/mp/runtime.h"
#include "ptwgr/support/rng.h"

namespace ptwgr::mp {
namespace {

TEST(MpStress, ManySmallMessagesAllDelivered) {
  constexpr int kMessages = 500;
  run(4, [](Communicator& comm) {
    // Everyone sends kMessages tagged values to everyone (including self).
    for (int dest = 0; dest < comm.size(); ++dest) {
      for (std::int32_t i = 0; i < kMessages; ++i) {
        comm.send_value(dest, /*tag=*/dest, comm.rank() * 100000 + i);
      }
    }
    // Receive per source in order (non-overtaking per source+tag).
    for (int src = 0; src < comm.size(); ++src) {
      for (std::int32_t i = 0; i < kMessages; ++i) {
        EXPECT_EQ(comm.recv_value<std::int32_t>(src, comm.rank()),
                  src * 100000 + i);
      }
    }
  });
}

TEST(MpStress, RandomizedTrafficPatternDrains) {
  // Deterministic pseudo-random sends; every rank knows exactly what to
  // expect from every peer because all derive the same plan.
  constexpr int kRanks = 5;
  constexpr int kRounds = 200;
  run(kRanks, [](Communicator& comm) {
    // plan[src][dst] = values src sends dst, in order.
    std::vector<std::vector<std::vector<std::int64_t>>> plan(
        kRanks, std::vector<std::vector<std::int64_t>>(kRanks));
    Rng rng(2024);
    for (int round = 0; round < kRounds; ++round) {
      const auto src = static_cast<int>(rng.next_index(kRanks));
      const auto dst = static_cast<int>(rng.next_index(kRanks));
      plan[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)]
          .push_back(rng.next_int(-1000, 1000));
    }
    // Send my part.
    for (int dst = 0; dst < kRanks; ++dst) {
      for (const std::int64_t v :
           plan[static_cast<std::size_t>(comm.rank())]
               [static_cast<std::size_t>(dst)]) {
        comm.send_value(dst, 7, v);
      }
    }
    // Receive everyone's part to me, per-source ordered.
    for (int src = 0; src < kRanks; ++src) {
      for (const std::int64_t expected :
           plan[static_cast<std::size_t>(src)]
               [static_cast<std::size_t>(comm.rank())]) {
        EXPECT_EQ(comm.recv_value<std::int64_t>(src, 7), expected);
      }
    }
    comm.barrier();
  });
}

TEST(MpStress, CollectivesUnderPointToPointBackground) {
  run(4, [](Communicator& comm) {
    // Queue up unconsumed p2p messages, then run collectives — the
    // rendezvous must not confuse mailbox traffic with collective state.
    for (int dest = 0; dest < comm.size(); ++dest) {
      comm.send_value(dest, 99, comm.rank());
    }
    for (int i = 0; i < 20; ++i) {
      const auto sum = comm.allreduce_value(std::int64_t{1}, SumOp{});
      EXPECT_EQ(sum, 4);
    }
    for (int src = 0; src < comm.size(); ++src) {
      EXPECT_EQ(comm.recv_value<int>(src, 99), src);
    }
  });
}

TEST(MpStress, RepeatedWorldLifecycles) {
  for (int i = 0; i < 50; ++i) {
    const RunReport report = run(3, [](Communicator& comm) {
      comm.barrier();
      comm.allgather(comm.rank());
    });
    EXPECT_EQ(report.rank_vtime.size(), 3u);
  }
}

TEST(MpStress, AlternatingCollectiveKinds) {
  run(8, [](Communicator& comm) {
    Rng rng(55);  // same stream on every rank → same sequence of kinds
    std::int64_t checksum = 0;
    for (int i = 0; i < 60; ++i) {
      switch (rng.next_index(4)) {
        case 0:
          comm.barrier();
          break;
        case 1:
          checksum += comm.allreduce_value<std::int64_t>(1, SumOp{});
          break;
        case 2: {
          const auto all = comm.allgather(comm.rank());
          checksum += all[3];
          break;
        }
        case 3: {
          const auto v =
              comm.broadcast_value<std::int64_t>(0, comm.rank() == 0 ? 5 : 0);
          checksum += v;
          break;
        }
      }
    }
    // Every rank must derive the identical checksum.
    const auto min = comm.allreduce_value(checksum, MinOp{});
    const auto max = comm.allreduce_value(checksum, MaxOp{});
    EXPECT_EQ(min, max);
  });
}

TEST(MpStress, GatherLargeVariablePayloads) {
  run(6, [](Communicator& comm) {
    std::vector<std::int32_t> mine(
        static_cast<std::size_t>(comm.rank()) * 1000 + 1,
        comm.rank());
    const auto all = comm.gather_vectors(2, mine);
    if (comm.rank() == 2) {
      for (int r = 0; r < 6; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)].size(),
                  static_cast<std::size_t>(r) * 1000 + 1);
      }
    }
  });
}

TEST(MpStress, AllToAllRepeatedHeavy) {
  run(4, [](Communicator& comm) {
    for (int round = 0; round < 10; ++round) {
      std::vector<std::vector<std::int64_t>> outgoing(4);
      for (int d = 0; d < 4; ++d) {
        outgoing[static_cast<std::size_t>(d)].assign(
            2000, comm.rank() * 10 + d + round);
      }
      const auto incoming = comm.all_to_all(outgoing);
      for (int s = 0; s < 4; ++s) {
        ASSERT_EQ(incoming[static_cast<std::size_t>(s)].size(), 2000u);
        EXPECT_EQ(incoming[static_cast<std::size_t>(s)][0],
                  s * 10 + comm.rank() + round);
      }
    }
  });
}

TEST(MpStress, VtimeNondecreasingThroughStorm) {
  const CostModel model = CostModel::sparc_center_smp();
  run(4, model, [](Communicator& comm) {
    double last = 0.0;
    for (int i = 0; i < 30; ++i) {
      if (comm.rank() == 0) {
        for (int d = 1; d < 4; ++d) comm.send_value(d, 0, i);
      } else {
        comm.recv(0, 0);
      }
      comm.barrier();
      const double now = comm.vtime();
      EXPECT_GE(now, last);
      last = now;
    }
  });
}

// --- abort propagation ---------------------------------------------------
//
// When any rank throws, every other rank — whatever it is blocked in —
// must unblock with WorldAborted, and run() must rethrow the original
// failure.  One test per blocking shape; none may hang.

/// Rank 3 throws immediately; ranks 0–2 enter `blocked_op` and must be
/// released by the abort.  run() rethrows the injected error.
template <typename BlockedOp>
void expect_abort_unblocks(BlockedOp blocked_op) {
  try {
    run(4, [&](Communicator& comm) {
      if (comm.rank() == 3) throw std::runtime_error("injected failure");
      blocked_op(comm);
    });
    FAIL() << "expected the injected failure to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "injected failure");
  }
}

TEST(MpAbort, UnblocksBarrier) {
  expect_abort_unblocks([](Communicator& comm) { comm.barrier(); });
}

TEST(MpAbort, UnblocksAllreduce) {
  expect_abort_unblocks([](Communicator& comm) {
    comm.allreduce_value(std::int64_t{1}, SumOp{});
  });
}

TEST(MpAbort, UnblocksAllgather) {
  expect_abort_unblocks([](Communicator& comm) { comm.allgather(comm.rank()); });
}

TEST(MpAbort, UnblocksAllgatherVectors) {
  expect_abort_unblocks([](Communicator& comm) {
    std::vector<std::int32_t> mine(100, comm.rank());
    comm.allgather_vectors(mine);
  });
}

TEST(MpAbort, UnblocksGatherVectors) {
  expect_abort_unblocks([](Communicator& comm) {
    std::vector<std::int32_t> mine(100, comm.rank());
    comm.gather_vectors(0, mine);
  });
}

TEST(MpAbort, UnblocksBroadcast) {
  // Root is the failing rank, so nobody ever supplies the value.
  expect_abort_unblocks([](Communicator& comm) {
    comm.broadcast_value<std::int64_t>(3, 0);
  });
}

TEST(MpAbort, UnblocksAllToAll) {
  expect_abort_unblocks([](Communicator& comm) {
    std::vector<std::vector<std::int64_t>> outgoing(4);
    for (auto& v : outgoing) v.assign(10, comm.rank());
    comm.all_to_all(outgoing);
  });
}

TEST(MpAbort, UnblocksRecvFromSpecificSource) {
  // The failing rank is the only one that would ever send.
  expect_abort_unblocks([](Communicator& comm) { comm.recv(3, 5); });
}

TEST(MpAbort, UnblocksRecvFromAnySource) {
  expect_abort_unblocks(
      [](Communicator& comm) { comm.recv(kAnySource, kAnyTag); });
}

TEST(MpAbort, UnblocksMixedShapes) {
  // Different ranks stuck in different primitives at abort time.
  expect_abort_unblocks([](Communicator& comm) {
    switch (comm.rank()) {
      case 0: comm.barrier(); break;
      case 1: comm.recv(3, 9); break;
      default: comm.allreduce_value(std::int64_t{1}, SumOp{}); break;
    }
  });
}

TEST(MpAbort, WorldIsReusableAfterAbort) {
  // An aborted world must not poison the next one.
  expect_abort_unblocks([](Communicator& comm) { comm.barrier(); });
  const RunReport report = run(4, [](Communicator& comm) { comm.barrier(); });
  EXPECT_EQ(report.rank_vtime.size(), 4u);
}

}  // namespace
}  // namespace ptwgr::mp
