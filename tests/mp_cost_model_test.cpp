#include "ptwgr/mp/cost_model.h"

#include <gtest/gtest.h>

namespace ptwgr::mp {
namespace {

TEST(CostModel, IdealIsFree) {
  const CostModel m = CostModel::ideal();
  EXPECT_DOUBLE_EQ(m.message_cost(0), 0.0);
  EXPECT_DOUBLE_EQ(m.message_cost(1 << 20), 0.0);
  EXPECT_DOUBLE_EQ(m.collective_cost(16, 4096), 0.0);
  EXPECT_DOUBLE_EQ(m.compute_scale, 1.0);
}

TEST(CostModel, MessageCostIsAffine) {
  CostModel m;
  m.latency_s = 1e-4;
  m.per_byte_s = 1e-8;
  EXPECT_DOUBLE_EQ(m.message_cost(0), 1e-4);
  EXPECT_DOUBLE_EQ(m.message_cost(100), 1e-4 + 1e-6);
  // Strictly increasing in payload.
  EXPECT_GT(m.message_cost(1000), m.message_cost(100));
}

TEST(CostModel, CollectiveUsesLogRounds) {
  CostModel m;
  m.latency_s = 1.0;
  EXPECT_DOUBLE_EQ(m.collective_cost(1, 0), 0.0);  // nothing to synchronize
  EXPECT_DOUBLE_EQ(m.collective_cost(2, 0), 1.0);  // 1 round
  EXPECT_DOUBLE_EQ(m.collective_cost(4, 0), 2.0);  // 2 rounds
  EXPECT_DOUBLE_EQ(m.collective_cost(8, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.collective_cost(5, 0), 3.0);  // ⌈log₂5⌉
}

TEST(CostModel, PlatformPresetsAreOrdered) {
  const CostModel smp = CostModel::sparc_center_smp();
  const CostModel dmp = CostModel::paragon_dmp();
  // The Paragon's per-message latency dominates; its bandwidth is higher.
  EXPECT_GT(dmp.latency_s, smp.latency_s);
  EXPECT_LT(dmp.per_byte_s, smp.per_byte_s);
  // Both model period hardware: compute well below modern speed.
  EXPECT_GT(smp.compute_scale, 1.0);
  EXPECT_GT(dmp.compute_scale, 1.0);
  EXPECT_FALSE(smp.name.empty());
  EXPECT_FALSE(dmp.name.empty());
}

TEST(CostModel, SmallMessagesFavorSmp_LargeFavorParagonBandwidth) {
  const CostModel smp = CostModel::sparc_center_smp();
  const CostModel dmp = CostModel::paragon_dmp();
  // Latency-bound: SMP wins.
  EXPECT_LT(smp.message_cost(64), dmp.message_cost(64));
  // Bandwidth-bound: the Paragon's faster links eventually win.
  EXPECT_GT(smp.message_cost(4 << 20), dmp.message_cost(4 << 20));
}

}  // namespace
}  // namespace ptwgr::mp
