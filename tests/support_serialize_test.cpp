#include "ptwgr/support/serialize.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace ptwgr {
namespace {

TEST(Serialize, ScalarRoundTrip) {
  Writer w;
  w.put(std::int32_t{-7});
  w.put(std::uint64_t{123456789012345ULL});
  w.put(3.25);
  w.put(char{'x'});
  const auto bytes = std::move(w).take();

  Reader r(bytes);
  EXPECT_EQ(r.get<std::int32_t>(), -7);
  EXPECT_EQ(r.get<std::uint64_t>(), 123456789012345ULL);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.25);
  EXPECT_EQ(r.get<char>(), 'x');
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, StringRoundTrip) {
  Writer w;
  w.put(std::string{"hello world"});
  w.put(std::string{});
  w.put(std::string{"\0binary\0data", 12});
  const auto bytes = std::move(w).take();

  Reader r(bytes);
  EXPECT_EQ(r.get_string(), "hello world");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_string(), std::string("\0binary\0data", 12));
}

TEST(Serialize, TrivialVectorRoundTrip) {
  Writer w;
  w.put(std::vector<std::int32_t>{1, -2, 3});
  w.put(std::vector<double>{});
  const auto bytes = std::move(w).take();

  Reader r(bytes);
  EXPECT_EQ(r.get_vector<std::int32_t>(),
            (std::vector<std::int32_t>{1, -2, 3}));
  EXPECT_TRUE(r.get_vector<double>().empty());
}

TEST(Serialize, NestedVectorViaElementwise) {
  Writer w;
  const std::vector<std::vector<std::int16_t>> nested{{1, 2}, {}, {3}};
  w.put(nested);
  const auto bytes = std::move(w).take();

  Reader r(bytes);
  const auto out = r.get_vector_with<std::vector<std::int16_t>>(
      [](Reader& rr) { return rr.get_vector<std::int16_t>(); });
  EXPECT_EQ(out, nested);
}

TEST(Serialize, StructRoundTrip) {
  struct Pod {
    std::int32_t a;
    double b;
    bool operator==(const Pod&) const = default;
  };
  Writer w;
  w.put(Pod{9, -1.5});
  w.put(std::vector<Pod>{{1, 2.0}, {3, 4.0}});
  const auto bytes = std::move(w).take();

  Reader r(bytes);
  EXPECT_EQ(r.get<Pod>(), (Pod{9, -1.5}));
  EXPECT_EQ(r.get_vector<Pod>(), (std::vector<Pod>{{1, 2.0}, {3, 4.0}}));
}

TEST(Serialize, PairRoundTrip) {
  Writer w;
  w.put(std::pair<std::int32_t, std::string>{5, "five"});
  const auto bytes = std::move(w).take();
  Reader r(bytes);
  EXPECT_EQ(r.get<std::int32_t>(), 5);
  EXPECT_EQ(r.get_string(), "five");
}

TEST(Serialize, TruncatedPayloadThrows) {
  Writer w;
  w.put(std::int64_t{42});
  auto bytes = std::move(w).take();
  bytes.resize(4);
  Reader r(bytes);
  EXPECT_THROW(r.get<std::int64_t>(), SerializeError);
}

TEST(Serialize, OversizedLengthPrefixThrows) {
  Writer w;
  w.put(std::uint64_t{1000});  // claims a 1000-element payload
  const auto bytes = std::move(w).take();
  Reader r(bytes);
  EXPECT_THROW(r.get_vector<std::int32_t>(), SerializeError);
}

TEST(Serialize, EmptyBufferExhausted) {
  const std::vector<std::byte> empty;
  Reader r(empty);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_THROW(r.get<char>(), SerializeError);
}

TEST(Serialize, RemainingDecreases) {
  Writer w;
  w.put(std::int32_t{1});
  w.put(std::int32_t{2});
  const auto bytes = std::move(w).take();
  Reader r(bytes);
  EXPECT_EQ(r.remaining(), 8u);
  r.get<std::int32_t>();
  EXPECT_EQ(r.remaining(), 4u);
}

}  // namespace
}  // namespace ptwgr
