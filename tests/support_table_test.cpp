#include "ptwgr/support/table.h"

#include <gtest/gtest.h>

namespace ptwgr {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t("Demo");
  t.add_row({"circuit", "tracks", "speedup"});
  t.add_row({"primary2", "672", "1.00"});
  t.add_row({"avq.large", "16877", "4.03"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("circuit"), std::string::npos);
  EXPECT_NE(s.find("avq.large"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
  // Every line in one table body has equal length (alignment check).
  std::size_t prev = std::string::npos;
  std::size_t start = s.find('\n') + 1;  // skip title
  for (std::size_t pos = start; pos < s.size();) {
    const std::size_t end = s.find('\n', pos);
    if (end == std::string::npos) break;
    const std::size_t len = end - pos;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    pos = end + 1;
  }
}

TEST(TextTable, HandlesRaggedRows) {
  TextTable t;
  t.add_row({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(TextTable, EmptyTable) {
  TextTable t("title only");
  EXPECT_EQ(t.to_string(), "title only\n");
}

TEST(FormatFixed, Rounds) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.5, 0), "2");  // banker's-free snprintf rounding
  EXPECT_EQ(format_fixed(-1.005, 1), "-1.0");
  EXPECT_EQ(format_fixed(0.0, 3), "0.000");
}

TEST(FormatGrouped, InsertsSeparators) {
  EXPECT_EQ(format_grouped(0), "0");
  EXPECT_EQ(format_grouped(999), "999");
  EXPECT_EQ(format_grouped(1000), "1,000");
  EXPECT_EQ(format_grouped(1234567), "1,234,567");
  EXPECT_EQ(format_grouped(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace ptwgr
