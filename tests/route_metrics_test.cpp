#include "ptwgr/route/metrics.h"

#include <gtest/gtest.h>

#include "ptwgr/circuit/builder.h"
#include "ptwgr/circuit/suite.h"
#include "ptwgr/parallel/common.h"
#include "ptwgr/route/connect.h"
#include "ptwgr/support/interval.h"

namespace ptwgr {
namespace {

Wire make_wire(std::uint32_t net, std::uint32_t channel, Coord lo, Coord hi) {
  Wire w;
  w.net = NetId{net};
  w.channel = channel;
  w.lo = lo;
  w.hi = hi;
  w.row = channel;
  return w;
}

Circuit two_row_circuit() {
  CircuitBuilder b;
  const RowId r0 = b.add_row(10);
  const RowId r1 = b.add_row(10);
  b.add_cell(r0, 100);
  b.add_cell(r1, 100);
  return std::move(b).build();
}

TEST(Metrics, EmptyRoutingHasZeroTracks) {
  const Circuit c = two_row_circuit();
  const RoutingMetrics m = compute_metrics(c, {});
  EXPECT_EQ(m.track_count, 0);
  EXPECT_EQ(m.total_wirelength, 0);
  // Area is rows-only.
  EXPECT_EQ(m.area, 100 * 20);
  EXPECT_EQ(m.channel_density.size(), 3u);
}

TEST(Metrics, DistinctNetsStack) {
  const Circuit c = two_row_circuit();
  const std::vector<Wire> wires{make_wire(0, 1, 0, 50),
                                make_wire(1, 1, 10, 60),
                                make_wire(2, 1, 20, 70)};
  const RoutingMetrics m = compute_metrics(c, wires);
  EXPECT_EQ(m.channel_density[1], 3);
  EXPECT_EQ(m.track_count, 3);
}

TEST(Metrics, SameNetWiresMergeIntoOneTrack) {
  const Circuit c = two_row_circuit();
  // Three overlapping/touching wires of ONE net: a single track.
  const std::vector<Wire> wires{make_wire(7, 1, 0, 30),
                                make_wire(7, 1, 30, 60),
                                make_wire(7, 1, 20, 40)};
  const RoutingMetrics m = compute_metrics(c, wires);
  EXPECT_EQ(m.channel_density[1], 1);
}

TEST(Metrics, SameNetDisjointSpansStillOneEach) {
  const Circuit c = two_row_circuit();
  // Disjoint spans of one net merge to two intervals, but they never cover
  // the same x, so density stays 1.
  const std::vector<Wire> wires{make_wire(7, 1, 0, 10),
                                make_wire(7, 1, 50, 60)};
  const RoutingMetrics m = compute_metrics(c, wires);
  EXPECT_EQ(m.channel_density[1], 1);
}

TEST(Metrics, MixedNetsMergePerNetBeforeSweep) {
  const Circuit c = two_row_circuit();
  const std::vector<Wire> wires{
      make_wire(1, 0, 0, 40),  make_wire(1, 0, 40, 80),  // net 1: one track
      make_wire(2, 0, 20, 60),                           // net 2
      make_wire(3, 0, 30, 50),                           // net 3
  };
  const RoutingMetrics m = compute_metrics(c, wires);
  EXPECT_EQ(m.channel_density[0], 3);
}

TEST(Metrics, AreaGrowsWithTracksAndWidth) {
  Circuit c = two_row_circuit();
  const RoutingMetrics none = compute_metrics(c, {});
  const std::vector<Wire> wires{make_wire(0, 1, 0, 50)};
  const RoutingMetrics one = compute_metrics(c, wires);
  EXPECT_EQ(one.area - none.area, 100 * kTrackPitch);
}

TEST(Metrics, RecordsPathMatchesCircuitPath) {
  // metrics_from_records (the parallel gather path) must agree with
  // compute_metrics for identical wires.
  const Circuit c = small_test_circuit(31, 5, 25);
  const auto wires = connect_all_nets(c);
  const RoutingMetrics direct = compute_metrics(c, wires);

  std::vector<WireRecord> records;
  for (const Wire& wire : wires) records.push_back(to_record(wire));
  Coord rows_height = 0;
  for (const Row& row : c.rows()) rows_height += row.height;
  const RoutingMetrics via_records = metrics_from_records(
      c.num_channels(), c.core_width(), rows_height,
      c.num_feedthrough_cells(), records);

  EXPECT_EQ(direct.track_count, via_records.track_count);
  EXPECT_EQ(direct.area, via_records.area);
  EXPECT_EQ(direct.total_wirelength, via_records.total_wirelength);
  EXPECT_EQ(direct.channel_density, via_records.channel_density);
}

TEST(Metrics, RejectsOutOfRangeChannel) {
  const Circuit c = two_row_circuit();
  const std::vector<Wire> wires{make_wire(0, 9, 0, 10)};
  EXPECT_THROW(compute_metrics(c, wires), CheckError);
}

TEST(MergeIntervals, Basics) {
  EXPECT_TRUE(merge_intervals({}).empty());
  const auto single = merge_intervals({{3, 8}});
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], (Interval{3, 8}));
}

TEST(MergeIntervals, TouchingIntervalsMerge) {
  const auto merged = merge_intervals({{0, 5}, {5, 10}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], (Interval{0, 10}));
}

TEST(MergeIntervals, DisjointStay) {
  const auto merged = merge_intervals({{0, 5}, {7, 10}});
  EXPECT_EQ(merged.size(), 2u);
}

TEST(MergeIntervals, NestedAbsorbed) {
  const auto merged = merge_intervals({{0, 100}, {10, 20}, {90, 95}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], (Interval{0, 100}));
}

TEST(MergeIntervals, DegenerateWidened) {
  const auto merged = merge_intervals({{5, 5}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], (Interval{5, 6}));
}

TEST(MergeIntervals, UnsortedInput) {
  const auto merged = merge_intervals({{50, 60}, {0, 10}, {8, 52}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], (Interval{0, 60}));
}

TEST(VerifyRouting, DetectsDisconnectedNet) {
  CircuitBuilder b;
  const RowId r0 = b.add_row();
  const CellId c0 = b.add_cell(r0, 10);
  const CellId c1 = b.add_cell(r0, 10);
  const NetId n = b.add_net();
  b.add_pin(c0, n, 0, PinSide::Both);
  b.add_pin(c1, n, 0, PinSide::Both);
  const Circuit c = std::move(b).build();

  // No wires at all: the two-pin net is disconnected.
  const auto violations = verify_routing(c, {});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("net 0"), std::string::npos);
}

TEST(VerifyRouting, AcceptsCorrectWire) {
  CircuitBuilder b;
  const RowId r0 = b.add_row();
  const CellId c0 = b.add_cell(r0, 10);
  const CellId c1 = b.add_cell(r0, 10);
  const NetId n = b.add_net();
  b.add_pin(c0, n, 0, PinSide::Both);
  b.add_pin(c1, n, 0, PinSide::Both);
  const Circuit c = std::move(b).build();

  const std::vector<Wire> wires{make_wire(0, 0, 0, 10)};
  EXPECT_TRUE(verify_routing(c, wires).empty());
}

TEST(VerifyRouting, WireMustCoverPinPosition) {
  CircuitBuilder b;
  const RowId r0 = b.add_row();
  const CellId c0 = b.add_cell(r0, 10);
  const CellId c1 = b.add_cell(r0, 50);
  const NetId n = b.add_net();
  b.add_pin(c0, n, 0, PinSide::Both);
  b.add_pin(c1, n, 45, PinSide::Both);  // absolute x = 55
  const Circuit c = std::move(b).build();

  // Wire stops short of the second pin.
  const std::vector<Wire> wires{make_wire(0, 0, 0, 20)};
  EXPECT_FALSE(verify_routing(c, wires).empty());
}

TEST(VerifyRouting, FlagsMalformedWires) {
  const Circuit c = two_row_circuit();
  std::vector<Wire> wires{make_wire(0, 5, 0, 10)};  // channel out of range
  EXPECT_FALSE(verify_routing(c, wires).empty());
  wires = {make_wire(0, 0, 10, 0)};  // inverted span
  EXPECT_FALSE(verify_routing(c, wires).empty());
}

}  // namespace
}  // namespace ptwgr
