#include "ptwgr/route/connect.h"

#include <gtest/gtest.h>

#include "ptwgr/circuit/builder.h"
#include "ptwgr/circuit/suite.h"
#include "ptwgr/route/coarse.h"
#include "ptwgr/route/feedthrough.h"
#include "ptwgr/route/metrics.h"
#include "ptwgr/support/rng.h"

namespace ptwgr {
namespace {

/// Circuit with fake pins at explicit positions (side Both unless a cell pin
/// is added explicitly).
Circuit rows_only(std::uint32_t rows) {
  CircuitBuilder b;
  for (std::uint32_t r = 0; r < rows; ++r) b.add_row();
  return std::move(b).build();
}

TEST(Connect, TwoPinSameRowProducesOneSwitchableWire) {
  Circuit c = rows_only(2);
  const NetId net = c.add_net();
  c.add_fake_pin(net, RowId{0}, 10);
  c.add_fake_pin(net, RowId{0}, 60);
  std::vector<Wire> wires;
  connect_net(c, net, {}, wires);
  ASSERT_EQ(wires.size(), 1u);
  EXPECT_EQ(wires[0].lo, 10);
  EXPECT_EQ(wires[0].hi, 60);
  EXPECT_TRUE(wires[0].switchable);  // both fake ⇒ either channel
  EXPECT_EQ(wires[0].row, 0u);
}

TEST(Connect, AdjacentRowsUseSharedChannel) {
  Circuit c = rows_only(3);
  const NetId net = c.add_net();
  c.add_fake_pin(net, RowId{1}, 10);
  c.add_fake_pin(net, RowId{2}, 40);
  std::vector<Wire> wires;
  connect_net(c, net, {}, wires);
  ASSERT_EQ(wires.size(), 1u);
  EXPECT_EQ(wires[0].channel, 2u);  // between rows 1 and 2
  EXPECT_FALSE(wires[0].switchable);
}

TEST(Connect, PinSidesForceChannel) {
  CircuitBuilder b;
  const RowId row = b.add_row();
  const CellId c0 = b.add_cell(row, 10);
  const CellId c1 = b.add_cell(row, 10);
  const NetId net = b.add_net();
  b.add_pin(c0, net, 0, PinSide::Top);
  b.add_pin(c1, net, 0, PinSide::Top);
  Circuit c = std::move(b).build();

  const auto wires = connect_all_nets(c);
  ASSERT_EQ(wires.size(), 1u);
  EXPECT_EQ(wires[0].channel, 1u);  // above row 0
  EXPECT_FALSE(wires[0].switchable);
}

TEST(Connect, BottomPinsForceLowerChannel) {
  CircuitBuilder b;
  const RowId row = b.add_row();
  const CellId c0 = b.add_cell(row, 10);
  const CellId c1 = b.add_cell(row, 10);
  const NetId net = b.add_net();
  b.add_pin(c0, net, 0, PinSide::Bottom);
  b.add_pin(c1, net, 0, PinSide::Bottom);
  Circuit c = std::move(b).build();

  const auto wires = connect_all_nets(c);
  ASSERT_EQ(wires.size(), 1u);
  EXPECT_EQ(wires[0].channel, 0u);
  EXPECT_FALSE(wires[0].switchable);
}

TEST(Connect, ConflictingSidesFallBackToSwitchable) {
  CircuitBuilder b;
  const RowId row = b.add_row();
  const CellId c0 = b.add_cell(row, 10);
  const CellId c1 = b.add_cell(row, 10);
  const NetId net = b.add_net();
  b.add_pin(c0, net, 0, PinSide::Top);
  b.add_pin(c1, net, 0, PinSide::Bottom);
  Circuit c = std::move(b).build();

  const auto wires = connect_all_nets(c);
  ASSERT_EQ(wires.size(), 1u);
  EXPECT_TRUE(wires[0].switchable);
}

TEST(Connect, EquivalentPinsMakeSwitchable) {
  CircuitBuilder b;
  const RowId row = b.add_row();
  const CellId c0 = b.add_cell(row, 10);
  const CellId c1 = b.add_cell(row, 10);
  const NetId net = b.add_net();
  b.add_pin(c0, net, 0, PinSide::Both);
  b.add_pin(c1, net, 0, PinSide::Both);
  Circuit c = std::move(b).build();

  const auto wires = connect_all_nets(c);
  ASSERT_EQ(wires.size(), 1u);
  EXPECT_TRUE(wires[0].switchable);
}

TEST(Connect, StackedPinsNeedNoWire) {
  Circuit c = rows_only(1);
  const NetId net = c.add_net();
  c.add_fake_pin(net, RowId{0}, 25);
  c.add_fake_pin(net, RowId{0}, 25);
  std::vector<Wire> wires;
  connect_net(c, net, {}, wires);
  EXPECT_TRUE(wires.empty());
}

TEST(Connect, SinglePinNetSkipped) {
  Circuit c = rows_only(1);
  const NetId net = c.add_net();
  c.add_fake_pin(net, RowId{0}, 25);
  std::vector<Wire> wires;
  connect_net(c, net, {}, wires);
  EXPECT_TRUE(wires.empty());
}

TEST(Connect, NonAdjacentRowsEmitStubsInBetween) {
  Circuit c = rows_only(4);
  const NetId net = c.add_net();
  c.add_fake_pin(net, RowId{0}, 10);
  c.add_fake_pin(net, RowId{3}, 50);
  std::vector<Wire> wires;
  connect_net(c, net, {}, wires);
  // One horizontal wire in channel 3, stubs in channels 1 and 2.
  ASSERT_EQ(wires.size(), 3u);
  std::vector<bool> channel_seen(5, false);
  for (const Wire& w : wires) channel_seen[w.channel] = true;
  EXPECT_TRUE(channel_seen[1] && channel_seen[2] && channel_seen[3]);
  for (const Wire& w : wires) {
    if (w.channel != 3) {
      EXPECT_EQ(w.length(), 0);
    }
  }
}

TEST(Connect, MultiRowNetPrefersFewestRowHops) {
  Circuit c = rows_only(3);
  const NetId net = c.add_net();
  // A feedthrough chain: row 0, 1, 2 all have terminals.
  c.add_fake_pin(net, RowId{0}, 10);
  c.add_fake_pin(net, RowId{1}, 12);
  c.add_fake_pin(net, RowId{2}, 14);
  std::vector<Wire> wires;
  connect_net(c, net, {}, wires);
  // Adjacent-row hops only: no stub wires needed.
  for (const Wire& w : wires) {
    EXPECT_GT(w.length(), 0);
  }
  EXPECT_EQ(wires.size(), 2u);
}

TEST(Connect, RoutingVerifiesOnGeneratedCircuitWithFeedthroughs) {
  Circuit c = small_test_circuit(9, 5, 25);
  const auto trees = build_all_steiner_trees(c);
  auto segments = extract_coarse_segments(trees);
  CoarseGrid grid(c, 32);
  CoarseRouter router(grid, {});
  router.place_initial(segments);
  Rng rng(9);
  router.improve(segments, rng);
  FeedthroughPools pools = insert_feedthroughs(c, grid, 3);
  assign_feedthroughs(c, pools, grid, segments, 3);

  const auto wires = connect_all_nets(c);
  const auto violations = verify_routing(c, wires);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations; first: "
      << (violations.empty() ? "" : violations.front());
}

TEST(Connect, InitialSwitchableChannelIsStableHash) {
  // Every rank derives a switchable wire's starting channel independently;
  // the hash must be a pure function of (net, row) landing on one of the
  // row's two legal channels.  These exact values are load-bearing: changing
  // them re-seeds step 5 everywhere and desynchronizes mixed-version
  // replicas.
  EXPECT_EQ(initial_switchable_channel(NetId{0}, 0), 0u);
  EXPECT_EQ(initial_switchable_channel(NetId{1}, 0), 1u);
  EXPECT_EQ(initial_switchable_channel(NetId{0}, 1), 2u);
  EXPECT_EQ(initial_switchable_channel(NetId{1}, 1), 1u);
  EXPECT_EQ(initial_switchable_channel(NetId{7}, 4), 5u);
  for (std::uint32_t n = 0; n < 32; ++n) {
    for (std::uint32_t r = 0; r < 8; ++r) {
      const std::uint32_t channel = initial_switchable_channel(NetId{n}, r);
      EXPECT_TRUE(channel == r || channel == r + 1) << n << "," << r;
      EXPECT_EQ(channel, initial_switchable_channel(NetId{n}, r));
    }
  }
}

TEST(Connect, SwitchableWiresUseTheSharedInitialChannelHash) {
  // The wires produced by net connection must start exactly where the
  // shared helper says, or a replica recomputing channels from net IDs
  // would disagree with the rank that built the wires.
  Circuit c = small_test_circuit(31, 4, 20);
  const auto wires = connect_all_nets(c);
  bool saw_switchable = false;
  for (const Wire& w : wires) {
    if (!w.switchable) continue;
    saw_switchable = true;
    EXPECT_EQ(w.channel, initial_switchable_channel(w.net, w.row));
  }
  EXPECT_TRUE(saw_switchable);
}

}  // namespace
}  // namespace ptwgr
