// Tests of the happens-before analyzer: hand-built ledgers with known
// critical paths (message handoff, collective blame), the two report
// invariants on real runs of the serial pipeline and all three parallel
// algorithms, truncation handling, and the JSON report round-trip.
#include "ptwgr/obs/causal.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ptwgr/circuit/suite.h"
#include "ptwgr/mp/cost_model.h"
#include "ptwgr/parallel/parallel_router.h"
#include "ptwgr/route/router.h"
#include "ptwgr/support/json.h"

namespace ptwgr::obs {
namespace {

class LedgerGuard {
 public:
  explicit LedgerGuard(LedgerCollector& collector) {
    set_active_ledger(&collector);
  }
  ~LedgerGuard() { set_active_ledger(nullptr); }
  LedgerGuard(const LedgerGuard&) = delete;
  LedgerGuard& operator=(const LedgerGuard&) = delete;
};

LedgerEvent make_event(LedgerEventKind kind, double t0, double t1,
                       std::uint64_t lamport) {
  LedgerEvent event;
  event.kind = kind;
  event.t0 = t0;
  event.t1 = t1;
  event.lamport = lamport;
  return event;
}

/// Serializes a collector and parses it back — the same path the CLI takes,
/// so the tests also cover the %.17g round-trip.
ParsedLedger round_trip(const LedgerCollector& collector,
                        const LedgerMeta& meta) {
  return parse_ledger(json::parse(ledger_to_json(collector, meta)));
}

LedgerMeta ideal_meta(int ranks) {
  LedgerMeta meta;
  meta.algorithm = "test";
  meta.circuit_source = "hand-built";
  meta.ranks = ranks;
  meta.platform = "ideal";
  return meta;
}

TEST(Causal, MessageHandoffCriticalPath) {
  // rank 0 computes 1s, then sends [1.0, 1.5]; rank 1 starts waiting at 0.2
  // and receives at 1.5, then computes until 2.5.  The critical path is
  // rank0 compute → the transfer → rank1 compute: 1.0 + 0.5 + 1.0 = 2.5.
  LedgerCollector collector;
  collector.begin_run(2);
  {
    LedgerEvent send = make_event(LedgerEventKind::Send, 1.0, 1.5, 1);
    send.peer = 1;
    send.tag = 3;
    send.bytes = 100;
    send.seq = 1;
    collector.record(0, std::move(send));
    collector.set_final_vtime(0, 1.5);
    LedgerEvent recv = make_event(LedgerEventKind::Recv, 0.2, 1.5, 2);
    recv.peer = 0;
    recv.tag = 3;
    recv.bytes = 100;
    recv.seq = 1;
    collector.record(1, std::move(recv));
    collector.set_final_vtime(1, 2.5);
  }
  const ParsedLedger ledger = round_trip(collector, ideal_meta(2));
  const CausalAnalysis analysis = analyze(ledger);

  EXPECT_DOUBLE_EQ(analysis.makespan, 2.5);
  EXPECT_FALSE(analysis.truncated);
  EXPECT_NEAR(analysis.critical_path_seconds, 2.5, 1e-12);
  EXPECT_NEAR(analysis.critical_compute_seconds, 2.0, 1e-12);
  EXPECT_NEAR(analysis.critical_message_seconds, 0.5, 1e-12);
  ASSERT_EQ(analysis.critical_path.size(), 3u);
  EXPECT_EQ(analysis.critical_path[0].kind, CriticalSegment::Kind::Compute);
  EXPECT_EQ(analysis.critical_path[0].rank, 0);
  EXPECT_EQ(analysis.critical_path[1].kind, CriticalSegment::Kind::Message);
  EXPECT_EQ(analysis.critical_path[1].rank, 0);
  EXPECT_EQ(analysis.critical_path[1].peer, 1);
  EXPECT_EQ(analysis.critical_path[1].bytes, 100u);
  EXPECT_EQ(analysis.critical_path[2].kind, CriticalSegment::Kind::Compute);
  EXPECT_EQ(analysis.critical_path[2].rank, 1);

  // Attribution: rank 0 = 1.0 compute + 0.5 transfer + 1.0 end slack;
  // rank 1 = 0.2 + 1.0 compute + 1.3 wait.
  ASSERT_EQ(analysis.ranks.size(), 2u);
  EXPECT_NEAR(analysis.ranks[0].total.compute, 1.0, 1e-12);
  EXPECT_NEAR(analysis.ranks[0].total.p2p_wait, 0.5, 1e-12);
  EXPECT_NEAR(analysis.ranks[0].end_slack, 1.0, 1e-12);
  EXPECT_NEAR(analysis.ranks[1].total.compute, 1.2, 1e-12);
  EXPECT_NEAR(analysis.ranks[1].total.p2p_wait, 1.3, 1e-12);
  EXPECT_NEAR(analysis.ranks[1].end_slack, 0.0, 1e-12);
  EXPECT_TRUE(check_invariants(analysis).empty());
}

TEST(Causal, CollectiveBlamesLastArriver) {
  // rank 1 reaches the rendezvous at 0.3; rank 0 arrives at 1.0 and both
  // leave at 1.2.  The collective tile is blamed on rank 0, preceded by
  // rank 0's compute — critical path 1.0 + 0.2 = 1.2.
  LedgerCollector collector;
  collector.begin_run(2);
  for (int r = 0; r < 2; ++r) {
    LedgerEvent coll = make_event(LedgerEventKind::Collective,
                                  r == 0 ? 1.0 : 0.3, 1.2, 3);
    coll.tag = 4;  // allreduce
    coll.bytes = 64;
    coll.seq = 1;
    collector.record(r, std::move(coll));
    collector.set_final_vtime(r, 1.2);
  }
  const ParsedLedger ledger = round_trip(collector, ideal_meta(2));
  const CausalAnalysis analysis = analyze(ledger);

  EXPECT_DOUBLE_EQ(analysis.makespan, 1.2);
  EXPECT_NEAR(analysis.critical_path_seconds, 1.2, 1e-12);
  ASSERT_EQ(analysis.critical_path.size(), 2u);
  EXPECT_EQ(analysis.critical_path[0].kind, CriticalSegment::Kind::Compute);
  EXPECT_EQ(analysis.critical_path[0].rank, 0);
  EXPECT_EQ(analysis.critical_path[1].kind,
            CriticalSegment::Kind::Collective);
  EXPECT_EQ(analysis.critical_path[1].rank, 0);  // the last arriver
  EXPECT_EQ(analysis.critical_path[1].op, "allreduce");
  EXPECT_NEAR(analysis.critical_path[1].seconds(), 0.2, 1e-12);
  EXPECT_TRUE(check_invariants(analysis).empty());
}

TEST(Causal, UnmatchedRecvMarksTruncatedButStaysBounded) {
  // A recv whose matched send fell off a ring: the analyzer charges the
  // wait locally, flags truncation, and the ≤-makespan invariant still
  // holds (the == invariant is waived).
  LedgerCollector collector;
  collector.begin_run(2);
  {
    LedgerEvent recv = make_event(LedgerEventKind::Recv, 0.2, 1.5, 2);
    recv.peer = 0;
    recv.tag = 3;
    recv.bytes = 100;
    recv.seq = 9;  // no such send recorded on rank 0
    collector.record(1, std::move(recv));
    collector.set_final_vtime(0, 1.5);
    collector.set_final_vtime(1, 2.5);
  }
  const ParsedLedger ledger = round_trip(collector, ideal_meta(2));
  const CausalAnalysis analysis = analyze(ledger);
  EXPECT_TRUE(analysis.truncated);
  EXPECT_LE(analysis.critical_path_seconds, analysis.makespan + 1e-12);
  EXPECT_TRUE(check_invariants(analysis).empty());
}

TEST(Causal, SerialRunCriticalPathIsTheWholeClock) {
  LedgerCollector collector;
  const LedgerGuard guard(collector);
  route_serial(small_test_circuit(11, 6, 18));
  LedgerMeta meta = ideal_meta(1);
  meta.algorithm = "serial";
  const ParsedLedger ledger = round_trip(collector, meta);
  const CausalAnalysis analysis = analyze(ledger);
  // One rank: critical path == makespan == final vtime == total compute.
  EXPECT_GT(analysis.makespan, 0.0);
  EXPECT_NEAR(analysis.critical_path_seconds, analysis.makespan,
              1e-9 * analysis.makespan);
  EXPECT_NEAR(analysis.total_compute_seconds, analysis.makespan,
              1e-9 * analysis.makespan);
  EXPECT_DOUBLE_EQ(analysis.imbalance_ratio, 1.0);
  EXPECT_TRUE(check_invariants(analysis).empty());
}

class CausalAlgorithms
    : public ::testing::TestWithParam<ParallelAlgorithm> {};

TEST_P(CausalAlgorithms, InvariantsHoldOnParallelRuns) {
  LedgerCollector collector;
  CausalAnalysis analysis;
  ParsedLedger ledger;
  {
    const LedgerGuard guard(collector);
    route_parallel(small_test_circuit(21, 8, 30), GetParam(), 4, {},
                   mp::CostModel::sparc_center_smp());
  }
  LedgerMeta meta;
  meta.algorithm = to_string(GetParam());
  meta.circuit_source = "small_test_circuit";
  meta.ranks = 4;
  const mp::CostModel cost = mp::CostModel::sparc_center_smp();
  meta.platform = cost.name;
  meta.latency_s = cost.latency_s;
  meta.per_byte_s = cost.per_byte_s;
  meta.compute_scale = cost.compute_scale;
  ledger = round_trip(collector, meta);
  analysis = analyze(ledger);

  // Invariant 1: the path tiles [0, makespan].
  // Invariant 2: every rank's attribution sums to the makespan.
  const auto violations = check_invariants(analysis);
  EXPECT_TRUE(violations.empty())
      << to_string(GetParam()) << ": " << violations.front();
  EXPECT_FALSE(analysis.truncated);
  // The dependence chain is strictly shorter than the summed work — the
  // whole point of running in parallel.
  EXPECT_LT(analysis.critical_path_seconds,
            analysis.total_compute_seconds);
  EXPECT_GT(analysis.speedup_bound, 1.0);
  EXPECT_GT(analysis.effective_parallelism, 1.0);
  EXPECT_GE(analysis.imbalance_ratio, 1.0);
  ASSERT_EQ(analysis.ranks.size(), 4u);

  // The JSON report round-trips as valid JSON with the versioned schema.
  const std::string report = analysis_to_json(ledger, analysis, 10, 0.0);
  const json::Value doc = json::parse(report);
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->as_string(), "ptwgr.causal_report");
  EXPECT_EQ(doc.find("ranks_attribution")->as_array().size(), 4u);
  // And the table renderer covers every section.
  const std::string tables = analysis_tables(ledger, analysis, 5, 0.0);
  EXPECT_NE(tables.find("Causal summary"), std::string::npos);
  EXPECT_NE(tables.find("Per-rank attribution"), std::string::npos);
  EXPECT_NE(tables.find("Per-phase totals"), std::string::npos);
  EXPECT_NE(tables.find("Top critical-path segments"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, CausalAlgorithms,
                         ::testing::Values(ParallelAlgorithm::RowWise,
                                           ParallelAlgorithm::NetWise,
                                           ParallelAlgorithm::Hybrid),
                         [](const auto& info) {
                           // gtest parameter names must be alphanumeric.
                           switch (info.param) {
                             case ParallelAlgorithm::RowWise:
                               return std::string("RowWise");
                             case ParallelAlgorithm::NetWise:
                               return std::string("NetWise");
                             case ParallelAlgorithm::Hybrid:
                               return std::string("Hybrid");
                           }
                           return std::string("Unknown");
                         });

TEST(Causal, RingLedgerAnalyzesAsTruncated) {
  LedgerCollector collector(8);  // keep only each rank's last 8 events
  {
    const LedgerGuard guard(collector);
    route_parallel(small_test_circuit(21, 8, 30), ParallelAlgorithm::NetWise,
                   4, {}, mp::CostModel::sparc_center_smp());
  }
  LedgerMeta meta = ideal_meta(4);
  const ParsedLedger ledger = round_trip(collector, meta);
  ASSERT_GT(ledger.rank_ledgers.size(), 0u);
  bool any_dropped = false;
  for (const RankLedger& rank : ledger.rank_ledgers) {
    any_dropped = any_dropped || rank.dropped > 0;
  }
  ASSERT_TRUE(any_dropped) << "net-wise at P=4 should overflow an 8-ring";
  const CausalAnalysis analysis = analyze(ledger);
  EXPECT_TRUE(analysis.truncated);
  EXPECT_LE(analysis.critical_path_seconds,
            analysis.makespan + 1e-9 * analysis.makespan);
  EXPECT_TRUE(check_invariants(analysis).empty());
}

TEST(Causal, CanonicalDocumentCannotBeAnalyzed) {
  LedgerCollector collector;
  collector.begin_run(1);
  collector.record(0, make_event(LedgerEventKind::PhaseBegin, 0.0, 0.0, 0));
  const ParsedLedger ledger = parse_ledger(json::parse(
      ledger_to_json(collector, ideal_meta(1), /*include_times=*/false)));
  EXPECT_FALSE(ledger.has_times);
  EXPECT_THROW(analyze(ledger), std::runtime_error);
}

TEST(Causal, RejectsForeignSchema) {
  EXPECT_THROW(parse_ledger(json::parse("{\"schema\":\"other\"}")),
               std::runtime_error);
  EXPECT_THROW(parse_ledger(json::parse("[]")), std::runtime_error);
}

TEST(Causal, CheckInvariantsFlagsOverlongPath) {
  CausalAnalysis analysis;
  analysis.makespan = 1.0;
  analysis.critical_path_seconds = 1.5;  // impossible: path exceeds makespan
  const auto violations = check_invariants(analysis);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("exceeds the makespan"),
            std::string::npos);
}

}  // namespace
}  // namespace ptwgr::obs
