#include "ptwgr/eval/channel_report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "ptwgr/circuit/builder.h"
#include "ptwgr/circuit/suite.h"
#include "ptwgr/route/router.h"

namespace ptwgr {
namespace {

TEST(ChannelReport, ProfileShowsDensities) {
  CircuitBuilder b;
  const RowId row = b.add_row();
  b.add_cell(row, 100);
  Circuit circuit = std::move(b).build();

  Wire wire;
  wire.net = NetId{0};
  wire.channel = 1;
  wire.lo = 0;
  wire.hi = 100;
  const std::string profile =
      render_channel_profile(circuit, {wire}, /*columns=*/10);
  // Channel 1 fully occupied by one net; channel 0 empty.
  EXPECT_NE(profile.find("ch  1 |1111111111| density 1"), std::string::npos)
      << profile;
  EXPECT_NE(profile.find("ch  0 |..........| density 0"), std::string::npos)
      << profile;
  EXPECT_NE(profile.find("tracks total: 1"), std::string::npos);
}

TEST(ChannelReport, SameNetCountsOncePerSlice) {
  CircuitBuilder b;
  const RowId row = b.add_row();
  b.add_cell(row, 100);
  Circuit circuit = std::move(b).build();

  // Two overlapping wires of the same net: slice depth stays 1.
  Wire w1;
  w1.net = NetId{3};
  w1.channel = 0;
  w1.lo = 0;
  w1.hi = 100;
  Wire w2 = w1;
  w2.lo = 20;
  w2.hi = 80;
  const std::string profile =
      render_channel_profile(circuit, {w1, w2}, /*columns=*/5);
  EXPECT_NE(profile.find("|11111|"), std::string::npos) << profile;
}

TEST(ChannelReport, FullReportHasAllSections) {
  const RoutingResult result = route_serial(small_test_circuit(44, 4, 20));
  std::ostringstream out;
  write_routing_report(out, result.circuit, result.wires);
  const std::string report = out.str();
  EXPECT_NE(report.find("# ptwgr routing report"), std::string::npos);
  EXPECT_NE(report.find("metrics: tracks="), std::string::npos);
  EXPECT_NE(report.find("channel profile"), std::string::npos);
  EXPECT_NE(report.find("wires (channel lo hi net switchable):"),
            std::string::npos);
  // One wire line per wire after the list header.
  const auto header_end =
      report.find('\n', report.find("switchable):")) + 1;
  std::size_t lines = 0;
  for (std::size_t pos = header_end;
       (pos = report.find('\n', pos)) != std::string::npos; ++pos) {
    ++lines;
  }
  EXPECT_EQ(lines, result.wires.size());
}

TEST(ChannelReport, RejectsZeroColumns) {
  CircuitBuilder b;
  b.add_row();
  const Circuit circuit = std::move(b).build();
  EXPECT_THROW(render_channel_profile(circuit, {}, 0), CheckError);
}

}  // namespace
}  // namespace ptwgr
