// Tests of the metric-comparison engine behind ptwgr_compare: glob
// matching, rule precedence, threshold semantics, regression/improvement
// classification, and the exit-code contract (has_regression).
#include "ptwgr/obs/compare.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ptwgr {
namespace {

using obs::CompareDirection;
using obs::CompareResult;
using obs::CompareRule;
using obs::DeltaStatus;
using obs::MetricDelta;

TEST(GlobMatch, Basics) {
  EXPECT_TRUE(obs::glob_match("*", "anything.at.all"));
  EXPECT_TRUE(obs::glob_match("metrics.tracks", "metrics.tracks"));
  EXPECT_FALSE(obs::glob_match("metrics.tracks", "metrics.track"));
  EXPECT_TRUE(obs::glob_match("*metrics.tracks",
                              "circuits.biomed.serial.metrics.tracks"));
  EXPECT_TRUE(obs::glob_match("*seconds*", "timing.wall_seconds"));
  EXPECT_TRUE(obs::glob_match("snapshots.*.density.track_count",
                              "snapshots.4.density.track_count"));
  EXPECT_FALSE(obs::glob_match("snapshots.*.density.track_count",
                               "snapshots.4.density.per_channel.0"));
  EXPECT_TRUE(obs::glob_match("a?c", "abc"));
  EXPECT_FALSE(obs::glob_match("a?c", "ac"));
}

const MetricDelta* find_delta(const CompareResult& result,
                              const std::string& path) {
  for (const MetricDelta& d : result.deltas) {
    if (d.path == path) return &d;
  }
  return nullptr;
}

CompareResult compare_docs(const char* base, const char* cand,
                           double tolerance = 0.02) {
  return obs::compare(json::parse(base), json::parse(cand),
                      obs::default_rules(tolerance));
}

TEST(Compare, DetectsInjectedQualityRegression) {
  // +20% tracks against a 2% gate: the candidate must be rejected — this is
  // the nonzero-exit path of ptwgr_compare.
  const auto result = compare_docs(
      R"({"metrics":{"tracks":100,"wirelength":5000}})",
      R"({"metrics":{"tracks":120,"wirelength":5000}})");
  EXPECT_TRUE(result.has_regression());
  const MetricDelta* tracks = find_delta(result, "metrics.tracks");
  ASSERT_NE(tracks, nullptr);
  EXPECT_EQ(tracks->status, DeltaStatus::Regressed);
  EXPECT_NEAR(tracks->rel_change, 0.2, 1e-12);
  const MetricDelta* wl = find_delta(result, "metrics.wirelength");
  ASSERT_NE(wl, nullptr);
  EXPECT_EQ(wl->status, DeltaStatus::Unchanged);
}

TEST(Compare, WithinToleranceIsNotARegression) {
  const auto result = compare_docs(R"({"metrics":{"tracks":100}})",
                                   R"({"metrics":{"tracks":101}})");
  EXPECT_FALSE(result.has_regression());
  EXPECT_EQ(find_delta(result, "metrics.tracks")->status,
            DeltaStatus::Changed);
}

TEST(Compare, ImprovementBeyondToleranceIsFlagged) {
  const auto result = compare_docs(R"({"metrics":{"tracks":100}})",
                                   R"({"metrics":{"tracks":90}})");
  EXPECT_FALSE(result.has_regression());
  EXPECT_EQ(find_delta(result, "metrics.tracks")->status,
            DeltaStatus::Improved);
}

TEST(Compare, TimingsAreIgnoredAndSpeedupsAreInfo) {
  const auto result = compare_docs(
      R"({"timing":{"wall_seconds":1.0},"points":{"speedup":4.0}})",
      R"({"timing":{"wall_seconds":9.0},"points":{"speedup":1.0}})");
  EXPECT_FALSE(result.has_regression());
  // Ignored leaves are dropped entirely; Info leaves are reported only.
  EXPECT_EQ(find_delta(result, "timing.wall_seconds"), nullptr);
  const MetricDelta* speedup = find_delta(result, "points.speedup");
  ASSERT_NE(speedup, nullptr);
  EXPECT_EQ(speedup->status, DeltaStatus::Changed);
  EXPECT_EQ(speedup->direction, CompareDirection::Info);
}

TEST(Compare, RemovedGatedMetricIsARegression) {
  const auto result = compare_docs(R"({"metrics":{"tracks":100}})",
                                   R"({"metrics":{}})");
  EXPECT_TRUE(result.has_regression());
  EXPECT_EQ(find_delta(result, "metrics.tracks")->status,
            DeltaStatus::Removed);
}

TEST(Compare, AddedMetricIsInformational) {
  const auto result = compare_docs(R"({"metrics":{}})",
                                   R"({"metrics":{"tracks":100}})");
  EXPECT_FALSE(result.has_regression());
  EXPECT_EQ(find_delta(result, "metrics.tracks")->status,
            DeltaStatus::Added);
}

TEST(Compare, CustomRulePrependedOverridesDefault) {
  // ptwgr_compare prepends --rule specs; first match wins, so a custom
  // ignore silences the default tracks gate.
  std::vector<CompareRule> rules = {
      {"metrics.tracks", CompareDirection::Ignore, 0.0}};
  for (CompareRule& rule : obs::default_rules(0.02)) {
    rules.push_back(std::move(rule));
  }
  const auto result =
      obs::compare(json::parse(R"({"metrics":{"tracks":100}})"),
                   json::parse(R"({"metrics":{"tracks":200}})"), rules);
  EXPECT_FALSE(result.has_regression());
  EXPECT_EQ(find_delta(result, "metrics.tracks"), nullptr);
}

TEST(Compare, HigherIsBetterDirection) {
  const std::vector<CompareRule> rules = {
      {"score", CompareDirection::HigherIsBetter, 0.05}};
  const auto worse = obs::compare(json::parse(R"({"score":100})"),
                                  json::parse(R"({"score":90})"), rules);
  EXPECT_TRUE(worse.has_regression());
  const auto better = obs::compare(json::parse(R"({"score":100})"),
                                   json::parse(R"({"score":110})"), rules);
  EXPECT_FALSE(better.has_regression());
  EXPECT_EQ(find_delta(better, "score")->status, DeltaStatus::Improved);
}

TEST(Compare, MismatchedSchemasThrow) {
  EXPECT_THROW(compare_docs(R"({"schema":"ptwgr.run_report","version":1})",
                            R"({"schema":"ptwgr.bench","version":1})"),
               std::runtime_error);
}

TEST(Compare, MissingBaselineKeyIsReportedNotSilentlySkipped) {
  // An ungated (Info) metric that vanishes from the candidate is not a
  // regression, but it IS missing — ptwgr_compare fails on it unless
  // --allow-missing is passed.
  const auto result = compare_docs(R"({"notes":{"extra":5}})", R"({})");
  EXPECT_FALSE(result.has_regression());
  EXPECT_TRUE(result.has_missing());
  EXPECT_EQ(find_delta(result, "notes.extra")->status, DeltaStatus::Removed);
}

TEST(Compare, UnmatchedRequiredRuleIsReported) {
  // A required rule (what ptwgr_compare builds from --rule) matching no
  // metric in either document must surface, not silently gate nothing.
  std::vector<CompareRule> rules = {
      {"metrics.trcaks" /* typo'd on purpose */,
       CompareDirection::LowerIsBetter, 0.0, /*required=*/true}};
  for (CompareRule& rule : obs::default_rules(0.02)) {
    rules.push_back(std::move(rule));
  }
  const auto result =
      obs::compare(json::parse(R"({"metrics":{"tracks":100}})"),
                   json::parse(R"({"metrics":{"tracks":100}})"), rules);
  EXPECT_FALSE(result.has_regression());
  EXPECT_TRUE(result.has_missing());
  ASSERT_EQ(result.unmatched_required.size(), 1u);
  EXPECT_EQ(result.unmatched_required[0], "metrics.trcaks");
  const std::string table = obs::render_compare_table(result, true);
  EXPECT_NE(table.find("MISSING"), std::string::npos);
  EXPECT_NE(table.find("metrics.trcaks"), std::string::npos);
}

TEST(Compare, MatchedRequiredRuleIsNotMissing) {
  std::vector<CompareRule> rules = {
      {"metrics.tracks", CompareDirection::LowerIsBetter, 0.0,
       /*required=*/true}};
  const auto result =
      obs::compare(json::parse(R"({"metrics":{"tracks":100}})"),
                   json::parse(R"({"metrics":{"tracks":100}})"), rules);
  EXPECT_FALSE(result.has_missing());
  EXPECT_TRUE(result.unmatched_required.empty());
}

TEST(Compare, DefaultRulesGateResourceTelemetry) {
  // Peak RSS gates loosely (35%), allocation bytes tighter (25%), counts
  // are informational.
  const auto rss_small = compare_docs(
      R"({"resource":{"peak_rss_bytes":1000000}})",
      R"({"resource":{"peak_rss_bytes":1200000}})");
  EXPECT_FALSE(rss_small.has_regression());
  const auto rss_big = compare_docs(
      R"({"resource":{"peak_rss_bytes":1000000}})",
      R"({"resource":{"peak_rss_bytes":1400000}})");
  EXPECT_TRUE(rss_big.has_regression());
  const auto bytes_big = compare_docs(
      R"({"resource":{"alloc_bytes":1000000}})",
      R"({"resource":{"alloc_bytes":1300000}})");
  EXPECT_TRUE(bytes_big.has_regression());
  const auto count_big = compare_docs(
      R"({"resource":{"alloc_count":1000}})",
      R"({"resource":{"alloc_count":5000}})");
  EXPECT_FALSE(count_big.has_regression());
  EXPECT_EQ(find_delta(count_big, "resource.alloc_count")->status,
            DeltaStatus::Changed);
}

TEST(Compare, RenderTableNamesRegressions) {
  const auto result = compare_docs(R"({"metrics":{"tracks":100}})",
                                   R"({"metrics":{"tracks":120}})");
  const std::string table = obs::render_compare_table(result, true);
  EXPECT_NE(table.find("metrics.tracks"), std::string::npos);
  EXPECT_NE(table.find("REGRESSED"), std::string::npos);
  EXPECT_NE(table.find("1 regressed"), std::string::npos);
}

TEST(Compare, DefaultRulesGateLooseDensityMax) {
  // The density-summary max gates at a loosened 5% threshold.
  const auto small = compare_docs(
      R"({"snapshots":[{"density":{"summary":{"max":100}}}]})",
      R"({"snapshots":[{"density":{"summary":{"max":104}}}]})");
  EXPECT_FALSE(small.has_regression());
  const auto big = compare_docs(
      R"({"snapshots":[{"density":{"summary":{"max":100}}}]})",
      R"({"snapshots":[{"density":{"summary":{"max":110}}}]})");
  EXPECT_TRUE(big.has_regression());
}

}  // namespace
}  // namespace ptwgr
