// Golden regression values: exact outputs for fixed seeds.
//
// Routing behaviour is deterministic in (circuit seed, router seed, rank
// count), so these values pin the current algorithms down to the last
// track.  They WILL change whenever routing behaviour changes — that is the
// point: an unexpected diff here means a behavioural change, intended or
// not.  Update the constants deliberately when the change is intended.
#include <gtest/gtest.h>

#include "ptwgr/circuit/suite.h"
#include "ptwgr/parallel/parallel_router.h"
#include "ptwgr/route/router.h"

namespace ptwgr {
namespace {

constexpr std::uint64_t kCircuitSeed = 99;
constexpr std::uint64_t kRouterSeed = 12345;

Circuit golden_circuit() { return small_test_circuit(kCircuitSeed, 6, 30); }

TEST(RegressionGolden, SerialRoute) {
  RouterOptions options;
  options.seed = kRouterSeed;
  const RoutingResult result = route_serial(golden_circuit(), options);
  EXPECT_EQ(result.metrics.track_count, 97);
  EXPECT_EQ(result.metrics.area, 105850);
  EXPECT_EQ(result.metrics.feedthrough_count, 119u);
  EXPECT_EQ(result.metrics.total_wirelength, 16609);
  EXPECT_EQ(result.wires.size(), 544u);
}

TEST(RegressionGolden, RowWiseFourRanks) {
  ParallelOptions options;
  options.router.seed = kRouterSeed;
  const auto result = route_parallel(golden_circuit(),
                                     ParallelAlgorithm::RowWise, 4, options);
  EXPECT_EQ(result.metrics.track_count, 127);
  EXPECT_EQ(result.feedthrough_count, 119u);
}

TEST(RegressionGolden, NetWiseFourRanks) {
  ParallelOptions options;
  options.router.seed = kRouterSeed;
  const auto result = route_parallel(golden_circuit(),
                                     ParallelAlgorithm::NetWise, 4, options);
  EXPECT_EQ(result.metrics.track_count, 102);
  EXPECT_EQ(result.feedthrough_count, 119u);
}

TEST(RegressionGolden, HybridFourRanks) {
  ParallelOptions options;
  options.router.seed = kRouterSeed;
  const auto result = route_parallel(golden_circuit(),
                                     ParallelAlgorithm::Hybrid, 4, options);
  EXPECT_EQ(result.metrics.track_count, 105);
  EXPECT_EQ(result.feedthrough_count, 119u);
}

TEST(RegressionGolden, FeedthroughCountIsAlgorithmInvariant) {
  // All three algorithms and the serial baseline materialize the same set of
  // row crossings on this circuit — the halo-row model's exactness.
  ParallelOptions options;
  options.router.seed = kRouterSeed;
  const RoutingResult serial = route_serial(golden_circuit(), options.router);
  for (const auto algorithm :
       {ParallelAlgorithm::RowWise, ParallelAlgorithm::NetWise,
        ParallelAlgorithm::Hybrid}) {
    const auto result =
        route_parallel(golden_circuit(), algorithm, 4, options);
    EXPECT_EQ(result.feedthrough_count, serial.metrics.feedthrough_count)
        << to_string(algorithm);
  }
}

}  // namespace
}  // namespace ptwgr
