// Tests of the scoped-span tracer: disabled-by-default behavior, span
// capture from the serial router and the parallel algorithms, and the
// Chrome trace-event export (validated with a minimal JSON parser — the
// repo deliberately has no JSON dependency).
#include "ptwgr/support/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "ptwgr/circuit/suite.h"
#include "ptwgr/parallel/parallel_router.h"
#include "ptwgr/route/router.h"

namespace ptwgr {
namespace {

/// Installs a collector for one test and removes it on scope exit so the
/// process-global stays clean across tests.
class CollectorGuard {
 public:
  explicit CollectorGuard(TraceCollector& collector) {
    set_active_trace(&collector);
  }
  ~CollectorGuard() { set_active_trace(nullptr); }
  CollectorGuard(const CollectorGuard&) = delete;
  CollectorGuard& operator=(const CollectorGuard&) = delete;
};

// --- minimal JSON validator (structure only, no value extraction) --------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

// --- tests ---------------------------------------------------------------

TEST(Trace, DisabledByDefault) {
  EXPECT_EQ(active_trace(), nullptr);
}

TEST(Trace, DisabledSpanNeverConsultsClock) {
  ASSERT_EQ(active_trace(), nullptr);
  const ScopedSpan::ClockFn poisoned = [](void*) -> double {
    std::abort();  // tracing is off; reaching the clock is a bug
  };
  { const ScopedSpan span("idle", 0, poisoned, nullptr); }
  SUCCEED();
}

TEST(Trace, SerialRouteRecordsNothingWhenDisabled) {
  ASSERT_EQ(active_trace(), nullptr);
  TraceCollector collector;  // exists but is never installed
  route_serial(small_test_circuit(11, 6, 18));
  EXPECT_EQ(collector.span_count(), 0u);
}

TEST(Trace, ScopedSpanRecordsWithActiveCollector) {
  TraceCollector collector;
  const CollectorGuard guard(collector);
  double now = 1.5;
  const ScopedSpan::ClockFn clock = [](void* ctx) {
    return *static_cast<double*>(ctx);
  };
  {
    const ScopedSpan span("work", 3, clock, &now);
    now = 2.75;
  }
  ASSERT_EQ(collector.span_count(), 1u);
  const TraceSpan span = collector.spans().front();
  EXPECT_EQ(span.name, "work");
  EXPECT_EQ(span.rank, 3);
  EXPECT_DOUBLE_EQ(span.start_seconds, 1.5);
  EXPECT_DOUBLE_EQ(span.end_seconds, 2.75);
}

TEST(Trace, SerialRouteCoversAllFiveSteps) {
  TraceCollector collector;
  const CollectorGuard guard(collector);
  route_serial(small_test_circuit(11, 6, 18));
  const std::vector<TraceSpan> spans = collector.spans();
  std::set<std::string> names;
  for (const TraceSpan& span : spans) {
    EXPECT_EQ(span.rank, 0);
    EXPECT_GE(span.end_seconds, span.start_seconds);
    names.insert(span.name);
  }
  const std::set<std::string> expected{"steiner", "coarse", "feedthrough",
                                       "connect", "switchable"};
  EXPECT_EQ(names, expected);
  ASSERT_EQ(spans.size(), 5u);
  // The steps tile a cumulative timeline: each starts where the previous
  // ended.
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_DOUBLE_EQ(spans[i].start_seconds, spans[i - 1].end_seconds);
  }
}

TEST(Trace, ParallelRowWiseRecordsOneTrackPerRank) {
  TraceCollector collector;
  const CollectorGuard guard(collector);
  route_parallel(small_test_circuit(21, 8, 30), ParallelAlgorithm::RowWise,
                 2);
  std::set<int> ranks;
  std::set<std::string> names;
  for (const TraceSpan& span : collector.spans()) {
    ranks.insert(span.rank);
    names.insert(span.name);
  }
  EXPECT_EQ(ranks, (std::set<int>{0, 1}));
  for (const char* phase : {"partition", "steiner", "coarse", "feedthrough",
                            "connect", "switchable"}) {
    EXPECT_TRUE(names.count(phase) == 1) << "missing phase " << phase;
  }
}

TEST(Trace, ChromeJsonParsesAndHasOneThreadNamePerRank) {
  TraceCollector collector;
  collector.record("alpha", 0, 0.0, 0.5);
  collector.record("beta", 1, 0.25, 1.0);
  collector.record("gamma \"quoted\"\n", 2, 1.0, 1.0);
  const std::string json = collector.to_chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_EQ(count_occurrences(json, "\"thread_name\""), 3u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 3u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // The quote and newline in the span name are escaped, not raw (raw
  // control characters inside a string would also fail JsonChecker).
  EXPECT_NE(json.find("gamma \\\"quoted\\\"\\n"), std::string::npos);
}

TEST(Trace, ChromeJsonEscapesHostileSpanNames) {
  // Regression guard for the span-name escaping: quotes, backslashes, and
  // raw control characters in a name must never produce invalid JSON or
  // smuggle extra keys into the event object.
  TraceCollector collector;
  collector.record("evil\"name\\ \b\f\t\x01\x1f,\"pid\":666", 0, 0.0, 1.0);
  const std::string json = collector.to_chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // The injected key is inert: it appears escaped inside the name string,
  // and the only real pid keys are the span's and the metadata row's.
  EXPECT_NE(json.find("\\\"pid\\\":666"), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"pid\":666"), 0u);
  EXPECT_NE(json.find("\\\\"), std::string::npos);
  EXPECT_NE(json.find("\\u0008"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\\u001f"), std::string::npos);
}

TEST(Trace, SpansCarryCategories) {
  TraceCollector collector;
  collector.record("step", 0, 0.0, 0.5, "serial");
  collector.record("phase", 1, 0.0, 0.5, "parallel");
  collector.record("plain", 2, 0.0, 0.5);  // default category
  const std::string json = collector.to_chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_EQ(count_occurrences(json, "\"cat\":\"serial\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"cat\":\"parallel\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"cat\":\"phase\""), 1u);
}

TEST(Trace, FlowEventsEmitMatchedStartFinishPairs) {
  TraceCollector collector;
  collector.record("work", 0, 0.0, 1.0);
  collector.record("work", 1, 0.0, 2.0);
  TraceFlow flow;
  flow.id = 42;
  flow.name = "msg tag 7 (16 bytes)";
  flow.src_rank = 0;
  flow.src_seconds = 0.5;
  flow.dst_rank = 1;
  flow.dst_seconds = 1.5;
  collector.record_flow(flow);
  EXPECT_EQ(collector.flow_count(), 1u);
  const std::string json = collector.to_chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // One "s" (start) and one "f" (finish, binding point enclosing) event
  // sharing the flow id, on the two rank tracks.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"s\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"f\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"id\":42"), 2u);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
}

TEST(Trace, ChromeJsonOfEmptyCollectorIsValid) {
  const TraceCollector collector;
  const std::string json = collector.to_chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 0u);
}

TEST(Trace, ChromeJsonOfParallelRunParses) {
  TraceCollector collector;
  {
    const CollectorGuard guard(collector);
    route_parallel(small_test_circuit(21, 8, 30),
                   ParallelAlgorithm::Hybrid, 4);
  }
  const std::string json = collector.to_chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_EQ(count_occurrences(json, "\"thread_name\""), 4u);
  EXPECT_GE(collector.span_count(), 4u * 7u);  // 7 phases on each rank
}

}  // namespace
}  // namespace ptwgr
