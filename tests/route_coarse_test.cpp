#include "ptwgr/route/coarse.h"

#include <gtest/gtest.h>

#include "ptwgr/circuit/suite.h"

namespace ptwgr {
namespace {

CoarseSegment make_segment(NetId net, Coord ax, std::uint32_t arow, Coord bx,
                           std::uint32_t brow) {
  CoarseSegment seg;
  seg.net = net;
  seg.a = {ax, arow};
  seg.b = {bx, brow};
  return seg;
}

TEST(CoarseSegments, ExtractedNormalized) {
  const Circuit c = small_test_circuit(2, 5, 20);
  const auto trees = build_all_steiner_trees(c);
  const auto segments = extract_coarse_segments(trees);
  EXPECT_FALSE(segments.empty());
  for (const CoarseSegment& seg : segments) {
    EXPECT_LT(seg.a.row, seg.b.row);
  }
}

TEST(CoarseRouter, CommitAddsDemandOnCrossedRowsOnly) {
  CoarseGrid grid(5, 200, 10);
  CoarseRouter router(grid, {});
  // Rows 1..3 exclusive of endpoints 0 and 4.
  const auto seg = make_segment(NetId{0}, 15, 0, 105, 4);
  router.commit(seg, /*vertical_at_a=*/true, +1);
  EXPECT_EQ(grid.feedthrough_demand(1, grid.column_of(15)), 1);
  EXPECT_EQ(grid.feedthrough_demand(2, grid.column_of(15)), 1);
  EXPECT_EQ(grid.feedthrough_demand(3, grid.column_of(15)), 1);
  EXPECT_EQ(grid.feedthrough_demand(0, grid.column_of(15)), 0);
  EXPECT_EQ(grid.feedthrough_demand(4, grid.column_of(15)), 0);
  // Horizontal leg at row 4, channel 4.
  EXPECT_EQ(grid.max_channel_use(4, 0, grid.num_columns() - 1), 1);
  EXPECT_EQ(grid.max_channel_use(1, 0, grid.num_columns() - 1), 0);
  router.commit(seg, true, -1);
  EXPECT_EQ(grid.row_feedthrough_total(1), 0);
}

TEST(CoarseRouter, OrientationControlsVerticalColumnAndChannel) {
  CoarseGrid grid(3, 200, 10);
  CoarseRouter router(grid, {});
  const auto seg = make_segment(NetId{0}, 15, 0, 105, 2);

  router.commit(seg, true, +1);  // vertical at x=15, horizontal at row 2
  EXPECT_EQ(grid.feedthrough_demand(1, grid.column_of(15)), 1);
  EXPECT_EQ(grid.feedthrough_demand(1, grid.column_of(105)), 0);
  EXPECT_EQ(grid.max_channel_use(2, 0, grid.num_columns() - 1), 1);
  router.commit(seg, true, -1);

  router.commit(seg, false, +1);  // vertical at x=105, horizontal at row 0
  EXPECT_EQ(grid.feedthrough_demand(1, grid.column_of(105)), 1);
  EXPECT_EQ(grid.feedthrough_demand(1, grid.column_of(15)), 0);
  EXPECT_EQ(grid.max_channel_use(1, 0, grid.num_columns() - 1), 1);
  router.commit(seg, false, -1);
}

TEST(CoarseRouter, AdjacentRowSegmentNeedsNoFeedthrough) {
  CoarseGrid grid(2, 100, 10);
  CoarseRouter router(grid, {});
  const auto seg = make_segment(NetId{0}, 5, 0, 95, 1);
  router.commit(seg, true, +1);
  EXPECT_EQ(grid.row_feedthrough_total(0), 0);
  EXPECT_EQ(grid.row_feedthrough_total(1), 0);
  EXPECT_EQ(grid.max_channel_use(1, 0, grid.num_columns() - 1), 1);
}

TEST(CoarseRouter, ImproveAvoidsCongestedColumn) {
  CoarseGrid grid(4, 200, 10);
  CoarseRouter router(grid, {});
  // Pre-load heavy feedthrough congestion at the column of x=15, rows 1-2.
  for (int i = 0; i < 20; ++i) {
    grid.add_feedthrough_demand(1, grid.column_of(15), 1);
    grid.add_feedthrough_demand(2, grid.column_of(15), 1);
  }
  std::vector<CoarseSegment> segs{make_segment(NetId{0}, 15, 0, 105, 3)};
  router.place_initial(segs);
  Rng rng(1);
  router.improve(segs, rng);
  // The improvement pass must flip the vertical leg to the uncongested end.
  EXPECT_FALSE(segs[0].vertical_at_a);
}

TEST(CoarseRouter, ImproveAvoidsDenseChannel) {
  CoarseGrid grid(3, 200, 10);
  CoarseRouter router(grid, {});
  // Channel 2 (horizontal leg for vertical_at_a) is saturated.
  grid.add_channel_use(2, 0, grid.num_columns() - 1, 50);
  std::vector<CoarseSegment> segs{make_segment(NetId{0}, 15, 0, 105, 2)};
  router.place_initial(segs);
  Rng rng(2);
  router.improve(segs, rng);
  EXPECT_FALSE(segs[0].vertical_at_a);  // horizontal leg moves to channel 1
}

TEST(CoarseRouter, DemandConservedAcrossImprovement) {
  const Circuit c = small_test_circuit(5, 6, 30);
  const auto trees = build_all_steiner_trees(c);
  auto segments = extract_coarse_segments(trees);

  CoarseGrid grid(c, 32);
  CoarseRouter router(grid, {});
  router.place_initial(segments);

  std::int64_t before_ft = 0;
  for (std::size_t r = 0; r < grid.num_rows(); ++r) {
    before_ft += grid.row_feedthrough_total(r);
  }

  Rng rng(3);
  router.improve(segments, rng);

  std::int64_t after_ft = 0;
  for (std::size_t r = 0; r < grid.num_rows(); ++r) {
    after_ft += grid.row_feedthrough_total(r);
  }
  // Orientation changes move demand between columns, never create or destroy
  // it: the crossed-rows count is orientation-independent.
  EXPECT_EQ(before_ft, after_ft);
}

TEST(CoarseRouter, ImprovementReducesOrKeepsPeakCongestion) {
  const Circuit c = small_test_circuit(11, 6, 40);
  const auto trees = build_all_steiner_trees(c);
  auto segments = extract_coarse_segments(trees);

  CoarseGrid grid(c, 32);
  CoarseRouter router(grid, {});
  router.place_initial(segments);

  const auto peak_use = [&grid] {
    std::int32_t peak = 0;
    for (std::size_t ch = 0; ch < grid.num_channels(); ++ch) {
      peak = std::max(peak,
                      grid.max_channel_use(ch, 0, grid.num_columns() - 1));
    }
    return peak;
  };
  const std::int32_t before = peak_use();
  Rng rng(4);
  router.improve(segments, rng);
  // The objective mixes channel and feedthrough congestion, so the channel
  // peak alone is near-monotone rather than strictly monotone.
  EXPECT_LE(peak_use(), before + 1);
}

TEST(CoarseRouter, ProgressHookFiresPerDecision) {
  const Circuit c = small_test_circuit(6, 4, 15);
  const auto trees = build_all_steiner_trees(c);
  auto segments = extract_coarse_segments(trees);
  CoarseGrid grid(c, 32);
  CoarseOptions options;
  options.passes = 2;
  CoarseRouter router(grid, options);
  router.place_initial(segments);
  std::size_t calls = 0;
  std::size_t last = 0;
  Rng rng(5);
  router.improve(segments, rng, [&](std::size_t n) {
    ++calls;
    EXPECT_EQ(n, calls);
    last = n;
  });
  EXPECT_EQ(calls, segments.size() * 2);
  EXPECT_EQ(last, calls);
}

TEST(CoarseRouter, DeterministicForSeed) {
  const Circuit c = small_test_circuit(8, 5, 25);
  const auto trees = build_all_steiner_trees(c);

  const auto run_once = [&] {
    auto segments = extract_coarse_segments(trees);
    CoarseGrid grid(c, 32);
    CoarseRouter router(grid, {});
    router.place_initial(segments);
    Rng rng(42);
    router.improve(segments, rng);
    return grid.export_state();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ptwgr
