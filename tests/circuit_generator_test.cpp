#include "ptwgr/circuit/generator.h"

#include <gtest/gtest.h>

#include "ptwgr/circuit/circuit_stats.h"
#include "ptwgr/circuit/suite.h"

namespace ptwgr {
namespace {

GeneratorConfig small_config(std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.num_rows = 6;
  cfg.num_cells = 240;
  cfg.num_nets = 260;
  cfg.mean_pins_per_net = 3.4;
  return cfg;
}

TEST(Generator, ProducesRequestedCounts) {
  const Circuit c = generate_circuit(small_config(1));
  EXPECT_EQ(c.num_rows(), 6u);
  EXPECT_EQ(c.num_cells(), 240u);
  EXPECT_EQ(c.num_nets(), 260u);
  c.validate();
}

TEST(Generator, DeterministicForSeed) {
  const Circuit a = generate_circuit(small_config(9));
  const Circuit b = generate_circuit(small_config(9));
  ASSERT_EQ(a.num_pins(), b.num_pins());
  for (std::size_t p = 0; p < a.num_pins(); ++p) {
    const PinId pid{static_cast<std::uint32_t>(p)};
    EXPECT_EQ(a.pin_x(pid), b.pin_x(pid));
    EXPECT_EQ(a.pin_row(pid), b.pin_row(pid));
    EXPECT_EQ(a.pin(pid).side, b.pin(pid).side);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const Circuit a = generate_circuit(small_config(1));
  const Circuit b = generate_circuit(small_config(2));
  bool any_difference = a.num_pins() != b.num_pins();
  if (!any_difference) {
    for (std::size_t p = 0; p < a.num_pins(); ++p) {
      const PinId pid{static_cast<std::uint32_t>(p)};
      if (a.pin_x(pid) != b.pin_x(pid)) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Generator, EveryNetHasAtLeastTwoPins) {
  const Circuit c = generate_circuit(small_config(3));
  for (const Net& net : c.nets()) {
    EXPECT_GE(net.pins.size(), 2u);
  }
}

TEST(Generator, MeanDegreeNearTarget) {
  GeneratorConfig cfg = small_config(4);
  cfg.num_nets = 4000;
  cfg.num_cells = 4000;
  cfg.num_rows = 10;
  cfg.mean_pins_per_net = 3.5;
  const Circuit c = generate_circuit(cfg);
  const CircuitStats stats = compute_stats(c);
  EXPECT_NEAR(stats.mean_pins_per_net, 3.5, 0.25);
}

TEST(Generator, GiantNetsCreated) {
  GeneratorConfig cfg = small_config(5);
  cfg.giant_net_pins = {500, 100};
  const Circuit c = generate_circuit(cfg);
  EXPECT_EQ(c.num_nets(), cfg.num_nets + 2);
  const CircuitStats stats = compute_stats(c);
  EXPECT_EQ(stats.max_pins_on_net, 500u);
}

TEST(Generator, EquivalentPinFractionRoughlyRespected) {
  GeneratorConfig cfg = small_config(6);
  cfg.num_nets = 3000;
  cfg.equivalent_pin_fraction = 0.5;
  const Circuit c = generate_circuit(cfg);
  std::size_t both = 0;
  for (const Pin& pin : c.pins()) {
    if (pin.side == PinSide::Both) ++both;
  }
  const double fraction =
      static_cast<double>(both) / static_cast<double>(c.num_pins());
  EXPECT_NEAR(fraction, 0.5, 0.05);
}

TEST(Generator, CellsBalancedAcrossRows) {
  const Circuit c = generate_circuit(small_config(7));
  for (const Row& row : c.rows()) {
    EXPECT_EQ(row.cells.size(), 40u);  // 240 cells / 6 rows
  }
}

TEST(Generator, RejectsBadConfig) {
  GeneratorConfig cfg = small_config(8);
  cfg.num_rows = 0;
  EXPECT_THROW(generate_circuit(cfg), CheckError);
  cfg = small_config(8);
  cfg.mean_pins_per_net = 1.0;
  EXPECT_THROW(generate_circuit(cfg), CheckError);
  cfg = small_config(8);
  cfg.max_cell_width = cfg.min_cell_width - 1;
  EXPECT_THROW(generate_circuit(cfg), CheckError);
}

class GeneratorSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeedSweep, AlwaysValid) {
  GeneratorConfig cfg = small_config(GetParam());
  cfg.num_rows = 3 + GetParam() % 5;
  const Circuit c = generate_circuit(cfg);
  c.validate();  // throws on any structural violation
  EXPECT_GT(c.core_width(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedSweep,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(Suite, HasSixCircuits) {
  const auto suite = benchmark_suite(0.05);
  ASSERT_EQ(suite.size(), 6u);
  EXPECT_EQ(suite[0].name, "primary2");
  EXPECT_EQ(suite[5].name, "avq.large");
}

TEST(Suite, EntriesScaleProportionally) {
  const auto full = suite_entry("biomed", 1.0);
  const auto half = suite_entry("biomed", 0.5);
  EXPECT_NEAR(static_cast<double>(half.config.num_cells),
              static_cast<double>(full.config.num_cells) * 0.5, 2.0);
}

TEST(Suite, UnknownNameThrows) {
  EXPECT_THROW(suite_entry("nonexistent"), CheckError);
}

TEST(Suite, SmallScaleCircuitsBuildAndValidate) {
  for (const SuiteEntry& entry : benchmark_suite(0.02)) {
    const Circuit c = build_suite_circuit(entry);
    c.validate();
    EXPECT_GE(c.num_rows(), 2u) << entry.name;
    EXPECT_GE(c.num_nets(), 1u) << entry.name;
  }
}

TEST(Suite, AvqCircuitsHaveGiantClockNets) {
  const auto avq = suite_entry("avq.large", 0.1);
  ASSERT_FALSE(avq.config.giant_net_pins.empty());
  const Circuit c = build_suite_circuit(avq);
  const CircuitStats stats = compute_stats(c);
  EXPECT_GE(stats.max_pins_on_net, 300u);
  // The paper: 99% of avq nets are small despite the clock monsters.
  EXPECT_GT(stats.fraction_nets_small, 0.9);
}

TEST(Suite, SmallTestCircuitIsStable) {
  const Circuit a = small_test_circuit(7);
  const Circuit b = small_test_circuit(7);
  EXPECT_EQ(a.num_pins(), b.num_pins());
  a.validate();
}

}  // namespace
}  // namespace ptwgr
