#include "ptwgr/detail/left_edge.h"

#include <gtest/gtest.h>

#include "ptwgr/circuit/suite.h"
#include "ptwgr/route/router.h"
#include "ptwgr/support/rng.h"

namespace ptwgr {
namespace {

using Entry = std::pair<std::uint32_t, Interval>;

TEST(LeftEdge, EmptyChannel) {
  const ChannelTracks tracks = assign_tracks_left_edge({});
  EXPECT_EQ(tracks.num_tracks, 0u);
  EXPECT_TRUE(tracks.placed.empty());
  EXPECT_TRUE(tracks.valid());
}

TEST(LeftEdge, DisjointIntervalsShareOneTrack) {
  const ChannelTracks tracks = assign_tracks_left_edge(
      {Entry{1, {0, 10}}, Entry{2, {10, 20}}, Entry{3, {25, 30}}});
  EXPECT_EQ(tracks.num_tracks, 1u);
  EXPECT_TRUE(tracks.valid());
}

TEST(LeftEdge, OverlappingIntervalsStack) {
  const ChannelTracks tracks = assign_tracks_left_edge(
      {Entry{1, {0, 30}}, Entry{2, {10, 40}}, Entry{3, {20, 50}}});
  EXPECT_EQ(tracks.num_tracks, 3u);
  EXPECT_TRUE(tracks.valid());
}

TEST(LeftEdge, SameNetSpansMergeOntoOneTrack) {
  // Two touching spans of one net + an overlapping other net: two tracks,
  // with net 7's spans merged into a single placed interval.
  const ChannelTracks tracks = assign_tracks_left_edge(
      {Entry{7, {0, 20}}, Entry{7, {20, 40}}, Entry{9, {10, 30}}});
  EXPECT_EQ(tracks.num_tracks, 2u);
  std::size_t net7_intervals = 0;
  for (const PlacedInterval& p : tracks.placed) {
    if (p.net == 7) ++net7_intervals;
  }
  EXPECT_EQ(net7_intervals, 1u);
}

TEST(LeftEdge, MatchesDensityOnRandomInputs) {
  // LEA is optimal for interval graphs: its track count equals the maximum
  // overlap, which is exactly what the density metric computes.
  Rng rng(4242);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Entry> entries;
    std::vector<Interval> raw;
    const std::size_t n = 1 + rng.next_index(120);
    for (std::size_t i = 0; i < n; ++i) {
      const Coord lo = rng.next_int(0, 400);
      const Interval iv{lo, lo + rng.next_int(0, 80)};
      entries.emplace_back(static_cast<std::uint32_t>(rng.next_index(40)),
                           iv);
    }
    // Expected density: per-net merged intervals, then max overlap.
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.first < b.first; });
    std::vector<Interval> merged_all;
    std::size_t i = 0;
    while (i < entries.size()) {
      const std::uint32_t net = entries[i].first;
      std::vector<Interval> spans;
      for (; i < entries.size() && entries[i].first == net; ++i) {
        spans.push_back(entries[i].second);
      }
      for (const Interval& m : merge_intervals(spans)) {
        merged_all.push_back(m);
      }
    }
    const std::int64_t density = max_overlap(merged_all);

    const ChannelTracks tracks = assign_tracks_left_edge(entries);
    ASSERT_TRUE(tracks.valid());
    ASSERT_EQ(static_cast<std::int64_t>(tracks.num_tracks), density)
        << "trial " << trial;
  }
}

class LeftEdgeRoutedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LeftEdgeRoutedSweep, RealizesExactlyTheReportedTracks) {
  // End-to-end cross-validation: for a real routing, the detailed router
  // realizes every channel in exactly the density the metrics report, so
  // the global router's quality number is the physical track count.
  RouterOptions options;
  options.seed = GetParam();
  const RoutingResult result =
      route_serial(small_test_circuit(GetParam(), 5, 30), options);
  const DetailedRouting detailed =
      assign_all_tracks(result.circuit, result.wires);
  ASSERT_EQ(detailed.channels.size(), result.metrics.channel_density.size());
  for (std::size_t c = 0; c < detailed.channels.size(); ++c) {
    EXPECT_TRUE(detailed.channels[c].valid()) << "channel " << c;
    EXPECT_EQ(static_cast<std::int64_t>(detailed.channels[c].num_tracks),
              result.metrics.channel_density[c])
        << "channel " << c;
  }
  EXPECT_EQ(detailed.total_tracks(), result.metrics.track_count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeftEdgeRoutedSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(LeftEdge, DegenerateStubsOccupyATrackLocally) {
  const ChannelTracks tracks =
      assign_tracks_left_edge({Entry{1, {5, 5}}, Entry{2, {5, 5}}});
  EXPECT_EQ(tracks.num_tracks, 2u);
}

}  // namespace
}  // namespace ptwgr
