// Golden-schema and determinism tests of the versioned JSON run report:
// field presence for serial and parallel runs, all five phase snapshots
// (including the congestion heatmap), and byte-identical serialization for
// a fixed seed once the machine-dependent timings are cleared.
#include "ptwgr/obs/run_report.h"

#include <gtest/gtest.h>

#include "ptwgr/circuit/circuit_stats.h"
#include "ptwgr/circuit/suite.h"
#include "ptwgr/parallel/parallel_router.h"
#include "ptwgr/route/router.h"
#include "ptwgr/support/json.h"

namespace ptwgr {
namespace {

using obs::Phase;
using obs::QualityCollector;
using obs::RunReport;

/// Routes the small test circuit serially with a collector installed and
/// returns the filled report.
RunReport serial_report(std::uint64_t seed) {
  const Circuit circuit = small_test_circuit();
  RouterOptions router;
  router.seed = seed;
  QualityCollector collector;
  obs::set_active_quality(&collector);
  const RoutingResult result = route_serial(circuit, router);
  obs::set_active_quality(nullptr);

  RunReport run;
  run.algorithm = "serial";
  run.seed = seed;
  run.router = router;
  run.circuit_source = "small_test_circuit";
  run.circuit = compute_stats(circuit);
  run.metrics = result.metrics;
  run.step_timings = result.timings;
  run.has_step_timings = true;
  run.fill_snapshots(collector);
  return run;
}

RunReport parallel_report(ParallelAlgorithm algorithm, int ranks,
                          std::uint64_t seed) {
  const Circuit circuit = small_test_circuit();
  ParallelOptions options;
  options.router.seed = seed;
  QualityCollector collector;
  obs::set_active_quality(&collector);
  const ParallelRoutingResult result =
      route_parallel(circuit, algorithm, ranks, options);
  obs::set_active_quality(nullptr);

  RunReport run;
  run.algorithm = to_string(algorithm);
  run.seed = seed;
  run.ranks = ranks;
  run.platform = "ideal";
  run.router = options.router;
  run.circuit_source = "small_test_circuit";
  run.circuit = compute_stats(circuit);
  run.metrics = result.metrics;
  run.modeled_seconds = result.modeled_seconds();
  run.wall_seconds = result.report.wall_seconds;
  run.total_cpu_seconds = result.report.total_cpu_seconds();
  for (std::size_t r = 0; r < result.report.rank_comm.size(); ++r) {
    obs::RankReport rank;
    rank.rank = static_cast<int>(r);
    rank.vtime_seconds = result.report.rank_vtime[r];
    rank.cpu_seconds = result.report.rank_cpu_seconds[r];
    rank.comm = result.report.rank_comm[r];
    run.rank_reports.push_back(rank);
  }
  run.fill_snapshots(collector);
  return run;
}

/// Every structural expectation of the versioned schema in one place.
void expect_schema(const json::Value& doc, const std::string& algorithm,
                   int ranks) {
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->as_string(), "ptwgr.run_report");
  ASSERT_NE(doc.find("version"), nullptr);
  EXPECT_EQ(doc.find("version")->as_number(), obs::kRunReportVersion);

  const json::Value* config = doc.find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->find("algorithm")->as_string(), algorithm);
  EXPECT_EQ(config->find("ranks")->as_number(), ranks);
  ASSERT_NE(config->find("router"), nullptr);
  EXPECT_NE(config->find("router")->find("coarse_passes"), nullptr);

  const json::Value* circuit = doc.find("circuit");
  ASSERT_NE(circuit, nullptr);
  EXPECT_GT(circuit->find("nets")->as_number(), 0.0);

  const json::Value* snapshots = doc.find("snapshots");
  ASSERT_NE(snapshots, nullptr);
  ASSERT_EQ(snapshots->as_array().size(), obs::kNumPhases);
  const char* expected_phases[] = {"steiner", "coarse", "feedthrough",
                                   "connect", "switchable"};
  for (std::size_t i = 0; i < obs::kNumPhases; ++i) {
    const json::Value& snap = snapshots->as_array()[i];
    ASSERT_NE(snap.find("phase"), nullptr);
    EXPECT_EQ(snap.find("phase")->as_string(), expected_phases[i]);
  }
  // Phase-specific payloads: trees after step 1, the congestion heatmap
  // after step 2, feedthroughs after step 3, wires + density after 4/5.
  const auto& snaps = snapshots->as_array();
  EXPECT_NE(snaps[0].find("trees"), nullptr);
  const json::Value* heatmap = snaps[1].find("heatmap");
  ASSERT_NE(heatmap, nullptr);
  ASSERT_NE(heatmap->find("channel_use"), nullptr);
  EXPECT_GT(heatmap->find("channel_use")->find("max")->as_number(), 0.0);
  EXPECT_NE(snaps[1].find("flip_sweep"), nullptr);
  EXPECT_NE(snaps[2].find("feedthroughs"), nullptr);
  EXPECT_NE(snaps[3].find("wires"), nullptr);
  const json::Value* density = snaps[4].find("density");
  ASSERT_NE(density, nullptr);
  EXPECT_TRUE(density->find("exact")->as_bool());
  EXPECT_NE(snaps[4].find("flip_sweep"), nullptr);

  const json::Value* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_GT(metrics->find("tracks")->as_number(), 0.0);
  EXPECT_GT(metrics->find("coarse_sweep")->find("decisions")->as_number(),
            0.0);
}

TEST(RunReport, SerialSchemaIsComplete) {
  const RunReport run = serial_report(7);
  const json::Value doc = json::parse(run.to_json());
  expect_schema(doc, "serial", 1);
  ASSERT_NE(doc.find("timing"), nullptr);
  EXPECT_NE(doc.find("timing")->find("serial_step_seconds"), nullptr);
}

TEST(RunReport, SerialDeterministicForSeed) {
  RunReport a = serial_report(42);
  RunReport b = serial_report(42);
  a.clear_volatile();
  b.clear_volatile();
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(RunReport, DifferentSeedsDiffer) {
  RunReport a = serial_report(1);
  RunReport b = serial_report(2);
  a.clear_volatile();
  b.clear_volatile();
  EXPECT_NE(a.to_json(), b.to_json());
}

struct ParallelCase {
  ParallelAlgorithm algorithm;
  int ranks;
};

class RunReportParallel : public ::testing::TestWithParam<ParallelCase> {};

TEST_P(RunReportParallel, SchemaIsComplete) {
  const auto [algorithm, ranks] = GetParam();
  const RunReport run = parallel_report(algorithm, ranks, 7);
  const json::Value doc = json::parse(run.to_json());
  expect_schema(doc, to_string(algorithm), ranks);
  const json::Value* rank_array = doc.find("ranks");
  ASSERT_NE(rank_array, nullptr);
  ASSERT_EQ(rank_array->as_array().size(), static_cast<std::size_t>(ranks));
  EXPECT_NE(rank_array->as_array()[0].find("comm"), nullptr);
  // The merged feedthrough distribution matches the final metrics.
  const auto& snaps = doc.find("snapshots")->as_array();
  EXPECT_EQ(snaps[2].find("feedthroughs")->find("total")->as_number(),
            doc.find("metrics")->find("feedthroughs")->as_number());
}

TEST_P(RunReportParallel, DeterministicForSeed) {
  const auto [algorithm, ranks] = GetParam();
  RunReport a = parallel_report(algorithm, ranks, 99);
  RunReport b = parallel_report(algorithm, ranks, 99);
  a.clear_volatile();
  b.clear_volatile();
  EXPECT_EQ(a.to_json(), b.to_json());
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, RunReportParallel,
    ::testing::Values(ParallelCase{ParallelAlgorithm::RowWise, 3},
                      ParallelCase{ParallelAlgorithm::NetWise, 3},
                      ParallelCase{ParallelAlgorithm::Hybrid, 3}),
    [](const ::testing::TestParamInfo<ParallelCase>& param) {
      std::string name = to_string(param.param.algorithm);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(RunReport, SerialFlipCountersReachRoutingMetrics) {
  const Circuit circuit = small_test_circuit();
  const RoutingResult result = route_serial(circuit);
  EXPECT_GT(result.metrics.coarse_decisions, 0);
  EXPECT_GT(result.metrics.switch_decisions, 0);
  EXPECT_GE(result.metrics.coarse_flips, 0);
  EXPECT_LE(result.metrics.coarse_flips, result.metrics.coarse_decisions);
  EXPECT_LE(result.metrics.switch_flips, result.metrics.switch_decisions);
}

TEST(RunReport, ParallelFlipCountersMatchSerialShape) {
  const Circuit circuit = small_test_circuit();
  ParallelOptions options;
  const ParallelRoutingResult result =
      route_parallel(circuit, ParallelAlgorithm::NetWise, 2, options);
  EXPECT_GT(result.metrics.coarse_decisions, 0);
  EXPECT_GT(result.metrics.switch_decisions, 0);
  EXPECT_LE(result.metrics.coarse_flips, result.metrics.coarse_decisions);
}

}  // namespace
}  // namespace ptwgr
