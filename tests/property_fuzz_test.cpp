// Randomized property sweeps across module boundaries: for a wide range of
// generated circuits and parameters, the structural invariants that every
// routing must satisfy hold — no crashes, no disconnected nets, consistent
// metrics, realizable track counts.
#include <gtest/gtest.h>

#include <sstream>

#include "ptwgr/circuit/generator.h"
#include "ptwgr/circuit/io.h"
#include "ptwgr/detail/left_edge.h"
#include "ptwgr/parallel/parallel_router.h"
#include "ptwgr/route/router.h"
#include "ptwgr/support/rng.h"

namespace ptwgr {
namespace {

GeneratorConfig random_config(Rng& rng) {
  GeneratorConfig config;
  config.seed = rng();
  config.num_rows = 2 + rng.next_index(10);
  config.num_cells = config.num_rows * (5 + rng.next_index(40));
  config.num_nets = 1 + rng.next_index(config.num_cells + 30);
  config.mean_pins_per_net = 2.0 + rng.next_double() * 3.0;
  config.row_spread = rng.next_double() * 3.0;
  config.x_spread = rng.next_double() * 0.3;
  config.equivalent_pin_fraction = rng.next_double();
  config.min_cell_width = 1 + static_cast<Coord>(rng.next_index(6));
  config.max_cell_width =
      config.min_cell_width + static_cast<Coord>(rng.next_index(12));
  if (rng.next_bool(0.2)) {
    config.giant_net_pins = {10 + rng.next_index(60)};
  }
  return config;
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, SerialRoutingInvariantsHold) {
  Rng rng(GetParam() * 7919 + 13);
  const GeneratorConfig config = random_config(rng);
  const Circuit circuit = generate_circuit(config);
  circuit.validate();

  RouterOptions options;
  options.seed = rng();
  options.column_width = 8 + static_cast<Coord>(rng.next_index(64));
  options.coarse_passes = static_cast<int>(rng.next_index(4));
  options.switchable_passes = static_cast<int>(rng.next_index(4));
  const RoutingResult result = route_serial(circuit, options);

  // Invariant 1: the routed circuit stays structurally valid.
  result.circuit.validate();
  // Invariant 2: every multi-pin net is connected.
  const auto violations = verify_routing(result.circuit, result.wires);
  ASSERT_TRUE(violations.empty())
      << "config seed " << config.seed << ": " << violations.front();
  // Invariant 3: densities sum to the track count.
  std::int64_t sum = 0;
  for (const auto d : result.metrics.channel_density) sum += d;
  ASSERT_EQ(sum, result.metrics.track_count);
  // Invariant 4: the detailed router realizes exactly that many tracks.
  const DetailedRouting detailed =
      assign_all_tracks(result.circuit, result.wires);
  ASSERT_EQ(detailed.total_tracks(), result.metrics.track_count);
  // Invariant 5: the input netlist round-trips through the text format.
  std::stringstream buffer;
  write_circuit(buffer, circuit);
  const Circuit restored = read_circuit(buffer);
  ASSERT_EQ(restored.num_pins(), circuit.num_pins());
}

TEST_P(FuzzSweep, ParallelRoutingInvariantsHold) {
  Rng rng(GetParam() * 104729 + 7);
  const GeneratorConfig config = random_config(rng);
  const Circuit circuit = generate_circuit(config);

  const int max_ranks =
      static_cast<int>(std::min<std::size_t>(circuit.num_rows(), 6));
  const int ranks = 1 + static_cast<int>(rng.next_index(
                            static_cast<std::size_t>(max_ranks)));
  const auto algorithm = static_cast<ParallelAlgorithm>(rng.next_index(3));

  ParallelOptions options;
  options.router.seed = rng();
  options.coarse_sync_period = 1 + rng.next_index(4096);
  options.switch_sync_period = 1 + rng.next_index(4096);
  const auto result = route_parallel(circuit, algorithm, ranks, options);

  std::int64_t sum = 0;
  for (const auto d : result.metrics.channel_density) sum += d;
  ASSERT_EQ(sum, result.metrics.track_count);
  ASSERT_GE(result.metrics.track_count, 0);
  ASSERT_EQ(result.report.rank_vtime.size(),
            static_cast<std::size_t>(ranks));
  // Determinism: same inputs, same result.
  const auto again = route_parallel(circuit, algorithm, ranks, options);
  ASSERT_EQ(again.metrics.track_count, result.metrics.track_count)
      << to_string(algorithm) << " ranks=" << ranks;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace ptwgr
