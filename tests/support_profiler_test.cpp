// Tests of the sampling CPU profiler: folded-stack parsing and hot-frame
// rendering (pure functions, deterministic), and the SIGPROF sampling loop
// itself — single-active enforcement, sample capture from a busy loop, and
// clean stop/restart.  The live-sampling tests burn CPU time, so they keep
// the workload small and gate on "at least one sample" rather than counts.
#include "ptwgr/support/profiler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>

namespace ptwgr {
namespace {

TEST(FoldedStacks, SummarizeCountsSelfAndTotal) {
  const std::string folded =
      "main;work;inner 3\n"
      "main;work 2\n"
      "main;other 1\n";
  const FoldedSummary summary = summarize_folded(folded);
  EXPECT_EQ(summary.total_samples, 6u);
  // Self time: leaf occurrences only.  Total time: any appearance in the
  // stack, counted once per line.
  std::uint64_t main_self = 0, main_total = 0;
  std::uint64_t work_self = 0, work_total = 0;
  for (const HotFrame& frame : summary.frames) {
    if (frame.name == "main") {
      main_self = frame.self;
      main_total = frame.total;
    } else if (frame.name == "work") {
      work_self = frame.self;
      work_total = frame.total;
    }
  }
  EXPECT_EQ(main_self, 0u);
  EXPECT_EQ(main_total, 6u);
  EXPECT_EQ(work_self, 2u);
  EXPECT_EQ(work_total, 5u);
}

TEST(FoldedStacks, SummarizeIgnoresMalformedLines) {
  const FoldedSummary summary = summarize_folded(
      "no trailing count\n"
      "ok 4\n"
      "\n"
      "trailing-not-a-number x3\n");
  EXPECT_EQ(summary.total_samples, 4u);
  ASSERT_EQ(summary.frames.size(), 1u);
  EXPECT_EQ(summary.frames[0].name, "ok");
}

TEST(FoldedStacks, RecursiveFrameCountedOncePerStack) {
  // A frame appearing twice in one stack (recursion) contributes once to
  // its total, or inclusive time would exceed 100%.
  const FoldedSummary summary = summarize_folded("f;f;f 5\n");
  ASSERT_EQ(summary.frames.size(), 1u);
  EXPECT_EQ(summary.frames[0].total, 5u);
  EXPECT_EQ(summary.frames[0].self, 5u);
}

TEST(FoldedStacks, RenderHotFramesOrdersBySelfTime) {
  const FoldedSummary summary = summarize_folded(
      "main;hot 8\n"
      "main;cold 2\n");
  const std::string table = render_hot_frames(summary, 10);
  EXPECT_NE(table.find("hot frames (10 samples)"), std::string::npos);
  const std::size_t hot = table.find("hot\n");
  const std::size_t cold = table.find("cold\n");
  ASSERT_NE(hot, std::string::npos);
  ASSERT_NE(cold, std::string::npos);
  EXPECT_LT(hot, cold);
  // top_k truncates.
  const std::string top1 = render_hot_frames(summary, 1);
  EXPECT_NE(top1.find("hot"), std::string::npos);
  EXPECT_EQ(top1.find("cold"), std::string::npos);
}

/// Burns CPU until `done()` holds or `budget` of wall time has elapsed
/// (SIGPROF fires on CPU time, so this loop must actually compute).
template <typename Done>
void burn_until(Done done, std::chrono::seconds budget) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  volatile double sink = 0.0;
  while (!done() && std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  }
}

TEST(Profiler, CapturesSamplesFromBusyLoop) {
  SamplingProfiler::Options options;
  options.hz = 997.0;
  SamplingProfiler profiler(options);
  ASSERT_TRUE(profiler.start());
  EXPECT_TRUE(profiler.running());
  burn_until([&profiler] { return profiler.sample_count() >= 5; },
             std::chrono::seconds(10));
  profiler.stop();
  EXPECT_FALSE(profiler.running());
  EXPECT_GE(profiler.sample_count(), 1u);
  const std::string folded = profiler.folded();
  EXPECT_FALSE(folded.empty());
  // Folded lines end in a count and contain no raw ';' inside frame names
  // (symbolization replaces them), so the summary parses every line.  The
  // fold drops handler-only stacks, so the parsed total is bounded by the
  // raw sample count.
  const FoldedSummary summary = summarize_folded(folded);
  EXPECT_GT(summary.total_samples, 0u);
  EXPECT_LE(summary.total_samples, profiler.sample_count());
  EXPECT_GT(summary.frames.size(), 0u);
}

TEST(Profiler, SecondProfilerCannotStartWhileFirstRuns) {
  SamplingProfiler::Options options;
  options.hz = 101.0;
  SamplingProfiler first(options);
  ASSERT_TRUE(first.start());
  SamplingProfiler second(options);
  EXPECT_FALSE(second.start());
  EXPECT_FALSE(second.running());
  first.stop();
  // Once the first stops, the slot frees up.
  EXPECT_TRUE(second.start());
  second.stop();
}

TEST(Profiler, StopWithoutStartIsANoOp) {
  SamplingProfiler profiler;
  profiler.stop();
  EXPECT_EQ(profiler.sample_count(), 0u);
  EXPECT_EQ(profiler.folded(), "");
}

TEST(Profiler, BoundedSampleBufferCountsDrops) {
  SamplingProfiler::Options options;
  options.hz = 997.0;
  options.max_samples = 4;  // tiny: overflow almost immediately
  SamplingProfiler profiler(options);
  ASSERT_TRUE(profiler.start());
  burn_until([&profiler] { return profiler.dropped_samples() >= 1; },
             std::chrono::seconds(10));
  profiler.stop();
  EXPECT_GE(profiler.dropped_samples(), 1u);
  EXPECT_EQ(profiler.sample_count(), 4u);
  EXPECT_LE(summarize_folded(profiler.folded()).total_samples, 4u);
}

}  // namespace
}  // namespace ptwgr
