// Tests of the resource-observability sink: disabled-by-default contract,
// allocation charging and phase/rank attribution, exclusion windows, tagged
// arenas, report serialization, and — the acceptance bar — byte-identical
// canonical reports across same-seed runs for the serial pipeline and all
// three parallel algorithms, with routing quality unchanged by measurement.
#include "ptwgr/obs/resource.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ptwgr/circuit/suite.h"
#include "ptwgr/parallel/parallel_router.h"
#include "ptwgr/route/router.h"
#include "ptwgr/support/arena.h"
#include "ptwgr/support/json.h"
#include "ptwgr/support/segment_tree.h"

namespace ptwgr::obs {
namespace {

/// Installs a collector for one test and removes it on scope exit so the
/// process-global stays clean across tests.
class ResourceGuard {
 public:
  explicit ResourceGuard(ResourceCollector& collector) {
    set_active_resource(&collector);
  }
  ~ResourceGuard() {
    resource_set_phase(nullptr);
    set_active_resource(nullptr);
  }
  ResourceGuard(const ResourceGuard&) = delete;
  ResourceGuard& operator=(const ResourceGuard&) = delete;
};

std::uint64_t phase_count(const ResourceCollector::Snapshot& snap,
                          const std::string& phase) {
  for (const auto& totals : snap.phases) {
    if (totals.phase == phase) return totals.count;
  }
  return 0;
}

TEST(Resource, DisabledByDefault) {
  EXPECT_EQ(active_resource(), nullptr);
  // Allocations with no collector installed must not crash and must not be
  // recorded anywhere (this also covers the one-relaxed-load fast path).
  auto p = std::make_unique<int[]>(64);
  p.reset();
}

TEST(Resource, ChargesAllocationsToCurrentPhase) {
  ResourceCollector collector;
  const ResourceGuard guard(collector);
  resource_set_phase("alpha");
  auto a = std::make_unique<char[]>(1000);
  resource_set_phase("beta");
  auto b = std::make_unique<char[]>(2000);
  auto c = std::make_unique<char[]>(3000);
  resource_set_phase(nullptr);
  const auto snap = collector.snapshot();
  EXPECT_GE(phase_count(snap, "alpha"), 1u);
  EXPECT_GE(phase_count(snap, "beta"), 2u);
  EXPECT_GE(snap.total_bytes, 6000u);
  EXPECT_GT(snap.live_bytes, 0);
  EXPECT_GE(snap.peak_live_bytes, snap.live_bytes);
}

TEST(Resource, FreeBalancesLiveBytes) {
  ResourceCollector collector;
  const ResourceGuard guard(collector);
  const std::int64_t before = collector.snapshot().live_bytes;
  {
    auto p = std::make_unique<char[]>(1 << 16);
    EXPECT_GE(collector.snapshot().live_bytes, before + (1 << 16));
  }
  // The block's usable size was discharged on free.  Ambient test-machinery
  // allocations may shift the floor by a few bytes, so assert the 64 KiB
  // block is gone rather than exact equality.
  EXPECT_LT(collector.snapshot().live_bytes, before + (1 << 12));
}

TEST(Resource, ExclusionWindowKeepsAllocationsOutOfCanonicalRecord) {
  ResourceCollector collector;
  const ResourceGuard guard(collector);
  const auto before = collector.snapshot();
  {
    const ScopedResourceExclusion exclude;
    auto p = std::make_unique<char[]>(1 << 12);
    (void)p;
  }
  const auto after = collector.snapshot();
  EXPECT_EQ(after.total_count, before.total_count);
  EXPECT_GT(after.excluded_count, before.excluded_count);
}

TEST(Resource, ScopedRankAttributesToRankCells) {
  ResourceCollector collector;
  const ResourceGuard guard(collector);
  {
    const ScopedResourceRank rank(3);
    resource_set_phase("ranked");
    auto p = std::make_unique<char[]>(512);
    (void)p;
  }
  const auto snap = collector.snapshot();
  bool found = false;
  for (const auto& cell : snap.cells) {
    if (cell.phase == "ranked" && cell.rank == 3) found = cell.count >= 1;
  }
  EXPECT_TRUE(found);
}

TEST(Resource, ArenaTagsChargeTaggedStructures) {
  ResourceCollector collector;
  const ResourceGuard guard(collector);  // install captures arena baselines
  ArenaSlot* slot = arena_slot("resource_test_tree");
  const LazySegmentTree tree(256, slot);
  const auto snap = collector.snapshot();
  bool found = false;
  for (const auto& arena : snap.arenas) {
    if (arena.tag == "resource_test_tree") {
      found = true;
      EXPECT_GE(arena.count, 3u);  // max_, sum_, tag_ node arrays
      EXPECT_GT(arena.bytes, 0u);
      EXPECT_GT(arena.live_bytes, 0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Resource, ReportJsonParsesAndCanonicalFormStripsVolatile) {
  ResourceCollector collector;
  {
    const ResourceGuard guard(collector);
    resource_set_phase("work");
    auto p = std::make_unique<char[]>(4096);
    (void)p;
    resource_set_phase(nullptr);
  }
  ResourceMeta meta;
  meta.algorithm = "serial";
  meta.circuit_source = "unit \"quoted\"\n";
  meta.seed = 7;
  meta.ranks = 1;
  const std::string full =
      resource_report_to_json(collector, meta, /*include_volatile=*/true);
  const std::string canonical =
      resource_report_to_json(collector, meta, /*include_volatile=*/false);
  const json::Value doc = json::parse(full);
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->as_string(), "ptwgr.resource_report");
  EXPECT_NE(full.find("\"volatile\""), std::string::npos);
  EXPECT_EQ(canonical.find("\"volatile\""), std::string::npos);
  EXPECT_EQ(canonical.find("rss"), std::string::npos);
  EXPECT_EQ(canonical.find("elapsed_seconds"), std::string::npos);
  // The hostile meta string survives the shared escaping helper.
  const json::Value cdoc = json::parse(canonical);
  ASSERT_NE(cdoc.find_path("meta.circuit_source"), nullptr);
  EXPECT_EQ(cdoc.find_path("meta.circuit_source")->as_string(),
            meta.circuit_source);
  // Tables render from the parsed document.
  const std::string tables = render_resource_tables(doc);
  EXPECT_NE(tables.find("work"), std::string::npos);
  EXPECT_THROW(render_resource_tables(json::parse(R"({"schema":"x"})")),
               std::runtime_error);
}

// --- canonical-report determinism ----------------------------------------
//
// Same seed ⇒ byte-identical canonical resource reports, and installing the
// collector must not change routing quality.  A warm-up run absorbs one-time
// lazy library allocations before the measured pair.

ResourceMeta test_meta(const std::string& algorithm, int ranks) {
  ResourceMeta meta;
  meta.algorithm = algorithm;
  meta.circuit_source = "small_test_circuit";
  meta.seed = 7;
  meta.ranks = ranks;
  return meta;
}

std::string canonical_serial_run() {
  ResourceCollector collector;
  {
    const ResourceGuard guard(collector);
    route_serial(small_test_circuit(11, 6, 18));
  }
  return resource_report_to_json(collector, test_meta("serial", 1),
                                 /*include_volatile=*/false);
}

std::string canonical_run(ParallelAlgorithm algorithm) {
  ResourceCollector collector;
  {
    const ResourceGuard guard(collector);
    route_parallel(small_test_circuit(21, 8, 30), algorithm, 4);
  }
  return resource_report_to_json(collector,
                                 test_meta(to_string(algorithm), 4),
                                 /*include_volatile=*/false);
}

TEST(ResourceDeterminism, SerialCanonicalReportIsSeedDeterministic) {
  route_serial(small_test_circuit(11, 6, 18));  // warm-up, uncollected
  EXPECT_EQ(canonical_serial_run(), canonical_serial_run());
}

TEST(ResourceDeterminism, RowWiseCanonicalReportIsSeedDeterministic) {
  route_parallel(small_test_circuit(21, 8, 30), ParallelAlgorithm::RowWise,
                 4);  // warm-up
  EXPECT_EQ(canonical_run(ParallelAlgorithm::RowWise),
            canonical_run(ParallelAlgorithm::RowWise));
}

TEST(ResourceDeterminism, NetWiseCanonicalReportIsSeedDeterministic) {
  route_parallel(small_test_circuit(21, 8, 30), ParallelAlgorithm::NetWise,
                 4);  // warm-up
  EXPECT_EQ(canonical_run(ParallelAlgorithm::NetWise),
            canonical_run(ParallelAlgorithm::NetWise));
}

TEST(ResourceDeterminism, HybridCanonicalReportIsSeedDeterministic) {
  route_parallel(small_test_circuit(21, 8, 30), ParallelAlgorithm::Hybrid,
                 4);  // warm-up
  EXPECT_EQ(canonical_run(ParallelAlgorithm::Hybrid),
            canonical_run(ParallelAlgorithm::Hybrid));
}

TEST(ResourceDeterminism, CollectorDoesNotPerturbRoutingQuality) {
  const RoutingResult bare = route_serial(small_test_circuit(11, 6, 18));
  ResourceCollector collector;
  RoutingResult measured = [&] {
    const ResourceGuard guard(collector);
    return route_serial(small_test_circuit(11, 6, 18));
  }();
  EXPECT_EQ(bare.metrics.to_string(), measured.metrics.to_string());
}

}  // namespace
}  // namespace ptwgr::obs
