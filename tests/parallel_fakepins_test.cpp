#include "ptwgr/parallel/fake_pins.h"

#include <gtest/gtest.h>

#include "ptwgr/circuit/builder.h"
#include "ptwgr/circuit/suite.h"
#include "ptwgr/parallel/subcircuit.h"

namespace ptwgr {
namespace {

SteinerTree tree_with_edge(NetId net, RoutePoint a, RoutePoint b) {
  SteinerTree tree;
  tree.net = net;
  tree.nodes.push_back(SteinerNode{a, PinId{}});
  tree.nodes.push_back(SteinerNode{b, PinId{}});
  tree.edges.push_back(TreeEdge{0, 1});
  return tree;
}

TEST(FakePins, NoCrossingNoRecords) {
  const RowPartition rows({0, 4, 8});
  // Edge fully inside block 0.
  const auto t = tree_with_edge(NetId{7}, {10, 0}, {50, 3});
  EXPECT_TRUE(compute_fake_pins(t, rows).empty());
}

TEST(FakePins, SameRowEdgeIgnored) {
  const RowPartition rows({0, 4, 8});
  const auto t = tree_with_edge(NetId{7}, {10, 2}, {90, 2});
  EXPECT_TRUE(compute_fake_pins(t, rows).empty());
}

TEST(FakePins, SingleBoundaryCrossingYieldsTwoRecords) {
  const RowPartition rows({0, 4, 8});
  const auto t = tree_with_edge(NetId{7}, {10, 2}, {50, 6});
  const auto records = compute_fake_pins(t, rows);
  ASSERT_EQ(records.size(), 2u);
  // Each side's record names the row just *across* its boundary (the halo
  // position), both at the lower endpoint's x.
  EXPECT_EQ(records[0], (FakePinRecord{7, /*block=*/0, /*row=*/4, 10}));
  EXPECT_EQ(records[1], (FakePinRecord{7, /*block=*/1, /*row=*/3, 10}));
}

TEST(FakePins, PassThroughBlockGetsEntryAndExit) {
  const RowPartition rows({0, 3, 6, 9});
  // Edge from block 0 to block 2 passes through block 1 entirely.
  const auto t = tree_with_edge(NetId{1}, {20, 1}, {80, 8});
  const auto records = compute_fake_pins(t, rows);
  ASSERT_EQ(records.size(), 4u);
  // Block 1 receives entry (row 2, bottom halo) and exit (row 6, top halo).
  std::size_t in_block1 = 0;
  for (const FakePinRecord& r : records) {
    if (r.block == 1) {
      ++in_block1;
      EXPECT_TRUE(r.row == 2 || r.row == 6);
    }
    EXPECT_EQ(r.x, 20);
  }
  EXPECT_EQ(in_block1, 2u);
}

TEST(FakePins, DuplicateCrossingsDeduplicated) {
  const RowPartition rows({0, 4, 8});
  SteinerTree tree;
  tree.net = NetId{3};
  tree.nodes = {SteinerNode{{10, 1}, PinId{}}, SteinerNode{{10, 6}, PinId{}},
                SteinerNode{{10, 7}, PinId{}}};
  tree.edges = {TreeEdge{0, 1}, TreeEdge{0, 2}};  // both cross at x=10
  const auto records = compute_fake_pins(tree, rows);
  EXPECT_EQ(records.size(), 2u);
}

TEST(FakePins, SplitByBlockRoutesByDestination) {
  const RowPartition rows({0, 4, 8});
  std::vector<FakePinRecord> records{
      {1, 0, 4, 10}, {1, 1, 3, 10}, {2, 1, 3, 5}};
  const auto per_block = split_by_block(records, rows);
  ASSERT_EQ(per_block.size(), 2u);
  EXPECT_EQ(per_block[0].size(), 1u);
  EXPECT_EQ(per_block[1].size(), 2u);
}

TEST(SubCircuit, ExtractsRowsCellsAndPins) {
  const Circuit global = [] {
    CircuitBuilder b;
    const RowId r0 = b.add_row();
    const RowId r1 = b.add_row();
    const RowId r2 = b.add_row();
    const CellId c0 = b.add_cell(r0, 8);
    const CellId c1 = b.add_cell(r1, 8);
    const CellId c2 = b.add_cell(r2, 8);
    const NetId n = b.add_net();
    b.add_pin(c0, n, 1, PinSide::Top);
    b.add_pin(c1, n, 2, PinSide::Both);
    b.add_pin(c2, n, 3, PinSide::Bottom);
    return std::move(b).build();
  }();
  const RowPartition rows({0, 2, 3});

  const SubCircuit sub0 = extract_subcircuit(global, rows, 0, {});
  // Block 0: two real rows plus a top halo (it has an upper neighbour).
  EXPECT_FALSE(sub0.has_bottom_halo);
  EXPECT_TRUE(sub0.has_top_halo);
  EXPECT_EQ(sub0.circuit.num_rows(), 3u);
  EXPECT_EQ(sub0.num_real_rows(), 2u);
  EXPECT_EQ(sub0.circuit.num_cells(), 2u);
  EXPECT_EQ(sub0.circuit.num_pins(), 2u);
  EXPECT_EQ(sub0.circuit.num_nets(), 1u);
  EXPECT_EQ(sub0.global_net[0], NetId{0});
  EXPECT_EQ(sub0.first_row, 0u);
  EXPECT_EQ(sub0.global_channel(2), 2u);

  const SubCircuit sub1 = extract_subcircuit(global, rows, 1, {});
  // Block 1: one real row plus a bottom halo.
  EXPECT_TRUE(sub1.has_bottom_halo);
  EXPECT_FALSE(sub1.has_top_halo);
  EXPECT_EQ(sub1.circuit.num_rows(), 2u);
  EXPECT_EQ(sub1.num_real_rows(), 1u);
  EXPECT_EQ(sub1.circuit.num_pins(), 1u);
  EXPECT_EQ(sub1.first_row, 2u);
  // Local channel 2 sits above the real row; local channel 1 — between the
  // halo and the real row — is the shared boundary channel (sub0's local
  // channel 2).
  EXPECT_EQ(sub1.global_channel(2), 3u);
  EXPECT_EQ(sub1.global_channel(1), 2u);
  EXPECT_EQ(sub1.global_row(1), 2u);  // real row
  EXPECT_EQ(sub1.global_row(0), 1u);  // bottom halo stands for row 1
}

TEST(SubCircuit, PreservesGlobalPlacements) {
  Circuit global = small_test_circuit(3, 6, 20);
  const RowPartition rows = partition_rows(global, 3);
  for (int block = 0; block < 3; ++block) {
    const SubCircuit sub = extract_subcircuit(global, rows, block, {});
    // Every local pin must sit exactly where its global twin sits.
    std::size_t checked = 0;
    for (std::size_t p = 0; p < global.num_pins(); ++p) {
      const PinId gpid{static_cast<std::uint32_t>(p)};
      if (rows.owner_of_row(global.pin_row(gpid).index()) != block) continue;
      ++checked;
    }
    std::size_t local_total = sub.circuit.num_pins();
    EXPECT_EQ(local_total, checked);
  }
}

TEST(SubCircuit, FakePinsLandOnHaloRows) {
  const Circuit global = small_test_circuit(4, 4, 15);
  const RowPartition rows = partition_rows(global, 2);
  // Block 0's top-boundary fake pin: row just across the boundary.
  const std::vector<FakePinRecord> fakes{
      {0, 0, static_cast<std::uint32_t>(rows.end_row(0)), 42}};
  const SubCircuit sub = extract_subcircuit(global, rows, 0, fakes);
  bool found = false;
  for (std::size_t p = 0; p < sub.circuit.num_pins(); ++p) {
    const Pin& pin = sub.circuit.pin(PinId{static_cast<std::uint32_t>(p)});
    if (pin.is_fake()) {
      found = true;
      EXPECT_EQ(pin.fake_x, 42);
      EXPECT_EQ(sub.global_net[pin.net.index()], NetId{0});
      // On the top halo, i.e. the last local row.
      EXPECT_EQ(pin.fake_row.index(), sub.circuit.num_rows() - 1);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SubCircuit, RejectsFakePinOutsideBlockHalo) {
  const Circuit global = small_test_circuit(5, 4, 15);
  const RowPartition rows({0, 2, 4});
  // Row 0 is below block 1's bottom halo (which stands for row 1).
  EXPECT_THROW(extract_subcircuit(global, rows, 1, {{0, 1, 0, 10}}),
               CheckError);
  // Wrong destination block is rejected outright.
  EXPECT_THROW(extract_subcircuit(global, rows, 1, {{0, 0, 2, 10}}),
               CheckError);
}

}  // namespace
}  // namespace ptwgr
