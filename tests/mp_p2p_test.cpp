#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "ptwgr/mp/runtime.h"

namespace ptwgr::mp {
namespace {

TEST(MpP2p, SingleRankRuns) {
  std::atomic<int> calls{0};
  const RunReport report = run(1, [&](Communicator& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(report.rank_vtime.size(), 1u);
}

TEST(MpP2p, EveryRankGetsDistinctRank) {
  std::vector<std::atomic<int>> hits(8);
  run(8, [&](Communicator& comm) {
    ++hits[static_cast<std::size_t>(comm.rank())];
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(MpP2p, SendRecvValue) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 5, std::int64_t{4242});
    } else {
      EXPECT_EQ(comm.recv_value<std::int64_t>(0, 5), 4242);
    }
  });
}

TEST(MpP2p, SendRecvVector) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<std::int32_t> v(100);
      std::iota(v.begin(), v.end(), 7);
      comm.send_value(1, 0, v);
    } else {
      const auto v = comm.recv_vector<std::int32_t>(0, 0);
      ASSERT_EQ(v.size(), 100u);
      EXPECT_EQ(v.front(), 7);
      EXPECT_EQ(v.back(), 106);
    }
  });
}

TEST(MpP2p, TagMatchingSelectsCorrectMessage) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 10, std::int32_t{100});
      comm.send_value(1, 20, std::int32_t{200});
    } else {
      // Receive out of order by tag.
      EXPECT_EQ(comm.recv_value<std::int32_t>(0, 20), 200);
      EXPECT_EQ(comm.recv_value<std::int32_t>(0, 10), 100);
    }
  });
}

TEST(MpP2p, NonOvertakingPerSourceAndTag) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (std::int32_t i = 0; i < 50; ++i) comm.send_value(1, 3, i);
    } else {
      for (std::int32_t i = 0; i < 50; ++i) {
        EXPECT_EQ(comm.recv_value<std::int32_t>(0, 3), i);
      }
    }
  });
}

TEST(MpP2p, AnySourceReceivesFromEveryone) {
  run(4, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<bool> seen(4, false);
      for (int i = 0; i < 3; ++i) {
        const Received r = comm.recv(kAnySource, 1);
        Reader reader = r.reader();
        const auto payload = reader.get<std::int32_t>();
        EXPECT_EQ(payload, r.envelope.source * 11);
        seen[static_cast<std::size_t>(r.envelope.source)] = true;
      }
      EXPECT_TRUE(seen[1] && seen[2] && seen[3]);
    } else {
      comm.send_value(0, 1, std::int32_t{comm.rank() * 11});
    }
  });
}

TEST(MpP2p, AnyTagReceives) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 77, std::int32_t{1});
    } else {
      const Received r = comm.recv(0, kAnyTag);
      EXPECT_EQ(r.envelope.tag, 77);
    }
  });
}

TEST(MpP2p, SelfSendWorks) {
  run(1, [](Communicator& comm) {
    comm.send_value(0, 0, std::int32_t{9});
    EXPECT_EQ(comm.recv_value<std::int32_t>(0, 0), 9);
  });
}

TEST(MpP2p, ProbeSeesQueuedMessage) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 4, std::int32_t{1});
      comm.barrier();
    } else {
      comm.barrier();  // after the barrier the message must be queued
      EXPECT_TRUE(comm.probe(0, 4));
      EXPECT_FALSE(comm.probe(0, 5));
      comm.recv(0, 4);
      EXPECT_FALSE(comm.probe(0, 4));
    }
  });
}

TEST(MpP2p, NegativeTagRejected) {
  run(1, [](Communicator& comm) {
    EXPECT_THROW(comm.send_value(0, -1, std::int32_t{0}), CheckError);
  });
}

TEST(MpP2p, InvalidDestinationRejected) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      EXPECT_THROW(comm.send_value(5, 0, std::int32_t{0}), CheckError);
    }
  });
}

TEST(MpP2p, ExceptionInOneRankPropagatesAndUnblocksOthers) {
  EXPECT_THROW(
      run(4,
          [](Communicator& comm) {
            if (comm.rank() == 2) {
              throw std::runtime_error("rank 2 failed");
            }
            // Everyone else blocks forever waiting on a message that never
            // comes; abort must unblock them.
            comm.recv(kAnySource, 999);
          }),
      std::runtime_error);
}

TEST(MpP2p, LargePayloadRoundTrip) {
  run(2, [](Communicator& comm) {
    const std::size_t n = 200000;
    if (comm.rank() == 0) {
      std::vector<std::uint64_t> big(n);
      std::iota(big.begin(), big.end(), 0);
      comm.send_value(1, 0, big);
    } else {
      const auto big = comm.recv_vector<std::uint64_t>(0, 0);
      ASSERT_EQ(big.size(), n);
      EXPECT_EQ(big[n - 1], n - 1);
    }
  });
}

TEST(MpP2p, CommCountersExactForKnownSequence) {
  // Serialized sizes: a scalar int64 is 8 bytes; a vector<int32>(100) is an
  // 8-byte count plus 400 bytes of elements = 408 bytes.
  const RunReport report = run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 0, std::int64_t{42});
      comm.send_value(1, 1, std::vector<std::int32_t>(100, 7));
    } else {
      comm.recv(0, 0);
      comm.recv(0, 1);
    }
  });
  ASSERT_EQ(report.rank_comm.size(), 2u);
  const CommStats& sender = report.rank_comm[0];
  EXPECT_EQ(sender.messages_sent, 2u);
  EXPECT_EQ(sender.bytes_sent, 8u + 408u);
  EXPECT_EQ(sender.messages_received, 0u);
  EXPECT_EQ(sender.bytes_received, 0u);
  const CommStats& receiver = report.rank_comm[1];
  EXPECT_EQ(receiver.messages_received, 2u);
  EXPECT_EQ(receiver.bytes_received, 8u + 408u);
  EXPECT_EQ(receiver.messages_sent, 0u);
  EXPECT_EQ(receiver.bytes_sent, 0u);
}

TEST(MpP2p, CommTotalsBalanceAcrossSendAndRecvSides) {
  // A ring pass: every rank sends one 8-byte int64 and receives one, so the
  // whole-run totals must balance exactly.
  const int n = 4;
  const RunReport report = run(n, [n](Communicator& comm) {
    const int next = (comm.rank() + 1) % n;
    const int prev = (comm.rank() + n - 1) % n;
    comm.send_value(next, 0, std::int64_t{comm.rank()});
    comm.recv(prev, 0);
  });
  const CommStats totals = report.comm_totals();
  EXPECT_EQ(totals.messages_sent, 4u);
  EXPECT_EQ(totals.messages_received, 4u);
  EXPECT_EQ(totals.bytes_sent, 32u);
  EXPECT_EQ(totals.bytes_received, 32u);
  EXPECT_EQ(totals.messages_sent, totals.messages_received);
  EXPECT_EQ(totals.bytes_sent, totals.bytes_received);
}

TEST(MpP2p, CommStatsVisibleMidRun) {
  run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 0, std::int64_t{1});
      EXPECT_EQ(comm.comm_stats().messages_sent, 1u);
      EXPECT_EQ(comm.comm_stats().bytes_sent, 8u);
    } else {
      comm.recv(0, 0);
      EXPECT_EQ(comm.comm_stats().messages_received, 1u);
      EXPECT_EQ(comm.comm_stats().bytes_received, 8u);
    }
  });
}

class MpRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(MpRankSweep, RingPassAccumulates) {
  const int n = GetParam();
  run(n, [n](Communicator& comm) {
    const int next = (comm.rank() + 1) % n;
    const int prev = (comm.rank() + n - 1) % n;
    if (comm.rank() == 0) {
      comm.send_value(next, 0, std::int64_t{0});
      const auto total = comm.recv_value<std::int64_t>(prev, 0);
      // Sum of ranks 1..n-1.
      EXPECT_EQ(total, static_cast<std::int64_t>(n) * (n - 1) / 2);
    } else {
      const auto acc = comm.recv_value<std::int64_t>(prev, 0);
      comm.send_value(next, 0, acc + comm.rank());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, MpRankSweep, ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
}  // namespace ptwgr::mp
