#include "ptwgr/support/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace ptwgr {
namespace {

TEST(Metrics, StartsEmpty) {
  const MetricsRegistry metrics;
  EXPECT_TRUE(metrics.empty());
  EXPECT_EQ(metrics.size(), 0u);
}

TEST(Metrics, SetAndGetEachKind) {
  MetricsRegistry metrics;
  metrics.set("count", std::int64_t{42});
  metrics.set("ratio", 0.75);
  metrics.set("label", "row-wise");
  EXPECT_EQ(metrics.size(), 3u);
  EXPECT_EQ(metrics.get_number("count"), 42.0);
  EXPECT_EQ(metrics.get_number("ratio"), 0.75);
  EXPECT_EQ(metrics.get_string("label"), "row-wise");
  EXPECT_EQ(metrics.get_number("label"), std::nullopt);
  EXPECT_EQ(metrics.get_number("absent"), std::nullopt);
  EXPECT_EQ(metrics.get_string("absent"), std::nullopt);
}

TEST(Metrics, IntegerConvenienceOverloads) {
  MetricsRegistry metrics;
  metrics.set("u64", std::uint64_t{7});
  metrics.set("int", 9);
  EXPECT_EQ(metrics.get_number("u64"), 7.0);
  EXPECT_EQ(metrics.get_number("int"), 9.0);
}

TEST(Metrics, SetOverwritesInPlaceKeepingOrder) {
  MetricsRegistry metrics;
  metrics.set("first", 1);
  metrics.set("second", 2);
  metrics.set("first", "now a string");
  EXPECT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics.get_string("first"), "now a string");
  // "first" must still serialize before "second".
  const std::string json = metrics.to_json();
  EXPECT_LT(json.find("\"first\""), json.find("\"second\""));
}

TEST(Metrics, JsonShapeAndEscaping) {
  MetricsRegistry metrics;
  metrics.set("alpha.count", 3);
  metrics.set("alpha.seconds", 1.5);
  metrics.set("name \"x\"", "line\nbreak");
  const std::string json = metrics.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"alpha.count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"alpha.seconds\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"name \\\"x\\\"\": \"line\\nbreak\""),
            std::string::npos);
  EXPECT_EQ(json.find('{', 1), std::string::npos);  // flat: one object
}

TEST(Metrics, EmptyRegistrySerializesToEmptyObject) {
  const MetricsRegistry metrics;
  const std::string json = metrics.to_json();
  EXPECT_NE(json.find('{'), std::string::npos);
  EXPECT_NE(json.find('}'), std::string::npos);
  EXPECT_EQ(json.find('"'), std::string::npos);
}

TEST(Metrics, NonFiniteDoublesSerializeAsNull) {
  MetricsRegistry metrics;
  metrics.set("nan", std::nan(""));
  EXPECT_NE(metrics.to_json().find("\"nan\": null"), std::string::npos);
}

}  // namespace
}  // namespace ptwgr
