#include "ptwgr/support/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

namespace ptwgr {
namespace {

TEST(Metrics, StartsEmpty) {
  const MetricsRegistry metrics;
  EXPECT_TRUE(metrics.empty());
  EXPECT_EQ(metrics.size(), 0u);
}

TEST(Metrics, SetAndGetEachKind) {
  MetricsRegistry metrics;
  metrics.set("count", std::int64_t{42});
  metrics.set("ratio", 0.75);
  metrics.set("label", "row-wise");
  EXPECT_EQ(metrics.size(), 3u);
  EXPECT_EQ(metrics.get_number("count"), 42.0);
  EXPECT_EQ(metrics.get_number("ratio"), 0.75);
  EXPECT_EQ(metrics.get_string("label"), "row-wise");
  EXPECT_EQ(metrics.get_number("label"), std::nullopt);
  EXPECT_EQ(metrics.get_number("absent"), std::nullopt);
  EXPECT_EQ(metrics.get_string("absent"), std::nullopt);
}

TEST(Metrics, IntegerConvenienceOverloads) {
  MetricsRegistry metrics;
  metrics.set("u64", std::uint64_t{7});
  metrics.set("int", 9);
  EXPECT_EQ(metrics.get_number("u64"), 7.0);
  EXPECT_EQ(metrics.get_number("int"), 9.0);
}

TEST(Metrics, SetOverwritesInPlaceKeepingOrder) {
  MetricsRegistry metrics;
  metrics.set("first", 1);
  metrics.set("second", 2);
  metrics.set("first", "now a string");
  EXPECT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics.get_string("first"), "now a string");
  // "first" must still serialize before "second".
  const std::string json = metrics.to_json();
  EXPECT_LT(json.find("\"first\""), json.find("\"second\""));
}

TEST(Metrics, ConcurrentRegistrationFromRankThreads) {
  // Rank threads register rank-qualified metrics concurrently (the parallel
  // drivers do this through their shared registry).  Every write must land
  // exactly once, overwrites must not duplicate entries, and concurrent
  // readers/serializers must not observe a torn registry.  Run under TSan
  // this is also the data-race check for the registry's internal mutex.
  constexpr int kRanks = 8;
  constexpr int kKeysPerRank = 50;
  MetricsRegistry metrics;
  std::vector<std::thread> ranks;
  ranks.reserve(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    ranks.emplace_back([&metrics, r] {
      const std::string prefix = "rank." + std::to_string(r) + ".";
      for (int k = 0; k < kKeysPerRank; ++k) {
        metrics.set(prefix + "k" + std::to_string(k),
                    static_cast<std::int64_t>(r * 1000 + k));
        // Overwrite a shared key too: last writer wins, no duplicates.
        metrics.set("shared", static_cast<std::int64_t>(r));
        // Concurrent reads and serialization must stay well-formed.
        (void)metrics.get_number(prefix + "k0");
        (void)metrics.size();
      }
      (void)metrics.to_json();
    });
  }
  for (std::thread& t : ranks) t.join();
  EXPECT_EQ(metrics.size(),
            static_cast<std::size_t>(kRanks * kKeysPerRank) + 1u);
  for (int r = 0; r < kRanks; ++r) {
    for (int k = 0; k < kKeysPerRank; ++k) {
      const std::string name =
          "rank." + std::to_string(r) + ".k" + std::to_string(k);
      EXPECT_EQ(metrics.get_number(name), static_cast<double>(r * 1000 + k));
    }
  }
  const auto shared = metrics.get_number("shared");
  ASSERT_TRUE(shared.has_value());
  EXPECT_GE(*shared, 0.0);
  EXPECT_LT(*shared, static_cast<double>(kRanks));
}

TEST(Metrics, JsonShapeAndEscaping) {
  MetricsRegistry metrics;
  metrics.set("alpha.count", 3);
  metrics.set("alpha.seconds", 1.5);
  metrics.set("name \"x\"", "line\nbreak");
  const std::string json = metrics.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"alpha.count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"alpha.seconds\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"name \\\"x\\\"\": \"line\\nbreak\""),
            std::string::npos);
  EXPECT_EQ(json.find('{', 1), std::string::npos);  // flat: one object
}

TEST(Metrics, EmptyRegistrySerializesToEmptyObject) {
  const MetricsRegistry metrics;
  const std::string json = metrics.to_json();
  EXPECT_NE(json.find('{'), std::string::npos);
  EXPECT_NE(json.find('}'), std::string::npos);
  EXPECT_EQ(json.find('"'), std::string::npos);
}

TEST(Metrics, NonFiniteDoublesSerializeAsNull) {
  MetricsRegistry metrics;
  metrics.set("nan", std::nan(""));
  EXPECT_NE(metrics.to_json().find("\"nan\": null"), std::string::npos);
}

}  // namespace
}  // namespace ptwgr
