#include "ptwgr/circuit/io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "ptwgr/circuit/builder.h"
#include "ptwgr/circuit/generator.h"

namespace ptwgr {
namespace {

Circuit sample_circuit() {
  CircuitBuilder b;
  const RowId r0 = b.add_row(16);
  const RowId r1 = b.add_row(20);
  const CellId c0 = b.add_cell(r0, 8);
  const CellId c1 = b.add_cell(r0, 12);
  const CellId c2 = b.add_cell(r1, 10);
  const NetId n0 = b.add_net();
  const NetId n1 = b.add_net();
  b.add_pin(c0, n0, 2, PinSide::Top);
  b.add_pin(c2, n0, 5, PinSide::Bottom);
  b.add_pin(c1, n1, 0, PinSide::Both);
  b.add_pin(c2, n1, 10, PinSide::Both);
  return std::move(b).build();
}

bool structurally_equal(const Circuit& a, const Circuit& b) {
  if (a.num_rows() != b.num_rows() || a.num_cells() != b.num_cells() ||
      a.num_pins() != b.num_pins() || a.num_nets() != b.num_nets()) {
    return false;
  }
  for (std::size_t p = 0; p < a.num_pins(); ++p) {
    const PinId pid{static_cast<std::uint32_t>(p)};
    if (a.pin_x(pid) != b.pin_x(pid) || a.pin_row(pid) != b.pin_row(pid) ||
        a.pin(pid).side != b.pin(pid).side) {
      return false;
    }
  }
  return true;
}

TEST(CircuitIo, RoundTripSmall) {
  const Circuit original = sample_circuit();
  std::stringstream buffer;
  write_circuit(buffer, original);
  const Circuit restored = read_circuit(buffer);
  EXPECT_TRUE(structurally_equal(original, restored));
}

TEST(CircuitIo, RoundTripGenerated) {
  GeneratorConfig cfg;
  cfg.seed = 77;
  cfg.num_rows = 5;
  cfg.num_cells = 150;
  cfg.num_nets = 170;
  const Circuit original = generate_circuit(cfg);
  std::stringstream buffer;
  write_circuit(buffer, original);
  const Circuit restored = read_circuit(buffer);
  EXPECT_TRUE(structurally_equal(original, restored));
}

TEST(CircuitIo, SkipsCommentsAndBlankLines) {
  const Circuit original = sample_circuit();
  std::stringstream buffer;
  write_circuit(buffer, original);
  std::string text = "# leading comment\n\n" + buffer.str();
  std::stringstream annotated(text);
  EXPECT_NO_THROW(read_circuit(annotated));
}

TEST(CircuitIo, RejectsBadMagic) {
  std::stringstream in("NOT-A-CIRCUIT 1\n");
  EXPECT_THROW(read_circuit(in), CircuitIoError);
}

TEST(CircuitIo, RejectsWrongVersion) {
  std::stringstream in("PTWGR-CIRCUIT 99\nROWS 0\nCELLS 0\nNETS 0\n");
  EXPECT_THROW(read_circuit(in), CircuitIoError);
}

TEST(CircuitIo, RejectsTruncatedFile) {
  std::stringstream in("PTWGR-CIRCUIT 1\nROWS 2\nROW 16\n");
  EXPECT_THROW(read_circuit(in), CircuitIoError);
}

TEST(CircuitIo, RejectsOutOfRangeCellIndex) {
  std::stringstream in(
      "PTWGR-CIRCUIT 1\n"
      "ROWS 1\nROW 16\n"
      "CELLS 1\nCELL 0 8\n"
      "NETS 1\nNET 1\nPIN 5 0 T\n");
  EXPECT_THROW(read_circuit(in), CircuitIoError);
}

TEST(CircuitIo, RejectsBadPinSide) {
  std::stringstream in(
      "PTWGR-CIRCUIT 1\n"
      "ROWS 1\nROW 16\n"
      "CELLS 1\nCELL 0 8\n"
      "NETS 1\nNET 1\nPIN 0 0 Q\n");
  EXPECT_THROW(read_circuit(in), CircuitIoError);
}

TEST(CircuitIo, RejectsOffsetOutsideCell) {
  std::stringstream in(
      "PTWGR-CIRCUIT 1\n"
      "ROWS 1\nROW 16\n"
      "CELLS 1\nCELL 0 8\n"
      "NETS 1\nNET 1\nPIN 0 99 T\n");
  EXPECT_THROW(read_circuit(in), CircuitIoError);
}

/// Parses `text` expecting failure; returns the diagnostic (empty = parsed).
std::string diagnostic_of(const std::string& text) {
  std::stringstream in(text);
  try {
    read_circuit(in);
  } catch (const CircuitIoError& e) {
    return e.what();
  }
  return {};
}

bool contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

TEST(CircuitIo, TruncatedFileNamesLineAndRecord) {
  const std::string msg =
      diagnostic_of("PTWGR-CIRCUIT 1\nROWS 2\nROW 16\n");
  EXPECT_TRUE(contains(msg, "line 3")) << msg;
  EXPECT_TRUE(contains(msg, "unexpected end of file")) << msg;
  EXPECT_TRUE(contains(msg, "ROW record")) << msg;
}

TEST(CircuitIo, RejectsNegativeCountWithDiagnostic) {
  // A negative count must not wrap to a huge unsigned value.
  const std::string msg = diagnostic_of("PTWGR-CIRCUIT 1\nROWS -2\n");
  EXPECT_TRUE(contains(msg, "line 2")) << msg;
  EXPECT_TRUE(contains(msg, "must be non-negative")) << msg;
}

TEST(CircuitIo, RejectsAbsurdCount) {
  const std::string msg =
      diagnostic_of("PTWGR-CIRCUIT 1\nROWS 999999999999\n");
  EXPECT_TRUE(contains(msg, "exceeds the format limit")) << msg;
}

TEST(CircuitIo, RejectsNanGeometry) {
  const std::string msg = diagnostic_of("PTWGR-CIRCUIT 1\nROWS 1\nROW nan\n");
  EXPECT_TRUE(contains(msg, "line 3")) << msg;
  EXPECT_TRUE(contains(msg, "row height")) << msg;
}

TEST(CircuitIo, RejectsFractionalGeometry) {
  const std::string msg =
      diagnostic_of("PTWGR-CIRCUIT 1\nROWS 1\nROW 16.5\n");
  EXPECT_TRUE(contains(msg, "row height")) << msg;
}

TEST(CircuitIo, RejectsNegativeRowHeight) {
  const std::string msg = diagnostic_of("PTWGR-CIRCUIT 1\nROWS 1\nROW -4\n");
  EXPECT_TRUE(contains(msg, "line 3")) << msg;
  EXPECT_TRUE(contains(msg, "must be positive")) << msg;
}

TEST(CircuitIo, RejectsZeroCellWidth) {
  const std::string msg = diagnostic_of(
      "PTWGR-CIRCUIT 1\nROWS 1\nROW 16\nCELLS 1\nCELL 0 0\n");
  EXPECT_TRUE(contains(msg, "line 5")) << msg;
  EXPECT_TRUE(contains(msg, "cell width")) << msg;
  EXPECT_TRUE(contains(msg, "must be positive")) << msg;
}

TEST(CircuitIo, RejectsNegativePinOffset) {
  const std::string msg = diagnostic_of(
      "PTWGR-CIRCUIT 1\n"
      "ROWS 1\nROW 16\n"
      "CELLS 1\nCELL 0 8\n"
      "NETS 1\nNET 1\nPIN 0 -3 T\n");
  EXPECT_TRUE(contains(msg, "line 8")) << msg;
  EXPECT_TRUE(contains(msg, "pin offset")) << msg;
}

TEST(CircuitIo, OutOfRangeIndexDiagnosticNamesTheRange) {
  const std::string msg = diagnostic_of(
      "PTWGR-CIRCUIT 1\n"
      "ROWS 1\nROW 16\n"
      "CELLS 1\nCELL 7 8\n");
  EXPECT_TRUE(contains(msg, "line 5")) << msg;
  EXPECT_TRUE(contains(msg, "out of range")) << msg;
  EXPECT_TRUE(contains(msg, "1 rows")) << msg;
}

TEST(CircuitIo, FileDiagnosticsArePrefixedWithThePath) {
  const std::string path = ::testing::TempDir() + "/ptwgr_io_bad.ckt";
  {
    std::ofstream out(path);
    out << "PTWGR-CIRCUIT 1\nROWS -1\n";
  }
  try {
    read_circuit_file(path);
    FAIL() << "expected CircuitIoError";
  } catch (const CircuitIoError& e) {
    EXPECT_TRUE(contains(e.what(), path)) << e.what();
    EXPECT_TRUE(contains(e.what(), "line 2")) << e.what();
  }
}

TEST(CircuitIo, FileRoundTrip) {
  const Circuit original = sample_circuit();
  const std::string path = ::testing::TempDir() + "/ptwgr_io_test.ckt";
  write_circuit_file(path, original);
  const Circuit restored = read_circuit_file(path);
  EXPECT_TRUE(structurally_equal(original, restored));
}

TEST(CircuitIo, MissingFileThrows) {
  EXPECT_THROW(read_circuit_file("/nonexistent/path.ckt"), CircuitIoError);
}

TEST(CircuitIo, FeedthroughsAndFakePinsNotPersisted) {
  Circuit c = sample_circuit();
  const NetId net{0};
  c.add_fake_pin(net, RowId{0}, 55);
  const CellId ft = c.insert_feedthrough(RowId{0}, 4, 3);
  c.add_cell_pin(ft, net, 1, PinSide::Both);

  std::stringstream buffer;
  write_circuit(buffer, c);
  const Circuit restored = read_circuit(buffer);
  EXPECT_EQ(restored.num_feedthrough_cells(), 0u);
  EXPECT_EQ(restored.net(net).pins.size(), 2u);  // only the original 2
}

}  // namespace
}  // namespace ptwgr
