#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "ptwgr/mp/runtime.h"

namespace ptwgr::mp {
namespace {

class CollectivesRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesRankSweep, BarrierCompletes) {
  run(GetParam(), [](Communicator& comm) {
    for (int i = 0; i < 10; ++i) comm.barrier();
  });
}

TEST_P(CollectivesRankSweep, BroadcastValue) {
  run(GetParam(), [](Communicator& comm) {
    const auto v = comm.broadcast_value<std::int64_t>(
        0, comm.rank() == 0 ? 987 : -1);
    EXPECT_EQ(v, 987);
  });
}

TEST_P(CollectivesRankSweep, BroadcastFromNonZeroRoot) {
  const int n = GetParam();
  if (n < 2) GTEST_SKIP();
  run(n, [n](Communicator& comm) {
    const int root = n - 1;
    const auto v = comm.broadcast_value<std::int32_t>(
        root, comm.rank() == root ? 55 : 0);
    EXPECT_EQ(v, 55);
  });
}

TEST_P(CollectivesRankSweep, BroadcastVector) {
  run(GetParam(), [](Communicator& comm) {
    std::vector<std::int32_t> payload;
    if (comm.rank() == 0) payload = {3, 1, 4, 1, 5};
    const auto v = comm.broadcast_vector(0, payload);
    EXPECT_EQ(v, (std::vector<std::int32_t>{3, 1, 4, 1, 5}));
  });
}

TEST_P(CollectivesRankSweep, AllreduceSum) {
  const int n = GetParam();
  run(n, [n](Communicator& comm) {
    const auto total = comm.allreduce_value(
        static_cast<std::int64_t>(comm.rank() + 1), SumOp{});
    EXPECT_EQ(total, static_cast<std::int64_t>(n) * (n + 1) / 2);
  });
}

TEST_P(CollectivesRankSweep, AllreduceMinMax) {
  const int n = GetParam();
  run(n, [n](Communicator& comm) {
    EXPECT_EQ(comm.allreduce_value(comm.rank(), MinOp{}), 0);
    EXPECT_EQ(comm.allreduce_value(comm.rank(), MaxOp{}), n - 1);
  });
}

TEST_P(CollectivesRankSweep, AllreduceVectorElementwise) {
  const int n = GetParam();
  run(n, [n](Communicator& comm) {
    std::vector<std::int32_t> mine(5);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      mine[i] = comm.rank() * 10 + static_cast<std::int32_t>(i);
    }
    const auto sums = comm.allreduce(mine, SumOp{});
    ASSERT_EQ(sums.size(), 5u);
    for (std::size_t i = 0; i < sums.size(); ++i) {
      // Σ_r (10 r + i) = 10·n(n-1)/2 + n·i
      EXPECT_EQ(sums[i], 10 * n * (n - 1) / 2 +
                             n * static_cast<std::int32_t>(i));
    }
  });
}

TEST_P(CollectivesRankSweep, Allgather) {
  const int n = GetParam();
  run(n, [n](Communicator& comm) {
    const auto all = comm.allgather(static_cast<std::int32_t>(comm.rank() * 3));
    ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 3);
    }
  });
}

TEST_P(CollectivesRankSweep, AllgatherVectorsVariableLength) {
  const int n = GetParam();
  run(n, [n](Communicator& comm) {
    // Rank r contributes r elements, value r each.
    std::vector<std::int32_t> mine(static_cast<std::size_t>(comm.rank()),
                                   comm.rank());
    const auto all = comm.allgather_vectors(mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      const auto& from_r = all[static_cast<std::size_t>(r)];
      ASSERT_EQ(from_r.size(), static_cast<std::size_t>(r));
      for (const auto v : from_r) EXPECT_EQ(v, r);
    }
  });
}

TEST_P(CollectivesRankSweep, GatherVectorsOnlyRootReceives) {
  const int n = GetParam();
  run(n, [n](Communicator& comm) {
    std::vector<std::int64_t> mine{comm.rank() * 100LL};
    const auto all = comm.gather_vectors(0, mine);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) {
        ASSERT_EQ(all[static_cast<std::size_t>(r)].size(), 1u);
        EXPECT_EQ(all[static_cast<std::size_t>(r)][0], r * 100LL);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectivesRankSweep, AllToAllRoutesPersonalizedData) {
  const int n = GetParam();
  run(n, [n](Communicator& comm) {
    // To rank d, send {rank*1000 + d}.
    std::vector<std::vector<std::int32_t>> outgoing(
        static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      outgoing[static_cast<std::size_t>(d)] = {comm.rank() * 1000 + d};
    }
    const auto incoming = comm.all_to_all(outgoing);
    ASSERT_EQ(incoming.size(), static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      ASSERT_EQ(incoming[static_cast<std::size_t>(s)].size(), 1u);
      EXPECT_EQ(incoming[static_cast<std::size_t>(s)][0],
                s * 1000 + comm.rank());
    }
  });
}

TEST_P(CollectivesRankSweep, AllToAllEmptyParts) {
  const int n = GetParam();
  run(n, [n](Communicator& comm) {
    std::vector<std::vector<std::int32_t>> outgoing(
        static_cast<std::size_t>(n));
    const auto incoming = comm.all_to_all(outgoing);
    for (const auto& part : incoming) EXPECT_TRUE(part.empty());
  });
}

TEST_P(CollectivesRankSweep, RepeatedCollectivesStaySynchronized) {
  const int n = GetParam();
  run(n, [n](Communicator& comm) {
    for (std::int64_t round = 0; round < 25; ++round) {
      const auto v = comm.allreduce_value(round + comm.rank(), MaxOp{});
      EXPECT_EQ(v, round + n - 1);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, CollectivesRankSweep,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(Collectives, PerKindCountersExactForKnownSequence) {
  // Contribution sizes under the library serialization: a vector<int64>(1)
  // is an 8-byte count + 8 bytes = 16; an int32 scalar is 4; all_to_all of
  // four 1-element int32 parts is 4 × (8 + 4) = 48.
  const RunReport report = run(4, [](Communicator& comm) {
    comm.barrier();
    comm.barrier();
    comm.barrier();
    comm.broadcast_value<std::int64_t>(0, comm.rank() == 0 ? 5 : 0);
    comm.allreduce_value(std::int64_t{1}, SumOp{});
    comm.allreduce_value(std::int64_t{2}, SumOp{});
    comm.allgather(std::int32_t{comm.rank()});
    comm.gather_vectors(0, std::vector<std::int64_t>{comm.rank() * 1LL});
    std::vector<std::vector<std::int32_t>> outgoing(4);
    for (int d = 0; d < 4; ++d) outgoing[static_cast<std::size_t>(d)] = {d};
    comm.all_to_all(outgoing);
  });
  ASSERT_EQ(report.rank_comm.size(), 4u);
  const auto at = [](CollectiveKind kind) {
    return static_cast<std::size_t>(kind);
  };
  for (std::size_t r = 0; r < 4; ++r) {
    const CommStats& s = report.rank_comm[r];
    EXPECT_EQ(s.collective_calls[at(CollectiveKind::Barrier)], 3u);
    EXPECT_EQ(s.collective_calls[at(CollectiveKind::Broadcast)], 1u);
    EXPECT_EQ(s.collective_calls[at(CollectiveKind::Allreduce)], 2u);
    EXPECT_EQ(s.collective_calls[at(CollectiveKind::Allgather)], 1u);
    EXPECT_EQ(s.collective_calls[at(CollectiveKind::Gather)], 1u);
    EXPECT_EQ(s.collective_calls[at(CollectiveKind::AllToAll)], 1u);
    EXPECT_EQ(s.total_collective_calls(), 9u);
    EXPECT_EQ(s.collective_bytes[at(CollectiveKind::Barrier)], 0u);
    // Only the broadcast root contributes payload.
    EXPECT_EQ(s.collective_bytes[at(CollectiveKind::Broadcast)],
              r == 0 ? 8u : 0u);
    EXPECT_EQ(s.collective_bytes[at(CollectiveKind::Allreduce)], 32u);
    EXPECT_EQ(s.collective_bytes[at(CollectiveKind::Allgather)], 4u);
    EXPECT_EQ(s.collective_bytes[at(CollectiveKind::Gather)], 16u);
    EXPECT_EQ(s.collective_bytes[at(CollectiveKind::AllToAll)], 48u);
    EXPECT_EQ(s.messages_sent, 0u);  // collectives are not p2p traffic
    EXPECT_EQ(s.messages_received, 0u);
  }
  const CommStats totals = report.comm_totals();
  EXPECT_EQ(totals.total_collective_calls(), 36u);
  EXPECT_EQ(totals.total_collective_bytes(),
            8u + 4u * (32u + 4u + 16u + 48u));
}

TEST(Collectives, KindNamesAreStable) {
  // The metrics JSON keys derive from these names; renames break consumers.
  EXPECT_STREQ(to_string(CollectiveKind::Barrier), "barrier");
  EXPECT_STREQ(to_string(CollectiveKind::Broadcast), "broadcast");
  EXPECT_STREQ(to_string(CollectiveKind::Gather), "gather");
  EXPECT_STREQ(to_string(CollectiveKind::Allgather), "allgather");
  EXPECT_STREQ(to_string(CollectiveKind::Allreduce), "allreduce");
  EXPECT_STREQ(to_string(CollectiveKind::AllToAll), "all_to_all");
}

TEST(Collectives, MixedP2pAndCollectives) {
  run(4, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int r = 1; r < 4; ++r) comm.send_value(r, 9, std::int32_t{r * 2});
    }
    comm.barrier();
    if (comm.rank() != 0) {
      EXPECT_EQ(comm.recv_value<std::int32_t>(0, 9), comm.rank() * 2);
    }
    const auto sum = comm.allreduce_value(std::int32_t{1}, SumOp{});
    EXPECT_EQ(sum, 4);
  });
}

}  // namespace
}  // namespace ptwgr::mp
