// Tests of the causal event ledger: disabled-by-default contract, send/recv
// matching and Lamport ordering under the mp runtime, collective ordinals,
// flight-recorder ring mode, mark()/rewind() truncation, postmortem capture,
// and seed-determinism of the canonical serialization for the serial
// pipeline and all three parallel algorithms.
#include "ptwgr/obs/ledger.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "ptwgr/circuit/suite.h"
#include "ptwgr/mp/runtime.h"
#include "ptwgr/parallel/parallel_router.h"
#include "ptwgr/route/router.h"
#include "ptwgr/support/json.h"

namespace ptwgr::obs {
namespace {

/// Installs a collector for one test and removes it on scope exit so the
/// process-global stays clean across tests.
class LedgerGuard {
 public:
  explicit LedgerGuard(LedgerCollector& collector) {
    set_active_ledger(&collector);
  }
  ~LedgerGuard() { set_active_ledger(nullptr); }
  LedgerGuard(const LedgerGuard&) = delete;
  LedgerGuard& operator=(const LedgerGuard&) = delete;
};

std::vector<LedgerEvent> events_of_kind(const std::vector<LedgerEvent>& events,
                                        LedgerEventKind kind) {
  std::vector<LedgerEvent> out;
  for (const LedgerEvent& event : events) {
    if (event.kind == kind) out.push_back(event);
  }
  return out;
}

TEST(Ledger, DisabledByDefault) {
  EXPECT_EQ(active_ledger(), nullptr);
}

TEST(Ledger, ParallelRouteRecordsNothingWhenDisabled) {
  ASSERT_EQ(active_ledger(), nullptr);
  LedgerCollector collector;  // exists but is never installed
  route_parallel(small_test_circuit(21, 8, 30), ParallelAlgorithm::RowWise, 2);
  EXPECT_EQ(collector.num_ranks(), 0);
}

TEST(Ledger, SendRecvEventsMatchAndLamportOrders) {
  LedgerCollector collector;
  const LedgerGuard guard(collector);
  mp::run(2, [](mp::Communicator& comm) {
    if (comm.rank() == 0) {
      // Large virtual head start: the receiver is certainly already waiting
      // when the message departs, so its wait interval is non-empty.
      comm.add_virtual_time(0.01);
      comm.send_value(1, 7, std::int32_t{42});
    } else {
      EXPECT_EQ(comm.recv_value<std::int32_t>(0, 7), 42);
    }
  });
  const auto sends = events_of_kind(collector.events(0), LedgerEventKind::Send);
  const auto recvs = events_of_kind(collector.events(1), LedgerEventKind::Recv);
  ASSERT_EQ(sends.size(), 1u);
  ASSERT_EQ(recvs.size(), 1u);
  // Matching identity: (sender rank, send sequence) names the pair.
  EXPECT_EQ(sends[0].peer, 1);
  EXPECT_EQ(recvs[0].peer, 0);
  EXPECT_EQ(sends[0].seq, recvs[0].seq);
  EXPECT_EQ(sends[0].tag, 7);
  EXPECT_EQ(recvs[0].tag, 7);
  EXPECT_EQ(sends[0].bytes, recvs[0].bytes);
  EXPECT_GT(sends[0].bytes, 0u);
  // Lamport: the recv's clock strictly exceeds the matched send's.
  EXPECT_GT(recvs[0].lamport, sends[0].lamport);
  // The receiver waited for the sender's vtime-1e-4 head start; its wait
  // interval ends exactly at the send's arrival clock.
  EXPECT_GT(recvs[0].t1, recvs[0].t0);
  EXPECT_DOUBLE_EQ(recvs[0].t1, sends[0].t1);
  // Final vtimes were recorded at finalize.
  EXPECT_GE(collector.final_vtime(0), 0.01);
  EXPECT_GE(collector.final_vtime(1), recvs[0].t1);
}

TEST(Ledger, CollectiveOrdinalsAgreeAcrossRanks) {
  LedgerCollector collector;
  const LedgerGuard guard(collector);
  mp::run(4, [](mp::Communicator& comm) {
    comm.barrier();
    comm.allreduce_value(std::int64_t{comm.rank()}, mp::SumOp{});
    comm.barrier();
  });
  std::vector<std::vector<LedgerEvent>> collectives;
  for (int r = 0; r < 4; ++r) {
    collectives.push_back(
        events_of_kind(collector.events(r), LedgerEventKind::Collective));
    ASSERT_EQ(collectives.back().size(), 3u) << "rank " << r;
  }
  for (std::size_t i = 0; i < 3; ++i) {
    for (int r = 0; r < 4; ++r) {
      // SPMD total order: ordinal i names the same rendezvous everywhere.
      EXPECT_EQ(collectives[static_cast<std::size_t>(r)][i].seq,
                collectives[0][i].seq);
      // All participants leave with the same Lamport clock (max + 1).
      EXPECT_EQ(collectives[static_cast<std::size_t>(r)][i].lamport,
                collectives[0][i].lamport);
      // ...and the same exit vtime (the rendezvous clock).
      EXPECT_DOUBLE_EQ(collectives[static_cast<std::size_t>(r)][i].t1,
                       collectives[0][i].t1);
    }
    if (i > 0) {
      EXPECT_GT(collectives[0][i].lamport, collectives[0][i - 1].lamport);
    }
  }
}

TEST(Ledger, PhaseEventsCarryLabels) {
  LedgerCollector collector;
  const LedgerGuard guard(collector);
  mp::run(2, [](mp::Communicator& comm) {
    comm.notify_phase("alpha");
    comm.add_virtual_time(1e-5);
    comm.notify_phase("beta");
  });
  for (int r = 0; r < 2; ++r) {
    const auto phases =
        events_of_kind(collector.events(r), LedgerEventKind::PhaseBegin);
    ASSERT_EQ(phases.size(), 2u);
    EXPECT_EQ(phases[0].label, "alpha");
    EXPECT_EQ(phases[1].label, "beta");
    EXPECT_DOUBLE_EQ(phases[0].t0, phases[0].t1);  // zero width
    EXPECT_LT(phases[0].t0, phases[1].t0);
  }
}

TEST(Ledger, RingModeKeepsTailAndCountsDrops) {
  LedgerCollector collector(4);
  collector.begin_run(1);
  for (int i = 0; i < 10; ++i) {
    LedgerEvent event;
    event.kind = LedgerEventKind::PhaseBegin;
    event.label = "e" + std::to_string(i);
    collector.record(0, std::move(event));
  }
  EXPECT_EQ(collector.dropped(0), 6u);
  const auto events = collector.events(0);
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].label,
              "e" + std::to_string(6 + i));
  }
}

TEST(Ledger, RingDroppedPrefixStaysConsistentAcrossWrapAround) {
  // The drop counter and the retained window must agree at every point of a
  // multi-wrap fill: dropped + retained == recorded, and the first retained
  // event is exactly event number `dropped` (seq stamps make that visible).
  LedgerCollector collector(3);
  collector.begin_run(1);
  for (std::uint64_t i = 0; i < 11; ++i) {
    LedgerEvent event;
    event.kind = LedgerEventKind::PhaseBegin;
    event.seq = i;
    event.label = "e" + std::to_string(i);
    collector.record(0, std::move(event));
    const auto events = collector.events(0);
    const std::uint64_t dropped = collector.dropped(0);
    EXPECT_EQ(dropped + events.size(), i + 1) << "after event " << i;
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events.front().seq, dropped) << "after event " << i;
    EXPECT_EQ(events.back().seq, i) << "after event " << i;
    // The window is contiguous: seq increments by one across it.
    for (std::size_t k = 1; k < events.size(); ++k) {
      EXPECT_EQ(events[k].seq, events[k - 1].seq + 1);
    }
  }
  EXPECT_EQ(collector.dropped(0), 8u);  // 11 recorded, 3 retained
}

TEST(Ledger, JsonEscapesHostileLabelsThroughSharedHelper) {
  // Companion of Trace.ChromeJsonEscapesHostileSpanNames: the ledger
  // serializer runs event labels and meta strings through the same
  // json::append_quoted helper, so hostile content must neither break the
  // document nor smuggle keys into it.
  const std::string hostile = "evil\"label\\ \b\f\t\x01\x1f,\"rank\":666";
  LedgerCollector collector;
  collector.begin_run(1);
  LedgerEvent event;
  event.kind = LedgerEventKind::PhaseBegin;
  event.label = hostile;
  collector.record(0, std::move(event));
  LedgerMeta meta;
  meta.algorithm = "serial";
  meta.circuit_source = hostile;
  meta.seed = 7;
  meta.ranks = 1;
  const std::string json = ledger_to_json(collector, meta);
  // Parses cleanly and the hostile strings round-trip exactly.
  const json::Value doc = json::parse(json);
  const json::Value* source = doc.find("circuit");
  ASSERT_NE(source, nullptr);
  EXPECT_EQ(source->as_string(), hostile);
  // No injected key: the only "rank" keys are the serializer's own.
  EXPECT_EQ(json.find("\"rank\":666"), std::string::npos);
  EXPECT_NE(json.find("\\\"rank\\\":666"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\\u001f"), std::string::npos);
}

TEST(Ledger, MarkRewindTruncatesMeasurementEvents) {
  LedgerCollector collector;
  const LedgerGuard guard(collector);
  mp::run(2, [](mp::Communicator& comm) {
    comm.barrier();  // causal: stays
    const auto m = comm.mark();
    // Measurement-only traffic between mark and rewind must not reach the
    // causal record (this is what assemble_metrics does).
    comm.allreduce_value(std::int64_t{1}, mp::SumOp{});
    comm.barrier();
    comm.rewind(m);
  });
  for (int r = 0; r < 2; ++r) {
    const auto collectives =
        events_of_kind(collector.events(r), LedgerEventKind::Collective);
    EXPECT_EQ(collectives.size(), 1u) << "rank " << r;
  }
}

TEST(Ledger, ParallelRunExcludesMetricAssemblyFromRecord) {
  // End-to-end: the parallel drivers call assemble_metrics under
  // mark()/rewind(); the recorded collective count must be identical across
  // ranks (the algorithm's own synchronization only).
  LedgerCollector collector;
  const LedgerGuard guard(collector);
  route_parallel(small_test_circuit(21, 8, 30), ParallelAlgorithm::RowWise, 2);
  ASSERT_EQ(collector.num_ranks(), 2);
  const auto c0 =
      events_of_kind(collector.events(0), LedgerEventKind::Collective);
  const auto c1 =
      events_of_kind(collector.events(1), LedgerEventKind::Collective);
  EXPECT_EQ(c0.size(), c1.size());
  EXPECT_GT(c0.size(), 0u);
  for (std::size_t i = 0; i < c0.size(); ++i) {
    EXPECT_EQ(c0[i].seq, c1[i].seq);
    EXPECT_EQ(c0[i].tag, c1[i].tag);  // same CollectiveKind at each ordinal
  }
}

TEST(Ledger, PostmortemSurvivesBeginRun) {
  LedgerCollector collector;
  collector.begin_run(2);
  LedgerEvent event;
  event.kind = LedgerEventKind::Fault;
  event.label = "boom";
  collector.record(1, std::move(event));
  collector.capture_postmortem("rank 1 died");
  collector.begin_run(2);  // recovery re-execution clears live slots...
  EXPECT_EQ(collector.events(1).size(), 0u);
  ASSERT_EQ(collector.postmortems().size(), 1u);  // ...but keeps the capture
  EXPECT_EQ(collector.postmortems()[0].reason, "rank 1 died");
  ASSERT_EQ(collector.postmortems()[0].ranks.size(), 2u);
  ASSERT_EQ(collector.postmortems()[0].ranks[1].events.size(), 1u);
  EXPECT_EQ(collector.postmortems()[0].ranks[1].events[0].label, "boom");
}

TEST(Ledger, SerialRouteRecordsFiveStepPhases) {
  LedgerCollector collector;
  const LedgerGuard guard(collector);
  const RoutingResult result = route_serial(small_test_circuit(11, 6, 18));
  ASSERT_EQ(collector.num_ranks(), 1);
  const auto phases =
      events_of_kind(collector.events(0), LedgerEventKind::PhaseBegin);
  ASSERT_EQ(phases.size(), 5u);
  EXPECT_EQ(phases[0].label, "steiner");
  EXPECT_EQ(phases[4].label, "switchable");
  // A one-rank world's final clock is the cumulative step timeline.
  EXPECT_DOUBLE_EQ(collector.final_vtime(0), result.timings.total());
}

// --- canonical-serialization determinism ---------------------------------

LedgerMeta test_meta(const std::string& algorithm, int ranks) {
  LedgerMeta meta;
  meta.algorithm = algorithm;
  meta.circuit_source = "small_test_circuit";
  meta.seed = 7;
  meta.ranks = ranks;
  meta.platform = "ideal";
  return meta;
}

std::string canonical_serial_run() {
  LedgerCollector collector;
  const LedgerGuard guard(collector);
  route_serial(small_test_circuit(11, 6, 18));
  return ledger_to_json(collector, test_meta("serial", 1),
                        /*include_times=*/false);
}

std::string canonical_parallel_run(ParallelAlgorithm algorithm) {
  LedgerCollector collector;
  const LedgerGuard guard(collector);
  route_parallel(small_test_circuit(21, 8, 30), algorithm, 4);
  return ledger_to_json(collector, test_meta(to_string(algorithm), 4),
                        /*include_times=*/false);
}

TEST(LedgerDeterminism, SerialCanonicalFormIsSeedDeterministic) {
  EXPECT_EQ(canonical_serial_run(), canonical_serial_run());
}

TEST(LedgerDeterminism, RowWiseCanonicalFormIsSeedDeterministic) {
  EXPECT_EQ(canonical_parallel_run(ParallelAlgorithm::RowWise),
            canonical_parallel_run(ParallelAlgorithm::RowWise));
}

TEST(LedgerDeterminism, NetWiseCanonicalFormIsSeedDeterministic) {
  EXPECT_EQ(canonical_parallel_run(ParallelAlgorithm::NetWise),
            canonical_parallel_run(ParallelAlgorithm::NetWise));
}

TEST(LedgerDeterminism, HybridCanonicalFormIsSeedDeterministic) {
  EXPECT_EQ(canonical_parallel_run(ParallelAlgorithm::Hybrid),
            canonical_parallel_run(ParallelAlgorithm::Hybrid));
}

TEST(LedgerDeterminism, CanonicalFormOmitsTimes) {
  const std::string canonical = canonical_serial_run();
  EXPECT_EQ(canonical.find("\"t0\""), std::string::npos);
  EXPECT_EQ(canonical.find("\"t1\""), std::string::npos);
  EXPECT_EQ(canonical.find("\"final_vtime\""), std::string::npos);
  EXPECT_NE(canonical.find("\"lc\""), std::string::npos);
}

}  // namespace
}  // namespace ptwgr::obs
