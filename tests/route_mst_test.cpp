#include "ptwgr/route/mst.h"

#include <gtest/gtest.h>

#include "ptwgr/route/dsu.h"
#include "ptwgr/support/rng.h"

namespace ptwgr {
namespace {

TEST(RouteDistance, RectilinearWithRowCost) {
  EXPECT_EQ(route_distance({0, 0}, {10, 0}, 48), 10);
  EXPECT_EQ(route_distance({0, 0}, {0, 2}, 48), 96);
  EXPECT_EQ(route_distance({5, 1}, {2, 3}, 10), 3 + 20);
  EXPECT_EQ(route_distance({7, 4}, {7, 4}, 48), 0);
}

TEST(Mst, EmptyAndSingleton) {
  EXPECT_TRUE(minimum_spanning_tree({}, 1).empty());
  EXPECT_TRUE(minimum_spanning_tree({{0, 0}}, 1).empty());
}

TEST(Mst, TwoPoints) {
  const auto edges = minimum_spanning_tree({{0, 0}, {5, 1}}, 10);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0], (TreeEdge{0, 1}));
}

TEST(Mst, SpansAllPoints) {
  std::vector<RoutePoint> points{{0, 0}, {10, 0}, {5, 1}, {20, 2}, {1, 2}};
  const auto edges = minimum_spanning_tree(points, 10);
  ASSERT_EQ(edges.size(), points.size() - 1);
  DisjointSets dsu(points.size());
  for (const TreeEdge& e : edges) {
    EXPECT_TRUE(dsu.unite(e.a, e.b)) << "cycle in MST";
  }
  EXPECT_EQ(dsu.num_sets(), 1u);
}

TEST(Mst, CollinearPointsChainNaturally) {
  std::vector<RoutePoint> points{{0, 0}, {10, 0}, {20, 0}, {30, 0}};
  const auto edges = minimum_spanning_tree(points, 1);
  EXPECT_EQ(tree_length(points, edges, 1), 30);
}

TEST(Mst, PrefersSameRowUnderHighRowCost) {
  // Two rows; high row cost forces one vertical hop only.
  std::vector<RoutePoint> points{{0, 0}, {100, 0}, {0, 1}, {100, 1}};
  const auto edges = minimum_spanning_tree(points, 1000);
  std::size_t vertical = 0;
  for (const TreeEdge& e : edges) {
    if (points[e.a].row != points[e.b].row) ++vertical;
  }
  EXPECT_EQ(vertical, 1u);
}

TEST(Mst, DuplicatePointsZeroCostEdges) {
  std::vector<RoutePoint> points{{5, 2}, {5, 2}, {5, 2}};
  const auto edges = minimum_spanning_tree(points, 48);
  EXPECT_EQ(edges.size(), 2u);
  EXPECT_EQ(tree_length(points, edges, 48), 0);
}

/// Reference: Kruskal via sorted edge list.
std::int64_t kruskal_length(const std::vector<RoutePoint>& points,
                            std::int64_t row_cost) {
  struct E {
    std::int64_t w;
    std::size_t a, b;
  };
  std::vector<E> all;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      all.push_back({route_distance(points[i], points[j], row_cost), i, j});
    }
  }
  std::sort(all.begin(), all.end(),
            [](const E& x, const E& y) { return x.w < y.w; });
  DisjointSets dsu(points.size());
  std::int64_t total = 0;
  for (const E& e : all) {
    if (dsu.unite(e.a, e.b)) total += e.w;
  }
  return total;
}

class MstRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(MstRandomSweep, MatchesKruskalWeight) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  std::vector<RoutePoint> points;
  const std::size_t n = 3 + rng.next_index(40);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.next_int(0, 500),
                      static_cast<std::uint32_t>(rng.next_index(8))});
  }
  const auto edges = minimum_spanning_tree(points, 48);
  ASSERT_EQ(edges.size(), n - 1);
  EXPECT_EQ(tree_length(points, edges, 48), kruskal_length(points, 48));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MstRandomSweep, ::testing::Range(1, 16));

TEST(DisjointSets, BasicInvariants) {
  DisjointSets dsu(5);
  EXPECT_EQ(dsu.num_sets(), 5u);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_FALSE(dsu.unite(1, 0));
  EXPECT_TRUE(dsu.connected(0, 1));
  EXPECT_FALSE(dsu.connected(0, 2));
  EXPECT_EQ(dsu.num_sets(), 4u);
  EXPECT_EQ(dsu.set_size(1), 2u);
  EXPECT_THROW(dsu.find(5), CheckError);
}

}  // namespace
}  // namespace ptwgr
