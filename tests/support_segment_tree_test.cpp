#include "ptwgr/support/segment_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "ptwgr/support/rng.h"

namespace ptwgr {
namespace {

TEST(LazySegmentTree, StartsZeroed) {
  LazySegmentTree tree(7);
  EXPECT_EQ(tree.size(), 7u);
  EXPECT_EQ(tree.global_max(), 0);
  EXPECT_EQ(tree.global_sum(), 0);
  EXPECT_EQ(tree.range_max(0, 6), 0);
  EXPECT_EQ(tree.range_sum(2, 4), 0);
}

TEST(LazySegmentTree, SingleElement) {
  LazySegmentTree tree(1);
  tree.range_add(0, 0, 5);
  EXPECT_EQ(tree.value_at(0), 5);
  EXPECT_EQ(tree.global_max(), 5);
  EXPECT_EQ(tree.global_sum(), 5);
}

TEST(LazySegmentTree, RangeAddAndQueries) {
  LazySegmentTree tree(10);
  tree.range_add(2, 6, 1);
  tree.range_add(4, 8, 2);
  // Values: 0 0 1 1 3 3 3 2 2 0
  EXPECT_EQ(tree.value_at(0), 0);
  EXPECT_EQ(tree.value_at(3), 1);
  EXPECT_EQ(tree.value_at(5), 3);
  EXPECT_EQ(tree.value_at(8), 2);
  EXPECT_EQ(tree.global_max(), 3);
  EXPECT_EQ(tree.global_sum(), 15);
  EXPECT_EQ(tree.range_max(0, 3), 1);
  EXPECT_EQ(tree.range_max(7, 9), 2);
  EXPECT_EQ(tree.range_sum(2, 6), 11);
  EXPECT_EQ(tree.range_sum(0, 1), 0);
}

TEST(LazySegmentTree, NegativeDeltasRemoveDemand) {
  LazySegmentTree tree(6);
  tree.range_add(0, 5, 3);
  tree.range_add(1, 4, -3);
  EXPECT_EQ(tree.global_max(), 3);
  EXPECT_EQ(tree.range_max(1, 4), 0);
  EXPECT_EQ(tree.global_sum(), 6);
}

TEST(LazySegmentTree, AssignAndValuesRoundTrip) {
  LazySegmentTree tree(5);
  tree.range_add(0, 4, 7);  // leave pending tags behind
  const std::vector<std::int64_t> values{3, 1, 4, 1, 5};
  tree.assign(values);
  EXPECT_EQ(tree.values(), values);
  EXPECT_EQ(tree.global_max(), 5);
  EXPECT_EQ(tree.global_sum(), 14);
  tree.range_add(1, 3, 10);
  EXPECT_EQ(tree.values(), (std::vector<std::int64_t>{3, 11, 14, 11, 5}));
}

TEST(LazySegmentTree, RejectsBadRanges) {
  LazySegmentTree tree(4);
  EXPECT_THROW(tree.range_add(2, 1, 1), CheckError);
  EXPECT_THROW(tree.range_max(0, 4), CheckError);
  EXPECT_THROW(tree.range_sum(4, 4), CheckError);
  EXPECT_THROW(LazySegmentTree(0), CheckError);
}

TEST(LazySegmentTree, MatchesNaiveVectorUnderRandomOps) {
  // The cross-check that underwrites everything built on the tree: a long
  // random mix of range-adds and queries must agree exactly with a flat
  // vector evaluated by linear scans.
  constexpr std::size_t kSize = 97;  // non-power-of-two on purpose
  LazySegmentTree tree(kSize);
  std::vector<std::int64_t> naive(kSize, 0);
  Rng rng(2024);
  for (int op = 0; op < 4000; ++op) {
    std::size_t a = rng.next_below(kSize);
    std::size_t b = rng.next_below(kSize);
    if (a > b) std::swap(a, b);
    switch (rng.next_below(4)) {
      case 0: {
        const auto delta =
            static_cast<std::int64_t>(rng.next_below(9)) - 4;
        tree.range_add(a, b, delta);
        for (std::size_t i = a; i <= b; ++i) naive[i] += delta;
        break;
      }
      case 1: {
        const auto expected = *std::max_element(naive.begin() + static_cast<std::ptrdiff_t>(a),
                                                naive.begin() + static_cast<std::ptrdiff_t>(b) + 1);
        ASSERT_EQ(tree.range_max(a, b), expected) << a << ".." << b;
        break;
      }
      case 2: {
        const auto expected = std::accumulate(
            naive.begin() + static_cast<std::ptrdiff_t>(a),
            naive.begin() + static_cast<std::ptrdiff_t>(b) + 1, std::int64_t{0});
        ASSERT_EQ(tree.range_sum(a, b), expected) << a << ".." << b;
        break;
      }
      default: {
        ASSERT_EQ(tree.global_max(),
                  *std::max_element(naive.begin(), naive.end()));
        ASSERT_EQ(tree.global_sum(),
                  std::accumulate(naive.begin(), naive.end(),
                                  std::int64_t{0}));
        break;
      }
    }
  }
  EXPECT_EQ(tree.values(), naive);
}

}  // namespace
}  // namespace ptwgr
