// Unit tests of the quality-snapshot building blocks: distribution
// summaries, heatmaps and their ASCII rendering, the exact channel-density
// sweep, and the QualityCollector's additive merge semantics.
#include "ptwgr/obs/snapshot.h"

#include <gtest/gtest.h>

#include "ptwgr/circuit/suite.h"
#include "ptwgr/route/grid.h"
#include "ptwgr/route/metrics.h"

namespace ptwgr {
namespace {

using obs::Phase;
using obs::QualityCollector;

Wire make_wire(std::uint32_t net, std::uint32_t channel, Coord lo, Coord hi) {
  Wire w;
  w.net = NetId{net};
  w.channel = channel;
  w.lo = lo;
  w.hi = hi;
  w.row = channel;
  return w;
}

TEST(Summarize, EmptyIsAllZero) {
  const obs::DistributionSummary s = obs::summarize({});
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.total, 0);
  EXPECT_EQ(s.max, 0);
  EXPECT_EQ(s.p99, 0);
}

TEST(Summarize, PercentilesAreNearestRank) {
  std::vector<std::int64_t> values;
  for (std::int64_t v = 1; v <= 100; ++v) values.push_back(101 - v);
  const obs::DistributionSummary s = obs::summarize(std::move(values));
  EXPECT_EQ(s.count, 100);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 100);
  EXPECT_EQ(s.total, 5050);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_EQ(s.p50, 51);
  EXPECT_EQ(s.p90, 91);
  EXPECT_EQ(s.p99, 100);
}

TEST(Heatmap, RenderShowsScaleAndShape) {
  obs::Heatmap map;
  map.rows = 2;
  map.cols = 3;
  map.column_width = 32;
  map.cells = {0, 5, 10, 10, 0, 2};
  EXPECT_EQ(map.max_cell(), 10);
  const std::string art = obs::render_heatmap_ascii(map, "test map");
  EXPECT_NE(art.find("test map"), std::string::npos);
  // Top row (row index 1) renders first; zero cells are dots and the
  // hottest cells are '#'.
  EXPECT_NE(art.find("#.1"), std::string::npos);
  EXPECT_NE(art.find(".4#"), std::string::npos);
}

TEST(ExactDensity, MatchesMetricsSweep) {
  const Circuit circuit = small_test_circuit();
  const std::vector<Wire> wires = {
      make_wire(0, 1, 0, 50), make_wire(1, 1, 25, 75),
      make_wire(2, 1, 60, 90), make_wire(3, 2, 0, 10)};
  const RoutingMetrics metrics = compute_metrics(circuit, wires);
  EXPECT_EQ(obs::exact_channel_density(circuit.num_channels(), wires),
            metrics.channel_density);
}

TEST(QualityCollector, MergesTreeContributionsAdditively) {
  QualityCollector collector;
  collector.add_trees({{0, 10}, {1, 20}}, 3, 1);
  collector.add_trees({{2, 30}}, 2, 2);
  // A second contribution to an already-seen net accumulates onto it
  // (row-wise blocks each build the trees of their own pins).
  collector.add_trees({{1, 5}}, 1, 0);
  const auto snapshots = collector.finalize();
  const obs::PhaseSnapshot& s =
      snapshots[static_cast<std::size_t>(Phase::Steiner)];
  EXPECT_EQ(s.phase, Phase::Steiner);
  EXPECT_EQ(s.net_count, 3);
  EXPECT_EQ(s.tree_edge_count, 6);
  EXPECT_EQ(s.inter_row_edge_count, 3);
  EXPECT_EQ(s.tree_cost, 65);
  EXPECT_EQ(s.per_net_tree_cost.max, 30);
}

TEST(QualityCollector, SingleWireContributorIsExact) {
  QualityCollector collector;
  const std::vector<Wire> wires = {make_wire(0, 0, 0, 10),
                                   make_wire(1, 0, 5, 15)};
  collector.add_wires(Phase::Connect, wires, 2);
  const auto snapshots = collector.finalize();
  const obs::PhaseSnapshot& s =
      snapshots[static_cast<std::size_t>(Phase::Connect)];
  EXPECT_EQ(s.wire_count, 2);
  EXPECT_EQ(s.total_wirelength, 20);
  EXPECT_TRUE(s.density_exact);
  EXPECT_EQ(s.channel_density[0], 2);
}

TEST(QualityCollector, MultipleContributorsSumAndLoseExactness) {
  QualityCollector collector;
  // Two ranks each record one wire on the shared channel 0: the summed
  // density (2) is an upper bound on the true overlap.
  collector.add_wires(Phase::Switchable, {make_wire(0, 0, 0, 10)}, 2);
  collector.add_wires(Phase::Switchable, {make_wire(1, 0, 20, 30)}, 2);
  auto snapshots = collector.finalize();
  {
    const obs::PhaseSnapshot& s =
        snapshots[static_cast<std::size_t>(Phase::Switchable)];
    EXPECT_EQ(s.wire_count, 2);
    EXPECT_FALSE(s.density_exact);
    EXPECT_EQ(s.channel_density[0], 2);
  }
  // The exact override (computed from the globally gathered wires) wins.
  collector.set_exact_density(Phase::Switchable, {1, 0});
  snapshots = collector.finalize();
  {
    const obs::PhaseSnapshot& s =
        snapshots[static_cast<std::size_t>(Phase::Switchable)];
    EXPECT_TRUE(s.density_exact);
    EXPECT_EQ(s.channel_density[0], 1);
    EXPECT_EQ(s.track_count, 1);
  }
}

TEST(QualityCollector, FlipAndFeedthroughContributionsAccumulate) {
  QualityCollector collector;
  collector.add_flips(Phase::Coarse, 100, 10, 2);
  collector.add_flips(Phase::Coarse, 50, 5, 2);
  collector.add_feedthroughs({{0, 3}, {2, 1}}, 4);
  collector.add_feedthroughs({{2, 2}}, 4);
  const auto snapshots = collector.finalize();
  const obs::PhaseSnapshot& coarse =
      snapshots[static_cast<std::size_t>(Phase::Coarse)];
  EXPECT_EQ(coarse.flip_sweep.decisions, 150);
  EXPECT_EQ(coarse.flip_sweep.flips, 15);
  EXPECT_EQ(coarse.flip_sweep.passes, 2);
  EXPECT_DOUBLE_EQ(coarse.flip_sweep.acceptance_rate(), 0.1);
  const obs::PhaseSnapshot& ft =
      snapshots[static_cast<std::size_t>(Phase::Feedthrough)];
  EXPECT_EQ(ft.feedthrough_total, 6);
  EXPECT_EQ(ft.feedthroughs_per_row,
            (std::vector<std::int64_t>{3, 0, 3, 0}));
}

TEST(QualityCollector, ResetDiscardsEverything) {
  QualityCollector collector;
  collector.add_flips(Phase::Coarse, 10, 1, 1);
  EXPECT_TRUE(collector.any_recorded());
  collector.reset();
  EXPECT_FALSE(collector.any_recorded());
  const auto snapshots = collector.finalize();
  EXPECT_EQ(snapshots[static_cast<std::size_t>(Phase::Coarse)]
                .flip_sweep.decisions,
            0);
}

TEST(ActiveQuality, InstallAndRemove) {
  EXPECT_EQ(obs::active_quality(), nullptr);
  QualityCollector collector;
  obs::set_active_quality(&collector);
  EXPECT_EQ(obs::active_quality(), &collector);
  obs::set_active_quality(nullptr);
  EXPECT_EQ(obs::active_quality(), nullptr);
}

}  // namespace
}  // namespace ptwgr
