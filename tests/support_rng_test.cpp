#include "ptwgr/support/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace ptwgr {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto x0 = a();
  const auto x1 = a();
  a.reseed(7);
  EXPECT_EQ(a(), x0);
  EXPECT_EQ(a(), x1);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.next_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  // The child stream must differ from the parent continuation.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(31);
  EXPECT_THROW(rng.next_below(0), CheckError);
}

TEST(Rng, BernoulliRespectsProbabilityRoughly) {
  Rng rng(37);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.next_bool(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.25, 0.02);
}

class RngRangeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngRangeSweep, UniformAcrossBuckets) {
  const std::uint64_t bound = GetParam();
  Rng rng(bound * 7919 + 1);
  std::vector<int> counts(static_cast<std::size_t>(bound), 0);
  const int draws = 3000 * static_cast<int>(bound);
  for (int i = 0; i < draws; ++i) {
    ++counts[static_cast<std::size_t>(rng.next_below(bound))];
  }
  const double expected = static_cast<double>(draws) /
                          static_cast<double>(bound);
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.15);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngRangeSweep,
                         ::testing::Values(2, 3, 5, 8, 13, 32));

}  // namespace
}  // namespace ptwgr
