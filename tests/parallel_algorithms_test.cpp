// End-to-end tests of the three parallel algorithms against the serial
// baseline: completion on every rank count, determinism, and the quality
// bands the paper reports (approximately — the bound here is generous; the
// benchmark harness measures the precise ratios).
#include <gtest/gtest.h>

#include "ptwgr/circuit/suite.h"
#include "ptwgr/parallel/parallel_router.h"
#include "ptwgr/route/router.h"

namespace ptwgr {
namespace {

struct Case {
  ParallelAlgorithm algorithm;
  int ranks;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string name = to_string(info.param.algorithm);
  for (auto& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name + "_r" + std::to_string(info.param.ranks);
}

class ParallelSweep : public ::testing::TestWithParam<Case> {
 protected:
  static Circuit test_circuit() { return small_test_circuit(21, 8, 30); }
};

TEST_P(ParallelSweep, CompletesWithPositiveMetrics) {
  const auto [algorithm, ranks] = GetParam();
  const ParallelRoutingResult result =
      route_parallel(test_circuit(), algorithm, ranks);
  EXPECT_GT(result.metrics.track_count, 0);
  EXPECT_GT(result.metrics.area, 0);
  EXPECT_GT(result.feedthrough_count, 0u);
  EXPECT_EQ(result.report.rank_vtime.size(),
            static_cast<std::size_t>(ranks));
}

TEST_P(ParallelSweep, DeterministicForSeed) {
  const auto [algorithm, ranks] = GetParam();
  ParallelOptions options;
  options.router.seed = 77;
  const auto a = route_parallel(test_circuit(), algorithm, ranks, options);
  const auto b = route_parallel(test_circuit(), algorithm, ranks, options);
  EXPECT_EQ(a.metrics.track_count, b.metrics.track_count);
  EXPECT_EQ(a.metrics.area, b.metrics.area);
  EXPECT_EQ(a.feedthrough_count, b.feedthrough_count);
  EXPECT_EQ(a.metrics.channel_density, b.metrics.channel_density);
}

TEST_P(ParallelSweep, QualityWithinBandOfSerial) {
  const auto [algorithm, ranks] = GetParam();
  const RoutingResult serial = route_serial(test_circuit());
  const ParallelRoutingResult parallel =
      route_parallel(test_circuit(), algorithm, ranks);
  const double scaled = static_cast<double>(parallel.metrics.track_count) /
                        static_cast<double>(serial.metrics.track_count);
  // The paper's worst case (net-wise, 8 procs) is ~15% degradation; allow
  // headroom for the small test circuit.
  EXPECT_GT(scaled, 0.85) << "suspiciously good — wires lost?";
  EXPECT_LT(scaled, 1.45) << "quality collapsed";
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, ParallelSweep,
    ::testing::Values(Case{ParallelAlgorithm::RowWise, 1},
                      Case{ParallelAlgorithm::RowWise, 2},
                      Case{ParallelAlgorithm::RowWise, 4},
                      Case{ParallelAlgorithm::RowWise, 8},
                      Case{ParallelAlgorithm::NetWise, 1},
                      Case{ParallelAlgorithm::NetWise, 2},
                      Case{ParallelAlgorithm::NetWise, 4},
                      Case{ParallelAlgorithm::NetWise, 8},
                      Case{ParallelAlgorithm::Hybrid, 1},
                      Case{ParallelAlgorithm::Hybrid, 2},
                      Case{ParallelAlgorithm::Hybrid, 4},
                      Case{ParallelAlgorithm::Hybrid, 8}),
    case_name);

TEST(Parallel, SingleRankMatchesSerialClosely) {
  // One rank removes all partition effects; quality should track the serial
  // run within random-order noise.
  const Circuit circuit = small_test_circuit(22, 6, 30);
  const RoutingResult serial = route_serial(circuit);
  for (const auto algorithm :
       {ParallelAlgorithm::RowWise, ParallelAlgorithm::NetWise,
        ParallelAlgorithm::Hybrid}) {
    const auto result = route_parallel(circuit, algorithm, 1);
    const double scaled = static_cast<double>(result.metrics.track_count) /
                          static_cast<double>(serial.metrics.track_count);
    EXPECT_GT(scaled, 0.93) << to_string(algorithm);
    EXPECT_LT(scaled, 1.07) << to_string(algorithm);
  }
}

TEST(Parallel, WorkSplitsAcrossRanks) {
  // Row-wise at 4 ranks: each rank's CPU time must be well below the
  // 1-rank run's (the work actually partitions).
  const Circuit circuit = small_test_circuit(23, 12, 60);
  const auto one = route_parallel(circuit, ParallelAlgorithm::RowWise, 1);
  const auto four = route_parallel(circuit, ParallelAlgorithm::RowWise, 4);
  const double t1 = one.report.rank_cpu_seconds[0];
  double max_rank = 0.0;
  for (const double t : four.report.rank_cpu_seconds) {
    max_rank = std::max(max_rank, t);
  }
  // Ideal would be ~t1/4 plus fixed per-rank overhead; the loose bound keeps
  // the test robust to scheduler noise on timesharing hosts.
  EXPECT_LT(max_rank, t1 * 0.8);
}

TEST(Parallel, CostModelSlowsModeledTime) {
  const Circuit circuit = small_test_circuit(24, 8, 25);
  const auto ideal = route_parallel(circuit, ParallelAlgorithm::NetWise, 4,
                                    {}, mp::CostModel::ideal());
  const auto dmp = route_parallel(circuit, ParallelAlgorithm::NetWise, 4, {},
                                  mp::CostModel::paragon_dmp());
  EXPECT_GT(dmp.modeled_seconds(), ideal.modeled_seconds());
  // Same algorithm, same seed: identical quality regardless of platform.
  EXPECT_EQ(dmp.metrics.track_count, ideal.metrics.track_count);
}

TEST(Parallel, RejectsMoreRanksThanRows) {
  const Circuit circuit = small_test_circuit(25, 4, 10);
  EXPECT_THROW(route_parallel(circuit, ParallelAlgorithm::RowWise, 5),
               ParallelConfigError);
}

TEST(Parallel, HybridNotWorseThanNetwiseTypically) {
  // The paper's headline ordering: hybrid beats net-wise on quality.  Run on
  // a moderately sized circuit where the effect is visible.
  const Circuit circuit = small_test_circuit(26, 10, 50);
  const auto hybrid =
      route_parallel(circuit, ParallelAlgorithm::Hybrid, 4);
  const auto netwise =
      route_parallel(circuit, ParallelAlgorithm::NetWise, 4);
  EXPECT_LE(static_cast<double>(hybrid.metrics.track_count),
            static_cast<double>(netwise.metrics.track_count) * 1.05);
}

}  // namespace
}  // namespace ptwgr
