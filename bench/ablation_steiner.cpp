// Ablation: Steiner-tree construction choices (TWGR step 1).
//
// The paper builds "an approximate Steiner tree ... based on the minimum
// spanning tree of this net" without further detail; this harness quantifies
// the two knobs our implementation exposes — the corner-merging refinement
// and the vertical row cost of the MST metric — by their effect on total
// tree length, feedthrough count, and final track count.
#include <cstdio>

#include "bench_common.h"
#include "ptwgr/circuit/suite.h"
#include "ptwgr/route/router.h"
#include "ptwgr/route/steiner.h"
#include "ptwgr/support/table.h"

int main(int argc, char** argv) {
  using namespace ptwgr;
  const auto args = bench::parse_args(argc, argv);
  const SuiteEntry entry = suite_entry("biomed", args.scale);
  const Circuit circuit = build_suite_circuit(entry);

  // Knob 1: refinement on/off at the default row cost.
  {
    TextTable table("Steiner refinement ablation (biomed)");
    table.add_row({"refine", "total tree length", "inter-row segments"});
    for (const bool refine : {false, true}) {
      SteinerOptions options;
      options.refine = refine;
      std::int64_t total_length = 0;
      std::size_t inter_row = 0;
      for (const SteinerTree& tree :
           build_all_steiner_trees(circuit, options)) {
        total_length += tree.length(options.row_cost);
        inter_row += tree.num_inter_row_edges();
      }
      table.add_row({refine ? "on" : "off", format_grouped(total_length),
                     format_grouped(static_cast<long long>(inter_row))});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  // Knob 2: the vertical row cost, end to end through the router.
  {
    TextTable table(
        "Steiner row-cost sweep (biomed, full serial route; rows are "
        "expensive to cross because crossings cost feedthroughs)");
    table.add_row({"row cost", "tracks", "feedthroughs", "area"});
    for (const std::int64_t row_cost : {1, 16, 48, 128, 512}) {
      RouterOptions options;
      options.seed = args.seed;
      options.steiner_row_cost = row_cost;
      const RoutingResult result =
          route_serial(build_suite_circuit(entry), options);
      table.add_row({format_grouped(row_cost),
                     format_grouped(result.metrics.track_count),
                     format_grouped(static_cast<long long>(
                         result.metrics.feedthrough_count)),
                     format_grouped(result.metrics.area)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  return 0;
}
