// Ablation: the four net-partitioning heuristics of paper §5 — center,
// locus, density, pin-number-weight — compared on load balance (pins and
// Steiner-construction work) and on the quality/speedup of the net-wise
// algorithm they drive.  The paper motivates pin-number-weight with
// AVQ-LARGE's giant clock nets; avq.large is therefore the headline circuit
// here, with biomed as the no-giant-nets control.
#include <cstdio>

#include "bench_common.h"
#include "ptwgr/eval/experiment.h"
#include "ptwgr/eval/report.h"
#include "ptwgr/route/router.h"
#include "ptwgr/support/stats.h"
#include "ptwgr/support/table.h"
#include "ptwgr/support/timer.h"

namespace {

using namespace ptwgr;

constexpr int kProcs = 8;

double steiner_work_imbalance(const Circuit& circuit, const NetPartition& p,
                              int ranks) {
  std::vector<double> work(static_cast<std::size_t>(ranks), 0.0);
  for (std::size_t n = 0; n < circuit.num_nets(); ++n) {
    const auto k = static_cast<double>(
        circuit.net(NetId{static_cast<std::uint32_t>(n)}).pins.size());
    work[static_cast<std::size_t>(p.owner[n])] += k * k;  // Prim is O(k²)
  }
  return load_imbalance(work);
}

void run_circuit(const char* name, const ptwgr::bench::Args& args) {
  const SuiteEntry entry = suite_entry(name, args.scale);
  const Circuit circuit = build_suite_circuit(entry);
  const RowPartition rows = partition_rows(circuit, kProcs);

  RouterOptions router;
  router.seed = args.seed;
  const auto serial = route_serial(build_suite_circuit(entry), router);

  TextTable table(std::string("Net partition ablation on ") + name + " (" +
                  std::to_string(kProcs) + " procs, net-wise algorithm)");
  table.add_row({"scheme", "pin imbalance", "k^2 imbalance",
                 "scaled tracks", "speedup"});

  for (const auto scheme :
       {NetPartitionScheme::Center, NetPartitionScheme::Locus,
        NetPartitionScheme::Density, NetPartitionScheme::PinNumberWeight}) {
    NetPartitionOptions options;
    options.scheme = scheme;
    const NetPartition partition =
        partition_nets(circuit, kProcs, options, &rows);

    ParallelOptions parallel;
    parallel.router = router;
    parallel.net_partition = options;
    ptwgr::bench::apply_fault_args(args, parallel);
    const auto result =
        route_parallel(build_suite_circuit(entry), ParallelAlgorithm::NetWise,
                       kProcs, parallel, mp::CostModel::sparc_center_smp());

    // Speedup against the serial routing time on the same platform model.
    const double serial_modeled =
        serial.timings.total() *
        mp::CostModel::sparc_center_smp().compute_scale;

    table.add_row(
        {to_string(scheme), format_fixed(load_imbalance(partition.pin_load), 2),
         format_fixed(steiner_work_imbalance(circuit, partition, kProcs), 2),
         format_fixed(static_cast<double>(result.metrics.track_count) /
                          static_cast<double>(serial.metrics.track_count),
                      3),
         format_fixed(serial_modeled / result.modeled_seconds(), 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = ptwgr::bench::parse_args(argc, argv);
  run_circuit("avq.large", args);
  run_circuit("biomed", args);
  return 0;
}
