// Google-benchmark microbenchmarks of the resource-observability hot path.
//
// The acceptance contract (DESIGN.md §13): with no collector installed, the
// interposed operator new/delete pair costs exactly one relaxed atomic load
// on top of malloc/free.  BM_AllocFree measures that disabled path (it runs
// with whatever malloc the process has — the interposition layer is always
// linked in); BM_AllocFreeCollected measures the same loop with a collector
// installed, so the delta is the enabled per-allocation cost (TLS lookup +
// a handful of relaxed fetch_adds).  BM_ArenaCharge isolates the tagged
// arena counters used by CoarseGrid / segment trees / mailboxes.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <memory>

#include "ptwgr/obs/resource.h"
#include "ptwgr/support/arena.h"

namespace {

using namespace ptwgr;

void BM_AllocFree(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    char* p = new char[bytes];
    benchmark::DoNotOptimize(p);
    delete[] p;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocFree)->Arg(16)->Arg(256)->Arg(4096);

void BM_AllocFreeCollected(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  obs::ResourceCollector collector;
  obs::set_active_resource(&collector);
  obs::resource_set_phase("bench");
  for (auto _ : state) {
    char* p = new char[bytes];
    benchmark::DoNotOptimize(p);
    delete[] p;
  }
  obs::resource_set_phase(nullptr);
  obs::set_active_resource(nullptr);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocFreeCollected)->Arg(16)->Arg(256)->Arg(4096);

void BM_ArenaCharge(benchmark::State& state) {
  ArenaSlot* slot = arena_slot("bench_resource");
  for (auto _ : state) {
    arena_charge(slot, 64);
    arena_discharge(slot, 64);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ArenaCharge);

}  // namespace

BENCHMARK_MAIN();
