// Baseline comparison: TWGR vs a Lee/Moore-style congestion-aware maze
// router (the graph-search family the paper's introduction contrasts
// against).  Two claims from the intro are made measurable:
//   * quality — TWGR's order-independent, multi-pin-aware pipeline beats
//     sequential maze routing on track count;
//   * order dependence — reversing the maze router's net order shifts its
//     results, while TWGR's randomized delta-evaluation makes the
//     processing order immaterial (different seeds land within noise).
#include <cstdio>

#include "bench_common.h"
#include "ptwgr/baseline/maze_router.h"
#include "ptwgr/circuit/suite.h"
#include "ptwgr/route/router.h"
#include "ptwgr/support/table.h"
#include "ptwgr/support/timer.h"

namespace {

/// TWGR track count re-measured at the maze router's grid granularity
/// (distinct nets per channel column), so the two routers are compared on
/// identical accounting.
std::int64_t coarse_tracks(const ptwgr::Circuit& circuit,
                           const std::vector<ptwgr::Wire>& wires,
                           ptwgr::Coord column_width) {
  using namespace ptwgr;
  const std::size_t columns = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             (circuit.core_width() + column_width - 1) / column_width));
  const std::size_t channels = circuit.num_channels();
  // Distinct nets per (channel, column): sort wires by (channel, net) and
  // mark each column once per net.
  std::vector<std::vector<std::int32_t>> counts(
      channels, std::vector<std::int32_t>(columns, 0));
  std::vector<Wire> sorted = wires;
  std::sort(sorted.begin(), sorted.end(), [](const Wire& a, const Wire& b) {
    if (a.channel != b.channel) return a.channel < b.channel;
    return a.net.value() < b.net.value();
  });
  std::vector<bool> marked(columns, false);
  std::size_t i = 0;
  while (i < sorted.size()) {
    const std::uint32_t channel = sorted[i].channel;
    const std::uint32_t net = sorted[i].net.value();
    std::fill(marked.begin(), marked.end(), false);
    for (; i < sorted.size() && sorted[i].channel == channel &&
           sorted[i].net.value() == net;
         ++i) {
      const auto lo = static_cast<std::size_t>(
          std::clamp<Coord>(sorted[i].lo / column_width, 0,
                            static_cast<Coord>(columns - 1)));
      const auto hi = static_cast<std::size_t>(
          std::clamp<Coord>(sorted[i].hi / column_width, 0,
                            static_cast<Coord>(columns - 1)));
      for (std::size_t k = lo; k <= hi; ++k) marked[k] = true;
    }
    for (std::size_t k = 0; k < columns; ++k) {
      if (marked[k]) ++counts[channel][k];
    }
  }
  std::int64_t total = 0;
  for (const auto& per_column : counts) {
    total += *std::max_element(per_column.begin(), per_column.end());
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ptwgr;
  auto args = bench::parse_args(argc, argv);
  // The maze baseline is O(nets × grid × log grid); default to a reduced
  // scale so the whole suite stays interactive.
  if (args.scale > 0.3) args.scale = 0.3;

  TextTable table(
      "TWGR vs maze-router baseline (suite at scale " +
      format_fixed(args.scale, 2) + ")");
  table.add_row({"circuit", "TWGR tracks*", "maze tracks", "TWGR fts",
                 "maze fts", "TWGR time", "maze time", "order drift"});

  for (const SuiteEntry& entry : benchmark_suite(args.scale)) {
    RouterOptions router;
    router.seed = args.seed;
    const RoutingResult twgr =
        route_serial(build_suite_circuit(entry), router);

    const Circuit circuit = build_suite_circuit(entry);
    MazeOptions maze_options;
    const WallTimer maze_timer;
    const MazeResult maze = route_maze_baseline(circuit, maze_options);
    const double maze_seconds = maze_timer.seconds();
    maze_options.reverse_net_order = true;
    const MazeResult maze_rev = route_maze_baseline(circuit, maze_options);

    // The baseline trades huge feedthrough counts for channel detours, so
    // the honest comparison is chip area (row widening + track height), the
    // quantity TWGR's objective actually minimizes.
    const std::int64_t maze_area = maze.estimate_area(circuit);
    const double drift =
        std::abs(static_cast<double>(maze.track_count) -
                 static_cast<double>(maze_rev.track_count)) /
        static_cast<double>(maze.track_count);

    const std::int64_t twgr_coarse = coarse_tracks(
        twgr.circuit, twgr.wires, maze_options.column_width);
    (void)maze_area;

    table.add_row(
        {entry.name, format_grouped(twgr_coarse),
         format_grouped(maze.track_count),
         format_grouped(static_cast<long long>(
             twgr.metrics.feedthrough_count)),
         format_grouped(maze.feedthrough_count),
         format_fixed(twgr.timings.total(), 2) + "s",
         format_fixed(maze_seconds, 2) + "s",
         format_fixed(drift * 100.0, 1) + "%"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "(*TWGR tracks re-measured at the maze grid's column granularity.\n"
      " The comparison shows the trade the paper's introduction describes:\n"
      "  - the graph-search baseline spends 2-3x the feedthroughs — row\n"
      "    widening that dominates standard-cell area, which TWGR's\n"
      "    objective explicitly minimizes — to buy lower channel maxima;\n"
      "  - it is an order of magnitude slower (per-net grid searches);\n"
      "  - its result depends on the net processing order ('order drift' =\n"
      "    track change from reversing the order), the defect TWGR's\n"
      "    randomized delta evaluation removes.)\n");
  return 0;
}
