// bench_grid — naive-vs-incremental microbenchmark of the flip-sweep
// congestion evaluation (DESIGN.md §11).
//
// Replays the coarse L-orientation sweep and the switchable channel sweep on
// a large synthetic grid twice: once through the segment-tree-backed
// incremental evaluators the routers use, and once through self-contained
// replicas of the pre-incremental data structures (flat arrays, linear span
// scans, remove → evaluate → re-add per decision).  Both runs consume
// identical RNG sequences, so they must make identical decisions — the bench
// doubles as a large-scale cross-check and aborts on any divergence in flip
// counts, final placements, or final demand state.  Results (timings +
// speedups) go to BENCH_grid.json.
//
// Usage: bench_grid [--out=FILE] [--seed=N] [--segments=N] [--wires=N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "ptwgr/route/coarse.h"
#include "ptwgr/route/switchable.h"
#include "ptwgr/support/json.h"
#include "ptwgr/support/parse.h"
#include "ptwgr/support/rng.h"
#include "ptwgr/support/timer.h"

namespace {

using namespace ptwgr;

struct BenchArgs {
  std::string out_path = "BENCH_grid.json";
  std::uint64_t seed = 1;
  std::size_t num_segments = 20000;
  std::size_t num_wires = 10000;
};

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "bench_grid: %s\n", message.c_str());
  std::fprintf(stderr,
               "usage: bench_grid [--out=FILE] [--seed=N] [--segments=N] "
               "[--wires=N]\n");
  std::exit(2);
}

template <typename T>
T parse_or_die(const std::string& text, const char* flag) {
  const std::optional<T> parsed = parse_number<T>(text);
  if (!parsed) usage_error("invalid numeric value '" + text + "' for " + flag);
  return *parsed;
}

BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* prefix) -> std::optional<std::string> {
      const std::size_t n = std::strlen(prefix);
      if (arg.compare(0, n, prefix) == 0) return arg.substr(n);
      return std::nullopt;
    };
    std::optional<std::string> v;
    if ((v = value_of("--out="))) {
      args.out_path = *v;
    } else if ((v = value_of("--seed="))) {
      args.seed = parse_or_die<std::uint64_t>(*v, "--seed");
    } else if ((v = value_of("--segments="))) {
      args.num_segments = parse_or_die<std::size_t>(*v, "--segments");
    } else if ((v = value_of("--wires="))) {
      args.num_wires = parse_or_die<std::size_t>(*v, "--wires");
    } else {
      usage_error("unknown argument '" + arg + "'");
    }
  }
  return args;
}

struct SweepResult {
  double naive_seconds = 0.0;
  double incremental_seconds = 0.0;
  std::size_t decisions = 0;
  std::size_t flips = 0;
  bool identical = false;

  double speedup() const {
    return incremental_seconds > 0.0 ? naive_seconds / incremental_seconds
                                     : 0.0;
  }
};

// --- coarse sweep ----------------------------------------------------------

// Wide, shallow core: the flip decision's span queries (linear in columns for
// the naive evaluation, logarithmic for the tree-backed one) dominate the
// per-row feedthrough updates both paths share.
constexpr std::size_t kCoarseRows = 8;
constexpr Coord kCoarseWidth = 1 << 22;
constexpr Coord kColumnWidth = 32;  // 131072 columns
constexpr int kCoarsePasses = 2;

/// The pre-incremental coarse substrate: flat demand arrays, linear span
/// scans, and the remove → cost both → re-add decision loop the router used
/// before the segment-tree backing.  Kept arithmetic-identical to
/// CoarseRouter::placement_cost (integer aggregates × weights, same order).
class NaiveCoarse {
 public:
  NaiveCoarse(std::size_t num_rows, Coord width, Coord column_width)
      : num_rows_(num_rows), column_width_(column_width) {
    num_columns_ = static_cast<std::size_t>((width + column_width - 1) /
                                            column_width);
    ft_.assign(num_rows_ * num_columns_, 0);
    use_.assign((num_rows_ + 1) * num_columns_, 0);
  }

  std::size_t column_of(Coord x) const {
    if (x < 0) return 0;
    const auto col = static_cast<std::size_t>(x / column_width_);
    return col < num_columns_ ? col : num_columns_ - 1;
  }

  void commit(const CoarseSegment& seg, bool vertical_at_a,
              std::int32_t direction) {
    const std::size_t vcol =
        column_of(vertical_at_a ? seg.a.x : seg.b.x);
    const std::size_t channel = vertical_at_a ? seg.b.row : seg.a.row + 1;
    for (std::uint32_t r = seg.a.row + 1; r < seg.b.row; ++r) {
      ft_[r * num_columns_ + vcol] += direction;
    }
    const std::size_t ca = column_of(seg.a.x);
    const std::size_t cb = column_of(seg.b.x);
    const std::size_t lo = ca < cb ? ca : cb;
    const std::size_t hi = ca < cb ? cb : ca;
    for (std::size_t c = lo; c <= hi; ++c) {
      use_[channel * num_columns_ + c] += direction;
    }
  }

  double cost(const CoarseSegment& seg, bool vertical_at_a) const {
    const std::size_t vcol =
        column_of(vertical_at_a ? seg.a.x : seg.b.x);
    const std::size_t channel = vertical_at_a ? seg.b.row : seg.a.row + 1;
    std::int64_t ft = 0;
    for (std::uint32_t r = seg.a.row + 1; r < seg.b.row; ++r) {
      ft += ft_[r * num_columns_ + vcol];
    }
    const std::size_t ca = column_of(seg.a.x);
    const std::size_t cb = column_of(seg.b.x);
    const std::size_t lo = ca < cb ? ca : cb;
    const std::size_t hi = ca < cb ? cb : ca;
    std::int64_t sum = 0;
    std::int32_t peak = 0;
    for (std::size_t c = lo; c <= hi; ++c) {
      const std::int32_t u = use_[channel * num_columns_ + c];
      sum += u;
      if (u > peak) peak = u;
    }
    const CoarseOptions defaults;
    return defaults.ft_congestion_weight * static_cast<double>(ft) +
           defaults.chan_congestion_weight * static_cast<double>(sum) +
           defaults.chan_peak_weight * static_cast<double>(peak);
  }

  std::size_t improve(std::vector<CoarseSegment>& segments, Rng& rng,
                      int passes) {
    std::size_t flips = 0;
    std::vector<std::size_t> order(segments.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (int pass = 0; pass < passes; ++pass) {
      rng.shuffle(order);
      for (const std::size_t idx : order) {
        CoarseSegment& seg = segments[idx];
        commit(seg, seg.vertical_at_a, -1);
        const double keep = cost(seg, seg.vertical_at_a);
        const double flip = cost(seg, !seg.vertical_at_a);
        if (flip < keep) {
          seg.vertical_at_a = !seg.vertical_at_a;
          ++flips;
        }
        commit(seg, seg.vertical_at_a, +1);
      }
    }
    return flips;
  }

  std::vector<std::int32_t> state() const {
    std::vector<std::int32_t> out;
    out.reserve(ft_.size() + use_.size());
    out.insert(out.end(), ft_.begin(), ft_.end());
    out.insert(out.end(), use_.begin(), use_.end());
    return out;
  }

 private:
  std::size_t num_rows_;
  std::size_t num_columns_;
  Coord column_width_;
  std::vector<std::int32_t> ft_;
  std::vector<std::int32_t> use_;
};

std::vector<CoarseSegment> synthetic_segments(std::size_t count,
                                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<CoarseSegment> segments;
  segments.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    CoarseSegment seg;
    seg.net = NetId{static_cast<std::uint32_t>(i)};
    const auto row_a =
        static_cast<std::uint32_t>(rng.next_below(kCoarseRows - 1));
    const auto span =
        1 + rng.next_below(static_cast<std::size_t>(kCoarseRows) - 1 - row_a);
    seg.a = RoutePoint{static_cast<Coord>(rng.next_below(
                           static_cast<std::size_t>(kCoarseWidth))),
                       row_a};
    seg.b = RoutePoint{static_cast<Coord>(rng.next_below(
                           static_cast<std::size_t>(kCoarseWidth))),
                       row_a + static_cast<std::uint32_t>(span)};
    segments.push_back(seg);
  }
  return segments;
}

SweepResult bench_coarse(const BenchArgs& args) {
  SweepResult result;
  const auto base = synthetic_segments(args.num_segments, args.seed);
  result.decisions = base.size() * static_cast<std::size_t>(kCoarsePasses);

  // Incremental: the production CoarseRouter over the tree-backed grid.
  auto fast_segments = base;
  CoarseGrid grid(kCoarseRows, kCoarseWidth, kColumnWidth);
  CoarseRouter router(grid, CoarseOptions{});
  router.place_initial(fast_segments);
  Rng fast_rng(args.seed + 1);
  WallTimer timer;
  result.flips = router.improve(fast_segments, fast_rng);
  result.incremental_seconds = timer.seconds();

  // Naive: flat arrays, linear scans, identical RNG sequence.
  auto slow_segments = base;
  NaiveCoarse naive(kCoarseRows, kCoarseWidth, kColumnWidth);
  for (const CoarseSegment& seg : slow_segments) {
    naive.commit(seg, seg.vertical_at_a, +1);
  }
  Rng slow_rng(args.seed + 1);
  timer.reset();
  const std::size_t naive_flips =
      naive.improve(slow_segments, slow_rng, kCoarsePasses);
  result.naive_seconds = timer.seconds();

  result.identical = naive_flips == result.flips;
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (fast_segments[i].vertical_at_a != slow_segments[i].vertical_at_a) {
      result.identical = false;
      break;
    }
  }
  if (grid.export_state() != naive.state()) result.identical = false;
  return result;
}

// --- switchable sweep ------------------------------------------------------

constexpr std::size_t kSwitchChannels = 65;
constexpr Coord kSwitchWidth = 16384;
constexpr Coord kBucketWidth = 4;  // 4096 buckets per channel
constexpr int kSwitchPasses = 2;

/// The pre-incremental switchable substrate: per-channel flat bucket counts
/// and full-channel rescans for every peak, with the wire removed and
/// re-added around each decision.  Uses the fixed tie-break, so its
/// decisions must match the production optimizer's exactly.
class NaiveSwitch {
 public:
  NaiveSwitch(std::size_t num_channels, Coord core_width, Coord bucket_width)
      : bucket_width_(bucket_width) {
    buckets_ = static_cast<std::size_t>((core_width + bucket_width - 1) /
                                        bucket_width);
    counts_.assign(num_channels * buckets_, 0);
  }

  std::size_t bucket_of(std::int64_t x) const {
    if (x < 0) return 0;
    const auto idx = static_cast<std::size_t>(x / bucket_width_);
    return idx < buckets_ ? idx : buckets_ - 1;
  }

  void apply(const Wire& wire, std::int32_t direction) {
    const std::size_t first = bucket_of(wire.lo);
    const std::size_t last =
        bucket_of(wire.lo == wire.hi ? wire.hi : wire.hi - 1);
    for (std::size_t b = first; b <= last; ++b) {
      counts_[wire.channel * buckets_ + b] += direction;
    }
  }

  std::int64_t channel_max(std::size_t channel) const {
    std::int64_t best = 0;
    for (std::size_t b = 0; b < buckets_; ++b) {
      const std::int32_t v = counts_[channel * buckets_ + b];
      if (v > best) best = v;
    }
    return best;
  }

  std::int64_t local_peak(std::size_t channel, const Wire& wire) const {
    const std::size_t first = bucket_of(wire.lo);
    const std::size_t last =
        bucket_of(wire.lo == wire.hi ? wire.hi : wire.hi - 1);
    std::int64_t best = 0;
    for (std::size_t b = first; b <= last; ++b) {
      const std::int32_t v = counts_[channel * buckets_ + b];
      if (v > best) best = v;
    }
    return best;
  }

  std::size_t optimize(std::vector<Wire>& wires, Rng& rng, int passes) {
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < wires.size(); ++i) {
      if (wires[i].switchable) order.push_back(i);
    }
    std::size_t flips = 0;
    for (int pass = 0; pass < passes; ++pass) {
      rng.shuffle(order);
      for (const std::size_t idx : order) {
        Wire& wire = wires[idx];
        const std::uint32_t below = wire.row;
        const std::uint32_t above = wire.row + 1;
        const std::uint32_t other = (wire.channel == below) ? above : below;
        apply(wire, -1);
        const std::int64_t cur_max = channel_max(wire.channel);
        const std::int64_t other_max = channel_max(other);
        const std::int64_t cur_local = local_peak(wire.channel, wire);
        const std::int64_t other_local = local_peak(other, wire);
        const std::int64_t keep_total =
            std::max(cur_max, cur_local + 1) + other_max;
        const std::int64_t move_total =
            cur_max + std::max(other_max, other_local + 1);
        if (move_total < keep_total ||
            (move_total == keep_total && other_local < cur_local)) {
          wire.channel = other;
          ++flips;
        }
        apply(wire, +1);
      }
    }
    return flips;
  }

  const std::vector<std::int32_t>& counts() const { return counts_; }

 private:
  Coord bucket_width_;
  std::size_t buckets_;
  std::vector<std::int32_t> counts_;
};

std::vector<Wire> synthetic_wires(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Wire> wires;
  wires.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Wire w;
    w.net = NetId{static_cast<std::uint32_t>(i)};
    w.row = static_cast<std::uint32_t>(rng.next_below(kSwitchChannels - 1));
    w.channel = w.row + static_cast<std::uint32_t>(rng.next_below(2));
    w.switchable = true;
    w.lo = static_cast<Coord>(
        rng.next_below(static_cast<std::size_t>(kSwitchWidth)));
    w.hi = w.lo + static_cast<Coord>(rng.next_below(
                      static_cast<std::size_t>(kSwitchWidth - w.lo) + 1));
    wires.push_back(w);
  }
  return wires;
}

SweepResult bench_switchable(const BenchArgs& args) {
  SweepResult result;
  const auto base = synthetic_wires(args.num_wires, args.seed + 2);
  result.decisions = base.size() * static_cast<std::size_t>(kSwitchPasses);

  auto fast_wires = base;
  SwitchableOptimizer optimizer(kSwitchChannels, kSwitchWidth, kBucketWidth);
  optimizer.register_wires(fast_wires);
  SwitchableOptions options;
  options.passes = kSwitchPasses;
  options.bucket_width = kBucketWidth;
  Rng fast_rng(args.seed + 3);
  WallTimer timer;
  result.flips = optimizer.optimize(fast_wires, fast_rng, options);
  result.incremental_seconds = timer.seconds();

  auto slow_wires = base;
  NaiveSwitch naive(kSwitchChannels, kSwitchWidth, kBucketWidth);
  for (const Wire& w : slow_wires) naive.apply(w, +1);
  Rng slow_rng(args.seed + 3);
  timer.reset();
  const std::size_t naive_flips =
      naive.optimize(slow_wires, slow_rng, kSwitchPasses);
  result.naive_seconds = timer.seconds();

  result.identical = naive_flips == result.flips;
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (fast_wires[i].channel != slow_wires[i].channel) {
      result.identical = false;
      break;
    }
  }
  // The optimizer's cumulative pending deltas since construction ARE its
  // final bucket counts; they must equal the naive flat array.
  const auto deltas = optimizer.take_pending_deltas();
  if (deltas != naive.counts()) result.identical = false;
  return result;
}

void append_sweep(std::string& out, const char* key, const SweepResult& r,
                  std::size_t problem_size) {
  out += "  ";
  out += json::quoted(key);
  out += ": {\n";
  out += "    \"problem_size\": " + json::number(
             static_cast<std::int64_t>(problem_size)) + ",\n";
  out += "    \"decisions\": " + json::number(
             static_cast<std::int64_t>(r.decisions)) + ",\n";
  out += "    \"flips\": " + json::number(
             static_cast<std::int64_t>(r.flips)) + ",\n";
  out += "    \"identical_to_naive\": ";
  out += r.identical ? "true" : "false";
  out += ",\n";
  out += "    \"naive_seconds\": " + json::number(r.naive_seconds) + ",\n";
  out += "    \"incremental_seconds\": " +
         json::number(r.incremental_seconds) + ",\n";
  out += "    \"speedup\": " + json::number(r.speedup()) + "\n";
  out += "  }";
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);

  std::printf("bench_grid: coarse sweep (%zu segments, %d passes)...\n",
              args.num_segments, kCoarsePasses);
  const SweepResult coarse = bench_coarse(args);
  std::printf(
      "  naive %.3fs, incremental %.3fs, speedup %.1fx, %zu flips, %s\n",
      coarse.naive_seconds, coarse.incremental_seconds, coarse.speedup(),
      coarse.flips, coarse.identical ? "identical" : "DIVERGED");

  std::printf("bench_grid: switchable sweep (%zu wires, %d passes)...\n",
              args.num_wires, kSwitchPasses);
  const SweepResult switchable = bench_switchable(args);
  std::printf(
      "  naive %.3fs, incremental %.3fs, speedup %.1fx, %zu flips, %s\n",
      switchable.naive_seconds, switchable.incremental_seconds,
      switchable.speedup(), switchable.flips,
      switchable.identical ? "identical" : "DIVERGED");

  std::string out = "{\n";
  out += "  \"schema\": \"ptwgr-bench-grid-v1\",\n";
  out += "  \"seed\": " + json::number(args.seed) + ",\n";
  append_sweep(out, "coarse", coarse, args.num_segments);
  out += ",\n";
  append_sweep(out, "switchable", switchable, args.num_wires);
  out += "\n}\n";

  std::ofstream file(args.out_path);
  if (!file) {
    std::fprintf(stderr, "bench_grid: cannot open %s\n",
                 args.out_path.c_str());
    return 1;
  }
  file << out;
  std::printf("written to %s\n", args.out_path.c_str());

  if (!coarse.identical || !switchable.identical) {
    std::fprintf(stderr,
                 "bench_grid: incremental and naive evaluation DIVERGED\n");
    return 1;
  }
  return 0;
}
