// Reproduces Table 5: the hybrid pin partitioned algorithm on the two
// platform models — Sun SparcCenter 1000 SMP (1 and 8 processors) and Intel
// Paragon DMP (1, 8 and 16 processors; 32 MB/node).  Serial runs of
// industry3 and avq.large exceed the Paragon's node memory, reproducing the
// paper's "timeout" footnote with extrapolated (starred) speedups.
#include <cstdio>

#include "bench_common.h"
#include "ptwgr/eval/report.h"

int main(int argc, char** argv) {
  using namespace ptwgr;
  const auto args = bench::parse_args(argc, argv);

  std::printf("Table 5: Results of the hybrid pin partitioned parallel "
              "global routing algorithm on different platforms\n\n");

  {
    ExperimentConfig config;
    config.scale = args.scale;
    config.options.router.seed = args.seed;
    config.platform = Platform::sparc_center();
    config.proc_counts = {8};
    bench::apply_fault_args(args, config.options);
    const auto runs = run_suite_experiment(ParallelAlgorithm::Hybrid, config);
    std::printf("%s\n",
                render_table5_platform(config.platform, runs).c_str());
  }
  {
    ExperimentConfig config;
    config.scale = args.scale;
    config.options.router.seed = args.seed;
    config.platform = Platform::paragon();
    config.proc_counts = {8, 16};
    bench::apply_fault_args(args, config.options);
    const auto runs = run_suite_experiment(ParallelAlgorithm::Hybrid, config);
    std::printf("%s\n",
                render_table5_platform(config.platform, runs).c_str());
  }
  return 0;
}
