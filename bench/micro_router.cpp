// Google-benchmark microbenchmarks of the five TWGR steps and their key
// primitives, on the biomed-shaped circuit at a configurable scale.  These
// quantify where the serial time goes — the paper's parallelization targets
// the Steiner and coarse-routing phases, which dominate here too.
#include <benchmark/benchmark.h>

#include "ptwgr/circuit/suite.h"
#include "ptwgr/route/coarse.h"
#include "ptwgr/route/connect.h"
#include "ptwgr/route/feedthrough.h"
#include "ptwgr/route/router.h"
#include "ptwgr/route/switchable.h"

namespace {

using namespace ptwgr;

Circuit bench_circuit() {
  return build_suite_circuit(suite_entry("biomed", 0.25));
}

void BM_SteinerTrees(benchmark::State& state) {
  const Circuit circuit = bench_circuit();
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_all_steiner_trees(circuit));
  }
}
BENCHMARK(BM_SteinerTrees)->Unit(benchmark::kMillisecond);

void BM_CoarseRouting(benchmark::State& state) {
  const Circuit circuit = bench_circuit();
  const auto trees = build_all_steiner_trees(circuit);
  for (auto _ : state) {
    auto segments = extract_coarse_segments(trees);
    CoarseGrid grid(circuit, 32);
    CoarseRouter router(grid, {});
    router.place_initial(segments);
    Rng rng(1);
    benchmark::DoNotOptimize(router.improve(segments, rng));
  }
}
BENCHMARK(BM_CoarseRouting)->Unit(benchmark::kMillisecond);

void BM_FeedthroughInsertAssign(benchmark::State& state) {
  const Circuit base = bench_circuit();
  const auto trees = build_all_steiner_trees(base);
  auto segments = extract_coarse_segments(trees);
  CoarseGrid grid(base, 32);
  CoarseRouter router(grid, {});
  router.place_initial(segments);
  Rng rng(1);
  router.improve(segments, rng);
  for (auto _ : state) {
    Circuit circuit = base;  // copy: insertion mutates
    FeedthroughPools pools = insert_feedthroughs(circuit, grid, 3);
    benchmark::DoNotOptimize(
        assign_feedthroughs(circuit, pools, grid, segments, 3));
  }
}
BENCHMARK(BM_FeedthroughInsertAssign)->Unit(benchmark::kMillisecond);

void BM_ConnectNets(benchmark::State& state) {
  Circuit circuit = bench_circuit();
  const auto trees = build_all_steiner_trees(circuit);
  auto segments = extract_coarse_segments(trees);
  CoarseGrid grid(circuit, 32);
  CoarseRouter router(grid, {});
  router.place_initial(segments);
  Rng rng(1);
  router.improve(segments, rng);
  FeedthroughPools pools = insert_feedthroughs(circuit, grid, 3);
  assign_feedthroughs(circuit, pools, grid, segments, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(connect_all_nets(circuit));
  }
}
BENCHMARK(BM_ConnectNets)->Unit(benchmark::kMillisecond);

void BM_SwitchableOptimize(benchmark::State& state) {
  Circuit circuit = bench_circuit();
  const auto base_wires = connect_all_nets(circuit);
  for (auto _ : state) {
    auto wires = base_wires;
    SwitchableOptimizer optimizer(circuit.num_channels(),
                                  circuit.core_width(), 4);
    optimizer.register_wires(wires);
    Rng rng(1);
    benchmark::DoNotOptimize(optimizer.optimize(wires, rng, {}));
  }
}
BENCHMARK(BM_SwitchableOptimize)->Unit(benchmark::kMillisecond);

void BM_FullSerialRoute(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Circuit circuit = bench_circuit();
    state.ResumeTiming();
    benchmark::DoNotOptimize(route_serial(std::move(circuit)));
  }
}
BENCHMARK(BM_FullSerialRoute)->Unit(benchmark::kMillisecond);

void BM_SteinerTreeByDegree(benchmark::State& state) {
  // One net of the given degree, pins spread over the core.
  GeneratorConfig cfg;
  cfg.seed = 5;
  cfg.num_rows = 16;
  cfg.num_cells = 1600;
  cfg.num_nets = 1;
  cfg.giant_net_pins = {static_cast<std::size_t>(state.range(0))};
  const Circuit circuit = generate_circuit(cfg);
  const NetId giant{1};  // net 0 is the ordinary one; giants follow
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_steiner_tree(circuit, giant));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SteinerTreeByDegree)
    ->RangeMultiplier(4)
    ->Range(8, 2048)
    ->Complexity(benchmark::oNSquared);

}  // namespace

BENCHMARK_MAIN();
