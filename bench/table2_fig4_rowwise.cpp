// Reproduces Table 2 (scaled track results of the row-wise pin partition
// algorithm) and Figure 4 (its speedups) on the SparcCenter platform model,
// plus the scaled-area companion the paper quotes in prose ("the scaled
// area results ... are not much worse (1-2%)").
#include <cstdio>

#include "bench_common.h"
#include "ptwgr/eval/report.h"

int main(int argc, char** argv) {
  using namespace ptwgr;
  const auto args = bench::parse_args(argc, argv);

  ExperimentConfig config;
  config.scale = args.scale;
  config.options.router.seed = args.seed;
  config.platform = Platform::sparc_center();
  bench::apply_fault_args(args, config.options);

  const bench::ScopedBenchTrace trace(args);
  const auto runs = run_suite_experiment(ParallelAlgorithm::RowWise, config);

  std::printf("%s\n",
              render_scaled_tracks_table(
                  "Table 2: Scaled track results of row-wise pin partition "
                  "algorithm",
                  runs)
                  .c_str());
  std::printf("%s\n",
              render_scaled_area_table(
                  "Table 2 companion: scaled area (paper §7.1 prose)", runs)
                  .c_str());
  std::printf("%s\n",
              render_speedup_figure(
                  "Figure 4: Speedup results of row-wise pin partition "
                  "algorithm",
                  runs)
                  .c_str());
  if (args.comm) {
    std::printf("%s\n",
                render_comm_volume_table(
                    "Table 2 companion: communication volume (payload / "
                    "messages, all ranks)",
                    runs)
                    .c_str());
  }
  std::printf("summary: mean speedup at 8 procs %.2f, mean scaled tracks at "
              "8 procs %.3f\n",
              mean_speedup_at(runs, 8), mean_scaled_tracks_at(runs, 8));
  return 0;
}
