// Ablation: net-wise synchronization frequency (paper §5/§7.2).
//
// "The routing quality is controlled by frequent synchronization but this
// reduces the runtime performance and is very costly."  This harness sweeps
// the grid/channel sync period and reports the quality/runtime trade-off on
// the SparcCenter platform model, where the crossover the paper describes
// is visible: frequent syncs ≈ serial quality at poor speedup; rare syncs
// ≈ faster but blind.
#include <cstdio>

#include "bench_common.h"
#include "ptwgr/eval/experiment.h"
#include "ptwgr/route/router.h"
#include "ptwgr/support/table.h"
#include "ptwgr/support/timer.h"

int main(int argc, char** argv) {
  using namespace ptwgr;
  const auto args = bench::parse_args(argc, argv);
  constexpr int kProcs = 8;

  const SuiteEntry entry = suite_entry("biomed", args.scale);
  RouterOptions router;
  router.seed = args.seed;

  const auto serial = route_serial(build_suite_circuit(entry), router);
  const double serial_modeled =
      serial.timings.total() * mp::CostModel::sparc_center_smp().compute_scale;

  TextTable table("Sync-frequency ablation: net-wise on biomed, 8 procs "
                  "(SparcCenter model)");
  table.add_row({"sync period", "scaled tracks", "modeled time (s)",
                 "speedup"});
  for (const std::size_t period :
       {std::size_t{32}, std::size_t{128}, std::size_t{512},
        std::size_t{2048}, std::size_t{8192},
        std::size_t{1} << 30 /* effectively never */}) {
    ParallelOptions options;
    options.router = router;
    options.coarse_sync_period = period;
    options.switch_sync_period = period;
    bench::apply_fault_args(args, options);
    const auto result =
        route_parallel(build_suite_circuit(entry), ParallelAlgorithm::NetWise,
                       kProcs, options, mp::CostModel::sparc_center_smp());
    table.add_row(
        {period >= (std::size_t{1} << 30) ? std::string("never")
                                          : std::to_string(period),
         format_fixed(static_cast<double>(result.metrics.track_count) /
                          static_cast<double>(serial.metrics.track_count),
                      3),
         format_fixed(result.modeled_seconds(), 2),
         format_fixed(serial_modeled / result.modeled_seconds(), 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("(quality should improve and speedup drop as the period "
              "shrinks — the paper's \"synchronization ... is very "
              "costly\")\n");
  return 0;
}
