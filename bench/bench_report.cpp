// Unified machine-readable benchmark driver: routes a set of suite circuits
// with a set of parallel algorithms across a processor sweep and writes one
// versioned BENCH_<name>.json — per-circuit serial baseline (quality metrics
// + per-step CPU timings), and per (algorithm, proc count) point the quality
// metrics, scaled tracks/area, modeled speedup, and communication volume.
//
// The output feeds ptwgr_compare: quality metrics are integers deterministic
// in the seed and gate against a checked-in baseline; every timing key
// contains "seconds" and every speedup key contains "speedup", so the
// default compare rules treat them as machine-dependent (ignored) or
// informational.  This is what the CI bench smoke job runs (DESIGN.md §10).
//
// Usage (on top of the shared bench flags in bench_common.h):
//   bench_report [--name=NAME] [--out=FILE] [--platform=ideal|smp|dmp]
//     [--circuits=a,b,...] [--algorithms=row-wise,net-wise,hybrid]
//     [--procs=1,2,4,8] [--scale=S] [--seed=N]
// Defaults: name "suite", out "BENCH_<name>.json", the full six-circuit
// suite, all three algorithms, procs 1,2,4,8 on the SMP platform model.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ptwgr/eval/experiment.h"
#include "ptwgr/support/json.h"

namespace {

using namespace ptwgr;
using json::number;
using json::quoted;

struct ReportArgs {
  std::string name = "suite";
  std::string out_path;  // defaults to BENCH_<name>.json
  std::string platform = "smp";
  std::vector<std::string> circuits;  // empty = whole suite
  std::vector<std::string> algorithms = {"row-wise", "net-wise", "hybrid"};
  std::vector<int> procs = {1, 2, 4, 8};
};

std::vector<std::string> split_list(const char* csv) {
  std::vector<std::string> out;
  std::string item;
  for (const char* p = csv; *p != '\0'; ++p) {
    if (*p == ',') {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else {
      item += *p;
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

ReportArgs parse_report_args(int argc, char** argv) {
  ReportArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--name=", 7) == 0) {
      args.name = arg + 7;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      args.out_path = arg + 6;
    } else if (std::strncmp(arg, "--platform=", 11) == 0) {
      args.platform = arg + 11;
    } else if (std::strncmp(arg, "--circuits=", 11) == 0) {
      args.circuits = split_list(arg + 11);
    } else if (std::strncmp(arg, "--algorithms=", 13) == 0) {
      args.algorithms = split_list(arg + 13);
    } else if (std::strncmp(arg, "--procs=", 8) == 0) {
      args.procs.clear();
      for (const std::string& p : split_list(arg + 8)) {
        args.procs.push_back(std::atoi(p.c_str()));
      }
    }
  }
  if (args.out_path.empty()) args.out_path = "BENCH_" + args.name + ".json";
  return args;
}

Platform platform_of(const std::string& name) {
  if (name == "ideal") return Platform::ideal();
  if (name == "smp") return Platform::sparc_center();
  if (name == "dmp") return Platform::paragon();
  std::fprintf(stderr, "bench_report: unknown platform '%s'\n", name.c_str());
  std::exit(2);
}

ParallelAlgorithm algorithm_of(const std::string& name) {
  if (name == "row-wise") return ParallelAlgorithm::RowWise;
  if (name == "net-wise") return ParallelAlgorithm::NetWise;
  if (name == "hybrid") return ParallelAlgorithm::Hybrid;
  std::fprintf(stderr, "bench_report: unknown algorithm '%s'\n",
               name.c_str());
  std::exit(2);
}

void append_field(std::string& out, const char* name, const std::string& value,
                  bool& first) {
  if (!first) out += ",";
  first = false;
  out += quoted(name);
  out += ":";
  out += value;
}

/// The gated quality block (no bulky per-channel payloads): matches the
/// "*metrics.*" compare rules.
std::string metrics_json(const RoutingMetrics& m) {
  std::string out = "{";
  bool first = true;
  append_field(out, "tracks", number(m.track_count), first);
  append_field(out, "area", number(m.area), first);
  append_field(out, "wirelength", number(m.total_wirelength), first);
  append_field(out, "feedthroughs",
               number(static_cast<std::int64_t>(m.feedthrough_count)), first);
  append_field(out, "coarse_flips", number(m.coarse_flips), first);
  append_field(out, "coarse_decisions", number(m.coarse_decisions), first);
  append_field(out, "switch_flips", number(m.switch_flips), first);
  append_field(out, "switch_decisions", number(m.switch_decisions), first);
  out += "}";
  return out;
}

std::string serial_json(const CircuitExperiment& experiment) {
  std::string out = "{";
  bool first = true;
  append_field(out, "metrics", metrics_json(experiment.serial_metrics),
               first);
  std::string steps = "{";
  bool steps_first = true;
  append_field(steps, "steiner_seconds",
               number(experiment.serial_timings.steiner), steps_first);
  append_field(steps, "coarse_seconds",
               number(experiment.serial_timings.coarse), steps_first);
  append_field(steps, "feedthrough_seconds",
               number(experiment.serial_timings.feedthrough), steps_first);
  append_field(steps, "connect_seconds",
               number(experiment.serial_timings.connect), steps_first);
  append_field(steps, "switchable_seconds",
               number(experiment.serial_timings.switchable), steps_first);
  append_field(steps, "total_seconds",
               number(experiment.serial_timings.total()), steps_first);
  steps += "}";
  append_field(out, "step_timings", steps, first);
  if (experiment.serial_modeled_seconds) {
    append_field(out, "modeled_seconds",
                 number(*experiment.serial_modeled_seconds), first);
  }
  out += "}";
  return out;
}

std::string point_json(const RunPoint& point) {
  std::string out = "{";
  bool first = true;
  append_field(out, "procs", number(static_cast<std::int64_t>(point.procs)),
               first);
  append_field(out, "metrics", metrics_json(point.metrics), first);
  append_field(out, "scaled_tracks", number(point.scaled_tracks), first);
  append_field(out, "scaled_area", number(point.scaled_area), first);
  append_field(out, "speedup", number(point.speedup), first);
  append_field(out, "speedup_extrapolated",
               point.speedup_extrapolated ? "true" : "false", first);
  append_field(out, "modeled_seconds", number(point.modeled_seconds), first);
  append_field(out, "comm_messages",
               number(static_cast<std::int64_t>(point.comm_messages)), first);
  append_field(out, "comm_bytes",
               number(static_cast<std::int64_t>(point.comm_bytes)), first);
  out += "}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const ReportArgs report = parse_report_args(argc, argv);

  ExperimentConfig config;
  config.scale = args.scale;
  config.options.router.seed = args.seed;
  config.platform = platform_of(report.platform);
  config.proc_counts = report.procs;
  bench::apply_fault_args(args, config.options);

  std::vector<std::string> circuits = report.circuits;
  if (circuits.empty()) {
    for (const SuiteEntry& entry : benchmark_suite(args.scale)) {
      circuits.push_back(entry.name);
    }
  }

  const bench::ScopedBenchTrace trace(args);
  // Always-on: the summary block below feeds the ptwgr_compare memory gate
  // even when no --resource-report file was requested.
  bench::ScopedBenchResource resource(args, "bench_report", /*always=*/true);
  const bench::ScopedBenchProfiler profiler(args);

  // circuits.<name>.serial / circuits.<name>.<algorithm>.points.<i>.
  std::string circuits_json = "{";
  bool circuits_first = true;
  for (const std::string& circuit : circuits) {
    const SuiteEntry entry = suite_entry(circuit, args.scale);
    std::string circuit_json = "{";
    bool circuit_first = true;
    for (std::size_t a = 0; a < report.algorithms.size(); ++a) {
      std::fprintf(stderr, "bench_report: %s / %s\n", circuit.c_str(),
                   report.algorithms[a].c_str());
      const CircuitExperiment experiment = run_experiment(
          entry, algorithm_of(report.algorithms[a]), config);
      if (a == 0) {
        // The serial baseline is algorithm-independent; emit it once.
        append_field(circuit_json, "serial", serial_json(experiment),
                     circuit_first);
      }
      std::string points = "[";
      for (std::size_t i = 0; i < experiment.points.size(); ++i) {
        if (i != 0) points += ",";
        points += point_json(experiment.points[i]);
      }
      points += "]";
      append_field(circuit_json, report.algorithms[a].c_str(),
                   "{" + quoted("points") + ":" + points + "}",
                   circuit_first);
    }
    circuit_json += "}";
    append_field(circuits_json, circuit.c_str(), circuit_json,
                 circuits_first);
  }
  circuits_json += "}";

  std::string doc = "{";
  bool first = true;
  append_field(doc, "schema", quoted("ptwgr.bench"), first);
  append_field(doc, "version", number(std::int64_t{1}), first);
  append_field(doc, "name", quoted(report.name), first);
  std::string cfg = "{";
  bool cfg_first = true;
  append_field(cfg, "scale", number(args.scale), cfg_first);
  append_field(cfg, "seed",
               number(static_cast<std::int64_t>(args.seed)), cfg_first);
  append_field(cfg, "platform", quoted(report.platform), cfg_first);
  std::string procs = "[";
  for (std::size_t i = 0; i < report.procs.size(); ++i) {
    if (i != 0) procs += ",";
    procs += number(static_cast<std::int64_t>(report.procs[i]));
  }
  procs += "]";
  append_field(cfg, "proc_counts", procs, cfg_first);
  cfg += "}";
  append_field(doc, "config", cfg, first);
  append_field(doc, "circuits", circuits_json, first);
  // Whole-harness resource telemetry.  peak_rss_bytes moves with the machine
  // and gates loosely; alloc_bytes/alloc_count use requested sizes and are
  // deterministic in the seed (see obs/resource.h).
  resource.finish_sampling();
  {
    const obs::ResourceCollector::Snapshot snap =
        resource.collector()->snapshot();
    std::string res = "{";
    bool res_first = true;
    append_field(res, "peak_rss_bytes",
                 number(static_cast<std::int64_t>(snap.peak_rss_bytes)),
                 res_first);
    append_field(res, "alloc_bytes",
                 number(static_cast<std::int64_t>(snap.total_bytes)),
                 res_first);
    append_field(res, "alloc_count",
                 number(static_cast<std::int64_t>(snap.total_count)),
                 res_first);
    res += "}";
    append_field(doc, "resource", res, first);
  }
  doc += "}";
  doc += "\n";

  std::ofstream out(report.out_path);
  if (!out) {
    std::fprintf(stderr, "bench_report: cannot open %s\n",
                 report.out_path.c_str());
    return 1;
  }
  out << doc;
  std::printf("bench report written to %s (%zu circuits, %zu algorithms)\n",
              report.out_path.c_str(), circuits.size(),
              report.algorithms.size());
  return 0;
}
